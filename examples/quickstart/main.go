// Quickstart: infer types for the paper's headline example (Figure 2).
//
// close_last walks a linked list and closes the file descriptor stored
// in its last node. From the optimized machine code alone, Retypd
// recovers the recursive struct, the const pointer parameter, the
// #FileDescriptor tag on the handle field and the #SuccessZ tag on the
// return value:
//
//	typedef struct { Struct_0 *field_0; int field_4; } Struct_0;
//	int close_last(const Struct_0 *);
package main

import (
	"fmt"

	"retypd"
)

const src = `
; Figure 2 of Noonan et al., PLDI 2016 (gcc 4.5.4 -m32 -O2).
proc close_last
    push ebp
    mov ebp, esp
    sub esp, 8
    mov edx, [ebp+8]        ; list
    jmp L2
L1:
    mov edx, eax            ; list = list->next
L2:
    mov eax, [edx]          ; list->next
    test eax, eax
    jnz L1
    mov eax, [edx+4]        ; list->handle
    mov [ebp+8], eax        ; reuse the argument slot (§2.1!)
    leave
    jmp close               ; tail call through the thunk
endproc
`

func main() {
	prog := retypd.MustParseAsm(src)
	res := retypd.Infer(prog, nil)

	fmt.Println("== recovered C signature ==")
	fmt.Println(res.Signature("close_last"))

	fmt.Println("\n== recovered typedefs ==")
	for _, t := range res.Typedefs() {
		fmt.Printf("typedef %s;\n", t)
	}

	fmt.Println("\n== polymorphic type scheme (Definition 3.4) ==")
	fmt.Println(res.Scheme("close_last"))

	fmt.Println("\n== solved sketch (§3.5) ==")
	fmt.Print(res.ProcSketch("close_last"))

	fmt.Println("\nconst parameter recovered:", res.IsConstParam("close_last", 0))
}
