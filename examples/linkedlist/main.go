// Recursive-type recovery (§2.3): Retypd infers recursive structure
// types natively, with no points-to oracle — the capability the Phoenix
// authors identified as the missing piece in earlier systems.
//
// This example builds a list-length function and a binary-tree-sum
// function and shows that both recover their recursive structs.
package main

import (
	"fmt"

	"retypd"
)

const src = `
; size_t length(const struct node { struct node *next; ... } *l)
proc length
    mov edx, [esp+4]
    xor eax, eax
loop:
    test edx, edx
    jz done
    mov edx, [edx]          ; l = l->next
    add eax, 1
    jmp loop
done:
    ret
endproc

; int tree_sum(const struct tree { tree *left; tree *right; int val; } *t)
proc tree_sum
    mov ecx, [esp+4]
    test ecx, ecx
    jnz walk
    xor eax, eax
    ret
walk:
    mov eax, [ecx]          ; t->left
    push eax
    call tree_sum
    add esp, 4
    mov ebx, eax
    mov ecx, [esp+4]
    mov eax, [ecx+4]        ; t->right
    push eax
    call tree_sum
    add esp, 4
    add eax, ebx
    mov ecx, [esp+4]
    mov edx, [ecx+8]        ; t->val
    add eax, edx
    push eax
    call abs
    add esp, 4
    ret
endproc
`

func main() {
	prog := retypd.MustParseAsm(src)
	res := retypd.Infer(prog, nil)

	for _, name := range res.ProcNames() {
		fmt.Println(res.Signature(name))
		fmt.Printf("  scheme: %s\n\n", res.Scheme(name))
	}
	fmt.Println("/* recovered recursive typedefs */")
	for _, t := range res.Typedefs() {
		fmt.Printf("typedef %s;\n", t)
	}
}
