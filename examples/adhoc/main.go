// Ad-hoc subtyping (§2.8): programs define type hierarchies by
// typedef convention — Windows' HGDI handles are all void* underneath,
// with HBRUSH/HPEN below the generic HGDI. Retypd models these with
// the customizable lattice Λ, which end users can extend at run time.
//
// This example adds a domain-specific tag hierarchy (#Fahrenheit and
// #Celsius below a #Temperature tag) and shows it propagating through
// inference, alongside the stock GDI hierarchy.
package main

import (
	"fmt"

	"retypd"
)

const src = `
; HGDI pick_pen(HANDLE dc)
proc pick_pen
    push 0
    call GetStockObject
    add esp, 4
    push eax
    mov ecx, [esp+8]
    push ecx
    call SelectObject
    add esp, 8
    ret
endproc

; int warm(int degrees) — degrees flows through the user's to_celsius
proc warm
    mov eax, [esp+4]
    push eax
    call to_celsius
    add esp, 4
    ret
endproc
`

func main() {
	// Extend Λ with a user hierarchy (§2.8: "still better is the
	// ability for the end user to define or adjust the initial type
	// hierarchy at run time").
	lb := retypd.NewLatticeBuilder()
	lb.Below("#Celsius", "#Temperature")
	lb.Below("#Fahrenheit", "#Temperature")
	lat := lb.MustBuild()

	prog := retypd.MustParseAsm(src)
	res := retypd.Infer(prog, &retypd.Config{Lattice: lat})

	for _, name := range res.ProcNames() {
		fmt.Println(res.Signature(name))
		fmt.Printf("  scheme: %s\n", res.Scheme(name))
	}
	fmt.Println("\nNote: to_celsius is an unknown external; a summary table entry")
	fmt.Println("(Summaries) would seed #Celsius on its parameter exactly like")
	fmt.Println("#FileDescriptor is seeded on close() in the stock table.")
}
