// Const recovery (§6.4, Example 4.1): because Retypd models the read
// capability (.load) and write capability (.store) of a pointer
// separately, a parameter that is only ever loaded through is
// annotated const — the paper reports 98% recall of source const
// annotations, a first for machine-code type inference.
package main

import (
	"fmt"

	"retypd"
)

const src = `
; int sum(const struct pair { int a; int b; } *p)
proc sum
    mov ecx, [esp+4]
    mov eax, [ecx]
    mov edx, [ecx+4]
    add eax, edx
    ret
endproc

; void scale(struct pair *p, int k) — writes through p: NOT const
proc scale
    mov ecx, [esp+4]
    mov edx, [esp+8]
    mov eax, [ecx]
    imul eax, edx
    mov [ecx], eax
    mov eax, [ecx+4]
    imul eax, edx
    mov [ecx+4], eax
    ret
endproc

; size_t measure(const char *s) — const via strlen's summary
proc measure
    mov ecx, [esp+4]
    push ecx
    call strlen
    add esp, 4
    ret
endproc
`

func main() {
	prog := retypd.MustParseAsm(src)
	res := retypd.Infer(prog, nil)

	for _, name := range res.ProcNames() {
		fmt.Println(res.Signature(name))
		for i := 0; i < res.NumParams(name); i++ {
			fmt.Printf("  param %d const: %v\n", i, res.IsConstParam(name, i))
		}
	}
}
