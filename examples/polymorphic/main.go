// Polymorphism (§2.2, §3.4): user-defined allocator wrappers are
// effectively polymorphic — each callsite instantiates the wrapper's
// type scheme with fresh variables, so incompatible uses never bleed
// into each other; and passing a struct with MORE fields than a callee
// needs typechecks via scheme specialization, not subtyping.
package main

import (
	"fmt"

	"retypd"
)

const src = `
; void *xalloc(size_t n) { return malloc(n); }   — ∀τ. size_t → τ*
proc xalloc
    mov eax, [esp+4]
    push eax
    call malloc
    add esp, 4
    ret
endproc

; struct point { int x; int y; } *mk_point(void)
proc mk_point
    push 8
    call xalloc
    add esp, 4
    mov esi, eax
    call rand
    mov [esi], eax
    call rand
    mov [esi+4], eax
    mov eax, esi
    ret
endproc

; struct span { char *s; size_t n; } *mk_span(const char *s)
proc mk_span
    push 8
    call xalloc
    add esp, 4
    mov esi, eax
    mov ecx, [esp+4]
    mov [esi], ecx
    push ecx
    call strlen
    add esp, 4
    mov [esi+4], eax
    mov eax, esi
    ret
endproc

; int first_field(const struct { int a; } *p) — callers may pass richer
; structs; instantiation forgets the extra fields (§3.4).
proc first_field
    mov ecx, [esp+4]
    mov eax, [ecx]
    ret
endproc

proc use_point
    call mk_point
    push eax
    call first_field
    add esp, 4
    ret
endproc
`

func main() {
	prog := retypd.MustParseAsm(src)
	res := retypd.Infer(prog, nil)

	for _, name := range res.ProcNames() {
		fmt.Println(res.Signature(name))
	}
	fmt.Println()
	fmt.Println("xalloc stays polymorphic:", res.Scheme("xalloc"))
	fmt.Println()
	fmt.Println("mk_point and mk_span instantiate it incompatibly — and correctly:")
	fmt.Println("  mk_point:", res.Signature("mk_point").Ret)
	fmt.Println("  mk_span: ", res.Signature("mk_span").Ret)
}
