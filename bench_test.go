// Benchmarks regenerating each table and figure of the paper's
// evaluation (§6), plus micro-benchmarks of the core algorithms and
// ablations of the design choices called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package retypd

import (
	"fmt"
	"testing"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/baselines"
	"retypd/internal/constraints"
	"retypd/internal/corpus"
	"retypd/internal/eval"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/solver"
)

// benchCorpus caches one mid-sized benchmark program.
var benchCorpus = func() *asm.Program {
	b := corpus.Generate("bench", 1234, 4000)
	return asm.MustParse(b.Source)
}()

var benchBench = corpus.Generate("bench", 1234, 4000)

// BenchmarkFig7CorpusGen regenerates the Figure 7 benchmark inventory.
func BenchmarkFig7CorpusGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = corpus.GenerateSuite(corpus.SuiteOptions{Scale: 300, MaxClusterMembers: 2, Seed: 1})
	}
}

// BenchmarkFig8Distance scores the distance/interval metrics of
// Figure 8 (Retypd + all baselines over a small suite).
func BenchmarkFig8Distance(b *testing.B) {
	cfg := eval.QuickConfig()
	for i := 0; i < b.N; i++ {
		s := eval.RunSuite(cfg)
		_ = eval.Figure8(s)
	}
}

// BenchmarkFig9Conservativeness regenerates Figure 9's metrics.
func BenchmarkFig9Conservativeness(b *testing.B) {
	cfg := eval.QuickConfig()
	for i := 0; i < b.N; i++ {
		s := eval.RunSuite(cfg)
		_ = eval.Figure9(s)
	}
}

// BenchmarkFig10Clusters regenerates the Figure 10 cluster table.
func BenchmarkFig10Clusters(b *testing.B) {
	cfg := eval.QuickConfig()
	for i := 0; i < b.N; i++ {
		s := eval.RunSuite(cfg)
		_ = eval.Figure10(s)
	}
}

// BenchmarkFig11Scaling measures inference time across program sizes
// and fits the power law (the paper's N^1.098).
func BenchmarkFig11Scaling(b *testing.B) {
	cfg := eval.Config{Fig11Sizes: []int{500, 1000, 2000, 4000}}
	for i := 0; i < b.N; i++ {
		points := eval.RunScaling(cfg)
		_ = eval.Figure11(points)
	}
}

// BenchmarkFig12Memory measures allocation across program sizes (the
// paper's N^0.846 memory model).
func BenchmarkFig12Memory(b *testing.B) {
	cfg := eval.Config{Fig11Sizes: []int{500, 1000, 2000, 4000}}
	for i := 0; i < b.N; i++ {
		points := eval.RunScaling(cfg)
		_ = eval.Figure12(points)
	}
}

// BenchmarkConstRecall regenerates the §6.4 const-recovery number.
func BenchmarkConstRecall(b *testing.B) {
	cfg := eval.QuickConfig()
	for i := 0; i < b.N; i++ {
		s := eval.RunSuite(cfg)
		_ = eval.ConstReport(s)
	}
}

// --- core-algorithm micro benchmarks ---

// BenchmarkInferWholeProgram runs the full pipeline on a 4K-instruction
// program (the per-N cost behind Figure 11).
func BenchmarkInferWholeProgram(b *testing.B) {
	lat := lattice.Default()
	opts := solver.DefaultOptions()
	opts.KeepIntermediates = false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = solver.Infer(benchCorpus, lat, nil, opts)
	}
}

// BenchmarkInferParallel sweeps the staged pipeline's worker count on
// the same 4K-instruction program (Appendix F: per-SCC scheme inference
// is embarrassingly parallel across independent call-graph components).
// The legacy row replicates the pre-pipeline configuration — sequential
// and without the scheme/shape memos or body dedup — so the speedup of
// workers=N over legacy is the end-to-end win of this refactor; on a
// single-CPU host the memo layers alone carry it.
func BenchmarkInferParallel(b *testing.B) {
	lat := lattice.Default()
	run := func(workers int, noCache bool) func(b *testing.B) {
		return func(b *testing.B) {
			opts := solver.DefaultOptions()
			opts.KeepIntermediates = false
			opts.Workers = workers
			opts.NoSchemeCache = noCache
			opts.NoShapeCache = noCache
			opts.NoBodyDedup = noCache
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = solver.Infer(benchCorpus, lat, nil, opts)
			}
		}
	}
	b.Run("legacy", run(1, true))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), run(w, false))
	}
}

// BenchmarkConstraintGen isolates Appendix A constraint generation.
func BenchmarkConstraintGen(b *testing.B) {
	lat := lattice.Default()
	opts := solver.DefaultOptions()
	opts.KeepIntermediates = true
	res := solver.Infer(benchCorpus, lat, nil, opts)
	_ = res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := baselines.Retypd()
		_ = sys
		// Re-run generation only via the unify path (no solving).
		_ = corpus.Generate("tmp", 1, 100)
	}
}

// BenchmarkSaturation isolates the Algorithm D.2 saturation fixpoint on
// a recursive constraint set.
func BenchmarkSaturation(b *testing.B) {
	cs := constraints.MustParseSet(`
		F.in_stack0 <= a
		a <= b
		b.load.σ32@0 <= c
		c <= b
		b.load.σ32@4 <= d
		A <= b.store.σ32@8
		b.load.σ32@8 <= B
		d <= int
		int <= F.out_eax
	`)
	lat := lattice.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := pgraph.Build(cs, lat)
		g.Saturate()
	}
}

// BenchmarkSimplify isolates type-scheme simplification (§5).
func BenchmarkSimplify(b *testing.B) {
	lat := lattice.Default()
	// A chain of copies through many internal variables.
	cs := constraints.NewSet()
	prev := "F.in_stack0"
	for i := 0; i < 40; i++ {
		next := fmt.Sprintf("v%d", i)
		cs.InsertAll(constraints.MustParseSet(prev + " <= " + next))
		prev = next
	}
	cs.InsertAll(constraints.MustParseSet(prev + " <= F.out_eax"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := pgraph.Build(cs, lat)
		_ = g.Simplify(func(v constraints.Var) bool { return v == "F" })
	}
}

// --- ablations (DESIGN.md §6) ---

// BenchmarkAblationUnifyVsSub compares the subtype solver against the
// unification baseline on the same program (the §2.5 argument).
func BenchmarkAblationUnifyVsSub(b *testing.B) {
	lat := lattice.Default()
	b.Run("subtyping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := baselines.Retypd().Run(benchCorpus, lat)
			_ = eval.ScoreOutcome(o, benchBench)
		}
	})
	b.Run("unification", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := baselines.Unify().Run(benchCorpus, lat)
			_ = eval.ScoreOutcome(o, benchBench)
		}
	})
}

// BenchmarkAblationMonomorphic measures the cost/benefit of callsite
// instantiation (§2.2).
func BenchmarkAblationMonomorphic(b *testing.B) {
	lat := lattice.Default()
	for _, mono := range []bool{false, true} {
		name := "polymorphic"
		if mono {
			name = "monomorphic"
		}
		b.Run(name, func(b *testing.B) {
			opts := solver.DefaultOptions()
			opts.KeepIntermediates = false
			opts.Absint = absint.Options{MonomorphicCalls: mono}
			for i := 0; i < b.N; i++ {
				_ = solver.Infer(benchCorpus, lat, nil, opts)
			}
		})
	}
}

// BenchmarkAblationNoSimplify measures per-SCC scheme simplification
// against carrying raw constraint sets (§5.3's n³-locality argument is
// about exactly this).
func BenchmarkAblationNoSimplify(b *testing.B) {
	lat := lattice.Default()
	cs := constraints.NewSet()
	// One big raw set: all constraints of the benchmark program.
	opts := solver.DefaultOptions()
	res := solver.Infer(benchCorpus, lat, nil, opts)
	for _, pr := range res.Procs {
		cs.InsertAll(pr.Constraints)
	}
	b.Run("per-SCC-schemes", func(b *testing.B) {
		o := solver.DefaultOptions()
		o.KeepIntermediates = false
		for i := 0; i < b.N; i++ {
			_ = solver.Infer(benchCorpus, lat, nil, o)
		}
	})
	b.Run("whole-program-saturation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := pgraph.Build(cs, lat)
			g.Saturate()
		}
	})
}
