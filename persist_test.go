package retypd

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"retypd/internal/corpus"
)

// persistReport is what each child process writes for the parent to
// compare: the full rendered inference output plus the memo stats.
type persistReport struct {
	Output string
	Stats  CacheStats
}

// childProgram is the corpus program both children analyze. Fresh
// processes intern in different orders by construction (the "load"
// child interns the cache file's contents before the program), so this
// exercises exactly the id-independence the wire forms promise.
func childProgram() *Program {
	b := corpus.Generate("persistproc", 41, 4000)
	return MustParseAsm(b.Source)
}

// TestCachePersistFreshProcess is the acceptance golden for cache
// persistence: a cache saved by one process and loaded by a second,
// genuinely fresh process (separate address space, separate intern
// tables) serves nonzero body/scheme/shape hits with byte-identical
// output. The test re-executes its own binary in two roles.
func TestCachePersistFreshProcess(t *testing.T) {
	switch os.Getenv("RETYPD_PERSIST_ROLE") {
	case "save":
		persistChildSave(t)
		return
	case "load":
		persistChildLoad(t)
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	dir := t.TempDir()
	run := func(role string) {
		cmd := exec.Command(exe, "-test.run", "^TestCachePersistFreshProcess$", "-test.v")
		cmd.Env = append(os.Environ(), "RETYPD_PERSIST_ROLE="+role, "RETYPD_PERSIST_DIR="+dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s child failed: %v\n%s", role, err, out)
		}
		if !strings.Contains(string(out), "PASS") {
			t.Fatalf("%s child did not pass:\n%s", role, out)
		}
	}
	run("save")
	run("load")

	var saved, loaded persistReport
	readReport(t, filepath.Join(dir, "save.json"), &saved)
	readReport(t, filepath.Join(dir, "load.json"), &loaded)

	if saved.Output != loaded.Output {
		t.Error("fresh-process warm output differs from cold output byte-for-byte")
	}
	// A fully warm run serves every duplicate body from the persisted
	// body-class table, so its serves land in BodyDedupCrossHits rather
	// than the in-program BodyDedupHits counter.
	if loaded.Stats.SchemeHits == 0 || loaded.Stats.ShapeHits == 0 ||
		loaded.Stats.BodyDedupHits+loaded.Stats.BodyDedupCrossHits == 0 {
		t.Errorf("warm fresh process must hit every memo layer: scheme=%d shape=%d body=%d cross=%d",
			loaded.Stats.SchemeHits, loaded.Stats.ShapeHits,
			loaded.Stats.BodyDedupHits, loaded.Stats.BodyDedupCrossHits)
	}
	// The persisted entries must genuinely serve: the warm process may
	// only miss where results are uncacheable, never more than cold.
	if loaded.Stats.SchemeMisses > saved.Stats.SchemeMisses {
		t.Errorf("warm scheme misses %d exceed cold %d", loaded.Stats.SchemeMisses, saved.Stats.SchemeMisses)
	}
	if loaded.Stats.ShapeMisses > saved.Stats.ShapeMisses {
		t.Errorf("warm shape misses %d exceed cold %d", loaded.Stats.ShapeMisses, saved.Stats.ShapeMisses)
	}
}

// TestBodyClassPersistFreshProcess is the acceptance golden for the
// engine's persistent body-class layer: a cache saved after analyzing
// program A, loaded in a genuinely fresh process, serves whole
// procedures of program B — A's twin under a systematic rename, the
// shared-library case — without the front end running, byte-identical
// to a cold run of B. The test re-executes its own binary in three
// roles.
func TestBodyClassPersistFreshProcess(t *testing.T) {
	progA := func() *Program {
		return MustParseAsm(corpus.GenerateWithPrefix("bodyclass", "", 31, 2500).Source)
	}
	progB := func() *Program {
		return MustParseAsm(corpus.GenerateWithPrefix("bodyclass", "v2_", 31, 2500).Source)
	}
	dir := os.Getenv("RETYPD_PERSIST_DIR")
	switch os.Getenv("RETYPD_PERSIST_ROLE") {
	case "bodysave":
		eng := NewEngine(nil)
		eng.Infer(progA(), nil)
		if err := eng.SaveCache(filepath.Join(dir, "retypd.cache")); err != nil {
			t.Fatal(err)
		}
		return
	case "bodywarm":
		eng, err := LoadCache(filepath.Join(dir, "retypd.cache"))
		if err != nil {
			t.Fatal(err)
		}
		writeReport(t, filepath.Join(dir, "warm.json"), eng.Infer(progB(), nil))
		return
	case "bodycold":
		writeReport(t, filepath.Join(dir, "cold.json"), Infer(progB(), nil))
		return
	case "":
	default:
		return // a role belonging to another subprocess test
	}

	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	dir = t.TempDir()
	run := func(role string) {
		cmd := exec.Command(exe, "-test.run", "^TestBodyClassPersistFreshProcess$", "-test.v")
		cmd.Env = append(os.Environ(), "RETYPD_PERSIST_ROLE="+role, "RETYPD_PERSIST_DIR="+dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s child failed: %v\n%s", role, err, out)
		}
		if !strings.Contains(string(out), "PASS") {
			t.Fatalf("%s child did not pass:\n%s", role, out)
		}
	}
	run("bodysave")
	run("bodywarm")
	run("bodycold")

	var warm, cold persistReport
	readReport(t, filepath.Join(dir, "warm.json"), &warm)
	readReport(t, filepath.Join(dir, "cold.json"), &cold)
	if warm.Output != cold.Output {
		t.Error("cross-program warm output differs from cold output byte-for-byte")
	}
	if warm.Stats.BodyDedupCrossHits == 0 {
		t.Errorf("renamed twin program served no cross-program body classes: %+v", warm.Stats)
	}
}

// TestSessionPersistFreshProcess is the acceptance golden for session
// persistence at the public API: a session saved by one process and
// loaded by a second, genuinely fresh process replays an unchanged
// program entirely, byte-identical to a cold run.
func TestSessionPersistFreshProcess(t *testing.T) {
	prog := func() *Program {
		return MustParseAsm(corpus.Generate("sessproc", 43, 2500).Source)
	}
	dir := os.Getenv("RETYPD_PERSIST_DIR")
	switch os.Getenv("RETYPD_PERSIST_ROLE") {
	case "sesssave":
		eng := NewEngine(nil)
		writeReport(t, filepath.Join(dir, "cold.json"), eng.Infer(prog(), nil))
		if err := eng.SaveSession(filepath.Join(dir, "retypd.session")); err != nil {
			t.Fatal(err)
		}
		return
	case "sessload":
		eng, err := LoadSession(filepath.Join(dir, "retypd.session"), nil)
		if err != nil {
			t.Fatal(err)
		}
		writeReport(t, filepath.Join(dir, "warm.json"), eng.Reanalyze(prog()))
		return
	case "":
	default:
		return // a role belonging to another subprocess test
	}

	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	dir = t.TempDir()
	run := func(role string) {
		cmd := exec.Command(exe, "-test.run", "^TestSessionPersistFreshProcess$", "-test.v")
		cmd.Env = append(os.Environ(), "RETYPD_PERSIST_ROLE="+role, "RETYPD_PERSIST_DIR="+dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s child failed: %v\n%s", role, err, out)
		}
		if !strings.Contains(string(out), "PASS") {
			t.Fatalf("%s child did not pass:\n%s", role, out)
		}
	}
	run("sesssave")
	run("sessload")

	var cold, warm persistReport
	readReport(t, filepath.Join(dir, "cold.json"), &cold)
	readReport(t, filepath.Join(dir, "warm.json"), &warm)
	if warm.Output != cold.Output {
		t.Error("fresh-process session replay differs from cold output byte-for-byte")
	}
	if warm.Stats.RecomputedProcs != 0 || warm.Stats.ReplayedProcs == 0 {
		t.Errorf("fresh-process replay of unchanged program: replayed=%d recomputed=%d",
			warm.Stats.ReplayedProcs, warm.Stats.RecomputedProcs)
	}
}

func persistChildSave(t *testing.T) {
	dir := os.Getenv("RETYPD_PERSIST_DIR")
	eng := NewEngine(nil)
	res := eng.Infer(childProgram(), nil)
	writeReport(t, filepath.Join(dir, "save.json"), res)
	if err := eng.SaveCache(filepath.Join(dir, "retypd.cache")); err != nil {
		t.Fatal(err)
	}
}

func persistChildLoad(t *testing.T) {
	dir := os.Getenv("RETYPD_PERSIST_DIR")
	eng, err := LoadCache(filepath.Join(dir, "retypd.cache"))
	if err != nil {
		t.Fatal(err)
	}
	sn, shn := eng.CacheLen()
	if sn == 0 || shn == 0 {
		t.Fatalf("loaded cache is empty: %d scheme, %d shape entries", sn, shn)
	}
	res := eng.Infer(childProgram(), nil)
	writeReport(t, filepath.Join(dir, "load.json"), res)
}

func writeReport(t *testing.T, path string, res *Result) {
	t.Helper()
	blob, err := json.Marshal(persistReport{Output: res.Report(), Stats: res.CacheStats()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func readReport(t *testing.T, path string, into *persistReport) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, into); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePublicAPI: the Engine quick-start — warm second run,
// incremental third — all byte-identical to one-shot Infer.
func TestEnginePublicAPI(t *testing.T) {
	src := `
proc use_fd
    mov ebx, [esp+4]
    push ebx
    call close
    add esp, 4
    ret
endproc

proc twice
    push 5
    call use_fd
    add esp, 4
    push eax
    call use_fd
    add esp, 4
    ret
endproc
`
	eng := NewEngine(nil)
	first := eng.Infer(MustParseAsm(src), nil)
	oneShot := Infer(MustParseAsm(src), nil)
	if first.Report() != oneShot.Report() {
		t.Error("engine output differs from one-shot Infer")
	}

	// Unchanged re-analysis: everything replays.
	again := eng.Reanalyze(MustParseAsm(src))
	if again.Report() != oneShot.Report() {
		t.Error("reanalysis of identical program changed output")
	}
	st := again.CacheStats()
	if st.ReplayedProcs != 2 || st.RecomputedProcs != 0 {
		t.Errorf("identical reanalysis: replayed=%d recomputed=%d, want 2/0", st.ReplayedProcs, st.RecomputedProcs)
	}

	// Mutate the leaf: its caller is an ancestor and recomputes too.
	mut := strings.Replace(src, "mov ebx, [esp+4]", "mov ebx, [esp+8]", 1)
	inc := eng.Reanalyze(MustParseAsm(mut))
	scratch := Infer(MustParseAsm(mut), nil)
	if inc.Report() != scratch.Report() {
		t.Error("incremental output differs from scratch")
	}
	st = inc.CacheStats()
	if st.RecomputedProcs != 2 {
		t.Errorf("mutating the callee of every proc should recompute both: %+v", st)
	}
}

// TestEngineReanalyzeWithoutSession: Reanalyze on a virgin engine is a
// full (but valid) run.
func TestEngineReanalyzeWithoutSession(t *testing.T) {
	eng := NewEngine(nil)
	prog := MustParseAsm("proc f\n    mov eax, [esp+4]\n    ret\nendproc\n")
	res := eng.Reanalyze(prog)
	if res.Scheme("f") == nil {
		t.Fatal("virgin-engine Reanalyze produced no scheme")
	}
	st := res.CacheStats()
	if st.ReplayedProcs != 0 {
		t.Errorf("virgin engine cannot replay: %+v", st)
	}
}
