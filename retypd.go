// Package retypd is a from-scratch Go implementation of Retypd, the
// machine-code type-inference system of Noonan, Loginov and Cok,
// "Polymorphic Type Inference for Machine Code" (PLDI 2016).
//
// Retypd recovers high-level types from stripped machine code. It
// infers recursively constrained polymorphic type schemes (∀τ.C ⇒ τ)
// per procedure by encoding subtype-constraint entailment as an
// unconstrained pushdown system, solves the constraints over the
// lattice of sketches, and finally converts sketches to familiar C
// types with a separate, heuristic display phase (const recovery,
// unions, recursive struct typedefs).
//
// # Quick start
//
//	prog := retypd.MustParseAsm(src)      // the x86-like IR substrate
//	res := retypd.Infer(prog, nil)        // default Λ, libc summaries
//	for _, p := range res.ProcNames() {
//	    fmt.Println(res.Scheme(p))        // ∀F. (∃τ. C) ⇒ F
//	    fmt.Println(res.Signature(p))     // int close_last(const Struct_0 *);
//	}
//
// The Config hooks expose the paper's design space: a custom lattice Λ
// of atomic types and semantic tags (§2.8, §3.5), external function
// summaries (§4.2), monomorphic/trace-restricted constraint generation
// (the evaluation baselines), and the specialization policy (F.3).
package retypd

import (
	"fmt"
	"sort"
	"strings"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/constraints"
	"retypd/internal/ctype"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
	"retypd/internal/solver"
	"retypd/internal/summaries"
)

// Re-exported substrate types, so that example programs and downstream
// tools need only this package.
type (
	// Program is a parsed assembly module.
	Program = asm.Program
	// Lattice is the auxiliary lattice Λ of atomic types.
	Lattice = lattice.Lattice
	// LatticeBuilder declares custom Λ elements and subtyping.
	LatticeBuilder = lattice.Builder
	// Summaries maps external symbols to type schemes.
	Summaries = summaries.Table
	// Sketch is the solved type representation (§3.5).
	Sketch = sketch.Sketch
	// CType is the displayed C type AST.
	CType = ctype.Type
	// Scheme is a recursively constrained polymorphic type scheme.
	Scheme = constraints.Scheme
	// Signature is a rendered C procedure signature.
	Signature = ctype.Signature
)

// Config customizes inference; the zero value selects the
// paper-faithful configuration with the stock lattice and summaries.
type Config struct {
	// Lattice is the auxiliary lattice Λ (nil: lattice.Default()).
	Lattice *Lattice
	// Summaries models external functions (nil: summaries.Default()).
	Summaries Summaries
	// Monomorphic disables callsite-tagged scheme instantiation.
	Monomorphic bool
	// NoSpecialize disables the F.3 parameter-specialization policy.
	NoSpecialize bool
	// MaxSketchDepth truncates recursive sketches when ≥ 0 (-0 means
	// unbounded when zero value is used; set to -1 explicitly for
	// clarity).
	MaxSketchDepth int
	// Workers bounds the solver pipeline's concurrency: 1 is fully
	// sequential, 0 (the default) uses one worker per CPU. Inference
	// output is identical for every value.
	Workers int
}

// Result is the inference outcome for a program.
type Result struct {
	inner *solver.Result
	conv  *ctype.Converter
}

// ParseAsm parses the textual assembly substrate format.
func ParseAsm(src string) (*Program, error) { return asm.Parse(src) }

// MustParseAsm panics on parse errors.
func MustParseAsm(src string) *Program { return asm.MustParse(src) }

// NewLatticeBuilder returns the stock Λ as an extensible builder
// (§2.8: end users may adjust the initial type hierarchy).
func NewLatticeBuilder() *LatticeBuilder { return lattice.DefaultBuilder() }

// Infer runs the full Retypd pipeline on prog.
func Infer(prog *Program, cfg *Config) *Result {
	if cfg == nil {
		cfg = &Config{}
	}
	lat := cfg.Lattice
	if lat == nil {
		lat = lattice.Default()
	}
	opts := solver.DefaultOptions()
	opts.Absint = absint.Options{MonomorphicCalls: cfg.Monomorphic}
	opts.NoSpecialize = cfg.NoSpecialize
	opts.Workers = cfg.Workers
	if cfg.MaxSketchDepth > 0 {
		opts.MaxSketchDepth = cfg.MaxSketchDepth
	}
	res := solver.Infer(prog, lat, cfg.Summaries, opts)
	return &Result{inner: res, conv: ctype.NewConverter(lat)}
}

// ProcNames lists the program's procedures, sorted.
func (r *Result) ProcNames() []string {
	var out []string
	for n := range r.inner.Procs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scheme returns the inferred polymorphic type scheme for proc.
func (r *Result) Scheme(proc string) *Scheme {
	if p, ok := r.inner.Procs[proc]; ok {
		return p.Scheme
	}
	return nil
}

// ProcSketch returns the solved sketch of proc's type variable.
func (r *Result) ProcSketch(proc string) *Sketch {
	if p, ok := r.inner.Procs[proc]; ok {
		return p.Sketch
	}
	return nil
}

// ParamSketch returns the (specialized, if available) sketch of the
// idx-th formal parameter.
func (r *Result) ParamSketch(proc string, idx int) (*Sketch, bool) {
	p, ok := r.inner.Procs[proc]
	if !ok || idx >= len(p.FormalIns) {
		return nil, false
	}
	return p.InSketch(p.FormalIns[idx].ParamName())
}

// Signature renders proc's C signature through the display policies of
// §4.3.
func (r *Result) Signature(proc string) *Signature {
	p, ok := r.inner.Procs[proc]
	if !ok {
		return nil
	}
	sig := &Signature{Name: proc, Ret: ctype.Prim("void")}
	for _, l := range p.FormalIns {
		loc := l.ParamName()
		sk, ok := p.InSketch(loc)
		var t *CType
		if ok {
			t = r.conv.ConvertParam(sk)
		} else {
			t = ctype.Unknown()
		}
		sig.Params = append(sig.Params, ctype.Param{Loc: loc, Type: t})
	}
	if p.HasOut {
		if sk, ok := p.OutSketch(); ok {
			sig.Ret = r.conv.FromSketch(sk)
		} else {
			sig.Ret = ctype.Unknown()
		}
	}
	return sig
}

// Typedefs returns the named struct typedefs created while rendering
// signatures (recursive types, Figure 2's Struct_0).
func (r *Result) Typedefs() []*CType { return r.conv.Structs }

// NumParams reports the number of recovered formal parameters.
func (r *Result) NumParams(proc string) int {
	if p, ok := r.inner.Procs[proc]; ok {
		return len(p.FormalIns)
	}
	return 0
}

// ParamLocs lists the recovered formal parameter locations.
func (r *Result) ParamLocs(proc string) []string {
	p, ok := r.inner.Procs[proc]
	if !ok {
		return nil
	}
	var out []string
	for _, l := range p.FormalIns {
		out = append(out, l.ParamName())
	}
	return out
}

// HasOut reports whether proc returns a value.
func (r *Result) HasOut(proc string) bool {
	if p, ok := r.inner.Procs[proc]; ok {
		return p.HasOut
	}
	return false
}

// IsConstParam reports whether the const-recovery policy (Example 4.1)
// annotates the idx-th parameter: a pointer loaded through but never
// stored through.
func (r *Result) IsConstParam(proc string, idx int) bool {
	sk, ok := r.ParamSketch(proc, idx)
	if !ok {
		return false
	}
	hasLoad := sk.Accepts(label.Word{label.Load()})
	hasStore := sk.Accepts(label.Word{label.Store()})
	return hasLoad && !hasStore
}

// Report renders a human-readable summary of all inferred types.
func (r *Result) Report() string {
	var b strings.Builder
	for _, name := range r.ProcNames() {
		fmt.Fprintf(&b, "%s\n", r.Signature(name))
		fmt.Fprintf(&b, "  scheme: %s\n", r.Scheme(name))
	}
	if ts := r.Typedefs(); len(ts) > 0 {
		b.WriteString("\ntypedefs:\n")
		for _, t := range ts {
			fmt.Fprintf(&b, "  %s;\n", t)
		}
	}
	return b.String()
}

// Internal accessor for the evaluation harness.
func (r *Result) Solver() *solver.Result { return r.inner }
