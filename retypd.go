// Package retypd is a from-scratch Go implementation of Retypd, the
// machine-code type-inference system of Noonan, Loginov and Cok,
// "Polymorphic Type Inference for Machine Code" (PLDI 2016).
//
// Retypd recovers high-level types from stripped machine code. It
// infers recursively constrained polymorphic type schemes (∀τ.C ⇒ τ)
// per procedure by encoding subtype-constraint entailment as an
// unconstrained pushdown system, solves the constraints over the
// lattice of sketches, and finally converts sketches to familiar C
// types with a separate, heuristic display phase (const recovery,
// unions, recursive struct typedefs).
//
// # Quick start
//
//	prog := retypd.MustParseAsm(src)      // the x86-like IR substrate
//	res := retypd.Infer(prog, nil)        // default Λ, libc summaries
//	for _, p := range res.ProcNames() {
//	    fmt.Println(res.Scheme(p))        // ∀F. (∃τ. C) ⇒ F
//	    fmt.Println(res.Signature(p))     // int close_last(const Struct_0 *);
//	}
//
// The Config hooks expose the paper's design space: a custom lattice Λ
// of atomic types and semantic tags (§2.8, §3.5), external function
// summaries (§4.2), monomorphic/trace-restricted constraint generation
// (the evaluation baselines), and the specialization policy (F.3).
package retypd

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/constraints"
	"retypd/internal/ctype"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/sketch"
	"retypd/internal/solver"
	"retypd/internal/summaries"
)

// Re-exported substrate types, so that example programs and downstream
// tools need only this package.
type (
	// Program is a parsed assembly module.
	Program = asm.Program
	// Lattice is the auxiliary lattice Λ of atomic types.
	Lattice = lattice.Lattice
	// LatticeBuilder declares custom Λ elements and subtyping.
	LatticeBuilder = lattice.Builder
	// Summaries maps external symbols to type schemes.
	Summaries = summaries.Table
	// Sketch is the solved type representation (§3.5).
	Sketch = sketch.Sketch
	// CType is the displayed C type AST.
	CType = ctype.Type
	// Scheme is a recursively constrained polymorphic type scheme.
	Scheme = constraints.Scheme
	// Signature is a rendered C procedure signature.
	Signature = ctype.Signature
	// SimplifyCache is a shareable memo of scheme simplifications; see
	// NewSimplifyCache and Config.SchemeCache.
	SimplifyCache = pgraph.SimplifyCache
	// ShapeCache is a shareable memo of phase-2 shape solving; see
	// NewShapeCache and Config.ShapeCache.
	ShapeCache = sketch.ShapeCache
	// AnalysisError is the structured failure of one inference run: a
	// task panicked, the scheduler contained it, and nothing was
	// published. It carries the faulting task's identity (phase, SCC
	// index, procedure) and the original panic value and stack; the
	// engine that returned it remains usable. Returned by the *Context
	// entry points; the legacy entry points re-raise it as a panic.
	AnalysisError = solver.AnalysisError
	// LimitError reports an input rejected by the admission guards
	// (Config.MaxInstructions / MaxProcedures) before any analysis work
	// started.
	LimitError = solver.LimitError
	// ParseError is a structured assembly parse failure carrying the
	// 1-based source line; rendered as "asm:LINE: message".
	ParseError = asm.ParseError
)

// NewSimplifyCache returns a scheme-simplification memo bounded to
// capacity entries (capacity ≤ 0 selects a default of a few thousand).
// One cache may be shared across any number of concurrent Infer calls,
// programs, and lattices: entries are keyed by a canonical
// constraint-set fingerprint that includes the lattice identity, so a
// hit is only ever served to an isomorphic constraint set. Share one
// cache across a batch of Infer calls to simplify duplicate leaf
// procedures once per batch.
func NewSimplifyCache(capacity int) *SimplifyCache {
	return pgraph.NewSimplifyCache(capacity)
}

// NewShapeCache returns a phase-2 shape memo bounded to capacity
// entries (capacity ≤ 0 selects a default of a few thousand). It
// memoizes the expensive half of sketch solving — shape quotient
// construction plus constraint-graph saturation and lattice decoration
// — under the same canonical-fingerprint keys as the scheme memo, and
// with the same sharing contract: one cache may be shared across any
// number of concurrent Infer calls, programs, and lattices. Served
// sketches are immutable (sealed); operations that derive new sketches
// from them copy. Share one cache across a batch of Infer calls so
// duplicate leaf procedures are shape-solved once per batch.
func NewShapeCache(capacity int) *ShapeCache {
	return sketch.NewShapeCache(capacity)
}

// Config customizes inference; the zero value selects the
// paper-faithful configuration with the stock lattice and summaries.
type Config struct {
	// Lattice is the auxiliary lattice Λ of atomic types and semantic
	// tags (§2.8, §3.5). Nil selects the stock lattice
	// (lattice.Default()); build custom ones with NewLatticeBuilder.
	Lattice *Lattice
	// Summaries models external functions as type schemes (§4.2). Nil
	// selects the built-in libc-style table (summaries.Default()).
	Summaries Summaries
	// Monomorphic disables callsite-tagged scheme instantiation
	// (Example A.4): callee interface variables are shared by all
	// callers, as in the monomorphic evaluation baselines.
	Monomorphic bool
	// NoSpecialize disables the F.3 parameter-specialization policy
	// (Example 4.3): formals keep their most-general inferred sketches
	// instead of being met with the join of observed callsite actuals.
	NoSpecialize bool
	// MaxSketchDepth truncates recursive sketches when > 0, modeling
	// systems without recursive types (the TIE-style baseline). The
	// zero value means unbounded.
	MaxSketchDepth int
	// Workers bounds the solver pipeline's concurrency across all three
	// phases: 1 runs fully sequentially on the calling goroutine, 0
	// (the default) uses one worker per CPU, and any other positive
	// value caps the worker pool at that size. Inference output is
	// deterministic and byte-identical for every value.
	Workers int
	// SchemeCache, when non-nil, memoizes scheme simplification across
	// procedures with isomorphic constraint sets — including across
	// Infer calls that share the cache (see NewSimplifyCache for the
	// sharing contract). Nil gives this Infer call a private cache, so
	// duplicates are still shared within the call. The cache never
	// changes inference output, only how often simplification runs.
	//
	// Deprecated: hold a long-lived Engine instead — it owns one cache
	// of each kind, shares them across every call, persists them
	// (SaveCache/LoadCache), and adds incremental re-analysis on top.
	// This field remains honored by package-level Infer for one release
	// and is ignored by Engine.Infer.
	SchemeCache *SimplifyCache
	// NoSchemeCache disables simplification memoization entirely, even
	// when SchemeCache is set — the knob used to measure the uncached
	// baseline.
	NoSchemeCache bool
	// ShapeCache, when non-nil, memoizes phase-2 sketch solving across
	// procedures with isomorphic constraint sets — including across
	// Infer calls that share the cache (see NewShapeCache for the
	// sharing contract). Nil gives this Infer call a private cache, so
	// duplicates are still shared within the call. The cache never
	// changes inference output, only how often shape solving runs; the
	// sketches it serves are immutable (sealed).
	//
	// Deprecated: hold a long-lived Engine instead (see SchemeCache).
	ShapeCache *ShapeCache
	// NoShapeCache disables shape memoization entirely, even when
	// ShapeCache is set.
	NoShapeCache bool
	// MaxInstructions and MaxProcedures are admission guards for
	// multi-tenant callers: a program exceeding either bound is rejected
	// with a *LimitError before any analysis work — or goroutine —
	// starts. The zero value means unlimited. They never change
	// inference output for admitted programs.
	MaxInstructions int
	MaxProcedures   int
	// NoBodyDedup disables the solver's earliest memo layer:
	// whole-procedure body deduplication ahead of constraint
	// generation. By default, procedures whose IR bodies are equivalent
	// up to register/label renaming and interchangeable callees are
	// abstractly interpreted once per equivalence class and the results
	// translated to the other members. The layer never changes
	// inference output (it is byte-identical on and off) — only how
	// often the constraint-generating front end runs. Dedup activity is
	// reported in Result.CacheStats.
	NoBodyDedup bool
}

// Result is the inference outcome for a program.
type Result struct {
	inner *solver.Result
	conv  *ctype.Converter
}

// ParseAsm parses the textual assembly substrate format.
func ParseAsm(src string) (*Program, error) { return asm.Parse(src) }

// MustParseAsm panics on parse errors.
func MustParseAsm(src string) *Program { return asm.MustParse(src) }

// NewLatticeBuilder returns the stock Λ as an extensible builder
// (§2.8: end users may adjust the initial type hierarchy).
func NewLatticeBuilder() *LatticeBuilder { return lattice.DefaultBuilder() }

// Infer runs the full Retypd pipeline on prog.
//
// Memory model: type-variable names and field-label paths are interned
// into a process-wide append-only symbol table (internal/intern), so
// re-inferring a program is free of new interning but the table grows
// with the number of distinct names ever seen and is not reclaimed.
// For a service inferring an unbounded stream of distinct programs,
// run batches in separate processes to bound table growth.
func Infer(prog *Program, cfg *Config) *Result {
	cfg, lat, opts := resolveConfig(cfg)
	res := solver.Infer(prog, lat, cfg.Summaries, opts)
	return &Result{inner: res, conv: ctype.NewConverter(lat)}
}

// InferContext is Infer under a context: cancellation and deadlines are
// observed cooperatively at task boundaries — the pipeline drains its
// worker pool and returns ctx.Err() instead of a partial result, and an
// already-cancelled context returns before any worker spawns. A panic
// inside an analysis task is contained and returned as a structured
// *AnalysisError; a program exceeding Config.MaxInstructions or
// MaxProcedures is rejected with a *LimitError. On any error no cache
// or session state of the failed run was published.
func InferContext(ctx context.Context, prog *Program, cfg *Config) (*Result, error) {
	cfg, lat, opts := resolveConfig(cfg)
	res, err := solver.InferContext(ctx, prog, lat, cfg.Summaries, opts)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res, conv: ctype.NewConverter(lat)}, nil
}

// solverOptions maps the public Config knobs onto solver.Options.
func solverOptions(cfg *Config) solver.Options {
	opts := solver.DefaultOptions()
	opts.Absint = absint.Options{MonomorphicCalls: cfg.Monomorphic}
	opts.NoSpecialize = cfg.NoSpecialize
	opts.Workers = cfg.Workers
	opts.SchemeCache = cfg.SchemeCache
	opts.NoSchemeCache = cfg.NoSchemeCache
	opts.ShapeCache = cfg.ShapeCache
	opts.NoShapeCache = cfg.NoShapeCache
	opts.NoBodyDedup = cfg.NoBodyDedup
	opts.MaxInstructions = cfg.MaxInstructions
	opts.MaxProcedures = cfg.MaxProcedures
	if cfg.MaxSketchDepth > 0 {
		opts.MaxSketchDepth = cfg.MaxSketchDepth
	}
	return opts
}

// ProcNames lists the program's procedures, sorted.
func (r *Result) ProcNames() []string {
	var out []string
	for n := range r.inner.Procs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scheme returns the inferred polymorphic type scheme for proc.
func (r *Result) Scheme(proc string) *Scheme {
	if p, ok := r.inner.Procs[proc]; ok {
		return p.Scheme
	}
	return nil
}

// ProcSketch returns the solved sketch of proc's type variable.
func (r *Result) ProcSketch(proc string) *Sketch {
	if p, ok := r.inner.Procs[proc]; ok {
		return p.Sketch
	}
	return nil
}

// ParamSketch returns the (specialized, if available) sketch of the
// idx-th formal parameter.
func (r *Result) ParamSketch(proc string, idx int) (*Sketch, bool) {
	p, ok := r.inner.Procs[proc]
	if !ok || idx >= len(p.FormalIns) {
		return nil, false
	}
	return p.InSketch(p.FormalIns[idx].ParamName())
}

// Signature renders proc's C signature through the display policies of
// §4.3.
func (r *Result) Signature(proc string) *Signature {
	p, ok := r.inner.Procs[proc]
	if !ok {
		return nil
	}
	sig := &Signature{Name: proc, Ret: ctype.Prim("void")}
	for _, l := range p.FormalIns {
		loc := l.ParamName()
		sk, ok := p.InSketch(loc)
		var t *CType
		if ok {
			t = r.conv.ConvertParam(sk)
		} else {
			t = ctype.Unknown()
		}
		sig.Params = append(sig.Params, ctype.Param{Loc: loc, Type: t})
	}
	if p.HasOut {
		if sk, ok := p.OutSketch(); ok {
			sig.Ret = r.conv.FromSketch(sk)
		} else {
			sig.Ret = ctype.Unknown()
		}
	}
	return sig
}

// Typedefs returns the named struct typedefs created while rendering
// signatures (recursive types, Figure 2's Struct_0).
func (r *Result) Typedefs() []*CType { return r.conv.Structs }

// NumParams reports the number of recovered formal parameters.
func (r *Result) NumParams(proc string) int {
	if p, ok := r.inner.Procs[proc]; ok {
		return len(p.FormalIns)
	}
	return 0
}

// ParamLocs lists the recovered formal parameter locations.
func (r *Result) ParamLocs(proc string) []string {
	p, ok := r.inner.Procs[proc]
	if !ok {
		return nil
	}
	var out []string
	for _, l := range p.FormalIns {
		out = append(out, l.ParamName())
	}
	return out
}

// HasOut reports whether proc returns a value.
func (r *Result) HasOut(proc string) bool {
	if p, ok := r.inner.Procs[proc]; ok {
		return p.HasOut
	}
	return false
}

// IsConstParam reports whether the const-recovery policy (Example 4.1)
// annotates the idx-th parameter: a pointer loaded through but never
// stored through.
func (r *Result) IsConstParam(proc string, idx int) bool {
	sk, ok := r.ParamSketch(proc, idx)
	if !ok {
		return false
	}
	hasLoad := sk.Accepts(label.Word{label.Load()})
	hasStore := sk.Accepts(label.Word{label.Store()})
	return hasLoad && !hasStore
}

// Report renders a human-readable summary of all inferred types.
func (r *Result) Report() string {
	var b strings.Builder
	for _, name := range r.ProcNames() {
		fmt.Fprintf(&b, "%s\n", r.Signature(name))
		fmt.Fprintf(&b, "  scheme: %s\n", r.Scheme(name))
	}
	if ts := r.Typedefs(); len(ts) > 0 {
		b.WriteString("\ntypedefs:\n")
		for _, t := range ts {
			fmt.Fprintf(&b, "  %s;\n", t)
		}
	}
	return b.String()
}

// CacheStats reports the effectiveness of the three memo layers for
// one Infer call (body → scheme → sketch; see docs/ARCHITECTURE.md).
// All fields of a disabled layer are zero.
type CacheStats struct {
	// SchemeHits/SchemeMisses count scheme-simplification memo lookups
	// (pgraph.SimplifyCache).
	SchemeHits, SchemeMisses uint64
	// ShapeHits/ShapeMisses count phase-2 sketch memo lookups
	// (sketch.ShapeCache).
	ShapeHits, ShapeMisses uint64
	// BodyDedupHits counts procedures served by whole-body
	// deduplication (constraint generation skipped entirely);
	// BodyDedupMisses counts fingerprinted procedures that ran the
	// full path.
	BodyDedupHits, BodyDedupMisses uint64
	// BodyDedupCrossHits counts procedures served from the engine's
	// persistent body-class table — results published by an earlier run
	// of the same engine (or carried in by LoadCache), possibly over a
	// different program. In-program duplicates of such a procedure are
	// also served from the table, so a fully warm run reports all its
	// serves here and none in BodyDedupHits.
	BodyDedupCrossHits uint64
	// ReplayedProcs and RecomputedProcs report incremental re-analysis
	// (Engine.Reanalyze): procedures replayed verbatim from the
	// previous session versus procedures recomputed because their body
	// — or a transitive callee's, or their SCC membership — changed.
	// Both zero for non-incremental runs.
	ReplayedProcs, RecomputedProcs uint64
}

// CacheStats reports the effectiveness of the scheme, shape, and
// body-dedup memo layers for this Infer call.
func (r *Result) CacheStats() CacheStats {
	return CacheStats{
		SchemeHits:         r.inner.SchemeCacheHits,
		SchemeMisses:       r.inner.SchemeCacheMisses,
		ShapeHits:          r.inner.ShapeCacheHits,
		ShapeMisses:        r.inner.ShapeCacheMisses,
		BodyDedupHits:      r.inner.BodyDedupHits,
		BodyDedupMisses:    r.inner.BodyDedupMisses,
		BodyDedupCrossHits: r.inner.BodyDedupCrossHits,
		ReplayedProcs:      r.inner.ReplayedProcs,
		RecomputedProcs:    r.inner.RecomputedProcs,
	}
}

// Internal accessor for the evaluation harness.
func (r *Result) Solver() *solver.Result { return r.inner }
