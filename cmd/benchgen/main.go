// Command benchgen writes the synthetic benchmark suite (the stand-in
// for the paper's §6.2 binaries) to a directory: one .sasm program and
// one .truth ground-truth listing per benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"retypd/internal/corpus"
)

func main() {
	dir := flag.String("o", "bench-corpus", "output directory")
	scale := flag.Int("scale", 40, "divide the paper's instruction counts by this factor")
	members := flag.Int("members", 6, "max cluster members (paper: up to 107 coreutils)")
	seed := flag.Int64("seed", 20160613, "generation seed")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	benches := corpus.GenerateSuite(corpus.SuiteOptions{
		Scale: *scale, MaxClusterMembers: *members, Seed: *seed,
	})
	for _, b := range benches {
		if err := os.WriteFile(filepath.Join(*dir, b.Name+".sasm"), []byte(b.Source), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		var truth string
		for _, t := range b.Truths {
			c := ""
			if t.Const {
				c = " const"
			}
			truth += fmt.Sprintf("%s %s %d %s%s\n", t.Func, t.Kind, t.Index, t.Type, c)
		}
		if err := os.WriteFile(filepath.Join(*dir, b.Name+".truth"), []byte(truth), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %6d instructions, %4d truth vars (cluster %q)\n",
			b.Name, b.Insts, len(b.Truths), b.Cluster)
	}
}
