// Command benchgen writes the synthetic benchmark suite (the stand-in
// for the paper's §6.2 binaries) to a directory: one .sasm program and
// one .truth ground-truth listing per benchmark.
//
// With -fleet N it instead writes a fleet of N binaries built from one
// codebase: -shared F of each binary's instructions is a common
// library under a binary-local rename (identical bodies, systematically
// renamed procedures), the rest binary-unique code. Analyzing the fleet
// through one engine — or through a persisted cache file — exercises
// the cross-program body-class layer; scripts/check_fleet.sh gates on
// it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"retypd/internal/corpus"
)

func main() {
	dir := flag.String("o", "bench-corpus", "output directory")
	scale := flag.Int("scale", 40, "divide the paper's instruction counts by this factor")
	members := flag.Int("members", 6, "max cluster members (paper: up to 107 coreutils)")
	seed := flag.Int64("seed", 20160613, "generation seed")
	fleet := flag.Int("fleet", 0, "emit a fleet of N binaries sharing a rename-perturbed library instead of the benchmark suite")
	shared := flag.Float64("shared", 0.5, "with -fleet: fraction of each binary's instructions drawn from the shared library")
	fleetInsts := flag.Int("fleetinsts", 4000, "with -fleet: instructions per binary")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	var benches []*corpus.Benchmark
	if *fleet > 0 {
		benches = corpus.GenerateFleet("fleet", *seed, *fleetInsts, *fleet, *shared)
	} else {
		benches = corpus.GenerateSuite(corpus.SuiteOptions{
			Scale: *scale, MaxClusterMembers: *members, Seed: *seed,
		})
	}
	for _, b := range benches {
		if err := os.WriteFile(filepath.Join(*dir, b.Name+".sasm"), []byte(b.Source), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		var truth string
		for _, t := range b.Truths {
			c := ""
			if t.Const {
				c = " const"
			}
			truth += fmt.Sprintf("%s %s %d %s%s\n", t.Func, t.Kind, t.Index, t.Type, c)
		}
		if err := os.WriteFile(filepath.Join(*dir, b.Name+".truth"), []byte(truth), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %6d instructions, %4d truth vars (cluster %q)\n",
			b.Name, b.Insts, len(b.Truths), b.Cluster)
	}
}
