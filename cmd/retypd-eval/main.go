// Command retypd-eval regenerates the paper's evaluation tables and
// figures (§6) on the synthetic corpus.
//
// Usage:
//
//	retypd-eval [-exp fig7|fig8|fig9|fig10|fig11|fig12|const|par|warm|fleet|all]
//	            [-scale N] [-quick] [-j N] [-timeout d] [-timings out.json]
//	            [-fleetn N] [-fleetshared F]
//
// -timeout bounds the whole invocation; SIGINT aborts it. Both exit
// with code 4 (experiments are not incrementally cancellable — the
// process exits rather than waiting for the sweep to finish). Other
// exit codes: 0 success, 1 run/write error, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"retypd/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig7, fig8, fig9, fig10, fig11, fig12, const, par, warm, fleet, all")
	scale := flag.Int("scale", 0, "override corpus scale divisor (default from config)")
	quick := flag.Bool("quick", false, "use the small smoke-test configuration")
	workers := flag.Int("j", 0, "solver worker count for the scaling harness (0 = one per CPU)")
	parSize := flag.Int("parsize", 4000, "program size (instructions) for the -exp par, warm and fleet experiments")
	fleetN := flag.Int("fleetn", 4, "number of binaries in the -exp fleet experiment")
	fleetShared := flag.Float64("fleetshared", 0.5, "shared-library fraction of each -exp fleet binary")
	timeout := flag.Duration("timeout", 0, "abort the whole invocation after this duration (0 = no limit)")
	timings := flag.String("timings", "", "write scaling/parallel measurements to this JSON file")
	flag.Parse()

	// The experiment drivers are batch harnesses without internal
	// cancellation points, so the bound is enforced from outside: on
	// timeout or SIGINT the process exits with a distinct code.
	if *timeout > 0 {
		timer := time.AfterFunc(*timeout, func() {
			fmt.Fprintln(os.Stderr, "retypd-eval: timed out")
			os.Exit(4)
		})
		defer timer.Stop()
	}
	intr := make(chan os.Signal, 1)
	signal.Notify(intr, os.Interrupt)
	go func() {
		<-intr
		fmt.Fprintln(os.Stderr, "retypd-eval: interrupted")
		os.Exit(4)
	}()

	cfg := eval.DefaultConfig()
	if *quick {
		cfg = eval.QuickConfig()
	}
	if *scale > 0 {
		cfg.Suite.Scale = *scale
	}
	cfg.Parallelism = *workers

	needSuite := func(e string) bool {
		switch e {
		case "fig8", "fig9", "fig10", "const", "all":
			return true
		}
		return false
	}
	var suite *eval.SuiteScores
	if needSuite(*exp) {
		fmt.Fprintln(os.Stderr, "generating corpus and running all systems…")
		suite = eval.RunSuite(cfg)
		fmt.Fprintf(os.Stderr, "suite-wide memo effectiveness: body dedup %d hits / %d misses, scheme cache %d hits / %d misses, shape cache %d hits / %d misses\n",
			suite.BodyDedupHits, suite.BodyDedupMisses,
			suite.SchemeCacheHits, suite.SchemeCacheMisses, suite.ShapeCacheHits, suite.ShapeCacheMisses)
	}
	var scaling []eval.ScalingPoint
	if *exp == "fig11" || *exp == "fig12" || *exp == "all" {
		fmt.Fprintln(os.Stderr, "running scaling sweep…")
		scaling = eval.RunScaling(cfg)
	}
	var sweep []eval.ScalingPoint
	if *exp == "par" || *exp == "all" {
		fmt.Fprintln(os.Stderr, "running parallel worker sweep…")
		counts := []int{1, 2, 4, 8}
		if n := runtime.GOMAXPROCS(0); n > 8 {
			counts = append(counts, n)
		}
		sweep = eval.RunParallelSweep(*parSize, counts)
	}
	var warm []eval.ScalingPoint
	if *exp == "warm" || *exp == "all" {
		fmt.Fprintln(os.Stderr, "running warm-start experiment (cold / persisted-cache / incremental)…")
		warm = eval.RunWarmStart(*parSize, 8, *workers)
	}
	var fleet []eval.ScalingPoint
	if *exp == "fleet" || *exp == "all" {
		fmt.Fprintln(os.Stderr, "running fleet experiment (cross-program body classes via the persisted cache)…")
		fleet = eval.RunFleet(*fleetN, *fleetShared, *parSize, 20160613, *workers)
	}

	if *timings != "" {
		// Non-nil so an experiment without timing points writes "[]",
		// not JSON null.
		points := []eval.ScalingPoint{}
		points = append(append(append(append(points, scaling...), sweep...), warm...), fleet...)
		blob, err := json.MarshalIndent(points, "", "  ")
		if err == nil {
			err = os.WriteFile(*timings, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "retypd-eval: write timings:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *timings)
	}

	show := func(e string) {
		switch e {
		case "fig7":
			fmt.Println(eval.Figure7(cfg))
		case "fig8":
			fmt.Println(eval.Figure8(suite))
		case "fig9":
			fmt.Println(eval.Figure9(suite))
		case "fig10":
			fmt.Println(eval.Figure10(suite))
		case "fig11":
			fmt.Println(eval.Figure11(scaling))
		case "fig12":
			fmt.Println(eval.Figure12(scaling))
		case "const":
			fmt.Println(eval.ConstReport(suite))
		case "par":
			fmt.Println(eval.FigureParallel(sweep))
		case "warm":
			fmt.Println(eval.FigureWarmStart(warm))
		case "fleet":
			fmt.Println(eval.FigureFleet(fleet))
		}
	}
	if *exp == "all" {
		for _, e := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "const", "par", "warm", "fleet"} {
			show(e)
			fmt.Println()
		}
		return
	}
	show(*exp)
}
