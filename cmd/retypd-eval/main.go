// Command retypd-eval regenerates the paper's evaluation tables and
// figures (§6) on the synthetic corpus.
//
// Usage:
//
//	retypd-eval [-exp fig7|fig8|fig9|fig10|fig11|fig12|const|all] [-scale N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"retypd/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig7, fig8, fig9, fig10, fig11, fig12, const, all")
	scale := flag.Int("scale", 0, "override corpus scale divisor (default from config)")
	quick := flag.Bool("quick", false, "use the small smoke-test configuration")
	flag.Parse()

	cfg := eval.DefaultConfig()
	if *quick {
		cfg = eval.QuickConfig()
	}
	if *scale > 0 {
		cfg.Suite.Scale = *scale
	}

	needSuite := func(e string) bool {
		switch e {
		case "fig8", "fig9", "fig10", "const", "all":
			return true
		}
		return false
	}
	var suite *eval.SuiteScores
	if needSuite(*exp) {
		fmt.Fprintln(os.Stderr, "generating corpus and running all systems…")
		suite = eval.RunSuite(cfg)
	}
	var scaling []eval.ScalingPoint
	if *exp == "fig11" || *exp == "fig12" || *exp == "all" {
		fmt.Fprintln(os.Stderr, "running scaling sweep…")
		scaling = eval.RunScaling(cfg)
	}

	show := func(e string) {
		switch e {
		case "fig7":
			fmt.Println(eval.Figure7(cfg))
		case "fig8":
			fmt.Println(eval.Figure8(suite))
		case "fig9":
			fmt.Println(eval.Figure9(suite))
		case "fig10":
			fmt.Println(eval.Figure10(suite))
		case "fig11":
			fmt.Println(eval.Figure11(scaling))
		case "fig12":
			fmt.Println(eval.Figure12(scaling))
		case "const":
			fmt.Println(eval.ConstReport(suite))
		}
	}
	if *exp == "all" {
		for _, e := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "const"} {
			show(e)
			fmt.Println()
		}
		return
	}
	show(*exp)
}
