// Command retypd infers types for programs in the substrate assembly
// format and prints the recovered polymorphic type schemes, C
// signatures and struct typedefs.
//
// Usage:
//
//	retypd [-schemes] [-sketches] [-j N] [-nocache] [-nobodydedup]
//	       [-cachestats] [-cachefile path] [-incremental] file.sasm...
//
// All files are analyzed by one long-lived engine, so duplicate
// procedures across files are solved once. -cachefile loads a
// persisted cache stack before the first file (if the file exists) and
// saves it after the last, warming future invocations. -incremental
// re-analyzes the second and later files against the previous one's
// session — only changed procedures and their callers recompute —
// and reports the replayed/recomputed split on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"retypd"
)

func main() {
	schemes := flag.Bool("schemes", true, "print inferred type schemes")
	sketches := flag.Bool("sketches", false, "print solved sketches")
	mono := flag.Bool("mono", false, "disable polymorphic callsite instantiation (baseline mode)")
	workers := flag.Int("j", 0, "solver worker count (0 = one per CPU, 1 = sequential)")
	nocache := flag.Bool("nocache", false, "disable every memo layer — body dedup and the scheme/shape caches (the uncached baseline)")
	nobodydedup := flag.Bool("nobodydedup", false, "disable only whole-procedure body deduplication ahead of constraint generation")
	cachestats := flag.Bool("cachestats", false, "print memo-layer hit/miss counts to stderr")
	cachefile := flag.String("cachefile", "", "load the cache stack from this file before analyzing (if it exists) and save it back after")
	incremental := flag.Bool("incremental", false, "re-analyze the 2nd+ input files incrementally against the previous file's session")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: retypd [flags] file.sasm...")
		os.Exit(2)
	}
	if *nocache && *cachefile != "" {
		fmt.Fprintln(os.Stderr, "retypd: -nocache and -cachefile are mutually exclusive")
		os.Exit(2)
	}
	if *nocache && *incremental {
		fmt.Fprintln(os.Stderr, "retypd: -nocache and -incremental are mutually exclusive (incremental replay rides the engine session)")
		os.Exit(2)
	}

	eng := retypd.NewEngine(nil)
	if *cachefile != "" {
		if _, err := os.Stat(*cachefile); err == nil {
			loaded, err := retypd.LoadCache(*cachefile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "retypd: load cache:", err)
				os.Exit(1)
			}
			eng = loaded
			if *cachestats {
				sn, shn := eng.CacheLen()
				fmt.Fprintf(os.Stderr, "loaded %s: %d scheme entries, %d shape entries\n", *cachefile, sn, shn)
			}
		}
	}

	cfg := &retypd.Config{
		Monomorphic:   *mono,
		Workers:       *workers,
		NoSchemeCache: *nocache,
		NoShapeCache:  *nocache,
		NoBodyDedup:   *nobodydedup || *nocache,
	}

	for argi, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "retypd:", err)
			os.Exit(1)
		}
		prog, err := retypd.ParseAsm(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "retypd:", err)
			os.Exit(1)
		}
		var res *retypd.Result
		switch {
		case *nocache:
			res = retypd.Infer(prog, cfg)
		case *incremental && argi > 0:
			res = eng.Reanalyze(prog)
		default:
			res = eng.Infer(prog, cfg)
		}
		if *cachestats || (*incremental && argi > 0) {
			st := res.CacheStats()
			if *incremental && argi > 0 {
				fmt.Fprintf(os.Stderr, "%s: incremental — %d procs replayed, %d recomputed\n",
					path, st.ReplayedProcs, st.RecomputedProcs)
			}
			if *cachestats {
				fmt.Fprintf(os.Stderr, "%s: body dedup: %d hits / %d misses; scheme cache: %d hits / %d misses; shape cache: %d hits / %d misses\n",
					path, st.BodyDedupHits, st.BodyDedupMisses, st.SchemeHits, st.SchemeMisses, st.ShapeHits, st.ShapeMisses)
			}
		}
		if flag.NArg() > 1 {
			fmt.Printf("== %s ==\n", path)
		}
		for _, name := range res.ProcNames() {
			fmt.Println(res.Signature(name))
			if *schemes {
				fmt.Printf("  scheme: %s\n", res.Scheme(name))
			}
			if *sketches {
				fmt.Printf("  sketch:\n%s", res.ProcSketch(name))
			}
		}
		if ts := res.Typedefs(); len(ts) > 0 {
			fmt.Println("\n/* recovered typedefs */")
			for _, t := range ts {
				fmt.Printf("typedef %s;\n", t)
			}
		}
	}

	if *cachefile != "" {
		if err := eng.SaveCache(*cachefile); err != nil {
			fmt.Fprintln(os.Stderr, "retypd: save cache:", err)
			os.Exit(1)
		}
		if *cachestats {
			sn, shn := eng.CacheLen()
			fmt.Fprintf(os.Stderr, "saved %s: %d scheme entries, %d shape entries\n", *cachefile, sn, shn)
		}
	}
}
