// Command retypd infers types for programs in the substrate assembly
// format and prints the recovered polymorphic type schemes, C
// signatures and struct typedefs.
//
// Usage:
//
//	retypd [-schemes] [-sketches] [-j N] [-nocache] [-nobodydedup]
//	       [-cachestats] [-cachefile path] [-sessionfile path]
//	       [-incremental] [-timeout d] [-maxinsts N] [-maxprocs N]
//	       file.sasm...
//
// All files are analyzed by one long-lived engine, so duplicate
// procedures across files are solved once. -cachefile loads a
// persisted cache stack before the first file (if the file exists) and
// saves it after the last, warming future invocations — including
// whole-procedure body classes served across differently-named
// programs. -sessionfile does the same for the engine session: when
// the file exists, the first input is re-analyzed incrementally
// against it with zero warm-up (an unchanged program replays
// entirely), and the session after the last input is saved back.
// -incremental re-analyzes the second and later files against the
// previous file's session — only changed procedures and their callers
// recompute — and reports the replayed/recomputed split on stderr.
//
// -timeout bounds the whole invocation; SIGINT cancels the analysis
// cooperatively (the engine drains its workers and exits cleanly).
// Exit codes distinguish the failure class:
//
//	0  success
//	1  analysis error (contained task fault, cache I/O)
//	2  usage error
//	3  input error (unreadable file, malformed assembly, oversized input)
//	4  timeout or interrupt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"retypd"
)

// Exit codes; see the package comment.
const (
	exitOK       = 0
	exitAnalysis = 1
	exitUsage    = 2
	exitInput    = 3
	exitTimeout  = 4
)

func main() {
	os.Exit(run())
}

// run is main behind an int so deferred cleanup (signal teardown) runs
// before os.Exit.
func run() int {
	schemes := flag.Bool("schemes", true, "print inferred type schemes")
	sketches := flag.Bool("sketches", false, "print solved sketches")
	mono := flag.Bool("mono", false, "disable polymorphic callsite instantiation (baseline mode)")
	workers := flag.Int("j", 0, "solver worker count (0 = one per CPU, 1 = sequential)")
	nocache := flag.Bool("nocache", false, "disable every memo layer — body dedup and the scheme/shape caches (the uncached baseline)")
	nobodydedup := flag.Bool("nobodydedup", false, "disable only whole-procedure body deduplication ahead of constraint generation")
	cachestats := flag.Bool("cachestats", false, "print memo-layer hit/miss counts to stderr")
	cachefile := flag.String("cachefile", "", "load the cache stack from this file before analyzing (if it exists) and save it back after")
	sessionfile := flag.String("sessionfile", "", "load the engine session from this file before analyzing (if it exists) and save it back after; the first input then re-analyzes incrementally with zero warm-up")
	incremental := flag.Bool("incremental", false, "re-analyze the 2nd+ input files incrementally against the previous file's session")
	timeout := flag.Duration("timeout", 0, "abort the whole invocation after this duration (0 = no limit)")
	maxInsts := flag.Int("maxinsts", 0, "reject programs with more than N instructions (0 = no limit)")
	maxProcs := flag.Int("maxprocs", 0, "reject programs with more than N procedures (0 = no limit)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: retypd [flags] file.sasm...")
		return exitUsage
	}
	if *nocache && *cachefile != "" {
		fmt.Fprintln(os.Stderr, "retypd: -nocache and -cachefile are mutually exclusive")
		return exitUsage
	}
	if *nocache && *incremental {
		fmt.Fprintln(os.Stderr, "retypd: -nocache and -incremental are mutually exclusive (incremental replay rides the engine session)")
		return exitUsage
	}
	if *nocache && *sessionfile != "" {
		fmt.Fprintln(os.Stderr, "retypd: -nocache and -sessionfile are mutually exclusive")
		return exitUsage
	}

	// SIGINT cancels the context; the pipeline drains at the next task
	// boundary and we exit with a distinct code instead of dying mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := &retypd.Config{
		Monomorphic:     *mono,
		Workers:         *workers,
		NoSchemeCache:   *nocache,
		NoShapeCache:    *nocache,
		NoBodyDedup:     *nobodydedup || *nocache,
		MaxInstructions: *maxInsts,
		MaxProcedures:   *maxProcs,
	}

	eng := retypd.NewEngine(nil)
	sessionLoaded := false
	if *sessionfile != "" {
		if _, err := os.Stat(*sessionfile); err == nil {
			loaded, err := retypd.LoadSession(*sessionfile, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "retypd: load session:", err)
				return exitAnalysis
			}
			eng = loaded
			sessionLoaded = true
		}
	}
	if *cachefile != "" {
		if _, err := os.Stat(*cachefile); err == nil {
			if sessionLoaded {
				// Compose: the session supplies the replay baseline, the
				// cache warms whatever still recomputes.
				if err := eng.LoadCacheFile(*cachefile); err != nil {
					fmt.Fprintln(os.Stderr, "retypd: load cache:", err)
					return exitAnalysis
				}
			} else {
				loaded, err := retypd.LoadCache(*cachefile)
				if err != nil {
					fmt.Fprintln(os.Stderr, "retypd: load cache:", err)
					return exitAnalysis
				}
				eng = loaded
			}
			if *cachestats {
				sn, shn := eng.CacheLen()
				fmt.Fprintf(os.Stderr, "loaded %s: %d scheme entries, %d shape entries\n", *cachefile, sn, shn)
			}
		}
	}

	for argi, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "retypd:", err)
			return exitInput
		}
		prog, err := retypd.ParseAsm(string(src))
		if err != nil {
			// Structured parse errors render as file:line so editors and
			// humans land on the offending source line directly.
			var pe *retypd.ParseError
			if errors.As(err, &pe) && pe.Line > 0 {
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, pe.Line, pe.Msg)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			}
			return exitInput
		}
		incrementalRun := (*incremental && argi > 0) || (sessionLoaded && argi == 0)
		var res *retypd.Result
		switch {
		case *nocache:
			res, err = retypd.InferContext(ctx, prog, cfg)
		case incrementalRun:
			res, err = eng.ReanalyzeContext(ctx, prog)
		default:
			res, err = eng.InferContext(ctx, prog, cfg)
		}
		if err != nil {
			return reportAnalysisErr(path, err)
		}
		if *cachestats || incrementalRun {
			st := res.CacheStats()
			if incrementalRun {
				fmt.Fprintf(os.Stderr, "%s: incremental — %d procs replayed, %d recomputed\n",
					path, st.ReplayedProcs, st.RecomputedProcs)
			}
			if *cachestats {
				fmt.Fprintf(os.Stderr, "%s: body dedup: %d hits / %d misses (%d cross-program); scheme cache: %d hits / %d misses; shape cache: %d hits / %d misses\n",
					path, st.BodyDedupHits, st.BodyDedupMisses, st.BodyDedupCrossHits, st.SchemeHits, st.SchemeMisses, st.ShapeHits, st.ShapeMisses)
			}
		}
		if flag.NArg() > 1 {
			fmt.Printf("== %s ==\n", path)
		}
		for _, name := range res.ProcNames() {
			fmt.Println(res.Signature(name))
			if *schemes {
				fmt.Printf("  scheme: %s\n", res.Scheme(name))
			}
			if *sketches {
				fmt.Printf("  sketch:\n%s", res.ProcSketch(name))
			}
		}
		if ts := res.Typedefs(); len(ts) > 0 {
			fmt.Println("\n/* recovered typedefs */")
			for _, t := range ts {
				fmt.Printf("typedef %s;\n", t)
			}
		}
	}

	if *cachefile != "" {
		if err := eng.SaveCache(*cachefile); err != nil {
			fmt.Fprintln(os.Stderr, "retypd: save cache:", err)
			return exitAnalysis
		}
		if *cachestats {
			sn, shn := eng.CacheLen()
			fmt.Fprintf(os.Stderr, "saved %s: %d scheme entries, %d shape entries\n", *cachefile, sn, shn)
		}
	}
	if *sessionfile != "" {
		if err := eng.SaveSession(*sessionfile); err != nil {
			fmt.Fprintln(os.Stderr, "retypd: save session:", err)
			return exitAnalysis
		}
	}
	return exitOK
}

// reportAnalysisErr maps an inference error to a diagnostic and exit
// code: cancellation/deadline → timeout code, admission rejection →
// input code, contained task fault → analysis code.
func reportAnalysisErr(path string, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "retypd: %s: timed out\n", path)
		return exitTimeout
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "retypd: %s: interrupted\n", path)
		return exitTimeout
	}
	var le *retypd.LimitError
	if errors.As(err, &le) {
		fmt.Fprintf(os.Stderr, "retypd: %s: %v\n", path, le)
		return exitInput
	}
	fmt.Fprintf(os.Stderr, "retypd: %s: %v\n", path, err)
	return exitAnalysis
}
