// Command retypd infers types for a program in the substrate assembly
// format and prints the recovered polymorphic type schemes, C
// signatures and struct typedefs.
//
// Usage:
//
//	retypd [-schemes] [-sketches] [-j N] [-nocache] [-nobodydedup] [-cachestats] file.sasm
package main

import (
	"flag"
	"fmt"
	"os"

	"retypd"
)

func main() {
	schemes := flag.Bool("schemes", true, "print inferred type schemes")
	sketches := flag.Bool("sketches", false, "print solved sketches")
	mono := flag.Bool("mono", false, "disable polymorphic callsite instantiation (baseline mode)")
	workers := flag.Int("j", 0, "solver worker count (0 = one per CPU, 1 = sequential)")
	nocache := flag.Bool("nocache", false, "disable every memo layer — body dedup and the scheme/shape caches (the uncached baseline)")
	nobodydedup := flag.Bool("nobodydedup", false, "disable only whole-procedure body deduplication ahead of constraint generation")
	cachestats := flag.Bool("cachestats", false, "print memo-layer hit/miss counts to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: retypd [flags] file.sasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "retypd:", err)
		os.Exit(1)
	}
	prog, err := retypd.ParseAsm(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "retypd:", err)
		os.Exit(1)
	}
	res := retypd.Infer(prog, &retypd.Config{
		Monomorphic:   *mono,
		Workers:       *workers,
		NoSchemeCache: *nocache,
		NoShapeCache:  *nocache,
		NoBodyDedup:   *nobodydedup || *nocache,
	})
	if *cachestats {
		st := res.CacheStats()
		fmt.Fprintf(os.Stderr, "body dedup: %d hits / %d misses; scheme cache: %d hits / %d misses; shape cache: %d hits / %d misses\n",
			st.BodyDedupHits, st.BodyDedupMisses, st.SchemeHits, st.SchemeMisses, st.ShapeHits, st.ShapeMisses)
	}
	for _, name := range res.ProcNames() {
		fmt.Println(res.Signature(name))
		if *schemes {
			fmt.Printf("  scheme: %s\n", res.Scheme(name))
		}
		if *sketches {
			fmt.Printf("  sketch:\n%s", res.ProcSketch(name))
		}
	}
	if ts := res.Typedefs(); len(ts) > 0 {
		fmt.Println("\n/* recovered typedefs */")
		for _, t := range ts {
			fmt.Printf("typedef %s;\n", t)
		}
	}
}
