module retypd

go 1.22
