#!/bin/sh
# check_faults.sh — crash-safety gate.
#
# Runs the seeded fault-injection sweep and its supporting suites under
# the race detector: internal/faultinject (every pipeline phase × fault
# kind × worker count, asserting the engine survives, recovers
# byte-identically, persists a loadable cache, and leaks no
# goroutines), the executor drain tests in internal/conc, the
# single-flight panic-release tests in internal/lru, and the
# cancel-mid-steal / panic-mid-F.2 tests in internal/solver.
#
# -race matters here more than anywhere else: the faults land on
# whichever task the concurrent schedule makes "Nth", so each run
# exercises a different interleaving of fault, cancellation, and pool
# drain. A containment bug that only races under contention shows up
# in this lane before it shows up in a service.
#
# Usage: scripts/check_faults.sh
set -eu
cd "$(dirname "$0")/.."

echo "== fault-injection gate: sweep + drain + single-flight release under -race =="
go test -race -count=1 \
  ./internal/faultinject/ \
  ./internal/conc/ \
  ./internal/lru/
go test -race -count=1 -run 'TestCancelMidStealDrains|TestPanicMidF2Contained' \
  ./internal/solver/
echo "check_faults: OK"
