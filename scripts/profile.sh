#!/bin/sh
# profile.sh — record one CPU-profile snapshot next to the perf
# trajectory (scripts/bench.sh / BENCH_<n>.json).
#
# Runs the CI-gated benchmark (BenchmarkInferParallel at workers=1, one
# whole-program inference over the 4000-instruction corpus) under the
# Go CPU profiler and writes the pprof top-30 table to PROFILE_<n>.txt
# (or the given output path), where <n> is one past the highest
# existing snapshot. The table is what perf PRs cite when they claim a
# hot spot moved: record one before and one after.
#
# Usage: scripts/profile.sh [output.txt]
set -eu
cd "$(dirname "$0")/.."

out="${1-}"
if [ -z "$out" ]; then
  n=1
  while [ -e "PROFILE_${n}.txt" ]; do n=$((n + 1)); done
  out="PROFILE_${n}.txt"
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== profiling (BenchmarkInferParallel/workers=1) =="
go test -run '^$' -bench 'BenchmarkInferParallel/workers=1$' \
  -benchtime=60x -cpuprofile "$tmp/cpu.out" -o "$tmp/retypd.test" >"$tmp/bench.txt"
grep Benchmark "$tmp/bench.txt" || true

{
  echo "# pprof top-30 of BenchmarkInferParallel/workers=1"
  echo "# recorded by scripts/profile.sh; benchmark line:"
  grep Benchmark "$tmp/bench.txt" | sed 's/^/# /'
  go tool pprof -top -nodecount=30 "$tmp/retypd.test" "$tmp/cpu.out"
} >"$out"

echo "== snapshot =="
cat "$out"
