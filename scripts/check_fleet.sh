#!/bin/sh
# check_fleet.sh — cross-program body-class regression gate.
#
# A fleet of binaries built from one codebase (cmd/benchgen -fleet:
# half of each binary is a common library under a binary-local rename)
# is the deployment the persistent body-class table exists for. The
# gate holds the layer to its two-sided contract:
#
#   1. Byte-identity, end to end through the CLI: binary #2 analyzed by
#      a fresh retypd process with binary #1's -cachefile must print
#      exactly what it prints with no cache. The cache may only change
#      how much work runs, never the answer.
#   2. Speedup: binary #2's inference against binary #1's persisted
#      cache must be at least `threshold`× faster than binary #1 cold
#      (eval.RunFleet: median of 5 trials each, fresh engine per trial,
#      cache decode outside the timer — a serving process pays that
#      once per restart, the analysis once per binary). If the table
#      stops serving across program boundaries — a fingerprint that
#      absorbs the procedure name, a table that never persists — the
#      renamed shared library recomputes and the ratio collapses to ~1.
#
# The threshold is deliberately loose (1.5×, against the ~2× a healthy
# run shows): it must hold on noisy shared CI machines, not certify
# peak serving throughput.
#
# Usage: scripts/check_fleet.sh [threshold]
set -eu
cd "$(dirname "$0")/.."

thresh="${1-1.5}"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== fleet gate 1: binary #2 warm output must be byte-identical to cold =="
go build -o "$work/retypd" ./cmd/retypd
go build -o "$work/benchgen" ./cmd/benchgen
"$work/benchgen" -o "$work/corpus" -fleet 2 -shared 0.5 -fleetinsts 4000 >/dev/null

b1="$work/corpus/fleet-00.sasm"
b2="$work/corpus/fleet-01.sasm"
"$work/retypd" "$b2" > "$work/cold2.out"
"$work/retypd" -cachefile "$work/cache" "$b1" >/dev/null
"$work/retypd" -cachefile "$work/cache" "$b2" > "$work/warm2.out"
if ! cmp -s "$work/cold2.out" "$work/warm2.out"; then
  echo "check_fleet: FAIL — warm output for binary #2 differs from its cold output" >&2
  diff "$work/cold2.out" "$work/warm2.out" | head >&2
  exit 1
fi
echo "byte-identical: $(wc -l < "$work/cold2.out") output lines match"

echo "== fleet gate 2: binary #2 warm must be >= ${thresh}x faster than binary #1 cold =="
if ! go run ./cmd/retypd-eval -exp fleet -parsize 4000 -fleetn 2 -timings "$work/t.json" >/dev/null; then
  echo "check_fleet: FAIL — cmd/retypd-eval exited nonzero" >&2
  exit 1
fi

# Flat key/value parse of the MarshalIndent point array: Seconds
# precedes Kind within each point, so the value is banked and assigned
# when the point's Kind shows up.
speedup=$(awk '
  /"Seconds"/ { gsub(/,/, "", $2); s = $2 + 0 }
  /"Kind"/ {
    if ($2 ~ /fleet-cold/ && c == 0) c = s
    if ($2 ~ /fleet-warm/ && w == 0) w = s
  }
  END {
    if (c == 0 || w == 0) { print "NaN"; exit }
    printf "%.3f", c / w
  }' "$work/t.json")

if [ "$speedup" = "NaN" ]; then
  echo "check_fleet: FAIL — could not extract fleet-cold/fleet-warm points from timings" >&2
  cat "$work/t.json" >&2
  exit 1
fi

echo "binary #2 warm vs binary #1 cold: ${speedup}x (median of 5)"
ok=$(awk -v s="$speedup" -v t="$thresh" 'BEGIN { print (s >= t) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
  echo "check_fleet: FAIL — speedup ${speedup}x below threshold ${thresh}x" >&2
  exit 1
fi
echo "check_fleet: OK — speedup ${speedup}x >= ${thresh}x"
