#!/bin/sh
# bench.sh — record one perf-trajectory snapshot.
#
# Regenerates the benchmark corpus via cmd/benchgen (a build/run sanity
# check for the generator CLI), runs the scaling + parallel-sweep
# measurements, and writes them to BENCH_<n>.json in the repo root,
# where <n> is one past the highest existing snapshot. CI and later PRs
# compare these files to track the performance trend.
#
# Usage: scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out="${1-}"
if [ -z "$out" ]; then
  n=1
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
  out="BENCH_${n}.json"
fi

corpus_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir"' EXIT

echo "== generating benchmark corpus (cmd/benchgen) =="
if ! go run ./cmd/benchgen -o "$corpus_dir" -scale 300 >/dev/null; then
  echo "bench: FAIL — cmd/benchgen exited nonzero" >&2
  exit 1
fi

# -exp all runs every timing experiment (the fig11 size-scaling sweep,
# the parallel worker sweep, the warm-start persistence points, and the
# fleet-serving points); -timings collects every point into one JSON
# array.
echo "== measuring (size scaling + parallel sweep + warm start + fleet) =="
if ! go run ./cmd/retypd-eval -exp all -quick -parsize 4000 -timings "$out" >/dev/null; then
  echo "bench: FAIL — cmd/retypd-eval exited nonzero" >&2
  exit 1
fi
if [ ! -s "$out" ]; then
  echo "bench: FAIL — $out was not written or is empty" >&2
  exit 1
fi

echo "== snapshot =="
cat "$out"
