#!/bin/sh
# check_alloc.sh — allocation-regression gate.
#
# Runs the CI-gated benchmark (BenchmarkInferParallel at workers=1,
# one whole-program inference over the 4000-instruction corpus) with
# -benchmem and compares its B/op against a threshold derived from the
# checked-in perf snapshot: 1.5× the largest cold-path AllocBytes
# measurement in BENCH_7.json (the same 4000-instruction, workers=1
# inference as recorded by scripts/bench.sh; BENCH_7 re-baselined the
# gate when the persistent body-class layer and the constraint-set
# hash dedup landed — the warm-start, incremental and fleet-warm
# points in the snapshot allocate far less and are excluded from the
# maximum by construction, since the gate takes the largest value). A
# regression back toward the pre-interning allocation volume
# (~8× today's) fails the gate; the 1.5× margin absorbs hardware and
# Go-version noise.
#
# Usage: scripts/check_alloc.sh [baseline.json]
set -eu
cd "$(dirname "$0")/.."

base="${1-BENCH_7.json}"
if [ ! -f "$base" ]; then
  echo "check_alloc: baseline $base missing" >&2
  exit 1
fi

thresh=$(awk -F':' '/"AllocBytes"/ {
    v = $2 + 0
    if (v > m) m = v
  } END {
    if (m == 0) exit 1
    printf "%.0f", m * 1.5
  }' "$base")

echo "== allocation gate: B/op must stay below $thresh (1.5 x $base max) =="
# Capture the exit status explicitly: a compile error or benchmark
# panic must fail the gate with its output shown, not vanish into the
# command substitution.
set +e
out=$(go test -run '^$' -bench 'BenchmarkInferParallel/workers=1$' -benchmem -benchtime=3x 2>&1)
status=$?
set -e
echo "$out"
if [ "$status" -ne 0 ]; then
  echo "check_alloc: FAIL — go test -bench exited $status" >&2
  exit "$status"
fi

bop=$(echo "$out" | awk '/BenchmarkInferParallel/ {
    for (i = 1; i <= NF; i++) if ($i == "B/op") print $(i-1)
  }' | head -1)
if [ -z "$bop" ]; then
  echo "check_alloc: could not parse B/op from benchmark output" >&2
  exit 1
fi

if [ "$bop" -ge "$thresh" ]; then
  echo "check_alloc: FAIL — $bop B/op >= threshold $thresh" >&2
  exit 1
fi
echo "check_alloc: OK — $bop B/op < threshold $thresh"
