#!/bin/sh
# check_guard_overhead.sh — guard/cancellation overhead gate.
#
# The context plumbing and per-task panic guards sit on the hot path of
# every pipeline task; this gate asserts they cost ≤2% on the CI-gated
# benchmark (BenchmarkInferParallel at workers=1 — the sequential
# configuration, where per-task overhead cannot hide behind
# parallelism) against the checked-in perf snapshot: the slowest plain
# workers=1 measurement of the 4000-instruction corpus in BENCH_6.json,
# which predates the guards.
#
# The run is a median of 5 to damp scheduler noise. The tolerance is
# multiplicative and env-overridable (CHECK_GUARD_TOL, default 1.02 —
# the ≤2% budget) because an absolute wall-clock comparison is only
# meaningful on hardware comparable to the snapshot's; on a different
# machine, override the tolerance or re-baseline the snapshot rather
# than deleting the gate.
#
# Usage: scripts/check_guard_overhead.sh [baseline.json]
set -eu
cd "$(dirname "$0")/.."

base="${1-BENCH_6.json}"
tol="${CHECK_GUARD_TOL-1.02}"
if [ ! -f "$base" ]; then
  echo "check_guard_overhead: baseline $base missing" >&2
  exit 1
fi

# Slowest plain (no "Kind") workers=1 row at the 4000-instruction
# scale: the most generous pre-guard reference, so the gate measures
# added overhead, not run-to-run noise in the snapshot itself.
basesec=$(awk '
  /^ *\{/ { insts = 0; workers = -1; sec = 0; kind = 0 }
  /"Insts"/   { gsub(/[^0-9]/, "", $2); insts = $2 + 0 }
  /"Workers"/ { gsub(/[^0-9]/, "", $2); workers = $2 + 0 }
  /"Seconds"/ { split($0, a, ":"); sec = a[2] + 0 }
  /"Kind"/    { kind = 1 }
  /^ *\}/ {
    if (workers == 1 && insts >= 4000 && !kind && sec > m) m = sec
  }
  END { if (m == 0) exit 1; printf "%.9f", m }
' "$base")

thresh=$(awk -v b="$basesec" -v t="$tol" 'BEGIN { printf "%.9f", b * t }')
echo "== guard-overhead gate: w1 median must stay <= ${thresh}s (${tol} x ${basesec}s from $base) =="

set +e
out=$(go test -run '^$' -bench 'BenchmarkInferParallel/workers=1$' -benchtime=5x -count=5 2>&1)
status=$?
set -e
echo "$out"
if [ "$status" -ne 0 ]; then
  echo "check_guard_overhead: FAIL — go test -bench exited $status" >&2
  exit "$status"
fi

median=$(echo "$out" | awk '/BenchmarkInferParallel/ {
    for (i = 1; i <= NF; i++) if ($i == "ns/op") print $(i-1)
  }' | sort -n | awk '{ v[NR] = $1 } END {
    if (NR == 0) exit 1
    printf "%.9f", v[int((NR + 1) / 2)] / 1e9
  }')
if [ -z "$median" ]; then
  echo "check_guard_overhead: could not parse ns/op from benchmark output" >&2
  exit 1
fi

echo "w1 median over 5 runs: ${median}s"
if awk -v m="$median" -v t="$thresh" 'BEGIN { exit !(m > t) }'; then
  echo "check_guard_overhead: FAIL — ${median}s > threshold ${thresh}s" >&2
  exit 1
fi
echo "check_guard_overhead: OK — ${median}s <= threshold ${thresh}s"
