#!/bin/sh
# check_docs.sh — docs freshness gate.
#
# Every relative markdown link in README.md and docs/*.md must resolve
# to a file or directory that exists, so the README's pointers into the
# tree (architecture doc, bench snapshots, scripts) cannot silently rot
# as the codebase is refactored. The nested tools/ module (retypd-vet
# and its meta-test, which pins the ARCHITECTURE.md invariants table to
# the analyzer suite) must also build and pass its tests — the main
# module's ./... does not cover it.
#
# Usage: scripts/check_docs.sh
set -eu
cd "$(dirname "$0")/.."

echo "== tools module builds and tests pass =="
(cd tools && go build ./... && go test ./...)

fail=0
for f in README.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Extract (target) parts of [text](target) links, one per line.
  links=$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target=${link%%#*}
    [ -n "$target" ] || continue # pure in-page anchor
    if [ ! -e "$dir/$target" ]; then
      echo "check_docs: $f: broken link: $link" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAIL" >&2
  exit 1
fi
echo "check_docs: OK — all relative links resolve"
