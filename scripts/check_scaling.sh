#!/bin/sh
# check_scaling.sh — parallel-scaling regression gate.
#
# Measures the 4000-instruction corpus point at workers=1 and workers=4
# (each a median of 5 runs; see internal/eval.measureScale) and fails
# when the w4 speedup over w1 drops below the threshold. The readiness
# scheduler's whole reason to exist is that 4 workers beat 1 on this
# corpus; a refactor that quietly serializes the pipeline — a stray
# barrier, a global lock on the hot path — shows up here before it
# shows up in a BENCH snapshot.
#
# The threshold is deliberately loose (1.15x, against the ~2x a healthy
# 4-core run shows): it must hold on noisy shared CI machines, not
# certify peak scaling. On hosts with fewer than 4 CPUs the gate is
# skipped — with the workers pinned above the core count the speedup is
# undefined, not regressed.
#
# Usage: scripts/check_scaling.sh [threshold]
set -eu
cd "$(dirname "$0")/.."

thresh="${1-1.15}"

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$ncpu" -lt 4 ]; then
  echo "check_scaling: SKIP — $ncpu CPU(s) < 4, w4/w1 speedup is not meaningful here"
  exit 0
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== scaling gate: w4 median must be >= ${thresh}x faster than w1 (4000-inst corpus) =="
if ! go run ./cmd/retypd-eval -exp par -parsize 4000 -timings "$tmp" >/dev/null; then
  echo "check_scaling: FAIL — cmd/retypd-eval exited nonzero" >&2
  exit 1
fi

# The timings file is a JSON array of {Insts, Workers, Seconds, ...}
# points; pull the w1 and w4 Seconds out of the flat key/value layout
# MarshalIndent produces (one "Key": value per line, points in worker
# order).
speedup=$(awk '
  /"Workers"/  { gsub(/[^0-9]/, "", $2); w = $2 + 0 }
  /"Seconds"/  { gsub(/[,]/, "", $2); if (w == 1 && s1 == 0) s1 = $2 + 0; if (w == 4 && s4 == 0) s4 = $2 + 0 }
  END {
    if (s1 == 0 || s4 == 0) { print "NaN"; exit }
    printf "%.3f", s1 / s4
  }' "$tmp")

if [ "$speedup" = "NaN" ]; then
  echo "check_scaling: FAIL — could not extract w1/w4 points from timings" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "w4/w1 speedup: ${speedup}x"
ok=$(awk -v s="$speedup" -v t="$thresh" 'BEGIN { print (s >= t) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
  echo "check_scaling: FAIL — speedup ${speedup}x below threshold ${thresh}x" >&2
  exit 1
fi
echo "check_scaling: OK — speedup ${speedup}x >= ${thresh}x"
