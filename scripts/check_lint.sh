#!/bin/sh
# check_lint.sh — invariant lint gate.
#
# Builds retypd-vet, the custom analyzer suite in the nested tools/
# module (detrange, sealedmut, nameintern, keyreach — see the
# "Enforced invariants" table in docs/ARCHITECTURE.md), and runs it
# over the whole repository, tests included, as a `go vet` plugin.
# Findings exit nonzero; deliberate exceptions are justified in-source
# with //retypd:* directives.
#
# Usage: scripts/check_lint.sh [packages...]   (defaults to ./...)
set -eu
cd "$(dirname "$0")/.."

mkdir -p bin
# Reuse the built tool when nothing under tools/ changed since it was
# built (CI restores it from a cache keyed on hashFiles('tools/**')).
if [ -x bin/retypd-vet ] && [ -z "$(find tools -type f -newer bin/retypd-vet -print -quit)" ]; then
  echo "== retypd-vet up to date =="
else
  echo "== building retypd-vet (tools module) =="
  (cd tools && go build -o ../bin/retypd-vet ./cmd/retypd-vet)
fi

echo "== go vet -vettool=bin/retypd-vet ${*:-./...} =="
go vet -vettool="$(pwd)/bin/retypd-vet" "${@:-./...}"
echo "check_lint: OK"
