package retypd

import (
	"context"
	"os"
	"sync"

	"retypd/internal/ctype"
	"retypd/internal/lattice"
	"retypd/internal/solver"
)

// Engine is a long-lived analysis session — the way a service or a
// batch tool should run inference. Where Infer is one-shot (private
// caches, nothing retained), an Engine owns the whole memo stack
// (whole-body dedup runs per call; the scheme-simplification and
// phase-2 shape memos are shared by every call) and the session state
// incremental re-analysis diffs against:
//
//	eng := retypd.NewEngine(nil)
//	res := eng.Infer(prog, nil)          // cold: full pipeline
//	res2 := eng.Reanalyze(prog2)         // warm: only changed SCCs and
//	                                     // their callers recompute
//	eng.SaveCache("retypd.cache")        // persist the memo stack
//	eng.SaveSession("retypd.session")    // persist the replay baseline
//	...
//	eng2, _ := retypd.LoadCache("retypd.cache") // fresh process, warm caches
//	eng3, _ := retypd.LoadSession("retypd.session", nil)
//	res3 := eng3.Reanalyze(prog3)        // zero warm-up: replays directly
//
// Inference output is byte-identical however it is reached: through a
// cold Infer, a warm Engine, a Reanalyze, or a cache loaded from disk —
// the caches and the incremental replay change only how much work runs.
// Methods are safe for concurrent use; Reanalyze diffs against the most
// recently completed run's session.
type Engine struct {
	eng *solver.Engine

	mu      sync.Mutex
	lastCfg *Config
}

// EngineOptions sizes a new engine; the zero value (and a nil pointer)
// select defaults.
type EngineOptions struct {
	// SchemeCacheCap and ShapeCacheCap bound the two shared memo layers
	// in entries (≤ 0 selects the package defaults).
	SchemeCacheCap, ShapeCacheCap int
	// DisableSessions turns off session recording: the engine becomes a
	// pure cache sharer — Infer skips the per-run session snapshot (a
	// whole-program fingerprint pass plus retention of the previous
	// run's analyses) and Reanalyze degrades to a full Infer. For
	// batch workloads over many unrelated programs that never
	// re-analyze an edited one.
	DisableSessions bool
}

// NewEngine returns an engine with empty caches.
func NewEngine(opts *EngineOptions) *Engine {
	if opts == nil {
		opts = &EngineOptions{}
	}
	eng := solver.NewEngine(opts.SchemeCacheCap, opts.ShapeCacheCap)
	if opts.DisableSessions {
		eng.DisableSessionRecording()
	}
	return &Engine{eng: eng}
}

// Infer runs the full pipeline with the engine's shared caches and
// records the run as the engine's current session (the baseline the
// next Reanalyze diffs against). cfg works exactly as in the package-
// level Infer; the deprecated Config.SchemeCache/ShapeCache fields are
// ignored — the engine's own caches are used (Config.NoSchemeCache and
// friends still disable layers for baseline measurements).
func (e *Engine) Infer(prog *Program, cfg *Config) *Result {
	res, err := e.InferContext(context.Background(), prog, cfg)
	if err != nil {
		// Background is never cancelled; the error is an *AnalysisError
		// or *LimitError, re-raised under the legacy contract.
		panic(err)
	}
	return res
}

// InferContext is Infer under a context — the entry point a service
// should call. Cancellation and deadlines are observed at task
// boundaries (an already-cancelled ctx returns before any worker
// spawns); a panic inside an analysis task comes back as a structured
// *AnalysisError and an oversized input as a *LimitError. On any error
// the engine publishes nothing — no session is recorded and the shared
// caches hold only completed computes — so the engine stays warm and
// usable, and its next run is byte-identical to one on a never-faulted
// engine.
func (e *Engine) InferContext(ctx context.Context, prog *Program, cfg *Config) (*Result, error) {
	cfg, lat, opts := resolveConfig(cfg)
	res, err := e.eng.InferContext(ctx, prog, lat, cfg.Summaries, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.lastCfg = cfg
	e.mu.Unlock()
	return &Result{inner: res, conv: ctype.NewConverter(lat)}, nil
}

// Reanalyze infers prog incrementally against the engine's previous
// run, under that run's configuration: procedures whose bodies are
// unchanged — along with all their transitive callees and their SCC
// membership — are replayed from the session; only changed SCCs and
// their callers (condensed-call-graph ancestors) run the pipeline.
// Output is byte-identical to a from-scratch Infer of prog; the
// replayed/recomputed split is reported by Result.CacheStats. Without
// a previous run this is a plain (recorded) Infer with the default
// configuration.
func (e *Engine) Reanalyze(prog *Program) *Result {
	res, err := e.ReanalyzeContext(context.Background(), prog)
	if err != nil {
		panic(err)
	}
	return res
}

// ReanalyzeContext is Reanalyze under a context, with the same error
// and no-partial-state contract as InferContext: on cancellation, task
// panic, or admission rejection the engine's previous session stays
// current — the next Reanalyze diffs against it as if the failed run
// had never been attempted.
func (e *Engine) ReanalyzeContext(ctx context.Context, prog *Program) (*Result, error) {
	e.mu.Lock()
	cfg := e.lastCfg
	e.mu.Unlock()
	cfg, lat, opts := resolveConfig(cfg)
	res, err := e.eng.ReanalyzeContext(ctx, prog, lat, cfg.Summaries, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.lastCfg = cfg
	e.mu.Unlock()
	return &Result{inner: res, conv: ctype.NewConverter(lat)}, nil
}

// SaveCache persists the engine's memo stack — the scheme and shape
// memos plus the persistent body-class table — to path as a versioned,
// checksummed, process-portable file; see LoadCache. The session state
// backing Reanalyze is saved separately by SaveSession.
func (e *Engine) SaveCache(path string) error { return e.eng.SaveCache(path) }

// SaveSession persists the engine's session — the per-procedure
// snapshots Reanalyze diffs against — to path as a versioned,
// checksummed file; see LoadSession. ErrNoSession reports an engine
// with nothing to save (no completed run, or session recording
// disabled).
func (e *Engine) SaveSession(path string) error { return e.eng.SaveSession(path) }

// ErrNoSession reports a SaveSession call on an engine that has not
// recorded a run.
var ErrNoSession = solver.ErrNoSession

// LoadSession reads a session file written by Engine.SaveSession into a
// fresh engine, under cfg (nil selects the defaults; it must name the
// same lattice and summaries the saved run used — a mismatch is not an
// error here, but the first Reanalyze will fall back to a full Infer).
// A process that loads the predecessor's session (and, optionally, its
// cache file via Engine.LoadCacheData-carrying workflows) goes straight
// to Reanalyze with zero warm-up: an unchanged program replays entirely,
// and an edited one recomputes only the edit's ancestor cone — in both
// cases byte-identical to a from-scratch run.
func LoadSession(path string, cfg *Config) (*Engine, error) {
	cfg, _, _ = resolveConfig(cfg) // builds the lattice sketch blobs name
	eng, _, err := solver.LoadSession(path, 0, 0)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, lastCfg: cfg}, nil
}

// LoadCacheFile merges a cache file written by Engine.SaveCache into
// this engine's live caches (the function-form LoadCache builds a fresh
// engine instead). Composes with LoadSession: load the session to get
// the replay baseline, then merge the cache so recomputed procedures
// still hit the memo stack.
func (e *Engine) LoadCacheFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, err = e.eng.LoadCacheData(data)
	return err
}

// CacheLen reports the current entry counts of the two shared memo
// layers (observability for CLIs and tests).
func (e *Engine) CacheLen() (schemeEntries, shapeEntries int) {
	return e.eng.SchemeCache().Len(), e.eng.ShapeCache().Len()
}

// LoadCache reads a cache file written by Engine.SaveCache into a fresh
// engine. Entries are keyed by canonical, process-independent forms, so
// a cache saved by one process warms another: procedures isomorphic to
// anything analyzed before load are served from the cache instead of
// being re-simplified and re-shape-solved, with byte-identical output.
// Files written by a different encoding version are refused (the cache
// is then simply cold); shape entries whose lattice has not been built
// in this process are skipped.
func LoadCache(path string) (*Engine, error) {
	eng, _, err := solver.LoadCache(path, 0, 0)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// resolveConfig maps a public Config (nil allowed) to the solver
// options, mirroring Infer.
func resolveConfig(cfg *Config) (*Config, *lattice.Lattice, solver.Options) {
	if cfg == nil {
		cfg = &Config{}
	}
	lat := cfg.Lattice
	if lat == nil {
		lat = lattice.Default()
	}
	opts := solverOptions(cfg)
	return cfg, lat, opts
}
