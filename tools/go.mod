module retypd/tools

go 1.22
