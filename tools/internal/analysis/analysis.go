// Package analysis is a deliberately small, stdlib-only stand-in for
// golang.org/x/tools/go/analysis: just enough of the Analyzer/Pass
// surface for this repository's project-specific vet checks.
//
// The main module is dependency-free by policy, and this nested tools
// module keeps that property rather than importing x/tools; the shapes
// below mirror the x/tools API closely enough that migrating onto it
// later is a mechanical change (Analyzer, Pass, Diagnostic and
// Reportf all have their x/tools meanings). Facts, Requires and
// result passing between analyzers are intentionally absent — none of
// the retypd-vet analyzers need cross-package state.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// ARCHITECTURE.md enforcement table (see the meta test).
	Name string
	// Doc is the one-paragraph description printed by `retypd-vet help`.
	Doc string
	// Run applies the check to one package. The returned value is
	// ignored (kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	dirs *directiveIndex
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
