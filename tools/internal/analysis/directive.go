package analysis

import (
	"go/token"
	"strings"
)

// Directives are the project's in-source escape hatches and
// annotations: comments of the form
//
//	//retypd:<name>[ <args>] [— justification]
//
// A directive is attached to a node when it appears on the node's own
// line (a trailing comment) or in the contiguous run of comment lines
// immediately above it (a leading comment block, including doc
// comments). Every escape hatch is expected to carry a human-readable
// justification after the directive word; the analyzers do not parse
// it, reviewers do.
type directive struct {
	name string // e.g. "unordered"
	args string // rest of the line after the name, trimmed
}

type directiveIndex struct {
	// byLine maps file name → line → directives written on that line.
	byLine map[string]map[int][]directive
	// commentLine marks lines fully occupied by comments, so a leading
	// comment block can be walked upward from a node.
	commentLine map[string]map[int]bool
}

func (p *Pass) directives() *directiveIndex {
	if p.dirs != nil {
		return p.dirs
	}
	idx := &directiveIndex{
		byLine:      map[string]map[int][]directive{},
		commentLine: map[string]map[int]bool{},
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				end := p.Fset.Position(c.End())
				cl := idx.commentLine[pos.Filename]
				if cl == nil {
					cl = map[int]bool{}
					idx.commentLine[pos.Filename] = cl
				}
				for l := pos.Line; l <= end.Line; l++ {
					cl[l] = true
				}
				text, ok := strings.CutPrefix(c.Text, "//retypd:")
				if !ok {
					continue
				}
				name, args, _ := strings.Cut(text, " ")
				bl := idx.byLine[pos.Filename]
				if bl == nil {
					bl = map[int][]directive{}
					idx.byLine[pos.Filename] = bl
				}
				bl[pos.Line] = append(bl[pos.Line], directive{name: name, args: strings.TrimSpace(args)})
			}
		}
	}
	p.dirs = idx
	return idx
}

func (p *Pass) directivesAt(pos token.Pos, name string) (directive, bool) {
	idx := p.directives()
	position := p.Fset.Position(pos)
	bl := idx.byLine[position.Filename]
	cl := idx.commentLine[position.Filename]
	check := func(line int) (directive, bool) {
		for _, d := range bl[line] {
			if d.name == name {
				return d, true
			}
		}
		return directive{}, false
	}
	if d, ok := check(position.Line); ok {
		return d, true
	}
	// Walk the contiguous comment block above the node.
	for line := position.Line - 1; cl[line]; line-- {
		if d, ok := check(line); ok {
			return d, true
		}
	}
	return directive{}, false
}

// HasDirective reports whether a //retypd:<name> directive is attached
// to the line of pos (trailing) or the comment block above it.
func (p *Pass) HasDirective(pos token.Pos, name string) bool {
	_, ok := p.directivesAt(pos, name)
	return ok
}

// DirectiveArgs returns the arguments of an attached //retypd:<name>
// directive (the rest of its line) and whether one was found.
func (p *Pass) DirectiveArgs(pos token.Pos, name string) (string, bool) {
	d, ok := p.directivesAt(pos, name)
	return d.args, ok
}
