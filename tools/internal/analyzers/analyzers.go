// Package analyzers registers the retypd-vet analyzer suite: the
// project-specific invariants of the inference engine, enforced
// mechanically (see the "Enforced invariants" table in
// docs/ARCHITECTURE.md, whose analyzer column the meta test in this
// package checks against this registry).
package analyzers

import (
	"retypd/tools/internal/analysis"
	"retypd/tools/internal/analyzers/detrange"
	"retypd/tools/internal/analyzers/keyreach"
	"retypd/tools/internal/analyzers/nameintern"
	"retypd/tools/internal/analyzers/sealedmut"
)

// All is the full suite, in the order findings are documented.
var All = []*analysis.Analyzer{
	detrange.Analyzer,
	sealedmut.Analyzer,
	nameintern.Analyzer,
	keyreach.Analyzer,
}
