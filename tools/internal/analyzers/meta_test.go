// The meta-test keeps docs/ARCHITECTURE.md's "Enforced invariants"
// table and the analyzer suite in lockstep: every table row must name
// its enforcement (an analyzer, a test, or a runtime check), and every
// registered analyzer must be named by at least one row. A new
// analyzer without documentation, or a documented invariant whose
// enforcement silently disappears, fails this test.
package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// invariantRows extracts the body rows of the "Enforced invariants"
// table from docs/ARCHITECTURE.md.
func invariantRows(t *testing.T) [][]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatalf("reading ARCHITECTURE.md: %v", err)
	}
	_, section, ok := strings.Cut(string(data), "## Enforced invariants")
	if !ok {
		t.Fatal("ARCHITECTURE.md has no \"## Enforced invariants\" section")
	}
	if i := strings.Index(section, "\n## "); i >= 0 {
		section = section[:i]
	}
	var rows [][]string
	for _, line := range strings.Split(section, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		var cells []string
		for _, c := range strings.Split(strings.Trim(line, "|"), "|") {
			cells = append(cells, strings.TrimSpace(c))
		}
		// Skip the header and the |---|---|---| separator.
		if len(cells) != 3 || cells[0] == "Invariant" || strings.HasPrefix(cells[0], "---") {
			continue
		}
		rows = append(rows, cells)
	}
	if len(rows) == 0 {
		t.Fatal("Enforced invariants table has no body rows")
	}
	return rows
}

func TestInvariantTableNamesEnforcement(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range All {
		names[a.Name] = true
	}
	for _, row := range invariantRows(t) {
		enf := row[1]
		byAnalyzer := false
		for name := range names {
			if strings.Contains(enf, "`"+name+"`") {
				byAnalyzer = true
			}
		}
		if !byAnalyzer && !strings.Contains(enf, "test:") && !strings.Contains(enf, "runtime:") {
			t.Errorf("invariant %q: enforcement %q names no analyzer and is not marked test:- or runtime:-enforced",
				row[0], enf)
		}
	}
}

func TestEveryAnalyzerDocumented(t *testing.T) {
	rows := invariantRows(t)
	for _, a := range All {
		found := false
		for _, row := range rows {
			if strings.Contains(row[1], "`"+a.Name+"`") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("analyzer %q is not named by any row of the Enforced invariants table", a.Name)
		}
	}
}
