// Package nameintern flags ad-hoc minting of variable-name-shaped
// strings in internal/absint and internal/solver.
//
// Every variable name the engine mints must go through
// intern.NameBuilder (PR 3's invariant): the name grammar — base,
// `!`-separated qualifiers, `@`-suffixed indices like `p!reg@3` or
// `callee@p!5` — is load-bearing for the body-dedup rename surgery
// (absint.Renamer classifies names by exactly these shapes), and
// NameBuilder is what keeps warm-path minting allocation-free. A
// fmt.Sprintf or string concatenation that embeds `!` or `@` in those
// packages is almost certainly minting a name outside the builder, so
// the analyzer flags:
//
//   - fmt.Sprintf / fmt.Appendf calls whose format literal contains
//     `!` or `@`;
//   - string concatenation (`+`, `+=`) with a literal operand
//     containing `!` or `@`.
//
// Strings that merely look name-shaped (error text, log messages)
// carry a //retypd:name-ok <justification> comment. Test files are
// exempt — tests spell out expected names literally.
package nameintern

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"retypd/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nameintern",
	Doc: "flags fmt.Sprintf/concat minting of variable-name-shaped strings ('!'/'@') " +
		"in internal/absint and internal/solver; names must come from intern.NameBuilder; " +
		"suppress with //retypd:name-ok <justification>",
	Run: run,
}

// targeted reports whether the package is under the name-minting
// invariant.
func targeted(path string) bool {
	return strings.HasSuffix(path, "internal/absint") ||
		strings.HasSuffix(path, "internal/solver")
}

func run(pass *analysis.Pass) (any, error) {
	if !targeted(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkSprintf(pass, v)
			case *ast.BinaryExpr:
				if v.Op == token.ADD {
					checkConcat(pass, v, v.X, v.Y)
				}
			case *ast.AssignStmt:
				if v.Tok == token.ADD_ASSIGN && len(v.Rhs) == 1 {
					checkConcat(pass, v, v.Lhs[0], v.Rhs[0])
				}
			}
			return true
		})
	}
	return nil, nil
}

// nameShaped reports whether a string literal value carries the name
// grammar's separator characters.
func nameShaped(lit *ast.BasicLit) bool {
	if lit == nil || lit.Kind != token.STRING {
		return false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return false
	}
	return strings.ContainsAny(s, "!@")
}

func checkSprintf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.ObjectOf(pkgID).(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return
	}
	var format ast.Expr
	switch sel.Sel.Name {
	case "Sprintf", "Sprint":
		if len(call.Args) > 0 {
			format = call.Args[0]
		}
	case "Appendf":
		if len(call.Args) > 1 {
			format = call.Args[1]
		}
	default:
		return
	}
	lit, _ := ast.Unparen(format).(*ast.BasicLit)
	if !nameShaped(lit) {
		return
	}
	if pass.HasDirective(call.Pos(), "name-ok") {
		return
	}
	pass.Reportf(call.Pos(), "variable-name-shaped string minted with fmt.%s (format %s); "+
		"use intern.NameBuilder, or justify with //retypd:name-ok", sel.Sel.Name, lit.Value)
}

func checkConcat(pass *analysis.Pass, at ast.Node, x, y ast.Expr) {
	if t := pass.TypesInfo.TypeOf(y); t == nil || !isString(t) {
		return
	}
	var lit *ast.BasicLit
	if l, ok := ast.Unparen(x).(*ast.BasicLit); ok && nameShaped(l) {
		lit = l
	}
	if l, ok := ast.Unparen(y).(*ast.BasicLit); ok && nameShaped(l) {
		lit = l
	}
	if lit == nil {
		return
	}
	// Both operands literal: a constant, not dynamic minting.
	_, xLit := ast.Unparen(x).(*ast.BasicLit)
	_, yLit := ast.Unparen(y).(*ast.BasicLit)
	if xLit && yLit {
		return
	}
	if pass.HasDirective(at.Pos(), "name-ok") {
		return
	}
	pass.Reportf(at.Pos(), "variable-name-shaped string built by concatenation with %s; "+
		"use intern.NameBuilder, or justify with //retypd:name-ok", lit.Value)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
