package nameintern_test

import (
	"testing"

	"retypd/tools/internal/analysistest"
	"retypd/tools/internal/analyzers/nameintern"
)

func TestNameIntern(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nameintern.Analyzer,
		"x/internal/absint", "x/other")
}
