// Control fixture: this package is NOT under the name-minting
// invariant (path does not end in internal/absint or internal/solver),
// so nothing here is flagged.
package other

import "fmt"

func NotFlagged(base string, i int) string {
	return fmt.Sprintf("%s!reg@%d", base, i)
}
