// Fixtures for the nameintern analyzer inside a targeted package
// (path suffix internal/absint).
package absint

import "fmt"

func flagSprintf(base string, i int) string {
	return fmt.Sprintf("%s!reg@%d", base, i) // want `variable-name-shaped string minted with fmt.Sprintf`
}

func flagCallsiteTag(callee, caller string, inst int) string {
	return fmt.Sprintf("%s@%s!%d", callee, caller, inst) // want `minted with fmt.Sprintf`
}

func flagConcat(p, reg string) string {
	return p + "!" + reg // want `built by concatenation`
}

func flagConcatAssign(p, suffix string) string {
	p += "@" + suffix // want `built by concatenation`
	return p
}

func okPlainSprintf(a, b string) string {
	return fmt.Sprintf("%s_%s", a, b)
}

func okPlainConcat(a, b string) string {
	return a + "_" + b
}

func okConstant() string {
	return "p!zero" + "!tail" // two literals: a constant, not minting
}

func okJustified(p string) error {
	//retypd:name-ok error text mentioning the grammar, not a minted name
	return fmt.Errorf("%s", "cannot classify @"+p)
}

func okErrorf(p string) error {
	return fmt.Errorf("bad name %q: want base!qual@idx", p)
}
