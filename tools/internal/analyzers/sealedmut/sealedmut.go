// Package sealedmut flags writes to — and aliasing appends on — the
// internal storage of sketch.Sketch values outside internal/sketch.
//
// Sealed sketches are the immutability boundary of the phase-2 shape
// memo: one *Sketch may be shared by many ProcResults and read by many
// goroutines, so mutating one corrupts the cache for every sharer.
// The runtime guard (Sketch.Seal clamps slices; Decorate panics on a
// sealed receiver) catches mutation through the in-package entry
// points at run time; this analyzer adds compile-time coverage for
// direct field writes and for appends that could alias the sealed
// backing arrays, the two shapes the runtime guard cannot see.
//
// Code outside internal/sketch that legitimately owns a fresh,
// unsealed Sketch (a builder assembling one before sealing) justifies
// each write with //retypd:mutable <why this value is unsealed and
// unshared>. Test files are exempt: the runtime panics and the golden
// determinism tests already police them, and tests routinely assemble
// small sketches by hand.
package sealedmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"retypd/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sealedmut",
	Doc: "flags writes to or aliasing appends on sketch.Sketch internal storage " +
		"outside internal/sketch; suppress with //retypd:mutable <justification>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/sketch") {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(pass, st.Pos(), lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, st.Pos(), st.X)
			case *ast.CallExpr:
				checkAppend(pass, st)
			}
			return true
		})
	}
	return nil, nil
}

// checkWrite flags an assignment whose target chains through a field
// of a sketch.Sketch (s.States = …, s.States[i].Lower = …).
func checkWrite(pass *analysis.Pass, stmt token.Pos, lhs ast.Expr) {
	root, ok := sketchRoot(pass, lhs)
	if !ok {
		return
	}
	if pass.HasDirective(stmt, "mutable") || pass.HasDirective(lhs.Pos(), "mutable") {
		return
	}
	pass.Reportf(lhs.Pos(), "write to sealed-capable sketch.Sketch storage (%s) outside internal/sketch; "+
		"derive a copy (Descend/Meet/Join/WithRootVariance) or justify with //retypd:mutable", root)
}

// checkAppend flags append(s.States, …)-shaped calls: even when the
// result is assigned elsewhere, the append writes into the sketch's
// backing array whenever spare capacity exists.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return
	}
	root, ok := sketchRoot(pass, call.Args[0])
	if !ok {
		return
	}
	if pass.HasDirective(call.Pos(), "mutable") {
		return
	}
	pass.Reportf(call.Pos(), "append aliases sealed-capable sketch.Sketch storage (%s); "+
		"copy the slice first or justify with //retypd:mutable", root)
}

// sketchRoot walks a selector/index chain and reports whether it
// passes through a field selection on a sketch.Sketch value; it
// returns a printable description of the root expression.
func sketchRoot(pass *analysis.Pass, e ast.Expr) (string, bool) {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if isSketch(pass.TypesInfo.TypeOf(v.X)) {
				return exprString(v.X) + "." + v.Sel.Name, true
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return "", false
		}
	}
}

// isSketch matches sketch.Sketch (or a pointer to it) from any package
// whose import path ends in internal/sketch.
func isSketch(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sketch" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/sketch")
}

// exprString renders a short description of the receiver expression.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.CallExpr:
		return exprString(v.Fun) + "(…)"
	}
	return "sketch"
}
