// Fake stand-in for retypd/internal/sketch: the analyzer matches any
// package whose import path ends in internal/sketch. Writes inside
// this package are exempt.
package sketch

type Edge struct {
	Label int
	To    int
}

type State struct {
	Edges []Edge
	Lower int
}

type Sketch struct {
	States []State
	sealed bool
}

// Seal writes to its own fields — allowed: this IS internal/sketch.
func (s *Sketch) Seal() *Sketch {
	s.States = s.States[:len(s.States):len(s.States)]
	s.sealed = true
	return s
}
