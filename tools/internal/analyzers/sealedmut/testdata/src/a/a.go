// Fixtures for the sealedmut analyzer: writes to sketch.Sketch
// internals outside internal/sketch are flagged.
package a

import sketch "a/internal/sketch"

func flagFieldWrite(s *sketch.Sketch) {
	s.States = nil // want `write to sealed-capable sketch.Sketch storage`
}

func flagDeepWrite(s *sketch.Sketch) {
	s.States[0].Lower = 3 // want `write to sealed-capable sketch.Sketch storage`
}

func flagEdgeWrite(s *sketch.Sketch) {
	s.States[0].Edges[1].To = 7 // want `write to sealed-capable sketch.Sketch storage`
}

func flagIncDec(s *sketch.Sketch) {
	s.States[0].Lower++ // want `write to sealed-capable sketch.Sketch storage`
}

func flagAliasingAppend(s *sketch.Sketch) []sketch.State {
	return append(s.States, sketch.State{}) // want `append aliases sealed-capable sketch.Sketch storage`
}

func flagValueReceiver(s sketch.Sketch) {
	s.States = nil // want `write to sealed-capable sketch.Sketch storage`
}

func okRead(s *sketch.Sketch) int {
	return len(s.States) + s.States[0].Lower
}

func okWholeVariable(s *sketch.Sketch) *sketch.Sketch {
	s = nil // replacing the pointer, not writing through it
	return s
}

func okCopyFirst(s *sketch.Sketch) []sketch.State {
	out := make([]sketch.State, len(s.States))
	copy(out, s.States)
	out[0].Lower = 9
	return out
}

func okJustified(s *sketch.Sketch) {
	//retypd:mutable s was built three lines up and is not yet sealed or shared
	s.States = nil
}

func okTrailingJustified(s *sketch.Sketch) []sketch.State {
	return append(s.States, sketch.State{}) //retypd:mutable fresh unsealed value owned here
}
