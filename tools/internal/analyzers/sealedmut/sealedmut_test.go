package sealedmut_test

import (
	"testing"

	"retypd/tools/internal/analysistest"
	"retypd/tools/internal/analyzers/sealedmut"
)

func TestSealedMut(t *testing.T) {
	// The fake internal/sketch package is loaded too: writes inside it
	// (Seal's own clamping) must produce no findings.
	analysistest.Run(t, analysistest.TestData(), sealedmut.Analyzer, "a", "a/internal/sketch")
}
