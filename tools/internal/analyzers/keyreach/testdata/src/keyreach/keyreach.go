// Fixtures for the keyreach analyzer: //retypd:cachekey structs whose
// fields must all reach the designated key-building functions.
package keyreach

//retypd:cachekey goodKey
type Good struct {
	A int
	B string
	C bool
}

// goodKey references A and B directly and C through a helper.
func goodKey(k Good) []byte {
	var enc []byte
	enc = append(enc, byte(k.A))
	enc = append(enc, k.B...)
	return appendC(enc, k)
}

func appendC(enc []byte, k Good) []byte {
	if k.C {
		return append(enc, 1)
	}
	return append(enc, 0)
}

//retypd:cachekey badKey
type Bad struct {
	A int
	B string // want `field B of cachekey struct Bad is not referenced`
}

func badKey(k Bad) int { return k.A }

//retypd:cachekey MethodKey.hash64
type MethodKey struct {
	Sum   [4]byte
	Root  uint32
	Extra int // want `field Extra of cachekey struct MethodKey is not referenced`
}

func (k MethodKey) hash64() uint64 {
	return uint64(k.Sum[0]) ^ uint64(k.Root)
}

//retypd:cachekey escKey
type Escaped struct {
	A int
	//retypd:notkey debug counter, never read by the memoized computation
	Hits int
}

func escKey(k Escaped) int { return k.A }

//retypd:cachekey litKey
type ViaLiteral struct {
	A int
	B string
}

type wire struct {
	a int
	b string
}

// litKey references the fields through a keyed composite literal.
func litKey(k ViaLiteral) wire { return wire{a: k.A, b: k.B} }

//retypd:cachekey missingFn
type Orphan struct { // want `cachekey function "missingFn" for Orphan not found`
	A int
}

//retypd:cachekey
type Unnamed struct { // want `names no key-building function`
	A int
}

// Unannotated structs are never checked.
type Plain struct {
	A int
	B string
}
