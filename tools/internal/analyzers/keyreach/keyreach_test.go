package keyreach_test

import (
	"testing"

	"retypd/tools/internal/analysistest"
	"retypd/tools/internal/analyzers/keyreach"
)

func TestKeyReach(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), keyreach.Analyzer, "keyreach")
}
