// Package keyreach enforces the "options must reach the key" rule of
// the three-layer memo table (docs/ARCHITECTURE.md): for a struct
// annotated
//
//	//retypd:cachekey <func>[ <func>…]
//
// every field must be referenced somewhere in the named key-building
// functions (or in same-package functions they call). A field that
// parameterizes what a memoized computation produces but is missing
// from the encoded key makes isomorphic inputs cross-serve stale
// entries — the top way to corrupt the body/scheme/shape caches.
//
// The designated functions are named by bare name ("Compute") or
// receiver-qualified method name ("Key.Hash64"); they must live in the
// same package as the struct. A field that deliberately stays out of
// the key (debug counters, derived redundancies) carries a
// //retypd:notkey <justification> comment.
package keyreach

import (
	"go/ast"
	"go/types"
	"strings"

	"retypd/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "keyreach",
	Doc: "for //retypd:cachekey structs, verifies every field is referenced in the " +
		"designated key-building functions; exempt fields with //retypd:notkey <justification>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	decls := funcIndex(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				args, ok := pass.DirectiveArgs(ts.Pos(), "cachekey")
				if !ok {
					args, ok = pass.DirectiveArgs(gd.Pos(), "cachekey")
				}
				if !ok {
					continue
				}
				checkStruct(pass, ts, args, decls)
			}
		}
	}
	return nil, nil
}

// funcIndex maps "Name" and "Recv.Name" to declarations.
func funcIndex(pass *analysis.Pass) map[string]*ast.FuncDecl {
	idx := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if rn := recvTypeName(fd.Recv.List[0].Type); rn != "" {
					key = rn + "." + fd.Name.Name
				}
			}
			idx[key] = fd
		}
	}
	return idx
}

func recvTypeName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return recvTypeName(v.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(v.X)
	case *ast.IndexListExpr:
		return recvTypeName(v.X)
	}
	return ""
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, args string, decls map[string]*ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[ts.Name]
	if !ok || obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "//retypd:cachekey on %s, which is not a struct type", ts.Name.Name)
		return
	}

	names := strings.Fields(args)
	if len(names) == 0 {
		pass.Reportf(ts.Pos(), "//retypd:cachekey on %s names no key-building function "+
			"(write //retypd:cachekey <func> [<func>…])", ts.Name.Name)
		return
	}
	var roots []*ast.FuncDecl
	missing := false
	for _, name := range names {
		fd, ok := decls[name]
		if !ok {
			pass.Reportf(ts.Pos(), "cachekey function %q for %s not found in this package", name, ts.Name.Name)
			missing = true
			continue
		}
		roots = append(roots, fd)
	}
	if missing || len(roots) == 0 {
		return
	}

	reached := reachableFieldUses(pass, decls, roots)

	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if reached[field] {
			continue
		}
		if pass.HasDirective(field.Pos(), "notkey") {
			continue
		}
		pass.Reportf(field.Pos(), "field %s of cachekey struct %s is not referenced in key function(s) %s; "+
			"encode it into the key or justify with //retypd:notkey",
			field.Name(), ts.Name.Name, strings.Join(names, ", "))
	}
}

// reachableFieldUses walks the same-package static call graph from the
// designated functions and records every field object referenced —
// selector reads (k.A), keyed composite literals (S{A: …}), method
// calls on fields.
func reachableFieldUses(pass *analysis.Pass, decls map[string]*ast.FuncDecl, roots []*ast.FuncDecl) map[types.Object]bool {
	// Map function objects back to declarations for call-graph walking.
	declOf := map[types.Object]*ast.FuncDecl{}
	for _, fd := range decls {
		if o := pass.TypesInfo.ObjectOf(fd.Name); o != nil {
			declOf[o] = fd
		}
	}

	used := map[types.Object]bool{}
	visited := map[*ast.FuncDecl]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				used[v] = true
			}
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg {
				if callee, ok := declOf[fn]; ok {
					visit(callee)
				}
			}
			return true
		})
	}
	for _, fd := range roots {
		visit(fd)
	}
	return used
}
