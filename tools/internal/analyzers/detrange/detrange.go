// Package detrange flags map iteration whose order can leak into
// observable results — the bug class behind the nondeterministic
// pgraph.compact output fixed in PR 1, and the top threat to this
// repository's byte-identical-output contract (see "Enforced
// invariants" in docs/ARCHITECTURE.md).
//
// A `range` over a map is flagged when its body performs an
// order-sensitive operation:
//
//   - appending to (or accumulating into) a slice, string or byte
//     buffer — `out = append(out, k)`, `buf = AppendWire(buf, k)`,
//     `s += k` — unless that accumulator is later passed to a sort.*
//     or slices.* call, or to a function whose name says it sorts
//     (label.SortLabels, sortKeys, …), in the same function;
//   - writing output or hashing — any Write/WriteString/Print*/
//     Fprint*/Sum* call: bytes fed to an io.Writer, a hash.Hash or a
//     maphash in map order produce order-dependent results.
//
// Per-key map/set updates (`m2[k] = …`, `m2[k] = append(m2[k], v)`)
// and commutative numeric accumulation (`n += v`) are order-
// insensitive and never flagged.
//
// The escape hatch is a //retypd:unordered comment on (or immediately
// above) the range statement, with a justification for why order
// cannot reach output:
//
//	//retypd:unordered every element is rendered identically
//	for k := range m { … }
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"retypd/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map ranges whose iteration order can reach output " +
		"(appends not subsequently sorted, writes, hashing); " +
		"suppress with //retypd:unordered <justification>",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Walk every function (declared or literal); each range
		// statement is judged against its innermost enclosing
		// function, which bounds the "sorted afterwards" search.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc examines the map ranges directly inside body (ranges
// inside nested function literals are checked against that literal's
// own body by the outer walk).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return
		}
		if pass.HasDirective(rs.Pos(), "unordered") {
			return
		}
		sinks := collectSinks(pass, rs)
		if len(sinks) == 0 {
			return
		}
		// The append-then-sort idiom is fine: order is re-established
		// before anything observes it.
		allSorted := true
		for _, s := range sinks {
			if s.kind != sinkAppend || s.obj == nil || !sortedAfter(pass, body, rs.End(), s.obj) {
				allSorted = false
				break
			}
		}
		if allSorted {
			return
		}
		pass.Reportf(rs.Pos(), "order-sensitive range over map: %s; "+
			"iterate sorted keys, sort the result, or justify with //retypd:unordered",
			describe(sinks))
	})
}

// inspectShallow visits nodes inside n without descending into nested
// function literals.
func inspectShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

type sinkKind int

const (
	sinkAppend sinkKind = iota // accumulation into a slice/string/buffer
	sinkWrite                  // write/print/hash call
)

type sink struct {
	kind sinkKind
	obj  types.Object // the accumulator, for the sorted-after check
	desc string
}

// writeNames are method/function names that feed bytes somewhere
// order-dependent: io.Writer-style sinks, fmt printing, hash sums.
var writeNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sum": true, "Sum32": true, "Sum64": true,
}

func collectSinks(pass *analysis.Pass, rs *ast.RangeStmt) []sink {
	var sinks []sink
	// Function literals defined inside the loop body are included:
	// they close over loop variables, and whether they run now or
	// later the per-iteration effects happen in map order.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(pass, st)...)
		case *ast.CallExpr:
			if name, ok := calleeName(st); ok && writeNames[name] {
				sinks = append(sinks, sink{kind: sinkWrite, desc: name + " call"})
			}
		}
		return true
	})
	return sinks
}

// assignSinks classifies one assignment inside the loop body.
func assignSinks(pass *analysis.Pass, st *ast.AssignStmt) []sink {
	var sinks []sink
	switch st.Tok {
	case token.ADD_ASSIGN:
		// `s += k` on strings is ordered concatenation; numeric `n += v`
		// is commutative and fine.
		if len(st.Lhs) == 1 && isStringy(pass.TypesInfo.TypeOf(st.Lhs[0])) && !isMapIndexed(pass, st.Lhs[0]) {
			sinks = append(sinks, sink{kind: sinkAppend, obj: accumulator(pass, st.Lhs[0]), desc: "string concatenation"})
		}
	case token.ASSIGN, token.DEFINE:
		if len(st.Lhs) != len(st.Rhs) {
			return nil
		}
		for i, rhs := range st.Rhs {
			lhs := st.Lhs[i]
			// Per-key map updates are order-insensitive.
			if isMapIndexed(pass, lhs) {
				continue
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if isBuiltinAppend(pass, call) {
				sinks = append(sinks, sink{kind: sinkAppend, obj: accumulator(pass, lhs), desc: "append"})
				continue
			}
			// `x = f(x, …)` re-assignment of a slice/string accumulator
			// (binary.AppendUvarint, label.AppendWire, …).
			if isStringy(pass.TypesInfo.TypeOf(lhs)) && callMentions(pass, call, accumulator(pass, lhs)) {
				sinks = append(sinks, sink{kind: sinkAppend, obj: accumulator(pass, lhs), desc: "accumulating call"})
			}
		}
	}
	return sinks
}

// isStringy reports slice, string, or array types — the accumulators
// whose element order is observable.
func isStringy(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Basic:
		if b, ok := t.Underlying().(*types.Basic); ok {
			return b.Info()&types.IsString != 0
		}
		return true
	}
	return false
}

// isMapIndexed reports whether e is m[k] with a map base.
func isMapIndexed(pass *analysis.Pass, e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// accumulator resolves the object a sink accumulates into: the
// identifier itself, or the field of a selector chain.
func accumulator(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(v)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(v.Sel)
	case *ast.IndexExpr:
		return accumulator(pass, v.X)
	case *ast.StarExpr:
		return accumulator(pass, v.X)
	}
	return nil
}

// calleeName extracts the selector name of a method/package call.
func calleeName(call *ast.CallExpr) (string, bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name, true
	}
	return "", false
}

// callMentions reports whether obj appears among the call's arguments.
func callMentions(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

// sortedAfter reports whether obj is passed, after pos within the
// enclosing function body, to a call that re-establishes order: any
// sort.*/slices.* call, or any function whose own name says it sorts
// (label.SortLabels, sortKeys, …).
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !callMentions(pass, call, obj) {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if isSortName(fun.Sel.Name) {
				found = true
				return true
			}
			pkgID, ok := ast.Unparen(fun.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(pkgID).(*types.PkgName)
			if !ok {
				return true
			}
			if p := pn.Imported().Path(); p == "sort" || p == "slices" {
				found = true
			}
		case *ast.Ident:
			if isSortName(fun.Name) {
				found = true
			}
		}
		return true
	})
	return found
}

// isSortName reports function names that declare a sorting effect.
func isSortName(name string) bool {
	return strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort") ||
		strings.HasSuffix(name, "Sort") || strings.HasSuffix(name, "Sorted")
}

func describe(sinks []sink) string {
	seen := map[string]bool{}
	var parts []string
	for _, s := range sinks {
		if !seen[s.desc] {
			seen[s.desc] = true
			parts = append(parts, s.desc)
		}
	}
	return strings.Join(parts, ", ")
}
