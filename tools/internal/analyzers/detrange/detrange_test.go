package detrange_test

import (
	"testing"

	"retypd/tools/internal/analysistest"
	"retypd/tools/internal/analyzers/detrange"
)

func TestDetRange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrange.Analyzer, "detrange")
}
