// Fixtures for the detrange analyzer: map ranges with order-sensitive
// bodies are flagged unless sorted afterwards or justified.
package detrange

import (
	"fmt"
	"hash/maphash"
	"sort"
	"strings"
)

func flagAppendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `order-sensitive range over map: append`
		out = append(out, k)
	}
	return out
}

func okAppendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func okAppendThenSortSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func flagPrint(m map[string]int) {
	for k, v := range m { // want `order-sensitive range over map`
		fmt.Println(k, v)
	}
}

func flagBuilderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `order-sensitive range over map`
		b.WriteString(k)
	}
	return b.String()
}

func flagHash(m map[string]int) uint64 {
	var h maphash.Hash
	for k := range m { // want `order-sensitive range over map`
		h.WriteString(k)
	}
	return h.Sum64()
}

func flagStringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `order-sensitive range over map: string concatenation`
		s += k
	}
	return s
}

func flagAccumulatingCall(m map[string]int) []byte {
	var buf []byte
	for k := range m { // want `order-sensitive range over map: accumulating call`
		buf = appendKey(buf, k)
	}
	return buf
}

func appendKey(b []byte, k string) []byte { return append(b, k...) }

func okJustified(m map[string]int) []string {
	var out []string
	//retypd:unordered every element renders identically, order cannot show
	for range m {
		out = append(out, "x")
	}
	return out
}

func okTrailingJustification(m map[string]int) []string {
	var out []string
	for range m { //retypd:unordered constant elements
		out = append(out, "x")
	}
	return out
}

// A helper whose name declares a sorting effect counts as sorting,
// like the repo's label.SortLabels.
func okAppendThenSortHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(xs []string) { sort.Strings(xs) }

// A non-sort helper call does not suppress the finding.
func flagAppendThenOtherHelper(m map[string]int) []string {
	var out []string
	for k := range m { // want `order-sensitive range over map: append`
		out = append(out, k)
	}
	shuffle(out)
	return out
}

func shuffle(xs []string) {}

func okMapToMap(m map[string]int) map[int]string {
	inv := make(map[int]string)
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func okGroupBy(m map[string]int) map[int][]string {
	g := map[int][]string{}
	for k, v := range m {
		g[v] = append(g[v], k)
	}
	return g
}

func okCommutativeSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func okSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func okMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func flagClosureInLoop(m map[string]int) []func() string {
	var fns []func() string
	for k := range m { // want `order-sensitive range over map: append`
		k := k
		fns = append(fns, func() string { return k })
	}
	return fns
}
