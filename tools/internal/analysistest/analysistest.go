// Package analysistest runs one analyzer over fixture packages and
// checks its findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest with only the standard
// library.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. Fixture
// packages may import each other by those import paths (needed by the
// sealedmut fixtures, which stand in a fake "internal/sketch"
// package); standard-library imports are resolved through `go list
// -export` once per process.
//
// Expectations are trailing comments on the offending line:
//
//	m := map[int]int{}          // no comment: no finding expected
//	for k := range m { … }      // want `order-sensitive`
//
// The text between quotes or backquotes is a regular expression that
// must match the finding's message. Every finding must be matched by
// a want on its exact line, and every want must be matched by a
// finding.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"retypd/tools/internal/analysis"
	"retypd/tools/internal/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

var (
	stdOnce   sync.Once
	stdExport map[string]string
	stdErr    error
)

// stdExports maps standard-library import paths to export-data files,
// produced once per process by `go list -export std`.
func stdExports() (map[string]string, error) {
	stdOnce.Do(func() {
		out, err := exec.Command("go", "list", "-e", "-export", "-json=ImportPath,Export", "std").Output()
		if err != nil {
			stdErr = fmt.Errorf("go list -export std: %w", err)
			return
		}
		stdExport = map[string]string{}
		dec := json.NewDecoder(strings.NewReader(string(out)))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if p.Export != "" {
				stdExport[p.ImportPath] = p.Export
			}
		}
	})
	return stdExport, stdErr
}

// srcImporter resolves fixture packages from the testdata tree and
// everything else from the standard library's export data.
type srcImporter struct {
	root  string // <testdata>/src
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*load.Package
}

func (si *srcImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(si.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := si.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return si.std.Import(path)
}

func (si *srcImporter) load(path string) (*load.Package, error) {
	if p, ok := si.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(si.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	pkg, err := load.Check(si.fset, path, files, si, "")
	if err != nil {
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// Run loads each fixture package and applies the analyzer, comparing
// findings against the // want comments in the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	std, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	si := &srcImporter{
		root:  filepath.Join(testdata, "src"),
		fset:  fset,
		std:   load.ExportImporter(fset, nil, std),
		cache: map[string]*load.Package{},
	}
	for _, path := range paths {
		pkg, err := si.load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", path, pkg.TypeErrors)
			continue
		}
		checkPackage(t, a, pkg)
	}
}

var wantRe = regexp.MustCompile("// want (?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

type wantKey struct {
	file string
	line int
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()

	// Collect want expectations per (file, line).
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := map[wantKey][]bool{}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
	}
	pass.Report = func(d analysis.Diagnostic) {
		pos := pkg.Fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		res := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				return
			}
		}
		t.Errorf("%s: unexpected finding: %s", pos, d.Message)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkg.Pkg.Path(), err)
	}

	for k, res := range wants {
		for i, re := range res {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
