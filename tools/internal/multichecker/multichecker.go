// Package multichecker drives a set of analysis.Analyzers in the two
// ways retypd-vet is invoked:
//
//	retypd-vet [packages]          standalone: `go list -export` discovers
//	                               and type-checks the packages (default ./...)
//	go vet -vettool=retypd-vet …   unit-checker protocol: cmd/go invokes the
//	                               tool once per package with a vet.cfg file
//	                               (this path also covers _test.go files)
//
// Both modes print findings as "file:line:col: [analyzer] message" on
// stderr and exit nonzero when any finding is reported.
package multichecker

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"retypd/tools/internal/analysis"
	"retypd/tools/internal/load"
)

// version is reported to cmd/go via -V=full, which folds it into the
// vet build-cache key: bump it when analyzer behavior changes so
// cached "no findings" results are invalidated.
const version = "v1"

// Main runs the multichecker and exits the process.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Args[1:], analyzers))
}

// Run executes one invocation and returns the process exit code.
func Run(args []string, analyzers []*analysis.Analyzer) int {
	progname := "retypd-vet"
	if len(os.Args) > 0 {
		progname = filepath.Base(os.Args[0])
	}

	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// cmd/go probes `tool -V=full` and requires the reply
			// "<basename> version <non-devel-token>".
			fmt.Printf("%s version %s\n", progname, version)
			return 0
		case args[0] == "-flags":
			// cmd/go asks which vet flags the tool supports; none.
			fmt.Println("[]")
			return 0
		case args[0] == "help" || args[0] == "-h" || args[0] == "--help":
			printHelp(progname, analyzers)
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetCfg(args[0], analyzers)
		}
	}
	return runStandalone(args, analyzers)
}

func printHelp(progname string, analyzers []*analysis.Analyzer) {
	fmt.Printf("%s: project-specific vet checks for the retypd repository\n\n", progname)
	fmt.Printf("usage: %s [package patterns]   (default ./...)\n", progname)
	fmt.Printf("   or: go vet -vettool=$(command -v %s) ./...\n\n", progname)
	fmt.Println("registered analyzers:")
	for _, a := range analyzers {
		fmt.Printf("\n%s: %s\n", a.Name, a.Doc)
	}
}

// runVetCfg serves one package of a `go vet -vettool` run.
func runVetCfg(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := load.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retypd-vet: %v\n", err)
		return 1
	}
	// Dependencies are scheduled only so fact-producing tools can see
	// them; this suite is fact-free, so an empty facts file satisfies
	// the protocol without type-checking anything.
	if cfg.VetxOnly {
		if err := cfg.WriteVetx(); err != nil {
			fmt.Fprintf(os.Stderr, "retypd-vet: %v\n", err)
			return 1
		}
		return 0
	}
	pkg, err := load.LoadVetCfg(cfg)
	if err != nil || len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			_ = cfg.WriteVetx()
			return 0
		}
		if err == nil {
			err = pkg.TypeErrors[0]
		}
		fmt.Fprintf(os.Stderr, "retypd-vet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	n := analyze(pkg, analyzers)
	if err := cfg.WriteVetx(); err != nil {
		fmt.Fprintf(os.Stderr, "retypd-vet: %v\n", err)
		return 1
	}
	if n > 0 {
		return 2
	}
	return 0
}

// runStandalone drives analyzers over go-list-resolved packages.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.GoList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "retypd-vet: %v\n", err)
		return 1
	}
	total := 0
	for _, pkg := range pkgs {
		total += analyze(pkg, analyzers)
	}
	if total > 0 {
		return 2
	}
	return 0
}

// analyze runs every analyzer over one package and prints its
// findings in position order; it returns the finding count.
func analyze(pkg *load.Package, analyzers []*analysis.Analyzer) int {
	type finding struct {
		pos token.Position
		msg string
	}
	var findings []finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, finding{
				pos: pkg.Fset.Position(d.Pos),
				msg: fmt.Sprintf("[%s] %s", name, d.Message),
			})
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "retypd-vet: %s: %s: %v\n", a.Name, pkg.Pkg.Path(), err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.msg < b.msg
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.pos, f.msg)
	}
	return len(findings)
}
