package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// GoList loads the packages matching patterns (plus nothing else: the
// -deps sweep only feeds the export-data map for imports). Packages
// that fail to list carry their error through; analysis proceeds on
// the rest.
func GoList(patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,DepOnly,Error",
	}, patterns...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		msg := err.Error()
		var ee *exec.ExitError
		if errors.As(err, &ee) && len(ee.Stderr) > 0 {
			msg = string(bytes.TrimSpace(ee.Stderr))
		}
		return nil, fmt.Errorf("go list: %s", msg)
	}

	var targets []*listPkg
	exportFile := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pc := p
			targets = append(targets, &pc)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, nil, exportFile)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
			if !filepath.IsAbs(f) {
				f = filepath.Join(t.Dir, f)
			}
			files = append(files, f)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp, "")
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
