package load

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// VetConfig mirrors the JSON configuration cmd/go writes for a
// -vettool invocation (one file per package; see the unitchecker
// protocol in golang.org/x/tools and cmd/go/internal/work). Fields the
// retypd-vet analyzers never consult are omitted from the struct;
// unknown JSON keys are ignored by encoding/json.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses one vet.cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &VetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// WriteVetx writes the facts file cmd/go expects every vettool
// invocation to produce. The retypd-vet analyzers are fact-free, so
// the file is empty — it exists purely to satisfy the protocol (and
// the build cache, which keys vet reruns on it).
func (cfg *VetConfig) WriteVetx() error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// LoadVetCfg type-checks the package a vet.cfg describes. The caller
// has already handled VetxOnly configs.
func LoadVetCfg(cfg *VetConfig) (*Package, error) {
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("unsupported compiler %q", cfg.Compiler)
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	goVersion := cfg.GoVersion
	// cmd/go passes fully qualified versions like "go1.22.1";
	// types.Config wants the language version.
	if strings.Count(goVersion, ".") >= 2 {
		goVersion = goVersion[:strings.LastIndex(goVersion, ".")]
	}
	return Check(fset, cfg.ImportPath, cfg.GoFiles, imp, goVersion)
}
