// Package load type-checks Go packages for the retypd-vet analyzers
// using only the standard library.
//
// Three loaders share one core (Check):
//
//   - GoList — the standalone driver: `go list -deps -export -json`
//     discovers the target packages and the export data of their
//     dependencies, and the stdlib gc importer reads the build cache's
//     export files directly.
//   - VetCfg — the `go vet -vettool` unit-checker protocol: cmd/go
//     hands the tool one JSON config per package with files and an
//     import→export-data map already resolved.
//   - Source (in package analysistest) — test fixtures type-checked
//     from a testdata/src tree.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors are soft type-checking problems; the package is still
	// analyzed (analyzers must tolerate partial type information).
	TypeErrors []error
}

// Check parses and type-checks one package from its file list.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	p := &Package{Fset: fset, Files: files, Info: NewInfo()}
	conf := types.Config{
		Importer:         imp,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error:            func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	if goVersion != "" {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(path, fset, files, p.Info)
	p.Pkg = pkg
	if pkg == nil {
		return nil, err
	}
	return p, nil
}

// NewInfo returns a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// ExportImporter returns a gc-compiler importer whose export data is
// resolved through importMap (source path → canonical path, identity
// when absent) and packageFile (canonical path → export data file).
func ExportImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
