// retypd-vet is the project-specific vet suite of the retypd
// repository: four analyzers enforcing the engine's determinism,
// immutability, and cache-soundness invariants (detrange, sealedmut,
// nameintern, keyreach — run `retypd-vet help` for details).
//
// Standalone:
//
//	cd tools && go build -o ../bin/retypd-vet ./cmd/retypd-vet
//	bin/retypd-vet ./...          # from the repository root
//
// Or as a go vet tool (also covers _test.go files):
//
//	go vet -vettool=bin/retypd-vet ./...
//
// scripts/check_lint.sh wraps both steps and is what CI runs.
package main

import (
	"retypd/tools/internal/analyzers"
	"retypd/tools/internal/multichecker"
)

func main() {
	multichecker.Main(analyzers.All...)
}
