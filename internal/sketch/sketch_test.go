package sketch

import (
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
)

func shapesFor(t *testing.T, text string) (*Builder, *lattice.Lattice) {
	t.Helper()
	cs, err := constraints.ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.Default()
	return NewBuilder(cs, lat), lat
}

// TestShapesBasic: Theorem 3.1's quotient gives the capability
// language of each variable.
func TestShapesBasic(t *testing.T) {
	sh, _ := shapesFor(t, `
		F.in_stack0 <= p
		p.load.σ32@0 <= q
		q <= F.out_eax
	`)
	sk := sh.SketchFor("F", -1)
	for _, w := range []label.Word{
		{label.In("stack0")},
		{label.In("stack0"), label.Load()},
		{label.In("stack0"), label.Load(), label.Field(32, 0)},
		{label.Out("eax")},
	} {
		if !sk.Accepts(w) {
			t.Errorf("missing capability %s:\n%s", w, sk)
		}
	}
	if sk.Accepts(label.Word{label.In("stack4")}) {
		t.Error("invented capability in_stack4")
	}
}

// TestShapesRecursive: a recursive constraint set yields a looping
// sketch (infinite regular tree).
func TestShapesRecursive(t *testing.T) {
	sh, _ := shapesFor(t, `
		F.in_stack0 <= t
		t.load.σ32@0 <= t
	`)
	sk := sh.SketchFor("F", -1)
	w := label.Word{label.In("stack0")}
	for i := 0; i < 10; i++ {
		w = w.Append(label.Load()).Append(label.Field(32, 0))
	}
	if !sk.Accepts(w) {
		t.Error("recursive capability missing at depth 10")
	}
	// Depth-limited extraction models TIE's lack of recursive types.
	cut := sh.SketchFor("F", 3)
	if cut.Accepts(w) {
		t.Error("depth-3 sketch should not accept depth-10 words")
	}
}

// TestLoadStoreConflation: the S-POINTER congruence makes .load and
// .store children share a class (Theorem 3.1's ℓ = .load, ℓ′ = .store
// case).
func TestLoadStoreConflation(t *testing.T) {
	sh, lat := shapesFor(t, `
		int <= p.store.σ32@0
		p.load.σ32@0 <= x
	`)
	_ = lat
	if !sh.HasCapability(constraints.BaseDTV("p"), label.Load()) {
		t.Fatal("p must be loadable")
	}
	// x must be in the same class as the stored int.
	skX := sh.SketchFor("x", -1)
	_ = skX
	dLoad, _ := constraints.ParseDTV("p.load.σ32@0")
	dStore, _ := constraints.ParseDTV("p.store.σ32@0")
	if sh.classOf(dLoad) != sh.classOf(dStore) {
		t.Error("load/store targets must be conflated")
	}
}

// TestFigure13AddSub exercises every inference rule column of
// Figure 13.
func TestFigure13AddSub(t *testing.T) {
	cases := []struct {
		name string
		text string
		// queries: var → want pointer?
		wantPtr map[string]bool
		wantInt map[string]bool
	}{
		{
			name:    "ADD c1: i+i⇒I",
			text:    "x <= int\ny <= int\nint <= x\nint <= y\nAdd(x, y; z)",
			wantInt: map[string]bool{"z": true},
		},
		{
			name:    "ADD c3: p+?⇒P,I",
			text:    "x.load.σ32@0 <= w\nAdd(x, y; z)\nint <= y0\ny0 <= y",
			wantPtr: map[string]bool{"z": true},
			wantInt: map[string]bool{"y": true},
		},
		{
			name:    "ADD c4: Z=p,y=i⇒X=P",
			text:    "z.load.σ32@0 <= w\nint <= y\ny <= int\nAdd(x, y; z)",
			wantPtr: map[string]bool{"x": true},
		},
		{
			name:    "SUB c10: y=p⇒X=P,Z=I",
			text:    "y.store.σ32@0 <= w\nw <= y.store.σ32@0\nSub(x, y; z)",
			wantPtr: map[string]bool{"x": true},
			wantInt: map[string]bool{"z": true},
		},
		{
			name:    "SUB c12: x=p,y=i⇒Z=P",
			text:    "x.load.σ32@0 <= w\nint <= y\ny <= int\nSub(x, y; z)",
			wantPtr: map[string]bool{"z": true},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sh, _ := shapesFor(t, c.text)
			for v, want := range c.wantPtr {
				sk := sh.SketchFor(constraints.Var(v), -1)
				got := sk.States[0].Flags&FlagPointer != 0
				if got != want {
					t.Errorf("%s pointer flag = %v, want %v", v, got, want)
				}
			}
			for v, want := range c.wantInt {
				sk := sh.SketchFor(constraints.Var(v), -1)
				got := sk.States[0].Flags&FlagInteger != 0
				if got != want {
					t.Errorf("%s integer flag = %v, want %v", v, got, want)
				}
			}
		})
	}
}

// mkSketch builds a small sketch by hand.
func mkSketch(lat *lattice.Lattice, build func(s *Sketch)) *Sketch {
	s := NewTop(lat)
	build(s)
	return s
}

// TestSketchLatticeOps checks Figure 18: meet takes the union of
// languages, join the intersection.
func TestSketchLatticeOps(t *testing.T) {
	lat := lattice.Default()
	a := mkSketch(lat, func(s *Sketch) {
		s.States = append(s.States, State{Lower: lat.Bottom(), Upper: lat.Top(), Variance: label.Covariant})
		s.States[0].Edges = []Edge{{Label: label.Load(), To: 1}}
	})
	b := mkSketch(lat, func(s *Sketch) {
		s.States = append(s.States, State{Lower: lat.Bottom(), Upper: lat.Top(), Variance: label.Contravariant})
		s.States[0].Edges = []Edge{{Label: label.Store(), To: 1}}
	})
	meet := a.Meet(b)
	if !meet.Accepts(label.Word{label.Load()}) || !meet.Accepts(label.Word{label.Store()}) {
		t.Errorf("meet must union capabilities:\n%s", meet)
	}
	join := a.Join(b)
	if join.Accepts(label.Word{label.Load()}) || join.Accepts(label.Word{label.Store()}) {
		t.Errorf("join must intersect capabilities:\n%s", join)
	}

	// Order: more capable ⊑ less capable.
	if !meet.Leq(a) || !meet.Leq(b) {
		t.Error("meet must be below both arguments")
	}
	if !a.Leq(join) || !b.Leq(join) {
		t.Error("join must be above both arguments")
	}
	// Leq is reflexive.
	if !a.Leq(a) || !a.Equal(a) {
		t.Error("Leq must be reflexive")
	}
}

// TestSketchBoundOrdering: bounds participate in the order with the
// node's variance.
func TestSketchBoundOrdering(t *testing.T) {
	lat := lattice.Default()
	intE := lat.MustElem("int")
	a := NewTop(lat)
	a.States[0].AddLower(lat, intE)
	b := NewTop(lat)
	// a has lower bound int, b is unconstrained: a's lower is higher,
	// so a ⋢ b at a covariant root but b ⊑ a.
	if !b.Leq(a) {
		t.Error("unconstrained ⊑ lower-bounded at covariant root")
	}
	if a.Leq(b) {
		t.Error("lower-bounded should not be ⊑ unconstrained")
	}
}

// TestDescend extracts subtrees (u⁻¹S).
func TestDescend(t *testing.T) {
	sh, _ := shapesFor(t, `
		F.in_stack0.load.σ32@4 <= int
	`)
	sk := sh.SketchFor("F", -1)
	sub, ok := sk.Descend(label.Word{label.In("stack0")})
	if !ok {
		t.Fatal("descend failed")
	}
	if !sub.Accepts(label.Word{label.Load(), label.Field(32, 4)}) {
		t.Errorf("subtree lost capabilities:\n%s", sub)
	}
}

// TestSeedForUnify: unified constants become point intervals; conflicts
// fall back to unconstrained.
func TestSeedForUnify(t *testing.T) {
	sh, lat := shapesFor(t, `
		x <= int
		int <= x
	`)
	sk := sh.SketchForUnify("x", 3)
	if sk.States[0].Lower != lat.MustElem("int") || sk.States[0].Upper != lat.MustElem("int") {
		t.Errorf("seeded point interval expected, got [%s,%s]",
			lat.Name(sk.States[0].Lower), lat.Name(sk.States[0].Upper))
	}
	// int and str join to the generic machine word (SecondWrite's reg32
	// fallback): still a defined point.
	shMid, latMid := shapesFor(t, `
		y <= int
		int <= y
		y <= str
		str <= y
	`)
	skMid := shMid.SketchForUnify("y", 3)
	if latMid.Name(skMid.States[0].Lower) != "num32" {
		t.Errorf("int⊔str should fall back to num32, got %s", latMid.Name(skMid.States[0].Lower))
	}
	// A true conflict (FILE vs int joins to ⊤) becomes unconstrained.
	sh2, lat2 := shapesFor(t, `
		y <= int
		int <= y
		y <= FILE
		FILE <= y
	`)
	sk2 := sh2.SketchForUnify("y", 3)
	if sk2.States[0].Lower != lat2.Bottom() || sk2.States[0].Upper != lat2.Top() {
		t.Errorf("conflicting seeds must become unconstrained, got [%s,%s]",
			lat2.Name(sk2.States[0].Lower), lat2.Name(sk2.States[0].Upper))
	}
}
