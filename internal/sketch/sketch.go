// Package sketch implements Retypd's semantic model of types: sketches
// (Noonan et al., PLDI 2016, §3.5 and Appendix E).
//
// A sketch is a regular tree whose edges are labeled with field labels
// from Σ and whose nodes are marked with elements of the auxiliary
// lattice Λ; it records the capabilities a value holds (which fields can
// be accessed, whether it can be loaded from or stored through, called,
// …) together with atomic-type bounds. Collapsing isomorphic subtrees
// represents a sketch as a deterministic finite automaton whose states
// carry lattice elements (Definition 3.5).
//
// We decorate every node with a pair (Lower, Upper) of lattice bounds:
// the covariant ν of the paper corresponds to Lower at covariant nodes
// and Upper at contravariant nodes; keeping both directions also gives
// the TIE-style intervals used by the evaluation metrics.
package sketch

import (
	"fmt"
	"sort"
	"strings"

	"retypd/internal/label"
	"retypd/internal/lattice"
)

// Flags carry scalar classification inferred from additive constraints
// (Appendix A.6, Figure 13).
type Flags uint8

const (
	// FlagPointer marks a value inferred to be pointer-like.
	FlagPointer Flags = 1 << iota
	// FlagInteger marks a value inferred to be integer-like.
	FlagInteger
)

// State is one node of a sketch automaton.
type State struct {
	// Edges are the outgoing labeled transitions, sorted by label.
	Edges []Edge
	// Lower and Upper are the lattice bounds collected for this node:
	// joins of lower-bound constants and meets of upper-bound constants.
	Lower, Upper lattice.Elem
	// LowerSet and UpperSet retain the individual bound constants as
	// antichains; the join/meet can collapse to ⊤/⊥ (e.g. Figure 2's
	// int ∨ #SuccessZ), and the C-type conversion policies need the
	// members to render tags and unions (Examples 4.2 and the
	// #FileDescriptor comments of Figure 2).
	LowerSet, UpperSet []lattice.Elem
	// Variance is the variance of the words reaching this state.
	Variance label.Variance
	// Flags carries pointer/integer classification.
	Flags Flags
}

// AddLower records a lower-bound constant. State-level mutators (and
// direct field writes) must only be applied to sketches the caller
// owns and has not sealed; a State carries no back-pointer to its
// sketch, so the sealed guard lives on the Sketch-level entry points
// (Decorator.Decorate) and on Seal's slice clamping.
func (st *State) AddLower(lat *lattice.Lattice, e lattice.Elem) {
	st.Lower = lat.Join(st.Lower, e)
	st.LowerSet = lat.Antichain(append(st.LowerSet, e))
}

// AddUpper records an upper-bound constant.
func (st *State) AddUpper(lat *lattice.Lattice, e lattice.Elem) {
	st.Upper = lat.Meet(st.Upper, e)
	st.UpperSet = lat.Antichain(append(st.UpperSet, e))
}

// Edge is a labeled transition.
type Edge struct {
	Label label.Label
	To    int
}

// Sketch is a rooted sketch automaton. State 0 is the root. A nil
// Sketch represents the ⊤ sketch (language {ε}, unconstrained marks).
//
// A Sketch starts out mutable — the Builder extracts it and the
// Decorator fills in its lattice bounds — and is then frozen with Seal
// before it is shared (the ShapeCache only ever hands out sealed
// sketches). Sealing is the immutability boundary of the phase-2 memo:
// a sealed sketch may be read concurrently by any number of goroutines,
// and every operation that derives a new sketch from it (Descend, Meet,
// Join, WithRootVariance) returns a fresh unsealed value whose mutation
// cannot reach back into the sealed storage.
type Sketch struct {
	Lat    *lattice.Lattice
	States []State

	// sealed marks the sketch immutable. Set by Seal; checked by the
	// in-package mutators (Decorator.Decorate, recomputeVariance).
	sealed bool
}

// Seal freezes the sketch: subsequent Decorate calls panic, and every
// internal slice is clamped to its length so that appends performed on
// derived copies (Descend, combine) reallocate instead of writing into
// the shared backing arrays. Seal is idempotent and returns s for
// chaining. A sealed sketch is safe for concurrent readers.
func (s *Sketch) Seal() *Sketch {
	if s.sealed {
		return s
	}
	s.States = s.States[:len(s.States):len(s.States)]
	for i := range s.States {
		st := &s.States[i]
		st.Edges = st.Edges[:len(st.Edges):len(st.Edges)]
		st.LowerSet = st.LowerSet[:len(st.LowerSet):len(st.LowerSet)]
		st.UpperSet = st.UpperSet[:len(st.UpperSet):len(st.UpperSet)]
	}
	s.sealed = true
	return s
}

// Sealed reports whether the sketch has been frozen.
func (s *Sketch) Sealed() bool { return s.sealed }

// mustBeMutable is the guard every in-package mutator runs first.
func (s *Sketch) mustBeMutable(op string) {
	if s.sealed {
		panic("sketch: " + op + " on a sealed Sketch (cache-served sketches are immutable; derive a copy instead)")
	}
}

// WithRootVariance returns a sketch equal to s but with the root
// state's variance set to v: a copy-on-write derivation (fresh States
// slice, shared edge/bound storage) used by display policies that view
// a parameter sketch in contravariant position. s itself — sealed or
// not — is never modified, and a sealed receiver always yields a
// fresh mutable copy, even when no variance change is needed, so the
// "derived views are mutable" contract holds unconditionally.
func (s *Sketch) WithRootVariance(v label.Variance) *Sketch {
	if len(s.States) == 0 || s.States[0].Variance == v {
		if !s.sealed {
			return s
		}
		return s.unsealedCopy()
	}
	out := s.unsealedCopy()
	out.States[0].Variance = v
	return out
}

// unsealedCopy returns a mutable shallow copy: fresh States slice,
// shared (clamped, if s is sealed) edge and bound-set storage.
func (s *Sketch) unsealedCopy() *Sketch {
	return &Sketch{Lat: s.Lat, States: append([]State(nil), s.States...)}
}

// NewTop returns the one-state sketch accepting only ε with
// unconstrained bounds (⊥ lower, ⊤ upper) at the root.
func NewTop(lat *lattice.Lattice) *Sketch {
	return &Sketch{Lat: lat, States: []State{{
		Lower: lat.Bottom(), Upper: lat.Top(), Variance: label.Covariant,
	}}}
}

// Lookup returns the index of the transition for l in st, or -1.
func (st *State) Lookup(l label.Label) int {
	for i, e := range st.Edges {
		if e.Label == l {
			return e.To
		}
		_ = i
	}
	return -1
}

// Accepts reports whether w ∈ L(S).
func (s *Sketch) Accepts(w label.Word) bool {
	_, ok := s.StateAt(w)
	return ok
}

// StateAt walks w from the root, returning the reached state index.
func (s *Sketch) StateAt(w label.Word) (int, bool) {
	cur := 0
	for _, l := range w {
		next := s.States[cur].Lookup(l)
		if next < 0 {
			return 0, false
		}
		cur = next
	}
	return cur, true
}

// Descend returns the sub-sketch rooted at the state reached by w
// (u⁻¹S in the paper's notation), or false if w ∉ L(S).
func (s *Sketch) Descend(w label.Word) (*Sketch, bool) {
	root, ok := s.StateAt(w)
	if !ok {
		return nil, false
	}
	if root == 0 {
		if !s.sealed {
			return s, true
		}
		// Sealed sketches never hand themselves out as a "derived"
		// view: the caller gets a mutable copy it may decorate freely.
		return s.unsealedCopy(), true
	}
	// Extract the sub-automaton reachable from root.
	remap := map[int]int{root: 0}
	order := []int{root}
	for i := 0; i < len(order); i++ {
		for _, e := range s.States[order[i]].Edges {
			if _, seen := remap[e.To]; !seen {
				remap[e.To] = len(order)
				order = append(order, e.To)
			}
		}
	}
	out := &Sketch{Lat: s.Lat, States: make([]State, len(order))}
	for i, old := range order {
		st := s.States[old]
		ns := State{
			Lower: st.Lower, Upper: st.Upper, Flags: st.Flags,
			LowerSet: st.LowerSet, UpperSet: st.UpperSet,
		}
		if i == 0 {
			ns.Variance = label.Covariant
		} else {
			ns.Variance = st.Variance // recomputed below
		}
		for _, e := range st.Edges {
			ns.Edges = append(ns.Edges, Edge{Label: e.Label, To: remap[e.To]})
		}
		out.States[i] = ns
	}
	out.recomputeVariance()
	return out, true
}

// recomputeVariance sets each state's variance from the root (states
// reachable with both variances keep the first one found; such sketches
// do not arise from shape inference, which splits states by variance).
func (s *Sketch) recomputeVariance() {
	s.mustBeMutable("recomputeVariance")
	seen := make([]bool, len(s.States))
	type item struct {
		st int
		v  label.Variance
	}
	work := []item{{0, label.Covariant}}
	seen[0] = true
	s.States[0].Variance = label.Covariant
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range s.States[it.st].Edges {
			if !seen[e.To] {
				seen[e.To] = true
				s.States[e.To].Variance = it.v.Mul(e.Label.Variance())
				work = append(work, item{e.To, s.States[e.To].Variance})
			}
		}
	}
}

// Size reports the number of states.
func (s *Sketch) Size() int { return len(s.States) }

// sortEdges normalizes edge order.
func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool { return label.Compare(es[i].Label, es[j].Label) < 0 })
}

// Meet computes s ⊓ t: language union, with marks combined per
// Figure 18 (covariant nodes: Lower meet-side combines with ∧ on the
// primary mark; we combine Lower with ∨ and Upper with ∧ pointwise,
// which realizes ν⊓ = ν∧ at covariant nodes via Upper and ν∨ at
// contravariant nodes via Lower).
func (s *Sketch) Meet(t *Sketch) *Sketch { return combine(s, t, true) }

// Join computes s ⊔ t: language intersection with dual mark
// combination.
func (s *Sketch) Join(t *Sketch) *Sketch { return combine(s, t, false) }

// combine implements the product construction for both lattice
// operations. meet=true: union of languages (absent components behave
// as neutral); meet=false: intersection.
func combine(s, t *Sketch, meet bool) *Sketch {
	lat := s.Lat
	type pair struct{ a, b int } // -1 = absent
	index := map[pair]int{}
	out := &Sketch{Lat: lat}
	var build func(p pair, v label.Variance) int
	build = func(p pair, v label.Variance) int {
		if id, ok := index[p]; ok {
			return id
		}
		id := len(out.States)
		index[p] = id
		out.States = append(out.States, State{Variance: v})

		var sa, sb *State
		if p.a >= 0 {
			sa = &s.States[p.a]
		}
		if p.b >= 0 {
			sb = &t.States[p.b]
		}
		st := State{Variance: v}
		switch {
		case sa != nil && sb != nil:
			if meet {
				// ⊓: more capable, lower in the order: Lower joins up,
				// Upper meets down at covariant nodes (and dually the
				// interval widens in the contravariant direction).
				st.Lower = lat.Join(sa.Lower, sb.Lower)
				st.Upper = lat.Meet(sa.Upper, sb.Upper)
			} else {
				st.Lower = lat.Meet(sa.Lower, sb.Lower)
				st.Upper = lat.Join(sa.Upper, sb.Upper)
			}
			st.LowerSet = lat.Antichain(append(append([]lattice.Elem(nil), sa.LowerSet...), sb.LowerSet...))
			st.UpperSet = lat.Antichain(append(append([]lattice.Elem(nil), sa.UpperSet...), sb.UpperSet...))
			st.Flags = sa.Flags | sb.Flags
		case sa != nil:
			st.Lower, st.Upper, st.Flags = sa.Lower, sa.Upper, sa.Flags
			st.LowerSet, st.UpperSet = sa.LowerSet, sa.UpperSet
		case sb != nil:
			st.Lower, st.Upper, st.Flags = sb.Lower, sb.Upper, sb.Flags
			st.LowerSet, st.UpperSet = sb.LowerSet, sb.UpperSet
		}

		// Successor labels.
		labels := map[label.Label]pair{}
		if sa != nil {
			for _, e := range sa.Edges {
				labels[e.Label] = pair{e.To, -1}
			}
		}
		if sb != nil {
			for _, e := range sb.Edges {
				if prev, ok := labels[e.Label]; ok {
					labels[e.Label] = pair{prev.a, e.To}
				} else {
					labels[e.Label] = pair{-1, e.To}
				}
			}
		}
		var ls []label.Label
		for l := range labels {
			ls = append(ls, l)
		}
		label.SortLabels(ls)
		var edges []Edge
		for _, l := range ls {
			np := labels[l]
			if !meet && (np.a < 0 || np.b < 0) {
				continue // intersection: both must step
			}
			edges = append(edges, Edge{Label: l, To: build(np, v.Mul(l.Variance()))})
		}
		st.Edges = edges
		out.States[id] = st
		return id
	}
	build(pair{0, 0}, label.Covariant)
	return out
}

// Leq reports s ⊑ t in the sketch lattice: L(s) ⊇ L(t), and for every
// shared word the bounds are ordered according to the word's variance.
func (s *Sketch) Leq(t *Sketch) bool {
	lat := s.Lat
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	var walk func(p pair, v label.Variance) bool
	walk = func(p pair, v label.Variance) bool {
		if seen[p] {
			return true
		}
		seen[p] = true
		sa, sb := &s.States[p.a], &t.States[p.b]
		if v == label.Covariant {
			if !lat.Leq(sa.Lower, sb.Lower) || !lat.Leq(sa.Upper, sb.Upper) {
				return false
			}
		} else {
			if !lat.Leq(sb.Lower, sa.Lower) || !lat.Leq(sb.Upper, sa.Upper) {
				return false
			}
		}
		for _, e := range sb.Edges {
			na := sa.Lookup(e.Label)
			if na < 0 {
				return false // t has a capability s lacks: L(s) ⊉ L(t)
			}
			if !walk(pair{na, e.To}, v.Mul(e.Label.Variance())) {
				return false
			}
		}
		return true
	}
	return walk(pair{0, 0}, label.Covariant)
}

// Equal reports mutual Leq.
func (s *Sketch) Equal(t *Sketch) bool { return s.Leq(t) && t.Leq(s) }

// String renders the sketch as an indented tree, cutting off at
// back-edges, for debugging and golden tests.
func (s *Sketch) String() string {
	var b strings.Builder
	var walk func(st int, indent string, onPath map[int]bool)
	walk = func(st int, indent string, onPath map[int]bool) {
		node := s.States[st]
		fmt.Fprintf(&b, "[%s,%s]", s.Lat.Name(node.Lower), s.Lat.Name(node.Upper))
		if node.Flags&FlagPointer != 0 {
			b.WriteString(" ptr")
		}
		if node.Flags&FlagInteger != 0 {
			b.WriteString(" int")
		}
		b.WriteString("\n")
		if onPath[st] {
			return
		}
		onPath[st] = true
		for _, e := range node.Edges {
			fmt.Fprintf(&b, "%s.%s → ", indent, e.Label)
			if onPath[e.To] {
				fmt.Fprintf(&b, "↺ state %d\n", e.To)
				continue
			}
			walk(e.To, indent+"  ", onPath)
		}
		delete(onPath, st)
	}
	walk(0, "", map[int]bool{})
	return b.String()
}
