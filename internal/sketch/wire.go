package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"

	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/lru"
	"retypd/internal/pgraph"
)

// Wire encoding of sketches and shape-memo entries. A sketch automaton
// mentions no type-variable names — only field labels, variances,
// flags, and lattice elements — so its portable form is small and
// self-contained: lattice elements are encoded by *name* together with
// the owning lattice's content signature, and decoding re-binds them
// through lattice.BySignature. An entry whose lattice has not been
// built in the decoding process is unusable there (its fingerprint
// could never be computed either) and is skipped by the loader.

// ErrUnknownLattice reports a sketch wire form whose lattice signature
// has no built lattice in this process.
var ErrUnknownLattice = fmt.Errorf("sketch: wire form references a lattice not built in this process")

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(data []byte, what string) (string, int, error) {
	ln, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < ln {
		return "", 0, fmt.Errorf("sketch: truncated %s in wire form", what)
	}
	return string(data[n : n+int(ln)]), n + int(ln), nil
}

// AppendWire appends s's canonical wire form to buf. The receiver is
// typically sealed (cache values always are), but sealing is not
// required; the decoded sketch is always sealed.
func (s *Sketch) AppendWire(buf []byte) []byte {
	buf = appendString(buf, s.Lat.Signature())
	buf = binary.AppendUvarint(buf, uint64(len(s.States)))
	for i := range s.States {
		st := &s.States[i]
		var meta byte
		if st.Variance == label.Covariant {
			meta |= 1
		}
		meta |= byte(st.Flags) << 1
		buf = append(buf, meta)
		buf = appendString(buf, s.Lat.Name(st.Lower))
		buf = appendString(buf, s.Lat.Name(st.Upper))
		buf = binary.AppendUvarint(buf, uint64(len(st.LowerSet)))
		for _, e := range st.LowerSet {
			buf = appendString(buf, s.Lat.Name(e))
		}
		buf = binary.AppendUvarint(buf, uint64(len(st.UpperSet)))
		for _, e := range st.UpperSet {
			buf = appendString(buf, s.Lat.Name(e))
		}
		buf = binary.AppendUvarint(buf, uint64(len(st.Edges)))
		for _, e := range st.Edges {
			buf = label.AppendWire(buf, e.Label)
			buf = binary.AppendUvarint(buf, uint64(e.To))
		}
	}
	return buf
}

// DecodeSketchWire decodes one sketch from the front of data, re-binding
// lattice elements by name through the process's built-lattice registry,
// and returns the sealed sketch plus the bytes consumed. It returns
// ErrUnknownLattice (wrapped) when the encoded lattice signature has no
// built lattice here.
func DecodeSketchWire(data []byte) (*Sketch, int, error) {
	sig, n, err := decodeString(data, "lattice signature")
	if err != nil {
		return nil, 0, err
	}
	lat, ok := lattice.BySignature(sig)
	if !ok {
		return nil, 0, fmt.Errorf("%w (signature %.16s…)", ErrUnknownLattice, sig)
	}
	nstates, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("sketch: truncated state count in wire form")
	}
	n += m
	// A sketch automaton always has its root state (state 0); every
	// state costs at least its meta byte, so a count beyond the
	// remaining bytes is corrupt, and checking before make keeps a
	// crafted count from allocating unboundedly.
	if nstates == 0 {
		return nil, 0, fmt.Errorf("sketch: wire form has no root state")
	}
	if nstates > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("sketch: state count %d exceeds wire form size", nstates)
	}
	elem := func(name string) (lattice.Elem, error) {
		e, ok := lat.Elem(name)
		if !ok {
			return 0, fmt.Errorf("sketch: wire form references unknown lattice element %q", name)
		}
		return e, nil
	}
	out := &Sketch{Lat: lat, States: make([]State, nstates)}
	for i := range out.States {
		if n >= len(data) {
			return nil, 0, fmt.Errorf("sketch: truncated state in wire form")
		}
		meta := data[n]
		n++
		st := &out.States[i]
		st.Variance = meta&1 != 0
		st.Flags = Flags(meta >> 1)
		for _, dst := range []*lattice.Elem{&st.Lower, &st.Upper} {
			name, m, err := decodeString(data[n:], "lattice element")
			if err != nil {
				return nil, 0, err
			}
			n += m
			if *dst, err = elem(name); err != nil {
				return nil, 0, err
			}
		}
		for _, set := range []*[]lattice.Elem{&st.LowerSet, &st.UpperSet} {
			count, m := binary.Uvarint(data[n:])
			if m <= 0 {
				return nil, 0, fmt.Errorf("sketch: truncated bound set in wire form")
			}
			n += m
			for j := uint64(0); j < count; j++ {
				name, m, err := decodeString(data[n:], "bound element")
				if err != nil {
					return nil, 0, err
				}
				n += m
				e, err := elem(name)
				if err != nil {
					return nil, 0, err
				}
				*set = append(*set, e)
			}
		}
		nedges, m := binary.Uvarint(data[n:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("sketch: truncated edge count in wire form")
		}
		n += m
		for j := uint64(0); j < nedges; j++ {
			l, m, err := label.DecodeWire(data[n:])
			if err != nil {
				return nil, 0, err
			}
			n += m
			to, m := binary.Uvarint(data[n:])
			if m <= 0 || to >= nstates {
				return nil, 0, fmt.Errorf("sketch: edge target out of range in wire form")
			}
			n += m
			st.Edges = append(st.Edges, Edge{Label: l, To: int(to)})
		}
	}
	return out.Seal(), n, nil
}

// AppendWire appends the shape cache's entries to buf in recency order:
// uvarint(count), then per entry the fingerprint key, varint(depth
// bound) and the sealed sketch.
func (c *ShapeCache) AppendWire(buf []byte) []byte {
	entries := c.lru.Export()
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = e.Key.pk.AppendWire(buf)
		buf = binary.AppendVarint(buf, int64(e.Key.depth))
		buf = e.Val.AppendWire(buf)
	}
	return buf
}

// LoadWire decodes entries produced by AppendWire into the cache,
// preserving recency order. Entries whose lattice has not been built in
// this process are skipped (counted in skipped), not errors: they are
// unusable here but harmless. Malformed bytes abort with an error.
func (c *ShapeCache) LoadWire(data []byte) (n, loaded, skipped int, err error) {
	count, m := binary.Uvarint(data)
	if m <= 0 {
		return 0, 0, 0, fmt.Errorf("sketch: truncated cache entry count")
	}
	n = m
	// Each entry encodes at least a fingerprint key; a count beyond the
	// remaining bytes is corrupt, and pre-sizing from it would let a
	// crafted count allocate unboundedly.
	if count > uint64(len(data)-n) {
		return 0, 0, 0, fmt.Errorf("sketch: cache entry count %d exceeds wire form size", count)
	}
	entries := make([]lru.Entry[shapeKey, *Sketch], 0, count)
	for i := uint64(0); i < count; i++ {
		pk, m, err := pgraph.DecodeKeyWire(data[n:])
		if err != nil {
			return 0, 0, 0, err
		}
		n += m
		depth, m := binary.Varint(data[n:])
		if m <= 0 {
			return 0, 0, 0, fmt.Errorf("sketch: truncated depth bound in wire form")
		}
		n += m
		sk, m, err := DecodeSketchWire(data[n:])
		if err != nil {
			if errors.Is(err, ErrUnknownLattice) {
				// Skip the entry's bytes: re-measure by encoding length.
				m, err = skipSketchWire(data[n:])
				if err != nil {
					return 0, 0, 0, err
				}
				n += m
				skipped++
				continue
			}
			return 0, 0, 0, err
		}
		n += m
		entries = append(entries, lru.Entry[shapeKey, *Sketch]{
			Key: shapeKey{pk: pk, depth: int(depth)},
			Val: sk,
		})
	}
	c.lru.Import(entries)
	return n, len(entries), skipped, nil
}

// skipSketchWire measures one encoded sketch without binding a lattice,
// so loads can step over entries for lattices this process never built.
func skipSketchWire(data []byte) (int, error) {
	skipString := func(n int) (int, error) {
		ln, m := binary.Uvarint(data[n:])
		if m <= 0 || uint64(len(data)-n-m) < ln {
			return 0, fmt.Errorf("sketch: truncated wire form while skipping entry")
		}
		return n + m + int(ln), nil
	}
	n, err := skipString(0)
	if err != nil {
		return 0, err
	}
	nstates, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return 0, fmt.Errorf("sketch: truncated state count while skipping entry")
	}
	n += m
	for i := uint64(0); i < nstates; i++ {
		if n >= len(data) {
			return 0, fmt.Errorf("sketch: truncated state while skipping entry")
		}
		n++ // meta byte
		for k := 0; k < 2; k++ {
			if n, err = skipString(n); err != nil {
				return 0, err
			}
		}
		for k := 0; k < 2; k++ {
			count, m := binary.Uvarint(data[n:])
			if m <= 0 {
				return 0, fmt.Errorf("sketch: truncated bound set while skipping entry")
			}
			n += m
			for j := uint64(0); j < count; j++ {
				if n, err = skipString(n); err != nil {
					return 0, err
				}
			}
		}
		nedges, m := binary.Uvarint(data[n:])
		if m <= 0 {
			return 0, fmt.Errorf("sketch: truncated edge count while skipping entry")
		}
		n += m
		for j := uint64(0); j < nedges; j++ {
			_, m, err := label.DecodeWire(data[n:])
			if err != nil {
				return 0, err
			}
			n += m
			if _, m = binary.Uvarint(data[n:]); m <= 0 {
				return 0, fmt.Errorf("sketch: truncated edge target while skipping entry")
			}
			n += m
		}
	}
	return n, nil
}
