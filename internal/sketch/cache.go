package sketch

import (
	"retypd/internal/constraints"
	"retypd/internal/lru"
	"retypd/internal/pgraph"
)

// DefaultShapeCacheCap is the entry bound of caches created by
// NewShapeCache(0). One entry holds one sealed, decorated sketch; a few
// thousand covers the duplicate-leaf population of corpora far larger
// than the paper's.
const DefaultShapeCacheCap = 4096

// shapeKey identifies one cached shape solution: the canonical
// fingerprint key of (constraint set, variable) — which already covers
// the full constraint structure, the variable's canonical index, and
// the lattice identity — plus the sketch-depth bound the sketch was
// extracted at (the TIE-style baseline truncates recursion; its entries
// must not be served to the unbounded configuration or vice versa).
//
//retypd:cachekey shapeKey.hash64
type shapeKey struct {
	pk    pgraph.Key
	depth int
}

// hash64 folds the key for the cache's 64-bit recency index (the full
// key is collision-checked per probe by internal/lru).
func (k shapeKey) hash64() uint64 {
	return k.pk.Hash64() ^ (uint64(int64(k.depth))+2)*0x9E3779B97F4A7C15
}

// ShapeCache is a thread-safe LRU memo of phase-2 (F.2) shape solving:
// the sealed, decorated Sketch of one variable of one constraint set,
// keyed by the set's canonical fingerprint (pgraph.Fingerprint) and the
// variable's canonical index. Because a sketch automaton mentions no
// variable names at all — only field labels, variances and lattice
// elements, all preserved by constraint-set isomorphism — a hit needs
// no rehydration: the stored sketch IS the local procedure's sketch,
// and the fingerprint's rename map is what translates the local
// variable to the canonical index it was stored under.
//
// Sharing contract (same as pgraph.SimplifyCache): one cache may be
// shared by any number of goroutines and across any number of Infer
// runs — different programs, different solver options, different
// lattices. Safety comes from the key: the canonical fingerprint covers
// the constraint structure and the lattice identity, and the sketch
// depth bound is part of the key, so a hit can only be served to an
// isomorphic constraint set solved under the same Λ and depth. Entries
// are sealed (Sketch.Seal) before they are stored, so concurrent
// sharers can only read them; deriving mutable views (Descend, Meet,
// Join, WithRootVariance) copies. Hit/miss counters are cumulative
// across all sharers; callers wanting per-run numbers snapshot Stats
// before and after (as solver.Infer does).
type ShapeCache struct {
	// Sharded by hash64 so concurrent F.2 workers on different keys do
	// not convoy on one mutex; sharding never reaches a key or a wire
	// byte (lru.Sharded preserves global recency across Export/Import).
	lru *lru.Sharded[shapeKey, *Sketch] // values are sealed
}

// NewShapeCache returns an LRU cache bounded to capacity entries
// (capacity ≤ 0 selects DefaultShapeCacheCap).
func NewShapeCache(capacity int) *ShapeCache {
	if capacity <= 0 {
		capacity = DefaultShapeCacheCap
	}
	return &ShapeCache{lru: lru.NewSharded[shapeKey, *Sketch](capacity, 0, shapeKey.hash64)}
}

// Stats reports cumulative hit/miss counts.
func (c *ShapeCache) Stats() (hits, misses uint64) { return c.lru.Stats() }

// Len reports the current entry count.
func (c *ShapeCache) Len() int { return c.lru.Len() }

// SketchFor returns the decorated sketch of v (extracted at depth
// maxDepth) for the fingerprinted constraint set, consulting the memo
// first. build must compute the decorated sketch of its argument from
// scratch (shape quotient + decoration); it is only invoked on a miss
// — taking the variable as a parameter lets callers reuse one build
// closure across every lookup of a procedure instead of allocating one
// per call — and its result is sealed before being stored and
// returned. A nil cache, a nil or unusable fingerprint, or a variable
// outside the fingerprint's rename map all degrade to calling build(v)
// directly (unsealed, uncached).
func (c *ShapeCache) SketchFor(fp *pgraph.FP, v constraints.Var, maxDepth int, build func(constraints.Var) *Sketch) *Sketch {
	if c == nil || fp == nil {
		return build(v)
	}
	pk, ok := fp.KeyFor(v)
	if !ok {
		return build(v)
	}
	if maxDepth < 0 {
		maxDepth = -1 // every negative bound means "unbounded": one key
	}
	key := shapeKey{pk: pk, depth: maxDepth}
	// Single-flight: concurrent workers missing on the same key wait
	// for the first one's sealed sketch instead of re-running the shape
	// quotient and decoration.
	sk, _ := c.lru.Do(key, func() (*Sketch, bool) {
		return build(v).Seal(), true
	})
	return sk
}
