package sketch

import (
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

// sealFixture builds a small decorated sketch the way the solver does.
func sealFixture(t *testing.T) (*Sketch, *lattice.Lattice) {
	t.Helper()
	cs := constraints.MustParseSet(`
		F.in_stack0 <= p
		p.load.σ32@0 <= x
		x <= int
		int <= F.out_eax
	`)
	lat := lattice.Default()
	sh := NewBuilder(cs, lat)
	defer sh.Release()
	g := pgraph.Build(cs, lat)
	defer g.Release()
	sk := sh.SketchFor("F", -1)
	NewDecorator(g).Decorate(sk, "F")
	return sk, lat
}

// TestSealMakesDecoratePanic: the immutability contract — decorating a
// sealed (cache-served) sketch must panic instead of silently mutating
// shared state.
func TestSealMakesDecoratePanic(t *testing.T) {
	sk, lat := sealFixture(t)
	cs := constraints.MustParseSet(`F.out_eax <= int`)
	g := pgraph.Build(cs, lat)
	defer g.Release()
	dec := NewDecorator(g)
	defer dec.Release()

	sk.Seal()
	if !sk.Sealed() {
		t.Fatal("Seal did not mark the sketch sealed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Decorate on a sealed sketch did not panic")
		}
	}()
	dec.Decorate(sk, "F")
}

// TestSealClampsSharedStorage: appends performed on views derived from
// a sealed sketch must reallocate, never write into the sealed backing
// arrays — the copy-on-write half of the contract.
func TestSealClampsSharedStorage(t *testing.T) {
	sk, lat := sealFixture(t)
	sk.Seal()
	before := sk.String()

	// Descend shares the bound-set slice headers with the parent; with
	// the parent sealed their caps are clamped, so growing the copy's
	// sets cannot touch the parent.
	sub, ok := sk.Descend(label.Word{label.In("stack0")})
	if !ok {
		t.Fatal("descend failed")
	}
	if sub.Sealed() {
		t.Fatal("Descend of a sealed sketch must return a mutable copy")
	}
	for _, e := range []string{"int", "ptr", "num32", "code"} {
		if el, ok := lat.Elem(e); ok {
			sub.States[0].AddLower(lat, el)
			sub.States[0].AddUpper(lat, el)
		}
	}
	// Meet/Join/WithRootVariance likewise derive fresh values.
	m := sub.Meet(sk)
	if m.Sealed() {
		t.Fatal("Meet must return a mutable sketch")
	}
	_ = sk.WithRootVariance(label.Contravariant)
	if sk.States[0].Variance != label.Covariant {
		t.Fatal("WithRootVariance mutated the sealed original")
	}
	// Identity cases on a sealed receiver still yield mutable copies —
	// a sealed sketch never hands itself out as a derived view.
	if same := sk.WithRootVariance(label.Covariant); same == sk || same.Sealed() {
		t.Fatal("WithRootVariance identity on a sealed sketch must copy")
	}
	if whole, ok := sk.Descend(label.Word{}); !ok || whole == sk || whole.Sealed() {
		t.Fatal("Descend(ε) on a sealed sketch must return a mutable copy")
	}

	if got := sk.String(); got != before {
		t.Fatalf("mutating derived views changed the sealed sketch:\nbefore:\n%s\nafter:\n%s", before, got)
	}
}

// TestShapeCacheServesSealedIdenticalSketches: a hit returns the very
// entry that was stored (sealed), and the memo round-trips the
// decorated sketch unchanged.
func TestShapeCacheServesSealedIdenticalSketches(t *testing.T) {
	cs := constraints.MustParseSet(`
		F.in_stack0 <= p
		p.load.σ32@0 <= x
		x <= int
		int <= F.out_eax
	`)
	lat := lattice.Default()
	fp := pgraph.Fingerprint(cs, lat)
	if !fp.Usable() {
		t.Fatal("fingerprint not usable")
	}
	cache := NewShapeCache(0)

	build := func(v constraints.Var) *Sketch {
		sh := NewBuilder(cs, lat)
		defer sh.Release()
		g := pgraph.Build(cs, lat)
		defer g.Release()
		sk := sh.SketchFor(v, -1)
		NewDecorator(g).Decorate(sk, v)
		return sk
	}
	plain := build("F").String()

	sk1 := cache.SketchFor(fp, "F", -1, build)
	sk2 := cache.SketchFor(fp, "F", -1, func(constraints.Var) *Sketch {
		t.Fatal("build invoked on what should be a hit")
		return nil
	})
	if !sk1.Sealed() || !sk2.Sealed() {
		t.Error("cache-served sketches must be sealed")
	}
	if sk1 != sk2 {
		t.Error("hit did not serve the stored entry")
	}
	if sk1.String() != plain {
		t.Errorf("cached sketch diverges from direct solve:\n%s\nvs\n%s", sk1.String(), plain)
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", h, m)
	}

	// A different depth bound is a different entry.
	sk3 := cache.SketchFor(fp, "F", 2, build)
	if sk3 == sk1 {
		t.Error("depth bound must partition the cache key")
	}
	if h, m := cache.Stats(); h != 1 || m != 2 {
		t.Errorf("stats after depth miss = %d/%d, want 1/2", h, m)
	}

	// Variables outside the rename map degrade to direct building.
	direct := cache.SketchFor(fp, "nosuchvar", -1, func(constraints.Var) *Sketch { return NewTop(lat) })
	if direct.Sealed() {
		t.Error("fallback build must not be sealed or cached")
	}
}

// TestShapeCacheLRUEviction: the capacity bound evicts least-recently
// used entries.
func TestShapeCacheLRUEviction(t *testing.T) {
	lat := lattice.Default()
	cache := NewShapeCache(2)
	mk := func(src string) *pgraph.FP {
		return pgraph.Fingerprint(constraints.MustParseSet(src), lat)
	}
	fps := []*pgraph.FP{
		mk("A.in_stack0 <= int"),
		mk("B.in_stack0 <= ptr\nB.in_stack4 <= int"),
		mk("C.out_eax <= num32\nC.in_eax <= C.out_eax"),
	}
	roots := []constraints.Var{"A", "B", "C"}
	for i, fp := range fps {
		cache.SketchFor(fp, roots[i], -1, func(constraints.Var) *Sketch { return NewTop(lat) })
	}
	if cache.Len() != 2 {
		t.Fatalf("len = %d, want 2 (capacity bound)", cache.Len())
	}
	// A (oldest) must have been evicted; B and C must still hit.
	rebuilt := false
	cache.SketchFor(fps[0], "A", -1, func(constraints.Var) *Sketch { rebuilt = true; return NewTop(lat) })
	if !rebuilt {
		t.Error("evicted entry still served")
	}
}
