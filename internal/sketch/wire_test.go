package sketch

import (
	"bytes"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

// solvedSketch builds a real decorated sketch through the normal
// pipeline pieces.
func solvedSketch(t *testing.T, lat *lattice.Lattice) *Sketch {
	t.Helper()
	cs := constraints.MustParseSet(`
		f.in_stack0 <= A
		A.load <= A.out_x
		A <= f.out_eax
		f.in_stack0 <= int
		#FileDescriptor <= f.out_eax
	`)
	b := NewBuilder(cs, lat)
	defer b.Release()
	sk := b.SketchFor("f", -1)
	g := pgraph.Build(cs, lat)
	defer g.Release()
	NewDecorator(g).Decorate(sk, "f")
	return sk
}

// TestSketchWireRoundTrip: encode→decode→encode is byte-stable and the
// decoded sketch is sealed and Equal to the original.
func TestSketchWireRoundTrip(t *testing.T) {
	lat := lattice.Default()
	for _, sk := range []*Sketch{solvedSketch(t, lat), NewTop(lat)} {
		enc := sk.AppendWire(nil)
		got, n, err := DecodeSketchWire(append(append([]byte(nil), enc...), 0x9))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		if !got.Sealed() {
			t.Fatal("decoded sketch not sealed")
		}
		if !got.Equal(sk) {
			t.Fatalf("decoded sketch differs:\n%s\nvs\n%s", got, sk)
		}
		if got.String() != sk.String() {
			t.Fatal("decoded sketch renders differently")
		}
		if re := got.AppendWire(nil); !bytes.Equal(re, enc) {
			t.Fatal("re-encode not byte-stable")
		}
	}
}

// TestSketchWireUnknownLattice: decoding against a process that never
// built the lattice reports ErrUnknownLattice; the shape-cache loader
// skips such entries instead of failing the load.
func TestSketchWireUnknownLattice(t *testing.T) {
	custom := lattice.NewBuilder().Below("mytype", "⊤").MustBuild()
	sk := NewTop(custom).Seal()
	enc := sk.AppendWire(nil)
	// Corrupt the signature so it matches no built lattice.
	enc[10] ^= 0xff
	if _, _, err := DecodeSketchWire(enc); err == nil {
		t.Fatal("decode with unknown lattice signature succeeded")
	}
}

// TestShapeCacheWireRoundTrip: a populated shape cache exports, loads
// into a fresh cache byte-stably, and the loaded cache serves the
// entry without invoking build.
func TestShapeCacheWireRoundTrip(t *testing.T) {
	lat := lattice.Default()
	cs := constraints.MustParseSet(`
		f.in_stack0 <= int
		f.in_stack0.load <= f.out_eax
	`)
	fp := pgraph.Fingerprint(cs, lat)
	c := NewShapeCache(0)
	build := func(v constraints.Var) *Sketch {
		b := NewBuilder(cs, lat)
		defer b.Release()
		sk := b.SketchFor(v, -1)
		g := pgraph.Build(cs, lat)
		defer g.Release()
		NewDecorator(g).Decorate(sk, v)
		return sk
	}
	want := c.SketchFor(fp, "f", -1, build)

	enc := c.AppendWire(nil)
	c2 := NewShapeCache(0)
	n, loaded, skipped, err := c2.LoadWire(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || loaded != 1 || skipped != 0 {
		t.Fatalf("load: n=%d/%d loaded=%d skipped=%d", n, len(enc), loaded, skipped)
	}
	if re := c2.AppendWire(nil); !bytes.Equal(re, enc) {
		t.Fatal("export→import→export not byte-stable")
	}
	got := c2.SketchFor(fp, "f", -1, func(constraints.Var) *Sketch {
		t.Fatal("loaded shape cache missed: build ran")
		return nil
	})
	if !got.Equal(want) || got.String() != want.String() {
		t.Fatal("loaded shape cache served a different sketch")
	}
}
