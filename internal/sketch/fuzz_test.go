package sketch

import (
	"bytes"
	"os"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/fuzzcorpus"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus; set
// RETYPD_WRITE_FUZZ_CORPUS=1 after changing the wire encoding.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RETYPD_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set RETYPD_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	if err := fuzzcorpus.Write("testdata/fuzz/FuzzDecodeSketchWire", fuzzSketchSeeds()); err != nil {
		t.Fatal(err)
	}
}

// fuzzSketchSeeds returns wire encodings of real sketches plus
// adversarial variants, used both as f.Add seeds and to regenerate the
// checked-in corpus. Building them registers the default lattice, so
// the fuzz function can decode against it.
func fuzzSketchSeeds() [][]byte {
	lat := lattice.Default()
	cs := constraints.MustParseSet(`
		f.in_stack0 <= A
		A.load <= A.out_x
		A <= f.out_eax
		f.in_stack0 <= int
		#FileDescriptor <= f.out_eax
	`)
	b := NewBuilder(cs, lat)
	defer b.Release()
	sk := b.SketchFor("f", -1)
	g := pgraph.Build(cs, lat)
	defer g.Release()
	NewDecorator(g).Decorate(sk, "f")

	full := sk.AppendWire(nil)
	top := NewTop(lat).Seal().AppendWire(nil)

	badSig := append([]byte(nil), full...)
	badSig[10] ^= 0xff
	// A valid signature followed by a huge state count: the decoder
	// must reject the count, not allocate for it.
	hugeCount := append(appendString(nil, lat.Signature()),
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	// A valid signature with a zero state count: an automaton without
	// its root state must be rejected, not decoded into a Sketch whose
	// Leq/Equal would panic (a crash native fuzzing found).
	noRoot := append(appendString(nil, lat.Signature()), 0x00)

	return [][]byte{full, top, full[:len(full)/2], badSig, hugeCount, noRoot}
}

// FuzzDecodeSketchWire: arbitrary bytes must either fail to decode or
// yield a sealed sketch whose re-encoding is a fixed point — never
// panic, never over-consume, never allocate unboundedly from a crafted
// count. This is the native-fuzzing form of TestSketchWireRoundTrip's
// property.
func FuzzDecodeSketchWire(f *testing.F) {
	for _, seed := range fuzzSketchSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, n, err := DecodeSketchWire(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if !sk.Sealed() {
			t.Fatal("decoded sketch not sealed")
		}
		// The accepted input may be non-canonical (padded uvarints); the
		// re-encoding is the canonical form and must be a fixed point.
		enc := sk.AppendWire(nil)
		sk2, n2, err := DecodeSketchWire(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("canonical decode consumed %d of %d bytes", n2, len(enc))
		}
		if !sk2.Equal(sk) {
			t.Fatalf("re-decoded sketch differs:\n%s\nvs\n%s", sk2, sk)
		}
		if re := sk2.AppendWire(nil); !bytes.Equal(re, enc) {
			t.Fatal("re-encode not a fixed point")
		}
	})
}
