package sketch

import (
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

// decorateOnce builds the shape sketch for v and decorates it with a
// decorator over cs's saturated graph, releasing all scratch.
func decorateOnce(t *testing.T, src string, v constraints.Var) string {
	t.Helper()
	cs := constraints.MustParseSet(src)
	lat := lattice.Default()
	sh := NewBuilder(cs, lat)
	defer sh.Release()
	g := pgraph.Build(cs, lat)
	defer g.Release()
	dec := NewDecorator(g)
	defer dec.Release()
	sk := sh.SketchFor(v, -1)
	dec.Decorate(sk, v)
	return sk.String()
}

// TestDecoratorPoolReuse: a decorator drawn from the pool must behave
// exactly like a fresh one — in particular, the reverse-ε table of a
// previous (larger) graph must not leak into the next decoration.
func TestDecoratorPoolReuse(t *testing.T) {
	// A wide set first, so the pooled revEps table is grown and filled
	// with stale spines before the small decorations reuse it.
	const wide = `
		F.in_0 <= A
		A.load.σ4@0 <= B
		B <= int
		A.load.σ4@4 <= C
		C <= uint
		G.in_0 <= A
		H.in_0 <= C
		F.out_eax <= int
	`
	const small = `
		F.in_0 <= P
		P <= int
		F.out_eax <= uint
	`
	want := decorateOnce(t, small, "F")
	for i := 0; i < 3; i++ {
		decorateOnce(t, wide, "F")
		if got := decorateOnce(t, small, "F"); got != want {
			t.Fatalf("iteration %d: pooled decorator diverged from fresh:\n got:\n%s\nwant:\n%s", i, got, want)
		}
	}
}
