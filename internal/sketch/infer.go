package sketch

import (
	"sync"

	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

// Builder is the mutable shape-inference workspace (Theorem 3.1 /
// Algorithm E.1): a quotient of the derived-type-variable graph by the
// symmetrization ∼ of the subtype relation, computed Steensgaard-style
// with union-find and label congruence (conflating .load/.store
// children as required by the S-POINTER rule).
//
// Builder is one half of the phase-2 split between mutable scratch and
// immutable results: the Builder owns all pooled storage (classes are
// indexed by the interned DTV handle; NewBuilder draws a recycled
// Builder whose union-find arrays and edge maps retain their previous
// capacity, and Release returns it), while the sketches it extracts
// (SketchFor) share none of that storage and become the immutable,
// cache-shareable result once sealed (Sketch.Seal). The solver releases
// one Builder per procedure; nothing pooled ever escapes into a
// ProcResult or a ShapeCache entry.
type Builder struct {
	lat    *lattice.Lattice
	parent []int32
	rank   []int8
	edges  []map[label.Label]int32 // valid on representatives
	flags  []Flags                 // valid on representatives
	seeds  []lattice.Elem          // join of constants unioned in (repr)
	nodeOf map[constraints.DTV]int32
	dtvs   []constraints.DTV
	// freeMaps holds cleared edge maps harvested on reset and on
	// union-find merges, handed back out by newEdgeMap.
	freeMaps []map[label.Label]int32
}

// builderPool recycles Builders between NewBuilder/Release cycles.
var builderPool = sync.Pool{New: func() any {
	return &Builder{nodeOf: map[constraints.DTV]int32{}}
}}

// reset prepares a pooled Builder for a fresh inference.
func (sh *Builder) reset(lat *lattice.Lattice) {
	sh.lat = lat
	sh.parent = sh.parent[:0]
	sh.rank = sh.rank[:0]
	sh.flags = sh.flags[:0]
	sh.seeds = sh.seeds[:0]
	sh.dtvs = sh.dtvs[:0]
	clear(sh.nodeOf)
	for i, m := range sh.edges {
		if m != nil {
			clear(m)
			sh.freeMaps = append(sh.freeMaps, m)
			sh.edges[i] = nil
		}
	}
	sh.edges = sh.edges[:0]
}

// Release returns the Builder to the package pool. The caller must not
// use sh (or query sketches against it) afterwards; sketches already
// extracted with SketchFor stay valid — they share no storage with the
// Builder.
func (sh *Builder) Release() {
	builderPool.Put(sh)
}

// newEdgeMap hands out a cleared recycled edge map when one is
// available.
func (sh *Builder) newEdgeMap() map[label.Label]int32 {
	if n := len(sh.freeMaps); n > 0 {
		m := sh.freeMaps[n-1]
		sh.freeMaps[n-1] = nil
		sh.freeMaps = sh.freeMaps[:n-1]
		return m
	}
	return map[label.Label]int32{}
}

// NewBuilder builds the quotient graph for cs, applies the additive
// constraints of Figure 13, and returns the resulting Builder.
func NewBuilder(cs *constraints.Set, lat *lattice.Lattice) *Builder {
	sh := builderPool.Get().(*Builder)
	sh.reset(lat)

	// Register all derived type variables (prefix closed).
	for _, c := range cs.Constraints() {
		switch c.Kind {
		case constraints.KindSub:
			sh.node(c.L)
			sh.node(c.R)
		default:
			sh.node(c.X)
			sh.node(c.Y)
			sh.node(c.Z)
		}
	}
	// Union the two sides of every subtype constraint — except that
	// lattice constants do not glue classes together: κ is a type NAME,
	// not a structural node, so x ⊑ κ and κ ⊑ y must not identify x
	// with y (otherwise every value bounded by the same constant — for
	// example every allocation bounded below by ptr — would share its
	// capabilities program-wide). Constants contribute a seed mark
	// instead (Theorem 3.1 treats the lattice labels separately).
	constElem := func(d constraints.DTV) (lattice.Elem, bool) {
		if !d.IsBase() {
			return 0, false
		}
		return lat.ElemSym(d.BaseSym())
	}
	cs.EachSubtype(func(c constraints.Constraint) {
		le, lConst := constElem(c.L)
		re, rConst := constElem(c.R)
		switch {
		case lConst && rConst:
			// κ1 ⊑ κ2: pure lattice fact, nothing structural.
		case rConst:
			r := sh.find(sh.node(c.L))
			sh.seeds[r] = lat.Join(sh.seeds[r], re)
		case lConst:
			r := sh.find(sh.node(c.R))
			sh.seeds[r] = lat.Join(sh.seeds[r], le)
		default:
			sh.union(sh.node(c.L), sh.node(c.R))
		}
	})
	// Additive constraints: Figure 13 fixpoint over class flags.
	sh.applyAdditive(cs)
	return sh
}

// node interns d and its prefixes, wiring labeled edges parent→child.
func (sh *Builder) node(d constraints.DTV) int32 {
	if id, ok := sh.nodeOf[d]; ok {
		return id
	}
	id := int32(len(sh.parent))
	sh.parent = append(sh.parent, id)
	sh.rank = append(sh.rank, 0)
	sh.edges = append(sh.edges, nil)
	sh.flags = append(sh.flags, 0)
	sh.seeds = append(sh.seeds, sh.lat.Bottom())
	sh.nodeOf[d] = id
	sh.dtvs = append(sh.dtvs, d)

	if parent, last, ok := d.Parent(); ok {
		pid := sh.find(sh.node(parent))
		if sh.edges[pid] == nil {
			sh.edges[pid] = sh.newEdgeMap()
		}
		if prev, exists := sh.edges[pid][last]; exists {
			sh.union(prev, id)
		} else {
			sh.edges[pid][last] = id
			// S-POINTER conflation: a class's .load and .store children
			// coincide.
			if last.IsPointerAccess() {
				if sib, ok := sh.edges[pid][last.PointerDual()]; ok {
					sh.union(sib, id)
				}
			}
		}
	} else if e, ok := sh.lat.ElemSym(d.BaseSym()); ok {
		sh.seeds[id] = e
	}
	return id
}

func (sh *Builder) find(x int32) int32 {
	for sh.parent[x] != x {
		sh.parent[x] = sh.parent[sh.parent[x]]
		x = sh.parent[x]
	}
	return x
}

// union merges the classes of a and b, propagating label congruence.
func (sh *Builder) union(a, b int32) {
	type job struct{ a, b int32 }
	work := []job{{a, b}}
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		ra, rb := sh.find(j.a), sh.find(j.b)
		if ra == rb {
			continue
		}
		if sh.rank[ra] < sh.rank[rb] {
			ra, rb = rb, ra
		}
		if sh.rank[ra] == sh.rank[rb] {
			sh.rank[ra]++
		}
		sh.parent[rb] = ra
		sh.flags[ra] |= sh.flags[rb]
		sh.seeds[ra] = sh.lat.Join(sh.seeds[ra], sh.seeds[rb])
		// Merge edge maps with congruence.
		loser := sh.edges[rb]
		sh.edges[rb] = nil
		if len(loser) > 0 && sh.edges[ra] == nil {
			// The winner had no edges: adopt the loser's map wholesale.
			sh.edges[ra] = loser
			loser = nil
		}
		//retypd:unordered congruence closure is confluent: the work queue only
		// schedules unifications, and the final partition and edge structure
		// are the same least fixed point whatever order they run in
		for l, t := range loser {
			if prev, ok := sh.edges[ra][l]; ok {
				work = append(work, job{prev, t})
			} else {
				sh.edges[ra][l] = t
			}
		}
		if loser != nil {
			clear(loser)
			sh.freeMaps = append(sh.freeMaps, loser)
		}
		// Pointer conflation on the merged class.
		if m := sh.edges[ra]; m != nil {
			if lo, ok1 := m[label.Load()]; ok1 {
				if st, ok2 := m[label.Store()]; ok2 {
					work = append(work, job{lo, st})
				}
			}
		}
	}
}

// classOf returns the representative of d's class, or -1 if d was never
// seen.
func (sh *Builder) classOf(d constraints.DTV) int32 {
	if id, ok := sh.nodeOf[d]; ok {
		return sh.find(id)
	}
	return -1
}

// HasCapability reports whether the constraint set gives d's class an
// outgoing l edge.
func (sh *Builder) HasCapability(d constraints.DTV, l label.Label) bool {
	c := sh.classOf(d)
	if c < 0 {
		return false
	}
	_, ok := sh.edges[c][l]
	return ok
}

// applyAdditive runs the Figure 13 inference rules over class
// pointer/integer flags to fixpoint.
func (sh *Builder) applyAdditive(cs *constraints.Set) {
	// Seeds: classes with load/store capabilities are pointers; classes
	// joined with scalar constants are integers or pointers per Λ.
	ptrElem, hasPtr := sh.lat.Elem("ptr")
	var numElems []lattice.Elem
	for _, name := range []string{"num8", "num16", "num32", "num64"} {
		if e, ok := sh.lat.Elem(name); ok {
			numElems = append(numElems, e)
		}
	}
	isNumeric := func(e lattice.Elem) bool {
		for _, n := range numElems {
			if sh.lat.Leq(e, n) {
				return true
			}
		}
		return false
	}
	for i := range sh.parent {
		r := sh.find(int32(i))
		if m := sh.edges[r]; m != nil {
			if _, ok := m[label.Load()]; ok {
				sh.flags[r] |= FlagPointer
			}
			if _, ok := m[label.Store()]; ok {
				sh.flags[r] |= FlagPointer
			}
		}
		if sh.seeds[r] != sh.lat.Bottom() {
			switch {
			case hasPtr && sh.lat.Leq(sh.seeds[r], ptrElem):
				sh.flags[r] |= FlagPointer
			case isNumeric(sh.seeds[r]):
				sh.flags[r] |= FlagInteger
			}
		}
	}

	adds := cs.Additive()
	if len(adds) == 0 {
		return
	}
	isP := func(c int32) bool { return sh.flags[c]&FlagPointer != 0 }
	isI := func(c int32) bool { return sh.flags[c]&FlagInteger != 0 }
	mark := func(c int32, f Flags) bool {
		if sh.flags[c]&f == f {
			return false
		}
		sh.flags[c] |= f
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, c := range adds {
			x, y, z := sh.classOf(c.X), sh.classOf(c.Y), sh.classOf(c.Z)
			if x < 0 || y < 0 || z < 0 {
				continue
			}
			if c.Kind == constraints.KindAdd {
				switch {
				case isI(x) && isI(y):
					changed = mark(z, FlagInteger) || changed
				case isI(z):
					changed = mark(x, FlagInteger) || changed
					changed = mark(y, FlagInteger) || changed
				}
				if isP(x) {
					changed = mark(z, FlagPointer) || changed
					changed = mark(y, FlagInteger) || changed
				}
				if isP(y) {
					changed = mark(z, FlagPointer) || changed
					changed = mark(x, FlagInteger) || changed
				}
				if isP(z) && isI(x) {
					changed = mark(y, FlagPointer) || changed
				}
				if isP(z) && isI(y) {
					changed = mark(x, FlagPointer) || changed
				}
			} else {
				// SUB: z = x - y.
				if isI(x) {
					changed = mark(y, FlagInteger) || changed
					changed = mark(z, FlagInteger) || changed
				}
				if isI(y) && isI(z) {
					changed = mark(x, FlagInteger) || changed
				}
				if isP(z) && isI(y) {
					changed = mark(x, FlagPointer) || changed
				}
				if isP(y) {
					changed = mark(x, FlagPointer) || changed
					changed = mark(z, FlagInteger) || changed
				}
				if isP(x) && isI(z) {
					changed = mark(y, FlagPointer) || changed
				}
				if isP(x) && isI(y) {
					changed = mark(z, FlagPointer) || changed
				}
				if isP(x) && isP(z) {
					changed = mark(y, FlagInteger) || changed
				}
			}
		}
	}
}

// SeedFor returns the join of the lattice constants unified into v's
// class — the "type" a unification-based algorithm assigns to it
// (⊥ when unconstrained; incomparable constants collapse toward ⊤,
// modeling the over-unification loss of §2.5).
func (sh *Builder) SeedFor(v constraints.Var) lattice.Elem {
	c := sh.classOf(constraints.BaseDTV(v))
	if c < 0 {
		return sh.lat.Bottom()
	}
	return sh.seeds[c]
}

// SketchForUnify extracts v's sketch with unification-style marks:
// every node's bounds collapse to its class seed (a point interval when
// a constant was unified in, unconstrained otherwise).
func (sh *Builder) SketchForUnify(v constraints.Var, maxDepth int) *Sketch {
	sk := sh.sketchFor(v, maxDepth, true)
	return sk
}

// SketchFor extracts the sketch of base variable v from the quotient
// graph. maxDepth < 0 means unbounded (recursive sketches become loops
// in the automaton); maxDepth ≥ 0 truncates expansion, which is how the
// TIE-style baseline's lack of recursive types is modeled.
func (sh *Builder) SketchFor(v constraints.Var, maxDepth int) *Sketch {
	return sh.sketchFor(v, maxDepth, false)
}

func (sh *Builder) sketchFor(v constraints.Var, maxDepth int, unifyMarks bool) *Sketch {
	root := sh.classOf(constraints.BaseDTV(v))
	if root < 0 {
		return NewTop(sh.lat)
	}
	sk := &Sketch{Lat: sh.lat}
	type key struct {
		class int32
		v     label.Variance
		depth int
	}
	index := map[key]int{}
	var build func(k key) int
	build = func(k key) int {
		// Depth participates in identity only when truncating.
		ik := k
		if maxDepth < 0 {
			ik.depth = 0
		}
		if id, ok := index[ik]; ok {
			return id
		}
		id := len(sk.States)
		index[ik] = id
		cls := sh.find(k.class)
		st := State{
			Lower:    sh.lat.Bottom(),
			Upper:    sh.lat.Top(),
			Variance: k.v,
			Flags:    sh.flags[cls],
		}
		if unifyMarks && sh.seeds[cls] != sh.lat.Bottom() && sh.seeds[cls] != sh.lat.Top() {
			// A unified-in constant is THE type of the class. When
			// incomparable constants collided the join is ⊤: the
			// unification tool detects a conflict and falls back to
			// "no information" (IdaPro-style), leaving the node
			// unconstrained.
			st.Lower, st.Upper = sh.seeds[cls], sh.seeds[cls]
			st.LowerSet = []lattice.Elem{sh.seeds[cls]}
			st.UpperSet = []lattice.Elem{sh.seeds[cls]}
		}
		sk.States = append(sk.States, st)
		if maxDepth >= 0 && k.depth >= maxDepth {
			return id
		}
		m := sh.edges[cls]
		var ls []label.Label
		for l := range m {
			ls = append(ls, l)
		}
		label.SortLabels(ls)
		var edges []Edge
		for _, l := range ls {
			child := key{class: sh.find(m[l]), v: k.v.Mul(l.Variance()), depth: k.depth + 1}
			edges = append(edges, Edge{Label: l, To: build(child)})
		}
		sk.States[id].Edges = edges
		return id
	}
	build(key{class: root, v: label.Covariant, depth: 0})
	return sk
}

// Decorator computes the lattice bounds that label sketch nodes
// (Appendix D.4): lower bounds κ with ⊢ κ ⊑ X.u and upper bounds with
// ⊢ X.u ⊑ κ, read off the saturated constraint graph by a product walk
// of the sketch automaton with the graph's pop/ε structure.
type Decorator struct {
	g      *pgraph.Graph
	revEps [][]pgraph.NodeID
}

// decPool recycles Decorator scratch: the per-procedure revEps table —
// one slice header per graph node plus every append-grown reverse-edge
// spine — is an allocation hot spot on large corpora, and its capacity
// is fully reusable across procedures.
var decPool = sync.Pool{New: func() any { return &Decorator{} }}

// NewDecorator prepares a decorator for the (saturated) graph, drawing
// scratch from the package pool; pair with Release to recycle it.
func NewDecorator(g *pgraph.Graph) *Decorator {
	g.Saturate()
	d := decPool.Get().(*Decorator)
	d.g = g
	n := g.NumNodes()
	if cap(d.revEps) < n {
		d.revEps = make([][]pgraph.NodeID, n)
	}
	d.revEps = d.revEps[:n]
	for i := range d.revEps {
		d.revEps[i] = d.revEps[i][:0]
	}
	for i := 0; i < n; i++ {
		for _, succ := range g.EpsSucc(pgraph.NodeID(i)) {
			d.revEps[succ] = append(d.revEps[succ], pgraph.NodeID(i))
		}
	}
	return d
}

// Release returns the decorator's scratch to the package pool for
// reuse by a later NewDecorator. The caller must not use d afterwards.
// Releasing is optional — an unreleased decorator is simply collected —
// and must happen at most once.
func (d *Decorator) Release() {
	d.g = nil
	decPool.Put(d)
}

// Decorate fills in Lower and Upper for every state of sk, where sk is
// the sketch of base variable root. Decorating a sealed sketch panics:
// cache-served sketches are immutable, and decoration happens exactly
// once, before sealing.
func (d *Decorator) Decorate(sk *Sketch, root constraints.Var) {
	sk.mustBeMutable("Decorate")
	base := constraints.BaseDTV(root)
	var starts []pgraph.NodeID
	if n, ok := d.g.NodeOf(base, label.Covariant); ok {
		starts = append(starts, n)
	}
	if n, ok := d.g.NodeOf(base, label.Contravariant); ok {
		starts = append(starts, n)
	}
	if len(starts) == 0 {
		return
	}
	lat := d.g.Lattice()

	// One product walk per direction. silent(n) yields ε-moves; read
	// moves follow pop edges aligned with sketch edges. At each visited
	// (state, node) with node a constant, apply the bound.
	walk := func(silent func(pgraph.NodeID) []pgraph.NodeID, apply func(st int, e lattice.Elem)) {
		type item struct {
			st int
			n  pgraph.NodeID
		}
		seen := map[item]bool{}
		var stack []item
		push := func(it item) {
			if !seen[it] {
				seen[it] = true
				stack = append(stack, it)
			}
		}
		for _, s := range starts {
			push(item{0, s})
		}
		for len(stack) > 0 {
			it := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e, ok := d.g.ConstElem(it.n); ok {
				apply(it.st, e)
			}
			for _, n2 := range silent(it.n) {
				push(item{it.st, n2})
			}
			d.g.PopSucc(it.n, func(l label.Label, to pgraph.NodeID) {
				if next := sk.States[it.st].Lookup(l); next >= 0 {
					push(item{next, to})
				}
			})
		}
	}

	walk(func(n pgraph.NodeID) []pgraph.NodeID { return d.revEps[n] },
		func(st int, e lattice.Elem) { sk.States[st].AddLower(lat, e) })
	walk(func(n pgraph.NodeID) []pgraph.NodeID { return d.g.EpsSucc(n) },
		func(st int, e lattice.Elem) { sk.States[st].AddUpper(lat, e) })
}
