package label

import (
	"bytes"
	"math/rand"
	"testing"
)

// randLabel draws from every constructor, with adversarial location
// names (empty, unicode, long).
func randLabel(rng *rand.Rand) Label {
	locs := []string{"stack0", "eax", "", "σ@weird.loc", "x", string(make([]byte, 300))}
	switch rng.Intn(5) {
	case 0:
		return In(locs[rng.Intn(len(locs))])
	case 1:
		return Out(locs[rng.Intn(len(locs))])
	case 2:
		return Load()
	case 3:
		return Store()
	default:
		return Field(rng.Intn(129)-1, rng.Intn(2049)-1024)
	}
}

// TestWireRoundTrip: decode(encode(l)) == l, encode(decode(encode(l)))
// is byte-identical, and decoding consumes exactly the encoded bytes
// even with trailing garbage.
func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		l := randLabel(rng)
		enc := AppendWire(nil, l)
		withTrailer := append(append([]byte(nil), enc...), 0xAB, 0xCD)
		got, n, err := DecodeWire(withTrailer)
		if err != nil {
			t.Fatalf("%v: decode: %v", l, err)
		}
		if n != len(enc) {
			t.Fatalf("%v: consumed %d bytes, encoded %d", l, n, len(enc))
		}
		if got != l {
			t.Fatalf("round trip changed label: %v → %v", l, got)
		}
		if re := AppendWire(nil, got); !bytes.Equal(re, enc) {
			t.Fatalf("%v: re-encode not byte-stable", l)
		}
	}
}

// TestWireTruncation: every strict prefix of an encoding must error,
// never panic or succeed.
func TestWireTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		enc := AppendWire(nil, randLabel(rng))
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := DecodeWire(enc[:cut]); err == nil {
				t.Fatalf("prefix of length %d of %x decoded without error", cut, enc)
			}
		}
	}
}
