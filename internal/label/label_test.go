package label

import (
	"testing"
	"testing/quick"
)

// TestVarianceTable checks Table 1: .in and .store are contravariant,
// .out/.load/.σN@k covariant.
func TestVarianceTable(t *testing.T) {
	cases := []struct {
		l    Label
		want Variance
	}{
		{In("stack0"), Contravariant},
		{Out("eax"), Covariant},
		{Load(), Covariant},
		{Store(), Contravariant},
		{Field(32, 4), Covariant},
	}
	for _, c := range cases {
		if c.l.Variance() != c.want {
			t.Errorf("⟨%s⟩ = %v, want %v", c.l, c.l.Variance(), c.want)
		}
	}
}

// TestSignMonoidQuick property-checks the {⊕,⊖} monoid laws
// (Definition 3.2).
func TestSignMonoidQuick(t *testing.T) {
	if err := quick.Check(func(a, b, c bool) bool {
		x, y, z := Variance(a), Variance(b), Variance(c)
		return x.Mul(y).Mul(z) == x.Mul(y.Mul(z))
	}, nil); err != nil {
		t.Error("associativity:", err)
	}
	if err := quick.Check(func(a bool) bool {
		x := Variance(a)
		return x.Mul(Covariant) == x && Covariant.Mul(x) == x
	}, nil); err != nil {
		t.Error("identity:", err)
	}
	if Contravariant.Mul(Contravariant) != Covariant {
		t.Error("⊖·⊖ must be ⊕")
	}
}

// TestWordVariance spells out the Figure 2 examples.
func TestWordVariance(t *testing.T) {
	w := Word{In("stack0"), Load(), Field(32, 4)}
	if w.Variance() != Contravariant {
		t.Errorf("⟨in.load.σ32@4⟩ should be ⊖ (one contravariant label)")
	}
	w2 := Word{In("stack0"), Store()}
	if w2.Variance() != Covariant {
		t.Errorf("⟨in.store⟩ should be ⊕ (two contravariant labels)")
	}
}

// TestParseRoundTrip checks Parse ∘ String = id on a label zoo.
func TestParseRoundTrip(t *testing.T) {
	zoo := []Label{
		In("stack0"), In("ecx"), Out("eax"), Load(), Store(),
		Field(32, 0), Field(8, 12), Field(16, 100),
	}
	for _, l := range zoo {
		got, err := Parse(l.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("round trip %q → %v", l.String(), got)
		}
	}
	w := Word(zoo)
	got, err := ParseWord(w.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w) {
		t.Errorf("word round trip failed: %s", got)
	}
}

// TestParseASCIIAlias: s32@4 is accepted for σ32@4.
func TestParseASCIIAlias(t *testing.T) {
	l, err := Parse("s32@4")
	if err != nil {
		t.Fatal(err)
	}
	if l != Field(32, 4) {
		t.Errorf("got %v", l)
	}
}

// TestPointerDual checks the load/store involution used by S-POINTER.
func TestPointerDual(t *testing.T) {
	if Load().PointerDual() != Store() || Store().PointerDual() != Load() {
		t.Error("load/store must be dual")
	}
	if In("x").PointerDual() != In("x") {
		t.Error("non-pointer labels are self-dual")
	}
}

// TestCompareTotalOrder: Compare is a strict weak order on a sample.
func TestCompareTotalOrder(t *testing.T) {
	zoo := []Label{In("a"), In("b"), Out("eax"), Load(), Store(), Field(8, 0), Field(32, 0), Field(32, 4)}
	for _, a := range zoo {
		if Compare(a, a) != 0 {
			t.Errorf("Compare(%s,%s) != 0", a, a)
		}
		for _, b := range zoo {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("antisymmetry violated for %s,%s", a, b)
			}
		}
	}
}
