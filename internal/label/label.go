// Package label implements the field-label alphabet Σ of the Retypd type
// system together with its variance structure (Noonan et al., PLDI 2016,
// §3.1, Table 1).
//
// A derived type variable is a base variable followed by a word over Σ;
// each label is a capability of the type: being callable with an input at
// some location (.in_L), producing an output (.out_L), being readable
// (.load) or writable (.store) through, or having an N-bit field at byte
// offset k (.σN@k).
//
// Every label has a variance: ⊕ (covariant) or ⊖ (contravariant).
// Variance extends to words multiplicatively: ⟨ε⟩ = ⊕ and
// ⟨xw⟩ = ⟨x⟩·⟨w⟩ in the sign monoid {⊕,⊖} (Definition 3.2).
package label

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Variance is an element of the sign monoid {⊕, ⊖}.
type Variance bool

const (
	// Covariant is ⊕, the monoid identity.
	Covariant Variance = true
	// Contravariant is ⊖.
	Contravariant Variance = false
)

// Mul is the sign-monoid product: ⊕·⊕ = ⊖·⊖ = ⊕, ⊕·⊖ = ⊖·⊕ = ⊖.
func (v Variance) Mul(w Variance) Variance { return v == w }

// String renders ⊕ or ⊖.
func (v Variance) String() string {
	if v == Covariant {
		return "⊕"
	}
	return "⊖"
}

// Kind discriminates the label constructors of Table 1.
type Kind uint8

const (
	// KIn is .in_L: function input at location L (contravariant).
	KIn Kind = iota
	// KOut is .out_L: function output at location L (covariant).
	KOut
	// KLoad is .load: readable pointer (covariant).
	KLoad
	// KStore is .store: writable pointer (contravariant).
	KStore
	// KField is .σN@k: an N-bit field at byte offset k (covariant).
	KField
)

// Label is a single element of Σ. The zero value is not a valid label;
// use the constructors below.
type Label struct {
	kind Kind
	// loc names the parameter/return location for KIn/KOut
	// (e.g. "stack0", "eax").
	loc string
	// bits and off carry the σN@k payload for KField.
	bits int
	off  int
}

// In returns the input-capability label .in_loc.
func In(loc string) Label { return Label{kind: KIn, loc: loc} }

// Out returns the output-capability label .out_loc.
func Out(loc string) Label { return Label{kind: KOut, loc: loc} }

// Load is the readable-pointer label .load.
func Load() Label { return Label{kind: KLoad} }

// Store is the writable-pointer label .store.
func Store() Label { return Label{kind: KStore} }

// Field returns the label .σbits@off: a bits-bit field at byte offset off.
func Field(bits, off int) Label { return Label{kind: KField, bits: bits, off: off} }

// Kind reports the label constructor.
func (l Label) Kind() Kind { return l.kind }

// Loc reports the location name of an in/out label ("" otherwise).
func (l Label) Loc() string { return l.loc }

// Bits reports the field width of a σN@k label (0 otherwise).
func (l Label) Bits() int { return l.bits }

// Offset reports the byte offset of a σN@k label (0 otherwise).
func (l Label) Offset() int { return l.off }

// Variance reports ⟨l⟩ per Table 1: .in and .store are contravariant,
// .out, .load and .σN@k are covariant.
func (l Label) Variance() Variance {
	switch l.kind {
	case KIn, KStore:
		return Contravariant
	default:
		return Covariant
	}
}

// IsPointerAccess reports whether l is .load or .store.
func (l Label) IsPointerAccess() bool { return l.kind == KLoad || l.kind == KStore }

// PointerDual maps .load↔.store and returns any other label unchanged.
// It implements the symmetrization used by the S-POINTER rule.
func (l Label) PointerDual() Label {
	switch l.kind {
	case KLoad:
		return Store()
	case KStore:
		return Load()
	default:
		return l
	}
}

// String renders the label in the paper's notation, e.g. "in_stack0",
// "out_eax", "load", "store", "σ32@4".
func (l Label) String() string {
	switch l.kind {
	case KIn:
		return "in_" + l.loc
	case KOut:
		return "out_" + l.loc
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KField:
		return "σ" + strconv.Itoa(l.bits) + "@" + strconv.Itoa(l.off)
	default:
		return fmt.Sprintf("label(%d)", l.kind)
	}
}

// Parse parses a single label as printed by String. It accepts the ASCII
// alias "s32@4" alongside "σ32@4".
func Parse(s string) (Label, error) {
	switch {
	case strings.HasPrefix(s, "in_"):
		return In(s[len("in_"):]), nil
	case strings.HasPrefix(s, "out_"):
		return Out(s[len("out_"):]), nil
	case s == "load":
		return Load(), nil
	case s == "store":
		return Store(), nil
	case strings.HasPrefix(s, "σ"), strings.HasPrefix(s, "s"):
		body := strings.TrimPrefix(strings.TrimPrefix(s, "σ"), "s")
		at := strings.IndexByte(body, '@')
		if at < 0 {
			return Label{}, fmt.Errorf("label: malformed field label %q", s)
		}
		bits, err := strconv.Atoi(body[:at])
		if err != nil {
			return Label{}, fmt.Errorf("label: bad width in %q: %v", s, err)
		}
		off, err := strconv.Atoi(body[at+1:])
		if err != nil {
			return Label{}, fmt.Errorf("label: bad offset in %q: %v", s, err)
		}
		return Field(bits, off), nil
	default:
		return Label{}, fmt.Errorf("label: unknown label %q", s)
	}
}

// Compare imposes a deterministic total order on labels, used to keep
// printed constraint sets and sketches stable.
func Compare(a, b Label) int {
	if a.kind != b.kind {
		return int(a.kind) - int(b.kind)
	}
	switch a.kind {
	case KIn, KOut:
		return strings.Compare(a.loc, b.loc)
	case KField:
		if a.off != b.off {
			return a.off - b.off
		}
		return a.bits - b.bits
	default:
		return 0
	}
}

// Word is a (possibly empty) word over Σ.
type Word []Label

// Variance reports ⟨w⟩, the product of the member variances.
func (w Word) Variance() Variance {
	v := Covariant
	for _, l := range w {
		v = v.Mul(l.Variance())
	}
	return v
}

// Append returns w·l as a fresh word (w is not mutated).
func (w Word) Append(l Label) Word {
	out := make(Word, len(w)+1)
	copy(out, w)
	out[len(w)] = l
	return out
}

// Concat returns w·u as a fresh word.
func (w Word) Concat(u Word) Word {
	out := make(Word, 0, len(w)+len(u))
	out = append(out, w...)
	out = append(out, u...)
	return out
}

// Equal reports label-wise equality.
func (w Word) Equal(u Word) bool {
	if len(w) != len(u) {
		return false
	}
	for i := range w {
		if w[i] != u[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of w.
func (w Word) HasPrefix(p Word) bool {
	if len(p) > len(w) {
		return false
	}
	return w[:len(p)].Equal(p)
}

// String joins the labels with dots: "load.σ32@4".
func (w Word) String() string {
	parts := make([]string, len(w))
	for i, l := range w {
		parts[i] = l.String()
	}
	return strings.Join(parts, ".")
}

// ParseWord parses a dot-separated label word; the empty string is ε.
func ParseWord(s string) (Word, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	w := make(Word, 0, len(parts))
	for _, p := range parts {
		l, err := Parse(p)
		if err != nil {
			return nil, err
		}
		w = append(w, l)
	}
	return w, nil
}

// SortLabels sorts a label slice with Compare.
func SortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return Compare(ls[i], ls[j]) < 0 })
}
