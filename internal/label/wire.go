package label

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding of labels — the canonical byte form shared by every
// portable cache encoding (constraint-set fingerprints, persisted
// scheme/shape entries, body fingerprints). The encoding is a pure
// function of the label's semantic content, so it is identical across
// processes regardless of interning order; changing it invalidates
// every persisted cache, which is why the cache file format carries a
// version (see solver.SaveCache) that must be bumped alongside any
// change here.
//
// Layout: one kind byte, then the kind's payload —
//
//	KIn/KOut: uvarint(len(loc)) ++ loc bytes
//	KLoad/KStore: empty
//	KField: varint(bits) ++ varint(off)
//
// Each label is self-delimiting; words are encoded as a uvarint length
// followed by the member labels (see intern.AppendWordWire).

// AppendWire appends the canonical wire form of l to buf.
func AppendWire(buf []byte, l Label) []byte {
	buf = append(buf, byte(l.kind))
	switch l.kind {
	case KIn, KOut:
		buf = binary.AppendUvarint(buf, uint64(len(l.loc)))
		buf = append(buf, l.loc...)
	case KField:
		buf = binary.AppendVarint(buf, int64(l.bits))
		buf = binary.AppendVarint(buf, int64(l.off))
	}
	return buf
}

// DecodeWire decodes one label from the front of data, returning the
// number of bytes consumed.
func DecodeWire(data []byte) (Label, int, error) {
	if len(data) == 0 {
		return Label{}, 0, fmt.Errorf("label: truncated wire form")
	}
	k := Kind(data[0])
	n := 1
	switch k {
	case KIn, KOut:
		ln, m := binary.Uvarint(data[n:])
		if m <= 0 || uint64(len(data)-n-m) < ln {
			return Label{}, 0, fmt.Errorf("label: truncated location in wire form")
		}
		n += m
		loc := string(data[n : n+int(ln)])
		n += int(ln)
		return Label{kind: k, loc: loc}, n, nil
	case KLoad, KStore:
		return Label{kind: k}, n, nil
	case KField:
		bits, m := binary.Varint(data[n:])
		if m <= 0 {
			return Label{}, 0, fmt.Errorf("label: truncated field width in wire form")
		}
		n += m
		off, m := binary.Varint(data[n:])
		if m <= 0 {
			return Label{}, 0, fmt.Errorf("label: truncated field offset in wire form")
		}
		n += m
		return Label{kind: k, bits: int(bits), off: int(off)}, n, nil
	default:
		return Label{}, 0, fmt.Errorf("label: unknown wire kind %d", data[0])
	}
}
