package schedtest

import (
	"sync/atomic"
	"testing"

	"retypd/internal/conc"
)

// TestPerturbedPoolCompletes: a perturbed executor still runs every
// task exactly once, across seeds and worker counts.
func TestPerturbedPoolCompletes(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, workers := range []int{1, 2, 4, 8} {
			var ran atomic.Int64
			p := New(seed)
			conc.RunPool(workers, p.Hooks(), func(sub conc.Submitter) {
				for i := 0; i < 64; i++ {
					sub.Submit(conc.Task{Run: func(s conc.Submitter) {
						ran.Add(1)
						s.Submit(conc.Task{Run: func(conc.Submitter) { ran.Add(1) }})
					}})
				}
			})
			if got := ran.Load(); got != 128 {
				t.Errorf("seed=%d workers=%d: ran %d, want 128", seed, workers, got)
			}
		}
	}
}

// TestPerturberReplays: the same seed produces the same steal orders
// for the same call sequence (reproducibility of failures).
func TestPerturberReplays(t *testing.T) {
	seq := func() [][]int {
		p := New(7)
		h := p.Hooks()
		var out [][]int
		for i := 0; i < 10; i++ {
			out = append(out, h.StealOrder(0, 4))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("steal order diverged at call %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}
