// Package schedtest perturbs the conc executor's scheduling for
// determinism testing. The solver guarantees byte-identical output at
// any worker count under any schedule; the default scheduler only ever
// exhibits a tiny slice of the possible schedules, so the perturbation
// suite drives the executor through seeded adversarial ones — random
// pre-task delays (reordering completion) and biased steal orders
// (reordering acquisition) — and asserts the output never moves.
//
// Production code must never import this package; it exists for tests
// only and its hooks are plumbed through solver.Options' unexported
// test hook.
package schedtest

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"retypd/internal/conc"
)

// Perturber produces conc.SchedHooks that randomize scheduling from a
// fixed seed: the same seed and worker count replays the same sequence
// of per-worker delays and steal orders, so failures are reproducible.
type Perturber struct {
	mu   sync.Mutex
	seed int64
	rngs []*rand.Rand // lazily grown, one per worker (each worker's calls are sequential)
	// MaxDelay bounds each injected pre-task delay (default 50µs: long
	// enough to flip completion orders across workers, short enough for
	// 20-trial sweeps).
	MaxDelay time.Duration
}

// New returns a Perturber replaying the schedule family of seed.
func New(seed int64) *Perturber {
	return &Perturber{seed: seed, MaxDelay: 50 * time.Microsecond}
}

// rng returns worker w's private generator, derived from the seed and
// the worker index so schedules differ across workers but replay under
// the same seed.
func (p *Perturber) rng(w int) *rand.Rand {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.rngs) <= w {
		p.rngs = append(p.rngs, rand.New(rand.NewSource(p.seed+int64(len(p.rngs))*0x9E3779B9)))
	}
	return p.rngs[w]
}

// Hooks builds the executor hooks: every task execution is preceded by
// a random delay (a third of the time just a Gosched, a third a real
// sleep, a third nothing), and every steal scan uses a fresh random
// victim permutation.
func (p *Perturber) Hooks() *conc.SchedHooks {
	return &conc.SchedHooks{
		BeforeRun: func(worker int) {
			r := p.rng(worker)
			switch r.Intn(3) {
			case 0:
				runtime.Gosched()
			case 1:
				time.Sleep(time.Duration(r.Int63n(int64(p.MaxDelay) + 1)))
			}
		},
		StealOrder: func(self, workers int) []int {
			r := p.rng(self)
			order := make([]int, 0, workers-1)
			for i := 0; i < workers; i++ {
				if i != self {
					order = append(order, i)
				}
			}
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			return order
		},
	}
}
