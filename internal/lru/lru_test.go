package lru

import (
	"sync"
	"testing"
)

func TestEvictionOrderAndStats(t *testing.T) {
	c := New[int, string](2)
	c.Add(1, "a")
	c.Add(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	c.Add(3, "c") // evicts 2 (1 was refreshed by the Get)
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("1 should have survived (most recently used)")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Errorf("stats = %d/%d, want 2 hits / 1 miss", h, m)
	}
}

func TestAddKeepsFirstOnDuplicate(t *testing.T) {
	c := New[string, int](4)
	c.Add("k", 1)
	c.Add("k", 2) // racing second miss: first stays
	if v, _ := c.Get("k"); v != 1 {
		t.Errorf("duplicate Add replaced the stored value: got %d", v)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				if _, ok := c.Get(k); !ok {
					c.Add(k, k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len %d exceeds capacity", c.Len())
	}
}
