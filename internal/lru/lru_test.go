package lru

import (
	"sync"
	"sync/atomic"
	"testing"
)

// idHash is a trivial 64-bit hash for small integer keys.
func idHash(k int) uint64 { return uint64(k) * 0x9E3779B97F4A7C15 }

func strHash(k string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * 1099511628211
	}
	return h
}

func TestEvictionOrderAndStats(t *testing.T) {
	c := New[int, string](2, idHash)
	c.Add(1, "a")
	c.Add(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	c.Add(3, "c") // evicts 2 (1 was refreshed by the Get)
	if _, ok := c.Get(2); ok {
		t.Error("2 should have been evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("1 should have survived (most recently used)")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Errorf("stats = %d/%d, want 2 hits / 1 miss", h, m)
	}
}

func TestAddKeepsFirstOnDuplicate(t *testing.T) {
	c := New[string, int](4, strHash)
	c.Add("k", 1)
	c.Add("k", 2) // racing second miss: first stays
	if v, _ := c.Get("k"); v != 1 {
		t.Errorf("duplicate Add replaced the stored value: got %d", v)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64, idHash)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				if _, ok := c.Get(k); !ok {
					c.Add(k, k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len %d exceeds capacity", c.Len())
	}
}

// TestHashCollisions forces every key onto one 64-bit hash bucket: the
// full-key collision check must keep all entries distinct and correct
// (the guarantee that lets callers key the map by a precomputed 64-bit
// hash of a much larger key).
func TestHashCollisions(t *testing.T) {
	c := New[string, int](8, func(string) uint64 { return 42 })
	keys := []string{"a", "b", "c", "d", "e"}
	for i, k := range keys {
		c.Add(k, i)
	}
	for i, k := range keys {
		if v, ok := c.Get(k); !ok || v != i {
			t.Errorf("Get(%q) = %d,%v; want %d,true", k, v, ok, i)
		}
	}
	// Eviction must unlink the right entry from the shared chain.
	c2 := New[string, int](2, func(string) uint64 { return 7 })
	c2.Add("x", 1)
	c2.Add("y", 2)
	c2.Add("z", 3) // evicts x
	if _, ok := c2.Get("x"); ok {
		t.Error("x should have been evicted from the collision chain")
	}
	for k, want := range map[string]int{"y": 2, "z": 3} {
		if v, ok := c2.Get(k); !ok || v != want {
			t.Errorf("Get(%q) = %d,%v; want %d,true", k, v, ok, want)
		}
	}
	if c2.Len() != 2 {
		t.Errorf("Len = %d, want 2", c2.Len())
	}
}

// TestDoSingleFlight: concurrent Do calls on one key run compute once;
// everyone receives the same value.
func TestDoSingleFlight(t *testing.T) {
	c := New[int, int](8, idHash)
	var computes atomic.Int32
	gate := make(chan struct{})
	const workers = 8
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, ok := c.Do(5, func() (int, bool) {
				computes.Add(1)
				return 99, true
			})
			if !ok {
				t.Errorf("worker %d: Do reported no value", i)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 99 {
			t.Errorf("worker %d got %d, want 99", i, v)
		}
	}
	if h, m := c.Stats(); m != 1 || h != workers-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", h, m, workers-1)
	}
}

// TestDoUncacheable: compute reporting ok=false stores nothing, and a
// subsequent Do recomputes.
func TestDoUncacheable(t *testing.T) {
	c := New[int, int](8, idHash)
	calls := 0
	for i := 0; i < 2; i++ {
		if v, ok := c.Do(1, func() (int, bool) { calls++; return 7, false }); ok || v != 7 {
			t.Errorf("Do = %d,%v; want 7,false", v, ok)
		}
	}
	if calls != 2 {
		t.Errorf("uncacheable compute ran %d times, want 2", calls)
	}
	if c.Len() != 0 {
		t.Errorf("uncacheable result was stored (Len=%d)", c.Len())
	}
}

// TestDoPanicReleasesWaiters: a panicking leader must not leave waiters
// blocked or the key poisoned.
func TestDoPanicReleasesWaiters(t *testing.T) {
	c := New[int, int](8, idHash)
	func() {
		defer func() { _ = recover() }()
		c.Do(3, func() (int, bool) { panic("boom") })
	}()
	// The flight must be cleaned up: a fresh Do computes normally.
	if v, ok := c.Do(3, func() (int, bool) { return 11, true }); !ok || v != 11 {
		t.Errorf("Do after panic = %d,%v; want 11,true", v, ok)
	}
}

// TestExportImport: Export returns entries MRU-first; Import into a
// fresh cache preserves values and recency (eviction order), without
// touching the hit/miss counters.
func TestExportImport(t *testing.T) {
	c := New[int, string](10, func(k int) uint64 { return uint64(k % 3) }) // force chains
	for i := 0; i < 5; i++ {
		c.Add(i, string(rune('a'+i)))
	}
	c.Get(0) // 0 becomes MRU: order 0,4,3,2,1
	exp := c.Export()
	if len(exp) != 5 || exp[0].Key != 0 || exp[1].Key != 4 {
		t.Fatalf("unexpected export order: %+v", exp)
	}

	c2 := New[int, string](3, func(k int) uint64 { return uint64(k % 3) })
	c2.Import(exp)
	if c2.Len() != 3 {
		t.Fatalf("import past capacity kept %d entries, want 3", c2.Len())
	}
	// The 3 most recent (0, 4, 3) survive; 2 and 1 were evicted.
	hits0, misses0 := c2.Stats()
	if hits0 != 0 || misses0 != 0 {
		t.Fatalf("import counted hits/misses: %d/%d", hits0, misses0)
	}
	for _, k := range []int{0, 4, 3} {
		if v, ok := c2.Get(k); !ok || v != string(rune('a'+k)) {
			t.Fatalf("entry %d missing or wrong after import: %q %v", k, v, ok)
		}
	}
	if _, ok := c2.Get(1); ok {
		t.Fatal("least-recent entry survived capacity-bounded import")
	}
}
