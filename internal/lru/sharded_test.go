package lru

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// applyOps drives the same randomized Add/Get/Do sequence against any
// cache surface, so sharded and unsharded caches can be compared after
// identical histories.
type cacheSurface interface {
	Get(int) (int, bool)
	Add(int, int)
	Do(int, func() (int, bool)) (int, bool)
	Export() []Entry[int, int]
	Stats() (uint64, uint64)
	Len() int
}

func applyOps(c cacheSurface, seed int64, n, keyspace int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := rng.Intn(keyspace)
		switch rng.Intn(3) {
		case 0:
			c.Add(k, k*10)
		case 1:
			c.Get(k)
		default:
			c.Do(k, func() (int, bool) { return k * 10, true })
		}
	}
}

func entriesEqual(a, b []Entry[int, int]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedExportMatchesUnsharded is the wire-compatibility core:
// after an identical sequential op history (no eviction), a sharded
// cache's Export must be byte-for-byte the unsharded cache's Export —
// the property that keeps the PR-5 persisted cache format independent
// of the shard count.
func TestShardedExportMatchesUnsharded(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 13} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			flat := New[int, int](1024, idHash)
			sh := NewSharded[int, int](1024, shards, idHash)
			applyOps(flat, 7, 4000, 200)
			applyOps(sh, 7, 4000, 200)
			if !entriesEqual(flat.Export(), sh.Export()) {
				t.Errorf("sharded(%d) export diverges from unsharded export", shards)
			}
			if fh, fm := flat.Stats(); fh != 0 || fm != 0 {
				sh2, sm := sh.Stats()
				if fh != sh2 || fm != sm {
					t.Errorf("stats diverge: flat %d/%d sharded %d/%d", fh, fm, sh2, sm)
				}
			}
		})
	}
}

// TestShardedExportShardCountInvariant: the same op history exported
// from differently-sharded caches yields identical entry sequences.
func TestShardedExportShardCountInvariant(t *testing.T) {
	var ref []Entry[int, int]
	for i, shards := range []int{1, 2, 4, 8, 16} {
		sh := NewSharded[int, int](512, shards, idHash)
		applyOps(sh, 99, 3000, 150)
		exp := sh.Export()
		if i == 0 {
			ref = exp
			continue
		}
		if !entriesEqual(ref, exp) {
			t.Errorf("export with %d shards differs from 1-shard export", shards)
		}
	}
}

// TestShardedImportRoundTrip: Export → Import into a cache with a
// different shard count → Export must reproduce the entries (recency
// preserved), the cross-process / cross-configuration persistence path.
func TestShardedImportRoundTrip(t *testing.T) {
	src := NewSharded[int, int](256, 8, idHash)
	applyOps(src, 3, 2000, 100)
	exp := src.Export()

	for _, shards := range []int{1, 3, 8} {
		dst := NewSharded[int, int](256, shards, idHash)
		dst.Import(exp)
		if !entriesEqual(exp, dst.Export()) {
			t.Errorf("import into %d shards did not preserve entries+recency", shards)
		}
		if h, m := dst.Stats(); h != 0 || m != 0 {
			t.Errorf("Import counted hits/misses: %d/%d", h, m)
		}
	}

	// And into a plain unsharded cache (old-format consumers).
	flat := New[int, int](256, idHash)
	flat.Import(exp)
	if !entriesEqual(exp, flat.Export()) {
		t.Error("import into unsharded cache did not preserve entries+recency")
	}
}

// TestShardedSingleFlightPerShard: concurrent misses on the same key
// coalesce to exactly one compute, and the accounting is exact — one
// miss for the leader, hits for every waiter — regardless of sharding.
func TestShardedSingleFlightPerShard(t *testing.T) {
	sh := NewSharded[int, int](64, 8, idHash)
	const callers = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, ok := sh.Do(42, func() (int, bool) {
				computes.Add(1)
				return 420, true
			})
			if !ok || v != 420 {
				t.Errorf("Do = %d,%v", v, ok)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (single flight)", n)
	}
	h, m := sh.Stats()
	if m != 1 || h != callers-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", h, m, callers-1)
	}
}

// TestShardedDistinctKeysDoNotSerialize: a slow compute on one key must
// not block a compute on a key in a different shard (the contention the
// sharding exists to remove). A same-shard block would deadlock here.
func TestShardedDistinctKeysDoNotSerialize(t *testing.T) {
	sh := NewSharded[int, int](64, 8, idHash)
	var k1, k2 = 1, 2
	if sh.shardFor(idHash(k1)) == sh.shardFor(idHash(k2)) {
		// Pick a second key landing in a different shard.
		for k2 = 3; sh.shardFor(idHash(k2)) == sh.shardFor(idHash(k1)); k2++ {
		}
	}
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sh.Do(k1, func() (int, bool) {
			close(started)
			<-release
			return 1, true
		})
		close(done)
	}()
	<-started
	// While k1's compute is parked, k2 must complete.
	if v, ok := sh.Do(k2, func() (int, bool) { return 2, true }); !ok || v != 2 {
		t.Fatalf("Do(k2) = %d,%v while k1 in flight", v, ok)
	}
	close(release)
	<-done
}

// TestShardedEvictionBound: total entry count stays within the
// per-shard bounds (sum of ceil-divided capacities).
func TestShardedEvictionBound(t *testing.T) {
	const capacity, shards = 100, 8
	sh := NewSharded[int, int](capacity, shards, idHash)
	for i := 0; i < 10*capacity; i++ {
		sh.Add(i, i)
	}
	per := (capacity + shards - 1) / shards
	if max := per * shards; sh.Len() > max {
		t.Errorf("Len = %d exceeds sharded bound %d", sh.Len(), max)
	}
	if sh.Len() < capacity/2 {
		t.Errorf("Len = %d suspiciously low for capacity %d", sh.Len(), capacity)
	}
}

// TestNewShardedClamps: shard count defaults and clamps sanely.
func TestNewShardedClamps(t *testing.T) {
	if got := NewSharded[int, int](1024, 0, idHash).Shards(); got != DefaultShards {
		t.Errorf("shards<=0 → %d, want DefaultShards=%d", got, DefaultShards)
	}
	if got := NewSharded[int, int](4, 16, idHash).Shards(); got != 4 {
		t.Errorf("shards>capacity → %d, want 4", got)
	}
	if got := NewSharded[int, int](1, 1, idHash).Shards(); got != 1 {
		t.Errorf("minimal cache → %d shards, want 1", got)
	}
	// Automatic selection backs off for small capacities: per-shard
	// eviction must not degrade exact LRU where contention cannot pay
	// for it.
	if got := NewSharded[int, int](2, 0, idHash).Shards(); got != 1 {
		t.Errorf("tiny auto-sharded cache → %d shards, want 1", got)
	}
	if got := NewSharded[int, int](minAutoShardCap*DefaultShards-1, 0, idHash).Shards(); got >= DefaultShards {
		t.Errorf("mid auto-sharded cache → %d shards, want < %d", got, DefaultShards)
	}
	// An explicit shard count is honored even when tiny.
	if got := NewSharded[int, int](4, 2, idHash).Shards(); got != 2 {
		t.Errorf("explicit tiny shards → %d, want 2", got)
	}
}

// TestAutoShardSmallCapacityExactLRU: a small auto-sharded cache must
// evict in exact global LRU order — the regression here is a capacity-2
// cache splitting into two single-entry shards and evicting by shard
// residence instead of recency.
func TestAutoShardSmallCapacityExactLRU(t *testing.T) {
	c := NewSharded[int, int](2, 0, idHash)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(3, 3) // must evict 1, the global LRU victim
	if _, ok := c.Get(1); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Get(2); !ok {
		t.Error("second entry was evicted out of LRU order")
	}
	if _, ok := c.Get(3); !ok {
		t.Error("newest entry missing")
	}
}

// BenchmarkShardedContention measures 8 goroutines hammering hit-path
// lookups, sharded vs unsharded — the convoying PROFILE_2 showed on the
// memo locks. Recorded alongside BENCH_6.
func BenchmarkShardedContention(b *testing.B) {
	const keyspace = 512
	run := func(b *testing.B, c cacheSurface) {
		for i := 0; i < keyspace; i++ {
			c.Add(i, i)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				c.Get(i % keyspace)
				i++
			}
		})
	}
	b.Run("unsharded", func(b *testing.B) {
		b.SetParallelism(8)
		run(b, New[int, int](keyspace, idHash))
	})
	b.Run("sharded8", func(b *testing.B) {
		b.SetParallelism(8)
		run(b, NewSharded[int, int](keyspace, 8, idHash))
	})
}

// TestShardedDoLeaderPanicReleasesWaiters: a leader whose compute
// panics inside a sharded cache must release every concurrent waiter on
// the same key (with ok == false), re-panic to its own caller, and
// leave the shard's single-flight table clean so a later Do computes
// fresh. A regression here strands solver workers forever on the memo
// lock the first time a contained task fault hits a cache compute.
func TestShardedDoLeaderPanicReleasesWaiters(t *testing.T) {
	sh := NewSharded[int, int](64, 8, idHash)
	const waiters = 8

	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	var released atomic.Int64

	// Leader: panics mid-compute after the waiters have queued.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate to its caller")
			}
		}()
		sh.Do(7, func() (int, bool) {
			close(leaderIn)
			// Give the waiters time to join the in-flight chain. A missed
			// window only weakens the test (waiters become leaders of
			// their own flights); it cannot produce a false failure.
			time.Sleep(20 * time.Millisecond)
			panic("leader boom")
		})
	}()

	<-leaderIn
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Waiters must return, not hang. ok may be false (released by
			// the panicking leader) or true (this goroutine led its own
			// flight after the chain was cleaned).
			sh.Do(7, func() (int, bool) { return 70, true })
			released.Add(1)
		}()
	}
	wg.Wait()

	if released.Load() != waiters {
		t.Fatalf("only %d/%d waiters returned", released.Load(), waiters)
	}
	// The flight table is clean: a fresh Do computes and caches normally.
	if v, ok := sh.Do(7, func() (int, bool) { return 71, true }); v != 70 && (!ok || v != 71) {
		t.Errorf("post-panic Do = %d,%v; want a normal compute", v, ok)
	}
	if v, ok := sh.Get(7); !ok || (v != 70 && v != 71) {
		t.Errorf("post-panic Get = %d,%v; want cached value", v, ok)
	}
}
