package lru

import (
	"sort"
	"sync/atomic"
)

// DefaultShards is the shard count selected by NewSharded when the
// caller passes shards <= 0. Eight shards cut the convoying a single
// cache mutex shows under worker fan-out (concurrent F.1/F.2 workers
// all touching one LRU lock) while keeping per-shard capacity large
// enough that eviction behavior is indistinguishable from the
// unsharded cache at memo workloads' entry counts.
const DefaultShards = 8

// minAutoShardCap is the smallest per-shard capacity the automatic
// shard selection accepts. Sharding trades exact global LRU eviction
// for lock distribution: each shard evicts by its own recency order, so
// with tiny per-shard capacities the victim can differ from the global
// LRU entry. That approximation is invisible when shards hold dozens of
// entries but very visible at capacity 2 — so small caches (where lock
// contention cannot matter anyway) automatically fall back to a single
// shard and keep the exact semantics. An explicit shards argument
// overrides this: the caller has decided the trade.
const minAutoShardCap = 64

// Sharded is a bounded LRU split into N independently locked shards
// selected by the caller-supplied 64-bit key hash. It exposes the same
// surface as Cache, with two deliberate properties:
//
//   - Single-flight stays per-shard: concurrent misses on the same key
//     land on the same shard and coalesce exactly as in Cache; misses
//     on different keys in different shards no longer serialize on one
//     mutex or one in-flight table.
//   - Export/Import preserve global recency. Every touch stamps the
//     entry from one shared atomic clock, and Export merges the shards
//     by stamp, so the wire forms written by the fingerprint caches
//     are byte-compatible with (and, absent eviction, byte-identical
//     to) the unsharded implementation's: the shard count is a purely
//     internal layout choice that never reaches a key, a wire byte, or
//     an entry's relative recency.
//
// The shard index is derived from hash(K) — the same seeded 64-bit
// hash the recency maps index by — so shard placement is uniform but
// process-local; Import re-routes entries written by a process with a
// different seed or shard count.
type Sharded[K comparable, V any] struct {
	hash   func(K) uint64
	shards []*Cache[K, V]
	clock  atomic.Uint64
}

// NewSharded returns a sharded cache bounded to capacity entries in
// total, split over the given shard count (shards <= 0 selects up to
// DefaultShards, backing off to fewer — possibly one — when capacity is
// too small for per-shard eviction to approximate global LRU well; an
// explicit count is only clamped to capacity so every shard holds at
// least one entry). hash must be a fixed function of the key.
func NewSharded[K comparable, V any](capacity, shards int, hash func(K) uint64) *Sharded[K, V] {
	if shards <= 0 {
		shards = DefaultShards
		if max := capacity / minAutoShardCap; shards > max {
			shards = max
		}
	}
	if shards > capacity {
		shards = capacity
	}
	if shards < 1 {
		shards = 1
	}
	s := &Sharded[K, V]{hash: hash, shards: make([]*Cache[K, V], shards)}
	per := (capacity + shards - 1) / shards
	for i := range s.shards {
		s.shards[i] = New[K, V](per, hash)
		s.shards[i].clock = &s.clock
	}
	return s
}

// Shards reports the shard count (observability and tests).
func (s *Sharded[K, V]) Shards() int { return len(s.shards) }

// shardFor routes a key hash to its shard.
func (s *Sharded[K, V]) shardFor(h uint64) *Cache[K, V] {
	return s.shards[h%uint64(len(s.shards))]
}

// Get returns the value stored under key, marking it most recently
// used. Every call counts as a hit or a miss on the key's shard.
func (s *Sharded[K, V]) Get(key K) (V, bool) {
	return s.shardFor(s.hash(key)).Get(key)
}

// Add stores val under key unless the key is already present.
func (s *Sharded[K, V]) Add(key K, val V) {
	s.shardFor(s.hash(key)).Add(key, val)
}

// Do returns the value under key, computing it at most once across
// concurrent callers. Single-flight coalescing is per-shard (same-key
// callers always share a shard); see Cache.Do for the semantics.
func (s *Sharded[K, V]) Do(key K, compute func() (V, bool)) (V, bool) {
	return s.shardFor(s.hash(key)).Do(key, compute)
}

// Stats reports cumulative hit/miss counts summed over all shards.
func (s *Sharded[K, V]) Stats() (hits, misses uint64) {
	for _, sh := range s.shards {
		h, m := sh.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Len reports the current entry count summed over all shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// stamped is one entry paired with its global-recency stamp.
type stamped[K comparable, V any] struct {
	e     Entry[K, V]
	stamp uint64
}

// exportStamped snapshots one shard's entries with their stamps.
func (c *Cache[K, V]) exportStamped() []stamped[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]stamped[K, V], 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		out = append(out, stamped[K, V]{e: Entry[K, V]{Key: e.key, Val: e.val}, stamp: e.stamp})
	}
	return out
}

// importOne inserts one entry (stamped from the shared clock by
// addLocked); Sharded.Import drives it in reverse recency order.
func (c *Cache[K, V]) importOne(key K, val V) {
	h := c.hash(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(h, key, val)
}

// Export returns the cache's entries in global recency order (most
// recently used first), merging the shards by their touch stamps. Each
// shard's snapshot is consistent; the merge is taken shard by shard,
// so concurrent mutation can skew relative order across shards exactly
// as it could skew a reader racing the unsharded cache's lock. Values
// are shared with the cache — callers must treat them as read-only.
func (s *Sharded[K, V]) Export() []Entry[K, V] {
	var all []stamped[K, V]
	for _, sh := range s.shards {
		all = append(all, sh.exportStamped()...)
	}
	// Stamps are unique (one shared atomic clock), so the order is
	// total; descending stamp = most recently used first.
	sort.Slice(all, func(i, j int) bool { return all[i].stamp > all[j].stamp })
	out := make([]Entry[K, V], len(all))
	for i, st := range all {
		out[i] = st.e
	}
	return out
}

// Import loads entries produced by Export (of a Sharded with any shard
// count, or of a plain Cache), preserving their relative recency:
// entries[0] ends up most recently used. Keys already present keep
// their existing value; nothing is counted as a hit or a miss.
func (s *Sharded[K, V]) Import(entries []Entry[K, V]) {
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		s.shardFor(s.hash(e.Key)).importOne(e.Key, e.Val)
	}
}
