// Package lru is the bounded, thread-safe LRU memo underlying the
// solver's fingerprint-keyed caches (pgraph.SimplifyCache and
// sketch.ShapeCache). Both caches share the same mechanics — move-to-
// front on hit, eviction from the back past the capacity bound, and
// cumulative hit/miss counters — so they share this one implementation
// and only differ in key and value types.
//
// Two design points are specific to the memo workload:
//
//   - Keys are large comparable structs (a 32-byte content hash plus
//     discriminators). Indexing the recency map by them directly makes
//     every probe rehash the full struct (runtime aeshash over the
//     whole key, visible in CPU profiles). The cache therefore indexes
//     a precomputed 64-bit hash (caller-supplied, typically
//     maphash-seeded) and keeps the full key on each entry, comparing
//     it on every probe: a 64-bit collision degrades to a chained
//     lookup, never to a wrong value.
//   - Concurrent workers frequently miss on the same key at the same
//     time (duplicate leaf procedures land on sibling workers within
//     one scheduling level). Do provides single-flight semantics: the
//     first caller computes, the others wait for its result instead of
//     duplicating the work.
package lru

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// entry is one key/value pair on the recency list. stamp is the
// global-recency tick of the entry's last touch, maintained only when
// the cache is a shard of a Sharded (clock != nil): within one shard
// the list order already IS recency, but merging shards back into one
// global recency order (Sharded.Export) needs a cross-shard clock.
type entry[K comparable, V any] struct {
	hash  uint64
	key   K
	val   V
	stamp uint64
}

// flight is one in-progress single-flight computation.
type flight[K comparable, V any] struct {
	key  K
	done chan struct{}
	val  V
	ok   bool // leader stored a value (compute reported it cacheable)
}

// Cache is a bounded LRU map from K to V, safe for concurrent use.
// The recency index is keyed by hash(K); full keys are collision-
// checked on every probe.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	cap      int
	hash     func(K) uint64
	order    *list.List // front = most recently used
	byHash   map[uint64][]*list.Element
	inflight map[uint64][]*flight[K, V]
	hits     uint64
	misses   uint64
	// clock, when non-nil, is the shared cross-shard recency clock of
	// the owning Sharded; every touch stamps the entry with a fresh
	// tick. Standalone caches leave it nil (zero overhead).
	clock *atomic.Uint64
}

// New returns a cache bounded to capacity entries (capacity must be
// positive; callers apply their own defaults). hash must be a fixed
// function of the key; it is computed once per operation.
func New[K comparable, V any](capacity int, hash func(K) uint64) *Cache[K, V] {
	return &Cache[K, V]{
		cap:      capacity,
		hash:     hash,
		order:    list.New(),
		byHash:   map[uint64][]*list.Element{},
		inflight: map[uint64][]*flight[K, V]{},
	}
}

// find returns the element holding key, or nil. Callers hold mu.
func (c *Cache[K, V]) find(h uint64, key K) *list.Element {
	for _, el := range c.byHash[h] {
		if el.Value.(*entry[K, V]).key == key {
			return el
		}
	}
	return nil
}

// removeElement unlinks el from both indexes. Callers hold mu.
func (c *Cache[K, V]) removeElement(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	chain := c.byHash[e.hash]
	for i, cand := range chain {
		if cand == el {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(c.byHash, e.hash)
	} else {
		c.byHash[e.hash] = chain
	}
}

// touch stamps el's entry with a fresh global-recency tick when the
// cache is clocked. Callers hold mu.
func (c *Cache[K, V]) touch(el *list.Element) {
	if c.clock != nil {
		el.Value.(*entry[K, V]).stamp = c.clock.Add(1)
	}
}

// addLocked stores val under key unless already present. Callers hold
// mu.
func (c *Cache[K, V]) addLocked(h uint64, key K, val V) {
	if el := c.find(h, key); el != nil {
		// Two concurrent misses may race to store; the first stays —
		// both values are equivalent by construction in the memo use
		// case.
		c.order.MoveToFront(el)
		c.touch(el)
		return
	}
	el := c.order.PushFront(&entry[K, V]{hash: h, key: key, val: val})
	c.touch(el)
	c.byHash[h] = append(c.byHash[h], el)
	for c.order.Len() > c.cap {
		c.removeElement(c.order.Back())
	}
}

// Get returns the value stored under key, marking it most recently
// used. Every call counts as a hit or a miss.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	h := c.hash(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.find(h, key); el != nil {
		c.order.MoveToFront(el)
		c.touch(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add stores val under key unless the key is already present. Past the
// capacity bound the least recently used entries are evicted.
func (c *Cache[K, V]) Add(key K, val V) {
	h := c.hash(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(h, key, val)
}

// Do returns the value under key, computing it at most once across
// concurrent callers (single flight). On a miss the first caller runs
// compute unlocked; callers that miss on the same key while the
// computation is in progress wait for it instead of duplicating the
// work. compute reports whether its result is cacheable: when it
// returns false nothing is stored and waiters receive ok == false
// (they fall back to computing privately — by construction that only
// happens for results that cannot be shared anyway).
//
// The returned ok is true when the value came from the cache, from a
// completed flight, or from this caller's own successful compute.
// Accounting: a found entry and a successfully served waiter count as
// hits (the work was saved); a compute leader, and a waiter whose
// leader's result was uncacheable, count as misses.
func (c *Cache[K, V]) Do(key K, compute func() (V, bool)) (V, bool) {
	h := c.hash(key)
	c.mu.Lock()
	if el := c.find(h, key); el != nil {
		c.order.MoveToFront(el)
		c.touch(el)
		c.hits++
		v := el.Value.(*entry[K, V]).val
		c.mu.Unlock()
		return v, true
	}
	for _, f := range c.inflight[h] {
		if f.key == key {
			c.mu.Unlock()
			<-f.done
			// Account after the outcome is known: a waiter served by
			// the leader's stored value is a hit (work saved); a waiter
			// whose leader produced an uncacheable result recomputes
			// privately and must count as a miss, or hit rates would
			// overstate sharing exactly where it fails.
			c.mu.Lock()
			if f.ok {
				c.hits++
			} else {
				c.misses++
			}
			c.mu.Unlock()
			return f.val, f.ok
		}
	}
	f := &flight[K, V]{key: key, done: make(chan struct{})}
	c.inflight[h] = append(c.inflight[h], f)
	c.misses++
	c.mu.Unlock()

	// The deferred cleanup also runs when compute panics, so waiters
	// are released (with ok == false) instead of blocking forever.
	defer func() {
		c.mu.Lock()
		chain := c.inflight[h]
		for i, cand := range chain {
			if cand == f {
				chain[i] = chain[len(chain)-1]
				chain = chain[:len(chain)-1]
				break
			}
		}
		if len(chain) == 0 {
			delete(c.inflight, h)
		} else {
			c.inflight[h] = chain
		}
		if f.ok {
			c.addLocked(h, key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.ok = compute()
	return f.val, f.ok
}

// Entry is one exported key/value pair; see Export.
type Entry[K comparable, V any] struct {
	Key K
	Val V
}

// Export returns the cache's entries in recency order (most recently
// used first). The snapshot is taken under the lock, so it is
// consistent, but values are shared with the cache — callers must
// treat them as read-only (the memo use case stores immutable values).
func (c *Cache[K, V]) Export() []Entry[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry[K, V], 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		out = append(out, Entry[K, V]{Key: e.key, Val: e.val})
	}
	return out
}

// Import loads entries produced by Export (typically in another
// process, after the keys and values have crossed a wire decode),
// preserving their relative recency: entries[0] ends up most recently
// used. Keys already present keep their existing value; nothing is
// counted as a hit or a miss. Entries past the capacity bound are
// evicted as usual, least recent first.
func (c *Cache[K, V]) Import(entries []Entry[K, V]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c.addLocked(c.hash(e.Key), e.Key, e.Val)
	}
}

// Stats reports cumulative hit/miss counts across all sharers.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
