// Package lru is the bounded, thread-safe LRU memo underlying the
// solver's fingerprint-keyed caches (pgraph.SimplifyCache and
// sketch.ShapeCache). Both caches share the same mechanics — move-to-
// front on hit, keep-first when two concurrent misses race to store
// the same key, eviction from the back past the capacity bound, and
// cumulative hit/miss counters — so they share this one implementation
// and only differ in key and value types.
package lru

import (
	"container/list"
	"sync"
)

// entry is one key/value pair on the recency list.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is a bounded LRU map from K to V, safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recently used
	byKey  map[K]*list.Element
	hits   uint64
	misses uint64
}

// New returns a cache bounded to capacity entries (capacity must be
// positive; callers apply their own defaults).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		cap:   capacity,
		order: list.New(),
		byKey: map[K]*list.Element{},
	}
}

// Get returns the value stored under key, marking it most recently
// used. Every call counts as a hit or a miss.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add stores val under key unless the key is already present (two
// concurrent misses may race to store; the first stays — both values
// are equivalent by construction in the memo use case). Past the
// capacity bound the least recently used entries are evicted.
func (c *Cache[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&entry[K, V]{key: key, val: val})
	c.byKey[key] = el
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry[K, V]).key)
	}
}

// Stats reports cumulative hit/miss counts across all sharers.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
