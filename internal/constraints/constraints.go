// Package constraints implements the syntax of the Retypd constraint
// type system (Noonan et al., PLDI 2016, §3.1): derived type variables
// (Definition 3.1), subtype and capability constraints (Definition 3.3),
// the 3-place additive constraints of Appendix A.6/Figure 13, constraint
// sets, and recursively constrained type schemes (Definition 3.4).
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"retypd/internal/label"
)

// Var is a base type variable. By convention, type constants (elements
// of Λ rendered symbolically, §3.1) are Vars whose name matches a
// lattice element and are recognized by the solver via its lattice.
type Var string

// DTV is a derived type variable: a base variable extended by a word of
// field labels (Definition 3.1).
type DTV struct {
	Base Var
	Path label.Word
}

// MakeDTV builds Base.l1.l2...
func MakeDTV(base Var, labels ...label.Label) DTV {
	return DTV{Base: base, Path: label.Word(labels)}
}

// Append returns d.l as a fresh derived type variable.
func (d DTV) Append(l label.Label) DTV {
	return DTV{Base: d.Base, Path: d.Path.Append(l)}
}

// Concat returns d.w.
func (d DTV) Concat(w label.Word) DTV {
	return DTV{Base: d.Base, Path: d.Path.Concat(w)}
}

// Parent returns the one-shorter prefix of d and reports whether d had
// any labels to strip.
func (d DTV) Parent() (DTV, label.Label, bool) {
	if len(d.Path) == 0 {
		return d, label.Label{}, false
	}
	last := d.Path[len(d.Path)-1]
	return DTV{Base: d.Base, Path: d.Path[:len(d.Path)-1]}, last, true
}

// IsBase reports whether d carries no labels.
func (d DTV) IsBase() bool { return len(d.Path) == 0 }

// Variance reports ⟨path⟩, the variance of d's label word.
func (d DTV) Variance() label.Variance { return d.Path.Variance() }

// Equal reports structural equality.
func (d DTV) Equal(e DTV) bool { return d.Base == e.Base && d.Path.Equal(e.Path) }

// String renders "base.l1.l2" in the paper's notation.
func (d DTV) String() string {
	if len(d.Path) == 0 {
		return string(d.Base)
	}
	return string(d.Base) + "." + d.Path.String()
}

// ParseDTV parses the String form. Base variable names may not contain
// '.'.
func ParseDTV(s string) (DTV, error) {
	parts := strings.Split(s, ".")
	if parts[0] == "" {
		return DTV{}, fmt.Errorf("constraints: empty base variable in %q", s)
	}
	d := DTV{Base: Var(parts[0])}
	for _, p := range parts[1:] {
		l, err := label.Parse(p)
		if err != nil {
			return DTV{}, err
		}
		d.Path = append(d.Path, l)
	}
	return d, nil
}

// Constraint is either a subtype constraint L ⊑ R, or an additive
// constraint Add/Sub(X, Y; Z) (Appendix A.6). Capability constraints
// VAR d are represented as d ⊑ d (reflexivity registers the derived
// variable and all its prefixes with the solver).
type Constraint struct {
	Kind ConstraintKind
	// Sub constraint operands.
	L, R DTV
	// Additive constraint operands (X op Y = Z).
	X, Y, Z DTV
}

// ConstraintKind discriminates Constraint.
type ConstraintKind uint8

const (
	// KindSub is L ⊑ R.
	KindSub ConstraintKind = iota
	// KindAdd is Add(X, Y; Z): Z = X + Y at the value level.
	KindAdd
	// KindSubtract is Sub(X, Y; Z): Z = X - Y at the value level.
	KindSubtract
)

// Sub returns the subtype constraint l ⊑ r.
func Sub(l, r DTV) Constraint { return Constraint{Kind: KindSub, L: l, R: r} }

// HasVar returns the capability constraint VAR d, encoded as d ⊑ d.
func HasVar(d DTV) Constraint { return Constraint{Kind: KindSub, L: d, R: d} }

// Add returns the additive constraint Add(x, y; z).
func Add(x, y, z DTV) Constraint { return Constraint{Kind: KindAdd, X: x, Y: y, Z: z} }

// Subtract returns the additive constraint Sub(x, y; z).
func Subtract(x, y, z DTV) Constraint { return Constraint{Kind: KindSubtract, X: x, Y: y, Z: z} }

// String renders the constraint in the paper's ASCII notation.
func (c Constraint) String() string {
	switch c.Kind {
	case KindSub:
		return c.L.String() + " <= " + c.R.String()
	case KindAdd:
		return fmt.Sprintf("Add(%s, %s; %s)", c.X, c.Y, c.Z)
	case KindSubtract:
		return fmt.Sprintf("Sub(%s, %s; %s)", c.X, c.Y, c.Z)
	default:
		return fmt.Sprintf("constraint(%d)", c.Kind)
	}
}

// ParseConstraint parses "l <= r" (also accepting "⊑" and "<:") and
// "Add(x, y; z)" / "Sub(x, y; z)".
func ParseConstraint(s string) (Constraint, error) {
	s = strings.TrimSpace(s)
	for _, pre := range []struct {
		prefix string
		kind   ConstraintKind
	}{{"Add(", KindAdd}, {"Sub(", KindSubtract}} {
		if strings.HasPrefix(s, pre.prefix) && strings.HasSuffix(s, ")") {
			body := s[len(pre.prefix) : len(s)-1]
			semi := strings.IndexByte(body, ';')
			if semi < 0 {
				return Constraint{}, fmt.Errorf("constraints: malformed additive constraint %q", s)
			}
			args := strings.Split(body[:semi], ",")
			if len(args) != 2 {
				return Constraint{}, fmt.Errorf("constraints: additive constraint needs 2 sources: %q", s)
			}
			x, err := ParseDTV(strings.TrimSpace(args[0]))
			if err != nil {
				return Constraint{}, err
			}
			y, err := ParseDTV(strings.TrimSpace(args[1]))
			if err != nil {
				return Constraint{}, err
			}
			z, err := ParseDTV(strings.TrimSpace(body[semi+1:]))
			if err != nil {
				return Constraint{}, err
			}
			return Constraint{Kind: pre.kind, X: x, Y: y, Z: z}, nil
		}
	}
	for _, sep := range []string{"⊑", "<=", "<:"} {
		if i := strings.Index(s, sep); i >= 0 {
			l, err := ParseDTV(strings.TrimSpace(s[:i]))
			if err != nil {
				return Constraint{}, err
			}
			r, err := ParseDTV(strings.TrimSpace(s[i+len(sep):]))
			if err != nil {
				return Constraint{}, err
			}
			return Sub(l, r), nil
		}
	}
	return Constraint{}, fmt.Errorf("constraints: cannot parse %q", s)
}

// Set is a deduplicated constraint set over some collection of type
// variables (Definition 3.3). The zero value is ready to use.
type Set struct {
	list []Constraint
	seen map[string]struct{}
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// ParseSet parses one constraint per line; blank lines and lines
// starting with "//" or ";" are skipped. Intended for tests and
// examples written in the paper's notation.
func ParseSet(text string) (*Set, error) {
	s := NewSet()
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, ";") {
			continue
		}
		c, err := ParseConstraint(line)
		if err != nil {
			return nil, err
		}
		s.Insert(c)
	}
	return s, nil
}

// MustParseSet panics on parse errors; for statically known text.
func MustParseSet(text string) *Set {
	s, err := ParseSet(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Insert adds c if not already present and reports whether it was new.
func (s *Set) Insert(c Constraint) bool {
	if s.seen == nil {
		s.seen = map[string]struct{}{}
	}
	k := c.String()
	if _, ok := s.seen[k]; ok {
		return false
	}
	s.seen[k] = struct{}{}
	s.list = append(s.list, c)
	return true
}

// AddSub is shorthand for Insert(Sub(l, r)).
func (s *Set) AddSub(l, r DTV) bool { return s.Insert(Sub(l, r)) }

// InsertAll merges other into s.
func (s *Set) InsertAll(other *Set) {
	if other == nil {
		return
	}
	for _, c := range other.list {
		s.Insert(c)
	}
}

// Constraints returns the constraints in insertion order. The slice is
// shared; callers must not mutate it.
func (s *Set) Constraints() []Constraint {
	if s == nil {
		return nil
	}
	return s.list
}

// Subtypes returns only the subtype constraints.
func (s *Set) Subtypes() []Constraint {
	var out []Constraint
	for _, c := range s.list {
		if c.Kind == KindSub {
			out = append(out, c)
		}
	}
	return out
}

// Additive returns only the Add/Sub constraints.
func (s *Set) Additive() []Constraint {
	var out []Constraint
	for _, c := range s.list {
		if c.Kind != KindSub {
			out = append(out, c)
		}
	}
	return out
}

// Len reports the number of constraints.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// Has reports membership.
func (s *Set) Has(c Constraint) bool {
	if s == nil || s.seen == nil {
		return false
	}
	_, ok := s.seen[c.String()]
	return ok
}

// Vars returns the set of base variables mentioned, sorted.
func (s *Set) Vars() []Var {
	seen := map[Var]struct{}{}
	add := func(d DTV) {
		if d.Base != "" {
			seen[d.Base] = struct{}{}
		}
	}
	for _, c := range s.list {
		add(c.L)
		add(c.R)
		add(c.X)
		add(c.Y)
		add(c.Z)
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep-enough copy (constraints are immutable values).
func (s *Set) Clone() *Set {
	out := NewSet()
	out.InsertAll(s)
	return out
}

// SubstituteBases rewrites every base variable through f (used for
// callsite tagging and scheme instantiation, §A.4).
func (s *Set) SubstituteBases(f func(Var) Var) *Set {
	out := NewSet()
	sub := func(d DTV) DTV { return DTV{Base: f(d.Base), Path: d.Path} }
	for _, c := range s.list {
		switch c.Kind {
		case KindSub:
			out.Insert(Sub(sub(c.L), sub(c.R)))
		default:
			out.Insert(Constraint{Kind: c.Kind, X: sub(c.X), Y: sub(c.Y), Z: sub(c.Z)})
		}
	}
	return out
}

// String renders one constraint per line, sorted, for stable output.
func (s *Set) String() string {
	lines := make([]string, 0, s.Len())
	for _, c := range s.Constraints() {
		lines = append(lines, c.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Scheme is a recursively constrained type scheme ∀α.C ⇒ Root
// (Definition 3.4). Existential ("internal") variables synthesized by
// constraint simplification are listed in Existential; all other
// non-Root, non-constant variables in C are universally quantified.
type Scheme struct {
	// Root is the type variable the scheme describes (a procedure).
	Root Var
	// Constraints is the simplified constraint set C.
	Constraints *Set
	// Existential lists variables bound by ∃ inside C (Figure 2's τ).
	Existential []Var
}

// String renders "∀F. (∃τ. C) ⇒ F" with C inline.
func (sc *Scheme) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "∀%s.", sc.Root)
	if len(sc.Existential) > 0 {
		ex := make([]string, len(sc.Existential))
		for i, v := range sc.Existential {
			ex[i] = string(v)
		}
		fmt.Fprintf(&b, " (∃%s.", strings.Join(ex, ","))
	}
	cs := sc.Constraints.String()
	if cs == "" {
		cs = "⊤"
	}
	fmt.Fprintf(&b, " {%s}", strings.ReplaceAll(cs, "\n", " ∧ "))
	if len(sc.Existential) > 0 {
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " ⇒ %s", sc.Root)
	return b.String()
}

// Instantiate returns the scheme's constraints with every quantified
// variable (root, existentials, and any other free variable) renamed by
// suffixing tag, implementing callsite-tagged instantiation
// (Example A.4). Variables for which keep returns true (e.g. globals and
// type constants) are left untouched.
func (sc *Scheme) Instantiate(tag string, keep func(Var) bool) *Set {
	return sc.Constraints.SubstituteBases(func(v Var) Var {
		if keep != nil && keep(v) {
			return v
		}
		return Var(string(v) + tag)
	})
}
