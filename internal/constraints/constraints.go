// Package constraints implements the syntax of the Retypd constraint
// type system (Noonan et al., PLDI 2016, §3.1): derived type variables
// (Definition 3.1), subtype and capability constraints (Definition 3.3),
// the 3-place additive constraints of Appendix A.6/Figure 13, constraint
// sets, and recursively constrained type schemes (Definition 3.4).
//
// Derived type variables are interned: a DTV is a 4-byte handle into
// the process-wide symbol table of internal/intern, so DTV equality is
// integer equality, DTVs key maps directly without rendering, and the
// derivation step d ↦ d.ℓ is a hash-cons lookup instead of a slice
// copy. Strings are materialized only at the serialization boundary
// (String, the parsers, and the display pipeline).
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"retypd/internal/intern"
	"retypd/internal/label"
)

// Var is a base type variable. By convention, type constants (elements
// of Λ rendered symbolically, §3.1) are Vars whose name matches a
// lattice element and are recognized by the solver via its lattice.
type Var string

// DTV is a derived type variable: a base variable extended by a word of
// field labels (Definition 3.1). It is an interned handle — comparable,
// 4 bytes, usable as a map key — whose parts live in the intern table.
// The zero DTV is the empty derived type variable (empty base, ε path).
type DTV struct {
	ref intern.Ref
}

// MakeDTV builds Base.l1.l2...
func MakeDTV(base Var, labels ...label.Label) DTV {
	return DTV{ref: intern.DTV(intern.Intern(string(base)), intern.Word(labels))}
}

// BaseDTV builds the label-free derived type variable of base.
func BaseDTV(base Var) DTV {
	return DTV{ref: intern.DTV(intern.Intern(string(base)), 0)}
}

// Append returns d.l as a fresh derived type variable.
func (d DTV) Append(l label.Label) DTV {
	return DTV{ref: intern.DTVAppend(d.ref, l)}
}

// Concat returns d.w.
func (d DTV) Concat(w label.Word) DTV {
	out := d
	for _, l := range w {
		out = out.Append(l)
	}
	return out
}

// WithBase returns d with its base variable replaced and its path kept:
// the substitution step of scheme instantiation and canonical renaming.
func (d DTV) WithBase(base Var) DTV {
	return DTV{ref: intern.DTVWithBase(d.ref, intern.Intern(string(base)))}
}

// withBaseSym is WithBase for an already-interned base.
func (d DTV) withBaseSym(base intern.Sym) DTV {
	return DTV{ref: intern.DTVWithBase(d.ref, base)}
}

// Parent returns the one-shorter prefix of d and reports whether d had
// any labels to strip.
func (d DTV) Parent() (DTV, label.Label, bool) {
	p, l, ok := intern.DTVParent(d.ref)
	return DTV{ref: p}, l, ok
}

// IsBase reports whether d carries no labels.
func (d DTV) IsBase() bool { return intern.DTVDepth(d.ref) == 0 }

// Base returns d's base variable, resolved from the intern table.
func (d DTV) Base() Var { return Var(intern.StringOf(intern.DTVBase(d.ref))) }

// BaseSym returns d's base variable as its interned symbol; hot paths
// key maps by it without materializing the name.
func (d DTV) BaseSym() intern.Sym { return intern.DTVBase(d.ref) }

// Path materializes d's label word. The slice is fresh; mutating it
// does not affect d.
func (d DTV) Path() label.Word { return label.Word(intern.WordLabels(intern.DTVWord(d.ref))) }

// PathLen reports the length of d's label word in O(1).
func (d DTV) PathLen() int { return intern.DTVDepth(d.ref) }

// PathRef reports d's label word as its interned id.
func (d DTV) PathRef() intern.WordRef { return intern.DTVWord(d.ref) }

// Variance reports ⟨path⟩, the variance of d's label word, precomputed
// at intern time.
func (d DTV) Variance() label.Variance { return intern.DTVVariance(d.ref) }

// Equal reports structural equality; interning makes it d == e.
func (d DTV) Equal(e DTV) bool { return d == e }

// String renders "base.l1.l2" in the paper's notation.
func (d DTV) String() string { return intern.DTVString(d.ref) }

// ParseDTV parses the String form. Base variable names may not contain
// '.'.
func ParseDTV(s string) (DTV, error) {
	parts := strings.Split(s, ".")
	if parts[0] == "" {
		return DTV{}, fmt.Errorf("constraints: empty base variable in %q", s)
	}
	d := BaseDTV(Var(parts[0]))
	for _, p := range parts[1:] {
		l, err := label.Parse(p)
		if err != nil {
			return DTV{}, err
		}
		d = d.Append(l)
	}
	return d, nil
}

// Constraint is either a subtype constraint L ⊑ R, or an additive
// constraint Add/Sub(X, Y; Z) (Appendix A.6). Capability constraints
// VAR d are represented as d ⊑ d (reflexivity registers the derived
// variable and all its prefixes with the solver). Constraints are
// comparable values (interned DTVs plus a kind tag) and key the
// constraint-set dedup index directly; build them with the
// constructors, which leave unused operands zero.
type Constraint struct {
	Kind ConstraintKind
	// Sub constraint operands.
	L, R DTV
	// Additive constraint operands (X op Y = Z).
	X, Y, Z DTV
}

// ConstraintKind discriminates Constraint.
type ConstraintKind uint8

const (
	// KindSub is L ⊑ R.
	KindSub ConstraintKind = iota
	// KindAdd is Add(X, Y; Z): Z = X + Y at the value level.
	KindAdd
	// KindSubtract is Sub(X, Y; Z): Z = X - Y at the value level.
	KindSubtract
)

// Sub returns the subtype constraint l ⊑ r.
func Sub(l, r DTV) Constraint { return Constraint{Kind: KindSub, L: l, R: r} }

// HasVar returns the capability constraint VAR d, encoded as d ⊑ d.
func HasVar(d DTV) Constraint { return Constraint{Kind: KindSub, L: d, R: d} }

// Add returns the additive constraint Add(x, y; z).
func Add(x, y, z DTV) Constraint { return Constraint{Kind: KindAdd, X: x, Y: y, Z: z} }

// Subtract returns the additive constraint Sub(x, y; z).
func Subtract(x, y, z DTV) Constraint { return Constraint{Kind: KindSubtract, X: x, Y: y, Z: z} }

// String renders the constraint in the paper's ASCII notation.
func (c Constraint) String() string {
	switch c.Kind {
	case KindSub:
		return c.L.String() + " <= " + c.R.String()
	case KindAdd:
		return fmt.Sprintf("Add(%s, %s; %s)", c.X, c.Y, c.Z)
	case KindSubtract:
		return fmt.Sprintf("Sub(%s, %s; %s)", c.X, c.Y, c.Z)
	default:
		return fmt.Sprintf("constraint(%d)", c.Kind)
	}
}

// ParseConstraint parses "l <= r" (also accepting "⊑" and "<:") and
// "Add(x, y; z)" / "Sub(x, y; z)".
func ParseConstraint(s string) (Constraint, error) {
	s = strings.TrimSpace(s)
	for _, pre := range []struct {
		prefix string
		kind   ConstraintKind
	}{{"Add(", KindAdd}, {"Sub(", KindSubtract}} {
		if strings.HasPrefix(s, pre.prefix) && strings.HasSuffix(s, ")") {
			body := s[len(pre.prefix) : len(s)-1]
			semi := strings.IndexByte(body, ';')
			if semi < 0 {
				return Constraint{}, fmt.Errorf("constraints: malformed additive constraint %q", s)
			}
			args := strings.Split(body[:semi], ",")
			if len(args) != 2 {
				return Constraint{}, fmt.Errorf("constraints: additive constraint needs 2 sources: %q", s)
			}
			x, err := ParseDTV(strings.TrimSpace(args[0]))
			if err != nil {
				return Constraint{}, err
			}
			y, err := ParseDTV(strings.TrimSpace(args[1]))
			if err != nil {
				return Constraint{}, err
			}
			z, err := ParseDTV(strings.TrimSpace(body[semi+1:]))
			if err != nil {
				return Constraint{}, err
			}
			return Constraint{Kind: pre.kind, X: x, Y: y, Z: z}, nil
		}
	}
	for _, sep := range []string{"⊑", "<=", "<:"} {
		if i := strings.Index(s, sep); i >= 0 {
			l, err := ParseDTV(strings.TrimSpace(s[:i]))
			if err != nil {
				return Constraint{}, err
			}
			r, err := ParseDTV(strings.TrimSpace(s[i+len(sep):]))
			if err != nil {
				return Constraint{}, err
			}
			return Sub(l, r), nil
		}
	}
	return Constraint{}, fmt.Errorf("constraints: cannot parse %q", s)
}

// Set is a deduplicated constraint set over some collection of type
// variables (Definition 3.3). The zero value is ready to use.
// Deduplication keys a precomputed 64-bit hash of the comparable
// Constraint value — mixing the kind tag and the five interned operand
// handles — with a full-key equality check on hash equality, so the
// runtime never hashes the 24-byte struct itself (the aeshash over
// large map keys that used to dominate insert-heavy profiles). Same
// collision discipline as internal/lru: the hash only groups, equality
// decides.
type Set struct {
	list []Constraint
	// seen maps a constraint's hash64 to its index in list; collide
	// chains the (rare) later entries whose hashes coincide with an
	// earlier one's. seen == nil means the index has not been
	// materialized (SubstituteBases fast paths hand out lists that are
	// already distinct); the first mutation rebuilds it.
	seen    map[uint64]int32
	collide map[uint64][]int32
}

// hash64 mixes the constraint into a 64-bit dedup key. Operands are
// 4-byte interned handles, so two multiply-xor rounds over packed
// halves plus a splitmix64-style finalizer give full avalanche without
// touching memory.
func (c Constraint) hash64() uint64 {
	h := uint64(c.Kind) + 0x9e3779b97f4a7c15
	h = (h ^ (uint64(c.L.ref)<<32 | uint64(c.R.ref))) * 0x100000001b3
	h = (h ^ (uint64(c.X.ref)<<32 | uint64(c.Y.ref))) * 0x100000001b3
	h = (h ^ uint64(c.Z.ref)) * 0x100000001b3
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// buildIndex materializes the membership index over list, which is
// already deduplicated by invariant.
func (s *Set) buildIndex() {
	s.seen = make(map[uint64]int32, len(s.list)+1)
	for i, old := range s.list {
		h := old.hash64()
		if _, ok := s.seen[h]; ok {
			if s.collide == nil {
				s.collide = map[uint64][]int32{}
			}
			s.collide[h] = append(s.collide[h], int32(i))
		} else {
			s.seen[h] = int32(i)
		}
	}
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// ParseSet parses one constraint per line; blank lines and lines
// starting with "//" or ";" are skipped. Intended for tests and
// examples written in the paper's notation.
func ParseSet(text string) (*Set, error) {
	s := NewSet()
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, ";") {
			continue
		}
		c, err := ParseConstraint(line)
		if err != nil {
			return nil, err
		}
		s.Insert(c)
	}
	return s, nil
}

// MustParseSet panics on parse errors; for statically known text.
func MustParseSet(text string) *Set {
	s, err := ParseSet(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Insert adds c if not already present and reports whether it was new.
func (s *Set) Insert(c Constraint) bool {
	if s.seen == nil {
		// Sets produced by the SubstituteBases fast paths carry a list
		// of already-distinct constraints and no index; build it on the
		// first mutation that needs one.
		s.buildIndex()
	}
	h := c.hash64()
	if i, ok := s.seen[h]; ok {
		if s.list[i] == c {
			return false
		}
		for _, j := range s.collide[h] {
			if s.list[j] == c {
				return false
			}
		}
		if s.collide == nil {
			s.collide = map[uint64][]int32{}
		}
		s.collide[h] = append(s.collide[h], int32(len(s.list)))
		s.list = append(s.list, c)
		return true
	}
	s.seen[h] = int32(len(s.list))
	s.list = append(s.list, c)
	return true
}

// AddSub is shorthand for Insert(Sub(l, r)).
func (s *Set) AddSub(l, r DTV) bool { return s.Insert(Sub(l, r)) }

// InsertAll merges other into s.
func (s *Set) InsertAll(other *Set) {
	if other == nil {
		return
	}
	for _, c := range other.list {
		s.Insert(c)
	}
}

// Constraints returns the constraints in insertion order. The slice is
// shared; callers must not mutate it.
func (s *Set) Constraints() []Constraint {
	if s == nil {
		return nil
	}
	return s.list
}

// Subtypes returns only the subtype constraints.
func (s *Set) Subtypes() []Constraint {
	var out []Constraint
	for _, c := range s.list {
		if c.Kind == KindSub {
			out = append(out, c)
		}
	}
	return out
}

// EachSubtype invokes f on every subtype constraint in insertion order
// without allocating (the hot-loop variant of Subtypes).
func (s *Set) EachSubtype(f func(Constraint)) {
	if s == nil {
		return
	}
	for _, c := range s.list {
		if c.Kind == KindSub {
			f(c)
		}
	}
}

// Additive returns only the Add/Sub constraints.
func (s *Set) Additive() []Constraint {
	var out []Constraint
	for _, c := range s.list {
		if c.Kind != KindSub {
			out = append(out, c)
		}
	}
	return out
}

// Len reports the number of constraints.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// Has reports membership.
func (s *Set) Has(c Constraint) bool {
	if s == nil {
		return false
	}
	if s.seen == nil {
		// Unindexed sets (SubstituteBases fast-path output) may be read
		// concurrently; scan rather than mutate.
		for _, old := range s.list {
			if old == c {
				return true
			}
		}
		return false
	}
	h := c.hash64()
	if i, ok := s.seen[h]; ok {
		if s.list[i] == c {
			return true
		}
		for _, j := range s.collide[h] {
			if s.list[j] == c {
				return true
			}
		}
	}
	return false
}

// Vars returns the set of base variables mentioned, sorted.
func (s *Set) Vars() []Var {
	seen := map[intern.Sym]struct{}{}
	add := func(d DTV) {
		if y := d.BaseSym(); y != 0 {
			seen[y] = struct{}{}
		}
	}
	for _, c := range s.list {
		add(c.L)
		add(c.R)
		add(c.X)
		add(c.Y)
		add(c.Z)
	}
	out := make([]Var, 0, len(seen))
	for y := range seen {
		out = append(out, Var(intern.StringOf(y)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep-enough copy (constraints are immutable values).
func (s *Set) Clone() *Set {
	out := NewSet()
	out.InsertAll(s)
	return out
}

// substMemoSmall bounds the linear-scan rename memo of SubstituteBases;
// past it the memo spills into a map. Generated constraint sets
// typically mention a handful to a few dozen distinct bases, so the
// common case never touches a hash table at all.
const substMemoSmall = 24

// SubstituteBases rewrites every base variable through f (used for
// callsite tagging and scheme instantiation, §A.4). f's results are
// memoized per base symbol, so the rename is computed once per variable
// rather than once per occurrence.
//
// Two fast paths keep this off the map-hashing profile: the per-symbol
// memo is a small linear-scanned vector (no per-occurrence map lookup
// on the common no-substitution and few-variables paths), and when the
// rename is the identity or injective over the set's bases the output
// list is built directly — a deduplicated input stays deduplicated, so
// the output's membership index is rebuilt lazily only if someone later
// mutates it.
func (s *Set) SubstituteBases(f func(Var) Var) *Set {
	if s == nil || len(s.list) == 0 {
		return NewSet()
	}
	var (
		keys    [substMemoSmall]intern.Sym
		vals    [substMemoSmall]intern.Sym
		nk      int
		big     map[intern.Sym]intern.Sym
		changed bool
	)
	lookup := func(y intern.Sym) intern.Sym {
		if big != nil {
			if ny, ok := big[y]; ok {
				return ny
			}
		} else {
			for i := 0; i < nk; i++ {
				if keys[i] == y {
					return vals[i]
				}
			}
		}
		ny := intern.Intern(string(f(Var(intern.StringOf(y)))))
		if ny != y {
			changed = true
		}
		switch {
		case big != nil:
			big[y] = ny
		case nk < substMemoSmall:
			keys[nk], vals[nk] = y, ny
			nk++
		default:
			big = make(map[intern.Sym]intern.Sym, 2*substMemoSmall)
			for i := 0; i < nk; i++ {
				big[keys[i]] = vals[i]
			}
			big[y] = ny
		}
		return ny
	}
	sub := func(d DTV) DTV {
		y := d.BaseSym()
		ny := lookup(y)
		if ny == y {
			return d
		}
		return d.withBaseSym(ny)
	}
	list := make([]Constraint, 0, len(s.list))
	for _, c := range s.list {
		switch c.Kind {
		case KindSub:
			list = append(list, Sub(sub(c.L), sub(c.R)))
		default:
			list = append(list, Constraint{Kind: c.Kind, X: sub(c.X), Y: sub(c.Y), Z: sub(c.Z)})
		}
	}
	if !changed || substInjective(vals[:nk], big) {
		// Distinct constraints map to distinct constraints: the list is
		// already a valid set; membership index materializes lazily.
		return &Set{list: list}
	}
	// A non-injective rename may have collapsed constraints; rebuild
	// with full deduplication.
	out := NewSet()
	for _, c := range list {
		out.Insert(c)
	}
	return out
}

// substInjective reports whether the collected base rename maps
// distinct sources to distinct targets (then DTVs, and hence
// constraints, cannot collide under it).
func substInjective(small []intern.Sym, big map[intern.Sym]intern.Sym) bool {
	if big != nil {
		seen := make(map[intern.Sym]struct{}, len(big))
		for _, ny := range big {
			if _, dup := seen[ny]; dup {
				return false
			}
			seen[ny] = struct{}{}
		}
		return true
	}
	for i := range small {
		for j := i + 1; j < len(small); j++ {
			if small[i] == small[j] {
				return false
			}
		}
	}
	return true
}

// String renders one constraint per line, sorted, for stable output.
func (s *Set) String() string {
	lines := make([]string, 0, s.Len())
	for _, c := range s.Constraints() {
		lines = append(lines, c.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Scheme is a recursively constrained type scheme ∀α.C ⇒ Root
// (Definition 3.4). Existential ("internal") variables synthesized by
// constraint simplification are listed in Existential; all other
// non-Root, non-constant variables in C are universally quantified.
type Scheme struct {
	// Root is the type variable the scheme describes (a procedure).
	Root Var
	// Constraints is the simplified constraint set C.
	Constraints *Set
	// Existential lists variables bound by ∃ inside C (Figure 2's τ).
	Existential []Var
}

// String renders "∀F. (∃τ. C) ⇒ F" with C inline.
func (sc *Scheme) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "∀%s.", sc.Root)
	if len(sc.Existential) > 0 {
		ex := make([]string, len(sc.Existential))
		for i, v := range sc.Existential {
			ex[i] = string(v)
		}
		fmt.Fprintf(&b, " (∃%s.", strings.Join(ex, ","))
	}
	cs := sc.Constraints.String()
	if cs == "" {
		cs = "⊤"
	}
	fmt.Fprintf(&b, " {%s}", strings.ReplaceAll(cs, "\n", " ∧ "))
	if len(sc.Existential) > 0 {
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " ⇒ %s", sc.Root)
	return b.String()
}

// Instantiate returns the scheme's constraints with every quantified
// variable (root, existentials, and any other free variable) renamed by
// suffixing tag, implementing callsite-tagged instantiation
// (Example A.4). Variables for which keep returns true (e.g. globals and
// type constants) are left untouched.
func (sc *Scheme) Instantiate(tag string, keep func(Var) bool) *Set {
	return sc.Constraints.SubstituteBases(func(v Var) Var {
		if keep != nil && keep(v) {
			return v
		}
		return Var(string(v) + tag)
	})
}
