package constraints

import (
	"encoding/binary"
	"fmt"

	"retypd/internal/intern"
)

// Wire encoding of derived type variables, constraints and constraint
// sets — the canonical byte form persisted cache entries are written
// in. The encoding is a pure function of rendered content (base names
// as bytes, paths as label wire forms), never of intern ids, so a blob
// written by one process decodes to equivalent values in any other;
// decoding re-interns through the process-local table. Insertion order
// is preserved exactly: an encode→decode→encode round trip is
// byte-identical, which the property tests pin down.

// AppendDTVWire appends d's canonical wire form to buf:
// uvarint(len(base)) ++ base bytes ++ word wire (see
// intern.AppendWordWire).
func AppendDTVWire(buf []byte, d DTV) []byte {
	base := intern.StringOf(intern.DTVBase(d.ref))
	buf = binary.AppendUvarint(buf, uint64(len(base)))
	buf = append(buf, base...)
	return intern.AppendWordWire(buf, intern.DTVWord(d.ref))
}

// DecodeDTVWire re-interns one derived type variable from the front of
// data, returning the bytes consumed.
func DecodeDTVWire(data []byte) (DTV, int, error) {
	ln, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < ln {
		return DTV{}, 0, fmt.Errorf("constraints: truncated base variable in wire form")
	}
	base := intern.InternBytes(data[n : n+int(ln)])
	n += int(ln)
	w, m, err := intern.DecodeWordWire(data[n:])
	if err != nil {
		return DTV{}, 0, err
	}
	n += m
	return DTV{ref: intern.DTV(base, w)}, n, nil
}

// AppendWire appends the set's canonical wire form to buf:
// uvarint(count) then each constraint (kind byte + its operand DTVs) in
// insertion order.
func (s *Set) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.Len()))
	for _, c := range s.Constraints() {
		buf = append(buf, byte(c.Kind))
		switch c.Kind {
		case KindSub:
			buf = AppendDTVWire(buf, c.L)
			buf = AppendDTVWire(buf, c.R)
		default:
			buf = AppendDTVWire(buf, c.X)
			buf = AppendDTVWire(buf, c.Y)
			buf = AppendDTVWire(buf, c.Z)
		}
	}
	return buf
}

// DecodeSetWire re-interns one constraint set from the front of data,
// returning the bytes consumed. The decoded set preserves the encoded
// insertion order. Decoding appends without consulting the membership
// index (producers only encode deduplicated sets, and the files the
// blobs travel in are checksummed); the index materializes lazily on
// the first mutation, exactly like the SubstituteBases fast paths.
func DecodeSetWire(data []byte) (*Set, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("constraints: truncated set length in wire form")
	}
	if count > uint64(len(data)) {
		return nil, 0, fmt.Errorf("constraints: set length %d exceeds wire form size", count)
	}
	s := &Set{list: make([]Constraint, 0, count)}
	for i := uint64(0); i < count; i++ {
		if n >= len(data) {
			return nil, 0, fmt.Errorf("constraints: truncated constraint in wire form")
		}
		kind := ConstraintKind(data[n])
		n++
		dec := func() (DTV, error) {
			d, m, err := DecodeDTVWire(data[n:])
			n += m
			return d, err
		}
		switch kind {
		case KindSub:
			l, err := dec()
			if err != nil {
				return nil, 0, err
			}
			r, err := dec()
			if err != nil {
				return nil, 0, err
			}
			s.list = append(s.list, Sub(l, r))
		case KindAdd, KindSubtract:
			x, err := dec()
			if err != nil {
				return nil, 0, err
			}
			y, err := dec()
			if err != nil {
				return nil, 0, err
			}
			z, err := dec()
			if err != nil {
				return nil, 0, err
			}
			s.list = append(s.list, Constraint{Kind: kind, X: x, Y: y, Z: z})
		default:
			return nil, 0, fmt.Errorf("constraints: unknown constraint kind %d in wire form", kind)
		}
	}
	return s, n, nil
}

// AppendSchemeWire appends sc's canonical wire form to buf:
// uvarint(len(root)) ++ root bytes ++ constraint-set wire ++
// uvarint(count) existential names. Like the set encoding it is a pure
// function of rendered content, and an encode→decode→encode round trip
// is byte-identical.
func AppendSchemeWire(buf []byte, sc *Scheme) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(sc.Root)))
	buf = append(buf, sc.Root...)
	buf = sc.Constraints.AppendWire(buf)
	buf = binary.AppendUvarint(buf, uint64(len(sc.Existential)))
	for _, v := range sc.Existential {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// DecodeSchemeWire decodes one scheme from the front of data, returning
// the bytes consumed.
func DecodeSchemeWire(data []byte) (*Scheme, int, error) {
	decStr := func(n int, what string) (string, int, error) {
		ln, m := binary.Uvarint(data[n:])
		if m <= 0 || uint64(len(data)-n-m) < ln {
			return "", 0, fmt.Errorf("constraints: truncated %s in scheme wire form", what)
		}
		n += m
		return string(data[n : n+int(ln)]), n + int(ln), nil
	}
	root, n, err := decStr(0, "root variable")
	if err != nil {
		return nil, 0, err
	}
	cs, m, err := DecodeSetWire(data[n:])
	if err != nil {
		return nil, 0, err
	}
	n += m
	count, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("constraints: truncated existential count in scheme wire form")
	}
	n += m
	if count > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("constraints: existential count %d exceeds wire form size", count)
	}
	sc := &Scheme{Root: Var(root), Constraints: cs}
	for i := uint64(0); i < count; i++ {
		var v string
		v, n, err = decStr(n, "existential variable")
		if err != nil {
			return nil, 0, err
		}
		sc.Existential = append(sc.Existential, Var(v))
	}
	return sc, n, nil
}
