package constraints

import (
	"encoding/binary"
	"fmt"

	"retypd/internal/intern"
)

// Wire encoding of derived type variables, constraints and constraint
// sets — the canonical byte form persisted cache entries are written
// in. The encoding is a pure function of rendered content (base names
// as bytes, paths as label wire forms), never of intern ids, so a blob
// written by one process decodes to equivalent values in any other;
// decoding re-interns through the process-local table. Insertion order
// is preserved exactly: an encode→decode→encode round trip is
// byte-identical, which the property tests pin down.

// AppendDTVWire appends d's canonical wire form to buf:
// uvarint(len(base)) ++ base bytes ++ word wire (see
// intern.AppendWordWire).
func AppendDTVWire(buf []byte, d DTV) []byte {
	base := intern.StringOf(intern.DTVBase(d.ref))
	buf = binary.AppendUvarint(buf, uint64(len(base)))
	buf = append(buf, base...)
	return intern.AppendWordWire(buf, intern.DTVWord(d.ref))
}

// DecodeDTVWire re-interns one derived type variable from the front of
// data, returning the bytes consumed.
func DecodeDTVWire(data []byte) (DTV, int, error) {
	ln, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < ln {
		return DTV{}, 0, fmt.Errorf("constraints: truncated base variable in wire form")
	}
	base := intern.Intern(string(data[n : n+int(ln)]))
	n += int(ln)
	w, m, err := intern.DecodeWordWire(data[n:])
	if err != nil {
		return DTV{}, 0, err
	}
	n += m
	return DTV{ref: intern.DTV(base, w)}, n, nil
}

// AppendWire appends the set's canonical wire form to buf:
// uvarint(count) then each constraint (kind byte + its operand DTVs) in
// insertion order.
func (s *Set) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(s.Len()))
	for _, c := range s.Constraints() {
		buf = append(buf, byte(c.Kind))
		switch c.Kind {
		case KindSub:
			buf = AppendDTVWire(buf, c.L)
			buf = AppendDTVWire(buf, c.R)
		default:
			buf = AppendDTVWire(buf, c.X)
			buf = AppendDTVWire(buf, c.Y)
			buf = AppendDTVWire(buf, c.Z)
		}
	}
	return buf
}

// DecodeSetWire re-interns one constraint set from the front of data,
// returning the bytes consumed. The decoded set preserves the encoded
// insertion order.
func DecodeSetWire(data []byte) (*Set, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("constraints: truncated set length in wire form")
	}
	s := NewSet()
	for i := uint64(0); i < count; i++ {
		if n >= len(data) {
			return nil, 0, fmt.Errorf("constraints: truncated constraint in wire form")
		}
		kind := ConstraintKind(data[n])
		n++
		dec := func() (DTV, error) {
			d, m, err := DecodeDTVWire(data[n:])
			n += m
			return d, err
		}
		switch kind {
		case KindSub:
			l, err := dec()
			if err != nil {
				return nil, 0, err
			}
			r, err := dec()
			if err != nil {
				return nil, 0, err
			}
			s.Insert(Sub(l, r))
		case KindAdd, KindSubtract:
			x, err := dec()
			if err != nil {
				return nil, 0, err
			}
			y, err := dec()
			if err != nil {
				return nil, 0, err
			}
			z, err := dec()
			if err != nil {
				return nil, 0, err
			}
			s.Insert(Constraint{Kind: kind, X: x, Y: y, Z: z})
		default:
			return nil, 0, fmt.Errorf("constraints: unknown constraint kind %d in wire form", kind)
		}
	}
	return s, n, nil
}
