package constraints

import (
	"strings"
	"testing"

	"retypd/internal/label"
)

// TestParseDTVRoundTrip exercises derived-type-variable parsing.
func TestParseDTVRoundTrip(t *testing.T) {
	for _, s := range []string{
		"F",
		"F.in_stack0",
		"close_last.in_stack0.load.σ32@4",
		"malloc.out_eax",
		"τ0.load.σ32@0",
	} {
		d, err := ParseDTV(s)
		if err != nil {
			t.Fatalf("ParseDTV(%q): %v", s, err)
		}
		if d.String() != s {
			t.Errorf("round trip %q → %q", s, d.String())
		}
	}
}

// TestConstraintParse exercises the three constraint forms.
func TestConstraintParse(t *testing.T) {
	c, err := ParseConstraint("a.load <= b")
	if err != nil || c.Kind != KindSub {
		t.Fatalf("sub parse failed: %v %v", c, err)
	}
	c, err = ParseConstraint("x ⊑ y.store.σ32@0")
	if err != nil || c.Kind != KindSub {
		t.Fatalf("unicode sub parse failed: %v %v", c, err)
	}
	c, err = ParseConstraint("Add(x, y; z)")
	if err != nil || c.Kind != KindAdd {
		t.Fatalf("add parse failed: %v %v", c, err)
	}
	if c.X.Base() != "x" || c.Y.Base() != "y" || c.Z.Base() != "z" {
		t.Errorf("add operands wrong: %v", c)
	}
	if _, err := ParseConstraint("nonsense"); err == nil {
		t.Error("expected error for junk input")
	}
}

// TestSetDedup: a Set deduplicates structurally equal constraints.
func TestSetDedup(t *testing.T) {
	s := NewSet()
	d1, _ := ParseDTV("a")
	d2, _ := ParseDTV("b.load")
	if !s.AddSub(d1, d2) {
		t.Error("first insert should be new")
	}
	if s.AddSub(d1, d2) {
		t.Error("second insert should dedup")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

// TestVarianceOfDTV: derived variables carry the variance of their
// label word.
func TestVarianceOfDTV(t *testing.T) {
	d, _ := ParseDTV("F.in_stack0.store")
	if d.Variance() != label.Covariant {
		t.Error("in.store has two ⊖ labels: ⊕ overall")
	}
	d, _ = ParseDTV("F.in_stack0")
	if d.Variance() != label.Contravariant {
		t.Error("in is ⊖")
	}
}

// TestSchemeInstantiate checks callsite tagging (Example A.4): bound
// variables are renamed, lattice constants are kept.
func TestSchemeInstantiate(t *testing.T) {
	cs := MustParseSet(`
		malloc.in_stack0 <= size_t
		τ0 <= malloc.out_eax
	`)
	sch := &Scheme{Root: "malloc", Constraints: cs, Existential: []Var{"τ0"}}
	inst := sch.Instantiate("@f!3", func(v Var) bool { return v == "size_t" })
	text := inst.String()
	if !strings.Contains(text, "malloc@f!3.in_stack0 <= size_t") {
		t.Errorf("root not tagged or constant renamed:\n%s", text)
	}
	if !strings.Contains(text, "τ0@f!3") {
		t.Errorf("existential not tagged:\n%s", text)
	}
	// Two instantiations must not share variables.
	inst2 := sch.Instantiate("@f!9", func(v Var) bool { return v == "size_t" })
	for _, c := range inst2.Subtypes() {
		if strings.Contains(c.String(), "@f!3") {
			t.Error("instantiations leaked into each other")
		}
	}
}

// TestSchemeString renders the ∀/∃ form.
func TestSchemeString(t *testing.T) {
	cs := MustParseSet("F.in_stack0 <= τ0")
	sch := &Scheme{Root: "F", Constraints: cs, Existential: []Var{"τ0"}}
	s := sch.String()
	for _, want := range []string{"∀F", "∃τ0", "⇒ F"} {
		if !strings.Contains(s, want) {
			t.Errorf("scheme rendering missing %q: %s", want, s)
		}
	}
}

// TestParseSetComments: comments and blanks are skipped.
func TestParseSetComments(t *testing.T) {
	s, err := ParseSet(`
		// comment
		; asm-style comment

		a <= b
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}
