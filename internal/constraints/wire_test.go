package constraints

import (
	"bytes"
	"math/rand"
	"testing"

	"retypd/internal/label"
)

func randDTV(rng *rand.Rand) DTV {
	bases := []Var{"f", "g_1", "τ0", "close@f!3", "f!eax@2", "¤0", "int"}
	d := BaseDTV(bases[rng.Intn(len(bases))])
	for i := rng.Intn(4); i > 0; i-- {
		switch rng.Intn(4) {
		case 0:
			d = d.Append(label.In("stack0"))
		case 1:
			d = d.Append(label.Out("eax"))
		case 2:
			d = d.Append(label.Load())
		default:
			d = d.Append(label.Field(32, 4*rng.Intn(8)))
		}
	}
	return d
}

// TestSetWireRoundTrip: encode→decode→encode is byte-stable, the
// decoded set is equal constraint-by-constraint in insertion order, and
// decoding consumes exactly the encoded bytes.
func TestSetWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		s := NewSet()
		for i := rng.Intn(30); i > 0; i-- {
			switch rng.Intn(3) {
			case 0:
				s.Insert(Sub(randDTV(rng), randDTV(rng)))
			case 1:
				s.Insert(Add(randDTV(rng), randDTV(rng), randDTV(rng)))
			default:
				s.Insert(HasVar(randDTV(rng)))
			}
		}
		enc := s.AppendWire(nil)
		got, n, err := DecodeSetWire(append(append([]byte(nil), enc...), 0x01))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		a, b := s.Constraints(), got.Constraints()
		if len(a) != len(b) {
			t.Fatalf("decoded %d constraints, want %d", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("constraint %d: %v ≠ %v", i, a[i], b[i])
			}
		}
		if re := got.AppendWire(nil); !bytes.Equal(re, enc) {
			t.Fatal("re-encode not byte-stable")
		}
	}
}
