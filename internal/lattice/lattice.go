// Package lattice implements the customizable auxiliary lattice Λ of
// atomic types used to decorate sketches (Noonan et al., PLDI 2016,
// §3.5, Appendix E).
//
// Λ is an arbitrary finite lattice. Retypd parameterizes type inference
// by Λ so that end users can model ad-hoc subtyping hierarchies (§2.8):
// C primitive names, API typedefs (HANDLE, SOCKET, FILE), and
// domain-specific semantic tags such as #FileDescriptor or #SuccessZ.
//
// A Lattice is built from a Builder by declaring elements and covering
// relations; the Builder completes the order into a full lattice by
// synthesizing join/meet tables (adding ⊤ and ⊥ as needed). Elements are
// interned; the zero Elem is the bottom of its lattice.
package lattice

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"retypd/internal/intern"
)

// Elem is an element of a Lattice, valid only with the Lattice that
// created it.
type Elem int32

// Lattice is a finite lattice of atomic types.
type Lattice struct {
	names []string
	index map[string]Elem
	// symIdx mirrors index keyed by interned symbol, so hot paths that
	// already hold a Sym can test constant-ness without materializing
	// the name.
	symIdx map[intern.Sym]Elem
	top    Elem
	bottom Elem
	// leq[a] is a bitset over elements b with a ≤ b.
	leq []bitset
	// join and meet are dense n×n tables.
	join []Elem
	meet []Elem
	// sig is a content hash of names + order, computed once by Build
	// (the lattice is immutable afterwards); see Signature.
	sig string
	// sigSym is sig interned in the process symbol table, so identity
	// checks and fingerprint mixing cost one uint32 instead of a
	// 64-byte string; see SigSym.
	sigSym intern.Sym
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) and(c bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] & c[i]
	}
	return out
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) iterate(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi*64 + i)
			w &^= 1 << uint(i)
		}
	}
}

// Builder accumulates elements and covering relations for a Lattice.
type Builder struct {
	names []string
	index map[string]int
	// above[i] lists declared j with i < j (direct subtype decls).
	above [][]int
}

// NewBuilder returns an empty Builder. "⊤" and "⊥" are implicitly
// present.
func NewBuilder() *Builder {
	b := &Builder{index: map[string]int{}}
	b.Add("⊥")
	b.Add("⊤")
	return b
}

// Add declares an element (idempotent) and returns the builder for
// chaining.
func (b *Builder) Add(name string) *Builder {
	if _, ok := b.index[name]; ok {
		return b
	}
	b.index[name] = len(b.names)
	b.names = append(b.names, name)
	b.above = append(b.above, nil)
	return b
}

// Below declares sub <: super, adding both elements if needed.
func (b *Builder) Below(sub, super string) *Builder {
	b.Add(sub)
	b.Add(super)
	b.above[b.index[sub]] = append(b.above[b.index[sub]], b.index[super])
	return b
}

// Build completes the declared order into a lattice. Every element is
// placed below ⊤ and above ⊥; joins and meets that are not unique in the
// declared DAG resolve to the least common ancestor set's minimum if
// unique, else ⊤ (for join) / ⊥ (for meet). Build reports an error if
// the declarations contain a cycle between distinct elements.
func (b *Builder) Build() (*Lattice, error) {
	n := len(b.names)
	l := &Lattice{
		names:  append([]string(nil), b.names...),
		index:  make(map[string]Elem, n),
		symIdx: make(map[intern.Sym]Elem, n),
	}
	for i, name := range l.names {
		l.index[name] = Elem(i)
		l.symIdx[intern.Intern(name)] = Elem(i)
	}
	l.bottom = l.index["⊥"]
	l.top = l.index["⊤"]

	// Reflexive-transitive closure of ≤ over the declaration DAG,
	// with ⊥ ≤ x ≤ ⊤ for all x.
	l.leq = make([]bitset, n)
	for i := 0; i < n; i++ {
		l.leq[i] = newBitset(n)
		l.leq[i].set(i)
		l.leq[i].set(int(l.top))
	}
	for i := 0; i < n; i++ {
		l.leq[int(l.bottom)].set(i)
	}
	// Floyd-Warshall-style closure (n is small: hundreds).
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			for _, j := range b.above[i] {
				for w := range l.leq[i] {
					add := l.leq[j][w] &^ l.leq[i][w]
					if add != 0 {
						l.leq[i][w] |= add
						changed = true
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && l.leq[i].has(j) && l.leq[j].has(i) {
				return nil, fmt.Errorf("lattice: cycle between %q and %q", l.names[i], l.names[j])
			}
		}
	}

	// Dense join/meet tables. join(a,b) = unique minimal common upper
	// bound if one exists, else ⊤. Dually for meet.
	geq := make([]bitset, n)
	for i := 0; i < n; i++ {
		geq[i] = newBitset(n)
	}
	for i := 0; i < n; i++ {
		l.leq[i].iterate(func(j int) { geq[j].set(i) })
	}
	l.join = make([]Elem, n*n)
	l.meet = make([]Elem, n*n)
	for a := 0; a < n; a++ {
		for c := a; c < n; c++ {
			ub := l.leq[a].and(l.leq[c])
			j := selectExtremum(ub, l.leq, l.top)
			l.join[a*n+c] = j
			l.join[c*n+a] = j
			lb := geq[a].and(geq[c])
			m := selectExtremum(lb, geq, l.bottom)
			l.meet[a*n+c] = m
			l.meet[c*n+a] = m
		}
	}

	// Content signature: element names plus the closed ≤ relation
	// identify the lattice's semantics completely (join/meet tables are
	// derived from them).
	h := sha256.New()
	for i, name := range l.names {
		fmt.Fprintf(h, "%d=%s;", i, name)
		for _, w := range l.leq[i] {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
	}
	l.sig = hex.EncodeToString(h.Sum(nil))
	l.sigSym = intern.Intern(l.sig)
	register(l)
	return l, nil
}

// registry maps lattice signatures to a representative built lattice of
// that signature. Persisted cache entries encode lattice elements by
// name plus the owning lattice's signature; decoding in a fresh process
// resolves the signature here, so any lattice the process has built is
// addressable. Two lattices with equal signatures have identical
// elements and ordering, so keeping the first one built is enough.
var (
	regMu    sync.RWMutex
	registry = map[string]*Lattice{}
)

func register(l *Lattice) {
	regMu.Lock()
	if _, ok := registry[l.sig]; !ok {
		registry[l.sig] = l
	}
	regMu.Unlock()
}

// BySignature returns a built lattice whose Signature equals sig, if
// any lattice with that signature has been built in this process.
// Decoders of persisted sketches use it to re-bind element names; an
// unknown signature means the entry cannot be used in this process
// (the matching lattice was never constructed) and is skipped.
func BySignature(sig string) (*Lattice, bool) {
	regMu.RLock()
	l, ok := registry[sig]
	regMu.RUnlock()
	return l, ok
}

// Signature returns a content hash identifying the lattice: two
// lattices with equal signatures have the same elements and ordering.
// Caches keyed on constraint-set fingerprints mix it in so entries
// computed under one lattice are never served to another.
func (l *Lattice) Signature() string { return l.sig }

// SigSym returns the signature as its interned symbol: a dense id with
// the same identification power as Signature within one process.
// Fingerprints mix it into cache keys instead of the hex string.
func (l *Lattice) SigSym() intern.Sym { return l.sigSym }

// selectExtremum picks the element of the candidate set that is below
// (w.r.t. rel) every other candidate, or fallback when no unique one
// exists.
func selectExtremum(cands bitset, rel []bitset, fallback Elem) Elem {
	best := -1
	cands.iterate(func(i int) {
		if best >= 0 {
			return
		}
		dominates := true
		cands.iterate(func(j int) {
			if !rel[i].has(j) {
				dominates = false
			}
		})
		if dominates {
			best = i
		}
	})
	if best < 0 {
		return fallback
	}
	return Elem(best)
}

// MustBuild is Build that panics on error; for statically known
// declarations.
func (b *Builder) MustBuild() *Lattice {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}

// Top returns ⊤.
func (l *Lattice) Top() Elem { return l.top }

// Bottom returns ⊥.
func (l *Lattice) Bottom() Elem { return l.bottom }

// Size reports the number of elements.
func (l *Lattice) Size() int { return len(l.names) }

// Elem interns name, reporting whether it is present.
func (l *Lattice) Elem(name string) (Elem, bool) {
	e, ok := l.index[name]
	return e, ok
}

// ElemSym is Elem for an already-interned name: the constant test used
// by the solver's hot paths, with no string materialization.
func (l *Lattice) ElemSym(y intern.Sym) (Elem, bool) {
	e, ok := l.symIdx[y]
	return e, ok
}

// MustElem returns the element named name, panicking if absent.
func (l *Lattice) MustElem(name string) Elem {
	e, ok := l.index[name]
	if !ok {
		panic(fmt.Sprintf("lattice: no element %q", name))
	}
	return e
}

// Name returns the display name of e.
func (l *Lattice) Name(e Elem) string { return l.names[e] }

// Leq reports a ≤ b.
func (l *Lattice) Leq(a, b Elem) bool { return l.leq[a].has(int(b)) }

// Join returns a ∨ b.
func (l *Lattice) Join(a, b Elem) Elem { return l.join[int(a)*len(l.names)+int(b)] }

// Meet returns a ∧ b.
func (l *Lattice) Meet(a, b Elem) Elem { return l.meet[int(a)*len(l.names)+int(b)] }

// JoinAll folds Join over elems, starting from ⊥.
func (l *Lattice) JoinAll(elems ...Elem) Elem {
	out := l.bottom
	for _, e := range elems {
		out = l.Join(out, e)
	}
	return out
}

// MeetAll folds Meet over elems, starting from ⊤.
func (l *Lattice) MeetAll(elems ...Elem) Elem {
	out := l.top
	for _, e := range elems {
		out = l.Meet(out, e)
	}
	return out
}

// Antichain reduces elems to its maximal antichain of minimal elements:
// comparable pairs are merged by keeping the smaller element, as used by
// the union-type policy (Example 4.2).
func (l *Lattice) Antichain(elems []Elem) []Elem {
	var out []Elem
	for _, e := range elems {
		keep := true
		for i := 0; i < len(out); i++ {
			if l.Leq(out[i], e) {
				keep = false
				break
			}
			if l.Leq(e, out[i]) {
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
				i--
			}
		}
		if keep {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Elements returns all element names in intern order (for tests and
// property checks).
func (l *Lattice) Elements() []Elem {
	out := make([]Elem, len(l.names))
	for i := range out {
		out[i] = Elem(i)
	}
	return out
}

// String summarizes the lattice size.
func (l *Lattice) String() string {
	return fmt.Sprintf("Λ(%d elements)", len(l.names))
}

// FormatElem renders joins/meets of elements for display, e.g.
// "int ∨ #SuccessZ".
func FormatElem(l *Lattice, e Elem) string { return l.Name(e) }

// FormatJoin renders a display string "a ∨ b ∨ …".
func FormatJoin(l *Lattice, es []Elem) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = l.Name(e)
	}
	return strings.Join(parts, " ∨ ")
}
