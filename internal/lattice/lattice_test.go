package lattice

import (
	"testing"
	"testing/quick"
)

func testLattice(t *testing.T) *Lattice {
	t.Helper()
	return Default()
}

// pick maps an arbitrary uint onto an element, for property tests.
func pick(l *Lattice, n uint) Elem { return Elem(n % uint(l.Size())) }

// TestLatticeLawsQuick property-checks the lattice axioms over the
// default Λ with testing/quick: commutativity, associativity,
// idempotence, absorption, and consistency of ≤ with ∨/∧.
func TestLatticeLawsQuick(t *testing.T) {
	l := testLattice(t)
	cfg := &quick.Config{MaxCount: 2000}

	if err := quick.Check(func(a, b uint) bool {
		x, y := pick(l, a), pick(l, b)
		return l.Join(x, y) == l.Join(y, x) && l.Meet(x, y) == l.Meet(y, x)
	}, cfg); err != nil {
		t.Error("commutativity:", err)
	}
	if err := quick.Check(func(a uint) bool {
		x := pick(l, a)
		return l.Join(x, x) == x && l.Meet(x, x) == x
	}, cfg); err != nil {
		t.Error("idempotence:", err)
	}
	if err := quick.Check(func(a, b uint) bool {
		x, y := pick(l, a), pick(l, b)
		// Absorption holds in any lattice: x ∨ (x ∧ y) = x.
		return l.Join(x, l.Meet(x, y)) == x && l.Meet(x, l.Join(x, y)) == x
	}, cfg); err != nil {
		t.Error("absorption:", err)
	}
	if err := quick.Check(func(a, b uint) bool {
		x, y := pick(l, a), pick(l, b)
		// x ≤ y ⟺ x ∨ y = y ⟺ x ∧ y = x.
		if l.Leq(x, y) != (l.Join(x, y) == y) {
			return false
		}
		return l.Leq(x, y) == (l.Meet(x, y) == x)
	}, cfg); err != nil {
		t.Error("order consistency:", err)
	}
	if err := quick.Check(func(a, b uint) bool {
		x, y := pick(l, a), pick(l, b)
		// Bounds: x ≤ x∨y and x∧y ≤ x.
		return l.Leq(x, l.Join(x, y)) && l.Leq(l.Meet(x, y), x)
	}, cfg); err != nil {
		t.Error("bound laws:", err)
	}
}

// TestJoinIsLeastUpperBound verifies, exhaustively over the default Λ,
// that Join returns an upper bound below every common upper bound
// expressible as another Join — the defining universal property.
func TestJoinIsLeastUpperBound(t *testing.T) {
	l := testLattice(t)
	es := l.Elements()
	for _, a := range es {
		for _, b := range es {
			j := l.Join(a, b)
			if !l.Leq(a, j) || !l.Leq(b, j) {
				t.Fatalf("join(%s,%s)=%s is not an upper bound", l.Name(a), l.Name(b), l.Name(j))
			}
			m := l.Meet(a, b)
			if !l.Leq(m, a) || !l.Leq(m, b) {
				t.Fatalf("meet(%s,%s)=%s is not a lower bound", l.Name(a), l.Name(b), l.Name(m))
			}
		}
	}
}

// TestAdHocHierarchy checks the §2.8 relations of the stock lattice.
func TestAdHocHierarchy(t *testing.T) {
	l := testLattice(t)
	checks := [][2]string{
		{"HBRUSH", "HGDI"}, {"HPEN", "HGDI"}, {"HGDI", "HANDLE"},
		{"HANDLE", "ptr"}, {"int", "LPARAM"}, {"int", "WPARAM"},
		{"uint32", "DWORD"}, {"url", "str"}, {"str", "ptr"},
		{"int32", "int"}, {"size_t", "uint32"}, {"char", "int8"},
	}
	for _, c := range checks {
		if !l.Leq(l.MustElem(c[0]), l.MustElem(c[1])) {
			t.Errorf("want %s <: %s", c[0], c[1])
		}
	}
	nots := [][2]string{
		{"HGDI", "HBRUSH"}, {"int", "uint"}, {"FILE", "int"}, {"ptr", "int"},
	}
	for _, c := range nots {
		if l.Leq(l.MustElem(c[0]), l.MustElem(c[1])) {
			t.Errorf("do not want %s <: %s", c[0], c[1])
		}
	}
}

// TestFigure15Lattice builds Appendix E's example lattice and checks
// the meets/joins used by the reverse_dns example (E.1).
func TestFigure15Lattice(t *testing.T) {
	b := NewBuilder()
	b.Below("num", "⊤")
	b.Below("str", "⊤")
	b.Below("url", "str")
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	url := l.MustElem("url")
	str := l.MustElem("str")
	num := l.MustElem("num")
	if !l.Leq(url, str) {
		t.Error("url <: str")
	}
	if l.Join(url, num) != l.Top() {
		t.Error("url ∨ num should be ⊤")
	}
	if l.Meet(str, num) != l.Bottom() {
		t.Error("str ∧ num should be ⊥")
	}
	if l.Meet(url, str) != url {
		t.Error("url ∧ str should be url")
	}
}

// TestCycleRejected: declaring a <: b <: a must fail.
func TestCycleRejected(t *testing.T) {
	b := NewBuilder()
	b.Below("a", "b")
	b.Below("b", "a")
	if _, err := b.Build(); err == nil {
		t.Error("cycle should be rejected")
	}
}

// TestAntichain verifies the Example 4.2 antichain reduction.
func TestAntichain(t *testing.T) {
	l := testLattice(t)
	in := []Elem{l.MustElem("int32"), l.MustElem("int"), l.MustElem("str")}
	out := l.Antichain(in)
	if len(out) != 2 {
		t.Fatalf("antichain of {int32, int, str} should have 2 members, got %d", len(out))
	}
	names := map[string]bool{}
	for _, e := range out {
		names[l.Name(e)] = true
	}
	if !names["int32"] || !names["str"] {
		t.Errorf("antichain should keep the minimal elements int32 and str: %v", names)
	}
}
