package lattice

// Default constructs the stock Λ used by the reproduction: C primitive
// type names, common POSIX/Windows typedefs (§2.8's ad-hoc hierarchies,
// including the GDI handle family), and the semantic tags used in the
// paper's examples (#FileDescriptor, #SuccessZ, #signal-number).
//
// The paper's production lattice has "hundreds of elements" (§3.5); this
// one is a representative core that callers can extend through
// DefaultBuilder before building.
//
// The lattice is built once at package initialization and shared: it is
// immutable after Build, every Infer call with a nil Config.Lattice
// resolves to this one value, and eager construction registers its
// signature before any persisted cache is loaded (a loader can only
// keep sketch entries whose lattice is already built — see
// BySignature). Callers extending the stock Λ go through
// DefaultBuilder, which is unaffected.
func Default() *Lattice { return defaultLattice }

var defaultLattice = DefaultBuilder().MustBuild()

// DefaultBuilder returns a Builder pre-populated with the stock Λ so
// that callers can add domain-specific elements (the run-time
// extensibility called out in §2.8) before Build.
func DefaultBuilder() *Builder {
	b := NewBuilder()

	// Integral tower. num32 is the generic 32-bit scalar; int/uint and
	// the sized variants refine it. Following TIE's lattice stratification
	// coarsely: ⊥ <: intN <: int-family <: num-family <: ⊤.
	for _, decl := range [][2]string{
		{"num8", "⊤"}, {"num16", "⊤"}, {"num32", "⊤"}, {"num64", "⊤"},
		{"int", "num32"}, {"uint", "num32"},
		{"int8", "num8"}, {"uint8", "num8"},
		{"int16", "num16"}, {"uint16", "num16"},
		{"int32", "int"}, {"uint32", "uint"},
		{"int64", "num64"}, {"uint64", "num64"},
		{"char", "int8"}, {"bool", "int8"},
		{"short", "int16"},
		{"long", "int32"},
		{"float", "num32"}, {"double", "num64"},
		{"code", "⊤"},
	} {
		b.Below(decl[0], decl[1])
	}

	// Pointer-ish scalars. ptr is the generic data pointer; str is a
	// char pointer refinement used by the Appendix E example lattice
	// (Figure 15: ⊥ <: url <: str <: ⊤, num <: ⊤).
	b.Below("ptr", "num32")
	b.Below("str", "ptr")
	b.Below("url", "str")

	// POSIX/libc typedefs.
	b.Below("size_t", "uint32")
	b.Below("ssize_t", "int32")
	b.Below("time_t", "int32")
	b.Below("off_t", "int32")
	b.Below("pid_t", "int32")
	b.Below("FILE", "⊤")
	b.Below("SOCKET", "uint32")

	// Windows ad-hoc handle hierarchy (§2.8): specific GDI handles are
	// subtypes of the generic HGDI, all handles below HANDLE (itself a
	// void* typedef); WPARAM/LPARAM/DWORD are generic 32-bit supertypes.
	b.Below("HANDLE", "ptr")
	b.Below("HGDI", "HANDLE")
	b.Below("HBRUSH", "HGDI")
	b.Below("HPEN", "HGDI")
	b.Below("HFONT", "HGDI")
	b.Below("HWND", "HANDLE")
	b.Below("int", "LPARAM")
	b.Below("int", "WPARAM")
	b.Below("LPARAM", "⊤")
	b.Below("WPARAM", "⊤")
	b.Below("uint32", "DWORD")
	b.Below("DWORD", "⊤")

	// Semantic purpose tags from the paper's examples. They sit directly
	// under ⊤ and are combined with scalar names by meets, e.g.
	// int ∧ #FileDescriptor (Figure 2).
	b.Below("#FileDescriptor", "⊤")
	b.Below("#SuccessZ", "⊤")
	b.Below("#signal-number", "⊤")
	b.Below("#ErrnoZ", "⊤")

	return b
}
