// Package eval is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§6) on the synthetic corpus,
// scoring Retypd and the re-implemented baselines with the TIE metrics
// and applying the §6.2 cluster-averaging methodology.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"retypd/internal/asm"
	"retypd/internal/baselines"
	"retypd/internal/corpus"
	"retypd/internal/ctype"
	"retypd/internal/lattice"
	"retypd/internal/metrics"
	"retypd/internal/sketch"
)

// BenchScore is one benchmark's aggregate under one system.
type BenchScore struct {
	Bench   string
	Cluster string
	Insts   int
	Agg     metrics.Aggregate
	// BodyDedupHits/Misses carry the solver's per-run whole-body dedup
	// stats (zero for non-solver systems); RunSuite aggregates them.
	BodyDedupHits, BodyDedupMisses uint64
}

// ScoreOutcome pairs the ground truth of bench with the system's
// inferred sketches and accumulates the metrics.
func ScoreOutcome(o *baselines.Outcome, bench *corpus.Benchmark) metrics.Aggregate {
	sc := &metrics.Scorer{Lat: o.Lat}
	conv := ctype.NewConverter(o.Lat)
	var agg metrics.Aggregate

	// Pair parameter indices with formal locations: stack slots in
	// offset order, then register formals.
	locsOf := func(proc string) []string {
		var out []string
		for _, l := range o.Formals[proc] {
			out = append(out, l.ParamName())
		}
		return out
	}

	for _, truth := range bench.Truths {
		var sk *sketch.Sketch
		switch truth.Kind {
		case "param":
			locs := locsOf(truth.Func)
			if truth.Index < len(locs) {
				sk = o.ParamSk(truth.Func, locs[truth.Index])
			}
		case "ret":
			sk = o.OutSk(truth.Func)
		}
		var displayed *ctype.Type
		if sk == nil {
			sk = sketch.NewTop(o.Lat)
			displayed = ctype.Unknown()
		} else if truth.Kind == "param" {
			displayed = conv.ConvertParam(sk)
		} else {
			displayed = conv.FromSketch(sk)
		}
		agg.Add(sc.Score(sk, displayed, truth))
	}
	return agg
}

// RunSystem executes a system over benchmarks and scores each.
func RunSystem(sys baselines.System, benches []*corpus.Benchmark, lat *lattice.Lattice) []BenchScore {
	var out []BenchScore
	for _, b := range benches {
		prog, err := asm.Parse(b.Source)
		if err != nil {
			panic(fmt.Sprintf("corpus %s does not parse: %v", b.Name, err))
		}
		o := sys.Run(prog, lat)
		out = append(out, BenchScore{
			Bench:           b.Name,
			Cluster:         b.Cluster,
			Insts:           b.Insts,
			Agg:             ScoreOutcome(o, b),
			BodyDedupHits:   o.BodyDedupHits,
			BodyDedupMisses: o.BodyDedupMisses,
		})
	}
	return out
}

// GroupScore is the cluster-averaged summary of a benchmark group.
type GroupScore struct {
	Distance    float64
	Interval    float64
	Conserv     float64
	PtrAcc      float64
	ConstRecall float64
	Points      int
}

// ClusterAverage applies the §6.2 methodology: benchmarks in a cluster
// are first averaged into a single data point, then points are
// averaged.
func ClusterAverage(scores []BenchScore) GroupScore {
	type point struct {
		dist, iv, cons, ptr, constr float64
		n                           int
	}
	byCluster := map[string][]point{}
	var order []string
	for _, s := range scores {
		key := s.Cluster
		if key == "" {
			key = "·" + s.Bench
		}
		if _, ok := byCluster[key]; !ok {
			order = append(order, key)
		}
		p := point{
			dist: s.Agg.MeanDistance(),
			iv:   s.Agg.MeanInterval(),
			cons: s.Agg.Conservativeness(),
			ptr:  s.Agg.PointerAccuracy(),
			n:    1,
		}
		if s.Agg.ConstTruth > 0 {
			p.constr = s.Agg.ConstRecall()
		} else {
			p.constr = 1
		}
		byCluster[key] = append(byCluster[key], p)
	}
	var g GroupScore
	for _, key := range order {
		pts := byCluster[key]
		var avg point
		for _, p := range pts {
			avg.dist += p.dist
			avg.iv += p.iv
			avg.cons += p.cons
			avg.ptr += p.ptr
			avg.constr += p.constr
		}
		k := float64(len(pts))
		g.Distance += avg.dist / k
		g.Interval += avg.iv / k
		g.Conserv += avg.cons / k
		g.PtrAcc += avg.ptr / k
		g.ConstRecall += avg.constr / k
		g.Points++
	}
	if g.Points > 0 {
		n := float64(g.Points)
		g.Distance /= n
		g.Interval /= n
		g.Conserv /= n
		g.PtrAcc /= n
		g.ConstRecall /= n
	}
	return g
}

// PlainAverage averages without clustering (Figure 10's "without
// clustering" row).
func PlainAverage(scores []BenchScore) GroupScore {
	var flat []BenchScore
	for _, s := range scores {
		s.Cluster = ""
		flat = append(flat, s)
	}
	return ClusterAverage(flat)
}

// Filter keeps the scores for which keep returns true.
func Filter(scores []BenchScore, keep func(BenchScore) bool) []BenchScore {
	var out []BenchScore
	for _, s := range scores {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// Table is a simple ASCII table builder.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len([]rune(c)); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SortScores orders scores by benchmark name for stable output.
func SortScores(s []BenchScore) {
	sort.Slice(s, func(i, j int) bool { return s[i].Bench < s[j].Bench })
}

func pct(x float64) string  { return fmt.Sprintf("%.0f%%", 100*x) }
func num2(x float64) string { return fmt.Sprintf("%.2f", x) }
func isSpec(name string) bool {
	return strings.Contains(name, ".") && name[0] >= '0' && name[0] <= '9'
}
