package eval

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"retypd/internal/asm"
	"retypd/internal/baselines"
	"retypd/internal/conc"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/solver"
)

// Config scales the experiments.
type Config struct {
	// Suite controls corpus generation.
	Suite corpus.SuiteOptions
	// Fig11Sizes are the program sizes (instructions) swept by the
	// scaling experiments.
	Fig11Sizes []int
	// Parallelism is the solver worker count used by the scaling
	// harness (0 = one per CPU, 1 = sequential).
	Parallelism int
}

// DefaultConfig is laptop-sized.
func DefaultConfig() Config {
	return Config{
		Suite:      corpus.DefaultSuite(),
		Fig11Sizes: []int{1000, 2000, 4000, 8000, 16000, 32000, 64000},
	}
}

// QuickConfig is for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		Suite:      corpus.SuiteOptions{Scale: 300, MaxClusterMembers: 3, Seed: 20160613},
		Fig11Sizes: []int{500, 1000, 2000, 4000},
	}
}

// SuiteScores runs every system over the generated suite once.
type SuiteScores struct {
	Benches []*corpus.Benchmark
	// PerSystem maps system name to per-benchmark scores.
	PerSystem map[string][]BenchScore
	Order     []string
	// SchemeCacheHits/Misses and ShapeCacheHits/Misses report the
	// suite-wide effectiveness of the two shared memo caches.
	SchemeCacheHits, SchemeCacheMisses uint64
	ShapeCacheHits, ShapeCacheMisses   uint64
	// BodyDedupHits/Misses sum the solver runs' whole-body dedup stats
	// across every benchmark and solver-backed system of the suite.
	BodyDedupHits, BodyDedupMisses uint64
}

// RunSuite generates the corpus and scores all systems. One
// solver.Engine is shared across every Infer run of the suite (all
// benchmarks, both solver-based systems): its scheme and shape memos
// are keyed by canonical constraint-set fingerprints (see the sharing
// contracts on pgraph.SimplifyCache and sketch.ShapeCache), so
// duplicate leaf procedures are simplified and shape-solved once for
// the whole suite instead of once per benchmark.
func RunSuite(cfg Config) *SuiteScores {
	lat := lattice.Default()
	benches := corpus.GenerateSuite(cfg.Suite)
	eng := solver.NewEngine(0, 0)
	// The suite never re-analyzes an edited program; the engine is a
	// pure cache sharer here, so skip per-run session snapshots.
	eng.DisableSessionRecording()
	systems := []baselines.System{
		baselines.RetypdEngine(eng),
		baselines.TIEStyleEngine(eng),
		baselines.RewardsStyle(0.6),
		baselines.Unify(),
	}
	out := &SuiteScores{Benches: benches, PerSystem: map[string][]BenchScore{}}
	for _, sys := range systems {
		scores := RunSystem(sys, benches, lat)
		SortScores(scores)
		out.PerSystem[sys.Name] = scores
		out.Order = append(out.Order, sys.Name)
		for _, s := range scores {
			out.BodyDedupHits += s.BodyDedupHits
			out.BodyDedupMisses += s.BodyDedupMisses
		}
	}
	out.SchemeCacheHits, out.SchemeCacheMisses = eng.SchemeCache().Stats()
	out.ShapeCacheHits, out.ShapeCacheMisses = eng.ShapeCache().Stats()
	return out
}

// Figure7 renders the benchmark inventory table.
func Figure7(cfg Config) string {
	benches := corpus.GenerateSuite(cfg.Suite)
	t := &Table{
		Title:   "Figure 7 — benchmark suite (paper sizes scaled by 1/" + fmt.Sprint(cfg.Suite.Scale) + ")",
		Headers: []string{"benchmark", "cluster", "instructions", "procs(truth vars)"},
	}
	for _, b := range benches {
		t.AddRow(b.Name, b.Cluster, fmt.Sprint(b.Insts), fmt.Sprint(len(b.Truths)))
	}
	return t.String()
}

// groupOf selects the Figure 8/9 benchmark groups.
func groupScores(scores []BenchScore, group string) []BenchScore {
	switch group {
	case "coreutils":
		return Filter(scores, func(s BenchScore) bool { return s.Cluster == "coreutils" })
	case "SPEC2006":
		return Filter(scores, func(s BenchScore) bool { return isSpec(s.Bench) })
	default:
		return scores
	}
}

// Figure8 renders mean distance and interval size per system per group
// (paper: Retypd 0.54/1.2 overall vs TIE 1.58/2.0, REWARDS 1.53,
// SecondWrite 1.70/1.7).
func Figure8(s *SuiteScores) string {
	t := &Table{
		Title:   "Figure 8 — distance to ground truth and interval size",
		Headers: []string{"system", "group", "distance", "interval"},
	}
	for _, group := range []string{"coreutils", "SPEC2006", "All"} {
		for _, name := range s.Order {
			g := ClusterAverage(groupScores(s.PerSystem[name], group))
			t.AddRow(name, group, num2(g.Distance), num2(g.Interval))
		}
	}
	return t.String()
}

// Figure9 renders conservativeness and pointer accuracy (paper:
// Retypd 95% / 88% overall, SecondWrite pointer accuracy 73%).
func Figure9(s *SuiteScores) string {
	t := &Table{
		Title:   "Figure 9 — conservativeness and multi-level pointer accuracy",
		Headers: []string{"system", "group", "conservativeness", "pointer accuracy"},
	}
	for _, group := range []string{"coreutils", "SPEC2006", "All"} {
		for _, name := range s.Order {
			g := ClusterAverage(groupScores(s.PerSystem[name], group))
			t.AddRow(name, group, pct(g.Conserv), pct(g.PtrAcc))
		}
	}
	return t.String()
}

// Figure10 renders the per-cluster table plus the clustered and
// unclustered overall rows for Retypd.
func Figure10(s *SuiteScores) string {
	scores := s.PerSystem["Retypd"]
	t := &Table{
		Title:   "Figure 10 — per-cluster metrics (Retypd)",
		Headers: []string{"cluster", "members", "distance", "interval", "conserv.", "ptr.acc.", "const"},
	}
	clusters := map[string][]BenchScore{}
	var order []string
	for _, sc := range scores {
		if sc.Cluster == "" {
			continue
		}
		if _, ok := clusters[sc.Cluster]; !ok {
			order = append(order, sc.Cluster)
		}
		clusters[sc.Cluster] = append(clusters[sc.Cluster], sc)
	}
	for _, c := range order {
		g := PlainAverage(clusters[c])
		t.AddRow(c, fmt.Sprint(len(clusters[c])), num2(g.Distance), num2(g.Interval),
			pct(g.Conserv), pct(g.PtrAcc), pct(g.ConstRecall))
	}
	all := ClusterAverage(scores)
	flat := PlainAverage(scores)
	t.AddRow("Retypd, as reported", "", num2(all.Distance), num2(all.Interval),
		pct(all.Conserv), pct(all.PtrAcc), pct(all.ConstRecall))
	t.AddRow("Retypd, without clustering", "", num2(flat.Distance), num2(flat.Interval),
		pct(flat.Conserv), pct(flat.PtrAcc), pct(flat.ConstRecall))
	return t.String()
}

// ScalingPoint is one measurement of the scaling sweep.
type ScalingPoint struct {
	Insts int
	// Workers is the solver parallelism the point was measured at
	// (resolved: 0-valued knobs are recorded as the actual CPU count).
	Workers int
	// Seconds is inference wall-clock time.
	Seconds float64
	// AllocBytes is total allocation during inference — the memory
	// proxy for Figure 12 (the paper measured peak RSS; allocation
	// volume is the closest hardware-independent analogue).
	AllocBytes float64
	// Kind tags special measurement modes: "" for the plain scaling
	// sweep, "cold"/"warm" for the persistence experiment (infer with
	// empty caches vs. infer after loading the saved cache stack in a
	// fresh engine), "incremental" for Engine.Reanalyze after a
	// 1-procedure mutation, "fleet-cold"/"fleet-warm" for the fleet
	// experiment (RunFleet).
	Kind string `json:",omitempty"`
	// CrossHits counts procedures served from the persistent
	// body-class table across program boundaries (fleet experiment
	// only).
	CrossHits uint64 `json:",omitempty"`
}

// RunScaling measures inference time and allocation across program
// sizes (Figures 11 and 12), at the parallelism cfg selects.
func RunScaling(cfg Config) []ScalingPoint {
	var out []ScalingPoint
	seed := int64(7)
	for _, size := range cfg.Fig11Sizes {
		seed++
		out = append(out, measureScale(size, seed, cfg.Parallelism))
	}
	return out
}

// RunParallelSweep measures one program size at several worker counts —
// the wall-clock speedup table behind the Appendix F parallelization
// claim.
func RunParallelSweep(size int, workerCounts []int) []ScalingPoint {
	var out []ScalingPoint
	for _, w := range workerCounts {
		// Fixed seed: every worker count measures the same program.
		out = append(out, measureScale(size, 8, w))
	}
	return out
}

// scaleTrials is the number of repetitions measureScale takes the
// median over. Wall-clock points feed the w4/w1 scaling gate
// (scripts/check_scaling.sh), which runs on noisy shared CI machines —
// a single sample regularly swings ±30% there, while the median of
// five is stable enough for a threshold comparison.
const scaleTrials = 5

// measureScale runs one (size, workers) inference scaleTrials times,
// recording the median wall clock and allocation volume.
func measureScale(size int, seed int64, workers int) ScalingPoint {
	lat := lattice.Default()
	b := corpus.Generate(fmt.Sprintf("scale%d", size), seed, size)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		panic(err)
	}
	opts := solver.DefaultOptions()
	opts.KeepIntermediates = false
	opts.Workers = workers

	secs := make([]float64, scaleTrials)
	allocs := make([]float64, scaleTrials)
	for i := range secs {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res := solver.Infer(prog, lat, nil, opts)
		secs[i] = time.Since(start).Seconds()
		runtime.ReadMemStats(&m1)
		_ = res
		allocs[i] = float64(m1.TotalAlloc - m0.TotalAlloc)
	}
	return ScalingPoint{
		Insts:      b.Insts,
		Workers:    conc.Limit(workers),
		Seconds:    median(secs),
		AllocBytes: median(allocs),
	}
}

// median returns the middle value of xs (mean of the middle pair for
// even lengths). xs is reordered in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// RunWarmStart measures the engine persistence and incrementality path
// at one program size: a cold engine Infer, a warm Infer in a fresh
// engine that loaded the first engine's saved cache file, and an
// incremental Reanalyze after mutating one procedure. The three points
// (Kind "cold"/"warm"/"incremental") quantify what a service gains from
// a durable cache across restarts and from the session between edits.
func RunWarmStart(size int, seed int64, workers int) []ScalingPoint {
	lat := lattice.Default()
	b := corpus.Generate(fmt.Sprintf("warm%d", size), seed, size)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		panic(err)
	}
	opts := solver.DefaultOptions()
	opts.KeepIntermediates = false
	opts.Workers = workers

	measure := func(kind string, run func()) ScalingPoint {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return ScalingPoint{
			Insts:      b.Insts,
			Workers:    conc.Limit(workers),
			Seconds:    elapsed.Seconds(),
			AllocBytes: float64(m1.TotalAlloc - m0.TotalAlloc),
			Kind:       kind,
		}
	}

	var out []ScalingPoint
	eng := solver.NewEngine(0, 0)
	out = append(out, measure("cold", func() { eng.Infer(prog, lat, nil, opts) }))

	dir, err := os.MkdirTemp("", "retypd-warm")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/cache"
	if err := eng.SaveCache(path); err != nil {
		panic(err)
	}
	warmEng, _, err := solver.LoadCache(path, 0, 0)
	if err != nil {
		panic(err)
	}
	out = append(out, measure("warm", func() { warmEng.Infer(prog, lat, nil, opts) }))

	// Incremental: mutate the first top-level procedure and reanalyze
	// against the cold engine's session.
	mutSrc := strings.Replace(b.Source, "proc "+prog.Procs[0].Name+"\n",
		"proc "+prog.Procs[0].Name+"\n    mov ecx, 12345\n", 1)
	mut, err := asm.Parse(mutSrc)
	if err != nil {
		panic(err)
	}
	out = append(out, measure("incremental", func() { eng.Reanalyze(mut, lat, nil, opts) }))
	return out
}

// RunFleet measures what the persistent body-class table is worth
// across a fleet of binaries built from one codebase: n binaries of
// `size` instructions each, a `shared` fraction of which is a common
// library under a binary-local rename (corpus.GenerateFleet). Binary 1
// is analyzed cold and its cache stack saved; each subsequent binary is
// analyzed by a fresh engine that loaded the accumulated cache file —
// one process per binary, the fleet-serving deployment shape. The
// returned points carry Kind "fleet-cold" (binary 1) and "fleet-warm"
// (binaries 2..n, with CrossHits = procedures served across program
// boundaries from the persisted table). Each point is the median of
// scaleTrials repetitions — the cold/warm ratio feeds the
// scripts/check_fleet.sh gate, which needs the same noise immunity as
// the scaling gate.
func RunFleet(n int, shared float64, size int, seed int64, workers int) []ScalingPoint {
	lat := lattice.Default()
	benches := corpus.GenerateFleet("fleet", seed, size, n, shared)
	opts := solver.DefaultOptions()
	opts.KeepIntermediates = false
	opts.Workers = workers

	progs := make([]*asm.Program, len(benches))
	for i, b := range benches {
		p, err := asm.Parse(b.Source)
		if err != nil {
			panic(err)
		}
		progs[i] = p
	}

	// measure runs one binary scaleTrials times, each trial against a
	// freshly built engine (cold: empty; warm: loaded from the
	// accumulated cache file), and records the median inference time.
	// Engine construction and cache decode stay outside the timer: a
	// serving process pays them once, the per-binary analysis many
	// times. The last trial's engine is returned so its grown cache can
	// be saved for the next binary.
	measure := func(kind string, insts int, newEngine func() *solver.Engine, prog *asm.Program) (ScalingPoint, *solver.Engine, *solver.Result) {
		secs := make([]float64, scaleTrials)
		allocs := make([]float64, scaleTrials)
		var eng *solver.Engine
		var res *solver.Result
		for t := range secs {
			eng = newEngine()
			eng.DisableSessionRecording()
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			res = eng.Infer(prog, lat, nil, opts)
			secs[t] = time.Since(start).Seconds()
			runtime.ReadMemStats(&m1)
			allocs[t] = float64(m1.TotalAlloc - m0.TotalAlloc)
		}
		return ScalingPoint{
			Insts:      insts,
			Workers:    conc.Limit(workers),
			Seconds:    median(secs),
			AllocBytes: median(allocs),
			Kind:       kind,
		}, eng, res
	}

	dir, err := os.MkdirTemp("", "retypd-fleet")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/cache"

	// The fleet never re-analyzes an edited binary; every engine is a
	// pure cache sharer.
	var out []ScalingPoint
	p, eng, _ := measure("fleet-cold", benches[0].Insts,
		func() *solver.Engine { return solver.NewEngine(0, 0) }, progs[0])
	out = append(out, p)
	if err := eng.SaveCache(path); err != nil {
		panic(err)
	}
	for i := 1; i < len(progs); i++ {
		p, weng, res := measure("fleet-warm", benches[i].Insts, func() *solver.Engine {
			e, _, err := solver.LoadCache(path, 0, 0)
			if err != nil {
				panic(err)
			}
			return e
		}, progs[i])
		p.CrossHits = res.BodyDedupCrossHits
		out = append(out, p)
		// Accumulate: binary i's classes serve binary i+1 too.
		if err := weng.SaveCache(path); err != nil {
			panic(err)
		}
	}
	return out
}

// FigureFleet renders the fleet-serving table from RunFleet's points.
func FigureFleet(points []ScalingPoint) string {
	t := &Table{
		Title:   "Fleet serving — cross-program body classes via the persisted cache",
		Headers: []string{"binary", "mode", "instructions", "wall seconds", "speedup", "cross-program hits"},
	}
	var cold float64
	for _, p := range points {
		if p.Kind == "fleet-cold" {
			cold = p.Seconds
		}
	}
	for i, p := range points {
		sp := "—"
		if p.Kind != "fleet-cold" && cold > 0 && p.Seconds > 0 {
			sp = fmt.Sprintf("%.1f×", cold/p.Seconds)
		}
		t.AddRow(fmt.Sprint(i+1), strings.TrimPrefix(p.Kind, "fleet-"),
			fmt.Sprint(p.Insts), fmt.Sprintf("%.4f", p.Seconds), sp, fmt.Sprint(p.CrossHits))
	}
	return t.String()
}

// FigureWarmStart renders the persistence/incrementality table from
// RunWarmStart's points.
func FigureWarmStart(points []ScalingPoint) string {
	t := &Table{
		Title:   "Engine warm start — cold vs persisted-cache vs incremental re-analysis",
		Headers: []string{"mode", "instructions", "workers", "wall seconds", "speedup", "MB allocated"},
	}
	var cold float64
	for _, p := range points {
		if p.Kind == "cold" {
			cold = p.Seconds
		}
	}
	for _, p := range points {
		sp := "—"
		if p.Kind != "cold" && cold > 0 && p.Seconds > 0 {
			sp = fmt.Sprintf("%.1f×", cold/p.Seconds)
		}
		t.AddRow(p.Kind, fmt.Sprint(p.Insts), fmt.Sprint(p.Workers),
			fmt.Sprintf("%.4f", p.Seconds), sp, fmt.Sprintf("%.1f", p.AllocBytes/1e6))
	}
	return t.String()
}

// Figure11 renders the time-scaling fit (paper: t = 0.000725·N^1.098,
// R² = 0.977).
func Figure11(points []ScalingPoint) string {
	var xs, ys []float64
	t := &Table{
		Title:   "Figure 11 — type-inference time vs program size",
		Headers: []string{"instructions", "workers", "wall seconds"},
	}
	for _, p := range points {
		xs = append(xs, float64(p.Insts))
		ys = append(ys, p.Seconds)
		t.AddRow(fmt.Sprint(p.Insts), fmt.Sprint(p.Workers), fmt.Sprintf("%.3f", p.Seconds))
	}
	fit := FitPower(xs, ys)
	ll := FitPowerLogLog(xs, ys)
	return t.String() +
		fmt.Sprintf("numerical fit   : t = %.3g · N^%.3f   (R² = %.3f)   [paper: N^1.098, R²=0.977]\n",
			fit.A, fit.B, fit.R2) +
		fmt.Sprintf("log-log fit     : t = %.3g · N^%.3f   (R² = %.3f)   [§6.6 note comparison]\n",
			ll.A, ll.B, ll.R2)
}

// FigureParallel renders the wall-clock speedup of the concurrent
// solver pipeline at each worker count, against the workers=1 row
// (Appendix F: per-SCC scheme inference is embarrassingly parallel
// across independent call-graph components).
func FigureParallel(points []ScalingPoint) string {
	t := &Table{
		Title:   "Parallel solver — wall-clock speedup vs worker count",
		Headers: []string{"instructions", "workers", "wall seconds", "speedup"},
	}
	var base float64
	if len(points) > 0 {
		base = points[0].Seconds
	}
	for _, p := range points {
		if p.Workers == 1 {
			base = p.Seconds
			break
		}
	}
	for _, p := range points {
		sp := "—"
		if base > 0 && p.Seconds > 0 {
			sp = fmt.Sprintf("%.2f×", base/p.Seconds)
		}
		t.AddRow(fmt.Sprint(p.Insts), fmt.Sprint(p.Workers),
			fmt.Sprintf("%.3f", p.Seconds), sp)
	}
	return t.String()
}

// Figure12 renders the memory-scaling fit (paper: m = 0.037·N^0.846,
// R² = 0.959).
func Figure12(points []ScalingPoint) string {
	var xs, ys []float64
	t := &Table{
		Title:   "Figure 12 — type-inference memory vs program size",
		Headers: []string{"instructions", "MB allocated"},
	}
	for _, p := range points {
		xs = append(xs, float64(p.Insts))
		ys = append(ys, p.AllocBytes/1e6)
		t.AddRow(fmt.Sprint(p.Insts), fmt.Sprintf("%.1f", p.AllocBytes/1e6))
	}
	fit := FitPower(xs, ys)
	return t.String() +
		fmt.Sprintf("numerical fit   : m = %.3g · N^%.3f   (R² = %.3f)   [paper: N^0.846, R²=0.959]\n",
			fit.A, fit.B, fit.R2)
}

// ConstReport renders the §6.4 const-recovery result (paper: 98%
// recall).
func ConstReport(s *SuiteScores) string {
	scores := s.PerSystem["Retypd"]
	var truth, found, extra int
	for _, sc := range scores {
		truth += sc.Agg.ConstTruth
		found += sc.Agg.ConstFound
		extra += sc.Agg.ConstExtra
	}
	var b strings.Builder
	fmt.Fprintf(&b, "§6.4 const recovery — source const parameters: %d, recovered: %d (recall %.0f%%) [paper: 98%%]\n",
		truth, found, 100*float64(found)/float64(max(1, truth)))
	fmt.Fprintf(&b, "additional const annotations on non-const source parameters: %d (paper: uncounted, §6.4)\n", extra)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
