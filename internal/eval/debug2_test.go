package eval

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/baselines"
	"retypd/internal/lattice"
)

func TestDebugFdUse(t *testing.T) {
	lat := lattice.Default()
	prog := asm.MustParse(`
proc fd_use
    mov ebx, [esp+4]
    push ebx
    call close
    add esp, 4
    ret
endproc

proc two
    mov eax, [esp+4]
    push eax
    call abs
    add esp, 4
    mov ecx, [esp+8]
    test ecx, ecx
    jz skip
    mov eax, [ecx]
skip:
    ret
endproc
`)
	o := baselines.Retypd().Run(prog, lat)
	t.Logf("fd_use formals: %v", o.Formals["fd_use"])
	if sk := o.ParamSk("fd_use", "stack0"); sk != nil {
		t.Logf("fd_use param0 sketch:\n%s", sk)
	}
	t.Logf("two formals: %v", o.Formals["two"])
	if sk := o.ParamSk("two", "stack0"); sk != nil {
		t.Logf("two param0 sketch:\n%s", sk)
	}
	if sk := o.ParamSk("two", "stack4"); sk != nil {
		t.Logf("two param1 sketch:\n%s", sk)
	}
}
