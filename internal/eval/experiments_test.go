package eval

import (
	"strings"
	"testing"
)

// TestQuickSuite runs the full cross-system evaluation on a small
// corpus and sanity-checks the headline shape of Figures 8 and 9:
// Retypd must dominate the unification baseline on distance and
// pointer accuracy.
func TestQuickSuite(t *testing.T) {
	s := RunSuite(QuickConfig())
	retypd := ClusterAverage(s.PerSystem["Retypd"])
	unify := ClusterAverage(s.PerSystem["SecondWrite*"])
	tie := ClusterAverage(s.PerSystem["TIE*"])

	t.Logf("\n%s", Figure8(s))
	t.Logf("\n%s", Figure9(s))
	t.Logf("\n%s", Figure10(s))
	t.Logf("\n%s", ConstReport(s))

	if retypd.Distance >= unify.Distance {
		t.Errorf("Retypd distance %.2f should beat unification %.2f", retypd.Distance, unify.Distance)
	}
	if retypd.PtrAcc <= unify.PtrAcc {
		t.Errorf("Retypd pointer accuracy %.2f should beat unification %.2f", retypd.PtrAcc, unify.PtrAcc)
	}
	if retypd.Conserv < 0.85 {
		t.Errorf("Retypd conservativeness %.2f suspiciously low", retypd.Conserv)
	}
	if retypd.ConstRecall < 0.9 {
		t.Errorf("Retypd const recall %.2f, paper reports 98%%", retypd.ConstRecall)
	}
	_ = tie
}

func TestPowerFit(t *testing.T) {
	xs := []float64{1000, 2000, 4000, 8000, 16000}
	var ys []float64
	for _, x := range xs {
		ys = append(ys, 0.0007*pow(x, 1.1))
	}
	fit := FitPower(xs, ys)
	if fit.B < 1.05 || fit.B > 1.15 {
		t.Errorf("exponent = %.3f, want ≈1.1", fit.B)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R² = %.4f, want ≈1", fit.R2)
	}
}

func pow(x, b float64) float64 {
	r := 1.0
	_ = r
	// tiny helper to avoid importing math in the test
	return exp(b * ln(x))
}

func exp(x float64) float64 {
	s, term := 1.0, 1.0
	for i := 1; i < 40; i++ {
		term *= x / float64(i)
		s += term
	}
	return s
}

func ln(x float64) float64 {
	// Newton on exp
	y := 1.0
	for i := 0; i < 60; i++ {
		y += 2 * (x - exp(y)) / (x + exp(y))
	}
	return y
}

var _ = strings.Contains
