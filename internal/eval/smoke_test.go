package eval

import (
	"testing"
	"time"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/solver"
)

func TestCorpusSmoke(t *testing.T) {
	b := corpus.Generate("smoke", 42, 2000)
	t.Logf("insts=%d truths=%d", b.Insts, len(b.Truths))
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	start := time.Now()
	res := solver.Infer(prog, lattice.Default(), nil, solver.DefaultOptions())
	t.Logf("procs=%d elapsed=%v", len(res.Procs), time.Since(start))
}
