package eval

import (
	"testing"
	"time"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/solver"
)

func TestCorpusSmoke(t *testing.T) {
	b := corpus.Generate("smoke", 42, 2000)
	t.Logf("insts=%d truths=%d", b.Insts, len(b.Truths))
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	start := time.Now()
	res := solver.Infer(prog, lattice.Default(), nil, solver.DefaultOptions())
	t.Logf("procs=%d elapsed=%v", len(res.Procs), time.Since(start))
}

// TestCacheEffectivenessSmoke: the duplicate-leaf-heavy synthetic
// corpus must actually exercise both memo layers — a suite run with
// the shared caches has to report a nonzero scheme AND shape hit rate,
// or the phase-2 memo has silently stopped firing.
func TestCacheEffectivenessSmoke(t *testing.T) {
	s := RunSuite(QuickConfig())
	t.Logf("body dedup: %d hits / %d misses; scheme cache: %d hits / %d misses; shape cache: %d hits / %d misses",
		s.BodyDedupHits, s.BodyDedupMisses,
		s.SchemeCacheHits, s.SchemeCacheMisses, s.ShapeCacheHits, s.ShapeCacheMisses)
	if s.SchemeCacheHits == 0 {
		t.Error("suite run produced no scheme-cache hits")
	}
	if s.ShapeCacheHits == 0 {
		t.Error("suite run produced no shape-cache hits on the duplicate-leaf corpus")
	}
	if s.ShapeCacheHits+s.ShapeCacheMisses == 0 {
		t.Error("shape cache was never consulted")
	}
	if s.BodyDedupHits == 0 {
		t.Error("suite run produced no body-dedup hits on the duplicate-leaf corpus")
	}
}
