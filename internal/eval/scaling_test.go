package eval

import "testing"

// TestScalingExponent pins the Figure 11 claim: whole-program inference
// time scales near-linearly despite the cubic per-procedure core
// (paper: N^1.098). An exponent drifting toward 2 would mean the
// per-SCC locality argument of §5.3 has been broken.
func TestScalingExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	cfg := Config{Fig11Sizes: []int{1000, 2000, 4000, 8000, 16000}}
	points := RunScaling(cfg)
	var xs, ys []float64
	for _, p := range points {
		xs = append(xs, float64(p.Insts))
		ys = append(ys, p.Seconds)
	}
	fit := FitPower(xs, ys)
	t.Logf("t = %.3g · N^%.3f (R²=%.3f); paper: N^1.098, R²=0.977", fit.A, fit.B, fit.R2)
	if fit.B > 1.45 {
		t.Errorf("scaling exponent %.3f is superlinear beyond the paper's regime", fit.B)
	}
	if fit.R2 < 0.9 {
		t.Errorf("power model no longer explains the data (R²=%.3f)", fit.R2)
	}

	// Memory (Figure 12): allocation volume must not be super-linear.
	var ms []float64
	for _, p := range points {
		ms = append(ms, p.AllocBytes)
	}
	mfit := FitPower(xs, ms)
	t.Logf("m = %.3g · N^%.3f (R²=%.3f); paper (RSS): N^0.846", mfit.A, mfit.B, mfit.R2)
	if mfit.B > 1.3 {
		t.Errorf("memory exponent %.3f is super-linear", mfit.B)
	}
}
