package eval

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/baselines"
	"retypd/internal/corpus"
	"retypd/internal/ctype"
	"retypd/internal/lattice"
	"retypd/internal/metrics"
	"retypd/internal/sketch"
)

// TestDiagPointerMisses prints, per function-name stem, the pointer
// accuracy and distance so that corpus/metric calibration is visible.
func TestDiagPointerMisses(t *testing.T) {
	lat := lattice.Default()
	b := corpus.Generate("diag", 99, 4000)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	o := baselines.Retypd().Run(prog, lat)
	sc := &metrics.Scorer{Lat: lat}
	conv := ctype.NewConverter(lat)

	type acc struct {
		lv, mt, n int
		dist      float64
		cons      int
	}
	byStem := map[string]*acc{}
	stem := func(fn string) string {
		for i := len(fn) - 1; i >= 0; i-- {
			if fn[i] == '_' {
				return fn[:i]
			}
		}
		return fn
	}
	for _, truth := range b.Truths {
		var sk2 *sketch.Sketch
		switch truth.Kind {
		case "param":
			var locs []string
			for _, l := range o.Formals[truth.Func] {
				locs = append(locs, l.ParamName())
			}
			if truth.Index < len(locs) {
				sk2 = o.ParamSk(truth.Func, locs[truth.Index])
			}
		case "ret":
			sk2 = o.OutSk(truth.Func)
		}
		var disp *ctype.Type
		if sk2 == nil {
			sk2 = sketch.NewTop(lat)
			disp = ctype.Unknown()
		} else if truth.Kind == "param" {
			disp = conv.ConvertParam(sk2)
		} else {
			disp = conv.FromSketch(sk2)
		}
		s := sc.Score(sk2, disp, truth)
		a := byStem[stem(truth.Func)+"/"+truth.Kind]
		if a == nil {
			a = &acc{}
			byStem[stem(truth.Func)+"/"+truth.Kind] = a
		}
		a.lv += s.PtrLevels
		a.mt += s.PtrMatched
		a.n++
		a.dist += s.Distance
		if s.Conservative {
			a.cons++
		}
	}
	for k, a := range byStem {
		if a.lv != a.mt || a.dist > 0.2*float64(a.n) || a.cons != a.n {
			t.Logf("%-18s n=%3d ptr=%d/%d dist=%.2f cons=%d/%d", k, a.n, a.mt, a.lv, a.dist/float64(a.n), a.cons, a.n)
		}
	}
}
