package eval

import "math"

// PowerFit is a fitted model y = A·x^B.
type PowerFit struct {
	A, B float64
	R2   float64
}

// FitPower fits y = A·x^B by numerical least squares in (x, y) space —
// the paper's §6.6 note is explicit that it fits in value space, not
// log-log space, because that minimizes the error in predicted values
// rather than in their logarithms. For a fixed exponent B the optimal
// A has the closed form Σ(y·x^B)/Σ(x^2B); the exponent is found by
// iterated grid refinement.
func FitPower(xs, ys []float64) PowerFit {
	if len(xs) == 0 {
		return PowerFit{}
	}
	sse := func(b float64) (float64, float64) {
		var num, den float64
		for i := range xs {
			xb := math.Pow(xs[i], b)
			num += ys[i] * xb
			den += xb * xb
		}
		if den == 0 {
			return 0, math.Inf(1)
		}
		a := num / den
		var s float64
		for i := range xs {
			d := ys[i] - a*math.Pow(xs[i], b)
			s += d * d
		}
		return a, s
	}

	lo, hi := 0.1, 3.0
	bestA, bestB, bestS := 0.0, 1.0, math.Inf(1)
	for refine := 0; refine < 6; refine++ {
		step := (hi - lo) / 40
		for b := lo; b <= hi+1e-12; b += step {
			if a, s := sse(b); s < bestS {
				bestA, bestB, bestS = a, b, s
			}
		}
		lo = math.Max(0.01, bestB-2*step)
		hi = bestB + 2*step
	}

	// R² against the mean.
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var sst float64
	for _, y := range ys {
		sst += (y - mean) * (y - mean)
	}
	r2 := 0.0
	if sst > 0 {
		r2 = 1 - bestS/sst
	}
	return PowerFit{A: bestA, B: bestB, R2: r2}
}

// FitPowerLogLog fits y = A·x^B by linear regression in log-log space
// (the comparison model of the §6.6 note).
func FitPowerLogLog(xs, ys []float64) PowerFit {
	n := float64(len(xs))
	if n == 0 {
		return PowerFit{}
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a := math.Exp((sy - b*sx) / n)

	// R² in value space for comparability.
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= n
	var sst, sse float64
	for i := range ys {
		sst += (ys[i] - mean) * (ys[i] - mean)
		d := ys[i] - a*math.Pow(xs[i], b)
		sse += d * d
	}
	r2 := 0.0
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	return PowerFit{A: a, B: b, R2: r2}
}
