package summaries

import (
	"strings"
	"testing"

	"retypd/internal/constraints"
)

// TestDefaultTableShape: every stock summary is internally consistent —
// registered under its own name, constraints written over that name,
// formal references within the declared formal list.
func TestDefaultTableShape(t *testing.T) {
	tab := Default()
	if len(tab) == 0 {
		t.Fatal("default table is empty")
	}
	for name, s := range tab {
		if s.Name != name {
			t.Errorf("summary %q registered under key %q", s.Name, name)
		}
		formals := map[string]bool{}
		for _, f := range s.FormalIns {
			formals[f] = true
		}
		for _, c := range s.Constraints.Subtypes() {
			for _, d := range []constraints.DTV{c.L, c.R} {
				if string(d.Base()) != name {
					continue
				}
				if d.PathLen() == 0 {
					continue
				}
				head := d.Path()[0].String()
				switch {
				case strings.HasPrefix(head, "in_"):
					loc := strings.TrimPrefix(head, "in_")
					if !formals[loc] {
						t.Errorf("%s: constraint %s references undeclared formal %q (formals %v)",
							name, c, loc, s.FormalIns)
					}
				case strings.HasPrefix(head, "out_"):
					if !s.HasOut {
						t.Errorf("%s: constraint %s writes an output but HasOut is false", name, c)
					}
				}
			}
		}
	}
}

// TestDefaultLookups spot-checks the §2.2/§3.5 models the paper's
// examples rely on.
func TestDefaultLookups(t *testing.T) {
	tab := Default()
	cases := []struct {
		name    string
		formals int
		hasOut  bool
		// entails is a constraint the summary must contain verbatim.
		entails string
	}{
		{"close", 1, true, "close.in_stack0 <= #FileDescriptor"},
		{"malloc", 1, true, "ptr <= malloc.out_eax"},
		{"free", 1, false, ""},
		{"memcpy", 3, true, "memcpy.in_stack0 <= memcpy.out_eax"},
		{"signal", 2, true, "signal.in_stack0 <= #signal-number"},
		{"strlen", 1, true, "size_t <= strlen.out_eax"},
	}
	for _, tc := range cases {
		s, ok := tab[tc.name]
		if !ok {
			t.Errorf("missing summary for %q", tc.name)
			continue
		}
		if len(s.FormalIns) != tc.formals {
			t.Errorf("%s: %d formals, want %d", tc.name, len(s.FormalIns), tc.formals)
		}
		if s.HasOut != tc.hasOut {
			t.Errorf("%s: HasOut = %v, want %v", tc.name, s.HasOut, tc.hasOut)
		}
		if tc.entails != "" {
			c, err := constraints.ParseConstraint(tc.entails)
			if err != nil {
				t.Fatalf("bad test constraint %q: %v", tc.entails, err)
			}
			if !s.Constraints.Has(c) {
				t.Errorf("%s: summary lacks %s\nhave:\n%s", tc.name, tc.entails, s.Constraints)
			}
		}
	}
}

// TestMallocIsPolymorphic: malloc's summary must leave the pointee
// unconstrained — the §2.2 let-polymorphism hinges on it.
func TestMallocIsPolymorphic(t *testing.T) {
	m := Default()["malloc"]
	for _, c := range m.Constraints.Subtypes() {
		for _, d := range []constraints.DTV{c.L, c.R} {
			for _, l := range d.Path() {
				s := l.String()
				if s == "load" || s == "store" {
					t.Errorf("malloc summary constrains its pointee (%s) — breaks callsite polymorphism", c)
				}
			}
		}
	}
}

// TestUnknownLookup: absent symbols simply miss; the generator treats
// them as unconstrained externals.
func TestUnknownLookup(t *testing.T) {
	if _, ok := Default()["definitely_not_libc"]; ok {
		t.Error("unexpected summary for unknown symbol")
	}
}
