// Package summaries provides pre-computed type schemes for externally
// linked functions (§4.2: "Pre-computed type schemes for externally
// linked functions may be inserted at this stage"), playing the role of
// the paper's libc/Windows API models and the semantic-tag seeds of
// §3.5 (e.g. the #signal-number tag on signal()'s int parameter).
//
// A summary's constraint set is written over the function's own name as
// the base type variable; the constraint generator instantiates it with
// a fresh callsite tag (Example A.4), which is what makes malloc-like
// functions behave let-polymorphically.
package summaries

import (
	"retypd/internal/constraints"
)

// Summary describes one external function.
type Summary struct {
	// Name is the linked symbol.
	Name string
	// FormalIns lists formal-in location names in order ("stack0", …).
	FormalIns []string
	// HasOut reports whether the function returns a value in eax.
	HasOut bool
	// Constraints is the summary scheme body over base variable Name.
	// It may be empty: malloc's return and free's parameter are fully
	// polymorphic (§2.2).
	Constraints *constraints.Set
}

// Table maps symbol names to summaries.
type Table map[string]*Summary

func mk(name string, formals []string, hasOut bool, text string) *Summary {
	return &Summary{
		Name:        name,
		FormalIns:   formals,
		HasOut:      hasOut,
		Constraints: constraints.MustParseSet(text),
	}
}

// defaultTable memoizes the stock table: summaries are read-only by
// contract, every Infer call with nil summaries resolves to this one
// value, and pointer-stable summaries are what lets an engine session
// recognize "same summaries" across runs without deep comparison.
var defaultTable = buildDefault()

// Default returns the stock summary table used by the reproduction. It
// covers the functions the paper's examples rely on (close, malloc,
// free, memcpy, fopen/fclose, signal) plus enough of libc for the
// synthetic corpus. The returned table is shared — treat it as
// read-only; to customize, copy it into a fresh Table first.
func Default() Table { return defaultTable }

func buildDefault() Table {
	t := Table{}
	add := func(s *Summary) { t[s.Name] = s }

	// Figure 2/20: close(int fd) — the parameter is an int carrying the
	// #FileDescriptor tag; the result is an int tagged #SuccessZ.
	add(mk("close", []string{"stack0"}, true, `
		close.in_stack0 <= int
		close.in_stack0 <= #FileDescriptor
		int <= close.out_eax
		#SuccessZ <= close.out_eax
	`))

	// §2.2: malloc : ∀τ. size_t → τ* — the return's capabilities are
	// unconstrained and fresh at every callsite; the ptr lower bound
	// records only that it is an address.
	add(mk("malloc", []string{"stack0"}, true, `
		malloc.in_stack0 <= size_t
		ptr <= malloc.out_eax
	`))

	// free : ∀τ. τ* → void.
	add(mk("free", []string{"stack0"}, false, ``))

	// §2.2: memcpy : ∀α,β. (β ⊑ α) ⇒ (α* × β* × size_t) → α*.
	// The byte flow from source loads to destination stores encodes
	// β ⊑ α; the destination pointer is returned.
	add(mk("memcpy", []string{"stack0", "stack4", "stack8"}, true, `
		memcpy.in_stack4.load.σ8@0 <= memcpy.in_stack0.store.σ8@0
		memcpy.in_stack8 <= size_t
		memcpy.in_stack0 <= memcpy.out_eax
	`))

	add(mk("fopen", []string{"stack0", "stack4"}, true, `
		fopen.in_stack0 <= str
		fopen.in_stack4 <= str
		FILE <= fopen.out_eax.load.σ32@0
	`))
	add(mk("fclose", []string{"stack0"}, true, `
		fclose.in_stack0.load.σ32@0 <= FILE
		int <= fclose.out_eax
	`))
	add(mk("fread", []string{"stack0", "stack4", "stack8", "stack12"}, true, `
		fread.in_stack4 <= size_t
		fread.in_stack8 <= size_t
		fread.in_stack12.load.σ32@0 <= FILE
		size_t <= fread.out_eax
	`))

	// signal(int signum, handler) with the #signal-number tag (§E).
	add(mk("signal", []string{"stack0", "stack4"}, true, `
		signal.in_stack0 <= int
		signal.in_stack0 <= #signal-number
		signal.in_stack4 <= code
	`))

	add(mk("open", []string{"stack0", "stack4"}, true, `
		open.in_stack0 <= str
		open.in_stack4 <= int
		int <= open.out_eax
		#FileDescriptor <= open.out_eax
	`))
	add(mk("read", []string{"stack0", "stack4", "stack8"}, true, `
		read.in_stack0 <= int
		read.in_stack0 <= #FileDescriptor
		read.in_stack8 <= size_t
		ssize_t <= read.out_eax
	`))
	add(mk("write", []string{"stack0", "stack4", "stack8"}, true, `
		write.in_stack0 <= int
		write.in_stack0 <= #FileDescriptor
		write.in_stack8 <= size_t
		ssize_t <= write.out_eax
	`))

	add(mk("strlen", []string{"stack0"}, true, `
		strlen.in_stack0 <= str
		strlen.in_stack0.load.σ8@0 <= char
		size_t <= strlen.out_eax
	`))
	add(mk("strcpy", []string{"stack0", "stack4"}, true, `
		strcpy.in_stack4 <= str
		strcpy.in_stack4.load.σ8@0 <= strcpy.in_stack0.store.σ8@0
		strcpy.in_stack0 <= strcpy.out_eax
	`))
	add(mk("strcmp", []string{"stack0", "stack4"}, true, `
		strcmp.in_stack0 <= str
		strcmp.in_stack4 <= str
		int <= strcmp.out_eax
	`))
	add(mk("atoi", []string{"stack0"}, true, `
		atoi.in_stack0 <= str
		int <= atoi.out_eax
	`))

	add(mk("time", []string{"stack0"}, true, `
		time_t <= time.out_eax
	`))
	add(mk("abs", []string{"stack0"}, true, `
		abs.in_stack0 <= int
		int <= abs.out_eax
	`))
	add(mk("rand", nil, true, `
		int <= rand.out_eax
	`))
	add(mk("srand", []string{"stack0"}, false, `
		srand.in_stack0 <= uint
	`))
	add(mk("putchar", []string{"stack0"}, true, `
		putchar.in_stack0 <= int
		int <= putchar.out_eax
	`))
	add(mk("puts", []string{"stack0"}, true, `
		puts.in_stack0 <= str
		int <= puts.out_eax
	`))
	add(mk("isdigit", []string{"stack0"}, true, `
		isdigit.in_stack0 <= int
		int <= isdigit.out_eax
	`))
	add(mk("exit", []string{"stack0"}, false, `
		exit.in_stack0 <= int
	`))
	add(mk("abort", nil, false, ``))
	add(mk("getpid", nil, true, `
		pid_t <= getpid.out_eax
	`))

	// Floating point enters only through known functions (§A.5.1).
	add(mk("sqrtf", []string{"stack0"}, true, `
		sqrtf.in_stack0 <= float
		float <= sqrtf.out_eax
	`))
	add(mk("fabsf", []string{"stack0"}, true, `
		fabsf.in_stack0 <= float
		float <= fabsf.out_eax
	`))

	// Windows API models for the ad-hoc hierarchy of §2.8.
	add(mk("GetStockObject", []string{"stack0"}, true, `
		GetStockObject.in_stack0 <= int
		HGDI <= GetStockObject.out_eax
	`))
	add(mk("SelectObject", []string{"stack0", "stack4"}, true, `
		SelectObject.in_stack0 <= HANDLE
		SelectObject.in_stack4 <= HGDI
		HGDI <= SelectObject.out_eax
	`))
	add(mk("SendMessage", []string{"stack0", "stack4", "stack8", "stack12"}, true, `
		SendMessage.in_stack0 <= HWND
		SendMessage.in_stack4 <= uint
		SendMessage.in_stack8 <= WPARAM
		SendMessage.in_stack12 <= LPARAM
		int <= SendMessage.out_eax
	`))

	return t
}
