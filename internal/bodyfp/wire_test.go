package bodyfp

import (
	"bytes"
	"testing"

	"retypd/internal/asm"
)

// TestFPWireRoundTrip: AppendWire→DecodeFPWire→AppendWire is
// byte-stable and preserves equivalence, registers and call sites.
func TestFPWireRoundTrip(t *testing.T) {
	prog := asm.MustParse(`
proc w
    mov ebx, [ebp+8]
    push ebx
    call helper_a
    add esp, 4
    push eax
    call helper_b
    add esp, 4
    ret
endproc
`)
	conf := Config{LatticeSig: "test-sig"}
	named := func(target string) (CalleeID, bool) {
		return CalleeID{Kind: CalleeNamed, Name: target}, true
	}
	fp := Compute(prog.Procs[0], conf, named)
	if fp == nil {
		t.Fatal("Compute returned nil")
	}

	enc := fp.AppendWire(nil)
	got, n, err := DecodeFPWire(append(append([]byte(nil), enc...), 0x3))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !got.EquivalentTo(fp) || got.Hash() != fp.Hash() {
		t.Fatal("decoded fingerprint not equivalent to original")
	}
	if !got.SameRegisters(fp) {
		t.Fatal("decoded fingerprint lost the register assignment")
	}
	if len(got.Calls()) != len(fp.Calls()) {
		t.Fatalf("decoded %d calls, want %d", len(got.Calls()), len(fp.Calls()))
	}
	for i, c := range fp.Calls() {
		if got.Calls()[i] != c {
			t.Fatalf("call %d mismatch: %+v vs %+v", i, got.Calls()[i], c)
		}
	}
	if re := got.AppendWire(nil); !bytes.Equal(re, enc) {
		t.Fatal("re-encode not byte-stable")
	}
}

// TestFPWireRejectsOtherVersion: a blob whose canonical encoding is
// from a different encoder version is refused.
func TestFPWireRejectsOtherVersion(t *testing.T) {
	prog := asm.MustParse("proc f\n    ret\nendproc\n")
	fp := Compute(prog.Procs[0], Config{LatticeSig: "s"}, func(string) (CalleeID, bool) {
		return CalleeID{Kind: CalleeNamed, Name: "x"}, true
	})
	enc := fp.AppendWire(nil)
	// Byte 0 is the encoding length varint; byte 1 starts the encoding
	// with its version. Flip the version.
	enc[1] ^= 0x55
	if _, _, err := DecodeFPWire(enc); err == nil {
		t.Fatal("decode of a foreign encoding version succeeded")
	}
}
