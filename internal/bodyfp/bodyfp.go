// Package bodyfp computes rename-invariant fingerprints of procedure
// IR bodies — the earliest memoization key of the solver pipeline,
// sitting *before* abstract interpretation. Two procedures with the
// same body fingerprint (verified by EquivalentTo, which compares the
// full canonical encodings, so 64-bit hash collisions cannot mis-group)
// generate isomorphic constraint sets: the abstract interpreter, the
// constraint fingerprint, scheme simplification, and sketch solving can
// all run once for the whole equivalence class and the results be
// translated to the other members by a base-variable rename. This is
// the canonicalize-early strategy BinSub (Smith, 2024) argues for: on
// corpora full of duplicate leaf procedures, constraint generation
// itself is redundant work, not just simplification.
//
// The canonical encoding is invariant under:
//
//   - the procedure's own name (no name reaches the encoding at all);
//   - label names (control-flow targets are encoded as instruction
//     indices; the set of label *positions* is encoded, because block
//     boundaries affect the flow-sensitive analyses);
//   - conditional-jump mnemonics (asm.Inst.Cond is display-only: every
//     JCC has the same CFG and constraint semantics);
//   - renaming of scratch registers within the symmetry classes the
//     abstract semantics treats uniformly: {ecx, edx} (both clobbered
//     by calls, neither special otherwise) and {ebx, esi, edi} (never
//     clobbered, never special). eax (return value and call clobber),
//     ebp/esp (frame/stack analysis), and any register that is a
//     formal-in parameter (its name appears in in_<reg> labels, which
//     renaming must not touch) are pinned to themselves.
//
// It distinguishes everything the constraint generator's output depends
// on besides names: opcodes, operand shapes, immediates and stack
// displacements, the register-parameter interface (the entry-liveness
// mask, pinned under canonicalization), the positions of calls, and the
// identity bound to every call target (supplied by the caller as a
// CalleeID — typically the callee's own equivalence class, so that
// wrappers around interchangeable callees still dedup, while calls to
// genuinely different code never do). Call-target identities are
// encoded together with the first-occurrence index of the target
// *name*, because under monomorphic linking two calls to one callee
// share a single interface variable — a repetition pattern a member
// with two distinct (if class-equal) callees would not reproduce.
//
// The fingerprint is computed from the raw instruction stream alone —
// no cfg.ProcInfo — so classification can run *before* any
// per-procedure analysis and duplicate bodies can be served their CFG
// analyses (cfg.ProcInfo.CloneForProgram) like they are served schemes.
// The analysis outputs the encoding no longer carries explicitly are
// derivable from it: stack-slot formals are a deterministic function of
// the instruction stream under the pinned esp/ebp (the affine stack
// analysis and positive-offset reads), and HasOut is the
// intraprocedural eax-reaches-ret fact (structural, eax pinned) closed
// over tail-callee identities — which ARE encoded, so equal encodings
// yield equal HasOut inductively, provided every CalleeNamed target
// resolves the same way (program procedure vs external) on both sides;
// consumers that move fingerprints across programs must check that
// (solver's body-class cache does).
package bodyfp

import (
	"bytes"
	"encoding/binary"
	"hash/maphash"
	"sort"

	"retypd/internal/asm"
	"retypd/internal/cfg"
)

// Config carries the generation options and lattice identity mixed into
// every fingerprint. The solver's body-class table is engine-scoped and
// persistent (PR 10), so these are no longer constant over a table's
// lifetime: encoding them is what keeps entries from different
// configurations apart (the documented invariant: every
// output-affecting option must reach the body key).
//
//retypd:cachekey Compute
type Config struct {
	// MonomorphicCalls, PolymorphicExternals and NoConstantSuppression
	// mirror absint.Options.
	MonomorphicCalls      bool
	PolymorphicExternals  bool
	NoConstantSuppression bool
	// LatticeSig is the lattice's content signature
	// (lattice.Signature): constraint generation consults the lattice
	// for constant detection. Encoded as bytes, so fingerprints are
	// identical across processes.
	LatticeSig string
	// CtxSig folds in the run context beyond constraint generation that
	// the solver's persistent body-class cache must distinguish — the
	// summaries-table digest and the solve options (MaxSketchDepth,
	// NoSpecialize) that shape the cached sketches. Empty for uses that
	// check those separately (the engine's session fingerprints).
	CtxSig string
}

// CalleeKind discriminates CalleeID.
type CalleeKind byte

const (
	// CalleeClass identifies a program procedure by its body-equivalence
	// class: any member generates the same callee scheme modulo its root
	// name.
	CalleeClass CalleeKind = 1
	// CalleeNamed identifies a call target by its exact name (externals,
	// and program procedures excluded from classing): only calls to the
	// very same target match.
	CalleeNamed CalleeKind = 2
)

// CalleeID is the identity the fingerprint records for one call target:
// a per-run class id for CalleeClass, the target's own name for
// CalleeNamed. Names are encoded as bytes (never as interned ids), so a
// fingerprint computed with named callees is identical across
// processes — the property the engine's incremental session relies on.
type CalleeID struct {
	Kind CalleeKind
	// ID is the body-equivalence class id (CalleeClass only).
	ID uint64
	// Name is the exact target name (CalleeNamed only).
	Name string
}

// Call is one call or tail-call site of a fingerprinted body.
type Call struct {
	Inst   int
	Target string
}

// FP is the fingerprint of one procedure body: a 64-bit grouping hash
// plus the full canonical encoding it was computed over (the authority
// for equivalence), the register assignment, and the call sites.
type FP struct {
	hash uint64
	enc  []byte
	// regs lists the actual registers in canonical-assignment order
	// (pinned registers are not listed — equal encodings already imply
	// equal pinned-register usage).
	regs  []asm.Reg
	calls []Call
}

// Hash returns the 64-bit grouping hash. Group candidates by it, then
// confirm with EquivalentTo.
func (fp *FP) Hash() uint64 { return fp.hash }

// EquivalentTo reports whether the two bodies have identical canonical
// encodings — the collision-checked equivalence behind the hash.
func (fp *FP) EquivalentTo(other *FP) bool {
	return fp.hash == other.hash && bytes.Equal(fp.enc, other.enc)
}

// SameRegisters reports whether other uses exactly the registers fp
// does (no scratch-register renaming between the two bodies). Together
// with EquivalentTo this means the instruction streams are identical up
// to label names, JCC mnemonics and call-target names — the condition
// under which even the raw generated constraint set translates by pure
// name surgery.
func (fp *FP) SameRegisters(other *FP) bool {
	if len(fp.regs) != len(other.regs) {
		return false
	}
	for i := range fp.regs {
		if fp.regs[i] != other.regs[i] {
			return false
		}
	}
	return true
}

// Calls lists the body's call and tail-call sites in instruction order.
func (fp *FP) Calls() []Call { return fp.calls }

// encVersion versions the canonical encoding's layout. DecodeFP refuses
// blobs of other versions; bump it whenever the encoded content changes
// shape (the engine's persisted sessions and the property tests pin the
// round trip). v3: computed from the raw instruction stream — the
// header carries the entry-liveness register mask and CtxSig instead of
// the analyzed formal list and HasOut (both derivable; see the package
// comment).
const encVersion = 3

// seed is the process-stable seed of the grouping hash. The hash is a
// grouping accelerator only — it is recomputed from the (portable)
// canonical encoding on decode, never shipped.
var seed = maphash.MakeSeed()

// register symmetry classes (slot order is fixed; pinned members are
// skipped when slots are handed out).
var regClasses = [2][]asm.Reg{
	{asm.ECX, asm.EDX},
	{asm.EBX, asm.ESI, asm.EDI},
}

// classOf maps a register to its symmetry-class index, or -1 if the
// register is never renamed.
func classOf(r asm.Reg) int {
	switch r {
	case asm.ECX, asm.EDX:
		return 0
	case asm.EBX, asm.ESI, asm.EDI:
		return 1
	default:
		return -1
	}
}

const unassigned = asm.Reg(0xfe)

// Compute fingerprints proc's body from its raw instruction stream.
// calleeID supplies the identity of every call target; returning
// ok == false marks the target (and hence this body) ineligible, and
// Compute returns nil. The caller is responsible for excluding
// procedures that are ineligible for reasons outside the body
// (multi-member SCCs, self-calls, reserved characters in the
// procedure's own name, trace-restricted generation).
func Compute(proc *asm.Proc, conf Config, calleeID func(target string) (CalleeID, bool)) *FP {
	return ComputeWithLiveMask(proc, conf, calleeID, cfg.EntryLiveRegs(proc))
}

// ComputeWithLiveMask is Compute for callers that already know the
// entry-liveness mask (a cfg.ProcInfo's EntryLive, when the front end
// has run) — it skips the block rebuild EntryLiveRegs would do. The
// mask is an input to the encoding, not an identity field: passing the
// value EntryLiveRegs(proc) would return yields the identical
// fingerprint.
func ComputeWithLiveMask(proc *asm.Proc, conf Config, calleeID func(target string) (CalleeID, bool), liveMask uint8) *FP {
	fp := &FP{}
	insts := proc.Insts
	enc := make([]byte, 0, 16+12*len(insts))

	// Header: options, lattice, run context, interface.
	var optBits byte
	if conf.MonomorphicCalls {
		optBits |= 1
	}
	if conf.PolymorphicExternals {
		optBits |= 2
	}
	if conf.NoConstantSuppression {
		optBits |= 4
	}
	enc = append(enc, encVersion, optBits)
	enc = binary.AppendUvarint(enc, uint64(len(conf.LatticeSig)))
	enc = append(enc, conf.LatticeSig...)
	enc = binary.AppendUvarint(enc, uint64(len(conf.CtxSig)))
	enc = append(enc, conf.CtxSig...)

	// The register-parameter interface: the entry-liveness mask. It must
	// be explicit even though the registers it names are pinned below —
	// without it, a body using ebx as a parameter and a body using ebx
	// as its first {ebx,esi,edi}-class scratch register would canonize
	// to the same operand stream while having different type interfaces.
	// (Stack-slot formals and HasOut, by contrast, are derivable from
	// the encoded stream; see the package comment.)
	enc = append(enc, liveMask)

	// Canonical register assignment. Formal-in registers are pinned
	// before any instruction is scanned: their names are part of the
	// procedure's type interface.
	var canon [8]asm.Reg
	var pinned [8]bool
	for r := 0; r < 8; r++ {
		canon[r] = unassigned
	}
	pin := func(r asm.Reg) {
		if int(r) < 8 {
			canon[r] = r
			pinned[r] = true
		}
	}
	pin(asm.EAX)
	pin(asm.EBP)
	pin(asm.ESP)
	for r := asm.Reg(0); r < 6; r++ {
		if liveMask&cfg.RegBit(r) != 0 {
			pin(r)
		}
	}
	// Free slots per class, in fixed class order, pinned members
	// removed.
	var slots [2][]asm.Reg
	for ci, class := range regClasses {
		for _, r := range class {
			if !pinned[r] {
				slots[ci] = append(slots[ci], r)
			}
		}
	}
	nextSlot := [2]int{}
	canonOf := func(r asm.Reg) asm.Reg {
		if int(r) >= 8 {
			return r
		}
		if canon[r] != unassigned {
			return canon[r]
		}
		ci := classOf(r)
		if ci < 0 {
			canon[r] = r
			return r
		}
		c := slots[ci][nextSlot[ci]]
		nextSlot[ci]++
		canon[r] = c
		fp.regs = append(fp.regs, r)
		return c
	}

	// Label positions: block boundaries affect the flow-sensitive
	// analyses even when a label is never jumped to.
	labelPos := make([]int, 0, len(proc.Labels))
	for _, idx := range proc.Labels {
		labelPos = append(labelPos, idx)
	}
	sort.Ints(labelPos)
	enc = binary.AppendUvarint(enc, uint64(len(labelPos)))
	prev := 0
	for _, idx := range labelPos {
		enc = binary.AppendUvarint(enc, uint64(idx-prev))
		prev = idx
	}

	// Call-target name first-occurrence indices (see the package
	// comment on monomorphic linking).
	nameSeq := map[string]uint64{}
	encodeCallee := func(target string) bool {
		id, ok := calleeID(target)
		if !ok {
			return false
		}
		enc = append(enc, byte(id.Kind))
		switch id.Kind {
		case CalleeClass:
			enc = binary.AppendUvarint(enc, id.ID)
		case CalleeNamed:
			enc = binary.AppendUvarint(enc, uint64(len(id.Name)))
			enc = append(enc, id.Name...)
		}
		seq, ok := nameSeq[target]
		if !ok {
			seq = uint64(len(nameSeq))
			nameSeq[target] = seq
		}
		enc = binary.AppendUvarint(enc, seq)
		return true
	}
	operand := func(o asm.Operand) {
		enc = append(enc, byte(o.Kind))
		switch o.Kind {
		case asm.OpReg:
			enc = append(enc, byte(canonOf(o.Reg)))
		case asm.OpImm:
			enc = binary.AppendVarint(enc, int64(o.Imm))
		case asm.OpMem:
			enc = append(enc, byte(canonOf(o.Reg)))
			enc = binary.AppendVarint(enc, int64(o.Imm))
		}
	}

	enc = binary.AppendUvarint(enc, uint64(len(insts)))
	for i, in := range insts {
		enc = append(enc, byte(in.Op))
		switch in.Op {
		case asm.JCC:
			// Cond is display-only; the target label resolves to an
			// instruction index.
			enc = binary.AppendUvarint(enc, uint64(proc.Labels[in.Target]))
		case asm.JMP:
			if tgt, ok := proc.Labels[in.Target]; ok {
				enc = append(enc, 0)
				enc = binary.AppendUvarint(enc, uint64(tgt))
			} else {
				enc = append(enc, 1)
				if !encodeCallee(in.Target) {
					return nil
				}
				fp.calls = append(fp.calls, Call{Inst: i, Target: in.Target})
			}
		case asm.CALL:
			if !encodeCallee(in.Target) {
				return nil
			}
			fp.calls = append(fp.calls, Call{Inst: i, Target: in.Target})
		default:
			operand(in.Dst)
			operand(in.Src)
		}
	}

	fp.enc = enc
	fp.hash = maphash.Bytes(seed, enc)
	return fp
}
