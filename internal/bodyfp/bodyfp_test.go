package bodyfp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"retypd/internal/asm"
)

// fpOf analyzes the named procedure of src and fingerprints it, with
// every call target bound to its own name.
func fpOf(t *testing.T, src, proc string, conf Config) *FP {
	t.Helper()
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, ok := prog.ProcIndex[proc]
	if !ok {
		t.Fatalf("no procedure %q", proc)
	}
	fp := Compute(p, conf, func(target string) (CalleeID, bool) {
		return CalleeID{Kind: CalleeNamed, ID: uint64(len(target)*1000 + int(target[0]))}, true
	})
	if fp == nil {
		t.Fatalf("Compute(%s) returned nil", proc)
	}
	return fp
}

func wrap(name, body string) string {
	return "proc " + name + "\n" + body + "\nendproc\n\nproc callee\nret\nendproc\n\nproc callee2\nret\nendproc\n"
}

// TestRenameInvariance: the fingerprint is invariant under renaming of
// scratch registers within a symmetry class and under label renaming,
// and the procedure's own name never matters.
func TestRenameInvariance(t *testing.T) {
	base := `
    mov ebx, [ebp+8]
top:
    add ebx, 1
    cmp ebx, 10
    jl top
    mov eax, ebx
    ret`
	cases := []struct {
		name string
		body string
	}{
		{"esi-for-ebx", strings.ReplaceAll(base, "ebx", "esi")},
		{"edi-for-ebx", strings.ReplaceAll(base, "ebx", "edi")},
		{"label-renamed", strings.ReplaceAll(base, "top", "loop_x")},
		{"jcc-mnemonic", strings.ReplaceAll(base, "jl top", "jnz top")},
	}
	want := fpOf(t, wrap("f", base), "f", Config{})
	other := fpOf(t, wrap("other_name", base), "other_name", Config{})
	if !want.EquivalentTo(other) {
		t.Error("fingerprint depends on the procedure's own name")
	}
	for _, tc := range cases {
		got := fpOf(t, wrap("f", tc.body), "f", Config{})
		if got.Hash() != want.Hash() || !got.EquivalentTo(want) {
			t.Errorf("%s: fingerprint not invariant", tc.name)
		}
	}
	// The register-renamed variants must report differing register
	// assignments (the KeepIntermediates exclusion relies on it).
	got := fpOf(t, wrap("f", strings.ReplaceAll(base, "ebx", "esi")), "f", Config{})
	if got.SameRegisters(want) {
		t.Error("SameRegisters true across an ebx→esi renaming")
	}
	same := fpOf(t, wrap("g", base), "g", Config{})
	if !same.SameRegisters(want) {
		t.Error("SameRegisters false for identical bodies")
	}
}

// TestEcxEdxClass: ecx and edx are mutually renameable (both call-
// clobbered), but not interchangeable with the callee-saved class.
func TestEcxEdxClass(t *testing.T) {
	body := `
    mov ecx, [ebp+8]
    add ecx, 2
    mov eax, ecx
    ret`
	a := fpOf(t, wrap("f", body), "f", Config{})
	b := fpOf(t, wrap("f", strings.ReplaceAll(body, "ecx", "edx")), "f", Config{})
	c := fpOf(t, wrap("f", strings.ReplaceAll(body, "ecx", "ebx")), "f", Config{})
	if !a.EquivalentTo(b) {
		t.Error("ecx→edx renaming changed the fingerprint")
	}
	if a.EquivalentTo(c) {
		t.Error("ecx→ebx renaming must NOT match: the classes differ at calls")
	}
}

// TestDistinguishes: semantically different bodies must fingerprint
// differently.
func TestDistinguishes(t *testing.T) {
	base := `
    mov eax, [ebp+8]
    add eax, 1
    ret`
	want := fpOf(t, wrap("f", base), "f", Config{})
	cases := []struct {
		name string
		body string
		conf Config
	}{
		{"different-immediate", strings.ReplaceAll(base, "add eax, 1", "add eax, 2"), Config{}},
		{"different-slot", strings.ReplaceAll(base, "[ebp+8]", "[ebp+12]"), Config{}},
		{"different-op", strings.ReplaceAll(base, "add", "sub"), Config{}},
		{"extra-inst", base + "\nnop", Config{}},
		{"options", base, Config{MonomorphicCalls: true}},
		{"lattice", base, Config{LatticeSig: "99"}},
	}
	for _, tc := range cases {
		got := fpOf(t, wrap("f", tc.body), "f", tc.conf)
		if got.EquivalentTo(want) {
			t.Errorf("%s: fingerprints collide", tc.name)
		}
	}
	// A register that is a formal parameter is pinned: renaming it IS a
	// semantic change (the in_<reg> interface label changes).
	regParam := `
    add ebx, 1
    mov eax, ebx
    ret`
	p1 := fpOf(t, wrap("f", regParam), "f", Config{})
	p2 := fpOf(t, wrap("f", strings.ReplaceAll(regParam, "ebx", "esi")), "f", Config{})
	if p1.EquivalentTo(p2) {
		t.Error("formal-register renaming must change the fingerprint")
	}
}

// TestCalleeBindings: identical bodies calling targets with different
// identities must not match; equal identities must.
func TestCalleeBindings(t *testing.T) {
	src := `
proc f
    push 1
    call callee
    add esp, 4
    ret
endproc
proc callee
    ret
endproc
`
	prog := asm.MustParse(src)
	with := func(id CalleeID) *FP {
		fp := Compute(prog.ProcIndex["f"], Config{}, func(string) (CalleeID, bool) { return id, true })
		if fp == nil {
			t.Fatal("Compute returned nil")
		}
		return fp
	}
	a := with(CalleeID{Kind: CalleeClass, ID: 1})
	b := with(CalleeID{Kind: CalleeClass, ID: 1})
	c := with(CalleeID{Kind: CalleeClass, ID: 2})
	d := with(CalleeID{Kind: CalleeNamed, ID: 1})
	if !a.EquivalentTo(b) {
		t.Error("equal callee bindings must fingerprint equal")
	}
	if a.EquivalentTo(c) {
		t.Error("different callee classes must fingerprint different")
	}
	if a.EquivalentTo(d) {
		t.Error("class and named identities must never collide")
	}
	if len(a.Calls()) != 1 || a.Calls()[0].Target != "callee" {
		t.Errorf("Calls() = %+v", a.Calls())
	}

	// Ineligible callee poisons the body.
	if fp := Compute(prog.ProcIndex["f"], Config{}, func(string) (CalleeID, bool) { return CalleeID{}, false }); fp != nil {
		t.Error("Compute must return nil when a callee identity is unavailable")
	}
}

// TestRepetitionPattern: one callee called twice vs two class-equal
// callees called once each — the monomorphic-linking hazard — must
// fingerprint differently even under equal per-site identities.
func TestRepetitionPattern(t *testing.T) {
	twice := `
proc f
    call a
    call a
    ret
endproc
proc a
    ret
endproc
proc b
    ret
endproc
`
	split := strings.Replace(twice, "call a\n    call a", "call a\n    call b", 1)
	sameClass := func(string) (CalleeID, bool) { return CalleeID{Kind: CalleeClass, ID: 7}, true }
	fpTwice := Compute(asm.MustParse(twice).ProcIndex["f"], Config{}, sameClass)
	fpSplit := Compute(asm.MustParse(split).ProcIndex["f"], Config{}, sameClass)
	if fpTwice == nil || fpSplit == nil {
		t.Fatal("Compute returned nil")
	}
	if fpTwice.EquivalentTo(fpSplit) {
		t.Error("name-repetition patterns must be distinguished")
	}
}

// TestPropertyRandomBodies: random straight-line bodies — a body is
// always equivalent to its scratch-register- and label-renamed twin,
// and (with overwhelming probability) inequivalent to a body with any
// instruction altered.
func TestPropertyRandomBodies(t *testing.T) {
	r := rand.New(rand.NewSource(20260729))
	regs := []string{"ebx", "esi", "edi"}
	for trial := 0; trial < 40; trial++ {
		// Generate a random body over ebx/esi/edi. Every register is
		// defined before any read: a register read live-in at entry
		// becomes a formal parameter, which is pinned (renaming it
		// would change the in_<reg> interface — a different procedure).
		n := 3 + r.Intn(8)
		defined := map[string]bool{}
		var lines []string
		define := func(reg string) {
			if !defined[reg] {
				lines = append(lines, fmt.Sprintf("mov %s, %d", reg, r.Intn(9)))
				defined[reg] = true
			}
		}
		for i := 0; i < n; i++ {
			reg := regs[r.Intn(3)]
			switch r.Intn(4) {
			case 0:
				lines = append(lines, fmt.Sprintf("mov %s, [esp+%d]", reg, 4+4*r.Intn(4)))
				defined[reg] = true
			case 1:
				define(reg)
				lines = append(lines, fmt.Sprintf("add %s, %d", reg, r.Intn(16)))
			case 2:
				src := regs[r.Intn(3)]
				define(src)
				lines = append(lines, fmt.Sprintf("mov %s, %s", reg, src))
				defined[reg] = true
			case 3:
				define(reg)
				lines = append(lines, fmt.Sprintf("mov [esp-%d], %s", 4+4*r.Intn(3), reg))
			}
		}
		lines = append(lines, "mov eax, 0", "ret")
		body := strings.Join(lines, "\n")

		// A consistent permutation of the scratch class.
		perm := map[string]string{"ebx": "esi", "esi": "edi", "edi": "ebx"}
		renamed := body
		renamed = strings.ReplaceAll(renamed, "ebx", "§0")
		renamed = strings.ReplaceAll(renamed, "esi", "§1")
		renamed = strings.ReplaceAll(renamed, "edi", "§2")
		renamed = strings.ReplaceAll(renamed, "§0", perm["ebx"])
		renamed = strings.ReplaceAll(renamed, "§1", perm["esi"])
		renamed = strings.ReplaceAll(renamed, "§2", perm["edi"])

		a := fpOf(t, wrap("f", body), "f", Config{})
		b := fpOf(t, wrap("g", renamed), "g", Config{})
		if !a.EquivalentTo(b) {
			t.Fatalf("trial %d: register-permuted body not equivalent:\n%s\n--- vs ---\n%s", trial, body, renamed)
		}

		// Mutating any one instruction must break equivalence.
		mutIdx := r.Intn(len(lines) - 2) // keep the trailing mov/ret
		mutLines := append([]string(nil), lines...)
		mutLines[mutIdx] = "xor eax, eax"
		mutated := fpOf(t, wrap("f", strings.Join(mutLines, "\n")), "f", Config{})
		if a.EquivalentTo(mutated) {
			t.Fatalf("trial %d: mutated body still equivalent (line %d → xor)", trial, mutIdx)
		}
	}
}
