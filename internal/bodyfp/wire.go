package bodyfp

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"

	"retypd/internal/asm"
)

// Wire form of a body fingerprint: everything EquivalentTo,
// SameRegisters and Calls need, rendered to canonical bytes. The
// canonical encoding itself is already portable when the fingerprint
// was computed with named callees and a signature-string lattice
// identity (the engine's incremental session does exactly that); the
// grouping hash is process-seeded and therefore recomputed on decode
// rather than shipped.

// AppendWire appends fp's wire form to buf: uvarint(encoding length) ++
// canonical encoding ++ uvarint(register count) ++ register bytes ++
// uvarint(call count) ++ per call uvarint(inst) and the target name.
func (fp *FP) AppendWire(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(fp.enc)))
	buf = append(buf, fp.enc...)
	buf = binary.AppendUvarint(buf, uint64(len(fp.regs)))
	for _, r := range fp.regs {
		buf = append(buf, byte(r))
	}
	buf = binary.AppendUvarint(buf, uint64(len(fp.calls)))
	for _, c := range fp.calls {
		buf = binary.AppendUvarint(buf, uint64(c.Inst))
		buf = binary.AppendUvarint(buf, uint64(len(c.Target)))
		buf = append(buf, c.Target...)
	}
	return buf
}

// DecodeFPWire decodes one fingerprint from the front of data,
// recomputing the (process-local) grouping hash from the canonical
// encoding, and returns the bytes consumed. It refuses encodings of a
// different version.
func DecodeFPWire(data []byte) (*FP, int, error) {
	encLen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < encLen {
		return nil, 0, fmt.Errorf("bodyfp: truncated canonical encoding in wire form")
	}
	enc := append([]byte(nil), data[n:n+int(encLen)]...)
	n += int(encLen)
	if len(enc) < 1 || enc[0] != encVersion {
		return nil, 0, fmt.Errorf("bodyfp: unsupported encoding version in wire form")
	}
	fp := &FP{enc: enc, hash: maphash.Bytes(seed, enc)}
	nregs, m := binary.Uvarint(data[n:])
	if m <= 0 || uint64(len(data)-n-m) < nregs {
		return nil, 0, fmt.Errorf("bodyfp: truncated register list in wire form")
	}
	n += m
	for i := uint64(0); i < nregs; i++ {
		fp.regs = append(fp.regs, asm.Reg(data[n]))
		n++
	}
	ncalls, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("bodyfp: truncated call list in wire form")
	}
	n += m
	for i := uint64(0); i < ncalls; i++ {
		inst, m := binary.Uvarint(data[n:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("bodyfp: truncated call site in wire form")
		}
		n += m
		ln, m := binary.Uvarint(data[n:])
		if m <= 0 || uint64(len(data)-n-m) < ln {
			return nil, 0, fmt.Errorf("bodyfp: truncated call target in wire form")
		}
		n += m
		fp.calls = append(fp.calls, Call{Inst: int(inst), Target: string(data[n : n+int(ln)])})
		n += int(ln)
	}
	return fp, n, nil
}
