// Package ctype implements the final phase of type resolution (§4.3):
// converting inferred sketches into human-readable C types. The
// conversion is deliberately heuristic — the paper sequesters all
// unsound, C-specific policies into this phase so that the inference
// core stays sound:
//
//   - Example 4.1: const recovery — a pointer parameter with a .load
//     capability and no .store capability is rendered const.
//   - Example 4.2: union types — incomparable scalar lower bounds form
//     an antichain in Λ and are rendered as a union.
//   - Example 4.3 / G.1: specialization — signatures use the
//     F.3-refined parameter sketches when available.
//   - Example G.3: reroll — unrolled recursive types are folded by the
//     sketch quotient/memoized struct naming (pointer cycles become
//     named struct references, as in Figure 2's Struct_0).
//   - Semantic tags (#FileDescriptor, #SuccessZ, …) are emitted as
//     comments on the underlying C type, matching Figure 2's
//     "int // #FileDescriptor" rendering.
package ctype

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
)

// Kind discriminates Type.
type Kind uint8

// Type kinds.
const (
	// KPrim is a primitive/typedef'd scalar named by Name.
	KPrim Kind = iota
	// KPtr is a pointer to Elem.
	KPtr
	// KStruct is a struct with Fields; Name is its typedef name.
	KStruct
	// KUnion is a union of Members.
	KUnion
	// KFunc is a function type.
	KFunc
	// KUnknown is an undetermined type (rendered per width).
	KUnknown
)

// Type is a C type AST node.
type Type struct {
	Kind    Kind
	Name    string
	Const   bool
	Elem    *Type
	Fields  []Field
	Members []*Type
	Params  []*Type
	Ret     *Type
	// Tags carries semantic purpose tags to render as comments.
	Tags []string
	// Bits is the scalar width for KPrim/KUnknown (0 = 32).
	Bits int
}

// Field is a struct member.
type Field struct {
	Off  int
	Bits int
	Type *Type
}

// Prim makes a named scalar type.
func Prim(name string) *Type { return &Type{Kind: KPrim, Name: name} }

// PtrTo makes a pointer type.
func PtrTo(e *Type) *Type { return &Type{Kind: KPtr, Elem: e} }

// Unknown is an undetermined 32-bit type.
func Unknown() *Type { return &Type{Kind: KUnknown} }

// Equal reports structural equality (tags and const ignored), with a
// depth cut for recursive types.
func (t *Type) Equal(o *Type) bool { return equalDepth(t, o, 8) }

func equalDepth(a, b *Type, d int) bool {
	if a == nil || b == nil {
		return a == b
	}
	if d == 0 {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KPrim:
		return a.Name == b.Name
	case KPtr:
		return equalDepth(a.Elem, b.Elem, d-1)
	case KStruct:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Off != b.Fields[i].Off || !equalDepth(a.Fields[i].Type, b.Fields[i].Type, d-1) {
				return false
			}
		}
		return true
	case KUnion:
		if len(a.Members) != len(b.Members) {
			return false
		}
		for i := range a.Members {
			if !equalDepth(a.Members[i], b.Members[i], d-1) {
				return false
			}
		}
		return true
	case KFunc:
		if len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !equalDepth(a.Params[i], b.Params[i], d-1) {
				return false
			}
		}
		return equalDepth(a.Ret, b.Ret, d-1)
	default:
		return true
	}
}

// primRender maps lattice element names to C spellings.
var primRender = map[string]string{
	"int":    "int",
	"uint":   "unsigned int",
	"int8":   "int8_t",
	"uint8":  "uint8_t",
	"int16":  "int16_t",
	"uint16": "uint16_t",
	"int32":  "int32_t",
	"uint32": "uint32_t",
	"int64":  "int64_t",
	"uint64": "uint64_t",
	"num8":   "uint8_t",
	"num16":  "uint16_t",
	"num32":  "uint32_t",
	"num64":  "uint64_t",
	"char":   "char",
	"bool":   "bool",
	"str":    "char *",
	"ptr":    "void *",
	"code":   "void (*)()",
	"⊤":      "void *",
	"⊥":      "void",
}

// CName renders a primitive name as C source.
func CName(name string) string {
	if c, ok := primRender[name]; ok {
		return c
	}
	return name
}

// String renders the type as a C type expression (without a declarator
// name).
func (t *Type) String() string { return t.render(map[*Type]bool{}) }

func (t *Type) render(onPath map[*Type]bool) string {
	if t == nil {
		return "void"
	}
	prefix := ""
	if t.Const {
		prefix = "const "
	}
	tagSuffix := ""
	if len(t.Tags) > 0 {
		tagSuffix = " /* " + strings.Join(t.Tags, " ") + " */"
	}
	switch t.Kind {
	case KPrim:
		return prefix + CName(t.Name) + tagSuffix
	case KUnknown:
		switch t.Bits {
		case 8:
			return prefix + "uint8_t" + tagSuffix
		case 16:
			return prefix + "uint16_t" + tagSuffix
		default:
			return prefix + "int" + tagSuffix // IdaPro-style fallback
		}
	case KPtr:
		if t.Elem != nil && t.Elem.Kind == KStruct && t.Elem.Name != "" {
			return prefix + t.Elem.Name + " *" + tagSuffix
		}
		if onPath[t] {
			return prefix + "void *" + tagSuffix // pointer cycle with no struct
		}
		onPath[t] = true
		defer delete(onPath, t)
		return prefix + t.Elem.render(onPath) + " *" + tagSuffix
	case KStruct:
		if onPath[t] {
			if t.Name != "" {
				return t.Name
			}
			return "struct /* recursive */"
		}
		onPath[t] = true
		defer delete(onPath, t)
		var b strings.Builder
		b.WriteString(prefix + "struct ")
		if t.Name != "" {
			b.WriteString(t.Name + " ")
		}
		b.WriteString("{ ")
		for _, f := range t.Fields {
			fmt.Fprintf(&b, "%s field_%d; ", f.Type.render(onPath), f.Off)
		}
		b.WriteString("}")
		return b.String() + tagSuffix
	case KUnion:
		var parts []string
		for i, m := range t.Members {
			parts = append(parts, fmt.Sprintf("%s alt_%d;", m.render(onPath), i))
		}
		return prefix + "union { " + strings.Join(parts, " ") + " }" + tagSuffix
	case KFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.render(onPath))
		}
		if len(ps) == 0 {
			ps = []string{"void"}
		}
		return fmt.Sprintf("%s (*)(%s)%s", t.Ret.render(onPath), strings.Join(ps, ", "), tagSuffix)
	default:
		return "?"
	}
}

// Converter turns sketches into C types, accumulating named struct
// typedefs for recursive types.
type Converter struct {
	Lat *lattice.Lattice
	// Structs lists the named struct types created so far, in creation
	// order.
	Structs []*Type
	memo    map[string]*Type
	nameN   int
}

// NewConverter makes a converter over lat.
func NewConverter(lat *lattice.Lattice) *Converter {
	return &Converter{Lat: lat, memo: map[string]*Type{}}
}

// FromSketch converts the sketch rooted at state 0.
func (c *Converter) FromSketch(sk *sketch.Sketch) *Type {
	t := c.convert(sk, 0, map[int]*Type{}, 32)
	c.nameCycles(t, map[*Type]bool{}, map[*Type]bool{})
	return t
}

// ConvertParam converts a parameter sketch, applying the const policy
// (Example 4.1) at its root. The root is display-converted in
// contravariant position (function inputs prefer upper bounds, §3.5),
// and the returned node is a copy so that const does not leak into
// other references to a shared recursive type.
func (c *Converter) ConvertParam(sk *sketch.Sketch) *Type {
	// Copy-on-write: sk may be shared (a cache-served sketch is sealed
	// and read concurrently), so the contravariant root view is a fresh
	// derivation, never an in-place flip-and-restore.
	sk = sk.WithRootVariance(label.Contravariant)
	t := c.FromSketch(sk)
	probe := *t
	c.applyConst(sk, 0, &probe)
	if probe.Const != t.Const {
		return &probe
	}
	return t
}

// nameCycles assigns typedef names to structs participating in type
// cycles (the reroll policy's output form, Example G.3) so that
// rendering terminates with a named back reference. On a back edge the
// first struct on the cycle segment is named.
func (c *Converter) nameCycles(t *Type, onPath, done map[*Type]bool) {
	var path []*Type
	index := map[*Type]int{}
	var walk func(t *Type)
	walk = func(t *Type) {
		if t == nil || done[t] {
			return
		}
		if i, on := index[t]; on {
			for _, n := range path[i:] {
				if n.Kind == KStruct {
					if n.Name == "" {
						c.nameStruct(n)
					}
					return
				}
			}
			return
		}
		index[t] = len(path)
		path = append(path, t)
		switch t.Kind {
		case KPtr:
			walk(t.Elem)
		case KStruct:
			for _, f := range t.Fields {
				walk(f.Type)
			}
		case KUnion:
			for _, m := range t.Members {
				walk(m)
			}
		case KFunc:
			for _, p := range t.Params {
				walk(p)
			}
			walk(t.Ret)
		}
		path = path[:len(path)-1]
		delete(index, t)
		done[t] = true
	}
	walk(t)
}

// FromSketchState converts a specific state (width hints the scalar
// size in bits).
func (c *Converter) FromSketchState(sk *sketch.Sketch, st int, bits int) *Type {
	return c.convert(sk, st, map[int]*Type{}, bits)
}

// convert implements the conversion policy tree.
func (c *Converter) convert(sk *sketch.Sketch, st int, active map[int]*Type, bits int) *Type {
	if t, ok := active[st]; ok {
		// Recursive back reference: ensure the target is a named
		// struct.
		if t.Kind == KStruct && t.Name == "" {
			c.nameStruct(t)
		}
		return t
	}
	node := &sk.States[st]

	// Function capability dominates.
	var ins, outs []sketch.Edge
	var loads, stores []sketch.Edge
	var fields []sketch.Edge
	for _, e := range node.Edges {
		switch e.Label.Kind() {
		case label.KIn:
			ins = append(ins, e)
		case label.KOut:
			outs = append(outs, e)
		case label.KLoad:
			loads = append(loads, e)
		case label.KStore:
			stores = append(stores, e)
		case label.KField:
			fields = append(fields, e)
		}
	}

	if len(ins) > 0 || len(outs) > 0 {
		ft := &Type{Kind: KFunc, Ret: Prim("void")}
		active[st] = ft
		defer delete(active, st)
		sortInEdges(ins)
		for _, e := range ins {
			p := c.convert(sk, e.To, active, 32)
			probe := *p
			c.applyConst(sk, e.To, &probe)
			if probe.Const != p.Const {
				p = &probe
			}
			ft.Params = append(ft.Params, p)
		}
		if len(outs) > 0 {
			ft.Ret = c.convert(sk, outs[0].To, active, 32)
		}
		return ft
	}

	if len(loads) > 0 || len(stores) > 0 {
		pt := &Type{Kind: KPtr}
		active[st] = pt
		defer delete(active, st)
		inner := loads
		inner = append(inner, stores...)
		pt.Elem = c.pointee(sk, inner[0].To, active)
		return pt
	}

	if len(fields) > 0 {
		// A bare struct (e.g. a frame region's contents).
		return c.structOf(sk, st, fields, active)
	}

	return c.scalar(sk, st, bits)
}

// pointee converts the target of a load/store edge: if it carries σ
// fields it is a struct; a lone 32-bit field at offset 0 collapses to
// the field's own type.
func (c *Converter) pointee(sk *sketch.Sketch, st int, active map[int]*Type) *Type {
	node := &sk.States[st]
	var fields []sketch.Edge
	for _, e := range node.Edges {
		if e.Label.Kind() == label.KField {
			fields = append(fields, e)
		}
	}
	if len(fields) == 0 {
		return c.scalar(sk, st, 32)
	}
	if len(fields) == 1 && fields[0].Label.Offset() == 0 {
		return c.convert(sk, fields[0].To, active, fields[0].Label.Bits())
	}
	return c.structOf(sk, st, fields, active)
}

// structOf assembles a struct type from σN@k edges.
func (c *Converter) structOf(sk *sketch.Sketch, st int, fields []sketch.Edge, active map[int]*Type) *Type {
	t := &Type{Kind: KStruct}
	active[st] = t
	defer delete(active, st)
	sort.Slice(fields, func(i, j int) bool { return fields[i].Label.Offset() < fields[j].Label.Offset() })
	for _, e := range fields {
		ft := c.convert(sk, e.To, active, e.Label.Bits())
		t.Fields = append(t.Fields, Field{Off: e.Label.Offset(), Bits: e.Label.Bits(), Type: ft})
	}
	return t
}

// nameStruct assigns the next Struct_N typedef name.
func (c *Converter) nameStruct(t *Type) {
	t.Name = "Struct_" + strconv.Itoa(c.nameN)
	c.nameN++
	c.Structs = append(c.Structs, t)
}

// scalar applies the display policy for leaf nodes: prefer the
// informative bound for the node's variance; resolve incomparable
// lower bounds as a union (Example 4.2); carry semantic tags as
// comments; fall back per pointer/integer flags.
func (c *Converter) scalar(sk *sketch.Sketch, st int, bits int) *Type {
	node := &sk.States[st]
	lat := c.Lat

	isTag := func(e lattice.Elem) bool { return strings.HasPrefix(lat.Name(e), "#") }
	split := func(set []lattice.Elem) (scalars []lattice.Elem, tags []string) {
		for _, e := range set {
			if isTag(e) {
				tags = append(tags, lat.Name(e))
			} else if e != lat.Bottom() && e != lat.Top() {
				scalars = append(scalars, e)
			}
		}
		return
	}

	// Primary set per variance (§3.5: covariant nodes carry joins of
	// lower bounds, contravariant nodes meets of upper bounds), with
	// the other side as fallback.
	primary, secondary := node.LowerSet, node.UpperSet
	if node.Variance == label.Contravariant {
		primary, secondary = node.UpperSet, node.LowerSet
	}
	scalars, tags := split(primary)
	if len(scalars) == 0 {
		var t2 []string
		scalars, t2 = split(secondary)
		tags = append(tags, t2...)
	} else if _, moreTags := split(secondary); len(moreTags) > 0 {
		tags = append(tags, moreTags...)
	}
	tags = dedupe(tags)

	switch len(scalars) {
	case 0:
		var t *Type
		switch {
		case node.Flags&sketch.FlagPointer != 0:
			t = PtrTo(Prim("void"))
		case node.Flags&sketch.FlagInteger != 0:
			t = Prim("int")
		default:
			t = Unknown()
			t.Bits = bits
		}
		t.Tags = tags
		return t
	case 1:
		t := Prim(lat.Name(scalars[0]))
		t.Tags = tags
		return t
	default:
		// Example 4.2: incomparable scalar constraints become a union.
		u := &Type{Kind: KUnion, Tags: tags}
		for _, e := range scalars {
			u.Members = append(u.Members, Prim(lat.Name(e)))
		}
		return u
	}
}

// applyConst implements Example 4.1: a pointer parameter whose sketch
// has a .load capability but no .store capability is const.
func (c *Converter) applyConst(sk *sketch.Sketch, st int, t *Type) {
	if t.Kind != KPtr {
		return
	}
	node := &sk.States[st]
	hasLoad, hasStore := false, false
	for _, e := range node.Edges {
		switch e.Label.Kind() {
		case label.KLoad:
			hasLoad = true
		case label.KStore:
			hasStore = true
		}
	}
	if hasLoad && !hasStore {
		t.Const = true
	}
}

func dedupe(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func sortInEdges(es []sketch.Edge) {
	sort.Slice(es, func(i, j int) bool {
		return paramOrder(es[i].Label.Loc()) < paramOrder(es[j].Label.Loc())
	})
}

// paramOrder sorts stack parameters by offset, then registers by name.
func paramOrder(loc string) string {
	if strings.HasPrefix(loc, "stack") {
		n, err := strconv.Atoi(loc[5:])
		if err == nil {
			return fmt.Sprintf("a%08d", n)
		}
	}
	return "b" + loc
}

// Signature is a rendered procedure signature.
type Signature struct {
	Name   string
	Ret    *Type
	Params []Param
}

// Param is one parameter of a Signature.
type Param struct {
	Loc  string
	Type *Type
}

// String renders the signature as a C declaration.
func (s *Signature) String() string {
	var ps []string
	for _, p := range s.Params {
		ps = append(ps, p.Type.String())
	}
	if len(ps) == 0 {
		ps = []string{"void"}
	}
	ret := "void"
	if s.Ret != nil {
		ret = s.Ret.String()
	}
	return fmt.Sprintf("%s %s(%s);", ret, s.Name, strings.Join(ps, ", "))
}
