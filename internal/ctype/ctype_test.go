package ctype

import (
	"strings"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
)

func sketchOf(t *testing.T, text string, v string) (*sketch.Sketch, *lattice.Lattice) {
	t.Helper()
	cs, err := constraints.ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.Default()
	sh := sketch.NewBuilder(cs, lat)
	return sh.SketchFor(constraints.Var(v), -1), lat
}

// TestScalarDisplayPolicy: upper bounds display at contravariant
// (parameter) positions, lower bounds at covariant ones.
func TestScalarDisplayPolicy(t *testing.T) {
	lat := lattice.Default()
	sk := sketch.NewTop(lat)
	sk.States[0].AddUpper(lat, lat.MustElem("size_t"))
	conv := NewConverter(lat)
	p := conv.ConvertParam(sk)
	if p.Kind != KPrim || p.Name != "size_t" {
		t.Errorf("param display = %s, want size_t", p)
	}
}

// TestUnionPolicy (Example 4.2): incomparable scalar bounds become a
// union.
func TestUnionPolicy(t *testing.T) {
	lat := lattice.Default()
	sk := sketch.NewTop(lat)
	sk.States[0].AddLower(lat, lat.MustElem("int"))
	sk.States[0].AddLower(lat, lat.MustElem("FILE"))
	conv := NewConverter(lat)
	out := conv.FromSketch(sk)
	if out.Kind != KUnion || len(out.Members) != 2 {
		t.Errorf("want a 2-member union, got %s", out)
	}
}

// TestTagsAsComments: semantic tags render as comments on the scalar.
func TestTagsAsComments(t *testing.T) {
	lat := lattice.Default()
	sk := sketch.NewTop(lat)
	sk.States[0].AddLower(lat, lat.MustElem("int"))
	sk.States[0].AddLower(lat, lat.MustElem("#SuccessZ"))
	conv := NewConverter(lat)
	out := conv.FromSketch(sk)
	s := out.String()
	if !strings.Contains(s, "int") || !strings.Contains(s, "#SuccessZ") {
		t.Errorf("tag rendering: %s", s)
	}
}

// TestStructAssembly: σ fields become struct members in offset order.
func TestStructAssembly(t *testing.T) {
	sk, lat := sketchOf(t, `
		p.load.σ32@4 <= int
		p.load.σ32@0 <= str
		x <= p
	`, "x")
	conv := NewConverter(lat)
	out := conv.FromSketch(sk)
	if out.Kind != KPtr || out.Elem.Kind != KStruct {
		t.Fatalf("want pointer-to-struct, got %s", out)
	}
	if len(out.Elem.Fields) != 2 || out.Elem.Fields[0].Off != 0 || out.Elem.Fields[1].Off != 4 {
		t.Errorf("field order wrong: %s", out)
	}
}

// TestPointeeCollapse: a single σ32@0 field collapses to the scalar
// (pointer-to-int, not pointer-to-struct-of-one).
func TestPointeeCollapse(t *testing.T) {
	sk, lat := sketchOf(t, `
		p.load.σ32@0 <= int
		int <= p.load.σ32@0
		x <= p
	`, "x")
	conv := NewConverter(lat)
	out := conv.FromSketch(sk)
	if out.Kind != KPtr || out.Elem.Kind != KPrim || out.Elem.Name != "int" {
		t.Errorf("want int*, got %s", out)
	}
}

// TestRecursiveStructNaming (Example G.3): recursion produces a named
// typedef with a back reference.
func TestRecursiveStructNaming(t *testing.T) {
	sk, lat := sketchOf(t, `
		t.load.σ32@0 <= t
		t.load.σ32@4 <= int
		x <= t
	`, "x")
	conv := NewConverter(lat)
	out := conv.FromSketch(sk)
	if len(conv.Structs) != 1 {
		t.Fatalf("want one named struct, got %d (%s)", len(conv.Structs), out)
	}
	if conv.Structs[0].Name == "" {
		t.Error("recursive struct must be named")
	}
	s := out.String()
	if !strings.Contains(s, conv.Structs[0].Name) {
		t.Errorf("rendering must reference the typedef: %s", s)
	}
}

// TestConstPolicy (Example 4.1): load without store ⇒ const param.
func TestConstPolicy(t *testing.T) {
	skR, lat := sketchOf(t, `
		p.load.σ32@0 <= int
		x <= p
	`, "x")
	conv := NewConverter(lat)
	if !conv.ConvertParam(skR).Const {
		t.Error("load-only parameter should be const")
	}
	skW, lat2 := sketchOf(t, `
		int <= p.store.σ32@0
		x <= p
	`, "x")
	conv2 := NewConverter(lat2)
	if conv2.ConvertParam(skW).Const {
		t.Error("store-capable parameter must not be const")
	}
}

// TestFunctionPointer: in/out capabilities render as function types.
func TestFunctionPointer(t *testing.T) {
	sk, lat := sketchOf(t, `
		f.in_stack0 <= int
		int <= f.out_eax
		x <= f
	`, "x")
	conv := NewConverter(lat)
	out := conv.FromSketch(sk)
	if out.Kind != KFunc {
		t.Fatalf("want function type, got %s", out)
	}
	if len(out.Params) != 1 {
		t.Errorf("want 1 param, got %s", out)
	}
}

// TestSignatureRendering covers the C declaration printer.
func TestSignatureRendering(t *testing.T) {
	sig := &Signature{
		Name: "f",
		Ret:  Prim("int"),
		Params: []Param{
			{Loc: "stack0", Type: &Type{Kind: KPtr, Elem: Prim("char"), Const: true}},
			{Loc: "stack4", Type: Prim("size_t")},
		},
	}
	s := sig.String()
	want := "int f(const char *, size_t);"
	if s != want {
		t.Errorf("got %q, want %q", s, want)
	}
	empty := &Signature{Name: "g", Ret: Prim("void")}
	if empty.String() != "void g(void);" {
		t.Errorf("got %q", empty.String())
	}
}

// TestEqualRecursive: structural equality terminates on recursive
// types.
func TestEqualRecursive(t *testing.T) {
	a := &Type{Kind: KStruct}
	a.Fields = []Field{{Off: 0, Bits: 32, Type: PtrTo(a)}}
	b := &Type{Kind: KStruct}
	b.Fields = []Field{{Off: 0, Bits: 32, Type: PtrTo(b)}}
	if !a.Equal(b) {
		t.Error("isomorphic recursive structs should compare equal")
	}
	c := &Type{Kind: KStruct, Fields: []Field{{Off: 4, Bits: 32, Type: Prim("int")}}}
	if a.Equal(c) {
		t.Error("different structs must not compare equal")
	}
}
