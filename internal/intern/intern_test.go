package intern

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"retypd/internal/label"
)

// TestIDStability: interning is a pure function of the value — the same
// string, word, or (base, path) pair maps to the same id no matter how
// often, in what order, or through which derivation route it is
// interned.
func TestIDStability(t *testing.T) {
	tb := NewTable()

	// Strings: idempotent, distinct strings get distinct ids, id 0 is "".
	if got := tb.Sym(""); got != 0 {
		t.Fatalf("Sym(\"\") = %d, want 0", got)
	}
	a1, b1 := tb.Sym("alpha"), tb.Sym("beta")
	if a1 == b1 {
		t.Fatal("distinct strings share a Sym")
	}
	for i := 0; i < 100; i++ {
		if tb.Sym("alpha") != a1 || tb.Sym("beta") != b1 {
			t.Fatal("re-interning changed a Sym")
		}
	}
	if tb.StringOf(a1) != "alpha" {
		t.Fatalf("StringOf round-trip broke: %q", tb.StringOf(a1))
	}

	// Words: the trie route (label-by-label) and the batch route agree,
	// and attributes are exact.
	ls := []label.Label{label.In("stack0"), label.Load(), label.Field(32, 4)}
	byAppend := WordRef(0)
	for _, l := range ls {
		byAppend = tb.AppendLabel(byAppend, l)
	}
	if byBatch := tb.Word(ls); byBatch != byAppend {
		t.Fatalf("Word(%v) = %d, append route = %d", ls, byBatch, byAppend)
	}
	if tb.WordLen(byAppend) != 3 {
		t.Fatalf("WordLen = %d, want 3", tb.WordLen(byAppend))
	}
	if want := label.Word(ls).Variance(); tb.WordVariance(byAppend) != want {
		t.Fatalf("WordVariance = %v, want %v", tb.WordVariance(byAppend), want)
	}
	got := tb.WordLabels(byAppend)
	if len(got) != 3 || got[0] != ls[0] || got[1] != ls[1] || got[2] != ls[2] {
		t.Fatalf("WordLabels = %v, want %v", got, ls)
	}

	// DTVs: append route, pair route, and base-substitution route all
	// agree; the table is prefix-closed so Parent is exact.
	d := tb.DTV(a1, 0)
	for _, l := range ls {
		d = tb.DTVAppend(d, l)
	}
	if byPair := tb.DTV(a1, byAppend); byPair != d {
		t.Fatalf("DTV(pair) = %d, append route = %d", byPair, d)
	}
	if bySubst := tb.DTVWithBase(tb.DTV(b1, byAppend), a1); bySubst != d {
		t.Fatalf("DTVWithBase route = %d, want %d", bySubst, d)
	}
	if tb.DTVBase(d) != a1 || tb.DTVWord(d) != byAppend || tb.DTVDepth(d) != 3 {
		t.Fatal("DTV attributes do not match its parts")
	}
	p, last, ok := tb.DTVParent(d)
	if !ok || last != ls[2] || tb.DTVDepth(p) != 2 {
		t.Fatalf("DTVParent = (%d, %v, %v)", p, last, ok)
	}
	if tb.DTVString(d) != "alpha.in_stack0.load.σ32@4" {
		t.Fatalf("DTVString = %q", tb.DTVString(d))
	}
}

// TestIDStabilityRandomized: a randomized mirror check — every interned
// value is recorded with its id in a plain map, then re-interned in a
// shuffled order and compared.
func TestIDStabilityRandomized(t *testing.T) {
	tb := NewTable()
	r := rand.New(rand.NewSource(20160613))
	alphabet := []label.Label{
		label.In("stack0"), label.In("stack4"), label.Out("eax"),
		label.Load(), label.Store(), label.Field(32, 0), label.Field(8, 12),
	}
	type dtv struct {
		base string
		path []label.Label
	}
	var cases []dtv
	ids := map[string]Ref{}
	for i := 0; i < 500; i++ {
		c := dtv{base: fmt.Sprintf("v%d", r.Intn(40))}
		for n := r.Intn(5); n > 0; n-- {
			c.path = append(c.path, alphabet[r.Intn(len(alphabet))])
		}
		cases = append(cases, c)
		id := tb.DTV(tb.Sym(c.base), tb.Word(c.path))
		key := tb.DTVString(id)
		if prev, ok := ids[key]; ok && prev != id {
			t.Fatalf("same rendering %q got two ids: %d, %d", key, prev, id)
		}
		ids[key] = id
	}
	r.Shuffle(len(cases), func(i, j int) { cases[i], cases[j] = cases[j], cases[i] })
	for _, c := range cases {
		id := tb.DTV(tb.Sym(c.base), tb.Word(c.path))
		if ids[tb.DTVString(id)] != id {
			t.Fatalf("re-interning %q in shuffled order changed its id", tb.DTVString(id))
		}
	}
}

// TestConcurrentInterning hammers one table from many goroutines with
// overlapping values; run under -race (as CI does) this doubles as the
// table's data-race certificate. Every goroutine records the ids it
// observed, and all observations must agree.
func TestConcurrentInterning(t *testing.T) {
	tb := NewTable()
	const workers = 8
	const perWorker = 400
	results := make([]map[string]Ref, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			out := map[string]Ref{}
			for i := 0; i < perWorker; i++ {
				// Overlapping name space across workers forces races on
				// first-intern of the same value.
				base := tb.Sym(fmt.Sprintf("proc%d", r.Intn(50)))
				d := tb.DTV(base, 0)
				for n := r.Intn(4); n > 0; n-- {
					switch r.Intn(3) {
					case 0:
						d = tb.DTVAppend(d, label.Load())
					case 1:
						d = tb.DTVAppend(d, label.Field(32, 4*r.Intn(4)))
					default:
						d = tb.DTVAppend(d, label.In("stack0"))
					}
				}
				out[tb.DTVString(d)] = d
				// Exercise the read paths concurrently too.
				_, _, _ = tb.DTVParent(d)
				_ = tb.DTVVariance(d)
				_ = tb.WordLabels(tb.DTVWord(d))
			}
			results[w] = out
		}()
	}
	wg.Wait()
	merged := map[string]Ref{}
	for w, out := range results {
		for k, id := range out {
			if prev, ok := merged[k]; ok && prev != id {
				t.Fatalf("worker %d saw %q as id %d, another worker saw %d", w, k, id, prev)
			}
			merged[k] = id
		}
	}
}

// BenchmarkLookupMapStringVsInterned compares the two index designs the
// interning refactor trades between: a map keyed by rendered
// derived-type-variable strings (the pre-intern representation, paying
// one String() per probe) against a map keyed by the 4-byte interned
// ref. This is the per-node cost of the constraint graph and
// shape-quotient indices.
func BenchmarkLookupMapStringVsInterned(b *testing.B) {
	tb := NewTable()
	type rendered struct {
		base string
		path label.Word
	}
	var keys []rendered
	var refs []Ref
	for i := 0; i < 512; i++ {
		base := fmt.Sprintf("proc%d!v%d", i%16, i)
		path := label.Word{label.In("stack0"), label.Load(), label.Field(32, 4*(i%8))}
		keys = append(keys, rendered{base: base, path: path})
		refs = append(refs, tb.DTV(tb.Sym(base), tb.Word(path)))
	}

	b.Run("map[string]", func(b *testing.B) {
		idx := map[string]int32{}
		for i, k := range keys {
			idx[k.base+"."+k.path.String()] = int32(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			// Rendering per probe is the point: the old design had no
			// stored key, it built one from (base, path) every time.
			if _, ok := idx[k.base+"."+k.path.String()]; !ok {
				b.Fatal("missing key")
			}
		}
	})
	b.Run("map[Ref]", func(b *testing.B) {
		idx := map[Ref]int32{}
		for i, r := range refs {
			idx[r] = int32(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%len(keys)]
			r := tb.DTV(tb.Sym(k.base), tb.Word(k.path))
			if _, ok := idx[r]; !ok {
				b.Fatal("missing ref")
			}
		}
	})
	b.Run("map[Ref]/warm-ref", func(b *testing.B) {
		idx := map[Ref]int32{}
		for i, r := range refs {
			idx[r] = int32(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The steady-state probe: the caller already holds the ref
			// (as every post-generation solver phase does).
			if _, ok := idx[refs[i%len(refs)]]; !ok {
				b.Fatal("missing ref")
			}
		}
	})
}
