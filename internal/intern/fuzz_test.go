package intern

import (
	"bytes"
	"os"
	"testing"

	"retypd/internal/fuzzcorpus"
	"retypd/internal/label"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus; set
// RETYPD_WRITE_FUZZ_CORPUS=1 after changing the wire encoding.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RETYPD_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set RETYPD_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	if err := fuzzcorpus.Write("testdata/fuzz/FuzzDecodeWordWire", fuzzWordSeeds()); err != nil {
		t.Fatal(err)
	}
}

// fuzzWordSeeds returns canonical encodings covering every label kind,
// used both as f.Add seeds and to regenerate the checked-in corpus.
func fuzzWordSeeds() [][]byte {
	words := [][]label.Label{
		nil,
		{label.Load()},
		{label.In("stack0"), label.Load(), label.Field(32, -8)},
		{label.Out("eax"), label.Store()},
		{label.In(""), label.Field(8, 1024)},
	}
	t := NewTable()
	var out [][]byte
	for _, ls := range words {
		out = append(out, t.AppendWordWire(nil, t.Word(ls)))
	}
	// Adversarial variants: truncation, junk, a huge length prefix.
	full := out[2]
	out = append(out,
		full[:len(full)/2],
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		[]byte{0x01, 0xee},
	)
	return out
}

// FuzzDecodeWordWire: arbitrary bytes must either fail to decode or
// yield a word whose canonical re-encoding round-trips byte-stably
// through a fresh table — never panic, never over-consume. This is the
// native-fuzzing form of TestWordWireRoundTrip's property.
func FuzzDecodeWordWire(f *testing.F) {
	for _, seed := range fuzzWordSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// A fresh table per input: decoding interns, and the fuzz loop
		// must not grow one shared table without bound.
		tb := NewTable()
		w, n, err := tb.DecodeWordWire(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		// The accepted input may be non-canonical (padded uvarints); the
		// re-encoding is the canonical form and must be a fixed point.
		enc := tb.AppendWordWire(nil, w)
		tb2 := NewTable()
		w2, n2, err := tb2.DecodeWordWire(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("canonical decode consumed %d of %d bytes", n2, len(enc))
		}
		if re := tb2.AppendWordWire(nil, w2); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode not a fixed point: %x vs %x", re, enc)
		}
		a, b := tb.WordLabels(w), tb2.WordLabels(w2)
		if len(a) != len(b) {
			t.Fatalf("fresh table decoded %d labels, want %d", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("label %d mismatch: %v vs %v", i, a[i], b[i])
			}
		}
	})
}
