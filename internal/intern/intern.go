// Package intern is the process-wide symbol table backing the interned
// derived-type-variable core.
//
// Profiling showed whole-program inference to be allocation-bound:
// derived type variables were passed around as freshly rendered strings
// and every hot index (constraint-set dedup, constraint-graph nodes,
// shape-inference classes, fingerprint canonicalization) was a
// map[string] keyed by those renderings. This package replaces that
// representation with hash-consing: strings, label words over Σ, and
// (base, word) derived-type-variable pairs are interned once into a
// concurrency-safe table and thereafter identified by dense uint32 ids.
// Equality becomes integer comparison, map keys become small comparable
// structs, and the per-use rendering cost disappears — strings are
// resolved only at the serialization boundary.
//
// Three id kinds are issued:
//
//   - Sym interns a string (base type-variable names, and any other
//     identifier worth a dense id, such as lattice signatures);
//   - WordRef interns a word over the field-label alphabet Σ as a node
//     of a trie: a word is (parent word, last label), so appending a
//     label is a single lookup and the word's length and variance are
//     precomputed at creation;
//   - Ref interns a derived type variable as a (base Sym, path WordRef)
//     pair. The Ref table is prefix-closed — interning x.u.ℓ also
//     interns x.u — so Parent lookups are reads, never writes.
//
// Id 0 of each kind is reserved for the empty value ("" / ε / the zero
// derived type variable), which keeps zero values of wrapper types
// meaningful.
//
// # Concurrency: the snapshot read path
//
// The table is append-only and process-global (like the ids handed out
// by the runtime's own symbol interning, entries are never evicted);
// memory grows with the number of distinct names a process infers over,
// which is bounded by corpus size. Reads vastly outnumber first-time
// interns on warm workloads, and an RWMutex read path showed up as
// ~6–10% of inference cycles in sync/atomic (every RLock/RUnlock is an
// atomic RMW). The replacement read path takes no lock at all, split by
// direction:
//
//   - id → entry (StringOf, the DTV/Word attribute reads): the entry
//     arrays are append-only and entries are immutable, so the current
//     slice headers are republished through an atomic pointer after
//     every first-time intern (no copying — the backing arrays are
//     shared, and a published header never covers an index that is
//     still being written). These reads are one atomic pointer load
//     plus a bounds-checked slice index, always, even for an id minted
//     a nanosecond ago on another goroutine.
//   - key → id (the intern lookups): served from an immutable map
//     snapshot behind a second atomic pointer; misses fall back to the
//     mutex-guarded authoritative maps, and the snapshot is rebuilt
//     once enough new entries (or enough locked fallback hits)
//     accumulate. Rebuilds copy the maps, so the threshold scales with
//     table size — amortized O(1) per intern, zero rebuilds on a warm
//     table.
//
// # Wire forms
//
// Ids are process-local: the id assigned to a symbol depends on intern
// order, so ids must never be persisted or shipped across processes.
// For caches that outlive the process, the table renders ids to
// canonical bytes on export and re-interns them on import: a Sym's wire
// form is its string contents, a WordRef's is the concatenation of its
// labels' canonical encodings (label.AppendWire), precomputed at intern
// time so exporting is a copy. See AppendWordWire/DecodeWordWire and
// the encoders layered on top (constraints, pgraph, sketch, bodyfp).
package intern

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"retypd/internal/label"
)

// Sym is a dense id for an interned string. Sym 0 is "".
type Sym uint32

// WordRef is a dense id for an interned label word. WordRef 0 is ε.
type WordRef uint32

// Ref is a dense id for an interned (base, path) derived type variable.
// Ref 0 is the zero derived type variable ("", ε).
type Ref uint32

// wordKey identifies a word as a trie step from its prefix.
type wordKey struct {
	parent WordRef
	last   label.Label
}

// wordEntry stores a word's trie link plus the derived attributes that
// hot paths need in O(1): length, variance, and the canonical wire
// bytes (immutable once created).
type wordEntry struct {
	parent   WordRef
	last     label.Label
	depth    uint32
	variance label.Variance
	// wire is the concatenation of the member labels' canonical wire
	// encodings, front to back — the portable form of the word, shared
	// structurally with no length prefix (decoding is driven by depth).
	wire []byte
}

// dtvKey identifies a derived type variable by its parts.
type dtvKey struct {
	base Sym
	word WordRef
}

// dtvEntry stores a derived type variable's parts plus its parent Ref
// (valid when depth > 0), so Parent is one slice read.
type dtvEntry struct {
	base   Sym
	word   WordRef
	parent Ref
}

// idData is the published view of the id→entry direction: the current
// slice headers. The backing arrays are shared with the writer, which
// only ever appends — an element below a published length is immutable
// — so republishing after a write is allocating this small struct and
// one atomic store, never a copy.
type idData struct {
	strs  []string
	wents []wordEntry
	dents []dtvEntry
}

// mapData is one immutable snapshot of the key→id maps. The maps of a
// published snapshot are never written again.
type mapData struct {
	syms  map[string]Sym
	words map[wordKey]WordRef
	dtvs  map[dtvKey]Ref
}

func (d *mapData) size() int { return len(d.syms) + len(d.words) + len(d.dtvs) }

// Table is a concurrency-safe symbol table issuing dense ids for
// strings, label words, and derived-type-variable pairs. The zero value
// is not ready to use; call NewTable. Most callers want the
// process-global table reached through the package-level functions.
type Table struct {
	// ids is the always-current id→entry view (see idData); republished
	// under mu after every first-time intern, before the new id escapes.
	ids atomic.Pointer[idData]
	// read is the key→id map snapshot; possibly stale, misses fall back
	// to the authoritative maps under mu.
	read atomic.Pointer[mapData]

	mu sync.Mutex
	// auth holds the authoritative maps, guarded by mu; their contents
	// are disjoint from every published snapshot's.
	auth mapData
	// sinceRebuild counts writes and locked fallback hits since the
	// last snapshot rebuild; past rebuildAt the snapshot is rebuilt.
	sinceRebuild int
	rebuildAt    int
}

// rebuildFloor is the minimum interval (in writes + locked fallback
// hits) between map-snapshot rebuilds; the interval grows with table
// size so total copying stays amortized O(1) per intern.
const rebuildFloor = 1024

// NewTable returns a table pre-seeded with the empty string, the empty
// word, and the zero derived type variable at id 0.
func NewTable() *Table {
	t := &Table{
		auth: mapData{
			syms:  map[string]Sym{"": 0},
			words: map[wordKey]WordRef{},
			dtvs:  map[dtvKey]Ref{{}: 0},
		},
		rebuildAt: rebuildFloor,
	}
	t.ids.Store(&idData{
		strs:  []string{""},
		wents: []wordEntry{{variance: label.Covariant}},
		dents: []dtvEntry{{}},
	})
	t.rebuildLocked()
	return t
}

// rebuildLocked copies the authoritative maps into a fresh snapshot and
// publishes it. Callers hold mu.
func (t *Table) rebuildLocked() {
	snap := &mapData{
		syms:  make(map[string]Sym, len(t.auth.syms)),
		words: make(map[wordKey]WordRef, len(t.auth.words)),
		dtvs:  make(map[dtvKey]Ref, len(t.auth.dtvs)),
	}
	for k, v := range t.auth.syms {
		snap.syms[k] = v
	}
	for k, v := range t.auth.words {
		snap.words[k] = v
	}
	for k, v := range t.auth.dtvs {
		snap.dtvs[k] = v
	}
	t.read.Store(snap)
	t.sinceRebuild = 0
	if at := snap.size(); at > rebuildFloor {
		t.rebuildAt = at
	} else {
		t.rebuildAt = rebuildFloor
	}
}

// note records one write or locked fallback hit and rebuilds the map
// snapshot when enough have accumulated. Callers hold mu.
func (t *Table) note() {
	t.sinceRebuild++
	if t.sinceRebuild >= t.rebuildAt {
		t.rebuildLocked()
	}
}

// publishIDs republishes the slice headers after appends. Callers hold
// mu and must call this before the new ids can escape to other
// goroutines (i.e. before unlocking).
func (t *Table) publishIDs(strs []string, wents []wordEntry, dents []dtvEntry) {
	t.ids.Store(&idData{strs: strs, wents: wents, dents: dents})
}

// global is the process-wide table used by the package-level functions
// (and, through them, by constraints.DTV).
var global = NewTable()

// SymBytes interns the string contents of b. On the warm path — the
// symbol already exists in the snapshot — no string is allocated: the
// map probe uses the compiler's no-copy []byte→string conversion. Only
// a first-time intern materializes the string.
func (t *Table) SymBytes(b []byte) Sym {
	if id, ok := t.read.Load().syms[string(b)]; ok {
		return id
	}
	return t.symSlow(string(b))
}

// Sym interns s.
func (t *Table) Sym(s string) Sym {
	if id, ok := t.read.Load().syms[s]; ok {
		return id
	}
	return t.symSlow(s)
}

func (t *Table) symSlow(s string) Sym {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.auth.syms[s]
	if !ok {
		ids := t.ids.Load()
		id = Sym(len(ids.strs))
		t.publishIDs(append(ids.strs, s), ids.wents, ids.dents)
		t.auth.syms[s] = id
	}
	t.note()
	return id
}

// StringOf resolves an interned string: one atomic load plus an index
// (the ids view is always current).
func (t *Table) StringOf(y Sym) string {
	return t.ids.Load().strs[y]
}

// appendWordLocked interns (w, l); the write lock must be held.
func (t *Table) appendWordLocked(w WordRef, l label.Label) WordRef {
	k := wordKey{parent: w, last: l}
	if id, ok := t.auth.words[k]; ok {
		return id
	}
	ids := t.ids.Load()
	pe := ids.wents[w]
	id := WordRef(len(ids.wents))
	wire := label.AppendWire(append([]byte(nil), pe.wire...), l)
	t.publishIDs(ids.strs, append(ids.wents, wordEntry{
		parent:   w,
		last:     l,
		depth:    pe.depth + 1,
		variance: pe.variance.Mul(l.Variance()),
		wire:     wire,
	}), ids.dents)
	t.auth.words[k] = id
	return id
}

// AppendLabel interns the word w·l.
func (t *Table) AppendLabel(w WordRef, l label.Label) WordRef {
	k := wordKey{parent: w, last: l}
	if id, ok := t.read.Load().words[k]; ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.appendWordLocked(w, l)
	t.note()
	return id
}

// Word interns a label slice as a word.
func (t *Table) Word(ls []label.Label) WordRef {
	w := WordRef(0)
	for _, l := range ls {
		w = t.AppendLabel(w, l)
	}
	return w
}

// wordEntryOf reads w's entry: lock-free, always current.
func (t *Table) wordEntryOf(w WordRef) wordEntry {
	return t.ids.Load().wents[w]
}

// WordLen reports |w|.
func (t *Table) WordLen(w WordRef) int { return int(t.wordEntryOf(w).depth) }

// WordVariance reports ⟨w⟩, precomputed at intern time.
func (t *Table) WordVariance(w WordRef) label.Variance { return t.wordEntryOf(w).variance }

// WordLabels materializes the labels of w, front to back. The returned
// slice is fresh and owned by the caller; it is nil for ε.
func (t *Table) WordLabels(w WordRef) []label.Label {
	e := t.wordEntryOf(w)
	if e.depth == 0 {
		return nil
	}
	out := make([]label.Label, e.depth)
	for i := int(e.depth) - 1; i >= 0; i-- {
		out[i] = e.last
		w = e.parent
		if i > 0 {
			e = t.wordEntryOf(w)
		}
	}
	return out
}

// AppendWordWire appends w's canonical wire form to buf: uvarint(|w|)
// followed by the member labels' label.AppendWire encodings, front to
// back. The form is a pure function of the word's labels — identical
// across processes — and precomputed at intern time, so this is a
// length append plus one copy.
func (t *Table) AppendWordWire(buf []byte, w WordRef) []byte {
	e := t.wordEntryOf(w)
	buf = binary.AppendUvarint(buf, uint64(e.depth))
	return append(buf, e.wire...)
}

// DecodeWordWire re-interns a word from the front of data, returning
// the bytes consumed.
func (t *Table) DecodeWordWire(data []byte) (WordRef, int, error) {
	depth, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, errors.New("intern: truncated word length")
	}
	w := WordRef(0)
	for i := uint64(0); i < depth; i++ {
		l, m, err := label.DecodeWire(data[n:])
		if err != nil {
			return 0, 0, err
		}
		n += m
		w = t.AppendLabel(w, l)
	}
	return w, n, nil
}

// internDTVLocked interns (base, w) and, recursively, every prefix pair
// so that Parent never has to write; the write lock must be held.
func (t *Table) internDTVLocked(base Sym, w WordRef) Ref {
	k := dtvKey{base: base, word: w}
	if id, ok := t.auth.dtvs[k]; ok {
		return id
	}
	var parent Ref
	if we := t.ids.Load().wents[w]; we.depth > 0 {
		parent = t.internDTVLocked(base, we.parent)
	}
	ids := t.ids.Load()
	id := Ref(len(ids.dents))
	t.publishIDs(ids.strs, ids.wents, append(ids.dents, dtvEntry{base: base, word: w, parent: parent}))
	t.auth.dtvs[k] = id
	return id
}

// DTV interns the derived type variable (base, w).
func (t *Table) DTV(base Sym, w WordRef) Ref {
	if id, ok := t.read.Load().dtvs[dtvKey{base: base, word: w}]; ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.internDTVLocked(base, w)
	t.note()
	return id
}

// DTVAppend interns d.ℓ from an interned d — the hot derivation step —
// lock-free on the warm path (entry read from the current ids view,
// map probes from the snapshot).
func (t *Table) DTVAppend(d Ref, l label.Label) Ref {
	e := t.ids.Load().dents[d]
	p := t.read.Load()
	if w, ok := p.words[wordKey{parent: e.word, last: l}]; ok {
		if id, ok := p.dtvs[dtvKey{base: e.base, word: w}]; ok {
			return id
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.appendWordLocked(e.word, l)
	id := t.internDTVLocked(e.base, w)
	t.note()
	return id
}

// DTVWithBase interns (base, path of d): the base-substitution step of
// scheme instantiation and canonical renaming.
func (t *Table) DTVWithBase(d Ref, base Sym) Ref {
	word := t.ids.Load().dents[d].word
	if id, ok := t.read.Load().dtvs[dtvKey{base: base, word: word}]; ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.internDTVLocked(base, word)
	t.note()
	return id
}

// dtvEntryOf reads d's entry: lock-free, always current.
func (t *Table) dtvEntryOf(d Ref) dtvEntry {
	return t.ids.Load().dents[d]
}

// DTVBase reports d's base symbol.
func (t *Table) DTVBase(d Ref) Sym { return t.dtvEntryOf(d).base }

// DTVWord reports d's path word.
func (t *Table) DTVWord(d Ref) WordRef { return t.dtvEntryOf(d).word }

// DTVDepth reports the length of d's path.
func (t *Table) DTVDepth(d Ref) int { return int(t.wordEntryOf(t.dtvEntryOf(d).word).depth) }

// DTVVariance reports ⟨path⟩ of d in O(1).
func (t *Table) DTVVariance(d Ref) label.Variance {
	return t.wordEntryOf(t.dtvEntryOf(d).word).variance
}

// DTVParent returns d's one-shorter prefix and the stripped label,
// reporting false for base variables. It never writes: the Ref table is
// prefix-closed by construction.
func (t *Table) DTVParent(d Ref) (Ref, label.Label, bool) {
	e := t.dtvEntryOf(d)
	we := t.wordEntryOf(e.word)
	if we.depth == 0 {
		return d, label.Label{}, false
	}
	return e.parent, we.last, true
}

// DTVString renders "base.l1.l2" in the paper's notation.
func (t *Table) DTVString(d Ref) string {
	e := t.dtvEntryOf(d)
	base := t.StringOf(e.base)
	we := t.wordEntryOf(e.word)
	if we.depth == 0 {
		return base
	}
	parts := make([]string, we.depth+1)
	parts[0] = base
	w := e.word
	for i := int(we.depth); i >= 1; i-- {
		ent := t.wordEntryOf(w)
		parts[i] = ent.last.String()
		w = ent.parent
	}
	return strings.Join(parts, ".")
}

// Stats reports the table's population (symbols, words, derived type
// variables) — observability for tests and tuning.
func (t *Table) Stats() (syms, words, dtvs int) {
	ids := t.ids.Load()
	return len(ids.strs), len(ids.wents), len(ids.dents)
}

// Package-level functions delegate to the process-global table.

// Intern interns s in the global table.
func Intern(s string) Sym { return global.Sym(s) }

// InternBytes interns b via the global table without allocating a
// string on the (common) already-interned path.
func InternBytes(b []byte) Sym { return global.SymBytes(b) }

// StringOf resolves y from the global table.
func StringOf(y Sym) string { return global.StringOf(y) }

// AppendLabel interns w·l in the global table.
func AppendLabel(w WordRef, l label.Label) WordRef { return global.AppendLabel(w, l) }

// Word interns a label slice in the global table.
func Word(ls []label.Label) WordRef { return global.Word(ls) }

// WordLen reports |w| from the global table.
func WordLen(w WordRef) int { return global.WordLen(w) }

// WordVariance reports ⟨w⟩ from the global table.
func WordVariance(w WordRef) label.Variance { return global.WordVariance(w) }

// WordLabels materializes w's labels from the global table.
func WordLabels(w WordRef) []label.Label { return global.WordLabels(w) }

// AppendWordWire appends w's canonical wire form from the global table.
func AppendWordWire(buf []byte, w WordRef) []byte { return global.AppendWordWire(buf, w) }

// DecodeWordWire re-interns a word wire form into the global table.
func DecodeWordWire(data []byte) (WordRef, int, error) { return global.DecodeWordWire(data) }

// DTV interns (base, w) in the global table.
func DTV(base Sym, w WordRef) Ref { return global.DTV(base, w) }

// DTVAppend interns d.ℓ in the global table.
func DTVAppend(d Ref, l label.Label) Ref { return global.DTVAppend(d, l) }

// DTVWithBase interns (base, path of d) in the global table.
func DTVWithBase(d Ref, base Sym) Ref { return global.DTVWithBase(d, base) }

// DTVBase reports d's base symbol from the global table.
func DTVBase(d Ref) Sym { return global.DTVBase(d) }

// DTVWord reports d's path word from the global table.
func DTVWord(d Ref) WordRef { return global.DTVWord(d) }

// DTVDepth reports d's path length from the global table.
func DTVDepth(d Ref) int { return global.DTVDepth(d) }

// DTVVariance reports ⟨path⟩ of d from the global table.
func DTVVariance(d Ref) label.Variance { return global.DTVVariance(d) }

// DTVParent returns d's prefix and last label from the global table.
func DTVParent(d Ref) (Ref, label.Label, bool) { return global.DTVParent(d) }

// DTVString renders d from the global table.
func DTVString(d Ref) string { return global.DTVString(d) }

// GlobalStats reports the global table's population.
func GlobalStats() (syms, words, dtvs int) { return global.Stats() }
