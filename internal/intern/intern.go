// Package intern is the process-wide symbol table backing the interned
// derived-type-variable core.
//
// Profiling showed whole-program inference to be allocation-bound:
// derived type variables were passed around as freshly rendered strings
// and every hot index (constraint-set dedup, constraint-graph nodes,
// shape-inference classes, fingerprint canonicalization) was a
// map[string] keyed by those renderings. This package replaces that
// representation with hash-consing: strings, label words over Σ, and
// (base, word) derived-type-variable pairs are interned once into a
// concurrency-safe table and thereafter identified by dense uint32 ids.
// Equality becomes integer comparison, map keys become small comparable
// structs, and the per-use rendering cost disappears — strings are
// resolved only at the serialization boundary.
//
// Three id kinds are issued:
//
//   - Sym interns a string (base type-variable names, and any other
//     identifier worth a dense id, such as lattice signatures);
//   - WordRef interns a word over the field-label alphabet Σ as a node
//     of a trie: a word is (parent word, last label), so appending a
//     label is a single lookup and the word's length and variance are
//     precomputed at creation;
//   - Ref interns a derived type variable as a (base Sym, path WordRef)
//     pair. The Ref table is prefix-closed — interning x.u.ℓ also
//     interns x.u — so Parent lookups are reads, never writes.
//
// Id 0 of each kind is reserved for the empty value ("" / ε / the zero
// derived type variable), which keeps zero values of wrapper types
// meaningful.
//
// The table is append-only and process-global (like the ids handed out
// by the runtime's own symbol interning, entries are never evicted);
// memory grows with the number of distinct names a process infers over,
// which is bounded by corpus size. All methods are safe for concurrent
// use: lookups take a read lock, and only a first-time intern of a new
// symbol/word/pair takes the write lock.
package intern

import (
	"strings"
	"sync"

	"retypd/internal/label"
)

// Sym is a dense id for an interned string. Sym 0 is "".
type Sym uint32

// WordRef is a dense id for an interned label word. WordRef 0 is ε.
type WordRef uint32

// Ref is a dense id for an interned (base, path) derived type variable.
// Ref 0 is the zero derived type variable ("", ε).
type Ref uint32

// wordKey identifies a word as a trie step from its prefix.
type wordKey struct {
	parent WordRef
	last   label.Label
}

// wordEntry stores a word's trie link plus the derived attributes that
// hot paths need in O(1): length and variance.
type wordEntry struct {
	parent   WordRef
	last     label.Label
	depth    uint32
	variance label.Variance
}

// dtvKey identifies a derived type variable by its parts.
type dtvKey struct {
	base Sym
	word WordRef
}

// dtvEntry stores a derived type variable's parts plus its parent Ref
// (valid when depth > 0), so Parent is one slice read.
type dtvEntry struct {
	base   Sym
	word   WordRef
	parent Ref
}

// Table is a concurrency-safe symbol table issuing dense ids for
// strings, label words, and derived-type-variable pairs. The zero value
// is not ready to use; call NewTable. Most callers want the
// process-global table reached through the package-level functions.
type Table struct {
	mu    sync.RWMutex
	syms  map[string]Sym
	strs  []string
	words map[wordKey]WordRef
	wents []wordEntry
	dtvs  map[dtvKey]Ref
	dents []dtvEntry
}

// NewTable returns a table pre-seeded with the empty string, the empty
// word, and the zero derived type variable at id 0.
func NewTable() *Table {
	t := &Table{
		syms:  map[string]Sym{"": 0},
		strs:  []string{""},
		words: map[wordKey]WordRef{},
		wents: []wordEntry{{variance: label.Covariant}},
		dtvs:  map[dtvKey]Ref{{}: 0},
		dents: []dtvEntry{{}},
	}
	return t
}

// global is the process-wide table used by the package-level functions
// (and, through them, by constraints.DTV).
var global = NewTable()

// SymBytes interns the string contents of b. On the warm path — the
// symbol already exists — no string is allocated: the map probe uses
// the compiler's no-copy []byte→string conversion. Only a first-time
// intern materializes the string.
func (t *Table) SymBytes(b []byte) Sym {
	t.mu.RLock()
	id, ok := t.syms[string(b)]
	t.mu.RUnlock()
	if ok {
		return id
	}
	return t.Sym(string(b))
}

// Sym interns s.
func (t *Table) Sym(s string) Sym {
	t.mu.RLock()
	id, ok := t.syms[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.syms[s]; ok {
		return id
	}
	id = Sym(len(t.strs))
	t.strs = append(t.strs, s)
	t.syms[s] = id
	return id
}

// StringOf resolves an interned string.
func (t *Table) StringOf(y Sym) string {
	t.mu.RLock()
	s := t.strs[y]
	t.mu.RUnlock()
	return s
}

// appendWordLocked interns (w, l); the write lock must be held.
func (t *Table) appendWordLocked(w WordRef, l label.Label) WordRef {
	k := wordKey{parent: w, last: l}
	if id, ok := t.words[k]; ok {
		return id
	}
	pe := t.wents[w]
	id := WordRef(len(t.wents))
	t.wents = append(t.wents, wordEntry{
		parent:   w,
		last:     l,
		depth:    pe.depth + 1,
		variance: pe.variance.Mul(l.Variance()),
	})
	t.words[k] = id
	return id
}

// AppendLabel interns the word w·l.
func (t *Table) AppendLabel(w WordRef, l label.Label) WordRef {
	k := wordKey{parent: w, last: l}
	t.mu.RLock()
	id, ok := t.words[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendWordLocked(w, l)
}

// Word interns a label slice as a word.
func (t *Table) Word(ls []label.Label) WordRef {
	w := WordRef(0)
	for _, l := range ls {
		w = t.AppendLabel(w, l)
	}
	return w
}

// WordLen reports |w|.
func (t *Table) WordLen(w WordRef) int {
	t.mu.RLock()
	n := t.wents[w].depth
	t.mu.RUnlock()
	return int(n)
}

// WordVariance reports ⟨w⟩, precomputed at intern time.
func (t *Table) WordVariance(w WordRef) label.Variance {
	t.mu.RLock()
	v := t.wents[w].variance
	t.mu.RUnlock()
	return v
}

// WordLabels materializes the labels of w, front to back. The returned
// slice is fresh and owned by the caller; it is nil for ε.
func (t *Table) WordLabels(w WordRef) []label.Label {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.wents[w].depth
	if n == 0 {
		return nil
	}
	out := make([]label.Label, n)
	for i := int(n) - 1; i >= 0; i-- {
		e := t.wents[w]
		out[i] = e.last
		w = e.parent
	}
	return out
}

// internDTVLocked interns (base, w) and, recursively, every prefix pair
// so that Parent never has to write; the write lock must be held.
func (t *Table) internDTVLocked(base Sym, w WordRef) Ref {
	k := dtvKey{base: base, word: w}
	if id, ok := t.dtvs[k]; ok {
		return id
	}
	var parent Ref
	if t.wents[w].depth > 0 {
		parent = t.internDTVLocked(base, t.wents[w].parent)
	}
	id := Ref(len(t.dents))
	t.dents = append(t.dents, dtvEntry{base: base, word: w, parent: parent})
	t.dtvs[k] = id
	return id
}

// DTV interns the derived type variable (base, w).
func (t *Table) DTV(base Sym, w WordRef) Ref {
	k := dtvKey{base: base, word: w}
	t.mu.RLock()
	id, ok := t.dtvs[k]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internDTVLocked(base, w)
}

// DTVAppend interns d.ℓ from an interned d — the hot derivation step —
// with a single read-locked lookup pair on the warm path.
func (t *Table) DTVAppend(d Ref, l label.Label) Ref {
	t.mu.RLock()
	e := t.dents[d]
	if w, ok := t.words[wordKey{parent: e.word, last: l}]; ok {
		if id, ok := t.dtvs[dtvKey{base: e.base, word: w}]; ok {
			t.mu.RUnlock()
			return id
		}
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.appendWordLocked(e.word, l)
	return t.internDTVLocked(e.base, w)
}

// DTVWithBase interns (base, path of d): the base-substitution step of
// scheme instantiation and canonical renaming.
func (t *Table) DTVWithBase(d Ref, base Sym) Ref {
	t.mu.RLock()
	w := t.dents[d].word
	id, ok := t.dtvs[dtvKey{base: base, word: w}]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internDTVLocked(base, w)
}

// DTVBase reports d's base symbol.
func (t *Table) DTVBase(d Ref) Sym {
	t.mu.RLock()
	b := t.dents[d].base
	t.mu.RUnlock()
	return b
}

// DTVWord reports d's path word.
func (t *Table) DTVWord(d Ref) WordRef {
	t.mu.RLock()
	w := t.dents[d].word
	t.mu.RUnlock()
	return w
}

// DTVDepth reports the length of d's path.
func (t *Table) DTVDepth(d Ref) int {
	t.mu.RLock()
	n := t.wents[t.dents[d].word].depth
	t.mu.RUnlock()
	return int(n)
}

// DTVVariance reports ⟨path⟩ of d in O(1).
func (t *Table) DTVVariance(d Ref) label.Variance {
	t.mu.RLock()
	v := t.wents[t.dents[d].word].variance
	t.mu.RUnlock()
	return v
}

// DTVParent returns d's one-shorter prefix and the stripped label,
// reporting false for base variables. It never writes: the Ref table is
// prefix-closed by construction.
func (t *Table) DTVParent(d Ref) (Ref, label.Label, bool) {
	t.mu.RLock()
	e := t.dents[d]
	we := t.wents[e.word]
	t.mu.RUnlock()
	if we.depth == 0 {
		return d, label.Label{}, false
	}
	return e.parent, we.last, true
}

// DTVString renders "base.l1.l2" in the paper's notation.
func (t *Table) DTVString(d Ref) string {
	t.mu.RLock()
	e := t.dents[d]
	base := t.strs[e.base]
	n := t.wents[e.word].depth
	if n == 0 {
		t.mu.RUnlock()
		return base
	}
	parts := make([]string, n+1)
	parts[0] = base
	w := e.word
	for i := int(n); i >= 1; i-- {
		we := t.wents[w]
		parts[i] = we.last.String()
		w = we.parent
	}
	t.mu.RUnlock()
	return strings.Join(parts, ".")
}

// Stats reports the table's population (symbols, words, derived type
// variables) — observability for tests and tuning.
func (t *Table) Stats() (syms, words, dtvs int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs), len(t.wents), len(t.dents)
}

// Package-level functions delegate to the process-global table.

// Intern interns s in the global table.
func Intern(s string) Sym { return global.Sym(s) }

// StringOf resolves y from the global table.
func StringOf(y Sym) string { return global.StringOf(y) }

// AppendLabel interns w·l in the global table.
func AppendLabel(w WordRef, l label.Label) WordRef { return global.AppendLabel(w, l) }

// Word interns a label slice in the global table.
func Word(ls []label.Label) WordRef { return global.Word(ls) }

// WordLen reports |w| from the global table.
func WordLen(w WordRef) int { return global.WordLen(w) }

// WordVariance reports ⟨w⟩ from the global table.
func WordVariance(w WordRef) label.Variance { return global.WordVariance(w) }

// WordLabels materializes w's labels from the global table.
func WordLabels(w WordRef) []label.Label { return global.WordLabels(w) }

// DTV interns (base, w) in the global table.
func DTV(base Sym, w WordRef) Ref { return global.DTV(base, w) }

// DTVAppend interns d.ℓ in the global table.
func DTVAppend(d Ref, l label.Label) Ref { return global.DTVAppend(d, l) }

// DTVWithBase interns (base, path of d) in the global table.
func DTVWithBase(d Ref, base Sym) Ref { return global.DTVWithBase(d, base) }

// DTVBase reports d's base symbol from the global table.
func DTVBase(d Ref) Sym { return global.DTVBase(d) }

// DTVWord reports d's path word from the global table.
func DTVWord(d Ref) WordRef { return global.DTVWord(d) }

// DTVDepth reports d's path length from the global table.
func DTVDepth(d Ref) int { return global.DTVDepth(d) }

// DTVVariance reports ⟨path⟩ of d from the global table.
func DTVVariance(d Ref) label.Variance { return global.DTVVariance(d) }

// DTVParent returns d's prefix and last label from the global table.
func DTVParent(d Ref) (Ref, label.Label, bool) { return global.DTVParent(d) }

// DTVString renders d from the global table.
func DTVString(d Ref) string { return global.DTVString(d) }

// GlobalStats reports the global table's population.
func GlobalStats() (syms, words, dtvs int) { return global.Stats() }
