package intern

import "strconv"

// NameBuilder composes derived variable names from parts — base name,
// separators, counters — and interns the result, without going through
// fmt. The constraint generator mints a name per definition site, per
// fresh intermediate and per callsite tag, which made fmt.Sprintf one
// of the last allocation hot spots of the pipeline: every call
// allocated the argument box, the scratch state and the result string.
// A NameBuilder reuses one scratch buffer across Build calls, and
// String resolves through the symbol table, so a name that was ever
// built before costs zero allocations.
//
// A NameBuilder is not safe for concurrent use; give each producer its
// own (the zero value is ready).
type NameBuilder struct {
	buf []byte
}

// Begin resets the builder to base and returns it for chaining.
func (nb *NameBuilder) Begin(base string) *NameBuilder {
	nb.buf = append(nb.buf[:0], base...)
	return nb
}

// Str appends s.
func (nb *NameBuilder) Str(s string) *NameBuilder {
	nb.buf = append(nb.buf, s...)
	return nb
}

// Byte appends a single byte (separators like '!' and '@').
func (nb *NameBuilder) Byte(c byte) *NameBuilder {
	nb.buf = append(nb.buf, c)
	return nb
}

// Int appends the decimal rendering of n.
func (nb *NameBuilder) Int(n int) *NameBuilder {
	nb.buf = strconv.AppendInt(nb.buf, int64(n), 10)
	return nb
}

// Sym interns the composed name in the global table.
func (nb *NameBuilder) Sym() Sym { return global.SymBytes(nb.buf) }

// String interns the composed name and returns the table's canonical
// string for it — allocation-free whenever the name was interned
// before (by this builder or anyone else).
func (nb *NameBuilder) String() string { return global.StringOf(nb.Sym()) }
