package intern

import (
	"fmt"
	"testing"
)

// TestNameBuilderComposition: composed names match their fmt
// equivalents and intern to the same symbol as a direct Intern.
func TestNameBuilderComposition(t *testing.T) {
	var nb NameBuilder
	cases := []struct {
		got  string
		want string
	}{
		{nb.Begin("close_last").Str("!rgn").Int(24).String(), "close_last!rgn24"},
		{nb.Begin("f").Byte('!').Byte('s').Int(-8).Byte('@').Int(3).String(), "f!s-8@3"},
		{nb.Begin("@").Str("main").Byte('!').Int(17).String(), "@main!17"},
		{nb.Begin("p").Str("!u").Int(5).Byte('!').Str("addx").String(), "p!u5!addx"},
		{nb.Begin("").String(), ""},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("composed %q, want %q", c.got, c.want)
		}
		if Intern(c.want) != nb.Begin(c.want).Sym() {
			t.Errorf("builder sym for %q diverges from Intern", c.want)
		}
	}
}

// TestNameBuilderReuse: one builder can be reused back-to-back without
// earlier content leaking into later names.
func TestNameBuilderReuse(t *testing.T) {
	var nb NameBuilder
	long := nb.Begin("averylongprocedurename").Str("!frm!stack0").String()
	short := nb.Begin("f").Int(1).String()
	if long != "averylongprocedurename!frm!stack0" || short != "f1" {
		t.Fatalf("reuse corrupted names: %q, %q", long, short)
	}
}

// BenchmarkFreshVarNames compares the old fmt.Sprintf name minting with
// the interned NameBuilder, in the shape absint mints definition-site
// variables ("proc!s<slot>@<idx>"). The warm path — a name seen before,
// which is every name after the first inference over a program — is
// allocation-free.
func BenchmarkFreshVarNames(b *testing.B) {
	const procs = 64
	names := make([]string, procs)
	for i := range names {
		names[i] = fmt.Sprintf("proc%d", i)
	}
	b.Run("fmt.Sprintf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = fmt.Sprintf("%s!s%d@%d", names[i%procs], -(i%13)*4, i%251)
		}
	})
	b.Run("namebuilder-warm", func(b *testing.B) {
		var nb NameBuilder
		// Pre-intern the working set, as a second inference over the
		// same corpus (or an isomorphic one) would find it.
		for i := 0; i < 64*13*251; i++ {
			nb.Begin(names[i%procs]).Byte('!').Byte('s').Int(-(i % 13) * 4).Byte('@').Int(i % 251).Sym()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = nb.Begin(names[i%procs]).Byte('!').Byte('s').Int(-(i % 13) * 4).Byte('@').Int(i % 251).String()
		}
	})
}
