package intern

import (
	"bytes"
	"math/rand"
	"testing"

	"retypd/internal/label"
)

func randWord(rng *rand.Rand) []label.Label {
	n := rng.Intn(6)
	out := make([]label.Label, n)
	for i := range out {
		switch rng.Intn(5) {
		case 0:
			out[i] = label.In("stack" + string(rune('0'+rng.Intn(10))))
		case 1:
			out[i] = label.Out("eax")
		case 2:
			out[i] = label.Load()
		case 3:
			out[i] = label.Store()
		default:
			out[i] = label.Field(8<<rng.Intn(3), rng.Intn(64))
		}
	}
	return out
}

// TestWordWireRoundTrip: the wire form re-interns to the same WordRef
// in the same table, re-encodes byte-identically, and decodes to equal
// labels in a fresh table (the cross-process case).
func TestWordWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fresh := NewTable()
	for i := 0; i < 1000; i++ {
		ls := randWord(rng)
		w := Word(ls)
		enc := AppendWordWire(nil, w)

		w2, n, err := DecodeWordWire(append(append([]byte(nil), enc...), 0xFF))
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d encoded bytes", n, len(enc))
		}
		if w2 != w {
			t.Fatalf("same-table re-intern changed id: %d → %d", w, w2)
		}
		if re := AppendWordWire(nil, w2); !bytes.Equal(re, enc) {
			t.Fatal("re-encode not byte-stable")
		}

		// A fresh table (different id assignment) must reconstruct the
		// same labels and produce the same wire bytes.
		fw, _, err := fresh.DecodeWordWire(enc)
		if err != nil {
			t.Fatal(err)
		}
		got := fresh.WordLabels(fw)
		if len(got) != len(ls) {
			t.Fatalf("fresh table decoded %d labels, want %d", len(got), len(ls))
		}
		for j := range ls {
			if got[j] != ls[j] {
				t.Fatalf("label %d mismatch: %v vs %v", j, got[j], ls[j])
			}
		}
		if re := fresh.AppendWordWire(nil, fw); !bytes.Equal(re, enc) {
			t.Fatal("fresh-table wire form differs: encoding is not process-independent")
		}
	}
}

// TestWireIdIndependence: the wire form must not depend on intern
// order — two tables interning the same words in different orders
// produce identical bytes.
func TestWireIdIndependence(t *testing.T) {
	words := [][]label.Label{
		{label.Load(), label.Field(32, 0)},
		{label.In("stack0")},
		{label.Out("eax"), label.Load(), label.Store()},
	}
	a, b := NewTable(), NewTable()
	// a interns in order; b pre-interns unrelated junk and then the
	// words in reverse.
	for i := 0; i < 50; i++ {
		b.Sym(string(rune('A' + i)))
		b.Word([]label.Label{label.Field(8, i)})
	}
	var encA, encB [][]byte
	for _, w := range words {
		encA = append(encA, a.AppendWordWire(nil, a.Word(w)))
	}
	for i := len(words) - 1; i >= 0; i-- {
		encB = append([][]byte{b.AppendWordWire(nil, b.Word(words[i]))}, encB...)
	}
	for i := range words {
		if !bytes.Equal(encA[i], encB[i]) {
			t.Fatalf("word %d: wire form depends on intern order", i)
		}
	}
}
