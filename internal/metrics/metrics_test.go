package metrics

import (
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/ctype"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
)

func scorer() (*Scorer, *lattice.Lattice) {
	lat := lattice.Default()
	return &Scorer{Lat: lat}, lat
}

// TestDistanceBasics spot-checks the TIE distance.
func TestDistanceBasics(t *testing.T) {
	sc, _ := scorer()
	cases := []struct {
		inf, truth *ctype.Type
		lo, hi     float64
	}{
		{ctype.Prim("int"), ctype.Prim("int"), 0, 0},
		{ctype.Prim("int32"), ctype.Prim("int"), 1, 1},
		{ctype.Unknown(), ctype.Prim("int"), 2, 2},
		{ctype.Prim("int"), ctype.PtrTo(ctype.Prim("int")), 2.5, 2.5},
		{ctype.PtrTo(ctype.Prim("int")), ctype.PtrTo(ctype.Prim("int")), 0, 0},
		{ctype.PtrTo(ctype.Unknown()), ctype.PtrTo(ctype.Prim("int")), 1, 1},
		{ctype.Prim("str"), ctype.Prim("char*"), 0, 0},
	}
	for i, c := range cases {
		d := sc.Distance(c.inf, c.truth)
		if d < c.lo || d > c.hi {
			t.Errorf("case %d: distance(%s, %s) = %.2f, want [%.2f, %.2f]",
				i, c.inf, c.truth, d, c.lo, c.hi)
		}
	}
}

// TestConservativeScalar: interval containment of the truth.
func TestConservativeScalar(t *testing.T) {
	sc, lat := scorer()
	sk := sketch.NewTop(lat)
	sk.States[0].AddUpper(lat, lat.MustElem("int"))
	if !sc.Conservative(sk, ctype.Prim("int")) {
		t.Error("[⊥,int] contains int")
	}
	if sc.Conservative(sk, ctype.PtrTo(ctype.Prim("int"))) {
		t.Error("[⊥,int] cannot contain a pointer")
	}
	sk2 := sketch.NewTop(lat)
	sk2.States[0].AddLower(lat, lat.MustElem("num32"))
	if sc.Conservative(sk2, ctype.Prim("char")) {
		t.Error("[num32,⊤] does not contain char")
	}
}

// TestPointerLevels: multi-level accuracy with over-claim penalty.
func TestPointerLevels(t *testing.T) {
	sc, lat := scorer()
	// A sketch claiming one pointer level.
	cs := constraints.MustParseSet(`
		p.load.σ32@0 <= int
		x <= p
	`)
	sh := sketch.NewBuilder(cs, lat)
	sk := sh.SketchFor("x", -1)

	// Truth int*: 1 level, matched.
	l, m := sc.PointerLevels(sk, ctype.PtrTo(ctype.Prim("int")))
	if l != 1 || m != 1 {
		t.Errorf("int*: %d/%d, want 1/1", m, l)
	}
	// Truth int**: 2 levels, 1 matched.
	l, m = sc.PointerLevels(sk, ctype.PtrTo(ctype.PtrTo(ctype.Prim("int"))))
	if l != 2 || m != 1 {
		t.Errorf("int**: %d/%d, want 1/2", m, l)
	}
	// Truth int (scalar): over-claim penalized.
	l, m = sc.PointerLevels(sk, ctype.Prim("int"))
	if l != 1 || m != 0 {
		t.Errorf("scalar truth with pointer claim: %d/%d, want 0/1", m, l)
	}
	// Opaque handles are exempt.
	l, m = sc.PointerLevels(sk, ctype.Prim("HANDLE"))
	if l != 0 || m != 0 {
		t.Errorf("HANDLE: %d/%d, want 0/0", m, l)
	}
}

// TestConstScoring: recall bookkeeping.
func TestConstScoring(t *testing.T) {
	sc, lat := scorer()
	cs := constraints.MustParseSet(`
		p.load.σ32@0 <= int
		x <= p
	`)
	sh := sketch.NewBuilder(cs, lat)
	sk := sh.SketchFor("x", -1)
	if !sk.Accepts(label.Word{label.Load()}) {
		t.Fatal("sketch should be loadable")
	}
	s := sc.Score(sk, ctype.PtrTo(ctype.Prim("int")), VarTruth{
		Kind: "param", Type: ctype.PtrTo(ctype.Prim("int")), Const: true,
	})
	if !s.ConstEligible || !s.ConstTruth || !s.ConstInferred {
		t.Errorf("const sample wrong: %+v", s)
	}
	var agg Aggregate
	agg.Add(s)
	if agg.ConstRecall() != 1 {
		t.Errorf("recall = %v", agg.ConstRecall())
	}
}

// TestIntervalMetric: unconstrained = 4; [⊥,int] = 2; pointer halves.
func TestIntervalMetric(t *testing.T) {
	sc, lat := scorer()
	top := sketch.NewTop(lat)
	if iv := sc.Interval(top); iv != 4 {
		t.Errorf("⊤ interval = %v", iv)
	}
	bounded := sketch.NewTop(lat)
	bounded.States[0].AddUpper(lat, lat.MustElem("int"))
	if iv := sc.Interval(bounded); iv != 2 {
		t.Errorf("[⊥,int] interval = %v", iv)
	}
	point := sketch.NewTop(lat)
	point.States[0].AddUpper(lat, lat.MustElem("int"))
	point.States[0].AddLower(lat, lat.MustElem("int"))
	if iv := sc.Interval(point); iv != 0 {
		t.Errorf("[int,int] interval = %v", iv)
	}
}

// TestAggregateMerge checks the accumulation arithmetic.
func TestAggregateMerge(t *testing.T) {
	var a, b Aggregate
	a.Add(Sample{Distance: 1, Interval: 2, Conservative: true, PtrLevels: 1, PtrMatched: 1})
	b.Add(Sample{Distance: 3, Interval: 0, Conservative: false})
	a.Merge(b)
	if a.N != 2 || a.MeanDistance() != 2 || a.Conservativeness() != 0.5 {
		t.Errorf("merge wrong: %+v", a)
	}
}
