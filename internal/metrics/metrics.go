// Package metrics implements the evaluation metrics of §6.5, defined by
// Lee et al. (TIE) and used by the paper to compare Retypd against
// TIE, REWARDS and SecondWrite:
//
//   - distance: lattice distance from the displayed type to the
//     ground-truth type (max 4; recursive formula for pointers and
//     structs);
//   - interval size: lattice distance from the inferred upper bound to
//     the inferred lower bound;
//   - conservativeness: whether [lower, upper] over-approximates the
//     declared type;
//   - multi-level pointer accuracy (ElWazeer et al.): fraction of
//     pointer levels correctly recovered;
//   - const precision/recall (§6.4).
package metrics

import (
	"strings"

	"retypd/internal/ctype"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
)

// VarTruth is the ground truth for one scored variable (a parameter or
// return value of a procedure), as recorded by the corpus generator
// from the "source code" it compiled.
type VarTruth struct {
	Func string
	// Kind is "param" or "ret".
	Kind string
	// Index is the parameter index for params.
	Index int
	// Type is the declared C type.
	Type *ctype.Type
	// Const marks pointer parameters declared const.
	Const bool
}

// Sample is the scored result for one variable.
type Sample struct {
	Distance     float64
	Interval     float64
	Conservative bool
	// PtrLevels / PtrMatched feed the multi-level pointer accuracy.
	PtrLevels, PtrMatched int
	// Const scoring (pointer parameters only).
	ConstEligible, ConstTruth, ConstInferred bool
}

// Aggregate accumulates samples (§6.2's per-benchmark averages).
type Aggregate struct {
	N            int
	SumDistance  float64
	SumInterval  float64
	Conservative int
	PtrLevels    int
	PtrMatched   int
	ConstTruth   int
	ConstFound   int
	ConstExtra   int
}

// Add accumulates one sample.
func (a *Aggregate) Add(s Sample) {
	a.N++
	a.SumDistance += s.Distance
	a.SumInterval += s.Interval
	if s.Conservative {
		a.Conservative++
	}
	a.PtrLevels += s.PtrLevels
	a.PtrMatched += s.PtrMatched
	if s.ConstEligible {
		if s.ConstTruth {
			a.ConstTruth++
			if s.ConstInferred {
				a.ConstFound++
			}
		} else if s.ConstInferred {
			a.ConstExtra++
		}
	}
}

// Merge folds another aggregate in.
func (a *Aggregate) Merge(b Aggregate) {
	a.N += b.N
	a.SumDistance += b.SumDistance
	a.SumInterval += b.SumInterval
	a.Conservative += b.Conservative
	a.PtrLevels += b.PtrLevels
	a.PtrMatched += b.PtrMatched
	a.ConstTruth += b.ConstTruth
	a.ConstFound += b.ConstFound
	a.ConstExtra += b.ConstExtra
}

// MeanDistance reports the mean distance-to-truth.
func (a *Aggregate) MeanDistance() float64 { return safeDiv(a.SumDistance, float64(a.N)) }

// MeanInterval reports the mean interval size.
func (a *Aggregate) MeanInterval() float64 { return safeDiv(a.SumInterval, float64(a.N)) }

// Conservativeness reports the conservative fraction.
func (a *Aggregate) Conservativeness() float64 {
	return safeDiv(float64(a.Conservative), float64(a.N))
}

// PointerAccuracy reports the multi-level pointer accuracy.
func (a *Aggregate) PointerAccuracy() float64 {
	return safeDiv(float64(a.PtrMatched), float64(a.PtrLevels))
}

// ConstRecall reports the fraction of source const annotations
// recovered (§6.4).
func (a *Aggregate) ConstRecall() float64 {
	return safeDiv(float64(a.ConstFound), float64(a.ConstTruth))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Scorer evaluates inferred results against truths over a lattice.
type Scorer struct {
	Lat *lattice.Lattice
}

// levels assigns the TIE-style stratification level of a lattice
// element name: 0 for ⊥, 1 for fully specific scalars and typedefs,
// 2 for int/uint, 3 for generic machine words, 4 for ⊤.
func levelName(name string) float64 {
	switch name {
	case "⊥":
		return 0
	case "int", "uint", "str", "HGDI":
		return 2
	case "num8", "num16", "num32", "num64", "DWORD", "WPARAM", "LPARAM", "ptr", "HANDLE":
		return 3
	case "⊤":
		return 4
	default:
		return 1
	}
}

// Level reports the stratification level of e.
func (sc *Scorer) Level(e lattice.Elem) float64 { return levelName(sc.Lat.Name(e)) }

// scalarDist is the lattice distance between two element names.
func (sc *Scorer) scalarDist(a, b lattice.Elem) float64 {
	if a == b {
		return 0
	}
	la, lb := sc.Level(a), sc.Level(b)
	switch {
	case sc.Lat.Leq(a, b), sc.Lat.Leq(b, a):
		return abs(la - lb)
	default:
		j := sc.Lat.Join(a, b)
		d := (sc.Level(j) - la) + (sc.Level(j) - lb)
		return min4(d)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func min4(x float64) float64 {
	if x > 4 {
		return 4
	}
	if x < 0 {
		return 0
	}
	return x
}

// effBounds computes the node's effective scalar bounds: semantic tags
// (#FileDescriptor, …) live beside the scalar names in Λ, so the joined
// Lower/meeted Upper can collapse to ⊤/⊥ (Figure 2's int ∨ #SuccessZ);
// the metrics use the join/meet of the non-tag bound-set members.
func (sc *Scorer) effBounds(node *sketch.State) (lo, hi lattice.Elem) {
	lo, hi = sc.Lat.Bottom(), sc.Lat.Top()
	for _, e := range node.LowerSet {
		if !strings.HasPrefix(sc.Lat.Name(e), "#") {
			lo = sc.Lat.Join(lo, e)
		}
	}
	for _, e := range node.UpperSet {
		if !strings.HasPrefix(sc.Lat.Name(e), "#") {
			hi = sc.Lat.Meet(hi, e)
		}
	}
	return lo, hi
}

// truthElem maps a ground-truth scalar C type to its lattice element.
func (sc *Scorer) truthElem(t *ctype.Type) (lattice.Elem, bool) {
	if t == nil || t.Kind != ctype.KPrim {
		return 0, false
	}
	name := t.Name
	if name == "char*" || name == "char *" {
		name = "str"
	}
	e, ok := sc.Lat.Elem(name)
	return e, ok
}

// Distance computes the TIE distance between the displayed type and the
// truth, capped at 4, halving at each pointer level (the recursive
// formula for pointer and structural types).
func (sc *Scorer) Distance(inferred, truth *ctype.Type) float64 {
	return min4(sc.dist(inferred, truth, 6))
}

func (sc *Scorer) dist(inf, truth *ctype.Type, depth int) float64 {
	if truth == nil {
		return 0
	}
	if inf == nil {
		return 4
	}
	if depth == 0 {
		return 0
	}
	// Normalize pointer-like scalars on both sides.
	if truth.Kind == ctype.KPrim && (truth.Name == "char*" || truth.Name == "char *") {
		truth = ctype.PtrTo(ctype.Prim("char"))
	}
	if truth.Kind == ctype.KPrim && truth.Name == "void" {
		return 0 // void truth constrains nothing
	}
	if inf.Kind == ctype.KPrim && inf.Name == "str" {
		inf = ctype.PtrTo(ctype.Prim("char"))
	}
	if inf.Kind == ctype.KPrim && (inf.Name == "ptr" || inf.Name == "HANDLE") && truth.Kind == ctype.KPtr {
		inf = ctype.PtrTo(ctype.Unknown())
	}

	switch truth.Kind {
	case ctype.KPtr:
		switch inf.Kind {
		case ctype.KPtr:
			return 0.5 * sc.dist(inf.Elem, truth.Elem, depth-1)
		case ctype.KUnknown:
			return 2 // unconstrained: half the lattice away
		case ctype.KUnion:
			return sc.bestMember(inf, truth, depth)
		default:
			return 2.5 // scalar where a pointer belongs
		}
	case ctype.KStruct:
		if inf.Kind == ctype.KStruct {
			return sc.structDist(inf, truth, depth)
		}
		if inf.Kind == ctype.KUnknown {
			return 2
		}
		return 2.5
	case ctype.KPrim:
		te, ok := sc.truthElem(truth)
		if !ok {
			return 1
		}
		switch inf.Kind {
		case ctype.KPrim:
			ie, ok := sc.truthElem(inf)
			if !ok {
				return 1
			}
			return sc.scalarDist(ie, te)
		case ctype.KUnknown:
			return 4 - levelName(truth.Name)
		case ctype.KPtr:
			return 2.5
		case ctype.KUnion:
			return sc.bestMember(inf, truth, depth)
		default:
			return 2.5
		}
	default:
		if inf.Kind == truth.Kind {
			return 0
		}
		return 2
	}
}

// bestMember scores a union as its best member plus a 0.5 ambiguity
// penalty (Example 4.2's display can only be half right).
func (sc *Scorer) bestMember(u, truth *ctype.Type, depth int) float64 {
	best := 4.0
	for _, m := range u.Members {
		if d := sc.dist(m, truth, depth-1); d < best {
			best = d
		}
	}
	return min4(best + 0.5)
}

func (sc *Scorer) structDist(inf, truth *ctype.Type, depth int) float64 {
	if len(truth.Fields) == 0 {
		return 0
	}
	infByOff := map[int]*ctype.Type{}
	for _, f := range inf.Fields {
		infByOff[f.Off] = f.Type
	}
	total := 0.0
	for _, f := range truth.Fields {
		if it, ok := infByOff[f.Off]; ok {
			total += sc.dist(it, f.Type, depth-1)
		} else {
			total += 2 // missing field
		}
	}
	return min4(total / float64(len(truth.Fields)))
}

// Interval computes the interval-size metric from a sketch: the lattice
// distance between the node's upper and lower bounds, recursing through
// one pointer level with the TIE halving.
func (sc *Scorer) Interval(sk *sketch.Sketch) float64 {
	if sk == nil {
		return 4
	}
	return min4(sc.intervalAt(sk, 0, 3))
}

func (sc *Scorer) intervalAt(sk *sketch.Sketch, st int, depth int) float64 {
	node := &sk.States[st]
	if depth == 0 {
		return 0
	}
	// Pointer-capable: interval is half the pointee's.
	for _, e := range node.Edges {
		if e.Label.Kind() == label.KLoad || e.Label.Kind() == label.KStore {
			inner := 0.0
			// Descend through the access and its σ field if present.
			t := e.To
			if len(sk.States[t].Edges) > 0 && sk.States[t].Edges[0].Label.Kind() == label.KField {
				inner = sc.intervalAt(sk, sk.States[t].Edges[0].To, depth-1)
			} else {
				inner = sc.intervalAt(sk, t, depth-1)
			}
			return 0.5 * inner
		}
	}
	lo, hi := sc.effBounds(node)
	return sc.Level(hi) - sc.Level(lo)
}

// Conservative reports whether the sketch's bound interval
// over-approximates the truth (recursing one level through pointers).
func (sc *Scorer) Conservative(sk *sketch.Sketch, truth *ctype.Type) bool {
	if sk == nil {
		return true
	}
	return sc.conservativeAt(sk, 0, truth, 4)
}

func (sc *Scorer) conservativeAt(sk *sketch.Sketch, st int, truth *ctype.Type, depth int) bool {
	if truth == nil || depth == 0 {
		return true
	}
	node := &sk.States[st]
	hasPtrCap := false
	var pointee = -1
	for _, e := range node.Edges {
		if e.Label.Kind() == label.KLoad || e.Label.Kind() == label.KStore {
			hasPtrCap = true
			pointee = e.To
		}
	}
	if truth.Kind == ctype.KPrim && (truth.Name == "char*" || truth.Name == "char *") {
		truth = ctype.PtrTo(ctype.Prim("char"))
	}
	switch truth.Kind {
	case ctype.KPtr, ctype.KStruct:
		// A scalar upper bound strictly below a pointable level
		// contradicts pointerhood.
		if !hasPtrCap {
			_, hi := sc.effBounds(node)
			return hi == sc.Lat.Top() ||
				sc.Lat.Name(hi) == "ptr" || sc.Lat.Name(hi) == "str" ||
				node.Flags&sketch.FlagPointer != 0
		}
		if truth.Kind == ctype.KPtr && pointee >= 0 {
			// Descend through σ32@0 when present.
			t := pointee
			for _, e := range sk.States[t].Edges {
				if e.Label.Kind() == label.KField && e.Label.Offset() == 0 {
					return sc.conservativeAt(sk, e.To, truth.Elem, depth-1)
				}
			}
			return sc.conservativeAt(sk, t, truth.Elem, depth-1)
		}
		return true
	case ctype.KPrim:
		te, ok := sc.truthElem(truth)
		if !ok {
			return true
		}
		if hasPtrCap {
			// Claimed pointer where the truth is scalar: unsound
			// unless the scalar is itself pointer-like.
			return sc.Lat.Leq(te, mustElem(sc.Lat, "ptr"))
		}
		lo, hi := sc.effBounds(node)
		return sc.Lat.Leq(lo, te) && sc.Lat.Leq(te, hi)
	default:
		return true
	}
}

func mustElem(lat *lattice.Lattice, name string) lattice.Elem {
	if e, ok := lat.Elem(name); ok {
		return e
	}
	return lat.Top()
}

// inferredPointerAt reports whether the sketch state claims a pointer:
// a load/store capability, a pointer-family lattice bound, or the
// Figure 13 pointer flag. The pointee state (for capability-based
// claims) is returned for descent.
func (sc *Scorer) inferredPointerAt(sk *sketch.Sketch, st int) (bool, int) {
	node := &sk.States[st]
	for _, e := range node.Edges {
		if e.Label.Kind() == label.KLoad || e.Label.Kind() == label.KStore {
			// The pointer spine continues only through a scalar
			// pointee (a single field at offset 0, mirroring the
			// display policy); a struct pointee ends the spine.
			t := e.To
			var fieldEdges []sketch.Edge
			for _, e2 := range sk.States[t].Edges {
				if e2.Label.Kind() == label.KField {
					fieldEdges = append(fieldEdges, e2)
				}
			}
			if len(fieldEdges) == 1 && fieldEdges[0].Label.Offset() == 0 {
				return true, fieldEdges[0].To
			}
			if len(fieldEdges) == 0 {
				return true, t
			}
			return true, -1
		}
	}
	lo, hi := sc.effBounds(node)
	ptrE, ok := sc.Lat.Elem("ptr")
	if ok {
		if lo != sc.Lat.Bottom() && sc.Lat.Leq(lo, ptrE) {
			return true, -1
		}
		if hi != sc.Lat.Top() && sc.Lat.Leq(hi, ptrE) {
			return true, -1
		}
	}
	if node.Flags&sketch.FlagPointer != 0 {
		return true, -1
	}
	return false, -1
}

// PointerLevels implements the multi-level pointer accuracy of
// ElWazeer et al. (§6.5): the truth's pointer spine is compared with
// the inferred one; levels is the longer of the two spines (claiming a
// pointer where the source has a scalar counts against accuracy, as
// does missing one), matched is the agreeing prefix.
func (sc *Scorer) PointerLevels(sk *sketch.Sketch, truth *ctype.Type) (levels, matched int) {
	truthL := 0
	cur := truth
	for cur != nil {
		if cur.Kind == ctype.KPrim && (cur.Name == "char*" || cur.Name == "char *") {
			cur = ctype.PtrTo(ctype.Prim("char"))
		}
		if cur.Kind != ctype.KPtr {
			break
		}
		truthL++
		cur = cur.Elem
	}
	// Opaque pointer typedefs (HANDLE and friends, §2.8) are scalars in
	// the source but pointers underneath; they are excluded from the
	// spine comparison rather than counted as over-claims.
	if truthL == 0 {
		if te, ok := sc.truthElem(truth); ok {
			if pe, okp := sc.Lat.Elem("ptr"); okp && sc.Lat.Leq(te, pe) {
				return 0, 0
			}
		}
	}
	infL := 0
	if sk != nil {
		st := 0
		for infL < truthL+2 {
			isPtr, next := sc.inferredPointerAt(sk, st)
			if !isPtr {
				break
			}
			infL++
			if next < 0 {
				break
			}
			st = next
		}
	}
	levels = truthL
	if infL > levels {
		levels = infL
	}
	matched = truthL
	if infL < matched {
		matched = infL
	}
	return levels, matched
}

// Score evaluates one variable.
func (sc *Scorer) Score(sk *sketch.Sketch, displayed *ctype.Type, truth VarTruth) Sample {
	s := Sample{
		Distance:     sc.Distance(displayed, truth.Type),
		Interval:     sc.Interval(sk),
		Conservative: sc.Conservative(sk, truth.Type),
	}
	s.PtrLevels, s.PtrMatched = sc.PointerLevels(sk, truth.Type)
	if truth.Kind == "param" && truthIsPointer(truth.Type) {
		s.ConstEligible = true
		s.ConstTruth = truth.Const
		if sk != nil {
			hasLoad := sk.Accepts(label.Word{label.Load()})
			hasStore := sk.Accepts(label.Word{label.Store()})
			s.ConstInferred = hasLoad && !hasStore
		}
	}
	return s
}

func truthIsPointer(t *ctype.Type) bool {
	if t == nil {
		return false
	}
	if t.Kind == ctype.KPtr {
		return true
	}
	return t.Kind == ctype.KPrim && (t.Name == "char*" || t.Name == "char *" || strings.HasSuffix(t.Name, "*"))
}
