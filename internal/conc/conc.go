// Package conc provides the bounded fork/join primitive the solver
// pipeline schedules on: an errgroup-style indexed ForEach, implemented
// on the standard library only (the module has no external
// dependencies).
//
// Panics raised inside workers are captured and re-raised on the waiting
// goroutine, so a crash in one shard of a parallel phase surfaces with
// its original message instead of deadlocking the pipeline.
package conc

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic wraps a panic captured inside a ForEach worker: Value is
// the original panic value (recover on this type and inspect Value to
// handle typed panics), Stack the panicking worker's stack trace.
type WorkerPanic struct {
	Value any
	Stack []byte
}

// Error renders the original value and the worker's stack.
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("conc: worker panic: %v\n%s", p.Value, p.Stack)
}

// Limit normalizes a worker-count knob: values ≤ 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS).
func Limit(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach invokes f(i) for every i in [0, n), running at most
// Limit(workers) invocations concurrently. It returns once all
// invocations completed; worker panics are re-raised on the caller.
// With workers == 1 (or n == 1) the calls run inline on the caller's
// goroutine in index order, which keeps the sequential path allocation-
// and scheduler-free.
//
// Work is handed out in chunks of contiguous indices (guided by n and
// the worker count) so that claiming an item is one atomic add per
// chunk, not one per item: with many small items (thousands of leaf
// procedures per phase) the per-item fetch-add line becomes a real
// contention point in CPU profiles. Chunks shrink to 1 for small n, so
// load balance for coarse items is unchanged.
func ForEach(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := Limit(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}

	// 8 chunks per worker keeps the tail balanced while cutting the
	// atomic traffic by the chunk factor.
	chunk := n / (w * 8)
	if chunk < 1 {
		chunk = 1
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var once sync.Once
	var pval *WorkerPanic
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { pval = &WorkerPanic{Value: r, Stack: debug.Stack()} })
					next.Store(int64(n)) // stop handing out work
				}
			}()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}
