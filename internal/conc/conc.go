// Package conc provides the bounded fork/join primitives the solver
// pipeline schedules on: an errgroup-style indexed ForEach and a
// work-stealing task-graph executor (RunPool), implemented on the
// standard library only (the module has no external dependencies).
//
// Panics raised inside workers are captured and surfaced on the waiting
// goroutine — re-raised by the legacy entry points, returned as errors
// by the context-aware ones — so a crash in one shard of a parallel
// phase shows its original message instead of deadlocking the pipeline.
// The context-aware entry points (ForEachCtx, RunPoolCtx) additionally
// observe cancellation at work-item boundaries: an item that has
// started always finishes, and the primitive then stops handing out
// work and returns ctx.Err().
package conc

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic wraps a panic captured inside a worker: Value is the
// original panic value (recover on this type and inspect Value to
// handle typed panics), Stack the panicking worker's stack trace, and
// Label the identity of the task that died ("" when the work was
// anonymous, as in ForEach items). Schedulers built on this package
// normally contain task panics themselves and convert them into richer
// structured errors; Label keeps any residual escape diagnosable.
type WorkerPanic struct {
	Value any
	Stack []byte
	Label string
}

// Error renders the original value, the task identity, and the
// panicking worker's stack.
func (p *WorkerPanic) Error() string {
	if p.Label != "" {
		return fmt.Sprintf("conc: worker panic in task %q: %v\n%s", p.Label, p.Value, p.Stack)
	}
	return fmt.Sprintf("conc: worker panic: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through the wrapper.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Limit normalizes a worker-count knob: values ≤ 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS).
func Limit(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach invokes f(i) for every i in [0, n), running at most
// Limit(workers) invocations concurrently. It returns once all
// invocations completed; worker panics are re-raised on the caller.
// With workers == 1 (or n == 1) the calls run inline on the caller's
// goroutine in index order, which keeps the sequential path allocation-
// and scheduler-free.
func ForEach(workers, n int, f func(i int)) {
	if err := ForEachCtx(context.Background(), workers, n, f); err != nil {
		// Background is never cancelled; the only possible error is a
		// *WorkerPanic — re-raise it, preserving the legacy contract.
		panic(err)
	}
}

// ForEachCtx is ForEach with cooperative cancellation: ctx is checked
// between work chunks (never inside f), and on cancellation the loop
// stops handing out further items and returns ctx.Err() — items
// already started still finish. A panic inside f stops the loop and is
// returned (not re-raised) as a *WorkerPanic error; a panic wins over
// a concurrent cancellation.
//
// Work is handed out in chunks of contiguous indices (guided by n and
// the worker count) so that claiming an item is one atomic add per
// chunk, not one per item: with many small items (thousands of leaf
// procedures per phase) the per-item fetch-add line becomes a real
// contention point in CPU profiles. Chunks shrink to 1 for small n, so
// load balance for coarse items is unchanged. Cancellation granularity
// follows the chunk size: a chunk that has started runs to its end.
func ForEachCtx(ctx context.Context, workers, n int, f func(i int)) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Limit(workers)
	if w > n {
		w = n
	}
	// ctx.Err() takes a lock in the runtime's cancelCtx; checking it
	// once per chunk (parallel path) or once per stride (sequential
	// path) keeps the guard off the per-item fast path.
	if w == 1 {
		const stride = 64
		for i := 0; i < n; i++ {
			if i%stride == 0 && i > 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := runItem(f, i); err != nil {
				return err
			}
		}
		return nil
	}

	// 8 chunks per worker keeps the tail balanced while cutting the
	// atomic traffic by the chunk factor.
	chunk := n / (w * 8)
	if chunk < 1 {
		chunk = 1
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var once sync.Once
	var pval *WorkerPanic
	var cancelled atomic.Bool
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					once.Do(func() { pval = &WorkerPanic{Value: r, Stack: debug.Stack()} })
					next.Store(int64(n)) // stop handing out work
				}
			}()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					next.Store(int64(n))
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		return pval
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// runItem runs one sequential-path item, converting a panic into a
// *WorkerPanic error (the parallel path recovers at worker scope; the
// sequential path has no worker goroutine to recover in, so it wraps
// per item — the overhead is one deferred call).
func runItem(f func(int), i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerPanic{Value: r, Stack: debug.Stack()}
		}
	}()
	f(i)
	return nil
}
