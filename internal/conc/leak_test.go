package conc

import (
	"context"
	"sync/atomic"
	"testing"

	"retypd/internal/leakcheck"
)

// These tests pin the executor's drain guarantee at its own layer: no
// exit path — quiescence, cancellation, or a worker panic — may strand
// a worker or the cancel watcher. The solver and faultinject suites
// check the same property end to end; this one localizes a regression
// to the executor.

// TestRunPoolCtxCancelNoLeak: cancelling a self-perpetuating task graph
// drains every worker and the watcher goroutine.
func TestRunPoolCtxCancelNoLeak(t *testing.T) {
	leakcheck.Install(t)
	for _, w := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		var spawn func(s Submitter)
		spawn = func(s Submitter) {
			if ran.Add(1) == 25 {
				cancel()
			}
			s.Submit(Task{Run: spawn})
			s.Submit(Task{Run: spawn})
		}
		err := RunPoolCtx(ctx, w, nil, spawn)
		cancel()
		if err != context.Canceled {
			t.Fatalf("w=%d: err = %v, want context.Canceled", w, err)
		}
	}
}

// TestRunPoolPanicNoLeak: a worker panic tears the pool down without
// stranding its siblings.
func TestRunPoolPanicNoLeak(t *testing.T) {
	leakcheck.Install(t)
	for _, w := range []int{1, 4} {
		err := RunPoolCtx(context.Background(), w, nil, func(s Submitter) {
			for i := 0; i < 50; i++ {
				s.Submit(Task{Run: func(Submitter) {}})
			}
			s.Submit(Task{Label: "bomb", Run: func(Submitter) { panic("boom") }})
		})
		if _, ok := err.(*WorkerPanic); !ok {
			t.Fatalf("w=%d: err = %v (%T), want *WorkerPanic", w, err, err)
		}
	}
}

// TestForEachCtxCancelNoLeak: cancelling a parallel ForEachCtx mid-run
// drains every chunk worker.
func TestForEachCtxCancelNoLeak(t *testing.T) {
	leakcheck.Install(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	_ = ForEachCtx(ctx, 8, 100000, func(int) {
		if seen.Add(1) == 500 {
			cancel()
		}
	})
}
