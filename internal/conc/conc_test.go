package conc

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		const n = 137
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("must not be called") })
	ForEach(4, -3, func(int) { t.Fatal("must not be called") })
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 must run in index order, got %v", order)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *WorkerPanic", r)
		}
		if wp.Value != "boom" {
			t.Fatalf("original panic value lost: %v", wp.Value)
		}
		if !strings.Contains(wp.Error(), "boom") || len(wp.Stack) == 0 {
			t.Fatalf("worker stack/message lost: %v", wp.Error())
		}
	}()
	ForEach(3, 50, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak atomic.Int32
	ForEach(limit, 40, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, limit)
	}
}

func TestLimit(t *testing.T) {
	if Limit(4) != 4 {
		t.Errorf("Limit(4) = %d", Limit(4))
	}
	if Limit(0) < 1 || Limit(-1) < 1 {
		t.Errorf("Limit must be ≥ 1 for auto values")
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 4, 100, func(int) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("ran %d items on a pre-cancelled context", ran.Load())
	}
}

func TestForEachCtxMidRunCancel(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, w, 100000, func(int) {
			if ran.Add(1) == 100 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("w=%d: err = %v, want context.Canceled", w, err)
		}
		if n := ran.Load(); n == 100000 {
			t.Fatalf("w=%d: cancel did not stop the loop early (ran all %d)", w, n)
		}
	}
}

func TestForEachCtxPanicReturnsError(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEachCtx(context.Background(), w, 64, func(i int) {
			if i == 7 {
				panic("item boom")
			}
		})
		wp, ok := err.(*WorkerPanic)
		if !ok {
			t.Fatalf("w=%d: err = %v (%T), want *WorkerPanic", w, err, err)
		}
		if wp.Value != "item boom" {
			t.Fatalf("w=%d: panic value = %v", w, wp.Value)
		}
	}
}

func TestWorkerPanicUnwrap(t *testing.T) {
	inner := errors.New("inner")
	wp := &WorkerPanic{Value: inner}
	if !errors.Is(wp, inner) {
		t.Fatal("errors.Is should see through WorkerPanic to the error value")
	}
	if (&WorkerPanic{Value: "not an error"}).Unwrap() != nil {
		t.Fatal("Unwrap of non-error value should be nil")
	}
}
