package conc

import (
	"runtime/debug"
	"sync"
)

// Task is one unit of executor work. It receives a Submitter so that
// completing one unit can make further units runnable (the solver's
// readiness scheduler submits an SCC's callers the moment their last
// callee finishes) without threading the executor through every call
// site.
type Task func(sub Submitter)

// Submitter enqueues tasks for execution. Submit may be called from
// inside a running task (the task goes to the submitting worker's own
// deque, LIFO, so freshly-unlocked work runs hot-in-cache) or from
// outside the pool before Run's seed returns (the task goes to the
// global injection queue).
type Submitter interface {
	Submit(t Task)
}

// SchedHooks lets tests perturb executor scheduling without changing
// its semantics. Both fields may be nil. The hooks exist so the
// determinism suite can prove output invariance under adversarial
// schedules — production code never sets them.
type SchedHooks struct {
	// BeforeRun is called on the executing worker immediately before
	// each task runs (schedtest injects randomized delays here).
	BeforeRun func(worker int)
	// StealOrder returns the order in which worker self scans the other
	// workers' deques when its own deque and the global queue are empty.
	// It must return a permutation of [0, workers) values != self
	// (values == self or out of range are skipped). Nil means ascending
	// order starting after self.
	StealOrder func(self, workers int) []int
}

// Executor runs tasks on a fixed pool of workers with per-worker
// deques and work stealing. Owners push and pop their own deque at the
// tail (LIFO — depth-first over freshly unlocked work keeps the ready
// frontier small and cache-hot); thieves and the global queue are
// consumed at the head (FIFO — stolen work is the oldest, coarsest
// ready work, the classic Blumofe/Leiserson split).
//
// All queues hang off one mutex: solver tasks are whole SCCs or whole
// procedures (microseconds to milliseconds), so a lock-per-transition
// design costs nothing measurable and keeps the quiescence test — the
// executor must detect "no task queued anywhere, none running" to
// terminate — trivially race-free. Idle workers park on a condition
// variable instead of spinning.
//
// A panic inside a task stops the pool (pending work is dropped) and
// is re-raised on the Run caller as a *WorkerPanic, matching ForEach.
type Executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]Task // deques[w]: owner pops tail, thieves pop head
	global  []Task   // injection queue, FIFO
	pending int      // tasks queued or running
	stopped bool     // panic observed: drain and exit
	hooks   SchedHooks
	pval    *WorkerPanic
}

// workerSub is the Submitter handed to tasks running on worker w.
type workerSub struct {
	e *Executor
	w int
}

func (s workerSub) Submit(t Task) { s.e.submit(s.w, t) }

// globalSub is the Submitter handed to Run's seed function; it injects
// into the global queue (no owning worker yet).
type globalSub struct{ e *Executor }

func (s globalSub) Submit(t Task) { s.e.submit(-1, t) }

// submit enqueues t on worker w's deque (w >= 0) or the global queue
// (w < 0) and wakes one parked worker.
func (e *Executor) submit(w int, t Task) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.pending++
	if w >= 0 {
		e.deques[w] = append(e.deques[w], t)
	} else {
		e.global = append(e.global, t)
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// next blocks until worker w has a task to run or the pool is
// quiescent/stopped. ok == false means the worker should exit.
func (e *Executor) next(w int) (Task, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped {
			return nil, false
		}
		// Own deque, tail (LIFO).
		if d := e.deques[w]; len(d) > 0 {
			t := d[len(d)-1]
			d[len(d)-1] = nil
			e.deques[w] = d[:len(d)-1]
			return t, true
		}
		// Global injection queue, head (FIFO).
		if len(e.global) > 0 {
			t := e.global[0]
			e.global[0] = nil
			e.global = e.global[1:]
			return t, true
		}
		// Steal: scan victims per the hook (or ascending after self),
		// taking the head — the oldest, coarsest work of the victim.
		order := e.stealOrder(w)
		for _, v := range order {
			if v == w || v < 0 || v >= len(e.deques) {
				continue
			}
			if d := e.deques[v]; len(d) > 0 {
				t := d[0]
				d[0] = nil
				e.deques[v] = d[1:]
				return t, true
			}
		}
		if e.pending == 0 {
			// Quiescent: nothing queued, nothing running anywhere.
			e.cond.Broadcast()
			return nil, false
		}
		e.cond.Wait()
	}
}

// stealOrder resolves the victim scan order for worker w. Callers hold
// mu; the hook runs under the lock, which is fine for test hooks.
func (e *Executor) stealOrder(w int) []int {
	if e.hooks.StealOrder != nil {
		return e.hooks.StealOrder(w, len(e.deques))
	}
	order := make([]int, 0, len(e.deques)-1)
	for i := 1; i < len(e.deques); i++ {
		order = append(order, (w+i)%len(e.deques))
	}
	return order
}

// runWorker is one worker's loop: pull, run, account, repeat.
func (e *Executor) runWorker(w int, once *sync.Once) {
	defer func() {
		if r := recover(); r != nil {
			once.Do(func() { e.pval = &WorkerPanic{Value: r, Stack: debug.Stack()} })
			e.mu.Lock()
			e.stopped = true
			e.mu.Unlock()
			e.cond.Broadcast()
		}
	}()
	sub := workerSub{e: e, w: w}
	for {
		t, ok := e.next(w)
		if !ok {
			return
		}
		if e.hooks.BeforeRun != nil {
			e.hooks.BeforeRun(w)
		}
		t(sub)
		e.mu.Lock()
		e.pending--
		quiescent := e.pending == 0
		e.mu.Unlock()
		if quiescent {
			e.cond.Broadcast()
		}
	}
}

// RunPool executes a dynamic task graph on Limit(workers) workers:
// seed submits the initially-ready tasks, tasks submit their
// successors, and RunPool returns when the pool is quiescent (every
// submitted task completed and no worker holds one). hooks may be nil.
// Worker 0 runs inline on the calling goroutine, so workers == 1 is
// fully sequential — no goroutines, deterministic LIFO order — which
// is the reference schedule the solver's determinism suite compares
// against. Task panics are re-raised on the caller as *WorkerPanic.
func RunPool(workers int, hooks *SchedHooks, seed func(sub Submitter)) {
	w := Limit(workers)
	e := &Executor{deques: make([][]Task, w)}
	e.cond = sync.NewCond(&e.mu)
	if hooks != nil {
		e.hooks = *hooks
	}
	seed(globalSub{e: e})

	var once sync.Once
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			e.runWorker(k, &once)
		}(k)
	}
	e.runWorker(0, &once)
	// Worker 0 exits only when stopped or quiescent; both states wake
	// the others, which then exit too.
	e.cond.Broadcast()
	wg.Wait()
	if e.pval != nil {
		panic(e.pval)
	}
}
