package conc

import (
	"context"
	"runtime/debug"
	"sync"
)

// Task is one unit of executor work. Run receives a Submitter so that
// completing one unit can make further units runnable (the solver's
// readiness scheduler submits an SCC's callers the moment their last
// callee finishes) without threading the executor through every call
// site. Label is the task's diagnostic identity ("F.1 scc=3 proc=foo"):
// it costs nothing while tasks succeed and is attached to the
// *WorkerPanic when a panic escapes the task, so even a failure that
// slipped past a higher layer's containment names the work that died.
type Task struct {
	Label string
	Run   func(sub Submitter)
}

// Submitter enqueues tasks for execution. Submit may be called from
// inside a running task (the task goes to the submitting worker's own
// deque, LIFO, so freshly-unlocked work runs hot-in-cache) or from
// outside the pool before Run's seed returns (the task goes to the
// global injection queue).
type Submitter interface {
	Submit(t Task)
}

// SchedHooks lets tests perturb and observe executor scheduling without
// changing its semantics. All fields may be nil. The hooks exist so the
// determinism suite can prove output invariance under adversarial
// schedules and so the fault-injection harness can kill or stall
// specific tasks — production code never sets them.
type SchedHooks struct {
	// BeforeRun is called on the executing worker immediately before
	// each task runs (schedtest injects randomized delays here).
	BeforeRun func(worker int)
	// StealOrder returns the order in which worker self scans the other
	// workers' deques when its own deque and the global queue are empty.
	// It must return a permutation of [0, workers) values != self
	// (values == self or out of range are skipped). Nil means ascending
	// order starting after self.
	StealOrder func(self, workers int) []int
	// BeforeTask is invoked by schedulers built on the executor (the
	// solver's readiness pipeline) immediately before each identified
	// task body runs, INSIDE that scheduler's panic containment: a hook
	// that panics is reported as that task's structured failure, and a
	// hook that blocks delays it. phase is the pipeline phase ("F.0"
	// through "F.3"), name the task's SCC/procedure identity. This is
	// the seam internal/faultinject rides; the executor itself never
	// calls it.
	BeforeTask func(phase, name string)
}

// Executor runs tasks on a fixed pool of workers with per-worker
// deques and work stealing. Owners push and pop their own deque at the
// tail (LIFO — depth-first over freshly unlocked work keeps the ready
// frontier small and cache-hot); thieves and the global queue are
// consumed at the head (FIFO — stolen work is the oldest, coarsest
// ready work, the classic Blumofe/Leiserson split).
//
// All queues hang off one mutex: solver tasks are whole SCCs or whole
// procedures (microseconds to milliseconds), so a lock-per-transition
// design costs nothing measurable and keeps the quiescence test — the
// executor must detect "no task queued anywhere, none running" to
// terminate — trivially race-free. Idle workers park on a condition
// variable instead of spinning.
//
// A panic inside a task stops the pool (pending work is dropped) and
// surfaces as a *WorkerPanic carrying the task's label. Cancellation
// (RunPoolCtx) is checked at task boundaries only: a task that has
// started always runs to completion, so a cancelled pool never leaves
// a half-executed task behind — it drains and exits.
type Executor struct {
	mu        sync.Mutex
	cond      *sync.Cond
	deques    [][]Task // deques[w]: owner pops tail, thieves pop head
	global    []Task   // injection queue, FIFO
	pending   int      // tasks queued or running
	stopped   bool     // panic or cancellation observed: drain and exit
	cancelled bool     // stop came from context cancellation
	hooks     SchedHooks
	pval      *WorkerPanic
}

// workerSub is the Submitter handed to tasks running on worker w.
type workerSub struct {
	e *Executor
	w int
}

func (s workerSub) Submit(t Task) { s.e.submit(s.w, t) }

// globalSub is the Submitter handed to Run's seed function; it injects
// into the global queue (no owning worker yet).
type globalSub struct{ e *Executor }

func (s globalSub) Submit(t Task) { s.e.submit(-1, t) }

// submit enqueues t on worker w's deque (w >= 0) or the global queue
// (w < 0) and wakes one parked worker.
func (e *Executor) submit(w int, t Task) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.pending++
	if w >= 0 {
		e.deques[w] = append(e.deques[w], t)
	} else {
		e.global = append(e.global, t)
	}
	e.mu.Unlock()
	e.cond.Signal()
}

// next blocks until worker w has a task to run or the pool is
// quiescent/stopped. ok == false means the worker should exit. This is
// the executor's task boundary: stop (panic or cancellation) is
// observed here, between tasks, never inside one.
func (e *Executor) next(w int) (Task, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped {
			return Task{}, false
		}
		// Own deque, tail (LIFO).
		if d := e.deques[w]; len(d) > 0 {
			t := d[len(d)-1]
			d[len(d)-1] = Task{}
			e.deques[w] = d[:len(d)-1]
			return t, true
		}
		// Global injection queue, head (FIFO).
		if len(e.global) > 0 {
			t := e.global[0]
			e.global[0] = Task{}
			e.global = e.global[1:]
			return t, true
		}
		// Steal: scan victims per the hook (or ascending after self),
		// taking the head — the oldest, coarsest work of the victim.
		order := e.stealOrder(w)
		for _, v := range order {
			if v == w || v < 0 || v >= len(e.deques) {
				continue
			}
			if d := e.deques[v]; len(d) > 0 {
				t := d[0]
				d[0] = Task{}
				e.deques[v] = d[1:]
				return t, true
			}
		}
		if e.pending == 0 {
			// Quiescent: nothing queued, nothing running anywhere.
			e.cond.Broadcast()
			return Task{}, false
		}
		e.cond.Wait()
	}
}

// stealOrder resolves the victim scan order for worker w. Callers hold
// mu; the hook runs under the lock, which is fine for test hooks.
func (e *Executor) stealOrder(w int) []int {
	if e.hooks.StealOrder != nil {
		return e.hooks.StealOrder(w, len(e.deques))
	}
	order := make([]int, 0, len(e.deques)-1)
	for i := 1; i < len(e.deques); i++ {
		order = append(order, (w+i)%len(e.deques))
	}
	return order
}

// stop halts the pool: queued work is dropped, running tasks finish,
// parked workers wake and exit.
func (e *Executor) stop(cancelled bool) {
	e.mu.Lock()
	e.stopped = true
	if cancelled {
		e.cancelled = true
	}
	e.mu.Unlock()
	e.cond.Broadcast()
}

// runWorker is one worker's loop: pull, run, account, repeat.
func (e *Executor) runWorker(w int, once *sync.Once) {
	// cur is the label of the task this worker is currently running;
	// the deferred recover attaches it to the WorkerPanic so a residual
	// escape — one the owning scheduler's containment did not catch —
	// still names the work that died.
	var cur string
	defer func() {
		if r := recover(); r != nil {
			once.Do(func() { e.pval = &WorkerPanic{Value: r, Stack: debug.Stack(), Label: cur} })
			e.stop(false)
		}
	}()
	sub := workerSub{e: e, w: w}
	for {
		t, ok := e.next(w)
		if !ok {
			return
		}
		if e.hooks.BeforeRun != nil {
			e.hooks.BeforeRun(w)
		}
		cur = t.Label
		t.Run(sub)
		cur = ""
		e.mu.Lock()
		e.pending--
		quiescent := e.pending == 0
		e.mu.Unlock()
		if quiescent {
			e.cond.Broadcast()
		}
	}
}

// RunPool executes a dynamic task graph on Limit(workers) workers:
// seed submits the initially-ready tasks, tasks submit their
// successors, and RunPool returns when the pool is quiescent (every
// submitted task completed and no worker holds one). hooks may be nil.
// Worker 0 runs inline on the calling goroutine, so workers == 1 is
// fully sequential — no goroutines, deterministic LIFO order — which
// is the reference schedule the solver's determinism suite compares
// against. Task panics are re-raised on the caller as *WorkerPanic.
func RunPool(workers int, hooks *SchedHooks, seed func(sub Submitter)) {
	if err := RunPoolCtx(context.Background(), workers, hooks, seed); err != nil {
		// Background is never cancelled, so the only possible error is a
		// *WorkerPanic — re-raise it, preserving the legacy contract.
		panic(err)
	}
}

// RunPoolCtx is RunPool with cooperative cancellation: when ctx is
// cancelled the pool stops handing out tasks (running tasks finish —
// cancellation is observed at task boundaries only), drains, and
// RunPoolCtx returns ctx.Err(). An already-cancelled context returns
// immediately without running the seed or spawning any worker. A task
// panic stops the pool the same way and is returned (not re-raised) as
// a *WorkerPanic error carrying the task's label; a panic wins over a
// concurrent cancellation, since it is strictly more informative.
func RunPoolCtx(ctx context.Context, workers int, hooks *SchedHooks, seed func(sub Submitter)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Limit(workers)
	e := &Executor{deques: make([][]Task, w)}
	e.cond = sync.NewCond(&e.mu)
	if hooks != nil {
		e.hooks = *hooks
	}

	// The watcher turns ctx cancellation into a pool stop, waking parked
	// workers. Background/TODO contexts (Done() == nil) skip it, so the
	// uncancellable path spawns no extra goroutine.
	var watchWG sync.WaitGroup
	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				e.stop(true)
			case <-watchDone:
			}
		}()
	}

	seed(globalSub{e: e})

	var once sync.Once
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			e.runWorker(k, &once)
		}(k)
	}
	e.runWorker(0, &once)
	// Worker 0 exits only when stopped or quiescent; both states wake
	// the others, which then exit too.
	e.cond.Broadcast()
	wg.Wait()
	close(watchDone)
	watchWG.Wait()

	if e.pval != nil {
		return e.pval
	}
	// cancelled was set by the watcher (before it exited, so the
	// WaitGroup gives the happens-before edge): queued work was dropped.
	if e.cancelled {
		return ctx.Err()
	}
	return nil
}
