package conc

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunPoolRunsEverything: a dynamic fan-out tree (each task spawns
// children up to a depth) runs every node exactly once at several
// worker counts.
func TestRunPoolRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var ran atomic.Int64
		var spawn func(depth int) Task
		spawn = func(depth int) Task {
			return Task{Run: func(sub Submitter) {
				ran.Add(1)
				if depth > 0 {
					sub.Submit(spawn(depth - 1))
					sub.Submit(spawn(depth - 1))
				}
			}}
		}
		RunPool(workers, nil, func(sub Submitter) {
			sub.Submit(spawn(6))
		})
		if got := ran.Load(); got != 127 { // 2^7 - 1 nodes
			t.Errorf("workers=%d: ran %d tasks, want 127", workers, got)
		}
	}
}

// TestRunPoolSequentialOrder: with one worker everything runs inline on
// the caller in deterministic LIFO (depth-first) order — the reference
// schedule.
func TestRunPoolSequentialOrder(t *testing.T) {
	var order []int
	mk := func(id int) Task { return Task{Run: func(Submitter) { order = append(order, id) }} }
	RunPool(1, nil, func(sub Submitter) {
		sub.Submit(Task{Run: func(s Submitter) {
			order = append(order, 0)
			s.Submit(mk(1))
			s.Submit(mk(2))
		}})
		sub.Submit(mk(3))
	})
	// Global queue is FIFO (task 0 then 3); worker-local is LIFO (2
	// before 1).
	want := []int{0, 2, 1, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestRunPoolEmptySeed: a seed that submits nothing terminates.
func TestRunPoolEmptySeed(t *testing.T) {
	RunPool(4, nil, func(Submitter) {})
}

// TestRunPoolQuiescence: tasks submitted from deep inside the graph
// still complete before RunPool returns (no lost wakeups / premature
// quiescence).
func TestRunPoolQuiescence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var ran atomic.Int64
		const n = 200
		RunPool(4, nil, func(sub Submitter) {
			sub.Submit(Task{Run: func(s Submitter) {
				for i := 0; i < n; i++ {
					s.Submit(Task{Run: func(Submitter) { ran.Add(1) }})
				}
			}})
		})
		if got := ran.Load(); got != n {
			t.Fatalf("trial %d: ran %d, want %d", trial, got, n)
		}
	}
}

// TestRunPoolPanic: a task panic is re-raised on the caller as a
// *WorkerPanic and the pool still terminates.
func TestRunPoolPanic(t *testing.T) {
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *WorkerPanic", r, r)
		}
		if wp.Value != "boom" {
			t.Errorf("panic value = %v, want boom", wp.Value)
		}
		if wp.Label != "doomed" {
			t.Errorf("panic label = %q, want doomed", wp.Label)
		}
	}()
	RunPool(4, nil, func(sub Submitter) {
		for i := 0; i < 50; i++ {
			sub.Submit(Task{Run: func(Submitter) {}})
		}
		sub.Submit(Task{Label: "doomed", Run: func(Submitter) { panic("boom") }})
	})
	t.Fatal("RunPool returned instead of panicking")
}

// TestRunPoolHooks: BeforeRun sees every task, StealOrder is consulted
// with sane arguments, and a hostile (self-only, out-of-range) steal
// order is tolerated.
func TestRunPoolHooks(t *testing.T) {
	var before atomic.Int64
	var stealCalls atomic.Int64
	hooks := &SchedHooks{
		BeforeRun: func(worker int) {
			if worker < 0 || worker >= 4 {
				t.Errorf("BeforeRun worker = %d", worker)
			}
			before.Add(1)
		},
		StealOrder: func(self, workers int) []int {
			stealCalls.Add(1)
			if workers != 4 {
				t.Errorf("StealOrder workers = %d, want 4", workers)
			}
			// Hostile: self, out-of-range, then a valid permutation.
			out := []int{self, -1, workers}
			for i := 0; i < workers; i++ {
				if i != self {
					out = append(out, i)
				}
			}
			return out
		},
	}
	const n = 100
	var ran atomic.Int64
	RunPool(4, hooks, func(sub Submitter) {
		sub.Submit(Task{Run: func(s Submitter) {
			for i := 0; i < n-1; i++ {
				s.Submit(Task{Run: func(Submitter) { ran.Add(1) }})
			}
			ran.Add(1)
		}})
	})
	if ran.Load() != n {
		t.Errorf("ran %d, want %d", ran.Load(), n)
	}
	if before.Load() != n {
		t.Errorf("BeforeRun saw %d tasks, want %d", before.Load(), n)
	}
	if stealCalls.Load() == 0 {
		t.Error("StealOrder never consulted (expected idle workers to scan)")
	}
}

func TestRunPoolCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seeded := false
	err := RunPoolCtx(ctx, 4, nil, func(sub Submitter) { seeded = true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seeded {
		t.Fatal("seed ran on a pre-cancelled context")
	}
}

func TestRunPoolCtxMidRunCancel(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := RunPoolCtx(ctx, w, nil, func(sub Submitter) {
			var spawn func() Task
			spawn = func() Task {
				return Task{Run: func(s Submitter) {
					if ran.Add(1) == 10 {
						cancel()
					}
					// Keep the graph alive indefinitely; only
					// cancellation can terminate the pool.
					s.Submit(spawn())
				}}
			}
			for i := 0; i < w; i++ {
				sub.Submit(spawn())
			}
		})
		if err != context.Canceled {
			t.Fatalf("w=%d: err = %v, want context.Canceled", w, err)
		}
	}
}

func TestRunPoolCtxPanicWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunPoolCtx(ctx, 2, nil, func(sub Submitter) {
		sub.Submit(Task{Label: "bad", Run: func(Submitter) {
			cancel()
			panic("boom")
		}})
	})
	wp, ok := err.(*WorkerPanic)
	if !ok {
		t.Fatalf("err = %v (%T), want *WorkerPanic", err, err)
	}
	if wp.Value != "boom" || wp.Label != "bad" {
		t.Fatalf("WorkerPanic = %+v, want Value=boom Label=bad", wp)
	}
}

func TestRunPoolCtxNoErrCleanRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var ran atomic.Int64
	err := RunPoolCtx(ctx, 4, nil, func(sub Submitter) {
		for i := 0; i < 100; i++ {
			sub.Submit(Task{Run: func(Submitter) { ran.Add(1) }})
		}
	})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran = %d, want 100", ran.Load())
	}
}
