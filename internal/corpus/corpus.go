// Package corpus generates the synthetic benchmark suite that stands in
// for the paper's 160 real binaries (§6.2). Each generated program is
// deterministic in its seed and comes with per-variable ground truth,
// playing the role of the debug-info builds the paper scored against.
//
// The generator emits exactly the §2 idiom catalogue that
// differentiates subtype-based inference from the baselines:
// semi-syntactic constants (§2.1), fortuitous value reuse (Figure 1),
// stack-slot reuse, polymorphic allocator wrappers (§2.2), recursive
// structures (§2.3), offset and address-taken stack structures (§2.4),
// false-positive register parameters via the push-ecx idiom (§2.5),
// cross-casting bit tricks (§2.6), and ad-hoc typedef hierarchies
// (§2.8) — mixed with the bread-and-butter code (field getters/setters,
// arithmetic helpers, libc users) that dominates real programs.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"retypd/internal/ctype"
	"retypd/internal/metrics"
)

// Benchmark is one generated program with ground truth.
type Benchmark struct {
	Name string
	// Cluster names the benchmark's cluster ("" = standalone).
	Cluster string
	// Source is the program in the substrate assembly format.
	Source string
	// Truths lists ground truth for scored variables.
	Truths []metrics.VarTruth
	// Insts is the instruction count.
	Insts int
}

// gen carries generation state.
type gen struct {
	r      *rand.Rand
	prefix string
	b      strings.Builder
	truths []metrics.VarTruth
	n      int // function counter
	insts  int
	// callables collects zero-argument generated functions for the
	// call-web drivers.
	callables []string
	// haveUsePair tracks the shared use_pair helper.
	haveUsePair bool
}

func (g *gen) name(stem string) string {
	g.n++
	return fmt.Sprintf("%s%s_%d", g.prefix, stem, g.n)
}

// emit writes a proc body, counting instructions.
func (g *gen) emit(name, body string) {
	g.b.WriteString("proc " + name + "\n")
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		g.b.WriteString("    " + line + "\n")
		if !strings.HasSuffix(line, ":") {
			g.insts++
		}
	}
	g.b.WriteString("endproc\n\n")
}

func (g *gen) truth(fn, kind string, idx int, t *ctype.Type, isConst bool) {
	g.truths = append(g.truths, metrics.VarTruth{
		Func: fn, Kind: kind, Index: idx, Type: t, Const: isConst,
	})
}

func prim(n string) *ctype.Type     { return ctype.Prim(n) }
func ptr(t *ctype.Type) *ctype.Type { return ctype.PtrTo(t) }

func structT(fields ...ctype.Field) *ctype.Type {
	return &ctype.Type{Kind: ctype.KStruct, Fields: fields}
}

func fld(off int, t *ctype.Type) ctype.Field { return ctype.Field{Off: off, Bits: 32, Type: t} }

// template is one generator for a function group.
type template func(g *gen)

// fieldKind describes one entry of the struct-field menu: the C type,
// the libc sink that consumes such a value (providing the upper-bound
// evidence real code has), and the libc source that produces one.
type fieldKind struct {
	typ    string
	sink   string // called as sink(value); "" = none
	source string // eax := source(); "" = none
}

var fieldMenu = []fieldKind{
	{"int", "abs", "rand"},
	{"uint", "srand", ""},
	{"size_t", "malloc", ""},
	{"str", "puts", ""},
	{"int", "putchar", "rand"},
}

// sinkCode emits "consume the value in eax" for a field kind; eax may
// be clobbered (it receives the sink's return value).
func (f fieldKind) sinkCode() string {
	if f.sink == "" {
		return ""
	}
	// The value is preserved around the call (the sink's return would
	// otherwise replace it in eax).
	return "mov ebx, eax\npush eax\ncall " + f.sink + "\nadd esp, 4\nmov eax, ebx\n"
}

// Generate produces a benchmark of roughly targetInsts instructions.
func Generate(name string, seed int64, targetInsts int) *Benchmark {
	return GenerateWithPrefix(name, "", seed, targetInsts)
}

// GenerateWithPrefix is Generate with a function-name prefix, used by
// cluster generation to keep shared and unique parts disjoint.
func GenerateWithPrefix(name, prefix string, seed int64, targetInsts int) *Benchmark {
	g := &gen{r: rand.New(rand.NewSource(seed)), prefix: prefix}
	templates := allTemplates()
	for g.insts < targetInsts {
		templates[g.r.Intn(len(templates))](g)
	}
	// A few call-web drivers for call-graph depth.
	for i := 0; i < len(g.callables)/6+1 && len(g.callables) > 0; i++ {
		g.driver()
	}
	return &Benchmark{
		Name:   name,
		Source: g.b.String(),
		Truths: g.truths,
		Insts:  g.insts,
	}
}

// GenerateFleet produces n binaries modeling a fleet built from one
// codebase: a fraction shared of each binary's instructions is a
// common library generated from the same seed under a binary-local
// name prefix — identical procedure bodies under a systematic rename,
// which is exactly what the engine's persistent body-class layer
// serves across programs — and the rest is binary-unique code from a
// per-binary seed.
func GenerateFleet(name string, seed int64, targetInsts, n int, shared float64) []*Benchmark {
	if shared < 0 {
		shared = 0
	}
	if shared > 1 {
		shared = 1
	}
	out := make([]*Benchmark, n)
	for i := 0; i < n; i++ {
		memberName := fmt.Sprintf("%s-%02d", name, i)
		sharedInsts := int(float64(targetInsts) * shared)
		var src strings.Builder
		var truths []metrics.VarTruth
		insts := 0
		if sharedInsts > 0 {
			lib := GenerateWithPrefix(memberName, fmt.Sprintf("b%d_", i), seed, sharedInsts)
			src.WriteString(lib.Source)
			truths = append(truths, lib.Truths...)
			insts += lib.Insts
		}
		if targetInsts > sharedInsts {
			uniq := GenerateWithPrefix(memberName, fmt.Sprintf("u%d_", i), seed+101*int64(i+1), targetInsts-sharedInsts)
			src.WriteString(uniq.Source)
			truths = append(truths, uniq.Truths...)
			insts += uniq.Insts
		}
		out[i] = &Benchmark{
			Name:    memberName,
			Cluster: name,
			Source:  src.String(),
			Truths:  truths,
			Insts:   insts,
		}
	}
	return out
}

// driver emits a void function calling a few generated zero-argument
// functions.
func (g *gen) driver() {
	n := g.name("web")
	var body strings.Builder
	k := 2 + g.r.Intn(3)
	for i := 0; i < k; i++ {
		callee := g.callables[g.r.Intn(len(g.callables))]
		body.WriteString("call " + callee + "\n")
	}
	body.WriteString("ret\n")
	g.emit(n, body.String())
	g.truth(n, "ret", 0, prim("int"), false)
}

func allTemplates() []template {
	return []template{
		tArith, tArith, tArith, // bread-and-butter weight
		tGetField, tGetField,
		tSetField,
		tListWalk,
		tAllocWrapper,
		tConstReader, tConstReader,
		tWriterParam,
		tFdUser,
		tStrUser,
		tRegParam,
		tPushEcxIdiom,
		tStackReuse,
		tFortuitousReuse,
		tCrossCast,
		tStackStruct,
		tMutualRecursion,
		tHandleUser,
		tMemcpyUser,
		tSemiSyntacticConst,
	}
}

// tArith: int f(int a, int b[, int c]) { a = abs(a); return a OP b…; }
// — the bread-and-butter arithmetic helper, with the libc evidence
// (abs/putchar) that real integer code carries.
func tArith(g *gen) {
	n := g.name("calc")
	nArgs := 2 + g.r.Intn(2)
	ops := []string{"add", "imul", "sub"}
	var b strings.Builder
	b.WriteString("mov eax, [esp+4]\n")
	if g.r.Intn(4) > 0 {
		b.WriteString("push eax\ncall abs\nadd esp, 4\n")
	}
	for i := 1; i < nArgs; i++ {
		fmt.Fprintf(&b, "mov ecx, [esp+%d]\n", 4+4*i)
		fmt.Fprintf(&b, "%s eax, ecx\n", ops[g.r.Intn(len(ops))])
	}
	if g.r.Intn(3) == 0 {
		b.WriteString("push eax\ncall putchar\nadd esp, 4\n")
	}
	b.WriteString("ret\n")
	g.emit(n, b.String())
	for i := 0; i < nArgs; i++ {
		g.truth(n, "param", i, prim("int"), false)
	}
	g.truth(n, "ret", 0, prim("int"), false)

	// A caller feeding it rand() values (typed actuals for the F.3
	// specialization pass).
	cn := g.name("calc_use")
	var cb strings.Builder
	for i := nArgs - 1; i >= 0; i-- {
		if g.r.Intn(2) == 0 {
			cb.WriteString("call rand\npush eax\n")
		} else {
			fmt.Fprintf(&cb, "push %d\n", 1+g.r.Intn(100))
		}
	}
	fmt.Fprintf(&cb, "call %s\nadd esp, %d\nret\n", n, 4*nArgs)
	g.emit(cn, cb.String())
	g.truth(cn, "ret", 0, prim("int"), false)
	g.callables = append(g.callables, cn)
}

// randStruct invents a struct type with nf 32-bit fields at offsets
// 0,4,8,… and returns the menu kinds alongside.
func (g *gen) randStruct(nf int) (*ctype.Type, []fieldKind) {
	var fields []ctype.Field
	var kinds []fieldKind
	for i := 0; i < nf; i++ {
		k := fieldMenu[g.r.Intn(len(fieldMenu))]
		kinds = append(kinds, k)
		t := prim(k.typ)
		if k.typ == "str" {
			t = prim("char*")
		}
		fields = append(fields, fld(4*i, t))
	}
	return structT(fields...), kinds
}

// tGetField: T get(const S *s) { T v = s->field_k; sink(v); return v; }
// plus an allocating caller (the polymorphic malloc wrapper path).
func tGetField(g *gen) {
	nf := 2 + g.r.Intn(3)
	st, kinds := g.randStruct(nf)
	k := g.r.Intn(nf)
	n := g.name("get")
	g.emit(n, fmt.Sprintf(`
		mov ecx, [esp+4]
		mov eax, [ecx+%d]
		%s ret`, 4*k, kinds[k].sinkCode()))
	g.truth(n, "param", 0, ptr(st), true)
	g.truth(n, "ret", 0, st.Fields[k].Type, false)

	// Caller: malloc an S, initialize the read field from its source
	// when one exists, call get.
	cn := g.name("get_use")
	init := fmt.Sprintf("mov ecx, %d\nmov [esi+%d], ecx\n", g.r.Intn(50), 4*k)
	if src := kinds[k].source; src != "" {
		init = fmt.Sprintf("call %s\nmov [esi+%d], eax\n", src, 4*k)
	}
	g.emit(cn, fmt.Sprintf(`
		push %d
		call malloc
		add esp, 4
		mov esi, eax
		%s push esi
		call %s
		add esp, 4
		ret`, 4*nf, init, n))
	g.truth(cn, "ret", 0, st.Fields[k].Type, false)
	g.callables = append(g.callables, cn)
}

// tSetField: void set(S *s, T v) { s->field_k = v; } — non-const
// pointer parameter, with a caller sourcing the value.
func tSetField(g *gen) {
	nf := 2 + g.r.Intn(3)
	st, kinds := g.randStruct(nf)
	k := g.r.Intn(nf)
	n := g.name("set")
	g.emit(n, fmt.Sprintf(`
		mov ecx, [esp+4]
		mov edx, [esp+8]
		mov [ecx+%d], edx
		ret`, 4*k))
	g.truth(n, "param", 0, ptr(st), false)
	g.truth(n, "param", 1, st.Fields[k].Type, false)

	if src := kinds[k].source; src != "" {
		cn := g.name("set_use")
		g.emit(cn, fmt.Sprintf(`
			push %d
			call malloc
			add esp, 4
			mov esi, eax
			call %s
			push eax
			push esi
			call %s
			add esp, 8
			ret`, 4*nf, src, n))
		g.callables = append(g.callables, cn)
	}
}

// tListWalk: the close_last shape (§2.3, Figure 2): walk a recursive
// list and consume its payload.
func tListWalk(g *gen) {
	n := g.name("walk")
	// struct LL { struct LL *next; int handle; }
	ll := &ctype.Type{Kind: ctype.KStruct}
	ll.Fields = []ctype.Field{fld(0, ptr(ll)), fld(4, prim("int"))}
	sink := "push eax\ncall putchar\nadd esp, 4\n"
	if g.r.Intn(2) == 0 {
		sink = "push eax\ncall close\nadd esp, 4\n"
	}
	g.emit(n, fmt.Sprintf(`
		mov edx, [esp+4]
	loop:
		mov eax, [edx]
		test eax, eax
		jz done
		mov edx, eax
		jmp loop
	done:
		mov eax, [edx+4]
		%s ret`, sink))
	g.truth(n, "param", 0, ptr(ll), true)
	g.truth(n, "ret", 0, prim("int"), false)
}

// tAllocWrapper: the polymorphic xalloc (§2.2): a malloc wrapper used
// at two incompatibly typed callsites.
func tAllocWrapper(g *gen) {
	w := g.name("xalloc")
	g.emit(w, `
		mov eax, [esp+4]
		push eax
		call malloc
		add esp, 4
		ret`)
	g.truth(w, "param", 0, prim("size_t"), false)
	g.truth(w, "ret", 0, ptr(prim("void")), false)

	// Caller A: allocates an int pair and fills it from rand().
	ca := g.name("mk_pair")
	stA := structT(fld(0, prim("int")), fld(4, prim("int")))
	g.emit(ca, fmt.Sprintf(`
		push 8
		call %s
		add esp, 4
		mov esi, eax
		call rand
		mov [esi], eax
		call rand
		mov [esi+4], eax
		mov eax, esi
		ret`, w))
	g.truth(ca, "ret", 0, ptr(stA), false)

	// Caller B: a buffer holder { char *s; size_t n; }.
	cb := g.name("mk_buf")
	stB := structT(fld(0, prim("char*")), fld(4, prim("size_t")))
	g.emit(cb, fmt.Sprintf(`
		push 8
		call %s
		add esp, 4
		mov esi, eax
		mov ecx, [esp+4]
		mov [esi], ecx
		push ecx
		call strlen
		add esp, 4
		mov [esi+4], eax
		mov eax, esi
		ret`, w))
	g.truth(cb, "param", 0, prim("char*"), true)
	g.truth(cb, "ret", 0, ptr(stB), false)
	g.callables = append(g.callables, ca)
}

// tConstReader: int sum2(const S *p) — reads fields, never writes (the
// §6.4 const-recovery population).
func tConstReader(g *gen) {
	nf := 2 + g.r.Intn(2)
	st, kinds := g.randStruct(nf)
	n := g.name("rd")
	g.emit(n, fmt.Sprintf(`
		mov ecx, [esp+4]
		mov eax, [ecx+%d]
		%s mov edx, [ecx]
		add eax, edx
		ret`, 4*(nf-1), kinds[nf-1].sinkCode()))
	g.truth(n, "param", 0, ptr(st), true)
	g.truth(n, "ret", 0, prim("int"), false)
}

// tWriterParam: void init(S *p) — writes fields from their natural
// sources: must NOT be const.
func tWriterParam(g *gen) {
	nf := 2 + g.r.Intn(2)
	st, kinds := g.randStruct(nf)
	n := g.name("init")
	var b strings.Builder
	b.WriteString("mov esi, [esp+4]\n")
	for i := 0; i < nf; i++ {
		if src := kinds[i].source; src != "" {
			fmt.Fprintf(&b, "call %s\nmov [esi+%d], eax\n", src, 4*i)
		} else {
			fmt.Fprintf(&b, "xor eax, eax\nmov [esi+%d], eax\n", 4*i)
		}
	}
	b.WriteString("ret\n")
	g.emit(n, b.String())
	g.truth(n, "param", 0, ptr(st), false)
}

// tFdUser: int consume(int fd) — the #FileDescriptor population.
func tFdUser(g *gen) {
	n := g.name("fd_use")
	g.emit(n, `
		mov ebx, [esp+4]
		push ebx
		call close
		add esp, 4
		ret`)
	g.truth(n, "param", 0, prim("int"), false)
	g.truth(n, "ret", 0, prim("int"), false)
}

// tStrUser: size_t len2(const char *s) { return strlen(s)*2; }.
func tStrUser(g *gen) {
	n := g.name("slen")
	g.emit(n, `
		mov ecx, [esp+4]
		push ecx
		call strlen
		add esp, 4
		add eax, eax
		ret`)
	g.truth(n, "param", 0, prim("char*"), true)
	g.truth(n, "ret", 0, prim("size_t"), false)
}

// tRegParam: a custom-convention callee taking its argument in ecx
// (§2.5's register parameters).
func tRegParam(g *gen) {
	n := g.name("fast")
	g.emit(n, `
		mov eax, [ecx+4]
		push eax
		call abs
		add esp, 4
		ret`)
	st := structT(fld(0, prim("int")), fld(4, prim("int")))
	g.truth(n, "param", 0, ptr(st), true)
	g.truth(n, "ret", 0, prim("int"), false)

	cn := g.name("fast_use")
	g.emit(cn, fmt.Sprintf(`
		push 8
		call malloc
		add esp, 4
		mov ecx, eax
		call %s
		ret`, n))
	g.callables = append(g.callables, cn)
}

// tPushEcxIdiom: the §2.5 over-unification stressor: "push ecx"
// reserves a stack slot, making ecx look like a register parameter;
// the function is called from contexts where ecx holds unrelated,
// incompatibly typed values.
func tPushEcxIdiom(g *gen) {
	n := g.name("local")
	g.emit(n, `
		push ecx
		mov eax, [esp+8]
		mov [esp], eax
		mov eax, [esp]
		add eax, 1
		push eax
		call abs
		add esp, 4
		add esp, 4
		ret`)
	g.truth(n, "param", 0, prim("int"), false)
	g.truth(n, "ret", 0, prim("int"), false)

	// Caller 1: ecx happens to hold a struct pointer (dead here).
	c1 := g.name("pe_a")
	g.emit(c1, fmt.Sprintf(`
		push 8
		call malloc
		add esp, 4
		mov ecx, eax
		mov edx, [ecx]
		push 7
		call %s
		add esp, 4
		ret`, n))
	g.truth(c1, "ret", 0, prim("int"), false)
	// Caller 2: ecx holds a string pointer.
	c2 := g.name("pe_b")
	g.emit(c2, fmt.Sprintf(`
		mov ecx, [esp+4]
		push ecx
		call strlen
		add esp, 4
		mov ecx, [esp+4]
		push 9
		call %s
		add esp, 4
		ret`, n))
	g.truth(c2, "param", 0, prim("char*"), true)
	g.truth(c2, "ret", 0, prim("int"), false)
	g.callables = append(g.callables, c1)
}

// tStackReuse: one stack slot holds an int in one live range, then a
// struct pointer in a disjoint one (§2.1).
func tStackReuse(g *gen) {
	n := g.name("reuse")
	st := structT(fld(0, prim("int")))
	g.emit(n, `
		sub esp, 4
		mov eax, [esp+8]
		mov [esp], eax         ; slot as int
		mov eax, [esp]
		push eax
		call putchar
		add esp, 4
		mov ecx, [esp+12]
		mov [esp], ecx         ; slot reused as S*
		mov edx, [esp]
		mov eax, [edx]
		add esp, 4
		ret`)
	g.truth(n, "param", 0, prim("int"), false)
	g.truth(n, "param", 1, ptr(st), true)
	g.truth(n, "ret", 0, prim("int"), false)
}

// tFortuitousReuse reproduces Figure 1: the return value in eax may be
// either the NULL from the early exit or the converted value; the NULL
// must not link the two function types.
func tFortuitousReuse(g *gen) {
	gs := g.name("get_s")
	stS := structT(fld(0, prim("int")), fld(4, prim("int")))
	g.emit(gs, `
		push 8
		call malloc
		add esp, 4
		call rand
		ret`)
	_ = stS
	s2t := g.name("s2t")
	stT := structT(fld(0, prim("int")))
	g.emit(s2t, `
		mov ecx, [esp+4]
		push 4
		call malloc
		add esp, 4
		mov edx, [ecx]
		mov [eax], edx
		ret`)
	n := g.name("get_t")
	g.emit(n, fmt.Sprintf(`
		call %s
		test eax, eax
		jz out
		push eax
		call %s
		add esp, 4
	out:
		ret`, gs, s2t))
	g.truth(n, "ret", 0, ptr(stT), false)
	g.callables = append(g.callables, n)
}

// tCrossCast: the quake3-style bit twiddle (§2.6): a float's bits
// manipulated as an integer — inherently contradictory constraints.
func tCrossCast(g *gen) {
	n := g.name("bits")
	g.emit(n, `
		mov eax, [esp+4]
		shr eax, 1
		mov ecx, 1597463007
		sub ecx, eax
		mov eax, ecx
		ret`)
	g.truth(n, "param", 0, prim("float"), false)
	g.truth(n, "ret", 0, prim("float"), false)
}

// tStackStruct: a struct on the stack manipulated both directly and
// via its address (§2.4).
func tStackStruct(g *gen) {
	helper := g.prefix + "use_pair"
	n := g.name("frame")
	g.emit(n, fmt.Sprintf(`
		sub esp, 8
		mov eax, [esp+12]
		mov [esp], eax
		call rand
		mov [esp+4], eax
		lea eax, [esp]
		push eax
		call %s
		add esp, 4
		add esp, 8
		ret`, helper))
	if !g.haveUsePair {
		g.haveUsePair = true
		g.emit(helper, `
			mov ecx, [esp+4]
			mov eax, [ecx]
			mov edx, [ecx+4]
			add eax, edx
			push eax
			call abs
			add esp, 4
			ret`)
		st := structT(fld(0, prim("int")), fld(4, prim("int")))
		g.truth(helper, "param", 0, ptr(st), true)
		g.truth(helper, "ret", 0, prim("int"), false)
	}
	g.truth(n, "param", 0, prim("int"), false)
	g.truth(n, "ret", 0, prim("int"), false)
}

// tMutualRecursion: an SCC of two procedures (tests the bottom-up
// scheme inference's same-SCC linking).
func tMutualRecursion(g *gen) {
	a := g.name("even")
	bn := g.name("odd")
	ll := &ctype.Type{Kind: ctype.KStruct}
	ll.Fields = []ctype.Field{fld(0, ptr(ll)), fld(4, prim("int"))}
	g.emit(a, fmt.Sprintf(`
		mov ecx, [esp+4]
		test ecx, ecx
		jz base
		mov eax, [ecx]
		push eax
		call %s
		add esp, 4
		ret
	base:
		mov eax, 1
		push eax
		call putchar
		add esp, 4
		ret`, bn))
	g.emit(bn, fmt.Sprintf(`
		mov ecx, [esp+4]
		test ecx, ecx
		jz base
		mov eax, [ecx]
		push eax
		call %s
		add esp, 4
		ret
	base:
		call rand
		ret`, a))
	g.truth(a, "param", 0, ptr(ll), true)
	g.truth(a, "ret", 0, prim("int"), false)
	g.truth(bn, "param", 0, ptr(ll), true)
	g.truth(bn, "ret", 0, prim("int"), false)
}

// tHandleUser: the §2.8 ad-hoc typedef hierarchy via the Windows GDI
// summaries.
func tHandleUser(g *gen) {
	n := g.name("gdi")
	g.emit(n, `
		push 0
		call GetStockObject
		add esp, 4
		push eax
		mov ecx, [esp+8]
		push ecx
		call SelectObject
		add esp, 8
		ret`)
	g.truth(n, "param", 0, prim("HANDLE"), false)
	g.truth(n, "ret", 0, prim("HGDI"), false)
}

// tMemcpyUser: copy a struct with memcpy (the β ⊑ α flow of §2.2).
func tMemcpyUser(g *gen) {
	n := g.name("copy")
	st, _ := g.randStruct(3)
	g.emit(n, `
		mov eax, [esp+4]
		mov ecx, [esp+8]
		push 12
		push ecx
		push eax
		call memcpy
		add esp, 12
		ret`)
	g.truth(n, "param", 0, ptr(st), false)
	g.truth(n, "param", 1, ptr(st), true)
}

// tSemiSyntacticConst: f(0, NULL) compiled as xor eax,eax; push eax;
// push eax (§2.1): the two arguments must not be unified with each
// other.
func tSemiSyntacticConst(g *gen) {
	callee := g.name("two")
	st, _ := g.randStruct(2)
	g.emit(callee, `
		mov eax, [esp+4]
		push eax
		call abs
		add esp, 4
		mov ecx, [esp+8]
		test ecx, ecx
		jz skip
		mov eax, [ecx]
	skip:
		ret`)
	g.truth(callee, "param", 0, prim("int"), false)
	g.truth(callee, "param", 1, ptr(st), true)
	g.truth(callee, "ret", 0, prim("int"), false)

	cn := g.name("two_use")
	g.emit(cn, fmt.Sprintf(`
		xor eax, eax
		push eax
		push eax
		call %s
		add esp, 8
		ret`, callee))
	g.truth(cn, "ret", 0, prim("int"), false)
	g.callables = append(g.callables, cn)
}
