package corpus

import "fmt"

// BenchDesc describes one benchmark of the suite (Figure 7) or one
// cluster member (Figure 10).
type BenchDesc struct {
	Name string
	// Desc is the human description from Figure 7.
	Desc string
	// PaperInsts is the instruction count the paper reports.
	PaperInsts int
	// Cluster groups related benchmarks for the §6.2 cluster
	// averaging ("" = standalone).
	Cluster string
}

// Figure7 lists the standalone benchmarks of Figure 7 with the paper's
// instruction counts.
func Figure7() []BenchDesc {
	return []BenchDesc{
		{Name: "libidn", Desc: "Domain name translator", PaperInsts: 7000},
		{Name: "Tutorial00", Desc: "Direct3D tutorial", PaperInsts: 9000},
		{Name: "zlib", Desc: "Compression library", PaperInsts: 14000},
		{Name: "ogg", Desc: "Multimedia library", PaperInsts: 20000},
		{Name: "distributor", Desc: "UltraVNC repeater", PaperInsts: 22000},
		{Name: "libbz2", Desc: "BZIP library, as a DLL", PaperInsts: 37000},
		{Name: "glut", Desc: "The glut32.dll library", PaperInsts: 40000},
		{Name: "pngtest", Desc: "A test of libpng", PaperInsts: 42000},
		{Name: "freeglut", Desc: "The freeglut.dll library", PaperInsts: 77000},
		{Name: "miranda", Desc: "IRC client", PaperInsts: 100000},
		{Name: "XMail", Desc: "Email server", PaperInsts: 137000},
		{Name: "yasm", Desc: "Modular assembler", PaperInsts: 190000},
		{Name: "python21", Desc: "Python 2.1", PaperInsts: 202000},
		{Name: "quake3", Desc: "Quake 3", PaperInsts: 281000},
		{Name: "TinyCad", Desc: "Computer-aided design", PaperInsts: 544000},
		{Name: "Shareaza", Desc: "Peer-to-peer file sharing", PaperInsts: 842000},
		{Name: "470.lbm", Desc: "Lattice Boltzmann Method", PaperInsts: 3000},
		{Name: "429.mcf", Desc: "Vehicle scheduling", PaperInsts: 3000},
		{Name: "462.libquantum", Desc: "Quantum computation", PaperInsts: 11000},
		{Name: "401.bzip2", Desc: "Compression", PaperInsts: 13000},
		{Name: "458.sjeng", Desc: "Chess AI", PaperInsts: 25000},
		{Name: "433.milc", Desc: "Quantum field theory", PaperInsts: 28000},
		{Name: "482.sphinx3", Desc: "Speech recognition", PaperInsts: 43000},
		{Name: "456.hmmer", Desc: "Protein sequence analysis", PaperInsts: 71000},
		{Name: "464.h264ref", Desc: "Video compression", PaperInsts: 113000},
		{Name: "445.gobmk", Desc: "GNU Go AI", PaperInsts: 203000},
		{Name: "400.perlbench", Desc: "Perl core", PaperInsts: 261000},
		{Name: "403.gcc", Desc: "C/C++/Fortran compiler", PaperInsts: 751000},
	}
}

// ClusterDesc describes a Figure 10 cluster.
type ClusterDesc struct {
	Name string
	// Count is the paper's member count (scaled down by the harness).
	Count int
	Desc  string
	// PaperInsts is the mean member size the paper reports.
	PaperInsts int
	// SharedFrac models how much code members share (coreutils shares
	// over 80% of .text, §6.2).
	SharedFrac float64
}

// Figure10Clusters lists the clusters of Figure 10.
func Figure10Clusters() []ClusterDesc {
	return []ClusterDesc{
		{Name: "freeglut-demos", Count: 3, Desc: "freeglut samples", PaperInsts: 2000, SharedFrac: 0.5},
		{Name: "coreutils", Count: 107, Desc: "GNU coreutils 8.23", PaperInsts: 10000, SharedFrac: 0.85},
		{Name: "vpx-d", Count: 8, Desc: "VPx decoders", PaperInsts: 36000, SharedFrac: 0.7},
		{Name: "vpx-e", Count: 6, Desc: "VPx encoders", PaperInsts: 78000, SharedFrac: 0.7},
		{Name: "sphinx2", Count: 4, Desc: "Speech recognition", PaperInsts: 83000, SharedFrac: 0.6},
		{Name: "putty", Count: 4, Desc: "SSH utilities", PaperInsts: 97000, SharedFrac: 0.6},
	}
}

// SuiteOptions scales the generated suite; the paper's sizes divided by
// Scale, with member counts capped at MaxClusterMembers.
type SuiteOptions struct {
	Scale             int
	MaxClusterMembers int
	Seed              int64
}

// DefaultSuite is a laptop-friendly scaling of the paper's suite.
func DefaultSuite() SuiteOptions {
	return SuiteOptions{Scale: 40, MaxClusterMembers: 6, Seed: 20160613}
}

// GenerateSuite produces the full benchmark collection: Figure 7's
// standalone binaries plus Figure 10's clusters, scaled by opts.
func GenerateSuite(opts SuiteOptions) []*Benchmark {
	if opts.Scale <= 0 {
		opts.Scale = 40
	}
	if opts.MaxClusterMembers <= 0 {
		opts.MaxClusterMembers = 6
	}
	var out []*Benchmark
	seed := opts.Seed
	for _, d := range Figure7() {
		seed++
		size := d.PaperInsts / opts.Scale
		if size < 300 {
			size = 300
		}
		out = append(out, Generate(d.Name, seed, size))
	}
	for _, c := range Figure10Clusters() {
		members := c.Count
		if members > opts.MaxClusterMembers {
			members = opts.MaxClusterMembers
		}
		size := c.PaperInsts / opts.Scale
		if size < 300 {
			size = 300
		}
		out = append(out, GenerateCluster(c, members, seed+1000, size)...)
		seed += int64(members)
	}
	return out
}

// GenerateCluster produces members that share a common code pool
// (modeling coreutils' shared statically linked runtime, §6.2) plus a
// unique part per member.
func GenerateCluster(c ClusterDesc, members int, seed int64, sizePer int) []*Benchmark {
	sharedSize := int(float64(sizePer) * c.SharedFrac)
	shared := GenerateWithPrefix(c.Name+"_shared", "sh_", seed, sharedSize)
	var out []*Benchmark
	for m := 0; m < members; m++ {
		unique := GenerateWithPrefix(fmt.Sprintf("%s_u%d", c.Name, m),
			fmt.Sprintf("u%d_", m), seed+int64(m)+1, sizePer-sharedSize)
		bench := &Benchmark{
			Name:    fmt.Sprintf("%s_%d", c.Name, m),
			Cluster: c.Name,
			Source:  shared.Source + unique.Source,
			Insts:   shared.Insts + unique.Insts,
		}
		bench.Truths = append(bench.Truths, shared.Truths...)
		bench.Truths = append(bench.Truths, unique.Truths...)
		out = append(out, bench)
	}
	return out
}
