package corpus

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/cfg"
)

// TestDeterminism: generation is a pure function of the seed.
func TestDeterminism(t *testing.T) {
	a := Generate("x", 7, 1500)
	b := Generate("x", 7, 1500)
	if a.Source != b.Source {
		t.Error("same seed must generate identical programs")
	}
	c := Generate("x", 8, 1500)
	if a.Source == c.Source {
		t.Error("different seeds should differ")
	}
}

// TestAllSeedsParse: a sweep of seeds/sizes always yields programs that
// parse and analyze.
func TestAllSeedsParse(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		b := Generate("t", seed, 800)
		prog, err := asm.Parse(b.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		infos := cfg.AnalyzeProgram(prog)
		if len(infos) != len(prog.Procs) {
			t.Fatalf("seed %d: analysis incomplete", seed)
		}
		if b.Insts < 800 {
			t.Errorf("seed %d: undersized (%d)", seed, b.Insts)
		}
		if len(b.Truths) == 0 {
			t.Errorf("seed %d: no ground truth", seed)
		}
	}
}

// TestTruthsReferToRealProcs: every ground-truth entry names a defined
// procedure, and parameter indices are plausible.
func TestTruthsReferToRealProcs(t *testing.T) {
	b := Generate("t", 3, 2000)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range b.Truths {
		if _, ok := prog.Proc(tr.Func); !ok {
			t.Errorf("truth names unknown proc %q", tr.Func)
		}
		if tr.Kind != "param" && tr.Kind != "ret" {
			t.Errorf("bad kind %q", tr.Kind)
		}
		if tr.Type == nil {
			t.Errorf("nil truth type for %s", tr.Func)
		}
	}
}

// TestClusterSharing: cluster members share their common pool but have
// distinct unique parts.
func TestClusterSharing(t *testing.T) {
	c := ClusterDesc{Name: "cl", Count: 3, PaperInsts: 4000, SharedFrac: 0.7}
	members := GenerateCluster(c, 3, 99, 1200)
	if len(members) != 3 {
		t.Fatalf("want 3 members, got %d", len(members))
	}
	for _, m := range members {
		if m.Cluster != "cl" {
			t.Errorf("member cluster = %q", m.Cluster)
		}
		if _, err := asm.Parse(m.Source); err != nil {
			t.Fatalf("cluster member does not parse: %v", err)
		}
	}
	if members[0].Source == members[1].Source {
		t.Error("members must have unique parts")
	}
}

// TestSuiteShape: the generated suite covers Figure 7 and the Figure 10
// clusters.
func TestSuiteShape(t *testing.T) {
	benches := GenerateSuite(SuiteOptions{Scale: 400, MaxClusterMembers: 2, Seed: 5})
	names := map[string]bool{}
	clusters := map[string]int{}
	for _, b := range benches {
		names[b.Name] = true
		if b.Cluster != "" {
			clusters[b.Cluster]++
		}
	}
	for _, d := range Figure7() {
		if !names[d.Name] {
			t.Errorf("missing Figure 7 benchmark %s", d.Name)
		}
	}
	for _, c := range Figure10Clusters() {
		if clusters[c.Name] != 2 {
			t.Errorf("cluster %s has %d members, want 2", c.Name, clusters[c.Name])
		}
	}
}
