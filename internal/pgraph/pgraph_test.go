package pgraph

import (
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
)

func mustDTV(t *testing.T, s string) constraints.DTV {
	t.Helper()
	d, err := constraints.ParseDTV(s)
	if err != nil {
		t.Fatalf("ParseDTV(%q): %v", s, err)
	}
	return d
}

func buildGraph(t *testing.T, text string) *Graph {
	t.Helper()
	cs, err := constraints.ParseSet(text)
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	g := Build(cs, lattice.Default())
	g.Saturate()
	return g
}

func assertProves(t *testing.T, g *Graph, l, r string) {
	t.Helper()
	if !g.Proves(mustDTV(t, l), mustDTV(t, r)) {
		t.Errorf("expected ⊢ %s ⊑ %s", l, r)
	}
}

func assertNotProves(t *testing.T, g *Graph, l, r string) {
	t.Helper()
	if g.Proves(mustDTV(t, l), mustDTV(t, r)) {
		t.Errorf("unexpected ⊢ %s ⊑ %s", l, r)
	}
}

// TestFigure4 reproduces the two aliased-pointer copy programs of
// Figure 4 / §3.3. Both constraint sets must entail X ⊑ Y; the naive
// unary Ptr(·) constructor cannot type both, but the split
// .load/.store capabilities with S-POINTER can.
func TestFigure4(t *testing.T) {
	// f(): p = q; *p = x; y = *q;
	c1 := buildGraph(t, `
		Q <= P
		X <= P.store
		Q.load <= Y
	`)
	assertProves(t, c1, "X", "Y")

	// g(): p = q; *q = x; y = *p;
	c2 := buildGraph(t, `
		Q <= P
		X <= Q.store
		P.load <= Y
	`)
	assertProves(t, c2, "X", "Y")

	// The reverse flows must NOT be derivable.
	assertNotProves(t, c1, "Y", "X")
	assertNotProves(t, c2, "Y", "X")
}

// TestFigure4SubtypeChain checks the intermediate links of the §3.3
// derivation chains explicitly.
func TestFigure4SubtypeChain(t *testing.T) {
	g := buildGraph(t, `
		Q <= P
		X <= P.store
		Q.load <= Y
	`)
	// X ⊑ P.store ⊑ Q.store ⊑ Q.load ⊑ Y
	assertProves(t, g, "P.store", "Q.store")
	assertProves(t, g, "Q.store", "Q.load")
	assertProves(t, g, "X", "P.store")
}

// TestFigure14 reproduces the saturation example of Figure 14: with
// C = {y ⊑ p, p ⊑ x, A ⊑ x.store, y.load ⊑ B}, the lazy S-POINTER rule
// must add the dashed shortcut edge x.store⊕ → y.load⊕, and A ⊑ B must
// become derivable.
func TestFigure14(t *testing.T) {
	g := buildGraph(t, `
		y <= p
		p <= x
		A <= x.store
		y.load <= B
	`)
	from, ok := g.NodeOf(mustDTV(t, "x.store"), label.Covariant)
	if !ok {
		t.Fatal("missing node (x.store, ⊕)")
	}
	to, ok := g.NodeOf(mustDTV(t, "y.load"), label.Covariant)
	if !ok {
		t.Fatal("missing node (y.load, ⊕)")
	}
	if !g.HasEps(from, to) {
		t.Error("saturation did not add the Figure 14 edge x.store⁺ → y.load⁺")
	}
	assertProves(t, g, "A", "B")
	assertNotProves(t, g, "B", "A")
}

// TestPointerRoundTrip: writing through a pointer and reading it back
// must not be able to subvert the type system, but must relate the
// written value to the read value (S-POINTER consistency).
func TestPointerRoundTrip(t *testing.T) {
	g := buildGraph(t, `
		A <= p.store
		p.load <= B
	`)
	assertProves(t, g, "A", "B")
	assertNotProves(t, g, "B", "A")
}

// TestContravariantIn: function inputs are contravariant — a subtype of
// a function type requires a supertype relationship on inputs.
func TestContravariantIn(t *testing.T) {
	g := buildGraph(t, `
		F <= G
		X <= G.in_stack0
		F.in_stack0 <= Y
	`)
	// F ⊑ G entails G.in ⊑ F.in, so X ⊑ G.in ⊑ F.in ⊑ Y.
	assertProves(t, g, "G.in_stack0", "F.in_stack0")
	assertProves(t, g, "X", "Y")
	assertNotProves(t, g, "F.in_stack0", "G.in_stack0")
}

// TestCovariantOut: outputs propagate covariantly.
func TestCovariantOut(t *testing.T) {
	g := buildGraph(t, `
		F <= G
		X <= F.out_eax
		G.out_eax <= Y
	`)
	assertProves(t, g, "F.out_eax", "G.out_eax")
	assertProves(t, g, "X", "Y")
}

// TestTransitivityAndFields: basic S-TRANS and S-FIELD behaviour.
func TestTransitivityAndFields(t *testing.T) {
	g := buildGraph(t, `
		A <= B
		B <= C
		C.σ32@0 <= D
	`)
	assertProves(t, g, "A", "C")
	assertProves(t, g, "A.σ32@0", "D")
	assertNotProves(t, g, "D", "A.σ32@0")
	// Reflexivity holds even for unseen variables.
	assertProves(t, g, "Z.load", "Z.load")
}

// TestNoFalseEntailments: unrelated variables must stay unrelated even
// after saturation (guards against over-unification, §2.5).
func TestNoFalseEntailments(t *testing.T) {
	g := buildGraph(t, `
		A <= M.store
		B <= N.store
		M.load <= C
		N.load <= D
	`)
	assertProves(t, g, "A", "C")
	assertProves(t, g, "B", "D")
	assertNotProves(t, g, "A", "D")
	assertNotProves(t, g, "B", "C")
	assertNotProves(t, g, "A", "B")
}

// TestRecursiveConstraintEntailment: recursive constraint sets entail
// unboundedly deep judgements (the pushdown system encodes infinitely
// many consequences, Theorem 5.1).
func TestRecursiveConstraintEntailment(t *testing.T) {
	g := buildGraph(t, `
		F.in_stack0 <= t
		t.load.σ32@0 <= t
		t.load.σ32@4 <= int
	`)
	assertProves(t, g, "F.in_stack0.load.σ32@4", "int")
	assertProves(t, g, "F.in_stack0.load.σ32@0.load.σ32@4", "int")
	assertProves(t, g, "F.in_stack0.load.σ32@0.load.σ32@0.load.σ32@4", "int")
	assertNotProves(t, g, "F.in_stack0.load.σ32@8", "int")
}

// TestSimplifyEliminatesInternals: simplification relative to
// interesting variables must produce a set over only those variables
// (plus fresh existentials) that still entails the interesting
// consequences (Definition 5.1).
func TestSimplifyEliminatesInternals(t *testing.T) {
	cs := constraints.MustParseSet(`
		F.in_stack0 <= a
		a <= b
		b.load.σ32@0 <= c
		c <= b
		b.load.σ32@4 <= int
		int <= F.out_eax
	`)
	lat := lattice.Default()
	g := Build(cs, lat)
	res := g.Simplify(func(v constraints.Var) bool { return v == "F" })

	for _, c := range res.Constraints.Subtypes() {
		for _, d := range []constraints.DTV{c.L, c.R} {
			switch string(d.Base()) {
			case "a", "b", "c":
				t.Errorf("internal variable %s leaked into simplification: %s", d.Base(), c)
			}
		}
	}

	// The simplified set must entail the same interesting judgements.
	g2 := Build(res.Constraints, lat)
	g2.Saturate()
	for _, want := range [][2]string{
		{"F.in_stack0.load.σ32@4", "int"},
		{"F.in_stack0.load.σ32@0.load.σ32@4", "int"},
		{"F.in_stack0.load.σ32@0.load.σ32@0.load.σ32@4", "int"},
		{"int", "F.out_eax"},
	} {
		if !g2.Proves(mustDTV(t, want[0]), mustDTV(t, want[1])) {
			t.Errorf("simplified set lost %s ⊑ %s\nsimplified:\n%s", want[0], want[1], res.Constraints)
		}
	}
	// And must not invent judgements the original lacks.
	if g2.Proves(mustDTV(t, "F.out_eax"), mustDTV(t, "int")) {
		t.Errorf("simplified set invented F.out_eax ⊑ int\n%s", res.Constraints)
	}
	if g2.Proves(mustDTV(t, "F.in_stack0.load.σ32@8"), mustDTV(t, "int")) {
		t.Errorf("simplified set invented σ32@8 judgement\n%s", res.Constraints)
	}
}

// TestSimplifyPolymorphicIdentity: the identity function's scheme must
// relate input to output without naming internals (§5.1's motivating
// example shape: ∀τ. (τ.in ⊑ τ.out)).
func TestSimplifyPolymorphicIdentity(t *testing.T) {
	cs := constraints.MustParseSet(`
		id.in_stack0 <= v
		v <= id.out_eax
	`)
	lat := lattice.Default()
	g := Build(cs, lat)
	res := g.Simplify(func(v constraints.Var) bool { return v == "id" })
	g2 := Build(res.Constraints, lat)
	if !g2.Proves(mustDTV(t, "id.in_stack0"), mustDTV(t, "id.out_eax")) {
		t.Errorf("identity scheme lost in ⊑ out:\n%s", res.Constraints)
	}
}

// TestSimplifyContravariantFlow: simplification must preserve flows
// that pass through contravariant labels.
func TestSimplifyContravariantFlow(t *testing.T) {
	cs := constraints.MustParseSet(`
		g.in_stack0 <= w
		A <= w.store
		w.load <= g.out_eax
	`)
	lat := lattice.Default()
	g := Build(cs, lat)
	res := g.Simplify(func(v constraints.Var) bool { return v == "g" || v == "A" })
	g2 := Build(res.Constraints, lat)
	if !g2.Proves(mustDTV(t, "A"), mustDTV(t, "g.out_eax")) {
		t.Errorf("lost A ⊑ g.out_eax through pointer round trip:\n%s", res.Constraints)
	}
}

func TestProvesConstants(t *testing.T) {
	g := buildGraph(t, `
		x <= int
		int <= y
	`)
	assertProves(t, g, "x", "int")
	assertProves(t, g, "int", "y")
	assertProves(t, g, "x", "y")
}
