package pgraph

import (
	"bytes"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/lattice"
)

// TestKeyWireRoundTrip: a fingerprint key survives encode/decode
// byte-stably and compares equal.
func TestKeyWireRoundTrip(t *testing.T) {
	lat := lattice.Default()
	cs := constraints.MustParseSet(`
		f.in_stack0 <= int
		f.in_stack0.load <= f.out_eax
	`)
	fp := Fingerprint(cs, lat)
	key, ok := fp.KeyFor("f")
	if !ok {
		t.Fatal("KeyFor failed")
	}
	enc := key.AppendWire(nil)
	got, n, err := DecodeKeyWire(append(append([]byte(nil), enc...), 0x7))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || got != key {
		t.Fatalf("round trip: consumed %d/%d, key equal: %v", n, len(enc), got == key)
	}
	if re := got.AppendWire(nil); !bytes.Equal(re, enc) {
		t.Fatal("re-encode not byte-stable")
	}
}

// TestSimplifyCacheWireRoundTrip: a populated cache exports, loads into
// a fresh cache, re-exports byte-identically, and the loaded cache
// serves the same rehydrated scheme.
func TestSimplifyCacheWireRoundTrip(t *testing.T) {
	lat := lattice.Default()
	cs := constraints.MustParseSet(`
		f.in_stack0 <= int
		f.in_stack0 <= #FileDescriptor
		int <= f.out_eax
	`)
	fp := Fingerprint(cs, lat)
	c := NewSimplifyCache(0)
	build := func() *Graph { return Build(cs, lat) }
	want := c.Simplify(fp, "f", build) // miss: computes and stores

	enc := c.AppendWire(nil)
	c2 := NewSimplifyCache(0)
	n, loaded, err := c2.LoadWire(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) || loaded != c.Len() {
		t.Fatalf("loaded %d entries consuming %d/%d bytes", loaded, n, len(enc))
	}
	if re := c2.AppendWire(nil); !bytes.Equal(re, enc) {
		t.Fatal("export→import→export not byte-stable")
	}

	// The loaded entry must serve a hit with an identical scheme.
	hits0, _ := c2.Stats()
	got := c2.Simplify(fp, "f", func() *Graph {
		t.Fatal("loaded cache missed: build ran")
		return nil
	})
	hits1, _ := c2.Stats()
	if hits1 != hits0+1 {
		t.Fatalf("expected one hit, got %d→%d", hits0, hits1)
	}
	if got.Constraints.String() != want.Constraints.String() {
		t.Fatalf("loaded cache served a different scheme:\n%s\nvs\n%s", got.Constraints, want.Constraints)
	}
}

// TestFingerprintPortableContent: the digest must be a function of
// rendered content only — interning unrelated symbols first (shifting
// every id) must not change any fingerprint.
func TestFingerprintPortableContent(t *testing.T) {
	lat := lattice.Default()
	mk := func() Key {
		cs := constraints.MustParseSet(`
			g.in_stack0.load.σ32@4 <= int
			g.in_stack0 <= ptr
		`)
		fp := Fingerprint(cs, lat)
		k, ok := fp.KeyFor("g")
		if !ok {
			t.Fatal("KeyFor failed")
		}
		return k
	}
	before := mk()
	// Shift the global intern tables.
	for i := 0; i < 100; i++ {
		constraints.BaseDTV(constraints.Var("noise_" + string(rune('a'+i%26)) + string(rune('0'+i/26))))
	}
	after := mk()
	if before != after {
		t.Fatal("fingerprint changed after unrelated interning: digest depends on process-local ids")
	}
}
