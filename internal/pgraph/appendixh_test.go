package pgraph

import (
	"strings"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/lattice"
)

// figure20 is the raw constraint set obtained by abstract interpretation
// of close_last (Appendix H, Figure 20), transliterated: AR slots become
// slot variables, registers keep their definition sites.
const figure20 = `
	AR_INITIAL <= EDX_8048420
	close_last.in_stack0 <= AR_INITIAL
	EAX_804843F <= close_last.out_eax
	EAX_8048432 <= EDX_8048430
	EDX_8048420 <= unknown_loc_106
	EDX_8048430 <= unknown_loc_106
	unknown_loc_106.load.σ32@0 <= EAX_8048432
	EDX_8048420 <= unknown_loc_111
	EDX_8048430 <= unknown_loc_111
	unknown_loc_111.load.σ32@4 <= EAX_8048438
	EAX_8048438 <= AR_804843B
	AR_804843B <= close.in_stack0
	close.in_stack0 <= #FileDescriptor
	close.in_stack0 <= int
	close.out_eax <= EAX_804843F
	int <= close.out_eax
	#SuccessZ <= close.out_eax
`

// TestAppendixH runs the simplification algorithm on Figure 20's
// constraints with close_last interesting (close is an external whose
// variables are eliminated together with the register/slot variables)
// and checks that the result is equivalent to the Figure 2 scheme: the
// transducer Q of Figure 19 recognizes exactly
//
//	close_last.in_stack0.(load.σ32@0)*.load.σ32@4 ⊑ int ∧ #FileDescriptor
//	int ∨ #SuccessZ ⊑ close_last.out_eax
func TestAppendixH(t *testing.T) {
	cs := constraints.MustParseSet(figure20)
	lat := lattice.Default()
	g := Build(cs, lat)
	res := g.Simplify(func(v constraints.Var) bool { return v == "close_last" })

	t.Logf("simplified (%d constraints):\n%s", res.Constraints.Len(), res.Constraints)

	g2 := Build(res.Constraints, lat)
	g2.Saturate()
	mustProve := [][2]string{
		{"close_last.in_stack0.load.σ32@4", "int"},
		{"close_last.in_stack0.load.σ32@4", "#FileDescriptor"},
		{"close_last.in_stack0.load.σ32@0.load.σ32@4", "int"},
		{"close_last.in_stack0.load.σ32@0.load.σ32@0.load.σ32@4", "#FileDescriptor"},
		{"int", "close_last.out_eax"},
		{"#SuccessZ", "close_last.out_eax"},
	}
	for _, q := range mustProve {
		if !g2.Proves(mustDTV(t, q[0]), mustDTV(t, q[1])) {
			t.Errorf("simplified scheme lost %s ⊑ %s", q[0], q[1])
		}
	}
	mustNot := [][2]string{
		{"close_last.in_stack0.load.σ32@0", "int"}, // the next field is not an int
		{"close_last.in_stack0.load.σ32@8", "int"}, // no σ32@8 capability
		{"close_last.out_eax", "int"},              // out is bounded below, not above
		{"int", "close_last.in_stack0.load.σ32@4"}, // handle is bounded above, not below
	}
	for _, q := range mustNot {
		if g2.Proves(mustDTV(t, q[0]), mustDTV(t, q[1])) {
			t.Errorf("simplified scheme invented %s ⊑ %s", q[0], q[1])
		}
	}

	// Internal variables must all be eliminated.
	for _, c := range res.Constraints.Subtypes() {
		for _, d := range []constraints.DTV{c.L, c.R} {
			switch string(d.Base()) {
			case "close_last", "int", "#FileDescriptor", "#SuccessZ":
			default:
				if !strings.HasPrefix(string(d.Base()), "τ") {
					t.Errorf("unexpected variable %q in simplification: %s", d.Base(), c)
				}
			}
		}
	}

	// The output must be small: the paper's Figure 2 scheme has 4
	// constraints over one existential; allow modest slack for the
	// extra τ per merge point.
	if res.Constraints.Len() > 16 {
		t.Errorf("simplification too large: %d constraints", res.Constraints.Len())
	}
}
