package pgraph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/maphash"
	"strconv"
	"strings"
	"sync"

	"retypd/internal/constraints"
	"retypd/internal/intern"
	"retypd/internal/lattice"
	"retypd/internal/lru"
)

// canonPrefix is the namespace of canonical variable names used by
// fingerprinting. Program variables never contain it (procedure names
// come from assembly symbols, internal solver variables use '!', '@'
// and 'τ'); if one ever does, fingerprinting declines to canonicalize
// rather than risk a collision in the cached (renamed) schemes.
const canonPrefix = "¤" // ¤

// FP is a canonical fingerprint of a constraint set: a content hash
// that is invariant under renaming of the non-constant base variables.
// Two constraint sets with the same fingerprint are isomorphic — they
// differ at most in variable names — so the simplification of one is
// the simplification of the other modulo the same renaming. This is
// what lets duplicate leaf procedures across a corpus be simplified
// once (BinSub observes simplification dominates end-to-end inference
// cost; the paper's Appendix F notes the per-SCC structure that makes
// the sharing sound).
//
// The hash is computed over portable canonical bytes: each non-constant
// base symbol is mapped to a dense canonical index in order of first
// occurrence, constants contribute their names, label words contribute
// their precomputed wire encodings (label.AppendWire via the intern
// table, a copy — no per-occurrence rendering), and the lattice's
// content signature is mixed in. Nothing process-local reaches the
// digest, so the same constraint structure fingerprints to the same sum
// in every process — which is what lets fingerprint-keyed cache entries
// be persisted and served across process restarts (see Key.AppendWire
// and solver's cache persistence). FPVersion is folded into the digest;
// bump it whenever the hashed content changes shape.
type FP struct {
	ok     bool
	sum    [sha256.Size]byte
	rename map[intern.Sym]uint32
	// locals is the inverse of rename: locals[idx] is the local base
	// symbol assigned canonical index idx (first-occurrence order).
	locals []intern.Sym
}

// Key is the comparable cache key of one (fingerprint, root) pair.
//
//retypd:cachekey Key.Hash64
type Key struct {
	sum  [sha256.Size]byte
	root uint32
}

// String renders the key for diagnostics.
func (k Key) String() string {
	return hex.EncodeToString(k.sum[:]) + "|" + canonPrefix + strconv.FormatUint(uint64(k.root), 10)
}

// keySeed seeds the 64-bit recency-index hashes of the fingerprint
// caches (process-stable, fresh per run so the hash is not an
// attacker-predictable function of the content digest).
var keySeed = maphash.MakeSeed()

// Hash64 folds the key into the 64-bit recency-index hash used by the
// memo caches. The full key stays on each cache entry and is compared
// on every probe, so this hash only needs to spread, not to identify.
func (k Key) Hash64() uint64 {
	var h maphash.Hash
	h.SetSeed(keySeed)
	_, _ = h.Write(k.sum[:])
	var rb [4]byte
	binary.LittleEndian.PutUint32(rb[:], k.root)
	_, _ = h.Write(rb[:])
	return h.Sum64()
}

// fpBufPool recycles the scratch buffers fingerprint hashing is
// accumulated into.
var fpBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Operand-class tags mixed into the hash so constant and renamed
// variables can never collide.
const (
	fpConst   = 0x01
	fpRenamed = 0x02
)

// FPVersion is the version of the fingerprint's hashed content, folded
// into every digest. Any change to what Fingerprint hashes (field
// order, encodings, new discriminators) must bump it, so that keys
// persisted under the old scheme can never collide with — or be served
// for — keys computed under the new one.
const FPVersion = 2

// Fingerprint canonicalizes cs: every base variable that is not a
// lattice constant is mapped to canonical index 0, 1, … in order of
// first occurrence over the set's (deterministic) insertion order, and
// the id-level rendering is hashed. Returns an unusable FP
// (Usable() == false) when canonicalization would be ambiguous.
func Fingerprint(cs *constraints.Set, lat *lattice.Lattice) *FP {
	fp := &FP{rename: map[intern.Sym]uint32{}}
	// constInfo caches the per-symbol constant test and name (one
	// resolution per distinct base variable, not one per occurrence).
	type constInfo struct {
		isConst bool
		name    string
	}
	consts := map[intern.Sym]constInfo{}
	bad := false

	bufp := fpBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	buf = append(buf, FPVersion)

	canonDTV := func(d constraints.DTV) {
		y := d.BaseSym()
		ci, seen := consts[y]
		if !seen {
			_, ci.isConst = lat.ElemSym(y)
			if ci.isConst {
				ci.name = intern.StringOf(y)
			} else if strings.Contains(intern.StringOf(y), canonPrefix) {
				// Only non-constants get renamed, so only they need the
				// canonical-namespace collision check.
				bad = true
			}
			consts[y] = ci
		}
		if ci.isConst {
			buf = append(buf, fpConst)
			buf = binary.AppendUvarint(buf, uint64(len(ci.name)))
			buf = append(buf, ci.name...)
		} else {
			idx, ok := fp.rename[y]
			if !ok {
				idx = uint32(len(fp.rename))
				fp.rename[y] = idx
				fp.locals = append(fp.locals, y)
			}
			buf = append(buf, fpRenamed)
			buf = binary.AppendUvarint(buf, uint64(idx))
		}
		buf = intern.AppendWordWire(buf, d.PathRef())
	}
	for _, c := range cs.Constraints() {
		buf = append(buf, byte(c.Kind))
		switch c.Kind {
		case constraints.KindSub:
			canonDTV(c.L)
			canonDTV(c.R)
		default:
			canonDTV(c.X)
			canonDTV(c.Y)
			canonDTV(c.Z)
		}
	}
	// Mix in the lattice identity (its content signature, which is
	// process-independent): the same canonical constraint structure
	// saturates and simplifies differently under a different Λ, so a
	// cache shared across Infer calls — or across processes via
	// persistence — with different lattices must not cross-serve
	// entries.
	sig := lat.Signature()
	buf = append(buf, 0x00)
	buf = binary.AppendUvarint(buf, uint64(len(sig)))
	buf = append(buf, sig...)

	if !bad {
		fp.ok = true
		fp.sum = sha256.Sum256(buf)
	}
	*bufp = buf
	fpBufPool.Put(bufp)
	if !bad {
		return fp
	}
	return &FP{}
}

// Usable reports whether the fingerprint can key a cache.
func (f *FP) Usable() bool { return f.ok }

// CanonicalIndex returns the canonical index assigned to the local base
// symbol y, or false when y is not one of the fingerprinted
// (non-constant) variables. Together with LocalOf it exposes the full
// rename bijection for cached results that DO mention variables and
// need per-hit translation back to local names. The phase-2 shape memo
// itself only needs the local→canonical direction (KeyFor): sketches
// mention no variable names, so its hits are served without any
// rehydration.
func (f *FP) CanonicalIndex(y intern.Sym) (uint32, bool) {
	idx, ok := f.rename[y]
	return idx, ok
}

// LocalOf returns the local base symbol assigned canonical index idx
// (the canonical→local direction of the rename bijection), or false
// when idx is out of range.
func (f *FP) LocalOf(idx uint32) (intern.Sym, bool) {
	if int(idx) >= len(f.locals) {
		return 0, false
	}
	return f.locals[idx], true
}

// RenameLen reports the number of renamed (non-constant) base
// variables the fingerprint canonicalized.
func (f *FP) RenameLen() int { return len(f.rename) }

// KeyFor returns the cache key for simplifying relative to root, or
// false when root does not occur in the fingerprinted set.
func (f *FP) KeyFor(root constraints.Var) (Key, bool) {
	if !f.ok {
		return Key{}, false
	}
	idx, ok := f.rename[intern.Intern(string(root))]
	if !ok {
		return Key{}, false
	}
	return Key{sum: f.sum, root: idx}, true
}

// canonicalRoot returns root's canonical name ("¤k" for canonical
// index k), used to store and rehydrate cached schemes.
func (f *FP) canonicalRoot(root constraints.Var) (constraints.Var, bool) {
	idx, ok := f.rename[intern.Intern(string(root))]
	if !ok {
		return "", false
	}
	return constraints.Var(canonPrefix + strconv.FormatUint(uint64(idx), 10)), true
}

// renamed reports whether v is one of the fingerprinted (non-constant)
// program variables.
func (f *FP) renamed(y intern.Sym) bool {
	_, ok := f.rename[y]
	return ok
}

// DefaultSimplifyCacheCap is the entry bound of caches created by
// NewSimplifyCache(0). One entry holds one simplified (small) scheme;
// a few thousand covers the leaf-procedure population of corpora far
// larger than the paper's.
const DefaultSimplifyCacheCap = 4096

// SimplifyCache is a thread-safe LRU memo of Simplify results keyed by
// canonical constraint-set fingerprints. Entries are stored in
// canonical form (the root renamed to its ¤k name) and rehydrated on
// hit, so one entry serves every procedure with an isomorphic
// constraint set.
//
// Sharing contract: one cache may be shared by any number of
// goroutines and across any number of Infer runs — including runs over
// different programs, different solver options, and different lattices.
// Safety comes from the key, not the caller: entries are keyed by the
// canonical fingerprint, which covers the full constraint structure
// and the lattice identity (lattice.Signature), and results are stored
// root-canonicalized, so a hit can only be served to an isomorphic set
// under the same Λ. Callers therefore should share one cache as widely
// as possible (e.g. one cache for a whole evaluation suite) to
// maximize cross-program reuse of duplicate leaf procedures; the only
// cost of sharing is LRU pressure on the capacity bound. Hit/miss
// counters are cumulative across all sharers; callers wanting per-run
// numbers snapshot Stats before and after (as solver.Infer does).
//
// The underlying store is sharded by Hash64 so concurrent workers on
// different keys do not convoy on one mutex; the shard count is an
// internal layout choice that never reaches a key or a wire byte
// (lru.Sharded preserves global recency across Export/Import).
type SimplifyCache struct {
	lru *lru.Sharded[Key, *SimplifyResult]
}

// NewSimplifyCache returns an LRU cache bounded to capacity entries
// (capacity ≤ 0 selects DefaultSimplifyCacheCap).
func NewSimplifyCache(capacity int) *SimplifyCache {
	if capacity <= 0 {
		capacity = DefaultSimplifyCacheCap
	}
	return &SimplifyCache{lru: lru.NewSharded[Key, *SimplifyResult](capacity, 0, Key.Hash64)}
}

// Stats reports cumulative hit/miss counts.
func (c *SimplifyCache) Stats() (hits, misses uint64) { return c.lru.Stats() }

// Len reports the current entry count.
func (c *SimplifyCache) Len() int { return c.lru.Len() }

// Simplify returns the simplification of the (fingerprinted) constraint
// set relative to root, consulting the memo first. build must return
// the saturated graph of the fingerprinted set; it is only invoked on a
// cache miss (and may be shared across roots of one SCC). A nil cache
// degrades to calling build().Simplify directly.
//
// Misses are single-flight: when several workers miss on the same key
// concurrently (duplicate procedures scheduled onto sibling workers),
// one computes and the others wait for its canonical entry instead of
// re-running Build+Saturate+Simplify.
func (c *SimplifyCache) Simplify(fp *FP, root constraints.Var, build func() *Graph) *SimplifyResult {
	interesting := func(v constraints.Var) bool { return v == root }
	if c == nil || fp == nil {
		return build().Simplify(interesting)
	}
	key, ok := fp.KeyFor(root)
	if !ok {
		return build().Simplify(interesting)
	}
	var local *SimplifyResult
	canon, ok := c.lru.Do(key, func() (*SimplifyResult, bool) {
		local = build().Simplify(interesting)
		return canonicalize(local, root, fp)
	})
	if local != nil {
		// This caller led the computation: hand back its own (already
		// local-named) result, whether or not it was cacheable.
		return local
	}
	if ok {
		canonRoot, _ := fp.canonicalRoot(root)
		return rehydrate(canon, canonRoot, root)
	}
	// A concurrent leader's result was not shareable (canonicalize
	// refused it); compute privately.
	return build().Simplify(interesting)
}

// canonicalize rewrites res with root renamed to its canonical name.
// Simplification relative to {root} only ever mentions root, lattice
// constants, and the fresh existential variables it synthesized (whose
// numbering depends only on graph structure, not on names); if anything
// else appears the result is not safely shareable and we refuse to
// cache it.
func canonicalize(res *SimplifyResult, root constraints.Var, fp *FP) (*SimplifyResult, bool) {
	canonRoot, ok := fp.canonicalRoot(root)
	if !ok {
		return nil, false
	}
	rootSym := intern.Intern(string(root))
	fresh := map[intern.Sym]bool{}
	for _, v := range res.Existential {
		fresh[intern.Intern(string(v))] = true
	}
	for _, c := range res.Constraints.Constraints() {
		for _, d := range []constraints.DTV{c.L, c.R, c.X, c.Y, c.Z} {
			y := d.BaseSym()
			if y == 0 || y == rootSym || fresh[y] {
				continue
			}
			if fp.renamed(y) {
				// A foreign program variable leaked into the result;
				// renaming only the root would mis-share it.
				return nil, false
			}
		}
	}
	return rehydrate(res, root, canonRoot), true
}

// rehydrate substitutes from → to in a stored result, copying the
// existential list so cached state is never aliased mutably.
func rehydrate(res *SimplifyResult, from, to constraints.Var) *SimplifyResult {
	out := &SimplifyResult{
		Constraints: res.Constraints.SubstituteBases(func(v constraints.Var) constraints.Var {
			if v == from {
				return to
			}
			return v
		}),
		Existential: append([]constraints.Var(nil), res.Existential...),
	}
	return out
}
