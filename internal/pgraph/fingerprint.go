package pgraph

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
	"sync"

	"retypd/internal/constraints"
	"retypd/internal/lattice"
)

// canonPrefix is the namespace of canonical variable names used by
// fingerprinting. Program variables never contain it (procedure names
// come from assembly symbols, internal solver variables use '!', '@'
// and 'τ'); if one ever does, fingerprinting declines to canonicalize
// rather than risk a collision.
const canonPrefix = "¤" // ¤

// FP is a canonical fingerprint of a constraint set: a content hash
// that is invariant under renaming of the non-constant base variables.
// Two constraint sets with the same fingerprint are isomorphic — they
// differ at most in variable names — so the simplification of one is
// the simplification of the other modulo the same renaming. This is
// what lets duplicate leaf procedures across a corpus be simplified
// once (BinSub observes simplification dominates end-to-end inference
// cost; the paper's Appendix F notes the per-SCC structure that makes
// the sharing sound).
type FP struct {
	ok     bool
	sum    string
	rename map[constraints.Var]constraints.Var
}

// Fingerprint canonicalizes cs: every base variable that is not a
// lattice constant is renamed to ¤0, ¤1, … in order of first occurrence
// over the set's (deterministic) insertion order, and the renamed
// rendering is hashed. Returns an unusable FP (Usable() == false) when
// canonicalization would be ambiguous.
func Fingerprint(cs *constraints.Set, lat *lattice.Lattice) *FP {
	fp := &FP{rename: map[constraints.Var]constraints.Var{}}
	bad := false
	canonVar := func(v constraints.Var) string {
		if _, isConst := lat.Elem(string(v)); isConst {
			return string(v)
		}
		if strings.Contains(string(v), canonPrefix) {
			bad = true
			return string(v)
		}
		cv, ok := fp.rename[v]
		if !ok {
			cv = constraints.Var(canonPrefix + strconv.Itoa(len(fp.rename)))
			fp.rename[v] = cv
		}
		return string(cv)
	}
	var b strings.Builder
	canonDTV := func(d constraints.DTV) {
		b.WriteString(canonVar(d.Base))
		if len(d.Path) > 0 {
			b.WriteByte('.')
			b.WriteString(d.Path.String())
		}
	}
	for _, c := range cs.Constraints() {
		switch c.Kind {
		case constraints.KindSub:
			canonDTV(c.L)
			b.WriteString("<=")
			canonDTV(c.R)
		default:
			if c.Kind == constraints.KindAdd {
				b.WriteString("Add(")
			} else {
				b.WriteString("Sub(")
			}
			canonDTV(c.X)
			b.WriteByte(',')
			canonDTV(c.Y)
			b.WriteByte(';')
			canonDTV(c.Z)
			b.WriteByte(')')
		}
		b.WriteByte('\n')
	}
	if bad {
		return &FP{}
	}
	// Mix in the lattice identity: the same canonical constraint text
	// saturates and simplifies differently under a different Λ, so a
	// cache shared across Infer calls with different lattices must not
	// cross-serve entries.
	b.WriteString("\x00Λ=")
	b.WriteString(lat.Signature())
	h := sha256.Sum256([]byte(b.String()))
	fp.ok = true
	fp.sum = hex.EncodeToString(h[:])
	return fp
}

// Usable reports whether the fingerprint can key a cache.
func (f *FP) Usable() bool { return f.ok }

// KeyFor returns the cache key for simplifying relative to root, or
// false when root does not occur in the fingerprinted set.
func (f *FP) KeyFor(root constraints.Var) (string, bool) {
	if !f.ok {
		return "", false
	}
	cv, ok := f.rename[root]
	if !ok {
		return "", false
	}
	return f.sum + "|" + string(cv), true
}

// canonicalRoot returns root's canonical name.
func (f *FP) canonicalRoot(root constraints.Var) (constraints.Var, bool) {
	cv, ok := f.rename[root]
	return cv, ok
}

// DefaultSimplifyCacheCap is the entry bound of caches created by
// NewSimplifyCache(0). One entry holds one simplified (small) scheme;
// a few thousand covers the leaf-procedure population of corpora far
// larger than the paper's.
const DefaultSimplifyCacheCap = 4096

// SimplifyCache is a thread-safe LRU memo of Simplify results keyed by
// canonical constraint-set fingerprints. Entries are stored in
// canonical form (the root renamed to its ¤k name) and rehydrated on
// hit, so one entry serves every procedure with an isomorphic
// constraint set.
type SimplifyCache struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	res *SimplifyResult // canonical form
}

// NewSimplifyCache returns an LRU cache bounded to capacity entries
// (capacity ≤ 0 selects DefaultSimplifyCacheCap).
func NewSimplifyCache(capacity int) *SimplifyCache {
	if capacity <= 0 {
		capacity = DefaultSimplifyCacheCap
	}
	return &SimplifyCache{
		cap:   capacity,
		order: list.New(),
		byKey: map[string]*list.Element{},
	}
}

// Stats reports cumulative hit/miss counts.
func (c *SimplifyCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the current entry count.
func (c *SimplifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Simplify returns the simplification of the (fingerprinted) constraint
// set relative to root, consulting the memo first. build must return
// the saturated graph of the fingerprinted set; it is only invoked on a
// cache miss (and may be shared across roots of one SCC). A nil cache
// degrades to calling build().Simplify directly.
func (c *SimplifyCache) Simplify(fp *FP, root constraints.Var, build func() *Graph) *SimplifyResult {
	interesting := func(v constraints.Var) bool { return v == root }
	if c == nil || fp == nil {
		return build().Simplify(interesting)
	}
	key, ok := fp.KeyFor(root)
	if !ok {
		return build().Simplify(interesting)
	}
	if res, ok := c.lookup(key); ok {
		canonRoot, _ := fp.canonicalRoot(root)
		return rehydrate(res, canonRoot, root)
	}
	res := build().Simplify(interesting)
	if canon, ok := canonicalize(res, root, fp); ok {
		c.store(key, canon)
	}
	return res
}

func (c *SimplifyCache) lookup(key string) (*SimplifyResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return nil, false
}

func (c *SimplifyCache) store(key string, res *SimplifyResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok { // concurrent miss raced us; keep first
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, res: res})
	c.byKey[key] = el
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// canonicalize rewrites res with root renamed to its canonical name.
// Simplification relative to {root} only ever mentions root, lattice
// constants, and the fresh existential variables it synthesized (whose
// numbering depends only on graph structure, not on names); if anything
// else appears the result is not safely shareable and we refuse to
// cache it.
func canonicalize(res *SimplifyResult, root constraints.Var, fp *FP) (*SimplifyResult, bool) {
	canonRoot, ok := fp.canonicalRoot(root)
	if !ok {
		return nil, false
	}
	fresh := map[constraints.Var]bool{}
	for _, v := range res.Existential {
		fresh[v] = true
	}
	for _, c := range res.Constraints.Constraints() {
		for _, d := range []constraints.DTV{c.L, c.R, c.X, c.Y, c.Z} {
			v := d.Base
			if v == "" || v == root || fresh[v] {
				continue
			}
			if _, isFP := fp.rename[v]; isFP && v != root {
				// A foreign program variable leaked into the result;
				// renaming only the root would mis-share it.
				return nil, false
			}
		}
	}
	return rehydrate(res, root, canonRoot), true
}

// rehydrate substitutes from → to in a stored result, copying the
// existential list so cached state is never aliased mutably.
func rehydrate(res *SimplifyResult, from, to constraints.Var) *SimplifyResult {
	out := &SimplifyResult{
		Constraints: res.Constraints.SubstituteBases(func(v constraints.Var) constraints.Var {
			if v == from {
				return to
			}
			return v
		}),
		Existential: append([]constraints.Var(nil), res.Existential...),
	}
	return out
}
