package pgraph

import (
	"fmt"
	"sort"

	"retypd/internal/constraints"
	"retypd/internal/intern"
	"retypd/internal/label"
)

// SimplifyResult is a simplified constraint set together with the fresh
// existential variables synthesized for internal states (the τ of
// Figure 2).
type SimplifyResult struct {
	Constraints *constraints.Set
	Existential []constraints.Var
}

// Simplify computes a simplification of the constraint set the graph
// was built from, relative to the interesting base variables (§5.1,
// Definition 5.1): a small constraint set that entails the same
// interesting consequences. Lattice constants are always interesting.
//
// The algorithm walks the saturated graph's phase automaton (pops, then
// interleavable ε edges, then pushes — the reduced transition sequences
// of Theorem 5.1), keeps the states that lie on some anchored canonical
// path, names internal states with fresh existential variables, and
// emits one constraint per live ε edge: forward at covariant states,
// flipped at contravariant states (the variance partition of
// Lemma D.6).
func (g *Graph) Simplify(interesting func(constraints.Var) bool) *SimplifyResult {
	g.Saturate()

	isAnchor := func(v constraints.Var) bool {
		if interesting != nil && interesting(v) {
			return true
		}
		_, ok := g.lat.Elem(string(v))
		return ok
	}

	// Anchor states: base-variable nodes of interesting variables.
	var anchors []NodeID
	for id, n := range g.nodes {
		if n.DTV.IsBase() && isAnchor(n.DTV.Base()) {
			anchors = append(anchors, NodeID(id))
		}
	}

	// Phase automaton liveness. State = node*2 + phase.
	n := len(g.nodes)
	fwd := make([]bool, 2*n)
	var stack []int32
	pushState := func(s int32) {
		if !fwd[s] {
			fwd[s] = true
			stack = append(stack, s)
		}
	}
	for _, a := range anchors {
		pushState(int32(a) * 2) // phase 0
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id, phase := NodeID(s/2), s%2
		for _, succ := range g.eps[id] {
			pushState(int32(succ)*2 + phase)
		}
		if phase == 0 {
			for _, e := range g.pops[id] {
				pushState(int32(e.to) * 2)
			}
		}
		for _, e := range g.pushes[id] {
			pushState(int32(e.to)*2 + 1)
		}
	}

	// Backward liveness from anchor acceptors (either phase).
	// Build reverse adjacency over the forward-live subgraph only.
	bwd := make([]bool, 2*n)
	revEps := make([][]NodeID, n)
	revPop := make([][]NodeID, n)
	revPush := make([][]NodeID, n)
	for id := range g.nodes {
		for _, succ := range g.eps[id] {
			revEps[succ] = append(revEps[succ], NodeID(id))
		}
		for _, e := range g.pops[id] {
			revPop[e.to] = append(revPop[e.to], NodeID(id))
		}
		for _, e := range g.pushes[id] {
			revPush[e.to] = append(revPush[e.to], NodeID(id))
		}
	}
	stack = stack[:0]
	pushBwd := func(s int32) {
		if fwd[s] && !bwd[s] {
			bwd[s] = true
			stack = append(stack, s)
		}
	}
	for _, a := range anchors {
		pushBwd(int32(a) * 2)
		pushBwd(int32(a)*2 + 1)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id, phase := NodeID(s/2), s%2
		for _, pred := range revEps[id] {
			pushBwd(int32(pred)*2 + phase)
		}
		if phase == 0 {
			for _, pred := range revPop[id] {
				pushBwd(int32(pred) * 2)
			}
		}
		if phase == 1 {
			for _, pred := range revPush[id] {
				pushBwd(int32(pred)*2 + 1)
				pushBwd(int32(pred) * 2)
			}
		}
	}
	live := func(id NodeID, phase int32) bool { return bwd[int32(id)*2+phase] }

	// Fresh existential variables, one per internal base variable that
	// appears in a live state. Both variances of a base share one fresh
	// variable: every emitted constraint is a judgement derivable from
	// C about that base variable, in either derivation polarity, so the
	// merge is entailment-preserving.
	freshIdx := map[intern.Sym]constraints.Var{}
	var existential []constraints.Var
	freshFor := func(base intern.Sym) constraints.Var {
		if tv, ok := freshIdx[base]; ok {
			return tv
		}
		tv := constraints.Var(fmt.Sprintf("τ%d", len(freshIdx)))
		freshIdx[base] = tv
		existential = append(existential, tv)
		return tv
	}
	nameOf := func(id NodeID) constraints.DTV {
		nd := g.nodes[id]
		if isAnchor(nd.DTV.Base()) {
			return nd.DTV
		}
		return nd.DTV.WithBase(freshFor(nd.DTV.BaseSym()))
	}

	out := constraints.NewSet()
	// Deterministic edge order: by (from, to).
	type epsEdge struct{ from, to NodeID }
	var edges []epsEdge
	for id := range g.nodes {
		for _, succ := range g.eps[id] {
			edges = append(edges, epsEdge{NodeID(id), succ})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if !((live(e.from, 0) && live(e.to, 0)) || (live(e.from, 1) && live(e.to, 1))) {
			continue
		}
		a, b := nameOf(e.from), nameOf(e.to)
		if a.Equal(b) {
			continue
		}
		if g.nodes[e.from].Var == label.Covariant {
			out.AddSub(a, b)
		} else {
			out.AddSub(b, a)
		}
	}

	res := &SimplifyResult{Constraints: compact(out, existential), Existential: nil}
	// Recompute the existential list: compaction may eliminate some.
	used := map[constraints.Var]bool{}
	for _, c := range res.Constraints.Subtypes() {
		used[c.L.Base()] = true
		used[c.R.Base()] = true
	}
	for _, tv := range existential {
		if used[tv] {
			res.Existential = append(res.Existential, tv)
		}
	}
	return res
}

// compact eliminates fresh existential variables that occur only in
// chain position, replacing A ⊑ τ, τ ⊑ B pairs by A ⊑ B. A variable is
// eliminated when (a) it never occurs with a non-empty label path, and
// (b) the substitution does not grow the constraint count. To keep the
// substitution exact, each pass eliminates an independent set of
// candidates (no two adjacent through a bare constraint); passes repeat
// to a fixpoint. Elimination is entailment-preserving in both
// directions.
func compact(cs *constraints.Set, fresh []constraints.Var) *constraints.Set {
	isFresh := map[constraints.Var]bool{}
	for _, v := range fresh {
		isFresh[v] = true
	}
	cur := cs
	for pass := 0; pass < 64; pass++ {
		type occ struct {
			in, out []constraints.Constraint
			labeled bool
		}
		occs := map[constraints.Var]*occ{}
		get := func(v constraints.Var) *occ {
			o := occs[v]
			if o == nil {
				o = &occ{}
				occs[v] = o
			}
			return o
		}
		for _, c := range cur.Subtypes() {
			if isFresh[c.L.Base()] {
				o := get(c.L.Base())
				if c.L.PathLen() > 0 {
					o.labeled = true
				} else {
					o.out = append(o.out, c)
				}
			}
			if isFresh[c.R.Base()] {
				o := get(c.R.Base())
				if c.R.PathLen() > 0 {
					o.labeled = true
				} else {
					o.in = append(o.in, c)
				}
			}
		}
		// Candidates, in deterministic order.
		var cands []constraints.Var
		for v, o := range occs {
			if !o.labeled && len(o.in)*len(o.out) <= len(o.in)+len(o.out) {
				cands = append(cands, v)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		// Greedy independent set: skip candidates adjacent (via a bare
		// chain constraint) to an already selected one.
		selected := map[constraints.Var]bool{}
		adjacentSelected := func(o *occ) bool {
			for _, c := range o.in {
				if c.L.PathLen() == 0 && selected[c.L.Base()] {
					return true
				}
			}
			for _, c := range o.out {
				if c.R.PathLen() == 0 && selected[c.R.Base()] {
					return true
				}
			}
			return false
		}
		for _, v := range cands {
			if !adjacentSelected(occs[v]) {
				selected[v] = true
			}
		}
		if len(selected) == 0 {
			break
		}
		next := constraints.NewSet()
		for _, c := range cur.Subtypes() {
			lElim := c.L.PathLen() == 0 && selected[c.L.Base()]
			rElim := c.R.PathLen() == 0 && selected[c.R.Base()]
			if !lElim && !rElim {
				next.Insert(c)
			}
		}
		// Iterate cands (already sorted), not the selected map: the
		// output set's insertion order must be deterministic — it feeds
		// scheme instantiation and the fingerprint cache downstream.
		for _, v := range cands {
			if !selected[v] {
				continue
			}
			o := occs[v]
			for _, cin := range o.in {
				for _, cout := range o.out {
					if !cin.L.Equal(cout.R) {
						next.AddSub(cin.L, cout.R)
					}
				}
			}
		}
		cur = next
	}
	return cur
}
