package pgraph

import (
	"fmt"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/intern"
	"retypd/internal/lattice"
)

// leafSet builds the constraint set of a toy leaf procedure over base
// variable name, structurally identical for every name.
func leafSet(name string) *constraints.Set {
	return constraints.MustParseSet(fmt.Sprintf(`
		%[1]s.in_stack0 <= %[1]s!frm!stack0
		%[1]s!frm!stack0 <= %[1]s!v1
		%[1]s!v1.load.σ32@0 <= %[1]s!v2
		%[1]s!v2 <= int
		int <= %[1]s.out_eax
	`, name))
}

// TestFingerprintRenamingInvariant: isomorphic sets (differing only in
// non-constant variable names) share a fingerprint; structural changes
// break it.
func TestFingerprintRenamingInvariant(t *testing.T) {
	lat := lattice.Default()
	fa := Fingerprint(leafSet("procA"), lat)
	fb := Fingerprint(leafSet("procB"), lat)
	if !fa.Usable() || !fb.Usable() {
		t.Fatal("fingerprints must be usable")
	}
	ka, oka := fa.KeyFor("procA")
	kb, okb := fb.KeyFor("procB")
	if !oka || !okb {
		t.Fatal("roots must be fingerprinted")
	}
	if ka != kb {
		t.Errorf("isomorphic sets got different keys:\n%s\n%s", ka, kb)
	}

	// A different constant breaks the fingerprint (constants are part
	// of the canonical identity, not renamed).
	fc := Fingerprint(constraints.MustParseSet(`
		procA.in_stack0 <= procA!frm!stack0
		procA!frm!stack0 <= procA!v1
		procA!v1.load.σ32@0 <= procA!v2
		procA!v2 <= uint
		uint <= procA.out_eax
	`), lat)
	kc, _ := fc.KeyFor("procA")
	if kc == ka {
		t.Error("sets with different lattice constants must not share a key")
	}

	// A different structure breaks it too.
	fd := Fingerprint(constraints.MustParseSet(`
		procA.in_stack0 <= procA!frm!stack0
		procA!frm!stack0 <= procA!v1
		procA!v1.load.σ32@4 <= procA!v2
		procA!v2 <= int
		int <= procA.out_eax
	`), lat)
	kd, _ := fd.KeyFor("procA")
	if kd == ka {
		t.Error("sets with different labels must not share a key")
	}
}

// TestFingerprintSeparatesLattices: the same constraint text under a
// different Λ must not share a cache key — saturation and
// simplification depend on the lattice's ordering.
func TestFingerprintSeparatesLattices(t *testing.T) {
	cs := leafSet("procA")
	defKey, ok := Fingerprint(cs, lattice.Default()).KeyFor("procA")
	if !ok {
		t.Fatal("default-lattice fingerprint unusable")
	}
	other := lattice.NewBuilder().Below("int", "num32").MustBuild()
	otherKey, ok := Fingerprint(cs, other).KeyFor("procA")
	if !ok {
		t.Fatal("custom-lattice fingerprint unusable")
	}
	if defKey == otherKey {
		t.Error("fingerprint ignores the lattice — cache entries would cross-serve between lattices")
	}
}

// TestKeyForUnknownRoot: a root that never occurs in the set cannot be
// cached against it.
func TestKeyForUnknownRoot(t *testing.T) {
	lat := lattice.Default()
	fp := Fingerprint(leafSet("procA"), lat)
	if _, ok := fp.KeyFor("procZ"); ok {
		t.Error("KeyFor must fail for a variable outside the set")
	}
}

// TestSimplifyCacheHitEqualsFreshSimplify: a cache hit rehydrated for a
// different procedure must equal simplifying that procedure's own set
// directly — the soundness property of the memo.
func TestSimplifyCacheHitEqualsFreshSimplify(t *testing.T) {
	lat := lattice.Default()
	cache := NewSimplifyCache(0)

	simplify := func(name string) *SimplifyResult {
		cs := leafSet(name)
		fp := Fingerprint(cs, lat)
		var g *Graph
		build := func() *Graph {
			if g == nil {
				g = Build(cs, lat)
				g.Saturate()
			}
			return g
		}
		return cache.Simplify(fp, constraints.Var(name), build)
	}

	a := simplify("procA")
	b := simplify("procB") // isomorphic: must be a hit
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("expected 1 hit, stats: hits=%d", hits)
	}

	// Fresh, uncached simplification of procB's set.
	gb := Build(leafSet("procB"), lat)
	gb.Saturate()
	fresh := gb.Simplify(func(v constraints.Var) bool { return v == "procB" })

	if b.Constraints.String() != fresh.Constraints.String() {
		t.Errorf("cache hit diverged from fresh simplify:\nhit:\n%s\nfresh:\n%s",
			b.Constraints, fresh.Constraints)
	}
	if len(b.Existential) != len(fresh.Existential) {
		t.Errorf("existential lists differ: %v vs %v", b.Existential, fresh.Existential)
	}
	// And the hit must actually be renamed: no procA variable may leak.
	for _, c := range b.Constraints.Subtypes() {
		for _, d := range []constraints.DTV{c.L, c.R} {
			if d.Base() == "procA" {
				t.Errorf("procA leaked into procB's scheme: %s", c)
			}
		}
	}
	_ = a
}

// TestSimplifyCacheLRUEviction: the cache respects its capacity bound.
func TestSimplifyCacheLRUEviction(t *testing.T) {
	lat := lattice.Default()
	cache := NewSimplifyCache(2)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		// Vary structure per i so every entry is a distinct key.
		cs := constraints.MustParseSet(fmt.Sprintf(`
			%[1]s.in_stack0 <= %[1]s!v
			%[1]s!v.load.σ32@%[2]d <= int
		`, name, 4*i))
		fp := Fingerprint(cs, lat)
		cache.Simplify(fp, constraints.Var(name), func() *Graph {
			g := Build(cs, lat)
			g.Saturate()
			return g
		})
	}
	if n := cache.Len(); n != 2 {
		t.Errorf("cache holds %d entries, capacity 2", n)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 5 {
		t.Errorf("expected 0 hits / 5 misses, got %d/%d", hits, misses)
	}
}

// TestNilCacheFallsBack: a nil cache must still simplify.
func TestNilCacheFallsBack(t *testing.T) {
	lat := lattice.Default()
	cs := leafSet("procA")
	fp := Fingerprint(cs, lat)
	var c *SimplifyCache
	res := c.Simplify(fp, "procA", func() *Graph {
		g := Build(cs, lat)
		g.Saturate()
		return g
	})
	if res == nil || res.Constraints.Len() == 0 {
		t.Fatal("nil cache lost the simplification result")
	}
}

// TestRenameMapExposure: the canonical↔local rename bijection exposed
// for the phase-2 shape memo — isomorphic sets assign the same
// canonical index to corresponding variables, CanonicalIndex/LocalOf
// invert each other, and constants are never renamed.
func TestRenameMapExposure(t *testing.T) {
	lat := lattice.Default()
	fa := Fingerprint(leafSet("alpha"), lat)
	fb := Fingerprint(leafSet("beta"), lat)
	if !fa.Usable() || !fb.Usable() {
		t.Fatal("fingerprints unusable")
	}
	if fa.RenameLen() != fb.RenameLen() {
		t.Fatalf("isomorphic sets renamed %d vs %d variables", fa.RenameLen(), fb.RenameLen())
	}
	if fa.RenameLen() == 0 {
		t.Fatal("no variables renamed")
	}
	// Corresponding variables get the same canonical index.
	pairs := [][2]string{
		{"alpha", "beta"},
		{"alpha!frm!stack0", "beta!frm!stack0"},
		{"alpha!v1", "beta!v1"},
		{"alpha!v2", "beta!v2"},
	}
	for _, p := range pairs {
		ia, oka := fa.CanonicalIndex(intern.Intern(p[0]))
		ib, okb := fb.CanonicalIndex(intern.Intern(p[1]))
		if !oka || !okb || ia != ib {
			t.Errorf("canonical index of %q (%d,%v) != %q (%d,%v)", p[0], ia, oka, p[1], ib, okb)
		}
		// LocalOf inverts CanonicalIndex.
		if y, ok := fa.LocalOf(ia); !ok || y != intern.Intern(p[0]) {
			t.Errorf("LocalOf(%d) = %v, want %q", ia, y, p[0])
		}
	}
	// Constants are not in the rename map; out-of-range indices fail.
	if _, ok := fa.CanonicalIndex(intern.Intern("int")); ok {
		t.Error("lattice constant was renamed")
	}
	if _, ok := fa.LocalOf(uint32(fa.RenameLen())); ok {
		t.Error("LocalOf accepted an out-of-range index")
	}
}
