// Package pgraph implements the pushdown-system encoding of constraint
// entailment at the core of Retypd (Noonan et al., PLDI 2016, §5 and
// Appendix D).
//
// Proofs in the deduction system of Figure 3 have a normal form
// (Theorem B.1) that corresponds to transition sequences of an
// unconstrained pushdown system. The graph built here encodes those
// transition sequences:
//
//   - a node is a pair (d, s) of a derived type variable d (drawn from
//     the prefix closure of the constraint set) and a variance
//     s ∈ {⊕,⊖} — the variance of the pending stack suffix at that point
//     of a derivation;
//   - for every constraint α ⊑ β there are ε-edges (α,⊕)→(β,⊕) (the
//     axiom used covariantly) and (β,⊖)→(α,⊖) (contravariantly);
//   - for every derived type variable α.ℓ there is a pop edge
//     (α,s) →pop ℓ→ (α.ℓ, s·⟨ℓ⟩) that moves a label from the stack into
//     the variable, and the inverse push edge.
//
// Saturation (Algorithm D.2) adds shortcut ε-edges so that every
// derivable judgement X.u ⊑ Y.v between interesting variables is
// witnessed by a canonical path: pops first, then ε-edges, then pushes.
// The infinite S-POINTER rule family (α.store ⊑ α.load for every α) is
// instantiated lazily during saturation: rewriting the stack top between
// .store (contravariant) and .load (covariant) flips the suffix
// variance, so a reaching-push recorded at (q,⊖) is transferred, with
// the label dualized, to (q,⊕). That variance flip is exactly what
// produces the dashed x.store⊕ → y.load⊕ edge of Figure 14.
//
// Nodes are indexed by their interned (DTV, variance) pair — a 5-byte
// comparable key — and the Graph itself is pooled: Build draws a
// recycled Graph whose node/edge storage and saturation scratch retain
// their previous capacity, and Release returns it once the caller is
// done. The solver releases one graph per SCC (phase F.1) and one per
// procedure (phase F.2), so a steady-state inference run allocates
// graph storage only while the high-water mark still grows.
package pgraph

import (
	"sort"
	"sync"

	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
)

// NodeID indexes a node in the graph.
type NodeID int32

// Node is a (derived type variable, variance) pair.
type Node struct {
	DTV constraints.DTV
	Var label.Variance
}

// nodeKey is the interned identity of (dtv, variance).
type nodeKey struct {
	d constraints.DTV
	v label.Variance
}

// edge is a labeled pop/push edge. lid is the label's dense per-graph
// id (see labelID), which is what the saturation fixpoint compares and
// packs into reach keys instead of the full Label value.
type edge struct {
	lbl label.Label
	lid uint32
	to  NodeID
}

// Graph is the (saturated) constraint graph for one constraint set.
type Graph struct {
	lat *lattice.Lattice

	nodes []Node
	index map[nodeKey]NodeID

	eps    [][]NodeID // ε successors
	epsSet map[int64]struct{}
	pops   [][]edge // pop successors (label read)
	pushes [][]edge // push successors (label emitted)

	// constVars maps nodes that are lattice constants used covariantly
	// ((κ,⊕)) to their lattice element.
	constOf map[NodeID]lattice.Elem

	saturated bool

	// lblOf/lbls assign dense per-graph ids to the labels appearing on
	// pop/push edges, reset per Build so ids are deterministic for a
	// given constraint set. Ids 0 and 1 are always .load and .store, so
	// the saturation loop tests pointer-access labels and flips duals
	// with integer arithmetic.
	lblOf map[label.Label]uint32
	lbls  []label.Label

	// Saturation scratch, retained across pool cycles. satReach[n] is
	// the node's reach set as a sorted slice of packed
	// (label id << 32 | origin node) keys with binary-search
	// membership — the former per-node map[reach]struct{}, now flat,
	// allocation-light and cache-friendly.
	satReach   [][]uint64
	satScratch []uint64 // merge buffer, swapped with grown sets
	satWork    []NodeID
	satIn      []bool
}

// graphPool recycles Graphs between Build/Release cycles.
var graphPool = sync.Pool{New: func() any {
	return &Graph{
		index:   map[nodeKey]NodeID{},
		epsSet:  map[int64]struct{}{},
		constOf: map[NodeID]lattice.Elem{},
		lblOf:   map[label.Label]uint32{},
	}
}}

// resetNested truncates a slice-of-slices while keeping every inner
// slice's capacity available for reuse.
func resetNested[T any](s [][]T) [][]T {
	for i := range s {
		s[i] = s[i][:0]
	}
	return s[:0]
}

// growNested extends a reset slice-of-slices by one empty entry,
// re-exposing a recycled inner slice when capacity allows.
func growNested[T any](s [][]T) [][]T {
	if n := len(s); n < cap(s) {
		return s[:n+1]
	}
	return append(s, nil)
}

// reset prepares a pooled graph for a fresh Build.
func (g *Graph) reset(lat *lattice.Lattice) {
	g.lat = lat
	g.nodes = g.nodes[:0]
	clear(g.index)
	clear(g.epsSet)
	clear(g.constOf)
	g.eps = resetNested(g.eps)
	g.pops = resetNested(g.pops)
	g.pushes = resetNested(g.pushes)
	g.saturated = false
	for i := range g.satReach {
		g.satReach[i] = g.satReach[i][:0]
	}
	g.satWork = g.satWork[:0]
	clear(g.lblOf)
	g.lbls = append(g.lbls[:0], label.Load(), label.Store())
	g.lblOf[label.Load()] = 0
	g.lblOf[label.Store()] = 1
}

// labelID returns l's dense per-graph id, assigning the next one on
// first use. Ids 0/1 are pre-assigned to .load/.store by reset.
func (g *Graph) labelID(l label.Label) uint32 {
	if id, ok := g.lblOf[l]; ok {
		return id
	}
	id := uint32(len(g.lbls))
	g.lbls = append(g.lbls, l)
	g.lblOf[l] = id
	return id
}

// Release returns the graph to the package pool for reuse by a later
// Build. The caller must not use g (or anything aliasing its node
// storage) afterwards. Releasing is optional — an unreleased graph is
// simply collected — and must happen at most once.
func (g *Graph) Release() {
	graphPool.Put(g)
}

// Build constructs the (unsaturated) graph for cs. Type constants are
// the base variables whose name matches an element of lat; they are
// always interesting. Pointer-sibling completion is applied: whenever a
// node α.load exists, α.store is added too (and vice versa), matching
// the unconditional ∆ptr rule family of Definition D.3.
func Build(cs *constraints.Set, lat *lattice.Lattice) *Graph {
	g := graphPool.Get().(*Graph)
	g.reset(lat)
	cs.EachSubtype(func(c constraints.Constraint) {
		l, r := c.L, c.R
		g.registerDTV(l)
		g.registerDTV(r)
		if l != r {
			g.addEps(g.node(l, label.Covariant), g.node(r, label.Covariant))
			g.addEps(g.node(r, label.Contravariant), g.node(l, label.Contravariant))
		}
	})
	return g
}

// Lattice returns the lattice the graph was built with.
func (g *Graph) Lattice() *lattice.Lattice { return g.lat }

// registerDTV interns d, its prefixes, pointer siblings, and both
// variances of each, wiring pop/push edges.
func (g *Graph) registerDTV(d constraints.DTV) {
	g.node(d, label.Covariant)
	g.node(d, label.Contravariant)
}

// node interns (d, v), creating prefix nodes and pop/push edges on the
// way, plus pointer-sibling nodes for load/store.
func (g *Graph) node(d constraints.DTV, v label.Variance) NodeID {
	key := nodeKey{d: d, v: v}
	if id, ok := g.index[key]; ok {
		return id
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{DTV: d, Var: v})
	g.index[key] = id
	g.eps = growNested(g.eps)
	g.pops = growNested(g.pops)
	g.pushes = growNested(g.pushes)

	if parent, last, ok := d.Parent(); ok {
		// Wire pop/push edges between (parent, v·⟨last⟩) and (d, v):
		// pop: (parent, pv) → (d, pv·⟨last⟩) with pv·⟨last⟩ = v.
		pv := v.Mul(last.Variance())
		pid := g.node(parent, pv)
		lid := g.labelID(last)
		g.pops[pid] = append(g.pops[pid], edge{lbl: last, lid: lid, to: id})
		g.pushes[id] = append(g.pushes[id], edge{lbl: last, lid: lid, to: pid})
		if last.IsPointerAccess() {
			// Pointer-sibling completion: α.load ⇒ α.store and vice
			// versa, in the dual variance (load is ⊕, store is ⊖).
			g.node(parent.Append(last.PointerDual()), v.Mul(label.Contravariant))
		}
	} else if v == label.Covariant {
		if e, ok := g.lat.ElemSym(d.BaseSym()); ok {
			g.constOf[id] = e
		}
	}
	return id
}

// NodeOf looks up (d, v) without creating it.
func (g *Graph) NodeOf(d constraints.DTV, v label.Variance) (NodeID, bool) {
	id, ok := g.index[nodeKey{d: d, v: v}]
	return id, ok
}

// NodeInfo returns the node contents.
func (g *Graph) NodeInfo(id NodeID) Node { return g.nodes[id] }

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

func epsKey(from, to NodeID) int64 { return int64(from)<<32 | int64(uint32(to)) }

// addEps inserts an ε edge, reporting whether it is new.
func (g *Graph) addEps(from, to NodeID) bool {
	if from == to {
		return false
	}
	k := epsKey(from, to)
	if _, ok := g.epsSet[k]; ok {
		return false
	}
	g.epsSet[k] = struct{}{}
	g.eps[from] = append(g.eps[from], to)
	return true
}

// HasEps reports whether an ε edge from → to exists (for tests that
// validate saturation against the paper's Figure 14).
func (g *Graph) HasEps(from, to NodeID) bool {
	_, ok := g.epsSet[epsKey(from, to)]
	return ok
}

// A reach key is a packed (label id, origin node) pair: "a push of the
// label starting at org reaches this node through ε edges". Keys are
// ordered by label id first, so all origins of one label form a
// contiguous run that the pop-shortcut rule scans with one binary
// search.
func packReach(lid uint32, org NodeID) uint64 {
	return uint64(lid)<<32 | uint64(uint32(org))
}

func reachParts(rk uint64) (lid uint32, org NodeID) {
	return uint32(rk >> 32), NodeID(uint32(rk))
}

// insertReach inserts rk into the sorted set s, reporting whether it
// was new. Membership is a binary search; insertion shifts the tail.
// Used for the single-key inserts (seeding, pointer-dual transfer);
// whole-set ε propagation goes through mergeReach instead, which is
// linear rather than per-key.
func insertReach(s []uint64, rk uint64) ([]uint64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= rk })
	if i < len(s) && s[i] == rk {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = rk
	return s, true
}

// mergeReach merges the sorted set src into the sorted set dst in
// O(|dst|+|src|), reporting whether dst grew. The merged result is
// assembled in *scratch; when dst grew, the old dst storage is
// recycled as the next scratch, so steady-state saturation merges
// allocate nothing. dst, src and *scratch must be distinct slices.
func mergeReach(dst, src []uint64, scratch *[]uint64) ([]uint64, bool) {
	if len(src) == 0 {
		return dst, false
	}
	if len(dst) == 0 {
		out := append((*scratch)[:0], src...)
		*scratch = dst
		return out, true
	}
	out := (*scratch)[:0]
	i, j := 0, 0
	grew := false
	for i < len(dst) && j < len(src) {
		switch {
		case dst[i] < src[j]:
			out = append(out, dst[i])
			i++
		case dst[i] > src[j]:
			out = append(out, src[j])
			j++
			grew = true
		default:
			out = append(out, dst[i])
			i++
			j++
		}
	}
	out = append(out, dst[i:]...)
	if j < len(src) {
		out = append(out, src[j:]...)
		grew = true
	}
	if !grew {
		*scratch = out[:0] // keep any capacity the merge grew
		return dst, false
	}
	*scratch = dst[:0]
	return out, true
}

// Saturate runs Algorithm D.2 to fixpoint. It is idempotent.
func (g *Graph) Saturate() {
	if g.saturated {
		return
	}
	g.saturated = true

	n := len(g.nodes)
	for len(g.satReach) < n {
		g.satReach = append(g.satReach, nil)
	}
	r := g.satReach[:n]

	work := g.satWork[:0]
	if cap(g.satIn) < n {
		g.satIn = make([]bool, n)
	}
	inWork := g.satIn[:n]
	for i := range inWork {
		inWork[i] = false
	}
	enqueue := func(id NodeID) {
		if !inWork[id] {
			inWork[id] = true
			work = append(work, id)
		}
	}

	addReach := func(id NodeID, rk uint64) {
		set, added := insertReach(r[id], rk)
		r[id] = set
		if added {
			enqueue(id)
		}
	}

	// Seed: every push edge (from --push ℓ--> to) makes (ℓ, from) reach
	// to.
	for from := range g.pushes {
		for _, e := range g.pushes[from] {
			addReach(e.to, packReach(e.lid, NodeID(from)))
		}
	}

	// process applies, for node id with reach set r[id]:
	//   (a) propagation along outgoing ε edges,
	//   (b) the lazy S-POINTER transfer when id has variance ⊖,
	//   (c) the shortcut rule on outgoing pop edges.
	//
	// Iterating r[id] by index while addReach runs is safe: every
	// target set belongs to a different node (ε edges and pointer duals
	// are never self-loops), so r[id] is not reallocated mid-loop.
	process := func(id NodeID) {
		node := g.nodes[id]
		// (b) first, so (c) sees the transferred labels on the dual node.
		// Pointer-access labels are ids 0 (.load) and 1 (.store); the
		// dual flips the low bit. They sort first, so the scan stops at
		// the first non-pointer key.
		if node.Var == label.Contravariant {
			dualID, ok := g.NodeOf(node.DTV, label.Covariant)
			if ok {
				for _, rk := range r[id] {
					lid, org := reachParts(rk)
					if lid > 1 {
						break
					}
					addReach(dualID, packReach(lid^1, org))
				}
			}
		}
		for _, succ := range g.eps[id] {
			merged, grew := mergeReach(r[succ], r[id], &g.satScratch)
			if grew {
				r[succ] = merged
				enqueue(succ)
			}
		}
		for _, pe := range g.pops[id] {
			// All reaches of pe's label form one contiguous run.
			set := r[id]
			lo := sort.Search(len(set), func(i int) bool { return set[i] >= packReach(pe.lid, 0) })
			for _, rk := range set[lo:] {
				lid, org := reachParts(rk)
				if lid != pe.lid {
					break
				}
				if org != pe.to {
					if g.addEps(org, pe.to) {
						// New ε edge: its source must re-propagate.
						enqueue(org)
					}
				}
			}
		}
	}

	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		process(id)
	}
	g.satWork = work[:0]
}

// EpsSucc returns the ε successors of id (shared slice; do not mutate).
func (g *Graph) EpsSucc(id NodeID) []NodeID { return g.eps[id] }

// PopSucc invokes f for each pop edge out of id.
func (g *Graph) PopSucc(id NodeID, f func(l label.Label, to NodeID)) {
	for _, e := range g.pops[id] {
		f(e.lbl, e.to)
	}
}

// PushSucc invokes f for each push edge out of id.
func (g *Graph) PushSucc(id NodeID, f func(l label.Label, to NodeID)) {
	for _, e := range g.pushes[id] {
		f(e.lbl, e.to)
	}
}

// ConstNodes returns the covariant nodes of lattice constants, sorted by
// node id for determinism.
func (g *Graph) ConstNodes() []NodeID {
	out := make([]NodeID, 0, len(g.constOf))
	for id := range g.constOf {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConstElem reports the lattice element of a constant node.
func (g *Graph) ConstElem(id NodeID) (lattice.Elem, bool) {
	e, ok := g.constOf[id]
	return e, ok
}

// Proves decides whether the constraint set entails l ⊑ r, by searching
// for a canonical pop*·ε*·push* path from (l.Base, ⟨l.Path⟩) to
// (r.Base, ⟨r.Path⟩) in the saturated graph (Theorem D.1).
func (g *Graph) Proves(l, r constraints.DTV) bool {
	if l == r {
		return true // S-REFL
	}
	g.Saturate()
	lPath, rPath := l.Path(), r.Path()

	// Phase 0: consume l.Path via pop edges, ε edges allowed anywhere.
	start, ok := g.NodeOf(constraints.BaseDTV(l.Base()), lPath.Variance())
	if !ok {
		return false
	}
	type popState struct {
		n NodeID
		i int
	}
	seen := map[popState]bool{}
	var stack []popState
	push0 := func(s popState) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	push0(popState{start, 0})
	var frontier []NodeID // states with the full l.Path consumed
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.i == len(lPath) {
			frontier = append(frontier, s.n)
		}
		for _, succ := range g.eps[s.n] {
			push0(popState{succ, s.i})
		}
		if s.i < len(lPath) {
			want := lPath[s.i]
			for _, e := range g.pops[s.n] {
				if e.lbl == want {
					push0(popState{e.to, s.i + 1})
				}
			}
		}
	}
	if len(frontier) == 0 {
		return false
	}

	// Phase 1: emit r.Path via push edges; push edges emit the word
	// back-to-front (deepest label last stripped), so k counts down.
	goal, ok := g.NodeOf(constraints.BaseDTV(r.Base()), rPath.Variance())
	if !ok {
		return false
	}
	type pushState struct {
		n NodeID
		k int
	}
	seen1 := map[pushState]bool{}
	var stack1 []pushState
	push1 := func(s pushState) {
		if !seen1[s] {
			seen1[s] = true
			stack1 = append(stack1, s)
		}
	}
	for _, n := range frontier {
		push1(pushState{n, len(rPath)})
	}
	for len(stack1) > 0 {
		s := stack1[len(stack1)-1]
		stack1 = stack1[:len(stack1)-1]
		if s.k == 0 && s.n == goal {
			return true
		}
		for _, succ := range g.eps[s.n] {
			push1(pushState{succ, s.k})
		}
		if s.k > 0 {
			want := rPath[s.k-1]
			for _, e := range g.pushes[s.n] {
				if e.lbl == want {
					push1(pushState{e.to, s.k - 1})
				}
			}
		}
	}
	return false
}
