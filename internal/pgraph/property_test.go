package pgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
)

// randomConstraintSet builds a random constraint set over a small
// vocabulary of base variables and labels, mimicking the shapes the
// abstract interpreter produces (copies, loads, stores, interface
// bindings, constants).
func randomConstraintSet(r *rand.Rand, nvars, ncons int) *constraints.Set {
	vars := []string{"F.in_stack0", "F.in_stack4", "F.out_eax"}
	for i := 0; i < nvars; i++ {
		vars = append(vars, fmt.Sprintf("v%d", i))
	}
	consts := []string{"int", "str", "size_t", "#FileDescriptor"}
	randDTV := func(base string) constraints.DTV {
		d, _ := constraints.ParseDTV(base)
		// Extend with 0-2 labels.
		for k := r.Intn(3); k > 0; k-- {
			switch r.Intn(4) {
			case 0:
				d = d.Append(label.Load())
			case 1:
				d = d.Append(label.Store())
			default:
				d = d.Append(label.Field(32, 4*r.Intn(3)))
			}
		}
		return d
	}
	cs := constraints.NewSet()
	for i := 0; i < ncons; i++ {
		switch r.Intn(10) {
		case 0: // upper-bound constant
			cs.AddSub(randDTV(vars[r.Intn(len(vars))]), constraints.BaseDTV(constraints.Var(consts[r.Intn(len(consts))])))
		case 1: // lower-bound constant
			cs.AddSub(constraints.BaseDTV(constraints.Var(consts[r.Intn(len(consts))])), randDTV(vars[r.Intn(len(vars))]))
		default:
			cs.AddSub(randDTV(vars[r.Intn(len(vars))]), randDTV(vars[r.Intn(len(vars))]))
		}
	}
	return cs
}

// interestingQueries enumerates judgement candidates between interesting
// endpoints for a constraint set.
func interestingQueries(r *rand.Rand) [][2]constraints.DTV {
	words := []string{
		"F.in_stack0", "F.in_stack4", "F.out_eax",
		"F.in_stack0.load.σ32@0", "F.in_stack0.load.σ32@4",
		"F.in_stack0.store.σ32@0", "F.out_eax.load.σ32@0",
		"F.in_stack0.load.σ32@0.load.σ32@4",
	}
	consts := []string{"int", "str", "size_t", "#FileDescriptor"}
	var qs [][2]constraints.DTV
	mk := func(s string) constraints.DTV {
		d, _ := constraints.ParseDTV(s)
		return d
	}
	for _, w := range words {
		for _, k := range consts {
			qs = append(qs, [2]constraints.DTV{mk(w), mk(k)})
			qs = append(qs, [2]constraints.DTV{mk(k), mk(w)})
		}
	}
	for _, a := range words {
		for _, b := range words {
			if a != b && r.Intn(3) == 0 {
				qs = append(qs, [2]constraints.DTV{mk(a), mk(b)})
			}
		}
	}
	return qs
}

// TestSimplifyPreservesEntailment is the central property test of the
// whole solver: for random constraint sets, the simplification relative
// to {F} must entail exactly the same interesting judgements as the
// original set (Definition 5.1 — a simplification is both sound and
// complete for interesting consequences).
func TestSimplifyPreservesEntailment(t *testing.T) {
	r := rand.New(rand.NewSource(20160613))
	lat := lattice.Default()
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		cs := randomConstraintSet(r, 4+r.Intn(4), 6+r.Intn(14))
		g := Build(cs, lat)
		g.Saturate()
		res := g.Simplify(func(v constraints.Var) bool { return v == "F" })
		g2 := Build(res.Constraints, lat)
		g2.Saturate()

		for _, q := range interestingQueries(r) {
			orig := g.Proves(q[0], q[1])
			simp := g2.Proves(q[0], q[1])
			if orig && !simp {
				t.Fatalf("trial %d: simplification LOST %s ⊑ %s\noriginal:\n%s\nsimplified:\n%s",
					trial, q[0], q[1], cs, res.Constraints)
			}
			if !orig && simp {
				t.Fatalf("trial %d: simplification INVENTED %s ⊑ %s\noriginal:\n%s\nsimplified:\n%s",
					trial, q[0], q[1], cs, res.Constraints)
			}
		}
	}
}

// TestSaturationMonotone: saturating twice is the same as once, and
// Proves is stable across repeated queries (no hidden state).
func TestSaturationMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	lat := lattice.Default()
	for trial := 0; trial < 20; trial++ {
		cs := randomConstraintSet(r, 5, 12)
		g := Build(cs, lat)
		g.Saturate()
		n1 := g.NumNodes()
		g.Saturate()
		if g.NumNodes() != n1 {
			t.Fatal("second Saturate changed the graph")
		}
		q := interestingQueries(r)
		for _, pair := range q[:8] {
			a := g.Proves(pair[0], pair[1])
			b := g.Proves(pair[0], pair[1])
			if a != b {
				t.Fatal("Proves is not stable")
			}
		}
	}
}

// TestProvesRespectsAxioms: every axiom of the input set is derivable
// from it (soundness floor), and reflexivity always holds.
func TestProvesRespectsAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	lat := lattice.Default()
	for trial := 0; trial < 30; trial++ {
		cs := randomConstraintSet(r, 4, 10)
		g := Build(cs, lat)
		g.Saturate()
		for _, c := range cs.Subtypes() {
			if !g.Proves(c.L, c.R) {
				t.Fatalf("axiom not derivable: %s from\n%s", c, cs)
			}
		}
	}
}

// TestTransitivityProperty: derivability is transitive on sampled
// triples (S-TRANS at the query level).
func TestTransitivityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	lat := lattice.Default()
	mk := func(s string) constraints.DTV {
		d, _ := constraints.ParseDTV(s)
		return d
	}
	words := []string{"F.in_stack0", "F.out_eax", "int", "str", "F.in_stack0.load.σ32@0"}
	for trial := 0; trial < 25; trial++ {
		cs := randomConstraintSet(r, 4, 12)
		g := Build(cs, lat)
		g.Saturate()
		for _, a := range words {
			for _, b := range words {
				for _, c := range words {
					if g.Proves(mk(a), mk(b)) && g.Proves(mk(b), mk(c)) {
						if !g.Proves(mk(a), mk(c)) {
							t.Fatalf("transitivity broken: %s ⊑ %s ⊑ %s but not %s ⊑ %s\n%s",
								a, b, c, a, c, cs)
						}
					}
				}
			}
		}
	}
}
