package pgraph

import (
	"encoding/binary"
	"fmt"

	"retypd/internal/constraints"
	"retypd/internal/lru"
)

// Wire encoding of simplification-memo entries. A Key is portable by
// construction since the fingerprint digest is computed over canonical
// bytes (FPVersion documents the compatibility contract); a cached
// SimplifyResult is stored root-canonicalized, so its constraint set
// mentions only canonical ¤k names, lattice constants and fresh
// existentials — all plain strings — and round-trips through the
// constraints wire encoding with insertion order preserved.

// AppendWire appends k's canonical wire form to buf: the 32-byte
// fingerprint digest followed by uvarint(root index).
func (k Key) AppendWire(buf []byte) []byte {
	buf = append(buf, k.sum[:]...)
	return binary.AppendUvarint(buf, uint64(k.root))
}

// DecodeKeyWire decodes one Key from the front of data, returning the
// bytes consumed.
func DecodeKeyWire(data []byte) (Key, int, error) {
	var k Key
	if len(data) < len(k.sum) {
		return Key{}, 0, fmt.Errorf("pgraph: truncated fingerprint key")
	}
	copy(k.sum[:], data)
	n := len(k.sum)
	root, m := binary.Uvarint(data[n:])
	if m <= 0 || root > 0xffffffff {
		return Key{}, 0, fmt.Errorf("pgraph: truncated root index in fingerprint key")
	}
	k.root = uint32(root)
	return k, n + m, nil
}

// appendResultWire appends a cached (canonical-form) SimplifyResult.
func appendResultWire(buf []byte, res *SimplifyResult) []byte {
	buf = res.Constraints.AppendWire(buf)
	buf = binary.AppendUvarint(buf, uint64(len(res.Existential)))
	for _, v := range res.Existential {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

// decodeResultWire decodes one cached SimplifyResult.
func decodeResultWire(data []byte) (*SimplifyResult, int, error) {
	cs, n, err := constraints.DecodeSetWire(data)
	if err != nil {
		return nil, 0, err
	}
	count, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("pgraph: truncated existential count")
	}
	n += m
	res := &SimplifyResult{Constraints: cs}
	for i := uint64(0); i < count; i++ {
		ln, m := binary.Uvarint(data[n:])
		if m <= 0 || uint64(len(data)-n-m) < ln {
			return nil, 0, fmt.Errorf("pgraph: truncated existential variable")
		}
		n += m
		res.Existential = append(res.Existential, constraints.Var(data[n:n+int(ln)]))
		n += int(ln)
	}
	return res, n, nil
}

// AppendWire appends the cache's entries to buf in recency order:
// uvarint(count), then per entry the key followed by the canonical
// result. The snapshot is consistent; concurrent lookups keep working.
func (c *SimplifyCache) AppendWire(buf []byte) []byte {
	entries := c.lru.Export()
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = e.Key.AppendWire(buf)
		buf = appendResultWire(buf, e.Val)
	}
	return buf
}

// LoadWire decodes entries produced by AppendWire (typically in a
// different process) into the cache, preserving recency order, and
// returns the bytes consumed plus the number of entries loaded. A
// malformed entry aborts the load with an error; file-level integrity
// is the caller's concern (solver's cache files carry a checksum).
func (c *SimplifyCache) LoadWire(data []byte) (n, loaded int, err error) {
	count, m := binary.Uvarint(data)
	if m <= 0 {
		return 0, 0, fmt.Errorf("pgraph: truncated cache entry count")
	}
	n = m
	// Each entry encodes at least a fingerprint key; a count beyond the
	// remaining bytes is corrupt, and pre-sizing from it would let a
	// crafted count allocate unboundedly.
	if count > uint64(len(data)-n) {
		return 0, 0, fmt.Errorf("pgraph: cache entry count %d exceeds wire form size", count)
	}
	entries := make([]lru.Entry[Key, *SimplifyResult], 0, count)
	for i := uint64(0); i < count; i++ {
		key, m, err := DecodeKeyWire(data[n:])
		if err != nil {
			return 0, 0, err
		}
		n += m
		res, m, err := decodeResultWire(data[n:])
		if err != nil {
			return 0, 0, err
		}
		n += m
		entries = append(entries, lru.Entry[Key, *SimplifyResult]{Key: key, Val: res})
	}
	c.lru.Import(entries)
	return n, len(entries), nil
}
