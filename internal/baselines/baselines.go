// Package baselines re-implements the algorithmic cores of the systems
// the paper compares against (§6.5, §7):
//
//   - Unify: a SecondWrite-style unification-based inference — the very
//     same constraints, but solved by congruence closure (every value
//     copy unifies the two types). Over-unification through false
//     register parameters, shared zero constants and fortuitous value
//     reuse degrades it exactly as §2.1/§2.5 describe.
//   - TIEStyle: a TIE-style monomorphic subtype inference with upper
//     and lower bounds but no polymorphism and no recursive types
//     (sketch depth is truncated; §7 notes TIE lacks recursive types).
//   - RewardsStyle: a REWARDS-style trace-based unification — the
//     unification solver restricted to instructions covered by a
//     simulated dynamic trace.
//
// Each baseline produces the same Outcome shape as the main pipeline so
// that the evaluation harness scores all systems identically.
package baselines

import (
	"hash/fnv"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
	"retypd/internal/solver"
	"retypd/internal/summaries"
)

// Outcome is the scored interface of a system run.
type Outcome struct {
	Lat     *lattice.Lattice
	Formals map[string][]cfg.Loc
	HasOut  map[string]bool
	// ParamSk and OutSk return nil when the system produced nothing.
	ParamSk func(proc, loc string) *sketch.Sketch
	OutSk   func(proc string) *sketch.Sketch
	// BodyDedupHits/Misses report the solver's whole-body dedup layer
	// for this run (zero for systems that bypass the solver pipeline —
	// unlike the scheme/shape memos, the dedup table is per-run, so its
	// stats surface per outcome rather than on a shared cache object).
	BodyDedupHits, BodyDedupMisses uint64
}

// System is a runnable type-inference configuration.
type System struct {
	Name string
	Run  func(prog *asm.Program, lat *lattice.Lattice) *Outcome
}

// Retypd is the paper's system (the main pipeline).
func Retypd() System { return RetypdEngine(nil) }

// RetypdEngine is Retypd running inside a caller-provided long-lived
// solver.Engine: every Run shares the engine's scheme-simplification
// and shape memos (with any other system on the same engine). Sharing
// is sound across programs and configurations — cache safety comes
// from the canonical keys, see the contracts on pgraph.SimplifyCache
// and sketch.ShapeCache — and lets duplicate leaf procedures across a
// whole benchmark suite be simplified and shape-solved once. A nil
// engine gives each Run a private one-shot pipeline.
func RetypdEngine(eng *solver.Engine) System {
	return System{Name: "Retypd", Run: func(prog *asm.Program, lat *lattice.Lattice) *Outcome {
		opts := solver.DefaultOptions()
		opts.KeepIntermediates = false
		var res *solver.Result
		if eng != nil {
			res = eng.Infer(prog, lat, nil, opts)
		} else {
			res = solver.Infer(prog, lat, nil, opts)
		}
		return outcomeFromSolver(res, lat)
	}}
}

// TIEStyle is the monomorphic, recursion-free subtype baseline.
func TIEStyle() System { return TIEStyleEngine(nil) }

// TIEStyleEngine is TIEStyle sharing a solver.Engine; see RetypdEngine.
// Sharing one engine with Retypd is sound even though TIE* truncates
// sketch depth — the depth bound is part of the shape-cache key.
func TIEStyleEngine(eng *solver.Engine) System {
	return System{Name: "TIE*", Run: func(prog *asm.Program, lat *lattice.Lattice) *Outcome {
		opts := solver.DefaultOptions()
		opts.KeepIntermediates = false
		opts.Absint = absint.Options{MonomorphicCalls: true, PolymorphicExternals: true}
		opts.MaxSketchDepth = 3
		opts.NoSpecialize = true
		var res *solver.Result
		if eng != nil {
			res = eng.Infer(prog, lat, nil, opts)
		} else {
			res = solver.Infer(prog, lat, nil, opts)
		}
		return outcomeFromSolver(res, lat)
	}}
}

func outcomeFromSolver(res *solver.Result, lat *lattice.Lattice) *Outcome {
	o := &Outcome{
		Lat:             lat,
		Formals:         map[string][]cfg.Loc{},
		HasOut:          map[string]bool{},
		BodyDedupHits:   res.BodyDedupHits,
		BodyDedupMisses: res.BodyDedupMisses,
	}
	for name, pi := range res.Infos {
		o.Formals[name] = pi.FormalIns
		o.HasOut[name] = pi.HasOut
	}
	o.ParamSk = func(proc, loc string) *sketch.Sketch {
		pr, ok := res.Procs[proc]
		if !ok {
			return nil
		}
		if sk, ok := pr.InSketch(loc); ok {
			return sk
		}
		return nil
	}
	o.OutSk = func(proc string) *sketch.Sketch {
		pr, ok := res.Procs[proc]
		if !ok {
			return nil
		}
		if sk, ok := pr.OutSketch(); ok {
			return sk
		}
		return nil
	}
	return o
}

// Unify is the SecondWrite-style unification baseline. Externals are
// monomorphic too: without per-allocation-site points-to precision,
// every malloc result shares one type variable — the §2.7 degradation
// the paper attributes to SecondWrite on large programs.
func Unify() System {
	return System{Name: "SecondWrite*", Run: func(prog *asm.Program, lat *lattice.Lattice) *Outcome {
		return runUnify(prog, lat, nil, false)
	}}
}

// RewardsStyle is the trace-restricted unification baseline; coverage
// simulates a dynamic run that executes roughly the given fraction of
// each procedure's instructions (deterministic in the name and index).
func RewardsStyle(coverage float64) System {
	return System{Name: "REWARDS*", Run: func(prog *asm.Program, lat *lattice.Lattice) *Outcome {
		covered := func(proc string, idx int) bool {
			h := fnv.New32a()
			_, _ = h.Write([]byte(proc))
			v := h.Sum32() ^ uint32(idx*2654435761)
			return float64(v%1000)/1000 < coverage
		}
		// Traces separate callsites naturally (each dynamic call is
		// its own event), so externals stay per-callsite.
		return runUnify(prog, lat, covered, true)
	}}
}

func runUnify(prog *asm.Program, lat *lattice.Lattice, covered func(string, int) bool, polyExt bool) *Outcome {
	infos := cfg.AnalyzeProgram(prog)
	sums := summaries.Default()
	isConst := func(v constraints.Var) bool {
		_, ok := lat.Elem(string(v))
		return ok
	}
	opts := absint.Options{
		MonomorphicCalls:      true,
		PolymorphicExternals:  polyExt,
		NoConstantSuppression: true,
		Covered:               covered,
	}
	global := constraints.NewSet()
	for _, p := range prog.Procs {
		gr := absint.Generate(infos[p.Name], infos, nil, sums, isConst, opts)
		global.InsertAll(gr.Constraints)
	}
	// The quotient IS unification: subtype edges become equalities.
	shapes := sketch.NewBuilder(global, lat)

	o := &Outcome{
		Lat:     lat,
		Formals: map[string][]cfg.Loc{},
		HasOut:  map[string]bool{},
	}
	for name, pi := range infos {
		o.Formals[name] = pi.FormalIns
		o.HasOut[name] = pi.HasOut
	}
	descend := func(proc string, w label.Word) *sketch.Sketch {
		root := shapes.SketchForUnify(constraints.Var(proc), 6)
		if sub, ok := root.Descend(w); ok {
			return sub
		}
		return nil
	}
	o.ParamSk = func(proc, loc string) *sketch.Sketch {
		return descend(proc, label.Word{label.In(loc)})
	}
	o.OutSk = func(proc string) *sketch.Sketch {
		return descend(proc, label.Word{label.Out("eax")})
	}
	return o
}
