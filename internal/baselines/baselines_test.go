package baselines

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/label"
	"retypd/internal/lattice"
)

// twoAllocators has two malloc wrappers with different pointee shapes —
// the §2.2 program that separates polymorphic subtype inference from
// monomorphic unification.
const twoAllocators = `
proc alloc_list
    push 8
    call malloc
    add esp, 4
    mov [eax], eax
    ret
endproc

proc alloc_pair
    push 12
    call malloc
    add esp, 4
    mov ecx, [eax+8]
    ret
endproc
`

func parse(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// TestSystemsRunAndPopulateOutcome: every baseline produces a usable
// Outcome over the same program (formals, HasOut, sketch accessors).
func TestSystemsRunAndPopulateOutcome(t *testing.T) {
	prog := parse(t, twoAllocators)
	lat := lattice.Default()
	for _, sys := range []System{Retypd(), TIEStyle(), Unify(), RewardsStyle(0.6)} {
		t.Run(sys.Name, func(t *testing.T) {
			o := sys.Run(prog, lat)
			if o.Lat != lat {
				t.Error("outcome lattice not propagated")
			}
			for _, proc := range []string{"alloc_list", "alloc_pair"} {
				if _, ok := o.Formals[proc]; !ok {
					t.Errorf("missing formals for %s", proc)
				}
				if !o.HasOut[proc] {
					t.Errorf("%s must have an output", proc)
				}
			}
			if sk := o.OutSk("no_such_proc"); sk != nil {
				t.Error("OutSk for unknown procedure must be nil")
			}
			if sk := o.ParamSk("no_such_proc", "stack0"); sk != nil {
				t.Error("ParamSk for unknown procedure must be nil")
			}
		})
	}
}

// TestRetypdVsUnifyPolymorphism is the end-to-end §2.2 comparison: the
// subtype system keeps the two allocators' return types independent,
// while the unification baseline (monomorphic externals) gives both
// wrappers one merged malloc result shape.
func TestRetypdVsUnifyPolymorphism(t *testing.T) {
	prog := parse(t, twoAllocators)
	lat := lattice.Default()

	ret := Retypd().Run(prog, lat)
	listOut := ret.OutSk("alloc_list")
	pairOut := ret.OutSk("alloc_pair")
	if listOut == nil || pairOut == nil {
		t.Fatal("Retypd produced no out sketches")
	}
	// alloc_pair reads field σ32@8; alloc_list must not absorb it.
	field8 := label.Word{label.Load(), label.Field(32, 8)}
	if !pairOut.Accepts(field8) {
		t.Fatalf("Retypd lost alloc_pair's σ32@8 field:\n%s", pairOut)
	}
	if listOut.Accepts(field8) {
		t.Errorf("Retypd leaked alloc_pair's field into alloc_list — callsite polymorphism broken:\n%s", listOut)
	}

	uni := Unify().Run(prog, lat)
	uListOut := uni.OutSk("alloc_list")
	uPairOut := uni.OutSk("alloc_pair")
	if uListOut == nil || uPairOut == nil {
		t.Fatal("Unify produced no out sketches")
	}
	if !uListOut.Accepts(field8) {
		t.Errorf("unification baseline kept the malloc results separate — it should over-unify (§2.7):\n%s", uListOut)
	}
}

// TestTIEStyleTruncatesRecursion: the TIE baseline caps sketch depth
// (no recursive types, §7), so a recursive list type must be cut off.
func TestTIEStyleTruncatesRecursion(t *testing.T) {
	prog := parse(t, `
proc walk
    mov eax, [esp+4]
L:
    mov eax, [eax]
    test eax, eax
    jnz L
    ret
endproc
`)
	lat := lattice.Default()
	o := TIEStyle().Run(prog, lat)
	sk := o.ParamSk("walk", "stack0")
	if sk == nil {
		t.Fatal("TIE* produced no parameter sketch")
	}
	deep := label.Word{}
	for i := 0; i < 8; i++ {
		deep = append(deep, label.Load(), label.Field(32, 0))
	}
	if sk.Accepts(deep) {
		t.Errorf("TIE* sketch accepts an 8-deep recursive word — depth truncation lost:\n%s", sk)
	}
}

// TestRewardsCoverageMonotone: a zero-coverage trace yields no typed
// instructions; raising coverage can only add information.
func TestRewardsCoverageMonotone(t *testing.T) {
	prog := parse(t, twoAllocators)
	lat := lattice.Default()

	zero := RewardsStyle(0).Run(prog, lat)
	full := RewardsStyle(1).Run(prog, lat)
	// With full coverage the allocators' return pointers are visible.
	if sk := full.OutSk("alloc_pair"); sk == nil || !sk.Accepts(label.Word{label.Load()}) {
		t.Error("full-coverage REWARDS* lost the return pointer")
	}
	// Zero coverage may still know the interface (liveness), but must
	// not have recovered the field access.
	if sk := zero.OutSk("alloc_pair"); sk != nil &&
		sk.Accepts(label.Word{label.Load(), label.Field(32, 8)}) {
		t.Error("zero-coverage REWARDS* recovered a field it never executed")
	}
}
