package asm

import (
	"errors"
	"os"
	"strings"
	"testing"

	"retypd/internal/fuzzcorpus"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus; set
// RETYPD_WRITE_FUZZ_CORPUS=1 after changing the source language.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RETYPD_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set RETYPD_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	if err := fuzzcorpus.Write("testdata/fuzz/FuzzParseAsm", fuzzAsmSeeds()); err != nil {
		t.Fatal(err)
	}
}

// fuzzAsmSeeds covers the grammar's surface — every mnemonic family,
// labels, comments, hex literals, memory operands — plus the error
// paths (nested proc, dangling proc, unknown label, malformed operand)
// so the fuzzer starts from both sides of the accept/reject boundary.
func fuzzAsmSeeds() [][]byte {
	srcs := []string{
		"proc f\n  mov eax, [ebp+8]\n  ret\nendproc\n",
		"; comment\nproc g\nloop:\n  add eax, 1\n  jnz loop\n  call f\n  ret\nendproc\n",
		"proc h\n  mov ebx, 0x10\n  cmp eax, ebx\n  jz done\n  mov [esp+4], eax\ndone:\n  leave\n  ret\nendproc\n",
		"proc p\n  push eax\n  pop ebx\n  nop\n  ret\nendproc\n",
		"proc a\n  ret\nendproc\nproc b\n  call a\n  ret\nendproc\n",
		// Error paths.
		"proc f\nproc g\n",
		"proc f\n  jz nowhere\n  ret\nendproc\n",
		"mov eax, ebx\n",
		"proc f\n  mov\n  ret\nendproc\n",
		"proc f\n  mov eax, [ebp+\n  ret\nendproc\n",
		"proc f\n  ret\n",
		"endproc\n",
	}
	out := make([][]byte, len(srcs))
	for i, s := range srcs {
		out[i] = []byte(s)
	}
	return out
}

// FuzzParseAsm: arbitrary source must either parse or fail with a
// structured *ParseError — never panic, never return both nil. The
// parser is a trust boundary for the future server, so every rejection
// must be a typed, line-anchored error a caller can render. Accepted
// programs must be internally consistent (every JCC target resolved,
// every instruction renderable and individually re-parseable).
func FuzzParseAsm(f *testing.F) {
	for _, seed := range fuzzAsmSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := Parse(string(data))
		if err != nil {
			if prog != nil {
				t.Fatal("Parse returned both a program and an error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse error is not a *ParseError: %T %v", err, err)
			}
			if pe.Line < 0 || !strings.HasPrefix(pe.Error(), "asm:") {
				t.Fatalf("malformed ParseError: line=%d text=%q", pe.Line, pe.Error())
			}
			return
		}
		if prog == nil {
			t.Fatal("Parse returned neither a program nor an error")
		}
		for _, p := range prog.Procs {
			for _, in := range p.Insts {
				if in.Op == JCC {
					if _, ok := p.Labels[in.Target]; !ok {
						t.Fatalf("accepted program has unresolved label %q in %s", in.Target, p.Name)
					}
					continue // a lone jcc does not re-parse without its label
				}
				if s := in.String(); s != "" && in.Op != CALL {
					if _, err := parseInst(s); err != nil {
						t.Fatalf("accepted instruction %q does not re-parse: %v", s, err)
					}
				}
			}
		}
	})
}
