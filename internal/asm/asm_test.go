package asm

import (
	"sort"
	"strings"
	"testing"
)

// TestParseBasics exercises the core syntax.
func TestParseBasics(t *testing.T) {
	p, err := Parse(`
; a comment
proc f
start:
    mov eax, [ebp+8]
    movb cl, [eax]      ; parse error expected? no: cl is not a register
endproc
`)
	if err == nil {
		t.Errorf("cl should not parse as a register, got %v", p)
	}

	p, err = Parse(`
proc f
top:
    mov eax, [ebp+8]
    mov [esp-4], eax
    add eax, 0x10
    push 42
    pop ecx
    lea edx, [esp+12]
    test eax, eax
    jnz top
    call g
    jmp g
    ret
endproc

proc g
    xor eax, eax
    ret
endproc
`)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := p.Proc("f")
	if !ok {
		t.Fatal("missing f")
	}
	if len(f.Insts) != 11 {
		t.Errorf("f has %d instructions", len(f.Insts))
	}
	if f.Labels["top"] != 0 {
		t.Errorf("label top at %d", f.Labels["top"])
	}
	if got := f.Insts[2]; got.Op != ADD || got.Src.Imm != 16 {
		t.Errorf("hex immediate: %v", got)
	}
	if p.NumInsts() != 13 {
		t.Errorf("NumInsts = %d", p.NumInsts())
	}
}

// TestParseErrors enumerates rejected inputs.
func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"mov eax, ebx", // outside proc
		"proc f\nret",  // missing endproc
		"proc f\nret\nendproc\nproc f\nret\nendproc", // duplicate
		"proc f\njz nowhere\nret\nendproc",           // unknown label
		"proc f\nmov [eax], [ebx]\nret\nendproc",     // mem-to-mem
		"proc f\nlea eax, ebx\nret\nendproc",         // lea needs memory
		"proc f\nbogus eax, 1\nret\nendproc",         // unknown mnemonic
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// TestOperandRendering: String forms round trip through the parser.
func TestOperandRendering(t *testing.T) {
	src := `
proc f
    mov eax, [ebp-12]
    movw [esi+2], ecx
    sub esp, 8
    jle done
done:
    leave
    ret
endproc
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, in := range p.Procs[0].Insts {
		lines = append(lines, in.String())
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{"[ebp-12]", "movw [esi+2], ecx", "jle done", "leave"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q in:\n%s", want, text)
		}
	}
	// Reparse the rendered body (labels re-inserted at their indices).
	var withLabels []string
	for i, in := range p.Procs[0].Insts {
		var names []string
		for name, idx := range p.Procs[0].Labels {
			if idx == i {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			withLabels = append(withLabels, name+":")
		}
		withLabels = append(withLabels, in.String())
	}
	if _, err := Parse("proc f\n" + strings.Join(withLabels, "\n") + "\nendproc\n"); err != nil {
		t.Errorf("rendered instructions do not reparse: %v", err)
	}
}

// TestConditionalZoo: every conditional mnemonic parses to JCC.
func TestConditionalZoo(t *testing.T) {
	for cond := range condNames {
		src := "proc f\nl:\n    " + cond + " l\n    ret\nendproc\n"
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", cond, err)
		}
		if p.Procs[0].Insts[0].Op != JCC || p.Procs[0].Insts[0].Cond != cond {
			t.Errorf("%s parsed to %v", cond, p.Procs[0].Insts[0])
		}
	}
}
