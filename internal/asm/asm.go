// Package asm implements the machine-code substrate of the
// reproduction: a 32-bit x86-like assembly language with a textual
// format, standing in for the binaries that the paper's CodeSurfer
// front end disassembles (§4.1).
//
// The instruction set covers the idioms catalogued in §2 of the paper:
// register and memory moves with 8/16/32-bit widths, stack
// manipulation, arithmetic with the flag-only and constant-encoding
// special cases of Appendix A.5.2, direct and conditional jumps, calls,
// and tail-call jumps to other procedures.
package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Reg is a 32-bit general-purpose register.
type Reg uint8

// Register names.
const (
	EAX Reg = iota
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
	NumRegs
	NoReg Reg = 0xff
)

var regNames = [...]string{"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"}

// String renders the register name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// ParseReg parses a register name.
func ParseReg(s string) (Reg, bool) {
	for i, n := range regNames {
		if n == s {
			return Reg(i), true
		}
	}
	return NoReg, false
}

// OperandKind discriminates Operand.
type OperandKind uint8

const (
	// OpNone marks an absent operand.
	OpNone OperandKind = iota
	// OpReg is a register operand.
	OpReg
	// OpImm is an immediate constant.
	OpImm
	// OpMem is a memory operand [base+disp].
	OpMem
)

// Operand is an instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg   // OpReg, or the base register of OpMem
	Imm  int32 // OpImm value, or OpMem displacement
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OpReg, Reg: r} }

// Imm makes an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OpImm, Imm: v} }

// Mem makes a memory operand [base+disp].
func Mem(base Reg, disp int32) Operand { return Operand{Kind: OpMem, Reg: base, Imm: disp} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpReg:
		return o.Reg.String()
	case OpImm:
		return strconv.Itoa(int(o.Imm))
	case OpMem:
		switch {
		case o.Imm > 0:
			return fmt.Sprintf("[%s+%d]", o.Reg, o.Imm)
		case o.Imm < 0:
			return fmt.Sprintf("[%s-%d]", o.Reg, -o.Imm)
		default:
			return fmt.Sprintf("[%s]", o.Reg)
		}
	default:
		return "<none>"
	}
}

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	NOP  Op = iota
	MOV     // mov dst, src (32-bit)
	MOVB    // 8-bit move
	MOVW    // 16-bit move
	LEA     // lea dst, [base+disp]
	PUSH
	POP
	ADD
	SUB
	IMUL
	XOR
	AND
	OR
	SHL
	SHR
	TEST
	CMP
	JMP // unconditional jump to label, or tail call to procedure
	JCC // any conditional jump (jz, jnz, jl, …)
	CALL
	RET
	LEAVE
)

var opNames = map[Op]string{
	NOP: "nop", MOV: "mov", MOVB: "movb", MOVW: "movw", LEA: "lea",
	PUSH: "push", POP: "pop", ADD: "add", SUB: "sub", IMUL: "imul",
	XOR: "xor", AND: "and", OR: "or", SHL: "shl", SHR: "shr",
	TEST: "test", CMP: "cmp", JMP: "jmp", JCC: "jcc", CALL: "call",
	RET: "ret", LEAVE: "leave",
}

// Bits reports the access width of a move opcode (32 for everything
// else).
func (op Op) Bits() int {
	switch op {
	case MOVB:
		return 8
	case MOVW:
		return 16
	default:
		return 32
	}
}

// Inst is one instruction. Control-flow targets are symbolic: Target
// names a label (JMP/JCC within the procedure) or a procedure
// (CALL/tail JMP).
type Inst struct {
	Op       Op
	Dst, Src Operand
	Target   string
	// Cond records the original mnemonic of a JCC ("jz", "jnz", …) for
	// display; all conditionals have the same CFG semantics here.
	Cond string
}

// String renders the instruction.
func (in Inst) String() string {
	name := opNames[in.Op]
	if in.Op == JCC {
		name = in.Cond
	}
	switch in.Op {
	case NOP, RET, LEAVE:
		return name
	case PUSH:
		return name + " " + in.Src.String()
	case POP:
		return name + " " + in.Dst.String()
	case JMP, JCC, CALL:
		return name + " " + in.Target
	case TEST, CMP:
		return fmt.Sprintf("%s %s, %s", name, in.Dst, in.Src)
	default:
		return fmt.Sprintf("%s %s, %s", name, in.Dst, in.Src)
	}
}

// Proc is a procedure: a named instruction sequence with resolved
// labels.
type Proc struct {
	Name   string
	Insts  []Inst
	Labels map[string]int // label → instruction index
}

// EqualBody reports whether other has the byte-for-byte same body as
// p: identical instruction streams (including display-only JCC
// mnemonics) and identical label names at identical positions. The
// procedures' names may differ. Incremental re-analysis uses it to
// decide which per-procedure CFG analyses can be reused verbatim.
func (p *Proc) EqualBody(other *Proc) bool {
	if len(p.Insts) != len(other.Insts) || len(p.Labels) != len(other.Labels) {
		return false
	}
	for i := range p.Insts {
		if p.Insts[i] != other.Insts[i] {
			return false
		}
	}
	for name, idx := range p.Labels {
		if oidx, ok := other.Labels[name]; !ok || oidx != idx {
			return false
		}
	}
	return true
}

// Program is a parsed assembly module.
type Program struct {
	Procs     []*Proc
	ProcIndex map[string]*Proc
}

// Proc returns the procedure named name, if present.
func (p *Program) Proc(name string) (*Proc, bool) {
	pr, ok := p.ProcIndex[name]
	return pr, ok
}

// NumInsts reports the total instruction count of the program (the
// size measure N used by the scaling experiments, Figure 11).
func (p *Program) NumInsts() int {
	n := 0
	for _, pr := range p.Procs {
		n += len(pr.Insts)
	}
	return n
}

// conditional mnemonics accepted by the parser.
var condNames = map[string]bool{
	"jz": true, "jnz": true, "je": true, "jne": true, "jl": true,
	"jle": true, "jg": true, "jge": true, "ja": true, "jae": true,
	"jb": true, "jbe": true, "js": true, "jns": true,
}

// ParseError is a structured parse failure: Line is the 1-based source
// line the error is anchored to (0 when the failure is not tied to one,
// like a missing endproc), Msg the bare message. It renders as the
// historical "asm:LINE: message" text, so callers that matched the
// string keep working; new callers (the CLIs' file:line diagnostics,
// the future server's input validation) destructure it instead.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("asm:%d: %s", e.Line, e.Msg)
	}
	return "asm: " + e.Msg
}

// parseErrf builds a *ParseError anchored to line.
func parseErrf(line int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses the textual assembly format:
//
//	; comment
//	proc name
//	loop:
//	    mov eax, [ebp+8]
//	    jnz loop
//	    call helper
//	    ret
//	endproc
//
// Labels end with ':'. Numbers may be decimal or 0x-prefixed hex.
func Parse(src string) (*Program, error) {
	prog := &Program{ProcIndex: map[string]*Proc{}}
	var cur *Proc
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "proc":
			if cur != nil {
				return nil, parseErrf(lineNo, "nested proc")
			}
			if len(fields) < 2 {
				return nil, parseErrf(lineNo, "proc needs a name")
			}
			cur = &Proc{Name: fields[1], Labels: map[string]int{}}
			continue
		case "endproc":
			if cur == nil {
				return nil, parseErrf(lineNo, "endproc outside proc")
			}
			if prog.ProcIndex[cur.Name] != nil {
				return nil, parseErrf(lineNo, "duplicate proc %q", cur.Name)
			}
			prog.Procs = append(prog.Procs, cur)
			prog.ProcIndex[cur.Name] = cur
			cur = nil
			continue
		}
		if cur == nil {
			return nil, parseErrf(lineNo, "instruction outside proc: %q", line)
		}
		if strings.HasSuffix(fields[0], ":") && len(fields) == 1 {
			cur.Labels[strings.TrimSuffix(fields[0], ":")] = len(cur.Insts)
			continue
		}
		inst, err := parseInst(line)
		if err != nil {
			return nil, parseErrf(lineNo, "%v", err)
		}
		cur.Insts = append(cur.Insts, inst)
	}
	if cur != nil {
		return nil, parseErrf(0, "missing endproc for %q", cur.Name)
	}
	// Validate label targets.
	for _, pr := range prog.Procs {
		for i, in := range pr.Insts {
			if in.Op == JCC {
				if _, ok := pr.Labels[in.Target]; !ok {
					return nil, parseErrf(0, "%s:%d: unknown label %q", pr.Name, i, in.Target)
				}
			}
		}
	}
	return prog, nil
}

// MustParse panics on error; for statically known sources.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInst(line string) (Inst, error) {
	sp := strings.IndexAny(line, " \t")
	mnemonic := line
	rest := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	args := splitArgs(rest)

	if condNames[mnemonic] {
		if len(args) != 1 {
			return Inst{}, fmt.Errorf("%s needs a label", mnemonic)
		}
		return Inst{Op: JCC, Target: args[0], Cond: mnemonic}, nil
	}
	switch mnemonic {
	case "nop":
		return Inst{Op: NOP}, nil
	case "ret":
		return Inst{Op: RET}, nil
	case "leave":
		return Inst{Op: LEAVE}, nil
	case "jmp":
		if len(args) != 1 {
			return Inst{}, fmt.Errorf("jmp needs a target")
		}
		return Inst{Op: JMP, Target: args[0]}, nil
	case "call":
		if len(args) != 1 {
			return Inst{}, fmt.Errorf("call needs a target")
		}
		return Inst{Op: CALL, Target: args[0]}, nil
	case "push":
		if len(args) != 1 {
			return Inst{}, fmt.Errorf("push needs an operand")
		}
		op, err := parseOperand(args[0])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Src: op}, nil
	case "pop":
		if len(args) != 1 {
			return Inst{}, fmt.Errorf("pop needs a register")
		}
		op, err := parseOperand(args[0])
		if err != nil {
			return Inst{}, err
		}
		if op.Kind != OpReg {
			return Inst{}, fmt.Errorf("pop needs a register")
		}
		return Inst{Op: POP, Dst: op}, nil
	}

	var op Op
	switch mnemonic {
	case "mov":
		op = MOV
	case "movb":
		op = MOVB
	case "movw":
		op = MOVW
	case "lea":
		op = LEA
	case "add":
		op = ADD
	case "sub":
		op = SUB
	case "imul":
		op = IMUL
	case "xor":
		op = XOR
	case "and":
		op = AND
	case "or":
		op = OR
	case "shl":
		op = SHL
	case "shr":
		op = SHR
	case "test":
		op = TEST
	case "cmp":
		op = CMP
	default:
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	if len(args) != 2 {
		return Inst{}, fmt.Errorf("%s needs 2 operands", mnemonic)
	}
	dst, err := parseOperand(args[0])
	if err != nil {
		return Inst{}, err
	}
	src, err := parseOperand(args[1])
	if err != nil {
		return Inst{}, err
	}
	if op == LEA && src.Kind != OpMem {
		return Inst{}, fmt.Errorf("lea needs a memory source")
	}
	if dst.Kind == OpMem && src.Kind == OpMem {
		return Inst{}, fmt.Errorf("%s: memory-to-memory not allowed", mnemonic)
	}
	return Inst{Op: op, Dst: dst, Src: src}, nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseOperand(s string) (Operand, error) {
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		body := s[1 : len(s)-1]
		body = strings.ReplaceAll(body, " ", "")
		sign := int32(1)
		var regPart, numPart string
		if i := strings.IndexByte(body, '+'); i >= 0 {
			regPart, numPart = body[:i], body[i+1:]
		} else if i := strings.IndexByte(body, '-'); i >= 0 {
			regPart, numPart = body[:i], body[i+1:]
			sign = -1
		} else {
			regPart = body
		}
		r, ok := ParseReg(regPart)
		if !ok {
			return Operand{}, fmt.Errorf("bad base register %q", regPart)
		}
		var disp int64
		if numPart != "" {
			var err error
			disp, err = strconv.ParseInt(numPart, 0, 32)
			if err != nil {
				return Operand{}, fmt.Errorf("bad displacement %q", numPart)
			}
		}
		return Mem(r, int32(disp)*sign), nil
	}
	if r, ok := ParseReg(s); ok {
		return R(r), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return Imm(int32(v)), nil
}
