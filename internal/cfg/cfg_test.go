package cfg

import (
	"testing"

	"retypd/internal/asm"
)

func analyze(t *testing.T, src string) *ProcInfo {
	t.Helper()
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog, prog.Procs[0])
}

// TestStackDelta tracks esp through a standard prologue/epilogue.
func TestStackDelta(t *testing.T) {
	pi := analyze(t, `
proc f
    push ebp
    mov ebp, esp
    sub esp, 8
    mov eax, [ebp+8]
    mov [esp+4], eax
    leave
    ret
endproc
`)
	// At the body load (inst 3): esp = -12, ebp = -4.
	if !pi.ESPIn[3].Known || pi.ESPIn[3].Delta != -12 {
		t.Errorf("esp before inst 3 = %+v", pi.ESPIn[3])
	}
	if !pi.EBPIn[3].Known || pi.EBPIn[3].Delta != -4 {
		t.Errorf("ebp before inst 3 = %+v", pi.EBPIn[3])
	}
	// [ebp+8] resolves to the first argument slot (+4).
	if off, ok := pi.SlotOf(3, asm.Mem(asm.EBP, 8)); !ok || off != 4 {
		t.Errorf("slot of [ebp+8] = %d, %v", off, ok)
	}
	// [esp+4] at inst 4 resolves to local slot -8.
	if off, ok := pi.SlotOf(4, asm.Mem(asm.ESP, 4)); !ok || off != -8 {
		t.Errorf("slot of [esp+4] = %d, %v", off, ok)
	}
	if len(pi.FormalIns) != 1 || pi.FormalIns[0].ParamName() != "stack0" {
		t.Errorf("formals: %v", pi.FormalIns)
	}
}

// TestStackDeltaJoin: a diamond with unbalanced pushes makes esp
// unknown at the join.
func TestStackDeltaJoin(t *testing.T) {
	pi := analyze(t, `
proc f
    test eax, eax
    jz other
    push eax
    jmp join
other:
    nop
join:
    mov eax, [esp+4]
    ret
endproc
`)
	joinIdx := pi.Proc.Labels["join"]
	if pi.ESPIn[joinIdx].Known {
		t.Errorf("esp should be unknown at unbalanced join, got %+v", pi.ESPIn[joinIdx])
	}
}

// TestRegisterParams: the push-ecx idiom makes ecx a conservative
// register parameter (§2.5), while written registers do not.
func TestRegisterParams(t *testing.T) {
	pi := analyze(t, `
proc f
    push ecx
    mov eax, [esp+8]
    add esp, 4
    ret
endproc
`)
	foundEcx := false
	for _, l := range pi.FormalIns {
		if !l.IsSlot && l.Reg == asm.ECX {
			foundEcx = true
		}
	}
	if !foundEcx {
		t.Errorf("push ecx should report ecx live-in: %v", pi.FormalIns)
	}
}

// TestReachingDefsLoop reproduces the close_last reaching-def facts:
// at the loop body load, edx has two reaching definitions.
func TestReachingDefsLoop(t *testing.T) {
	pi := analyze(t, `
proc f
    mov edx, [esp+4]
    jmp l2
l1:
    mov edx, eax
l2:
    mov eax, [edx]
    test eax, eax
    jnz l1
    ret
endproc
`)
	var defs []DefID
	pi.WalkDefs(func(idx int, reach map[Loc][]DefID) {
		if idx == pi.Proc.Labels["l2"] {
			defs = append([]DefID(nil), reach[RegLoc(asm.EDX)]...)
		}
	})
	if len(defs) != 2 {
		t.Fatalf("edx should have 2 reaching defs at the loop head, got %v", defs)
	}
}

// TestHasOut: eax defined on the path to ret.
func TestHasOut(t *testing.T) {
	pi := analyze(t, `
proc f
    mov eax, [esp+4]
    ret
endproc
`)
	if !pi.HasOut {
		t.Error("f returns a value")
	}
	pi = analyze(t, `
proc g
    mov ecx, [esp+4]
    ret
endproc
`)
	if pi.HasOut {
		t.Error("g does not return a value")
	}
}

// TestCallGraphSCC: mutual recursion forms one SCC; SCC order is
// bottom-up.
func TestCallGraphSCC(t *testing.T) {
	prog, err := asm.Parse(`
proc a
    call b
    ret
endproc
proc b
    call a
    call leaf
    ret
endproc
proc leaf
    ret
endproc
proc top
    call a
    ret
endproc
`)
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(prog)
	pos := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			pos[p] = i
		}
	}
	if pos["a"] != pos["b"] {
		t.Error("a and b must share an SCC")
	}
	if !(pos["leaf"] < pos["a"] && pos["a"] < pos["top"]) {
		t.Errorf("SCC order not bottom-up: %v", cg.SCCs)
	}
}

// TestLoopCarriedReachingDef: in a single-block self-loop, the block's
// own definitions reach its entry via the back edge (the loop-carried
// state the reaching-defs fixpoint must not drop).
func TestLoopCarriedReachingDef(t *testing.T) {
	prog, err := asm.Parse(`
proc spin
top:
  mov ebx, 5
  jz top
endproc
`)
	if err != nil {
		t.Fatal(err)
	}
	pi := Analyze(prog, prog.Procs[0])
	found := false
	for _, d := range pi.ReachEntry(0)[RegLoc(asm.EBX)] {
		if d == DefID(0) {
			found = true
		}
	}
	if !found {
		t.Errorf("loop-carried def of ebx missing from block-entry reach state: %v", pi.ReachEntry(0))
	}
}

// TestTailCallDetection: jmp to another proc is a tail call and
// inherits HasOut.
func TestTailCallDetection(t *testing.T) {
	prog, err := asm.Parse(`
proc wrap
    jmp inner
endproc
proc inner
    mov eax, [esp+4]
    ret
endproc
`)
	if err != nil {
		t.Fatal(err)
	}
	infos := AnalyzeProgram(prog)
	if len(infos["wrap"].TailCalls) != 1 {
		t.Error("tail call not detected")
	}
	if !infos["wrap"].HasOut {
		t.Error("wrap should inherit HasOut from inner")
	}
}
