// Package cfg recovers the program representation Retypd consumes from
// the assembly substrate: per-procedure control-flow graphs, an affine
// stack-pointer analysis (the "affine relations between the stack and
// frame pointers" of §6.1 — the only points-to-adjacent analysis the
// paper requires), reaching definitions for registers and stack slots
// (Appendix A.1's flow-sensitive parameterization of constraint
// generation), liveness-based register-parameter detection (§2.5), and
// the call graph with its strongly connected components (§4.2).
package cfg

import (
	"fmt"
	"sort"

	"retypd/internal/asm"
)

// Loc is an abstract storage location: a register or a stack slot
// identified by its byte offset from the value of esp at procedure
// entry (offset 0 holds the return address, +4 the first stack
// argument, negative offsets the locals).
type Loc struct {
	IsSlot bool
	Reg    asm.Reg
	Slot   int32
}

// RegLoc makes a register location.
func RegLoc(r asm.Reg) Loc { return Loc{Reg: r} }

// SlotLoc makes a stack-slot location.
func SlotLoc(off int32) Loc { return Loc{IsSlot: true, Slot: off} }

// String renders the location ("eax" or "slot(+4)").
func (l Loc) String() string {
	if !l.IsSlot {
		return l.Reg.String()
	}
	if l.Slot >= 0 {
		return fmt.Sprintf("slot(+%d)", l.Slot)
	}
	return fmt.Sprintf("slot(%d)", l.Slot)
}

// ParamName renders the formal-in location name used in type variables
// ("stack0", "stack4" for slots +4, +8; register name for register
// parameters), matching the paper's instack0 notation.
func (l Loc) ParamName() string {
	if l.IsSlot {
		return fmt.Sprintf("stack%d", l.Slot-4)
	}
	return l.Reg.String()
}

// SPVal is an affine stack-pointer value: entrySP + Delta, or unknown.
type SPVal struct {
	Known bool
	Delta int32
}

// DefID identifies a definition: a non-negative instruction index, or a
// negative id for the synthetic entry definition of a formal location.
type DefID int32

// IsEntry reports whether d is a synthetic entry definition.
func (d DefID) IsEntry() bool { return d < 0 }

// Block is a basic block: instructions [Start, End).
type Block struct {
	Start, End int
	Succs      []int
}

// ProcInfo is the analysis result for one procedure.
type ProcInfo struct {
	Proc    *asm.Proc
	Prog    *asm.Program
	Blocks  []Block
	BlockOf []int // instruction → block index

	// ESPIn and EBPIn give the pre-state of each instruction.
	ESPIn []SPVal
	EBPIn []SPVal

	// FormalIns lists the formal-in locations in canonical order
	// (stack slots ascending, then registers).
	FormalIns []Loc
	// EntryLive is the register mask live at entry (RegBit bits), the
	// same value EntryLiveRegs computes from the raw stream. Captured
	// by findFormals so callers that already hold a ProcInfo can feed
	// bodyfp.ComputeWithLiveMask without rebuilding blocks.
	EntryLive uint8
	// HasOut reports whether the procedure produces a value in eax
	// (possibly via tail call; completed by AnalyzeProgram's fixpoint).
	HasOut bool
	// TailCalls lists instruction indices of tail-call jumps.
	TailCalls []int

	// entryDefs maps formal locations to their synthetic DefIDs.
	entryDefs map[Loc]DefID
	entryLocs []Loc // indexed by -(id)-1

	// reachIn[b] maps locations to the definitions reaching block b's
	// entry.
	reachIn []map[Loc][]DefID

	// hasOutOwn is HasOut's intraprocedural value (before the tail-call
	// fixpoint of FinishHasOut raises it), captured by Analyze so
	// CloneForProgram can rebase onto a new program in O(1).
	hasOutOwn bool
}

// EntryLoc returns the formal location of a synthetic entry definition.
func (pi *ProcInfo) EntryLoc(d DefID) Loc { return pi.entryLocs[-int(d)-1] }

// SlotOf resolves a memory operand at instruction idx to a stack slot,
// if the base register is frame-resolvable there.
func (pi *ProcInfo) SlotOf(idx int, m asm.Operand) (int32, bool) {
	if m.Kind != asm.OpMem {
		return 0, false
	}
	switch m.Reg {
	case asm.ESP:
		if sp := pi.ESPIn[idx]; sp.Known {
			return sp.Delta + m.Imm, true
		}
	case asm.EBP:
		if bp := pi.EBPIn[idx]; bp.Known {
			return bp.Delta + m.Imm, true
		}
	}
	return 0, false
}

// Analyze computes the per-procedure analyses. Program-level facts
// (tail-call out propagation) are refined by AnalyzeProgram.
func Analyze(prog *asm.Program, proc *asm.Proc) *ProcInfo {
	pi := &ProcInfo{Proc: proc, Prog: prog, entryDefs: map[Loc]DefID{}}
	pi.buildBlocks()
	pi.stackAnalysis()
	pi.findFormals()
	pi.reachingDefs()
	pi.findHasOut()
	pi.hasOutOwn = pi.HasOut
	return pi
}

// buildBlocks splits the instruction list into basic blocks and wires
// successor edges.
func (pi *ProcInfo) buildBlocks() {
	pi.Blocks, pi.BlockOf, pi.TailCalls = buildBlocksFor(pi.Proc)
}

// buildBlocksFor is the block construction shared by the full Analyze
// and the lightweight EntryLiveRegs: basic blocks with successor edges,
// the instruction→block index, and the tail-call sites.
func buildBlocksFor(proc *asm.Proc) (blocks []Block, blockOf []int, tailCalls []int) {
	insts := proc.Insts
	n := len(insts)
	leader := make([]bool, n+1)
	leader[0] = true
	for _, idx := range proc.Labels {
		if idx <= n {
			leader[idx] = true
		}
	}
	for i, in := range insts {
		switch in.Op {
		case asm.JMP, asm.JCC, asm.RET:
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	blockOf = make([]int, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := len(blocks)
		blocks = append(blocks, Block{Start: i, End: j})
		for k := i; k < j; k++ {
			blockOf[k] = b
		}
		i = j
	}
	for b := range blocks {
		blk := &blocks[b]
		last := insts[blk.End-1]
		addSucc := func(idx int) {
			if idx < n {
				blk.Succs = append(blk.Succs, blockOf[idx])
			}
		}
		switch last.Op {
		case asm.RET:
		case asm.JMP:
			if tgt, ok := proc.Labels[last.Target]; ok {
				addSucc(tgt)
			} else {
				// Tail call to another procedure: terminator.
				tailCalls = append(tailCalls, blk.End-1)
			}
		case asm.JCC:
			addSucc(proc.Labels[last.Target])
			addSucc(blk.End)
		default:
			addSucc(blk.End)
		}
	}
	return blocks, blockOf, tailCalls
}

// stackAnalysis computes the affine esp/ebp values before each
// instruction.
func (pi *ProcInfo) stackAnalysis() {
	n := len(pi.Proc.Insts)
	pi.ESPIn = make([]SPVal, n)
	pi.EBPIn = make([]SPVal, n)

	type state struct{ esp, ebp SPVal }
	blockIn := make([]state, len(pi.Blocks))
	haveIn := make([]bool, len(pi.Blocks))
	blockIn[0] = state{esp: SPVal{Known: true, Delta: 0}}
	haveIn[0] = true

	merge := func(a, b SPVal) SPVal {
		if a.Known && b.Known && a.Delta == b.Delta {
			return a
		}
		return SPVal{}
	}

	work := []int{0}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := blockIn[b]
		for i := pi.Blocks[b].Start; i < pi.Blocks[b].End; i++ {
			pi.ESPIn[i] = st.esp
			pi.EBPIn[i] = st.ebp
			st = transferSP(st.esp, st.ebp, pi.Proc.Insts[i])
		}
		for _, s := range pi.Blocks[b].Succs {
			var next state
			if !haveIn[s] {
				next = st
			} else {
				next = state{esp: merge(blockIn[s].esp, st.esp), ebp: merge(blockIn[s].ebp, st.ebp)}
				if next == blockIn[s] {
					continue
				}
			}
			blockIn[s] = next
			haveIn[s] = true
			work = append(work, s)
		}
	}
}

type spState = struct{ esp, ebp SPVal }

func transferSP(esp, ebp SPVal, in asm.Inst) spState {
	shift := func(v SPVal, d int32) SPVal {
		if !v.Known {
			return v
		}
		return SPVal{Known: true, Delta: v.Delta + d}
	}
	switch in.Op {
	case asm.PUSH:
		esp = shift(esp, -4)
	case asm.POP:
		if in.Dst.Kind == asm.OpReg && in.Dst.Reg == asm.EBP {
			ebp = SPVal{}
		}
		esp = shift(esp, 4)
	case asm.SUB:
		if in.Dst.Kind == asm.OpReg && in.Dst.Reg == asm.ESP && in.Src.Kind == asm.OpImm {
			esp = shift(esp, -in.Src.Imm)
		}
	case asm.ADD:
		if in.Dst.Kind == asm.OpReg && in.Dst.Reg == asm.ESP && in.Src.Kind == asm.OpImm {
			esp = shift(esp, in.Src.Imm)
		}
	case asm.MOV:
		if in.Dst.Kind == asm.OpReg {
			switch {
			case in.Dst.Reg == asm.EBP && in.Src.Kind == asm.OpReg && in.Src.Reg == asm.ESP:
				ebp = esp
			case in.Dst.Reg == asm.ESP && in.Src.Kind == asm.OpReg && in.Src.Reg == asm.EBP:
				esp = ebp
			case in.Dst.Reg == asm.EBP:
				ebp = SPVal{}
			case in.Dst.Reg == asm.ESP:
				esp = SPVal{}
			}
		}
	case asm.LEAVE:
		// mov esp, ebp; pop ebp
		if ebp.Known {
			esp = SPVal{Known: true, Delta: ebp.Delta + 4}
		} else {
			esp = SPVal{}
		}
		ebp = SPVal{}
	}
	return spState{esp, ebp}
}

// instUses appends the registers read by in to out (for liveness; esp
// and ebp excluded — they are handled by the stack analysis). Callers
// pass a small stack buffer: the per-instruction slice allocation
// otherwise dominates the liveness fixpoint.
func instUses(out []asm.Reg, in asm.Inst) []asm.Reg {
	add := func(r asm.Reg) {
		if r != asm.ESP && r != asm.EBP && r < asm.NumRegs {
			out = append(out, r)
		}
	}
	addOp := func(o asm.Operand) {
		switch o.Kind {
		case asm.OpReg:
			add(o.Reg)
		case asm.OpMem:
			add(o.Reg)
		}
	}
	switch in.Op {
	case asm.MOV, asm.MOVB, asm.MOVW:
		addOp(in.Src)
		if in.Dst.Kind == asm.OpMem {
			add(in.Dst.Reg)
		}
	case asm.LEA:
		add(in.Src.Reg)
	case asm.PUSH:
		addOp(in.Src)
	case asm.ADD, asm.SUB, asm.IMUL, asm.AND, asm.OR, asm.SHL, asm.SHR:
		addOp(in.Src)
		addOp(in.Dst)
	case asm.XOR:
		// xor r, r zeroes r without reading it (§2.1).
		if !(in.Dst.Kind == asm.OpReg && in.Src.Kind == asm.OpReg && in.Dst.Reg == in.Src.Reg) {
			addOp(in.Src)
			addOp(in.Dst)
		}
	case asm.TEST, asm.CMP:
		addOp(in.Src)
		addOp(in.Dst)
	}
	return out
}

// instRegDefs appends the registers written by in to out (same scratch
// discipline as instUses; at most 3 entries are appended).
func instRegDefs(out []asm.Reg, in asm.Inst) []asm.Reg {
	switch in.Op {
	case asm.MOV, asm.MOVB, asm.MOVW, asm.LEA:
		if in.Dst.Kind == asm.OpReg && in.Dst.Reg != asm.ESP && in.Dst.Reg != asm.EBP {
			return append(out, in.Dst.Reg)
		}
	case asm.POP:
		if in.Dst.Reg != asm.ESP && in.Dst.Reg != asm.EBP {
			return append(out, in.Dst.Reg)
		}
	case asm.ADD, asm.SUB, asm.IMUL, asm.XOR, asm.AND, asm.OR, asm.SHL, asm.SHR:
		if in.Dst.Kind == asm.OpReg && in.Dst.Reg != asm.ESP && in.Dst.Reg != asm.EBP {
			return append(out, in.Dst.Reg)
		}
	case asm.CALL:
		// Caller-saved registers are clobbered.
		return append(out, asm.EAX, asm.ECX, asm.EDX)
	}
	return out
}

// RegBit returns the liveness-bitmask bit of r (zero for registers
// outside the first six — esp and ebp never participate).
func RegBit(r asm.Reg) uint8 {
	if r >= 6 {
		return 0
	}
	return 1 << r
}

// entryLiveRegs runs the backward register-liveness fixpoint over the
// blocks and returns the live-in mask at block 0 (the entry): exactly
// the register-parameter set of §2.5.
func entryLiveRegs(insts []asm.Inst, blocks []Block) uint8 {
	liveIn := make([]uint8, len(blocks))  // bitmask of first 6 regs
	liveOut := make([]uint8, len(blocks)) // bitmask
	changed := true
	for changed {
		changed = false
		for b := len(blocks) - 1; b >= 0; b-- {
			var out uint8
			for _, s := range blocks[b].Succs {
				out |= liveIn[s]
			}
			// Tail calls keep nothing live (stack args only in corpus).
			live := out
			var rbuf [4]asm.Reg
			for i := blocks[b].End - 1; i >= blocks[b].Start; i-- {
				for _, r := range instRegDefs(rbuf[:0], insts[i]) {
					live &^= RegBit(r)
				}
				for _, r := range instUses(rbuf[:0], insts[i]) {
					live |= RegBit(r)
				}
			}
			if live != liveIn[b] || out != liveOut[b] {
				liveIn[b] = live
				liveOut[b] = out
				changed = true
			}
		}
	}
	if len(liveIn) == 0 {
		return 0
	}
	return liveIn[0]
}

// EntryLiveRegs computes the set of registers live at procedure entry
// (the register-parameter mask, RegBit bits) from the raw instruction
// stream — no ProcInfo required. It is the interface piece of the body
// fingerprint (internal/bodyfp): formal-in registers are part of a
// procedure's type interface and must be pinned under the fingerprint's
// scratch-register canonicalization, and the fingerprint is computed
// before any per-procedure analysis has run.
func EntryLiveRegs(proc *asm.Proc) uint8 {
	blocks, _, _ := buildBlocksFor(proc)
	return entryLiveRegs(proc.Insts, blocks)
}

// findFormals detects the formal-in locations: stack slots at positive
// offsets read with the entry value live, and registers live-in at
// entry (§2.5 — this conservatively reports the "push ecx" idiom as a
// register parameter, which is exactly the over-unification stressor
// the paper discusses).
func (pi *ProcInfo) findFormals() {
	insts := pi.Proc.Insts

	// Register liveness, backward to a fixpoint.
	entryLive := entryLiveRegs(insts, pi.Blocks)
	pi.EntryLive = entryLive

	// Stack parameter slots: positive-offset slot reads.
	paramSlots := map[int32]bool{}
	noteRead := func(idx int, m asm.Operand) {
		if off, ok := pi.SlotOf(idx, m); ok && off >= 4 {
			paramSlots[off] = true
		}
	}
	for i, in := range insts {
		switch in.Op {
		case asm.MOV, asm.MOVB, asm.MOVW, asm.ADD, asm.SUB, asm.IMUL, asm.AND, asm.OR, asm.CMP, asm.TEST:
			if in.Src.Kind == asm.OpMem {
				noteRead(i, in.Src)
			}
		case asm.PUSH:
			if in.Src.Kind == asm.OpMem {
				noteRead(i, in.Src)
			}
		}
	}
	// Tail calls forward the incoming argument area; the slots they
	// pass are handled by the constraint generator, not listed as
	// formals unless also read.

	var slots []int32
	for off := range paramSlots {
		slots = append(slots, off)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	// Fill gaps so the argument area is contiguous: a callee that reads
	// stack0 and stack8 still has three parameters.
	if len(slots) > 0 {
		max := slots[len(slots)-1]
		slots = slots[:0]
		for off := int32(4); off <= max; off += 4 {
			slots = append(slots, off)
		}
	}
	for _, off := range slots {
		pi.FormalIns = append(pi.FormalIns, SlotLoc(off))
	}
	for r := asm.EAX; r < 6; r++ {
		if entryLive&RegBit(r) != 0 {
			pi.FormalIns = append(pi.FormalIns, RegLoc(r))
		}
	}

	// Synthetic entry definitions for formals.
	for _, l := range pi.FormalIns {
		id := DefID(-len(pi.entryLocs) - 1)
		pi.entryDefs[l] = id
		pi.entryLocs = append(pi.entryLocs, l)
	}
}

// DefsOf lists the locations defined by instruction idx (registers and
// resolvable stack slots).
func (pi *ProcInfo) DefsOf(idx int) []Loc {
	return pi.AppendDefsOf(nil, idx)
}

// AppendDefsOf is DefsOf appending into a caller-provided buffer (pass
// buf[:0] to reuse scratch across a loop — the per-instruction slice
// allocation is visible in profiles of the analyses that replay
// definitions over every instruction).
func (pi *ProcInfo) AppendDefsOf(out []Loc, idx int) []Loc {
	in := pi.Proc.Insts[idx]
	var rbuf [4]asm.Reg
	for _, r := range instRegDefs(rbuf[:0], in) {
		out = append(out, RegLoc(r))
	}
	switch in.Op {
	case asm.MOV, asm.MOVB, asm.MOVW:
		if in.Dst.Kind == asm.OpMem {
			if off, ok := pi.SlotOf(idx, in.Dst); ok {
				out = append(out, SlotLoc(off))
			}
		}
	case asm.PUSH:
		if sp := pi.ESPIn[idx]; sp.Known {
			out = append(out, SlotLoc(sp.Delta-4))
		}
	}
	return out
}

// reachingDefs computes block-entry reaching definitions for registers
// and stack slots.
func (pi *ProcInfo) reachingDefs() {
	nb := len(pi.Blocks)
	pi.reachIn = make([]map[Loc][]DefID, nb)
	pi.reachIn[0] = map[Loc][]DefID{}
	for l, d := range pi.entryDefs {
		pi.reachIn[0][l] = []DefID{d}
	}
	if nb == 1 {
		selfLoop := false
		for _, s := range pi.Blocks[0].Succs {
			if s == 0 {
				selfLoop = true
				break
			}
		}
		if !selfLoop {
			// Straight-line procedure (the overwhelmingly common leaf
			// shape): the only block-entry state is the entry
			// definitions; no out-state is ever consumed. A single
			// block that jumps back to its own start is NOT straight-
			// line — its out-state reaches its entry via the back edge,
			// so it must run the fixpoint like any loop.
			return
		}
	}

	// Per-block gen/kill in one pass: out = gen ∪ (in − kill).
	gen := make([]map[Loc]DefID, nb)
	kill := make([]map[Loc]bool, nb)
	var lbuf [4]Loc
	for b := 0; b < nb; b++ {
		gen[b] = map[Loc]DefID{}
		kill[b] = map[Loc]bool{}
		for i := pi.Blocks[b].Start; i < pi.Blocks[b].End; i++ {
			for _, l := range pi.AppendDefsOf(lbuf[:0], i) {
				gen[b][l] = DefID(i)
				kill[b][l] = true
			}
		}
	}

	mergeInto := func(dst map[Loc][]DefID, l Loc, ds []DefID) bool {
		cur := dst[l]
		changed := false
		for _, d := range ds {
			found := false
			for _, c := range cur {
				if c == d {
					found = true
					break
				}
			}
			if !found {
				cur = append(cur, d)
				changed = true
			}
		}
		if changed {
			sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
			dst[l] = cur
		}
		return changed
	}

	work := []int{0}
	inWork := make([]bool, nb)
	inWork[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		// Compute out state.
		out := map[Loc][]DefID{}
		for l, ds := range pi.reachIn[b] {
			if !kill[b][l] {
				mergeInto(out, l, ds)
			}
		}
		for l, d := range gen[b] {
			mergeInto(out, l, []DefID{d})
		}
		for _, s := range pi.Blocks[b].Succs {
			if pi.reachIn[s] == nil {
				pi.reachIn[s] = map[Loc][]DefID{}
			}
			changed := false
			for l, ds := range out {
				if mergeInto(pi.reachIn[s], l, ds) {
					changed = true
				}
			}
			if changed && !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
}

// WalkDefs replays the reaching-definition state through every
// instruction in order, invoking f with the pre-state of each. The
// state map is reused; f must not retain it.
func (pi *ProcInfo) WalkDefs(f func(idx int, reach map[Loc][]DefID)) {
	for b := range pi.Blocks {
		state := map[Loc][]DefID{}
		for l, ds := range pi.reachIn[b] {
			state[l] = ds
		}
		var lbuf [4]Loc
		for i := pi.Blocks[b].Start; i < pi.Blocks[b].End; i++ {
			f(i, state)
			for _, l := range pi.AppendDefsOf(lbuf[:0], i) {
				state[l] = []DefID{DefID(i)}
			}
		}
	}
}

// ReachEntry reports whether any block-entry state is unreachable
// (diagnostics).
func (pi *ProcInfo) ReachEntry(b int) map[Loc][]DefID { return pi.reachIn[b] }

// findHasOut checks whether a definition of eax reaches some ret.
func (pi *ProcInfo) findHasOut() {
	for b := range pi.Blocks {
		blk := pi.Blocks[b]
		if blk.End == blk.Start {
			continue
		}
		if pi.Proc.Insts[blk.End-1].Op != asm.RET {
			continue
		}
		// Replay the block to the ret.
		state := map[Loc][]DefID{}
		if pi.reachIn[b] != nil {
			for l, ds := range pi.reachIn[b] {
				state[l] = ds
			}
		}
		var lbuf [4]Loc
		for i := blk.Start; i < blk.End-1; i++ {
			for _, l := range pi.AppendDefsOf(lbuf[:0], i) {
				state[l] = []DefID{DefID(i)}
			}
		}
		for _, d := range state[RegLoc(asm.EAX)] {
			if !d.IsEntry() {
				pi.HasOut = true
				return
			}
		}
	}
}

// CallGraph is the program call graph.
type CallGraph struct {
	Prog *asm.Program
	// Callees[p] lists distinct program procedures called (or
	// tail-called) by p.
	Callees map[string][]string
	// Externals[p] lists called names with no definition in the
	// program.
	Externals map[string][]string
	// SCCs lists strongly connected components in bottom-up (callee
	// first) order.
	SCCs [][]string
}

// BuildCallGraph computes the call graph and its SCCs in bottom-up
// topological order (Tarjan's algorithm emits SCCs in reverse
// topological order of the condensation, which is exactly the
// callee-first order InferProcTypes needs, §4.2).
func BuildCallGraph(prog *asm.Program) *CallGraph {
	cg := &CallGraph{
		Prog:      prog,
		Callees:   map[string][]string{},
		Externals: map[string][]string{},
	}
	// Distinct-callee lists are short, so dedup by linear scan — two
	// per-procedure maps here dominated the whole build's allocations.
	contains := func(list []string, s string) bool {
		for _, v := range list {
			if v == s {
				return true
			}
		}
		return false
	}
	for _, p := range prog.Procs {
		var callees, exts []string
		for _, in := range p.Insts {
			var tgt string
			switch in.Op {
			case asm.CALL:
				tgt = in.Target
			case asm.JMP:
				if _, isLabel := p.Labels[in.Target]; !isLabel {
					tgt = in.Target
				}
			}
			if tgt == "" {
				continue
			}
			if _, ok := prog.ProcIndex[tgt]; ok {
				if !contains(callees, tgt) {
					callees = append(callees, tgt)
				}
			} else if !contains(exts, tgt) {
				exts = append(exts, tgt)
			}
		}
		if len(callees) > 0 {
			cg.Callees[p.Name] = callees
		}
		if len(exts) > 0 {
			cg.Externals[p.Name] = exts
		}
	}

	// Tarjan SCC.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	counter := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.Callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			cg.SCCs = append(cg.SCCs, scc)
		}
	}
	for _, p := range prog.Procs {
		if _, seen := index[p.Name]; !seen {
			strongconnect(p.Name)
		}
	}
	return cg
}

// AnalyzeProgram analyzes every procedure and completes the
// program-level HasOut fixpoint across tail calls.
func AnalyzeProgram(prog *asm.Program) map[string]*ProcInfo {
	infos := make(map[string]*ProcInfo, len(prog.Procs))
	for _, p := range prog.Procs {
		infos[p.Name] = Analyze(prog, p)
	}
	FinishHasOut(infos)
	return infos
}

// FinishHasOut runs the interprocedural tail-call fixpoint over
// per-procedure analyses: a procedure that tail-jumps into a
// value-returning (or external) callee returns a value itself. It is
// the only cross-procedure step of AnalyzeProgram, split out so
// incremental re-analysis can rebuild a program's infos from a mix of
// freshly analyzed and rebased (CloneForProgram) procedures and still
// complete them consistently. Infos must carry their intraprocedural
// HasOut when this is called.
func FinishHasOut(infos map[string]*ProcInfo) {
	for changed := true; changed; {
		changed = false
		for _, pi := range infos {
			if pi.HasOut {
				continue
			}
			for _, idx := range pi.TailCalls {
				callee := pi.Proc.Insts[idx].Target
				if ci, ok := infos[callee]; ok && ci.HasOut {
					pi.HasOut = true
					changed = true
					break
				}
				if _, ok := infos[callee]; !ok {
					// External tail callee: assume it returns a value.
					pi.HasOut = true
					changed = true
					break
				}
			}
		}
	}
}

// CloneForProgram returns a shallow copy of pi rebased onto prog and
// proc, whose body must be identical to pi's up to label names,
// conditional-jump mnemonics, and call-target names — the renamings
// every analysis here is invariant under: label positions (not names)
// define blocks, Cond is display-only, and call targets affect only the
// interprocedural HasOut, which the following FinishHasOut recomputes
// against the new program. Callers verify with asm.Proc.EqualBody, or
// with a body-fingerprint match under the identity register assignment
// (bodyfp.FP.EquivalentTo plus SameRegisters — scratch-register
// renamings are NOT admissible: reaching definitions and the entry
// formals are keyed by actual register names). Every per-procedure
// analysis result is shared read-only with the receiver; HasOut is
// reset to its intraprocedural value so a following FinishHasOut can
// re-run the tail-call fixpoint against the new program without
// mutating pi. This is what lets incremental re-analysis — and the
// solver's body-class layer, for in-program duplicates — skip
// re-running the per-procedure analyses.
func (pi *ProcInfo) CloneForProgram(prog *asm.Program, proc *asm.Proc) *ProcInfo {
	ci := *pi
	ci.Prog = prog
	ci.Proc = proc
	// Recover the intraprocedural value captured by Analyze: the
	// receiver's HasOut may have been raised by a previous program's
	// tail-call fixpoint, and the new program's fixpoint must start
	// from the body-local truth.
	ci.HasOut = pi.hasOutOwn
	return &ci
}
