package cfg

import (
	"testing"

	"retypd/internal/asm"
)

func TestSelfLoopSingleBlockReach(t *testing.T) {
	src := `
proc spin
top:
  mov ebx, 5
  jcc top
endproc
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pi := Analyze(prog, prog.Procs[0])
	t.Logf("blocks=%d succs=%v", len(pi.Blocks), pi.Blocks[0].Succs)
	// At instruction 0 on the second loop iteration, the def of ebx at
	// inst 0 reaches the block entry via the back edge.
	in := pi.ReachEntry(0)
	t.Logf("reachIn[0]=%v", in)
	found := false
	for _, d := range in[RegLoc(asm.EBX)] {
		if d == DefID(0) {
			found = true
		}
	}
	if !found {
		t.Errorf("loop-carried def of ebx missing from block-entry reach state: %v", in)
	}
}
