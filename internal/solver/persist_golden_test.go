package solver

import (
	"bytes"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/schedtest"
)

// testdata/cache_pr5_golden.{bin,dump} pin the persisted cache wire
// format (v2: scheme + shape + body-class sections; originally recorded
// at PR 5, regenerated on the v2 bump that added the body section).
// These tests pin the compatibility contract: the checked-in blob loads
// into today's caches, round-trips byte-identically, and serves a warm
// run whose output matches the recorded dump with zero cache misses.
// TestGenerateShardGoldenFixture (fixgen_test.go) regenerates the pair
// if the wire format ever changes version.

const goldenBin = "testdata/cache_pr5_golden.bin"
const goldenDump = "testdata/cache_pr5_golden.dump"

// goldenProg is the exact corpus the fixture was recorded from.
func goldenProg(t *testing.T) *asm.Program {
	t.Helper()
	return asm.MustParse(corpus.Generate("shardgolden", 11, 600).Source)
}

// TestPR5GoldenLoadsIntoShardedCaches: the unsharded blob decodes, with
// entries landing in both cache layers.
func TestPR5GoldenLoadsIntoShardedCaches(t *testing.T) {
	_, st, err := LoadCache(goldenBin, 0, 0)
	if err != nil {
		t.Fatalf("pre-sharding golden no longer loads: %v", err)
	}
	if st.SchemeEntries == 0 || st.ShapeEntries == 0 {
		t.Fatalf("golden decoded but empty: %+v", st)
	}
	if st.SkippedShapeEntries != 0 {
		t.Errorf("golden shape entries skipped: %+v (lattice signature drift?)", st)
	}
}

// TestPR5GoldenRoundTripBytes: load→save must reproduce the unsharded
// bytes exactly — the sharded export's global recency stamps put
// entries back in the order the blob recorded.
func TestPR5GoldenRoundTripBytes(t *testing.T) {
	orig := readFile(t, goldenBin)
	eng, _, err := LoadCache(goldenBin, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCacheTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), orig) {
		t.Fatalf("sharded round-trip changed the wire bytes (len %d vs %d)", buf.Len(), len(orig))
	}
}

// TestPR5GoldenWarmRun: inference on the warm engine must reproduce the
// recorded dump byte-for-byte and never miss either cache — every
// fingerprint in the program was recorded in the blob.
func TestPR5GoldenWarmRun(t *testing.T) {
	eng, _, err := LoadCache(goldenBin, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 1
	res := eng.Infer(goldenProg(t), lattice.Default(), nil, opts)

	want := string(readFile(t, goldenDump))
	if got := res.DumpSchemes() + "\n===\n" + res.DumpSpecialized(); got != want {
		t.Fatalf("warm run diverged from recorded dump (len %d vs %d)", len(got), len(want))
	}
	if res.SchemeCacheMisses != 0 || res.ShapeCacheMisses != 0 {
		t.Fatalf("warm run missed: scheme %d/%d shape %d/%d (want 0 misses)",
			res.SchemeCacheHits, res.SchemeCacheMisses, res.ShapeCacheHits, res.ShapeCacheMisses)
	}
	if res.SchemeCacheHits == 0 || res.ShapeCacheHits == 0 {
		t.Fatal("warm run hit nothing; the golden is not exercising the caches")
	}
}

// TestPR5GoldenWarmPerturbed: the same warm run under work-stealing
// with schedtest perturbation — cache residency must not open a
// schedule dependence.
func TestPR5GoldenWarmPerturbed(t *testing.T) {
	want := string(readFile(t, goldenDump))
	for seed := int64(0); seed < 5; seed++ {
		eng, _, err := LoadCache(goldenBin, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Workers = 4
		opts.SchedHooks = schedtest.New(seed).Hooks()
		res := eng.Infer(goldenProg(t), lattice.Default(), nil, opts)
		if got := res.DumpSchemes() + "\n===\n" + res.DumpSpecialized(); got != want {
			t.Fatalf("seed %d: perturbed warm run diverged from recorded dump", seed)
		}
		if res.SchemeCacheMisses != 0 || res.ShapeCacheMisses != 0 {
			t.Fatalf("seed %d: perturbed warm run missed (scheme %d, shape %d misses)",
				seed, res.SchemeCacheMisses, res.ShapeCacheMisses)
		}
	}
}
