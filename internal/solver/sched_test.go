package solver

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/lattice"
	"retypd/internal/schedtest"
)

// Property tests for the readiness scheduler, complementing the levels
// test above it in the lineage (TestSCCLevelsPartition keeps checking
// the reference partition): instead of trusting the dumps, these record
// the scheduler's own event stream through the schedTrace seam and
// check the execution-order invariants directly, across worker counts
// and adversarial schedtest perturbations.

// schedRecorder accumulates the event stream of one run. The callback
// runs on worker goroutines; the mutex also gives each recorded event a
// single global order consistent with the scheduler's happens-before
// edges (every signal is preceded by the signaler's Done event).
type schedRecorder struct {
	mu     sync.Mutex
	events []schedEvent
}

func (r *schedRecorder) hook(ev schedEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// checkReadinessProperties validates one recorded run against the call
// graph: every SCC's F.1 and every procedure's F.2 ran exactly once,
// no F.1 started before all callee SCCs' F.1 completed, no F.2 started
// before its own SCC's F.1 completed, and no dedup translation ran
// before its representative's F.2 completed.
func checkReadinessProperties(t *testing.T, cg *cfg.CallGraph, order []string, events []schedEvent) {
	t.Helper()
	sccOf := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	procIdx := map[string]int{}
	for i, p := range order {
		procIdx[p] = i
	}
	// deps[i] = callee SCCs of SCC i (the readiness graph adds a rep
	// edge on top for dedup members; asserting the callee subset is
	// what the condensed call graph itself demands).
	deps := make([][]int, len(cg.SCCs))
	for i, scc := range cg.SCCs {
		set := map[int]bool{}
		for _, p := range scc {
			for _, callee := range cg.Callees[p] {
				if j, ok := sccOf[callee]; ok && j != i {
					set[j] = true
				}
			}
		}
		for j := range set {
			deps[i] = append(deps[i], j)
		}
		sort.Ints(deps[i])
	}

	f1Started := make([]int, len(cg.SCCs))
	f1Done := make([]bool, len(cg.SCCs))
	f2Started := make([]int, len(order))
	f2Done := make([]bool, len(order))
	for _, ev := range events {
		switch ev.kind {
		case evF1Start:
			f1Started[ev.idx]++
			for _, j := range deps[ev.idx] {
				if !f1Done[j] {
					t.Fatalf("SCC %d (%v) started F.1 before callee SCC %d (%v) finished",
						ev.idx, cg.SCCs[ev.idx], j, cg.SCCs[j])
				}
			}
		case evF1Done:
			f1Done[ev.idx] = true
		case evF2Start:
			f2Started[ev.idx]++
			if scc := sccOf[order[ev.idx]]; !f1Done[scc] {
				t.Fatalf("procedure %s started F.2 before its SCC %d finished F.1", order[ev.idx], scc)
			}
		case evF2Translate:
			if !f2Done[ev.aux] {
				t.Fatalf("member %s translated before representative %s finished F.2",
					order[ev.idx], order[ev.aux])
			}
		case evF2Done:
			f2Done[ev.idx] = true
		}
	}
	for i, n := range f1Started {
		if n != 1 || !f1Done[i] {
			t.Fatalf("SCC %d: F.1 started %d times, done=%v (want exactly once)", i, n, f1Done[i])
		}
	}
	for i, n := range f2Started {
		if n != 1 || !f2Done[i] {
			t.Fatalf("procedure %s: F.2 started %d times, done=%v (want exactly once)", order[i], n, f2Done[i])
		}
	}
}

// translationPairs extracts the dedup outcome of one run as a sorted
// "member<-rep" list — the externally checkable fingerprint of
// representative selection.
func translationPairs(order []string, events []schedEvent) []string {
	var pairs []string
	for _, ev := range events {
		if ev.kind == evF2Translate {
			pairs = append(pairs, order[ev.idx]+"<-"+order[ev.aux])
		}
	}
	sort.Strings(pairs)
	return pairs
}

// runTraced infers prog while recording the scheduler event stream.
func runTraced(t *testing.T, prog *asm.Program, seed int64, workers int) (*cfg.CallGraph, []string, []schedEvent, *Result) {
	t.Helper()
	rec := &schedRecorder{}
	opts := DefaultOptions()
	opts.Workers = workers
	opts.schedTrace = rec.hook
	if seed >= 0 {
		opts.SchedHooks = schedtest.New(seed).Hooks()
	}
	res := Infer(prog, lattice.Default(), nil, opts)
	cg := cfg.BuildCallGraph(prog)
	// Mirror pipeline.initIndex: procedure indices in the event stream
	// follow the top-down SCC concatenation.
	var order []string
	for i := len(cg.SCCs) - 1; i >= 0; i-- {
		order = append(order, cg.SCCs[i]...)
	}
	return cg, order, rec.events, res
}

// TestReadinessExecutionProperties: the ordering and exactly-once
// invariants hold on the generated corpus for every worker count, with
// and without perturbation.
func TestReadinessExecutionProperties(t *testing.T) {
	prog := parallelProg(t)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, seed := range []int64{-1, 3, 17} {
			cg, order, events, _ := runTraced(t, prog, seed, workers)
			checkReadinessProperties(t, cg, order, events)
		}
	}
}

// TestReadinessHandwrittenProperties: same invariants on the
// corner-case program, whose mutual recursion and dedup wrappers hit
// the multi-proc-SCC and member→rep edges specifically.
func TestReadinessHandwrittenProperties(t *testing.T) {
	prog := asm.MustParse(handwrittenProgSrc)
	sawTranslation := false
	for _, workers := range []int{1, 2, 4, 8} {
		for _, seed := range []int64{-1, 0, 1, 2} {
			cg, order, events, _ := runTraced(t, prog, seed, workers)
			checkReadinessProperties(t, cg, order, events)
			if len(translationPairs(order, events)) > 0 {
				sawTranslation = true
			}
		}
	}
	if !sawTranslation {
		t.Fatal("no dedup translation observed; the member→rep readiness edge went untested")
	}
}

// TestReadinessRepsScheduleIndependent: representative selection is
// pinned by the sequential classification pre-pass, so the
// member<-representative translation pairs must be identical across
// every worker count and perturbation seed.
func TestReadinessRepsScheduleIndependent(t *testing.T) {
	prog := parallelProg(t)
	_, order, events, ref := runTraced(t, prog, -1, 1)
	want := translationPairs(order, events)
	if ref.BodyDedupHits == 0 {
		t.Skip("corpus produced no dedup hits; nothing to compare")
	}
	wantKey := strings.Join(want, ",")

	for _, workers := range []int{2, 4, 8} {
		for _, seed := range []int64{0, 1, 2, 3, 4} {
			_, order, events, res := runTraced(t, prog, seed, workers)
			got := strings.Join(translationPairs(order, events), ",")
			if got != wantKey {
				t.Fatalf("workers=%d seed=%d: representative assignment changed:\n got %s\nwant %s",
					workers, seed, got, wantKey)
			}
			if res.BodyDedupHits != ref.BodyDedupHits || res.BodyDedupMisses != ref.BodyDedupMisses {
				t.Fatalf("workers=%d seed=%d: dedup stats moved: %d/%d want %d/%d",
					workers, seed, res.BodyDedupHits, res.BodyDedupMisses, ref.BodyDedupHits, ref.BodyDedupMisses)
			}
		}
	}
}

// TestSchedTraceOrderIsHappensBefore sanity-checks the recorder itself:
// with one worker and no perturbation the stream must interleave F.1
// and F.2 (phase overlap), not batch all F.1 first — otherwise the
// suite would silently be testing the old barrier pipeline.
func TestSchedTraceOrderIsHappensBefore(t *testing.T) {
	prog := parallelProg(t)
	_, _, events, _ := runTraced(t, prog, -1, 1)
	lastF1 := -1
	firstF2 := len(events)
	for i, ev := range events {
		if ev.kind == evF1Start && i > lastF1 {
			lastF1 = i
		}
		if ev.kind == evF2Start && i < firstF2 {
			firstF2 = i
		}
	}
	if firstF2 > lastF1 {
		t.Fatalf("no F.1/F.2 overlap in the event stream (first F.2 at %d, last F.1 at %d): barrier behavior", firstF2, lastF1)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
}
