package solver

import (
	"strings"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

// figure2Asm is the close_last listing of Figure 2 (gcc 4.5.4, -m32
// -O2), transcribed into the substrate's syntax.
const figure2Asm = `
proc close_last
    push ebp
    mov ebp, esp
    sub esp, 8
    mov edx, [ebp+8]
    jmp L2
L1:
    mov edx, eax
L2:
    mov eax, [edx]
    test eax, eax
    jnz L1
    mov eax, [edx+4]
    mov [ebp+8], eax
    leave
    jmp close
endproc
`

func inferFig2(t *testing.T) *Result {
	t.Helper()
	prog, err := asm.Parse(figure2Asm)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Infer(prog, lattice.Default(), nil, DefaultOptions())
}

func proves(t *testing.T, cs *constraints.Set, lat *lattice.Lattice, l, r string) bool {
	t.Helper()
	g := pgraph.Build(cs, lat)
	ld, err := constraints.ParseDTV(l)
	if err != nil {
		t.Fatalf("ParseDTV(%q): %v", l, err)
	}
	rd, err := constraints.ParseDTV(r)
	if err != nil {
		t.Fatalf("ParseDTV(%q): %v", r, err)
	}
	return g.Proves(ld, rd)
}

// TestFigure2Scheme reproduces the headline example: the inferred type
// scheme for close_last must be equivalent to
//
//	∀F. (∃τ. F.in_stack0 ⊑ τ ∧ τ.load.σ32@0 ⊑ τ ∧
//	          τ.load.σ32@4 ⊑ int ∧ #FileDescriptor ∧
//	          int ∨ #SuccessZ ⊑ F.out_eax) ⇒ F
func TestFigure2Scheme(t *testing.T) {
	res := inferFig2(t)
	pr := res.Procs["close_last"]
	if pr == nil {
		t.Fatal("no result for close_last")
	}
	cs := pr.Scheme.Constraints
	lat := res.Lat

	checks := [][2]string{
		// Direct handle field.
		{"close_last.in_stack0.load.σ32@4", "int"},
		{"close_last.in_stack0.load.σ32@4", "#FileDescriptor"},
		// Through one and two unrollings of the recursive next field.
		{"close_last.in_stack0.load.σ32@0.load.σ32@4", "int"},
		{"close_last.in_stack0.load.σ32@0.load.σ32@0.load.σ32@4", "#FileDescriptor"},
		// Return value lower bounds.
		{"int", "close_last.out_eax"},
		{"#SuccessZ", "close_last.out_eax"},
	}
	for _, c := range checks {
		if !proves(t, cs, lat, c[0], c[1]) {
			t.Errorf("scheme does not entail %s ⊑ %s\nscheme: %s", c[0], c[1], pr.Scheme)
		}
	}
	// The scheme must not leak internal variables.
	for _, c := range cs.Subtypes() {
		for _, d := range []constraints.DTV{c.L, c.R} {
			name := string(d.Base())
			if strings.Contains(name, "!") || strings.Contains(name, "@") {
				t.Errorf("internal variable %q leaked into scheme: %s", name, c)
			}
		}
	}
}

// TestFigure2Sketch checks the solved sketch (Figure 5): the parameter
// is a readable pointer to a struct whose field at offset 0 is
// recursive and whose field at offset 4 is bounded above by
// int ∧ #FileDescriptor; the output's lower bound is int ∨ #SuccessZ.
func TestFigure2Sketch(t *testing.T) {
	res := inferFig2(t)
	pr := res.Procs["close_last"]
	lat := res.Lat

	sk := pr.Sketch
	inW := label.Word{label.In("stack0")}
	if !sk.Accepts(inW) {
		t.Fatalf("sketch lacks in_stack0:\n%s", sk)
	}
	// The parameter is a readable pointer: in.load exists.
	ptr := inW.Append(label.Load())
	if !sk.Accepts(ptr) {
		t.Fatalf("parameter is not a readable pointer:\n%s", sk)
	}
	// Recursive next field: arbitrarily deep words are accepted.
	deep := inW
	for i := 0; i < 5; i++ {
		deep = deep.Append(label.Load()).Append(label.Field(32, 0))
	}
	if !sk.Accepts(deep) {
		t.Errorf("sketch is not recursive through load.σ32@0:\n%s", sk)
	}

	// Handle field bounds: upper = int ∧ #FileDescriptor.
	handle, ok := sk.StateAt(inW.Append(label.Load()).Append(label.Field(32, 4)))
	if !ok {
		t.Fatalf("sketch lacks the σ32@4 handle field:\n%s", sk)
	}
	intE := lat.MustElem("int")
	fdE := lat.MustElem("#FileDescriptor")
	upper := sk.States[handle].Upper
	if !lat.Leq(upper, intE) || !lat.Leq(upper, fdE) {
		t.Errorf("handle field upper bound = %s, want ≤ int and ≤ #FileDescriptor", lat.Name(upper))
	}

	// Output lower bound joins int and #SuccessZ.
	outSt, ok := sk.StateAt(label.Word{label.Out("eax")})
	if !ok {
		t.Fatalf("sketch lacks out_eax:\n%s", sk)
	}
	lower := sk.States[outSt].Lower
	if !lat.Leq(intE, lower) || !lat.Leq(lat.MustElem("#SuccessZ"), lower) {
		t.Errorf("out lower bound = %s, want ≥ int ∨ #SuccessZ", lat.Name(lower))
	}
}

// TestFigure2ConstParameter: the parameter pointer is loaded from but
// never stored through, which is what drives the const-recovery policy
// of §6.4 (Example 4.1): VAR p.in.load holds, VAR p.in.store must not.
func TestFigure2ConstParameter(t *testing.T) {
	res := inferFig2(t)
	pr := res.Procs["close_last"]
	sk := pr.Sketch
	inW := label.Word{label.In("stack0")}
	if !sk.Accepts(inW.Append(label.Load())) {
		t.Error("expected in_stack0.load capability")
	}
	// Note: shape inference conflates load/store targets but only adds
	// labels that occur; the store capability must be absent.
	if sk.Accepts(inW.Append(label.Store())) {
		t.Error("unexpected in_stack0.store capability — const recovery would fail")
	}
}

// TestFormalsAndOut checks the recovered interface of close_last.
func TestFormalsAndOut(t *testing.T) {
	res := inferFig2(t)
	pi := res.Infos["close_last"]
	if len(pi.FormalIns) != 1 || pi.FormalIns[0].ParamName() != "stack0" {
		t.Errorf("formals = %v, want [stack0]", pi.FormalIns)
	}
	if !pi.HasOut {
		t.Error("close_last must have an output (via the tail call)")
	}
}

// TestPolymorphicMalloc: two wrappers calling malloc must NOT have
// their return types linked (let-polymorphism at callsites, §2.2): the
// int-list allocator and the string-pair allocator stay independent.
func TestPolymorphicMalloc(t *testing.T) {
	src := `
proc alloc_a
    push 8
    call malloc
    add esp, 4
    mov [eax], eax      ; a->next = self (recursive struct a)
    ret
endproc

proc alloc_b
    push 12
    call malloc
    add esp, 4
    mov ecx, [eax+8]    ; read 3rd field
    ret
endproc

proc use_both
    call alloc_a
    mov ebx, eax
    call alloc_b
    mov ecx, [ebx]      ; deref a's field
    ret
endproc
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Infer(prog, lattice.Default(), nil, DefaultOptions())

	aOut := res.Procs["alloc_a"]
	if aOut == nil {
		t.Fatal("missing alloc_a")
	}
	// alloc_a's return must be a writable pointer.
	skA, ok := aOut.OutSketch()
	if !ok {
		t.Fatalf("alloc_a has no out sketch:\n%s", aOut.Sketch)
	}
	if !skA.Accepts(label.Word{label.Store()}) {
		t.Errorf("alloc_a out is not a writable pointer:\n%s", skA)
	}
	// alloc_b's return must have the σ32@8 field but NOT alloc_a's
	// recursive structure (no cross-callsite pollution).
	bOut := res.Procs["alloc_b"]
	skB, ok := bOut.OutSketch()
	if !ok {
		t.Fatal("alloc_b has no out sketch")
	}
	if !skB.Accepts(label.Word{label.Load(), label.Field(32, 8)}) {
		t.Errorf("alloc_b out lacks the σ32@8 field:\n%s", skB)
	}
	if skB.Accepts(label.Word{label.Store(), label.Field(32, 0)}) &&
		skA.Equal(skB) {
		t.Errorf("malloc wrappers were unified — polymorphism lost")
	}
}

// TestSchemeInstantiationForgetsFields (§3.4): passing a more capable
// struct to a function that uses only one field must typecheck without
// forcing the extra fields onto the function's formal.
func TestSchemeInstantiationForgetsFields(t *testing.T) {
	src := `
proc get0
    mov ecx, [esp+4]
    mov eax, [ecx]
    ret
endproc

proc caller
    mov ecx, [esp+4]    ; rich struct pointer
    mov edx, [ecx+4]    ; caller uses field 4 itself
    push ecx
    call get0           ; and passes the struct to get0
    add esp, 4
    ret
endproc
`
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := Infer(prog, lattice.Default(), nil, DefaultOptions())

	// get0's own (unspecialized) formal sketch must not have the σ32@4
	// field: instantiation, not subtyping, absorbs the extra
	// capability.
	g0 := res.Procs["get0"]
	formal, ok := g0.Sketch.Descend(label.Word{label.In("stack0")})
	if !ok {
		t.Fatalf("get0 formal missing:\n%s", g0.Sketch)
	}
	if formal.Accepts(label.Word{label.Load(), label.Field(32, 4)}) {
		t.Errorf("get0's formal absorbed the caller's extra field — "+
			"non-structural subtyping leaked through a callsite:\n%s", formal)
	}
	// The specialized formal (F.3) MAY pick the field up; that is the
	// point of specialization.
	if sp := g0.SpecializedIns["stack0"]; sp != nil {
		if !sp.Accepts(label.Word{label.Load(), label.Field(32, 0)}) {
			t.Errorf("specialized formal lost its own field:\n%s", sp)
		}
	}
}
