package solver

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"retypd/internal/pgraph"
)

// Cache persistence: Engine.SaveCache writes the engine's scheme and
// shape memos to a versioned, checksummed file; LoadCache reads one
// back into a fresh engine in any process. Entries survive the trip
// because everything in them is canonical bytes — fingerprint digests
// computed over portable content, constraint sets and sketches encoded
// by rendered names and label wire forms (see the wire files of
// pgraph, sketch, constraints, intern and label).
//
// File layout:
//
//	magic ++ uvarint(cacheFormatVersion) ++ byte(pgraph.FPVersion)
//	++ scheme section (pgraph.SimplifyCache.AppendWire)
//	++ shape section (sketch.ShapeCache.AppendWire)
//	++ body section (bodyCache.appendWire):
//	     uvarint(nextID) ++ uvarint(class count)
//	     per class, ascending id:
//	       uvarint(id) ++ fingerprint wire (bodyfp.FP.AppendWire)
//	       ++ byte(hasEntry) [++ uvarint(len) ++ entry blob]
//	     entry blob: rep name ++ publisher fingerprint wire
//	       ++ scheme wire ++ sketch wire
//	       ++ uvarint(call count) ++ namedProc bytes
//	       ++ uvarint(obs count) per obs (uvarint(inst) ++ loc ++ sketch wire)
//	       ++ byte(hasRaw) [++ constraint-set wire]
//	++ sha256 of everything preceding (32 bytes)
//
// Version-bump rules (the wire-format invariant): any change to what a
// memo key or value encodes must be reflected either in FPVersion
// (content hashed into fingerprints — it already invalidates the keys
// themselves), in bodyfp's encVersion (body fingerprints prefix their
// own version, so stale classes can simply never be hit), or in
// cacheFormatVersion (entry/value layout). A loader refuses files whose
// versions differ from its own; there is no migration path, by design —
// a stale cache is merely cold, never wrong. The trailing checksum
// rejects truncated or corrupted files before any entry is decoded.
//
// Body classes persist WITH their table-scoped ids: caller fingerprints
// filed in the same table embed callee class ids in their canonical
// encodings, so the id assignment is part of the table's content. For
// the same reason the body section only installs into an engine whose
// body table has never filed a class (LoadCache's fresh engine; a
// warmed engine refuses it) — merging two tables would renumber one
// side's ids and silently corrupt every embedded CalleeClass reference.
// Entry blobs are length-prefixed so an entry whose sketches reference
// a lattice not built in this process is skipped whole (the class
// survives — membership never needs the lattice).

// cacheMagic identifies a retypd cache file.
const cacheMagic = "retypd-cache\x00"

// cacheFormatVersion versions the file layout and every embedded wire
// encoding. Bump on any encoding change that FPVersion does not
// already capture. v2 added the body-class section.
const cacheFormatVersion = 2

// CacheLoadStats reports what a LoadCache call decoded.
type CacheLoadStats struct {
	// SchemeEntries and ShapeEntries count loaded memo entries.
	SchemeEntries, ShapeEntries int
	// SkippedShapeEntries counts shape entries dropped because their
	// lattice has not been built in this process (harmless: they could
	// never be hit here either).
	SkippedShapeEntries int
	// BodyClasses and BodyEntries count loaded body-dedup classes and
	// the published entries they carried.
	BodyClasses, BodyEntries int
	// SkippedBodyEntries counts body entries dropped for an unbuilt
	// lattice (their classes are kept — membership needs no lattice).
	SkippedBodyEntries int
}

// SaveCacheTo writes the engine's cache stack to w.
func (e *Engine) SaveCacheTo(w io.Writer) error {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, cacheMagic...)
	buf = binary.AppendUvarint(buf, cacheFormatVersion)
	buf = append(buf, pgraph.FPVersion)
	buf = e.schemes.AppendWire(buf)
	buf = e.shapes.AppendWire(buf)
	buf = e.bodies.appendWire(buf)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	_, err := w.Write(buf)
	return err
}

// SaveCache writes the engine's cache stack to path (atomically: a
// temp file in the same directory is renamed over the target).
func (e *Engine) SaveCache(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".retypd-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := e.SaveCacheTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// LoadCacheData decodes a cache blob produced by SaveCacheTo into e's
// caches (merging with whatever they already hold; recency of loaded
// entries is preserved). It verifies the checksum and versions before
// decoding a single entry.
func (e *Engine) LoadCacheData(data []byte) (CacheLoadStats, error) {
	var st CacheLoadStats
	if len(data) < len(cacheMagic)+sha256.Size {
		return st, fmt.Errorf("solver: cache file too short")
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(tail) {
		return st, fmt.Errorf("solver: cache file checksum mismatch (truncated or corrupted)")
	}
	if string(body[:len(cacheMagic)]) != cacheMagic {
		return st, fmt.Errorf("solver: not a retypd cache file")
	}
	n := len(cacheMagic)
	ver, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return st, fmt.Errorf("solver: truncated cache format version")
	}
	n += m
	if ver != cacheFormatVersion {
		return st, fmt.Errorf("solver: cache format version %d (this build reads %d)", ver, cacheFormatVersion)
	}
	if n >= len(body) || body[n] != pgraph.FPVersion {
		return st, fmt.Errorf("solver: cache fingerprint version mismatch (this build computes v%d)", pgraph.FPVersion)
	}
	n++
	m, loaded, err := e.schemes.LoadWire(body[n:])
	if err != nil {
		return st, err
	}
	st.SchemeEntries = loaded
	n += m
	m, loaded, skipped, err := e.shapes.LoadWire(body[n:])
	if err != nil {
		return st, err
	}
	st.ShapeEntries, st.SkippedShapeEntries = loaded, skipped
	n += m
	m, classes, bodyEntries, bodySkipped, err := e.bodies.loadWire(body[n:])
	if err != nil {
		return st, err
	}
	st.BodyClasses, st.BodyEntries, st.SkippedBodyEntries = classes, bodyEntries, bodySkipped
	n += m
	if n != len(body) {
		return st, fmt.Errorf("solver: %d trailing bytes after cache sections", len(body)-n)
	}
	return st, nil
}

// LoadCache reads a cache file into a fresh engine with the given cache
// capacities (≤ 0 selects defaults).
func LoadCache(path string, schemeCap, shapeCap int) (*Engine, CacheLoadStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, CacheLoadStats{}, err
	}
	e := NewEngine(schemeCap, shapeCap)
	st, err := e.LoadCacheData(data)
	if err != nil {
		return nil, st, err
	}
	return e, st, nil
}
