package solver

import (
	"context"
	"encoding/binary"
	"hash/maphash"
	"runtime/debug"
	"sync"

	"retypd/internal/asm"
	"retypd/internal/bodyfp"
	"retypd/internal/cfg"
	"retypd/internal/conc"
	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/sketch"
	"retypd/internal/summaries"
)

// Engine is a long-lived analysis session: it owns the whole memo stack
// (the scheme-simplification and shape caches shared by every run, plus
// the per-run body-dedup layer the pipeline builds itself) and the
// session state incremental re-analysis diffs against. Where a plain
// Infer call is one-shot — private caches, nothing retained — an Engine
// is the unit a service keeps warm: run after run shares the caches,
// Reanalyze replays everything a small edit did not touch, and
// SaveCache/LoadCache move the cache stack across process restarts.
//
// Methods are safe for concurrent use. Concurrent Infer calls share the
// caches freely (their keys are canonical; see the cache sharing
// contracts); session recording is last-writer-wins, and Reanalyze
// diffs against the most recently recorded session.
type Engine struct {
	schemes *pgraph.SimplifyCache
	shapes  *sketch.ShapeCache
	// bodies is the engine-scoped body-class table: the third, topmost
	// cache layer. Runs through this engine file every analyzed body
	// here; a later run (of this or any other program) whose body is
	// equivalent is served the sealed entry before its front end runs.
	bodies *bodyCache

	// noSessions disables session recording (DisableSessionRecording):
	// the engine is then a pure cache sharer.
	noSessions bool

	mu   sync.Mutex
	sess *session
}

// NewEngine returns an engine with empty caches bounded to the given
// capacities (≤ 0 selects the package defaults).
func NewEngine(schemeCap, shapeCap int) *Engine {
	return &Engine{
		schemes: pgraph.NewSimplifyCache(schemeCap),
		shapes:  sketch.NewShapeCache(shapeCap),
		bodies:  newBodyCache(),
	}
}

// SchemeCache exposes the engine's scheme-simplification memo
// (observability: Stats/Len).
func (e *Engine) SchemeCache() *pgraph.SimplifyCache { return e.schemes }

// ShapeCache exposes the engine's phase-2 shape memo.
func (e *Engine) ShapeCache() *sketch.ShapeCache { return e.shapes }

// DisableSessionRecording turns the engine into a pure cache sharer:
// Infer skips the session snapshot (the whole-program fingerprint pass
// and the retention of the previous run's analyses), and Reanalyze
// degrades to a full Infer. For callers that run many unrelated
// programs through one engine purely for the shared memos — the
// evaluation suite is one — and never re-analyze an edited program.
// Call before the first Infer; not synchronized with concurrent runs.
func (e *Engine) DisableSessionRecording() {
	e.noSessions = true
	e.mu.Lock()
	e.sess = nil
	e.mu.Unlock()
}

// session is the recorded outcome of the engine's most recent run: the
// inputs that parameterized it and, per procedure, everything a clean
// replay needs. Sessions are immutable once published. Every field must
// reach the persisted wire form (SaveSessionTo) — a session loaded in a
// fresh process must replay exactly like the one that was saved.
//
//retypd:cachekey Engine.SaveSessionTo
type session struct {
	latSig string
	// sumsDig is the content digest of the run's summaries table
	// (sumsDigest): sessions loaded from disk carry only the digest,
	// never the table, so compatibility is always a digest compare.
	sumsDig string
	opts    Options
	procs   map[string]*procSnap
	// sccKey maps each procedure to a canonical rendering of its SCC's
	// member set; a membership change invalidates the whole SCC even
	// when a member's own body did not change (its scheme was
	// simplified relative to the old SCC union).
	sccKey map[string]string
}

// procSnap is one procedure's session snapshot.
//
//retypd:cachekey Engine.SaveSessionTo
type procSnap struct {
	// fp is the portable body fingerprint (named callee identities), the
	// dirtiness oracle: equal fingerprints plus clean transitive callees
	// imply byte-identical pipeline output for the procedure.
	fp *bodyfp.FP
	// info carries the per-procedure CFG analyses for rebasing onto the
	// next program (cfg.ProcInfo.CloneForProgram). Deliberately absent
	// from the session wire form: ProcInfo holds program-relative state
	// that is cheap to recompute and must never reach a persisted key
	// (docs/ARCHITECTURE.md invariant) — the first Reanalyze after a
	// load rebuilds it from the new program's CFG.
	//retypd:notkey program-relative CFG state, rebuilt on load by the first Reanalyze
	info   *cfg.ProcInfo
	scheme *constraints.Scheme
	// pr is the full phase-2/3 result; its Sketch is sealed at record
	// time so replays can share it across runs and goroutines.
	pr *ProcResult
	// obs are the callsite-actual observations the procedure
	// contributed to phase 3, replayed verbatim for clean procedures.
	obs []actualObs
}

// sessionConfig derives the body-fingerprint configuration of a run.
// Only named callee identities are used, so session fingerprints are
// portable and independent of any per-run class numbering.
func sessionConfig(lat *lattice.Lattice, opts Options) bodyfp.Config {
	return bodyfp.Config{
		MonomorphicCalls:      opts.Absint.MonomorphicCalls,
		PolymorphicExternals:  opts.Absint.PolymorphicExternals,
		NoConstantSuppression: opts.Absint.NoConstantSuppression,
		LatticeSig:            lat.Signature(),
	}
}

// namedCallee is the CalleeID source of session fingerprints: every
// target is identified by its exact name. Unlike the in-run dedup
// layer there is no eligibility filtering — session fingerprints cover
// every procedure, including self-recursive ones and reserved names.
func namedCallee(target string) (bodyfp.CalleeID, bool) {
	return bodyfp.CalleeID{Kind: bodyfp.CalleeNamed, Name: target}, true
}

// sessionable reports whether a run's options admit session recording.
// Covered (trace-restricted generation) is a function and cannot be
// compared across runs, so such runs are never recorded.
func sessionable(opts Options) bool { return opts.Absint.Covered == nil }

// optsCompatible reports whether two runs' options produce comparable
// sessions (worker count and cache knobs never change output, so they
// are ignored).
func optsCompatible(a, b Options) bool {
	return a.Absint.MonomorphicCalls == b.Absint.MonomorphicCalls &&
		a.Absint.PolymorphicExternals == b.Absint.PolymorphicExternals &&
		a.Absint.NoConstantSuppression == b.Absint.NoConstantSuppression &&
		a.Absint.Covered == nil && b.Absint.Covered == nil &&
		a.MaxSketchDepth == b.MaxSketchDepth &&
		a.NoSpecialize == b.NoSpecialize &&
		a.KeepIntermediates == b.KeepIntermediates
}

// withEngineCaches forces the engine's caches into opts (the deprecated
// per-call cache knobs are superseded; the No* escape hatches keep
// working for baseline measurements).
func (e *Engine) withEngineCaches(opts Options) Options {
	opts.SchemeCache = e.schemes
	opts.ShapeCache = e.shapes
	opts.bodyCache = e.bodies
	return opts
}

// Infer runs the full pipeline with the engine's caches and records the
// run as the engine's current session. It cannot be cancelled; a
// contained task panic (*AnalysisError) or an admission rejection
// (*LimitError) is re-raised. Services use InferContext.
func (e *Engine) Infer(prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) *Result {
	res, err := e.InferContext(context.Background(), prog, lat, sums, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// InferContext is Infer under a context: cancellation and deadlines are
// observed cooperatively at task boundaries (an already-cancelled ctx
// returns before any worker spawns), task panics come back as
// structured *AnalysisError, and oversized inputs as *LimitError. On
// any error the engine publishes nothing — no session is recorded, the
// shared caches hold only completed computes — so the engine stays
// usable and its next run is byte-identical to one on a never-faulted
// engine.
func (e *Engine) InferContext(ctx context.Context, prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) (res *Result, err error) {
	// Backstop containment: the pipeline converts task panics itself;
	// anything that still unwinds to here (a fault in pre-pipeline
	// analysis or in session recording) must not crash the process the
	// engine serves.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &AnalysisError{SCC: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	if sums == nil {
		sums = summaries.Default()
	}
	opts = e.withEngineCaches(opts)
	opts.ctx = ctx
	res, art, err := infer(prog, lat, sums, opts, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	e.record(lat, sums, opts, res, art, nil)
	return res, nil
}

// Reanalyze infers prog incrementally against the engine's previous
// session: procedures whose portable body fingerprints are unchanged —
// and whose transitive callees are all unchanged, and whose SCC
// membership did not move — are replayed from the session verbatim;
// only dirty SCCs and their condensed-call-graph ancestors run the
// pipeline. The result is byte-identical to a from-scratch Infer of
// prog (a golden guarantee the tests enforce on the corpus); the run
// becomes the engine's new session. Without a compatible previous
// session this degrades to a full (recorded) run.
func (e *Engine) Reanalyze(prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) *Result {
	res, err := e.ReanalyzeContext(context.Background(), prog, lat, sums, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// ReanalyzeContext is Reanalyze under a context, with the same error
// and no-partial-state contract as InferContext: on cancellation, task
// panic, or admission rejection the previous session stays current and
// nothing of the aborted run is published.
func (e *Engine) ReanalyzeContext(ctx context.Context, prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &AnalysisError{SCC: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	if sums == nil {
		sums = summaries.Default()
	}
	e.mu.Lock()
	sess := e.sess
	e.mu.Unlock()
	if sess == nil || !sessionable(opts) ||
		sess.latSig != lat.Signature() || !optsCompatible(sess.opts, opts) ||
		sess.sumsDig != sumsDigest(sums) {
		return e.InferContext(ctx, prog, lat, sums, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := admit(prog, opts); err != nil {
		return nil, err
	}
	opts = e.withEngineCaches(opts)
	opts.ctx = ctx

	// Rebuild the program analyses in parallel, rebasing every unchanged
	// procedure body onto the new program instead of re-running its
	// per-procedure analyses (a session loaded from disk carries no
	// analyses, so its first Reanalyze re-analyzes everything); the
	// interprocedural HasOut fixpoint always re-runs. Byte-identical
	// bodies share one analysis: ProcInfo is a pure function of the
	// instruction stream, so one representative per group is analyzed
	// and the rest clone — the same economy the body-dedup layer gives a
	// cold run (dedup.go), without which warm-path CFG analysis would
	// dominate Reanalyze on duplicate-heavy programs.
	workers := conc.Limit(opts.Workers)
	infoList := make([]*cfg.ProcInfo, len(prog.Procs))
	rep := make([]int, len(prog.Procs))
	bodyGroups := make(map[uint64][]int, len(prog.Procs))
	for i, p := range prog.Procs {
		rep[i] = i
		h := bodyHashOf(p)
		for _, j := range bodyGroups[h] {
			if prog.Procs[j].EqualBody(p) {
				rep[i] = j
				break
			}
		}
		if rep[i] == i {
			bodyGroups[h] = append(bodyGroups[h], i)
		}
	}
	if err := conc.ForEachCtx(ctx, workers, len(prog.Procs), func(i int) {
		if rep[i] != i {
			return
		}
		p := prog.Procs[i]
		if snap, ok := sess.procs[p.Name]; ok && snap.info != nil && snap.info.Proc.EqualBody(p) {
			infoList[i] = snap.info.CloneForProgram(prog, p)
		} else {
			infoList[i] = cfg.Analyze(prog, p)
		}
	}); err != nil {
		return nil, err
	}
	for i, p := range prog.Procs {
		if rep[i] != i {
			infoList[i] = infoList[rep[i]].CloneForProgram(prog, p)
		}
	}
	infos := make(map[string]*cfg.ProcInfo, len(prog.Procs))
	for i, p := range prog.Procs {
		infos[p.Name] = infoList[i]
	}
	cfg.FinishHasOut(infos)
	cg := cfg.BuildCallGraph(prog)

	// Portable body fingerprints of the new program.
	conf := sessionConfig(lat, opts)
	order := prog.Procs
	fps := make([]*bodyfp.FP, len(order))
	if err := conc.ForEachCtx(ctx, workers, len(order), func(i int) {
		fps[i] = bodyfp.ComputeWithLiveMask(order[i], conf, namedCallee, infoList[i].EntryLive)
	}); err != nil {
		return nil, err
	}
	fpOf := make(map[string]*bodyfp.FP, len(order))
	for i, p := range order {
		fpOf[p.Name] = fps[i]
	}

	// Seed dirtiness: new/changed bodies, calls whose target flipped
	// between program-procedure and external (the fingerprint encodes
	// only the name, but generation models the two differently), and
	// SCC membership changes.
	isProcNew := func(name string) bool { _, ok := infos[name]; return ok }
	isProcOld := func(name string) bool { _, ok := sess.procs[name]; return ok }
	dirty := make(map[string]bool, len(order))
	for _, p := range order {
		snap, ok := sess.procs[p.Name]
		d := !ok || !snap.fp.EquivalentTo(fpOf[p.Name])
		if !d && opts.KeepIntermediates && !snap.fp.SameRegisters(fpOf[p.Name]) {
			// The fingerprint is canonical over scratch-register
			// symmetry classes, but the raw kept constraint set embeds
			// actual register names in its defVar suffixes — replaying
			// it across a register renaming would diverge from
			// from-scratch output. Same guard as the in-run dedup
			// layer (dedup.go).
			d = true
		}
		if !d {
			for _, c := range fpOf[p.Name].Calls() {
				if isProcNew(c.Target) != isProcOld(c.Target) {
					d = true
					break
				}
			}
		}
		dirty[p.Name] = d
	}
	sccKey := sccKeys(cg)
	for p, key := range sccKey {
		if sess.sccKey[p] != key {
			dirty[p] = true
		}
	}

	// Propagate to ancestors over the condensed call graph: schemes flow
	// callee→caller, so every SCC that can reach a dirty SCC must
	// recompute. cg.SCCs is bottom-up (every call edge from SCC i lands
	// in some SCC j < i), so one forward pass suffices.
	sccOf := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	sccDirty := make([]bool, len(cg.SCCs))
	for i, scc := range cg.SCCs {
		d := false
		for _, p := range scc {
			if dirty[p] {
				d = true
				break
			}
		}
		if !d {
		outer:
			for _, p := range scc {
				for _, callee := range cg.Callees[p] {
					if j, ok := sccOf[callee]; ok && j != i && sccDirty[j] {
						d = true
						break outer
					}
				}
			}
		}
		sccDirty[i] = d
		if d {
			for _, p := range scc {
				dirty[p] = true
			}
		}
	}

	replay := make(map[string]*procSnap, len(order))
	for _, p := range order {
		if !dirty[p.Name] {
			replay[p.Name] = sess.procs[p.Name]
		}
	}

	res, art, err := infer(prog, lat, sums, opts, infos, cg, &incrementalPlan{dirty: dirty, replay: replay})
	if err != nil {
		return nil, err
	}
	e.record(lat, sums, opts, res, art, fpOf)
	return res, nil
}

// sccKeys renders each procedure's SCC membership canonically (members
// are already in deterministic slice order).
func sccKeys(cg *cfg.CallGraph) map[string]string {
	out := make(map[string]string, len(cg.SCCs))
	for _, scc := range cg.SCCs {
		key := ""
		for _, p := range scc {
			key += p + "\x00"
		}
		for _, p := range scc {
			out[p] = key
		}
	}
	return out
}

// replayProc rebuilds a clean procedure's result from its session
// snapshot: a fresh shell (phase 3 fills SpecializedIns per run)
// sharing the immutable pieces — the scheme, the sealed sketch, the
// kept constraint set — plus the recorded callsite observations.
func (pl *pipeline) replayProc(p string) (*ProcResult, []actualObs) {
	snap := pl.inc.replay[p]
	pi := pl.infos[p]
	pr := &ProcResult{
		Name:           p,
		FormalIns:      pi.FormalIns,
		HasOut:         pi.HasOut,
		Scheme:         snap.scheme,
		Sketch:         snap.pr.Sketch,
		SpecializedIns: map[string]*sketch.Sketch{},
		Constraints:    snap.pr.Constraints,
	}
	return pr, snap.obs
}

// bodyHashSeed keys the in-memory body-grouping hash of Reanalyze. The
// hash never leaves the process (candidates are confirmed with
// EqualBody), so the per-process seed is fine.
var bodyHashSeed = maphash.MakeSeed()

// bodyHashOf hashes a procedure's raw instruction stream for exact
// body grouping. Collisions are harmless (EqualBody arbitrates);
// labels need not be folded in for the same reason.
func bodyHashOf(p *asm.Proc) uint64 {
	var h maphash.Hash
	h.SetSeed(bodyHashSeed)
	var word [8]byte
	for _, in := range p.Insts {
		binary.LittleEndian.PutUint32(word[:4], uint32(in.Op))
		word[4] = byte(in.Dst.Kind)
		word[5] = byte(in.Dst.Reg)
		word[6] = byte(in.Src.Kind)
		word[7] = byte(in.Src.Reg)
		h.Write(word[:])
		binary.LittleEndian.PutUint32(word[:4], uint32(in.Dst.Imm))
		binary.LittleEndian.PutUint32(word[4:], uint32(in.Src.Imm))
		h.Write(word[:])
		h.WriteString(in.Target)
	}
	return h.Sum64()
}

// record publishes a run as the engine's session. fpOf carries the
// session fingerprints when the caller already computed them
// (Reanalyze); otherwise they are computed here. Runs whose options
// cannot be compared across calls (trace-restricted generation) are
// not recorded.
func (e *Engine) record(lat *lattice.Lattice, sums summaries.Table, opts Options, res *Result, art *runArtifacts, fpOf map[string]*bodyfp.FP) {
	if e.noSessions || !sessionable(opts) {
		return
	}
	// Sessions outlive the run; never retain its cancellation context.
	opts.ctx = nil
	conf := sessionConfig(lat, opts)
	if fpOf == nil {
		fps := make([]*bodyfp.FP, len(art.order))
		workers := conc.Limit(opts.Workers)
		conc.ForEach(workers, len(art.order), func(i int) {
			fps[i] = bodyfp.Compute(res.Prog.ProcIndex[art.order[i]], conf, namedCallee)
		})
		fpOf = make(map[string]*bodyfp.FP, len(art.order))
		for i, p := range art.order {
			fpOf[p] = fps[i]
		}
	}
	sess := &session{
		latSig:  lat.Signature(),
		sumsDig: sumsDigest(sums),
		opts:    opts,
		procs:   make(map[string]*procSnap, len(art.order)),
		sccKey:  sccKeys(art.cg),
	}
	for i, p := range art.order {
		pr := art.prs[i]
		// Seal everything a future run will share: the procedure sketch
		// and the observation sketches. Sealing is idempotent and
		// read-transparent — derived views copy instead of mutating.
		if pr.Sketch != nil {
			pr.Sketch.Seal()
		}
		for _, o := range art.obs[i] {
			if o.sk != nil {
				o.sk.Seal()
			}
		}
		sess.procs[p] = &procSnap{
			fp:     fpOf[p],
			info:   res.Infos[p],
			scheme: pr.Scheme,
			pr:     pr,
			obs:    art.obs[i],
		}
	}
	e.mu.Lock()
	e.sess = sess
	e.mu.Unlock()
}
