package solver

import (
	"testing"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
)

// TestAblationMonomorphicMalloc: with callsite tagging disabled, the
// two malloc-wrapper callers bleed into each other — the §2.2 argument
// for polymorphism.
func TestAblationMonomorphicMalloc(t *testing.T) {
	src := `
proc xalloc
    mov eax, [esp+4]
    push eax
    call malloc
    add esp, 4
    ret
endproc
proc mk_a
    push 8
    call xalloc
    add esp, 4
    mov esi, eax
    call rand
    mov [esi], eax
    mov eax, esi
    ret
endproc
proc mk_b
    push 8
    call xalloc
    add esp, 4
    mov esi, eax
    mov ecx, [esp+4]
    mov [esi+4], ecx
    mov eax, esi
    ret
endproc
`
	prog := asm.MustParse(src)
	lat := lattice.Default()

	// Polymorphic: mk_a's object has only the σ32@0 field.
	poly := Infer(prog, lat, nil, DefaultOptions())
	skA, ok := poly.Procs["mk_a"].OutSketch()
	if !ok {
		t.Fatal("mk_a has no out")
	}
	if skA.Accepts(label.Word{label.Store(), label.Field(32, 4)}) {
		t.Errorf("polymorphic mk_a absorbed mk_b's field:\n%s", skA)
	}

	// Monomorphic ablation: all callers share one xalloc.out_eax
	// variable, so solving the whole-program constraint set merges the
	// allocations — the shared return class accumulates BOTH callers'
	// fields (exactly the over-merging §2.2 warns about).
	opts := DefaultOptions()
	opts.Absint = absint.Options{MonomorphicCalls: true}
	mono := Infer(prog, lat, nil, opts)
	global := constraints.NewSet()
	for _, pr := range mono.Procs {
		global.InsertAll(pr.Constraints)
	}
	shapes := sketch.NewBuilder(global, lat)
	skOut := shapes.SketchFor("xalloc", -1)
	outSk, ok := skOut.Descend(label.Word{label.Out("eax")})
	if !ok {
		t.Fatalf("xalloc has no out in the global quotient:\n%s", skOut)
	}
	has0 := outSk.Accepts(label.Word{label.Store(), label.Field(32, 0)})
	has4 := outSk.Accepts(label.Word{label.Store(), label.Field(32, 4)})
	if !has0 || !has4 {
		t.Errorf("monomorphic solving should merge both callers' fields (σ0=%v σ4=%v):\n%s",
			has0, has4, outSk)
	}

	// Under polymorphism the same global exercise keeps the callsite
	// instances apart: xalloc's own (untagged) return stays free of the
	// callers' fields.
	polyGlobal := constraints.NewSet()
	for _, pr := range poly.Procs {
		polyGlobal.InsertAll(pr.Constraints)
	}
	shapes2 := sketch.NewBuilder(polyGlobal, lat)
	skOut2 := shapes2.SketchFor("xalloc", -1)
	if outSk2, ok := skOut2.Descend(label.Word{label.Out("eax")}); ok {
		if outSk2.Accepts(label.Word{label.Store(), label.Field(32, 4)}) {
			t.Errorf("polymorphic instances leaked into xalloc's own scheme:\n%s", outSk2)
		}
	}
}

// TestAblationConstantSuppression: without §2.1 handling, the zero
// pseudo-variable ties the NULL arguments to each other.
func TestAblationConstantSuppression(t *testing.T) {
	src := `
proc callee
    mov eax, [esp+4]
    mov ecx, [esp+8]
    mov edx, [ecx]
    ret
endproc
proc caller
    xor eax, eax
    push eax
    push eax
    call callee
    add esp, 8
    ret
endproc
`
	prog := asm.MustParse(src)
	lat := lattice.Default()

	// Paper-faithful: the int parameter stays pointer-free.
	res := Infer(prog, lat, nil, DefaultOptions())
	sk, ok := res.Procs["callee"].InSketch("stack0")
	if !ok {
		t.Fatal("no param sketch")
	}
	if sk.Accepts(label.Word{label.Load()}) {
		t.Errorf("suppressed constants must not link the parameters:\n%s", sk)
	}

	// Ablated: both actuals flow through caller!zero; the unification
	// baseline (which symmetrizes) then gives param0 the pointer
	// capability of param1. Under subtyping the flow is still
	// directional, so we check at the constraint level instead: the
	// zero variable now constrains both formals.
	opts := DefaultOptions()
	opts.Absint = absint.Options{NoConstantSuppression: true}
	res2 := Infer(prog, lat, nil, opts)
	text := res2.Procs["caller"].Constraints.String()
	if !contains(text, "caller!zero") {
		t.Errorf("ablation should emit the shared zero variable:\n%s", text)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestAblationNoPointerRule is covered structurally: S-POINTER is what
// makes the Figure 4 programs typecheck (TestFigure4 in pgraph); here
// we confirm the end-to-end pipeline preserves the value flow through
// a write-then-read pointer round trip.
func TestPointerRoundTripEndToEnd(t *testing.T) {
	src := `
proc f
    mov ecx, [esp+4]     ; q
    mov edx, [esp+8]     ; p, aliased supertype of q
    mov eax, [esp+12]    ; x
    mov [edx], eax       ; *p = x
    mov eax, [ecx]       ; y = *q  (must see x's type)
    push eax
    call close
    add esp, 4
    ret
endproc
proc g
    push 5
    call malloc
    add esp, 4
    push eax
    push eax             ; p and q alias
    call rand
    push eax
    call f
    add esp, 12
    ret
endproc
`
	prog := asm.MustParse(src)
	lat := lattice.Default()
	res := Infer(prog, lat, nil, DefaultOptions())
	// x (param 2 of f) must pick up close's int ∧ #FileDescriptor
	// upper bound through the store/load round trip... only when p and
	// q are related. Within f they are not related (sound!), so check
	// the direct path: the loaded value flows to close.
	sk, ok := res.Procs["f"].InSketch("stack0")
	if !ok {
		t.Fatal("no sketch for q")
	}
	handle, ok2 := sk.StateAt(label.Word{label.Load(), label.Field(32, 0)})
	if !ok2 {
		t.Fatalf("q is not loadable:\n%s", sk)
	}
	intE := lat.MustElem("int")
	if !lat.Leq(sk.States[handle].Upper, intE) {
		t.Errorf("pointee upper bound should be ≤ int, got %s", lat.Name(sk.States[handle].Upper))
	}
}
