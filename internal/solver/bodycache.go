package solver

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"retypd/internal/bodyfp"
	"retypd/internal/constraints"
	"retypd/internal/sketch"
	"retypd/internal/summaries"
)

// bodyCache is the engine-scoped, persistent table behind the F.0
// body-class layer: body-equivalence classes keyed by canonical
// fingerprint, each optionally carrying the sealed results of the first
// full-path run of any member — the entry a later program's equivalent
// procedure is served from before the front end runs at all.
//
// Class ids are table-scoped: they are handed to bodyfp.Compute as
// CalleeClass identities and therefore appear inside the canonical
// encodings of caller fingerprints filed in the same table. That makes
// ids meaningless across tables — which is why persistence carries
// classes together with their ids and why LoadCacheData installs the
// body section only into an empty table (see persist.go).
//
// The table itself is only a grouping structure: which class id a body
// gets, and whether a run finds an entry or publishes one, never
// changes analysis output — entries are served through the same rename
// surgery as in-program members, and every serve is guarded by the
// servability checks in dedup.go. A table from a different
// configuration can never serve wrong results either: the fingerprint
// Config (generation options, lattice signature, context signature)
// prefixes every canonical encoding.
//
// All fields are guarded by mu. Entries are immutable once set and
// set at most once (first publisher wins).
type bodyCache struct {
	mu     sync.Mutex
	byHash map[uint64][]*bodyClass
	nextID uint32
}

func newBodyCache() *bodyCache {
	return &bodyCache{byHash: map[uint64][]*bodyClass{}}
}

// bodyClass is one body-equivalence class: the canonical fingerprint of
// its first-ever member and, once some member has run the full path to
// completion, that member's sealed results. Every field must reach the
// persisted wire form — a class that loads back without one would serve
// entries it cannot re-verify.
//
//retypd:cachekey bodyCache.appendWire
type bodyClass struct {
	id uint32
	// fp is the founding member's fingerprint — the authority for
	// membership (EquivalentTo against it confirms a hash match).
	fp *bodyfp.FP
	// entry holds the published results (nil until a full-path member
	// completes). Written once under bodyCache.mu; the pointed-to entry
	// is immutable.
	entry *bodyEntry
}

// bodyEntry is the published result of one full-path run of a class
// member: everything a later equivalent procedure needs to skip
// constraint generation, simplification and sketch solving, in the
// publisher's name space (consumers translate through absint.Renamer).
//
//retypd:cachekey appendEntryWire
type bodyEntry struct {
	// rep is the publisher's procedure name — the renamer's From side.
	rep string
	// fp is the publisher's fingerprint: its register assignment and
	// call sites drive the rename pairs and the SameRegisters check.
	fp *bodyfp.FP
	// namedProc records, per fp.Calls() site, whether the call target
	// was a procedure of the publisher's program. Meaningful for
	// CalleeNamed sites: generation models program procedures (scheme
	// instantiation) and externals (summary lookup) differently, so a
	// consumer whose same-named target resolves the other way must not
	// be served (see dedupState.entryPlan).
	namedProc []bool
	// scheme is the publisher's simplified type scheme.
	scheme *constraints.Scheme
	// sk is the publisher's solved sketch, sealed (sketches mention no
	// variable names, so it is shared verbatim).
	sk *sketch.Sketch
	// raw is the publisher's generated constraint set (nil when the
	// publishing run did not keep intermediates; KeepIntermediates
	// consumers then refuse the entry).
	raw *constraints.Set
	// obs are the publisher's callsite-actual observations keyed by
	// call site; consumers re-key them to their own callee names.
	obs []entryObs
}

// entryObs is one callsite-actual observation of a body entry: the
// callee name is deliberately absent (the consumer's same-site callee
// may be a different member of the same class) — it is recovered from
// the consumer's own fingerprint at serve time.
//
//retypd:cachekey appendEntryWire
type entryObs struct {
	inst int
	loc  string
	sk   *sketch.Sketch // sealed
}

// lookup returns the class equivalent to fp, creating it if absent,
// plus the class's current entry (nil when none is published yet).
func (bc *bodyCache) lookup(fp *bodyfp.FP) (*bodyClass, *bodyEntry) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for _, c := range bc.byHash[fp.Hash()] {
		if c.fp.EquivalentTo(fp) {
			return c, c.entry
		}
	}
	c := &bodyClass{id: bc.nextID, fp: fp}
	bc.nextID++
	bc.byHash[fp.Hash()] = append(bc.byHash[fp.Hash()], c)
	return c, nil
}

// setEntry publishes e as cls's entry unless one is already present
// (first publisher wins — concurrent runs may race here, and either
// entry serves equivalently).
func (bc *bodyCache) setEntry(cls *bodyClass, e *bodyEntry) {
	bc.mu.Lock()
	if cls.entry == nil {
		cls.entry = e
	}
	bc.mu.Unlock()
}

// stats reports the table's class and entry counts.
func (bc *bodyCache) stats() (classes, entries int) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for _, chain := range bc.byHash {
		classes += len(chain)
		for _, c := range chain {
			if c.entry != nil {
				entries++
			}
		}
	}
	return classes, entries
}

// sorted returns the table's classes in id order (the canonical order
// persistence writes them in).
func (bc *bodyCache) sorted() []*bodyClass {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	out := make([]*bodyClass, 0, len(bc.byHash))
	for _, chain := range bc.byHash {
		out = append(out, chain...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// empty reports whether the table has never filed a class.
func (bc *bodyCache) empty() bool {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.nextID == 0 && len(bc.byHash) == 0
}

// sumsDigest renders a summaries table's content digest: sorted names,
// each with its interface and rendered constraint set. Equal digests
// are what session compatibility and the body-class context signature
// require — a loaded session carries only the digest, never the table.
func sumsDigest(sums summaries.Table) string {
	names := make([]string, 0, len(sums))
	for k := range sums {
		names = append(names, k)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, k := range names {
		s := sums[k]
		if s == nil {
			fmt.Fprintf(h, "%s\x00nil\x00", k)
			continue
		}
		fmt.Fprintf(h, "%s\x00%s\x00%v\x00", k, s.Name, s.HasOut)
		for _, f := range s.FormalIns {
			fmt.Fprintf(h, "%v|", f)
		}
		fmt.Fprintf(h, "\x00%s\x00", s.Constraints.String())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runCtxSig folds everything beyond constraint generation that a
// persistent body entry depends on into one digest for
// bodyfp.Config.CtxSig: the summaries table (externals reach generated
// constraints through it) and the solve options shaping cached sketches
// and observations. KeepIntermediates is deliberately absent — it only
// decides whether the raw set is retained, which consumers check per
// entry at serve time instead of splitting the key space.
func runCtxSig(opts Options, sums summaries.Table) string {
	h := sha256.New()
	fmt.Fprintf(h, "depth=%d\x00nospec=%v\x00sums=%s", opts.MaxSketchDepth, opts.NoSpecialize, sumsDigest(sums))
	return hex.EncodeToString(h.Sum(nil))
}
