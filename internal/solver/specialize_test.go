package solver

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/label"
	"retypd/internal/lattice"
)

// TestExampleG2GetterSpecialization reproduces Example G.2: a getter
// equivalent to MyFile::filename has the highly polymorphic scheme
// ∀α,β.(β ⊑ dword, α.load.σ32@4 ⊑ β) ⇒ α → β, but every callsite
// passes a concrete object, so REFINEPARAMETERS (F.3) specializes the
// parameter to the observed struct — "the least polymorphic
// specialization compatible with the observed uses" (Example 4.3).
func TestExampleG2GetterSpecialization(t *testing.T) {
	src := `
; char *get_filename(const MyFile *this) { return this->m_filename; }
proc get_filename
    mov ecx, [esp+4]
    mov eax, [ecx+4]
    ret
endproc

; callers always pass a MyFile { FILE *m_handle; char *m_filename; }
proc open_and_name
    push 0
    push 0
    call fopen
    add esp, 8
    mov esi, eax         ; FILE *
    push 8
    call malloc
    add esp, 4
    mov [eax], esi       ; this->m_handle = f
    mov ecx, [esp+4]
    mov [eax+4], ecx     ; this->m_filename = name param
    push eax
    call get_filename
    add esp, 4
    push eax
    call puts
    add esp, 4
    ret
endproc
`
	prog := asm.MustParse(src)
	lat := lattice.Default()
	res := Infer(prog, lat, nil, DefaultOptions())

	g := res.Procs["get_filename"]
	// The unspecialized formal is polymorphic: only the σ32@4 field is
	// required; offset 0 is unconstrained.
	formal, ok := g.Sketch.Descend(label.Word{label.In("stack0")})
	if !ok {
		t.Fatal("no formal sketch")
	}
	if formal.Accepts(label.Word{label.Load(), label.Field(32, 0)}) {
		t.Errorf("unspecialized getter should not require offset 0:\n%s", formal)
	}

	// The specialized formal picks up the full MyFile shape from the
	// callsite: both fields present, with m_handle a FILE*.
	sp := g.SpecializedIns["stack0"]
	if sp == nil {
		t.Fatal("no specialized formal (F.3 did not run)")
	}
	if !sp.Accepts(label.Word{label.Store(), label.Field(32, 0)}) &&
		!sp.Accepts(label.Word{label.Load(), label.Field(32, 0)}) {
		t.Errorf("specialized getter should see the m_handle field:\n%s", sp)
	}
	if !sp.Accepts(label.Word{label.Load(), label.Field(32, 4)}) &&
		!sp.Accepts(label.Word{label.Store(), label.Field(32, 4)}) {
		t.Errorf("specialized getter lost its own field:\n%s", sp)
	}
}

// TestSpecializationDisabled: with NoSpecialize the F.3 pass is off and
// the formal stays maximally general.
func TestSpecializationDisabled(t *testing.T) {
	src := `
proc get0
    mov ecx, [esp+4]
    mov eax, [ecx]
    ret
endproc
proc use
    push 8
    call malloc
    add esp, 4
    mov esi, eax
    call rand
    mov [esi+4], eax
    push esi
    call get0
    add esp, 4
    ret
endproc
`
	prog := asm.MustParse(src)
	lat := lattice.Default()
	opts := DefaultOptions()
	opts.NoSpecialize = true
	res := Infer(prog, lat, nil, opts)
	if len(res.Procs["get0"].SpecializedIns) != 0 {
		t.Error("NoSpecialize must disable F.3")
	}
}
