package solver

import (
	"strings"
	"sync/atomic"

	"retypd/internal/absint"
	"retypd/internal/bodyfp"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
)

// Body deduplication is the pipeline's earliest memoization layer: it
// groups procedures whose IR bodies are equivalent (internal/bodyfp)
// *before* abstract interpretation, runs constraint generation,
// fingerprinting, scheme simplification and sketch solving once per
// class, and translates the representative's results to the other
// members by the name surgery of absint.Renamer. Where the scheme and
// shape memos (PR 2–3) made duplicate procedures cheap to *solve*,
// this layer makes them cheap to *reach*: members skip Generate, the
// constraint-set fingerprint (a SHA-256 over the whole set), both LRU
// lookups, and the per-procedure sketch plumbing entirely.
//
// Eligibility is conservative: only single-member, non-self-recursive
// SCCs participate, and only when every name involved (the procedure
// and its call targets) stays clear of the solver's reserved variable
// namespaces. Everything else falls back to the full path — body dedup
// never changes output, only work (a golden on/off equivalence the
// tests pin down byte-for-byte).
type dedupState struct {
	conf    bodyfp.Config
	isConst func(constraints.Var) bool
	keep    bool // Options.KeepIntermediates: members must also translate raw constraint sets

	// byHash chains body classes under their 64-bit grouping hash;
	// membership is confirmed against the full canonical encoding.
	byHash map[uint64][]*bodyClass
	// classOf assigns every fingerprinted procedure its class id — the
	// callee identity later levels mix into their own body hashes.
	classOf map[string]uint32
	nextID  uint32

	// hits/misses are atomic: classification misses are counted in the
	// sequential pre-pass, but member F.1 tasks account their
	// translation outcome concurrently on the readiness scheduler.
	hits, misses atomic.Uint64
}

// bodyClass is one body-equivalence class.
type bodyClass struct {
	id  uint32
	rep string
	fp  *bodyfp.FP
}

// memberPlan is everything needed to translate the representative's
// results to one member.
type memberPlan struct {
	rep string
	fp  *bodyfp.FP
	ren *absint.Renamer
}

func newDedupState(lat *lattice.Lattice, aopts absint.Options, isConst func(constraints.Var) bool, keep bool) *dedupState {
	return &dedupState{
		conf: bodyfp.Config{
			MonomorphicCalls:      aopts.MonomorphicCalls,
			PolymorphicExternals:  aopts.PolymorphicExternals,
			NoConstantSuppression: aopts.NoConstantSuppression,
			LatticeSig:            lat.Signature(),
		},
		isConst: isConst,
		keep:    keep,
		byHash:  map[uint64][]*bodyClass{},
		classOf: map[string]uint32{},
	}
}

// nameEligible rejects names that collide with the solver's reserved
// variable namespaces ('!' locals, '@' callsite tags, '¤' canonical
// fingerprint names, '.' DTV paths, 'τ' existentials): the rename
// surgery could not classify variables built from them unambiguously.
func nameEligible(s string) bool {
	if s == "" || strings.ContainsAny(s, "@!.¤") || strings.HasPrefix(s, "τ") {
		return false
	}
	return true
}

// eligible reports whether procedure p may participate in body dedup:
// a single-member SCC without self-calls, with an unreserved,
// non-constant name.
func (ds *dedupState) eligible(p string, cg *cfg.CallGraph) bool {
	if !nameEligible(p) || ds.isConst(constraints.Var(p)) {
		return false
	}
	for _, callee := range cg.Callees[p] {
		if callee == p {
			return false
		}
	}
	return true
}

// calleeID supplies bodyfp with the identity bound to a call target:
// the target's body class when it has one (so wrappers around
// interchangeable callees still dedup), its exact name otherwise.
// It is called concurrently during a level's fingerprint pre-pass;
// classOf is only written between levels.
func (ds *dedupState) calleeID(target string) (bodyfp.CalleeID, bool) {
	if !nameEligible(target) || ds.isConst(constraints.Var(target)) {
		return bodyfp.CalleeID{}, false
	}
	if id, ok := ds.classOf[target]; ok {
		return bodyfp.CalleeID{Kind: bodyfp.CalleeClass, ID: uint64(id)}, true
	}
	return bodyfp.CalleeID{Kind: bodyfp.CalleeNamed, Name: target}, true
}

// classify files fp under its class (creating one if it is the first
// occurrence) and returns a translation plan when p can be served as a
// member of an existing class, nil when p must run the full path.
// isProc identifies program-procedure names for the renamer's
// foreign-leak refusal.
func (ds *dedupState) classify(p string, fp *bodyfp.FP, isProc func(string) bool) *memberPlan {
	var cls *bodyClass
	for _, c := range ds.byHash[fp.Hash()] {
		if c.fp.EquivalentTo(fp) {
			cls = c
			break
		}
	}
	if cls == nil {
		cls = &bodyClass{id: ds.nextID, rep: p, fp: fp}
		ds.nextID++
		ds.byHash[fp.Hash()] = append(ds.byHash[fp.Hash()], cls)
		ds.classOf[p] = cls.id
		ds.misses.Add(1)
		return nil
	}
	// Class membership (and with it the callee identity served to
	// callers) holds regardless of whether p is actually served by
	// translation below: an excluded member computes the same scheme
	// the translation would have produced.
	ds.classOf[p] = cls.id

	if ds.keep && !fp.SameRegisters(cls.fp) {
		// KeepIntermediates retains the raw generated constraint set,
		// whose local names embed actual register names; translating it
		// across a scratch-register renaming would need name surgery
		// inside defVar suffixes. Rare enough to just compute fully.
		ds.misses.Add(1)
		return nil
	}
	repCalls, memCalls := cls.fp.Calls(), fp.Calls()
	if len(repCalls) != len(memCalls) {
		ds.misses.Add(1) // cannot happen for equivalent encodings; stay safe
		return nil
	}
	pairs := make([]absint.CallRename, len(repCalls))
	for i := range repCalls {
		if repCalls[i].Inst != memCalls[i].Inst {
			ds.misses.Add(1)
			return nil
		}
		pairs[i] = absint.CallRename{
			Inst: repCalls[i].Inst,
			From: repCalls[i].Target,
			To:   memCalls[i].Target,
		}
	}
	ren := absint.NewRenamer(cls.rep, p, pairs, isProc)
	if !ren.Valid() {
		ds.misses.Add(1)
		return nil
	}
	return &memberPlan{rep: cls.rep, fp: fp, ren: ren}
}

// translateProc derives a member's phase-2 result from its
// representative's: the sketch is shared (sealed — sketches mention no
// variable names, so the representative's solution IS the member's),
// callsite-actual observations are re-keyed to the member's own callee
// names, and under KeepIntermediates the raw constraint set is
// translated (or regenerated, should the surgery ever fail).
func (pl *pipeline) translateProc(p string, plan *memberPlan, repPR *ProcResult, repObs []actualObs) (*ProcResult, []actualObs) {
	pi := pl.infos[p]
	sk := repPR.Sketch
	if sk != nil {
		sk = sk.Seal()
	}
	pr := &ProcResult{
		Name:           p,
		FormalIns:      pi.FormalIns,
		HasOut:         pi.HasOut,
		Scheme:         pl.schemes[pl.procIdx[p]],
		Sketch:         sk,
		SpecializedIns: map[string]*sketch.Sketch{},
	}
	if pl.opts.KeepIntermediates {
		if cs, ok := plan.ren.Apply(pl.gens[pl.procIdx[plan.rep]].Constraints); ok {
			pr.Constraints = cs
		} else {
			pr.Constraints = absint.Generate(pi, pl.infos, pl.schemeOf, pl.sums, pl.isConst, pl.opts.Absint).Constraints
		}
	}
	if len(repObs) == 0 {
		return pr, nil
	}
	calleeAt := make(map[int]string, len(plan.fp.Calls()))
	for _, c := range plan.fp.Calls() {
		calleeAt[c.Inst] = c.Target
	}
	obs := make([]actualObs, len(repObs))
	for i, o := range repObs {
		obs[i] = actualObs{
			key:    actualKey{callee: calleeAt[o.inst], loc: o.key.loc},
			caller: p,
			inst:   o.inst,
			sk:     o.sk,
		}
	}
	return pr, obs
}
