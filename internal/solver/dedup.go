package solver

import (
	"strings"
	"sync/atomic"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/bodyfp"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/sketch"
	"retypd/internal/summaries"
)

// Body deduplication is the pipeline's earliest memoization layer: it
// groups procedures whose IR bodies are equivalent (internal/bodyfp)
// *before* abstract interpretation, runs constraint generation,
// fingerprinting, scheme simplification and sketch solving once per
// class, and translates the representative's results to the other
// members by the name surgery of absint.Renamer. Where the scheme and
// shape memos (PR 2–3) made duplicate procedures cheap to *solve*,
// this layer makes them cheap to *reach*: members skip Generate, the
// constraint-set fingerprint (a SHA-256 over the whole set), both LRU
// lookups, and the per-procedure sketch plumbing entirely.
//
// The class table behind it (bodyCache) is engine-scoped and
// persistent since PR 10: a class whose entry was published by an
// earlier run — or loaded from disk — serves its members before the
// front end touches them, across programs and across processes. Two
// serving paths coexist, tried in order:
//
//  1. Stored entry: the class carries the sealed results of a previous
//     full-path run; the member translates them directly (no dependency
//     on any SCC of this run) and skips even the representative's work.
//  2. In-program representative: the first full-path member of this
//     run serves later members exactly as the per-run layer of PR 4–9
//     did, through a readiness edge to the representative's SCC.
//
// Eligibility is conservative: only single-member, non-self-recursive
// SCCs participate, and only when every name involved (the procedure
// and its call targets) stays clear of the solver's reserved variable
// namespaces. Everything else falls back to the full path — body dedup
// never changes output, only work (a golden on/off equivalence the
// tests pin down byte-for-byte).
type dedupState struct {
	conf    bodyfp.Config
	isConst func(constraints.Var) bool
	keep    bool // Options.KeepIntermediates: members must also translate raw constraint sets

	// cache is the engine-scoped class table (run-private for one-shot
	// Infer calls). Its mutex guards class structure; everything below
	// is this run's private view, written only in the sequential
	// classification pre-pass.
	cache *bodyCache

	// classOf assigns every fingerprinted procedure its class id — the
	// callee identity later levels mix into their own body hashes.
	classOf map[string]uint32
	// localRep maps a class to this run's first full-path member — the
	// in-program translation source (path 2). Entry-served members
	// never become localRep: translateProc reads the representative's
	// generated constraints, which entry serving skips.
	localRep map[uint32]localSrc
	// anchor maps a class to its first in-program occurrence, the
	// CFG-analysis clone source: a later member with the identical
	// register assignment reuses the anchor's cfg.ProcInfo
	// (CloneForProgram) instead of re-running cfg.Analyze.
	anchor map[uint32]localSrc
	// cloneFrom maps members to their anchor when the clone is
	// admissible (SameRegisters); consumed by pipeline.buildInfos.
	cloneFrom map[string]string
	// pubs are this run's publish candidates: full-path members of
	// classes that had no entry at classification time. Published only
	// after the whole run succeeds (infer tail), first wins.
	pubs []pubCand

	// hits/misses/crossHits are atomic: classification misses are
	// counted in the sequential pre-pass, but member F.1 tasks account
	// their translation outcome concurrently on the readiness
	// scheduler. hits counts in-program translations (path 2),
	// crossHits entry serves (path 1), misses full-path procedures.
	hits, misses, crossHits atomic.Uint64
}

// localSrc names an in-program procedure together with the fingerprint
// it classified under.
type localSrc struct {
	p  string
	fp *bodyfp.FP
}

// pubCand is one publish candidate (see dedupState.pubs).
type pubCand struct {
	cls *bodyClass
	p   string
	fp  *bodyfp.FP
}

// memberPlan is everything needed to serve one dedup member: the
// translation source (a stored entry, or this run's representative) and
// the rename surgery into the member's own name space.
type memberPlan struct {
	rep string
	fp  *bodyfp.FP
	ren *absint.Renamer
	// entry is the stored body entry backing path 1 (nil for in-program
	// translation). Entry plans take no readiness dependency on any SCC
	// of this run.
	entry *bodyEntry
}

func newDedupState(lat *lattice.Lattice, opts Options, sums summaries.Table, isConst func(constraints.Var) bool, cache *bodyCache) *dedupState {
	return &dedupState{
		conf: bodyfp.Config{
			MonomorphicCalls:      opts.Absint.MonomorphicCalls,
			PolymorphicExternals:  opts.Absint.PolymorphicExternals,
			NoConstantSuppression: opts.Absint.NoConstantSuppression,
			LatticeSig:            lat.Signature(),
			CtxSig:                runCtxSig(opts, sums),
		},
		isConst:   isConst,
		keep:      opts.KeepIntermediates,
		cache:     cache,
		classOf:   map[string]uint32{},
		localRep:  map[uint32]localSrc{},
		anchor:    map[uint32]localSrc{},
		cloneFrom: map[string]string{},
	}
}

// nameEligible rejects names that collide with the solver's reserved
// variable namespaces ('!' locals, '@' callsite tags, '¤' canonical
// fingerprint names, '.' DTV paths, 'τ' existentials): the rename
// surgery could not classify variables built from them unambiguously.
func nameEligible(s string) bool {
	if s == "" || strings.ContainsAny(s, "@!.¤") || strings.HasPrefix(s, "τ") {
		return false
	}
	return true
}

// eligible reports whether procedure p may participate in body dedup:
// a single-member SCC without self-calls, with an unreserved,
// non-constant name.
func (ds *dedupState) eligible(p string, cg *cfg.CallGraph) bool {
	if !nameEligible(p) || ds.isConst(constraints.Var(p)) {
		return false
	}
	for _, callee := range cg.Callees[p] {
		if callee == p {
			return false
		}
	}
	return true
}

// calleeID supplies bodyfp with the identity bound to a call target:
// the target's body class when it has one (so wrappers around
// interchangeable callees still dedup), its exact name otherwise.
// It is called concurrently during a level's fingerprint pre-pass;
// classOf is only written between levels.
func (ds *dedupState) calleeID(target string) (bodyfp.CalleeID, bool) {
	if !nameEligible(target) || ds.isConst(constraints.Var(target)) {
		return bodyfp.CalleeID{}, false
	}
	if id, ok := ds.classOf[target]; ok {
		return bodyfp.CalleeID{Kind: bodyfp.CalleeClass, ID: uint64(id)}, true
	}
	return bodyfp.CalleeID{Kind: bodyfp.CalleeNamed, Name: target}, true
}

// classify files fp under its class in the engine-scoped table
// (creating one if it is the first occurrence anywhere) and returns a
// translation plan when p can be served — from a stored entry first,
// from this run's representative otherwise — or nil when p must run
// the full path. isProc identifies program-procedure names for the
// renamer's foreign-leak refusal and the entry portability check.
func (ds *dedupState) classify(p string, fp *bodyfp.FP, isProc func(string) bool) *memberPlan {
	cls, entry := ds.cache.lookup(fp)
	// Class membership (and with it the callee identity served to
	// callers) holds regardless of whether p is actually served below:
	// an excluded member computes the same scheme the translation would
	// have produced.
	ds.classOf[p] = cls.id

	// CFG-clone anchoring is purely in-program: the first occurrence
	// always pays cfg.Analyze (its ProcInfo is needed either way), and
	// identically-registered later members clone it.
	if a, ok := ds.anchor[cls.id]; ok {
		if fp.SameRegisters(a.fp) {
			ds.cloneFrom[p] = a.p
		}
	} else {
		ds.anchor[cls.id] = localSrc{p: p, fp: fp}
	}

	// Path 1: a stored entry from a previous run, program or process.
	if entry != nil {
		if plan := ds.entryPlan(p, fp, entry, isProc); plan != nil {
			return plan
		}
	}

	// Path 2: this run's full-path representative.
	if rep, ok := ds.localRep[cls.id]; ok {
		if plan := ds.localPlan(p, fp, rep, isProc); plan != nil {
			return plan
		}
		ds.misses.Add(1)
		return nil
	}

	// Full path. p becomes the run's translation source for the class,
	// and — if no entry existed when we looked — a publish candidate.
	ds.localRep[cls.id] = localSrc{p: p, fp: fp}
	if entry == nil {
		ds.pubs = append(ds.pubs, pubCand{cls: cls, p: p, fp: fp})
	}
	ds.misses.Add(1)
	return nil
}

// entryPlan builds the serving plan from a stored entry, or nil when
// the entry cannot serve p:
//
//   - KeepIntermediates needs the publisher's raw constraint set under
//     the identical register assignment (raw local names embed actual
//     registers);
//   - every CalleeNamed call target must resolve the same way here
//     (program procedure vs external) as it did for the publisher —
//     equal encodings guarantee equal names at named sites, but not
//     equal resolution, and generation models the two differently.
//     Targets classified in this run are CalleeClass sites (callees
//     are classified in strictly earlier levels, so classOf is final
//     for them) and carry their identity in the encoding itself.
func (ds *dedupState) entryPlan(p string, fp *bodyfp.FP, e *bodyEntry, isProc func(string) bool) *memberPlan {
	if ds.keep && (e.raw == nil || !fp.SameRegisters(e.fp)) {
		return nil
	}
	repCalls, memCalls := e.fp.Calls(), fp.Calls()
	if len(repCalls) != len(memCalls) || len(e.namedProc) != len(repCalls) {
		return nil // cannot happen for equivalent encodings; stay safe
	}
	pairs := make([]absint.CallRename, len(repCalls))
	for i := range repCalls {
		if repCalls[i].Inst != memCalls[i].Inst {
			return nil
		}
		if _, classed := ds.classOf[memCalls[i].Target]; !classed {
			if isProc(memCalls[i].Target) != e.namedProc[i] {
				return nil
			}
		}
		pairs[i] = absint.CallRename{
			Inst: repCalls[i].Inst,
			From: repCalls[i].Target,
			To:   memCalls[i].Target,
		}
	}
	ren := absint.NewRenamer(e.rep, p, pairs, isProc)
	if !ren.Valid() {
		return nil
	}
	return &memberPlan{rep: e.rep, fp: fp, ren: ren, entry: e}
}

// localPlan builds the in-program translation plan from this run's
// representative, or nil when the member must run the full path.
func (ds *dedupState) localPlan(p string, fp *bodyfp.FP, rep localSrc, isProc func(string) bool) *memberPlan {
	if ds.keep && !fp.SameRegisters(rep.fp) {
		// KeepIntermediates retains the raw generated constraint set,
		// whose local names embed actual register names; translating it
		// across a scratch-register renaming would need name surgery
		// inside defVar suffixes. Rare enough to just compute fully.
		return nil
	}
	repCalls, memCalls := rep.fp.Calls(), fp.Calls()
	if len(repCalls) != len(memCalls) {
		return nil // cannot happen for equivalent encodings; stay safe
	}
	pairs := make([]absint.CallRename, len(repCalls))
	for i := range repCalls {
		if repCalls[i].Inst != memCalls[i].Inst {
			return nil
		}
		pairs[i] = absint.CallRename{
			Inst: repCalls[i].Inst,
			From: repCalls[i].Target,
			To:   memCalls[i].Target,
		}
	}
	ren := absint.NewRenamer(rep.p, p, pairs, isProc)
	if !ren.Valid() {
		return nil
	}
	return &memberPlan{rep: rep.p, fp: fp, ren: ren}
}

// publish files the run's publish candidates into their classes (first
// publisher wins). Called only after the whole pipeline succeeded, so
// entries never expose partial results; everything shared is sealed
// before the entry becomes reachable.
func (ds *dedupState) publish(pl *pipeline, prog *asm.Program) {
	for _, pc := range ds.pubs {
		idx, ok := pl.procIdx[pc.p]
		if !ok || pl.prs[idx] == nil || pl.schemes[idx] == nil {
			continue
		}
		pr := pl.prs[idx]
		e := &bodyEntry{
			rep:       pc.p,
			fp:        pc.fp,
			namedProc: make([]bool, len(pc.fp.Calls())),
			scheme:    pl.schemes[idx],
		}
		for i, c := range pc.fp.Calls() {
			_, e.namedProc[i] = prog.ProcIndex[c.Target]
		}
		if pr.Sketch != nil {
			e.sk = pr.Sketch.Seal()
		}
		if g := pl.gens[idx]; g != nil {
			e.raw = g.Constraints
		}
		if n := len(pl.obs[idx]); n > 0 {
			e.obs = make([]entryObs, n)
			for i, o := range pl.obs[idx] {
				sk := o.sk
				if sk != nil {
					sk = sk.Seal()
				}
				e.obs[i] = entryObs{inst: o.inst, loc: o.key.loc, sk: sk}
			}
		}
		ds.cache.setEntry(pc.cls, e)
	}
}

// translateProc derives a member's phase-2 result from its in-program
// representative's: the sketch is shared (sealed — sketches mention no
// variable names, so the representative's solution IS the member's),
// callsite-actual observations are re-keyed to the member's own callee
// names, and under KeepIntermediates the raw constraint set is
// translated (or regenerated, should the surgery ever fail).
func (pl *pipeline) translateProc(p string, plan *memberPlan, repPR *ProcResult, repObs []actualObs) (*ProcResult, []actualObs) {
	pi := pl.infos[p]
	sk := repPR.Sketch
	if sk != nil {
		sk = sk.Seal()
	}
	pr := &ProcResult{
		Name:           p,
		FormalIns:      pi.FormalIns,
		HasOut:         pi.HasOut,
		Scheme:         pl.schemes[pl.procIdx[p]],
		Sketch:         sk,
		SpecializedIns: map[string]*sketch.Sketch{},
	}
	if pl.opts.KeepIntermediates {
		if cs, ok := plan.ren.Apply(pl.gens[pl.procIdx[plan.rep]].Constraints); ok {
			pr.Constraints = cs
		} else {
			pr.Constraints = absint.Generate(pi, pl.infos, pl.schemeOf, pl.sums, pl.isConst, pl.opts.Absint).Constraints
		}
	}
	if len(repObs) == 0 {
		return pr, nil
	}
	calleeAt := make(map[int]string, len(plan.fp.Calls()))
	for _, c := range plan.fp.Calls() {
		calleeAt[c.Inst] = c.Target
	}
	obs := make([]actualObs, len(repObs))
	for i, o := range repObs {
		obs[i] = actualObs{
			key:    actualKey{callee: calleeAt[o.inst], loc: o.key.loc},
			caller: p,
			inst:   o.inst,
			sk:     o.sk,
		}
	}
	return pr, obs
}

// translateEntry derives a member's phase-2 result from a stored body
// entry — the cross-program analogue of translateProc. The entry's
// sketches are already sealed; under KeepIntermediates the publisher's
// raw set (whose presence entryPlan verified) is translated, with the
// same regenerate fallback (sound here because the member's F.1 was
// ordered after its callee SCCs like any other procedure's).
func (pl *pipeline) translateEntry(p string, plan *memberPlan) (*ProcResult, []actualObs) {
	pi := pl.infos[p]
	e := plan.entry
	pr := &ProcResult{
		Name:           p,
		FormalIns:      pi.FormalIns,
		HasOut:         pi.HasOut,
		Scheme:         pl.schemes[pl.procIdx[p]],
		Sketch:         e.sk,
		SpecializedIns: map[string]*sketch.Sketch{},
	}
	if pl.opts.KeepIntermediates {
		if cs, ok := plan.ren.Apply(e.raw); ok {
			pr.Constraints = cs
		} else {
			pr.Constraints = absint.Generate(pi, pl.infos, pl.schemeOf, pl.sums, pl.isConst, pl.opts.Absint).Constraints
		}
	}
	if len(e.obs) == 0 {
		return pr, nil
	}
	calleeAt := make(map[int]string, len(plan.fp.Calls()))
	for _, c := range plan.fp.Calls() {
		calleeAt[c.Inst] = c.Target
	}
	obs := make([]actualObs, len(e.obs))
	for i, o := range e.obs {
		obs[i] = actualObs{
			key:    actualKey{callee: calleeAt[o.inst], loc: o.loc},
			caller: p,
			inst:   o.inst,
			sk:     o.sk,
		}
	}
	return pr, obs
}
