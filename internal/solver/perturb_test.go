package solver

import (
	"fmt"
	"strings"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/schedtest"
	"retypd/internal/sketch"
)

// The schedule-perturbation suite: the pipeline's determinism contract
// says output is byte-identical at any worker count under ANY schedule,
// but the default executor only ever explores a narrow slice of the
// possible schedules. These tests drive the work-stealing pool through
// seeded adversarial ones — randomized pre-task delays reorder
// completions, biased steal orders reorder acquisitions — and assert
// the dumps and the cache accounting never move. CI runs this file
// under -race, so the perturbed interleavings also double as a
// memory-model stress of the readiness graph's happens-before edges.

// perturbProg is the 4000-inst corpus point of the BENCH scaling claim.
func perturbProg(t testing.TB) *asm.Program {
	t.Helper()
	b := corpus.Generate("perturb", 42, 4000)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatalf("corpus does not parse: %v", err)
	}
	return prog
}

// handwrittenProgSrc packs the paper-shaped corner cases the generated
// corpus reaches only statistically into one small program: dedupable
// twin leaves, wrappers over class-equal callees, a mutually recursive
// SCC, and a diamond join above all of them. Under phase overlap every
// construct exercises a different readiness edge (member→rep F.1,
// member→rep F.2, multi-proc SCC, multi-parent signal).
const handwrittenProgSrc = `
proc twin_a
    mov eax, [ebp+8]
    mov ebx, [eax+4]
    mov eax, ebx
    ret
endproc

proc twin_b
    mov eax, [ebp+8]
    mov ebx, [eax+4]
    mov eax, ebx
    ret
endproc

proc even
    mov eax, [ebp+8]
    cmp eax, 0
    jz done
    sub eax, 1
    push eax
    call odd
    add esp, 4
done:
    ret
endproc

proc odd
    mov eax, [ebp+8]
    cmp eax, 0
    jz done
    sub eax, 1
    push eax
    call even
    add esp, 4
done:
    ret
endproc

proc left
    push 7
    call twin_a
    add esp, 4
    ret
endproc

proc right
    push 7
    call twin_b
    add esp, 4
    ret
endproc

proc top
    push 3
    call left
    add esp, 4
    push eax
    call right
    add esp, 4
    push eax
    call even
    add esp, 4
    ret
endproc
`

// statsKey summarizes every schedule-independent counter of one run.
// Hit/miss counts are individually invariant: single-flight means each
// distinct cacheable key misses exactly once per run no matter which
// worker got there first, and every other lookup is a hit.
func statsKey(res *Result) string {
	return fmt.Sprintf("scheme=%d/%d shape=%d/%d dedup=%d/%d",
		res.SchemeCacheHits, res.SchemeCacheMisses,
		res.ShapeCacheHits, res.ShapeCacheMisses,
		res.BodyDedupHits, res.BodyDedupMisses)
}

// runPerturbed infers prog under one (seed, workers) perturbation with
// private caches; seed < 0 runs unperturbed.
func runPerturbed(prog *asm.Program, lat *lattice.Lattice, seed int64, workers int) *Result {
	opts := DefaultOptions()
	opts.Workers = workers
	if seed >= 0 {
		opts.SchedHooks = schedtest.New(seed).Hooks()
	}
	return Infer(prog, lat, nil, opts)
}

// TestPerturbedDeterminism4000: seeded trials over the 4000-inst corpus
// cycling workers ∈ {1,2,4,8}: byte-identical DumpSchemes +
// DumpSpecialized and identical cache-stats invariants every time,
// always compared against the unperturbed sequential reference.
func TestPerturbedDeterminism4000(t *testing.T) {
	if testing.Short() {
		t.Skip("4000-inst perturbation sweep is slow under -race; skipped in -short")
	}
	prog := perturbProg(t)
	lat := lattice.Default()

	ref := runPerturbed(prog, lat, -1, 1)
	want, wantStats := dump(ref), statsKey(ref)

	workerCounts := []int{1, 2, 4, 8}
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		workers := workerCounts[trial%len(workerCounts)]
		res := runPerturbed(prog, lat, int64(trial), workers)
		if got := dump(res); got != want {
			t.Fatalf("trial %d (workers=%d): output diverged from unperturbed sequential reference (len %d vs %d)",
				trial, workers, len(got), len(want))
		}
		if got := statsKey(res); got != wantStats {
			t.Fatalf("trial %d (workers=%d): cache stats diverged: %s, want %s",
				trial, workers, got, wantStats)
		}
	}
}

// TestPerturbedDeterminismHandwritten: full 20-seed × worker-count
// sweep over the corner-case program, cheap enough to keep in -short.
func TestPerturbedDeterminismHandwritten(t *testing.T) {
	prog := asm.MustParse(handwrittenProgSrc)
	lat := lattice.Default()

	ref := runPerturbed(prog, lat, -1, 1)
	want, wantStats := dump(ref), statsKey(ref)
	if ref.BodyDedupHits == 0 {
		t.Fatal("handwritten program produced no dedup hits; the twins must dedup for this test to bite")
	}

	for seed := int64(0); seed < 20; seed++ {
		for _, workers := range []int{1, 2, 4, 8} {
			res := runPerturbed(prog, lat, seed, workers)
			if got := dump(res); got != want {
				t.Fatalf("seed %d workers %d: output diverged (len %d vs %d)", seed, workers, len(got), len(want))
			}
			if got := statsKey(res); got != wantStats {
				t.Fatalf("seed %d workers %d: cache stats diverged: %s, want %s", seed, workers, got, wantStats)
			}
		}
	}
}

// TestPerturbedSharedCaches: perturbation on top of SHARED memo caches
// (the engine configuration): later runs are served earlier runs'
// entries under adversarial schedules and must still be byte-stable.
func TestPerturbedSharedCaches(t *testing.T) {
	prog := asm.MustParse(handwrittenProgSrc)
	lat := lattice.Default()

	want := dump(runPerturbed(prog, lat, -1, 1))
	scheme := pgraph.NewSimplifyCache(0)
	shape := sketch.NewShapeCache(0)
	for seed := int64(0); seed < 10; seed++ {
		opts := DefaultOptions()
		opts.Workers = int(2 + seed%3)
		opts.SchemeCache = scheme
		opts.ShapeCache = shape
		opts.SchedHooks = schedtest.New(seed).Hooks()
		if got := dump(Infer(prog, lat, nil, opts)); got != want {
			t.Fatalf("seed %d: shared-cache perturbed run diverged", seed)
		}
	}
}

// TestPerturbedIncremental: incremental replays ride the same readiness
// graph; a perturbed Reanalyze after an edit must match a from-scratch
// run of the edited program byte-for-byte, with the replay path
// genuinely exercised.
func TestPerturbedIncremental(t *testing.T) {
	lat := lattice.Default()
	src := corpus.Generate("perturb-inc", 5, 1200).Source
	prog1 := asm.MustParse(src)
	mutSrc := mutateProc(t, src, firstProcName(t, src))
	prog2 := asm.MustParse(mutSrc)

	for seed := int64(0); seed < 5; seed++ {
		opts := DefaultOptions()
		opts.Workers = int(1 + seed%4)
		opts.SchedHooks = schedtest.New(seed).Hooks()

		eng := NewEngine(0, 0)
		eng.Infer(prog1, lat, nil, opts)
		inc := eng.Reanalyze(prog2, lat, nil, opts)
		if inc.ReplayedProcs == 0 {
			t.Fatalf("seed %d: edit dirtied everything; replay path not exercised", seed)
		}

		fresh := Infer(prog2, lat, nil, DefaultOptions())
		if dump(inc) != dump(fresh) {
			t.Fatalf("seed %d (workers=%d): perturbed incremental run diverged from from-scratch", seed, opts.Workers)
		}
	}
}

// firstProcName extracts the first procedure defined in src, so corpus
// programs can be mutated without hard-coding generator naming.
func firstProcName(t *testing.T, src string) string {
	t.Helper()
	i := strings.Index(src, "proc ")
	if i < 0 {
		t.Fatal("no proc in source")
	}
	rest := src[i+len("proc "):]
	return strings.Fields(rest)[0]
}
