package solver

import (
	"retypd/internal/cfg"
)

// sccLevels computes the topological levels of the condensed call
// graph: level(S) = 1 + max(level of S's callee SCCs), with leaf SCCs
// at level 0. SCCs within one level have no call edges between them
// (an edge always crosses to a strictly lower level), so the scheme
// inference of Appendix F.1 may run every SCC of a level concurrently
// once the previous levels finished — the "embarrassingly parallel
// across independent call-graph components" structure the paper's
// bottom-up traversal admits.
//
// The input cg.SCCs is in bottom-up (callee-first) order, so every call
// edge from cg.SCCs[i] targets some cg.SCCs[j] with j < i and one
// forward pass suffices. Each returned level lists SCC indices in
// ascending order; concatenating the levels yields a valid bottom-up
// order compatible with the sequential one.
func sccLevels(cg *cfg.CallGraph) [][]int {
	sccOf := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	level := make([]int, len(cg.SCCs))
	maxLevel := -1
	for i, scc := range cg.SCCs {
		lv := 0
		for _, p := range scc {
			for _, callee := range cg.Callees[p] {
				j, ok := sccOf[callee]
				if !ok || j == i {
					continue // external or intra-SCC edge
				}
				if l := level[j] + 1; l > lv {
					lv = l
				}
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	levels := make([][]int, maxLevel+1)
	for i := range cg.SCCs {
		levels[level[i]] = append(levels[level[i]], i)
	}
	return levels
}
