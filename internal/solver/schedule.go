package solver

import (
	"sort"
	"strconv"
	"sync/atomic"

	"retypd/internal/bodyfp"
	"retypd/internal/cfg"
	"retypd/internal/conc"
)

// sccLevels computes the topological levels of the condensed call
// graph: level(S) = 1 + max(level of S's callee SCCs), with leaf SCCs
// at level 0. SCCs within one level have no call edges between them
// (an edge always crosses to a strictly lower level), so concatenating
// the levels yields a valid bottom-up order compatible with the
// sequential one.
//
// The readiness scheduler below does not run level-by-level — it
// tracks per-SCC dependencies, so a straggler only blocks its true
// ancestors — but levels remain the deterministic order of the body-
// dedup classification pre-pass (representatives must not depend on
// scheduling; see classifyBodies) and the reference partition the
// scheduler's property tests check execution against.
//
// The input cg.SCCs is in bottom-up (callee-first) order, so every call
// edge from cg.SCCs[i] targets some cg.SCCs[j] with j < i and one
// forward pass suffices. Each returned level lists SCC indices in
// ascending order.
func sccLevels(cg *cfg.CallGraph) [][]int {
	sccOf := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	level := make([]int, len(cg.SCCs))
	maxLevel := -1
	for i, scc := range cg.SCCs {
		lv := 0
		for _, p := range scc {
			for _, callee := range cg.Callees[p] {
				j, ok := sccOf[callee]
				if !ok || j == i {
					continue // external or intra-SCC edge
				}
				if l := level[j] + 1; l > lv {
					lv = l
				}
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	levels := make([][]int, maxLevel+1)
	for i := range cg.SCCs {
		levels[level[i]] = append(levels[level[i]], i)
	}
	return levels
}

// classifyBodies is the body-dedup classification pre-pass: fingerprint
// every eligible body and assign it a class — and, for non-first
// occurrences, a translation plan — before any scheduling happens.
// Classification depends only on body fingerprints and previously
// assigned callee classes, never on inferred schemes, so it can run
// entirely ahead of the pipeline; doing it here, sequentially in
// (level, in-level index) order, is what makes class representatives —
// and with them the whole pipeline output — independent of worker
// count, steal order, and injected delays. Only the fingerprint
// computation within one level fans out (classOf is not written while
// it runs).
//
// Body-equivalent procedures always share a topological level (their
// callee classes, hence their depths, coincide), so a representative
// is classified before every one of its members; the scheduler turns
// that into a member→representative readiness edge.
// Fingerprint items run under the run's panic containment (phase F.0)
// and the fan-out observes the run context, so classification aborts at
// an item boundary on fault or cancellation.
func (pl *pipeline) classifyBodies(cg *cfg.CallGraph) ([]*memberPlan, error) {
	plans := make([]*memberPlan, len(cg.SCCs))
	isProc := func(name string) bool {
		// Classification runs before the per-procedure analyses exist,
		// from the raw program alone.
		_, ok := cg.Prog.ProcIndex[name]
		return ok
	}
	for _, level := range sccLevels(cg) {
		fps := make([]*bodyfp.FP, len(level))
		err := conc.ForEachCtx(pl.ctx, pl.workers, len(level), func(i int) {
			scc := cg.SCCs[level[i]]
			pl.runGuarded("F.0", level[i], scc[0], func() {
				if len(scc) != 1 || !pl.dedup.eligible(scc[0], cg) {
					return
				}
				fps[i] = bodyfp.Compute(cg.Prog.ProcIndex[scc[0]], pl.dedup.conf, pl.dedup.calleeID)
			})
		})
		if err != nil {
			return plans, err
		}
		for i := range level {
			if fps[i] != nil {
				plans[level[i]] = pl.dedup.classify(cg.SCCs[level[i]][0], fps[i], isProc)
			}
		}
	}
	return plans, nil
}

// schedGraph is the per-run readiness graph the F.1/F.2 pipeline
// executes on. Every SCC carries a pending count of unfinished
// dependencies (its callee SCCs, plus its dedup representative's SCC
// when it is served by translation); workers pull ready tasks from the
// work-stealing pool, and completing an SCC's F.1 decrements its
// callers' counts — no level barrier, so a straggler SCC only ever
// blocks its true ancestors. The moment a procedure's F.1 scheme is
// published, its F.2 sketch solving becomes ready (dedup members
// additionally wait for their representative's F.2, whose result they
// translate), so sketch solving of finished subtrees overlaps scheme
// inference of upper regions.
//
// Counters are atomic; the executor's queue transfer provides the
// happens-before edge from a completed dependency's writes (scheme,
// gens, fps, prs, obs slots — all distinct slice elements owned by one
// task) to the dependent task's reads.
//
// Incremental runs ride the same graph: a clean SCC's F.1 task is a
// no-op (its schemes were pre-published from the session) and a clean
// procedure's F.2 task replays its snapshot, but both still signal
// their dependents, so dirty ancestors order after them exactly as
// fresh work would.
type schedGraph struct {
	pl    *pipeline
	cg    *cfg.CallGraph
	plans []*memberPlan // per SCC; non-nil = dedup-member translation

	f1Pending []atomic.Int32 // per SCC: unfinished F.1 dependencies
	f1Callers [][]int        // per SCC: SCCs to signal on F.1 completion
	f2Pending []atomic.Int32 // per proc: unfinished F.2 gates
	f2Waiters [][]int        // per proc: member procs to signal on F.2 completion
}

// schedEvent is one observation of the readiness scheduler, emitted to
// the test-only Options.schedTrace seam. idx is an SCC index for F.1
// events and a procedure index (pipeline.procIdx) for F.2 events; aux
// is the representative's procedure index on evF2Translate and unused
// otherwise.
type schedEvent struct {
	kind int // evF1Start … evF2Translate
	idx  int
	aux  int
}

const (
	evF1Start     = iota // SCC F.1 task picked up
	evF1Done             // SCC schemes published, dependents about to be signaled
	evF2Start            // procedure F.2 task picked up
	evF2Done             // procedure result written, waiters about to be signaled
	evF2Translate        // F.2 served by dedup translation from representative aux
)

// trace emits ev when the test seam is installed.
func (s *schedGraph) trace(kind, idx, aux int) {
	if tr := s.pl.opts.schedTrace; tr != nil {
		tr(schedEvent{kind: kind, idx: idx, aux: aux})
	}
}

// buildSched wires the readiness graph for one run.
func (pl *pipeline) buildSched(cg *cfg.CallGraph, plans []*memberPlan) *schedGraph {
	n := len(cg.SCCs)
	s := &schedGraph{
		pl:        pl,
		cg:        cg,
		plans:     plans,
		f1Pending: make([]atomic.Int32, n),
		f1Callers: make([][]int, n),
		f2Pending: make([]atomic.Int32, len(pl.order)),
		f2Waiters: make([][]int, len(pl.order)),
	}
	sccOf := make(map[string]int, len(pl.order))
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	for i, scc := range cg.SCCs {
		depSet := map[int]bool{}
		for _, p := range scc {
			for _, callee := range cg.Callees[p] {
				if j, ok := sccOf[callee]; ok && j != i {
					depSet[j] = true
				}
			}
		}
		if plans[i] != nil && plans[i].entry == nil {
			// The member's F.1 translates its representative's scheme.
			// Entry-served members translate a stored entry instead and
			// take no dependency on any SCC of this run (their rep name
			// belongs to the publishing program — a same-named local
			// procedure, should one exist, is unrelated).
			depSet[sccOf[plans[i].rep]] = true
		}
		deps := make([]int, 0, len(depSet))
		for j := range depSet {
			deps = append(deps, j)
		}
		sort.Ints(deps) // deterministic signal order (schedule hygiene)
		s.f1Pending[i].Store(int32(len(deps)))
		for _, j := range deps {
			s.f1Callers[j] = append(s.f1Callers[j], i)
		}
	}
	// F.2 gates: every procedure waits for its own F.1; a dedup member
	// also waits for its representative's F.2 result.
	for pi := range s.f2Pending {
		s.f2Pending[pi].Store(1)
	}
	for i := range cg.SCCs {
		if plans[i] == nil || plans[i].entry != nil {
			// Entry-served members translate the stored entry's sealed
			// results in their own F.2 — no gate beyond their own F.1.
			continue
		}
		mi := pl.procIdx[cg.SCCs[i][0]]
		ri := pl.procIdx[plans[i].rep]
		s.f2Pending[mi].Store(2)
		s.f2Waiters[ri] = append(s.f2Waiters[ri], mi)
	}
	return s
}

// run executes the graph to quiescence: seed the dependency-free SCCs,
// let completions cascade. The pool's worker count and any test hooks
// (schedtest perturbation) change only the schedule, never the output.
//
// The pool runs under the run context: a cancellation — the caller's or
// the one a contained task fault triggers — drains the pool at a task
// boundary and run returns ctx.Err() (the fault itself is recorded on
// the pipeline and resolved by finish). A faulted task signals no
// dependents, so even before the cancel watcher fires the pool can only
// shrink toward quiescence, never start work downstream of a fault.
func (s *schedGraph) run() error {
	return conc.RunPoolCtx(s.pl.ctx, s.pl.workers, s.pl.opts.SchedHooks, func(sub conc.Submitter) {
		for i := range s.cg.SCCs {
			if s.f1Pending[i].Load() == 0 {
				sub.Submit(s.f1Task(i))
			}
		}
	})
}

// f1Task returns the F.1 task of SCC i: infer (or translate, or replay)
// its schemes, then signal its procedures' F.2 gates and its caller
// SCCs. The task body runs guarded; on a fault nothing is signalled.
func (s *schedGraph) f1Task(i int) conc.Task {
	return conc.Task{
		Label: "F.1 scc=" + strconv.Itoa(i) + " proc=" + s.cg.SCCs[i][0],
		Run: func(sub conc.Submitter) {
			s.trace(evF1Start, i, 0)
			if !s.pl.runGuarded("F.1", i, s.cg.SCCs[i][0], func() { s.runF1(i) }) {
				return
			}
			s.trace(evF1Done, i, 0)
			for _, p := range s.cg.SCCs[i] {
				pi := s.pl.procIdx[p]
				if s.f2Pending[pi].Add(-1) == 0 {
					sub.Submit(s.f2Task(pi))
				}
			}
			for _, c := range s.f1Callers[i] {
				if s.f1Pending[c].Add(-1) == 0 {
					sub.Submit(s.f1Task(c))
				}
			}
		},
	}
}

// runF1 performs SCC i's scheme inference.
func (s *schedGraph) runF1(i int) {
	pl := s.pl
	scc := s.cg.SCCs[i]
	if pl.inc != nil && !pl.inc.dirty[scc[0]] {
		return // clean SCC: schemes pre-published from the session
	}
	if plan := s.plans[i]; plan != nil {
		pl.runMemberF1(scc[0], plan)
		return
	}
	pl.publishSCC(scc, pl.inferSCC(scc))
}

// f2Task returns the F.2 task of procedure index pi: solve (or
// translate, or replay) its sketch, then signal any dedup members
// waiting to translate this procedure's result. The task body runs
// guarded; on a fault nothing is signalled.
func (s *schedGraph) f2Task(pi int) conc.Task {
	pl := s.pl
	p := pl.order[pi]
	return conc.Task{
		Label: "F.2 proc=" + p,
		Run: func(sub conc.Submitter) {
			s.trace(evF2Start, pi, 0)
			ok := pl.runGuarded("F.2", -1, p, func() {
				switch {
				case pl.inc != nil && !pl.inc.dirty[p]:
					pl.prs[pi], pl.obs[pi] = pl.replayProc(p)
				case pl.memberOf[pi] != nil && pl.memberOf[pi].entry != nil:
					// Cross-program serve from a stored body entry; aux -1
					// marks that the source is no procedure of this run.
					s.trace(evF2Translate, pi, -1)
					pl.prs[pi], pl.obs[pi] = pl.translateEntry(p, pl.memberOf[pi])
				case pl.memberOf[pi] != nil:
					plan := pl.memberOf[pi]
					ri := pl.procIdx[plan.rep]
					s.trace(evF2Translate, pi, ri)
					pl.prs[pi], pl.obs[pi] = pl.translateProc(p, plan, pl.prs[ri], pl.obs[ri])
				default:
					// Includes members whose F.1 translation fell back to the
					// full path (memberOf stayed nil): they solve like any other
					// procedure; the leftover gate on the representative's F.2
					// only delayed, never blocked, this task.
					pl.prs[pi], pl.obs[pi] = pl.solveProc(p)
				}
			})
			if !ok {
				return
			}
			s.trace(evF2Done, pi, 0)
			// Seal before signalling: members share this sketch and would
			// otherwise race calling Seal on it concurrently (the shape
			// cache serves sketches pre-sealed, but cache-off and
			// fallback paths publish unsealed ones). The waiters' atomic
			// gate decrement orders this write before their reads.
			if len(s.f2Waiters[pi]) > 0 {
				if pr := pl.prs[pi]; pr != nil && pr.Sketch != nil {
					pr.Sketch.Seal()
				}
			}
			for _, w := range s.f2Waiters[pi] {
				if s.f2Pending[w].Add(-1) == 0 {
					sub.Submit(s.f2Task(w))
				}
			}
		},
	}
}
