package solver

import (
	"fmt"
)

// AnalysisError is the structured failure of one inference run: a task
// panicked inside the pipeline, the scheduler contained it, drained the
// pool, and published nothing. It carries the identity of the task that
// died — Phase is the pipeline phase ("F.0" classification, "F.1"
// scheme inference, "F.2" sketch solving, "F.3" parameter refinement,
// or "" for faults outside an identified task), SCC the SCC index for
// F.1 faults (-1 otherwise), Proc the procedure name when the task was
// per-procedure — plus the original panic value and the panicking
// goroutine's stack. The engine that returned an AnalysisError remains
// usable: no cache, scheme, or session state of the faulted run was
// published.
type AnalysisError struct {
	Phase string
	SCC   int
	Proc  string
	Value any
	Stack []byte
}

// Error renders the task identity and the original panic value; the
// stack is appended so a log line captures the full fault.
func (e *AnalysisError) Error() string {
	id := "task"
	switch {
	case e.Phase != "" && e.Proc != "":
		id = fmt.Sprintf("%s task for %s", e.Phase, e.Proc)
	case e.Phase != "" && e.SCC >= 0:
		id = fmt.Sprintf("%s task for scc %d", e.Phase, e.SCC)
	case e.Phase != "":
		id = e.Phase + " task"
	}
	return fmt.Sprintf("solver: panic in %s: %v\n%s", id, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As see through the wrapper (fault-injected sentinel errors
// rely on this).
func (e *AnalysisError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// LimitError reports an input rejected by an admission guard
// (Options.MaxInstructions / MaxProcedures) before any pipeline work —
// or goroutine — was started.
type LimitError struct {
	What   string // "instructions" or "procedures"
	Limit  int
	Actual int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("solver: program exceeds %s limit: %d > %d", e.What, e.Actual, e.Limit)
}
