package solver

import (
	"bytes"
	"crypto/sha256"
	"os"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/fuzzcorpus"
	"retypd/internal/lattice"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus; set
// RETYPD_WRITE_FUZZ_CORPUS=1 after changing the cache encoding.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RETYPD_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set RETYPD_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	if err := fuzzcorpus.Write("testdata/fuzz/FuzzLoadCache", fuzzCacheSeeds()); err != nil {
		t.Fatal(err)
	}
	if err := fuzzcorpus.Write("testdata/fuzz/FuzzLoadSession", fuzzSessionSeeds()); err != nil {
		t.Fatal(err)
	}
}

// fuzzSessionSeeds mirrors fuzzCacheSeeds for the session file format:
// a valid saved session plus corrupted-header variants.
func fuzzSessionSeeds() [][]byte {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	var buf bytes.Buffer
	if err := eng.SaveSessionTo(&buf); err != nil {
		panic(err)
	}
	valid := buf.Bytes()
	flip := func(i int, mask byte) []byte {
		c := append([]byte(nil), valid...)
		c[i] ^= mask
		return c
	}
	return [][]byte{
		valid,
		flip(0, 0xff),              // magic
		flip(len(sessMagic), 0x01), // format version
		valid[:len(valid)/2],       // truncation
		flip(len(valid)-1, 0x80),   // checksum tail
		flip(len(valid)/2, 0x20),   // interior byte
		nil,
	}
}

// FuzzLoadSession: like FuzzLoadCache, for session files. A clean load
// must round-trip byte-identically (the session wire form is
// canonical), and checksum-resealed mutations must reach the record
// decoders without panicking.
func FuzzLoadSession(f *testing.F) {
	for _, seed := range fuzzSessionSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine(0, 0)
		if _, err := eng.LoadSessionData(data); err == nil {
			var buf bytes.Buffer
			if err := eng.SaveSessionTo(&buf); err != nil {
				t.Fatalf("save after clean load: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatalf("session round-trip changed the wire bytes (len %d vs %d)",
					buf.Len(), len(data))
			}
		}
		// Checksum-sealed variant: exercises the record decoders.
		sum := sha256.Sum256(data)
		sealed := append(append([]byte(nil), data...), sum[:]...)
		NewEngine(0, 0).LoadSessionData(sealed)
	})
}

// fuzzCacheSeeds returns a valid saved cache plus corrupted-header
// variants (flipped magic, bumped format version, truncation, flipped
// checksum byte), used both as f.Add seeds and to regenerate the
// checked-in corpus.
func fuzzCacheSeeds() [][]byte {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	var buf bytes.Buffer
	if err := eng.SaveCacheTo(&buf); err != nil {
		panic(err)
	}
	valid := buf.Bytes()
	flip := func(i int, mask byte) []byte {
		c := append([]byte(nil), valid...)
		c[i] ^= mask
		return c
	}
	return [][]byte{
		valid,
		flip(0, 0xff),                 // magic
		flip(len(cacheMagic), 0x01),   // format version
		flip(len(cacheMagic)+1, 0x01), // fingerprint version
		valid[:len(valid)/2],          // truncation
		flip(len(valid)-1, 0x80),      // checksum tail
		nil,
	}
}

// FuzzLoadCache: a cache blob from an untrusted file must load or fail
// cleanly — never panic, whatever the header or interior bytes say.
// Because LoadCacheData rejects almost every mutated input at the
// checksum before the interior decoders run, the fuzz function also
// re-seals the input with a correct checksum so mutations reach the
// scheme- and shape-cache wire decoders.
func FuzzLoadCache(f *testing.F) {
	for _, seed := range fuzzCacheSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// A fresh engine per input: loads merge into live caches, and
		// the fuzz loop must not accumulate state across inputs.
		eng := NewEngine(0, 0)
		if _, err := eng.LoadCacheData(data); err == nil {
			// A clean load must also round-trip: saving what was loaded
			// must produce a loadable cache again.
			var buf bytes.Buffer
			if err := eng.SaveCacheTo(&buf); err != nil {
				t.Fatalf("save after clean load: %v", err)
			}
			if _, err := NewEngine(0, 0).LoadCacheData(buf.Bytes()); err != nil {
				t.Fatalf("reload after clean load: %v", err)
			}
		}
		// Checksum-sealed variant: exercises the interior decoders.
		sum := sha256.Sum256(data)
		sealed := append(append([]byte(nil), data...), sum[:]...)
		eng2 := NewEngine(0, 0)
		eng2.LoadCacheData(sealed)
	})
}
