package solver

import (
	"context"
	"errors"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/conc"
	"retypd/internal/corpus"
	"retypd/internal/faultinject"
	"retypd/internal/lattice"
	"retypd/internal/leakcheck"
	"retypd/internal/schedtest"
)

// robustnessProg returns a corpus program big enough that F.1/F.2 run
// many tasks across several readiness levels — room for steals, and for
// a fault to land while dependents are still queued.
func robustnessProg(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := asm.Parse(corpus.Generate("robust", 21, 1200).Source)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestCancelMidStealDrains: cancel fired from inside an F.2 task while
// a seeded perturber is scrambling steal orders across 8 workers. The
// pool must drain completely (no leaked workers, no deadlock) and the
// run must end in context.Canceled or a clean finish — never a hang,
// never a partial result.
func TestCancelMidStealDrains(t *testing.T) {
	leakcheck.Install(t)
	prog := robustnessProg(t)
	lat := lattice.Default()

	for seed := int64(0); seed < 6; seed++ {
		ctx, cancel := context.WithCancel(context.Background())
		plan := &faultinject.Plan{Phase: "F.2", N: int(seed), Kind: faultinject.Cancel, Cancel: cancel}

		// Compose the fault trigger with adversarial scheduling: the
		// perturber owns BeforeRun/StealOrder, the plan owns BeforeTask.
		perturbed := schedtest.New(seed).Hooks()
		hooks := &conc.SchedHooks{
			BeforeRun:  perturbed.BeforeRun,
			StealOrder: perturbed.StealOrder,
			BeforeTask: plan.Hooks().BeforeTask,
		}

		opts := DefaultOptions()
		opts.Workers = 8
		opts.SchedHooks = hooks
		res, err := InferContext(ctx, prog, lat, nil, opts)
		cancel()

		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: err = %v, want context.Canceled or nil", seed, err)
		}
		if err != nil && res != nil {
			t.Fatalf("seed %d: cancelled run returned a result", seed)
		}
		if err == nil && res == nil {
			t.Fatalf("seed %d: clean run returned no result", seed)
		}
	}
}

// TestPanicMidF2Contained: a panic inside an F.2 task under a stealing
// 8-worker schedule surfaces as a structured *AnalysisError naming the
// phase and procedure, the pool drains, and an immediate retry on the
// same inputs succeeds with output matching an unfaulted run.
func TestPanicMidF2Contained(t *testing.T) {
	leakcheck.Install(t)
	prog := robustnessProg(t)
	lat := lattice.Default()

	ref, err := InferContext(context.Background(), prog, lat, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := ref.DumpSchemes() + ref.DumpSpecialized()

	for _, workers := range []int{2, 8} {
		plan := &faultinject.Plan{Phase: "F.2", N: 2, Kind: faultinject.Panic}
		opts := DefaultOptions()
		opts.Workers = workers
		opts.SchedHooks = plan.Hooks()

		_, err := InferContext(context.Background(), prog, lat, nil, opts)
		if !plan.Fired() {
			t.Fatalf("w=%d: plan never fired (fewer than 3 F.2 tasks?)", workers)
		}
		var ae *AnalysisError
		if !errors.As(err, &ae) {
			t.Fatalf("w=%d: err = %v (%T), want *AnalysisError", workers, err, err)
		}
		if ae.Phase != "F.2" {
			t.Errorf("w=%d: Phase = %q, want F.2", workers, ae.Phase)
		}
		if ae.Proc == "" {
			t.Errorf("w=%d: AnalysisError.Proc is empty; task identity lost", workers)
		}
		if len(ae.Stack) == 0 {
			t.Errorf("w=%d: AnalysisError.Stack is empty", workers)
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("w=%d: error does not unwrap to the injected value", workers)
		}

		retry, err := InferContext(context.Background(), prog, lat, nil, DefaultOptions())
		if err != nil {
			t.Fatalf("w=%d: retry after contained panic failed: %v", workers, err)
		}
		if got := retry.DumpSchemes() + retry.DumpSpecialized(); got != want {
			t.Errorf("w=%d: retry output differs from unfaulted reference", workers)
		}
	}
}
