package solver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"retypd/internal/bodyfp"
	"retypd/internal/constraints"
	"retypd/internal/sketch"
)

// Wire form of the engine's body-class table — the body section of a
// cache file (layout in persist.go). Classes travel with their
// table-scoped ids because caller fingerprints filed in the same table
// embed callee class ids; loadWire therefore refuses any table that
// has already filed a class.

func appendCacheString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeCacheString(data []byte, what string) (string, int, error) {
	ln, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < ln {
		return "", 0, fmt.Errorf("solver: truncated %s in body section", what)
	}
	return string(data[n : n+int(ln)]), n + int(ln), nil
}

// appendWire appends the table's wire form to buf: classes in id order,
// each entry blob length-prefixed so loaders can skip it whole.
func (bc *bodyCache) appendWire(buf []byte) []byte {
	bc.mu.Lock()
	nextID := bc.nextID
	type pair struct {
		cls   *bodyClass
		entry *bodyEntry // snapshotted under the lock (set-once after)
	}
	pairs := make([]pair, 0, len(bc.byHash))
	for _, chain := range bc.byHash {
		for _, c := range chain {
			pairs = append(pairs, pair{c, c.entry})
		}
	}
	bc.mu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].cls.id < pairs[j].cls.id })

	buf = binary.AppendUvarint(buf, uint64(nextID))
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p.cls.id))
		buf = p.cls.fp.AppendWire(buf)
		if p.entry == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		blob := appendEntryWire(nil, p.entry)
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf
}

func appendEntryWire(buf []byte, e *bodyEntry) []byte {
	buf = appendCacheString(buf, e.rep)
	buf = e.fp.AppendWire(buf)
	buf = constraints.AppendSchemeWire(buf, e.scheme)
	buf = e.sk.AppendWire(buf)
	buf = binary.AppendUvarint(buf, uint64(len(e.namedProc)))
	for _, b := range e.namedProc {
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.obs)))
	for _, o := range e.obs {
		buf = binary.AppendUvarint(buf, uint64(o.inst))
		buf = appendCacheString(buf, o.loc)
		buf = o.sk.AppendWire(buf)
	}
	if e.raw != nil {
		buf = append(buf, 1)
		buf = e.raw.AppendWire(buf)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// loadWire decodes a body section into bc, which must never have filed
// a class (see the persistence doc: merging would renumber ids that
// caller fingerprints embed). Returns bytes consumed, classes and
// entries loaded, and entries skipped for an unbuilt lattice.
func (bc *bodyCache) loadWire(data []byte) (n, classes, entries, skipped int, err error) {
	if !bc.empty() {
		return 0, 0, 0, 0, fmt.Errorf("solver: body-class section can only load into an empty table")
	}
	nextID, m := binary.Uvarint(data)
	if m <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("solver: truncated body table size")
	}
	n += m
	count, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("solver: truncated body class count")
	}
	n += m
	if count > uint64(len(data)-n) {
		return 0, 0, 0, 0, fmt.Errorf("solver: body class count %d exceeds section size", count)
	}
	byHash := map[uint64][]*bodyClass{}
	var lastID int64 = -1
	for i := uint64(0); i < count; i++ {
		id, m := binary.Uvarint(data[n:])
		if m <= 0 {
			return 0, 0, 0, 0, fmt.Errorf("solver: truncated body class id")
		}
		n += m
		if int64(id) <= lastID || id >= nextID {
			return 0, 0, 0, 0, fmt.Errorf("solver: body class id %d out of order or beyond table size", id)
		}
		lastID = int64(id)
		fp, m, err := bodyfp.DecodeFPWire(data[n:])
		if err != nil {
			return 0, 0, 0, 0, err
		}
		n += m
		if n >= len(data) {
			return 0, 0, 0, 0, fmt.Errorf("solver: truncated body entry flag")
		}
		hasEntry := data[n]
		n++
		cls := &bodyClass{id: uint32(id), fp: fp}
		if hasEntry == 1 {
			ln, m := binary.Uvarint(data[n:])
			if m <= 0 || uint64(len(data)-n-m) < ln {
				return 0, 0, 0, 0, fmt.Errorf("solver: truncated body entry blob")
			}
			n += m
			e, err := decodeEntryWire(data[n : n+int(ln)])
			switch {
			case errors.Is(err, sketch.ErrUnknownLattice):
				skipped++ // class survives; the entry could never be hit here
			case err != nil:
				return 0, 0, 0, 0, err
			default:
				cls.entry = e
				entries++
			}
			n += int(ln)
		} else if hasEntry != 0 {
			return 0, 0, 0, 0, fmt.Errorf("solver: invalid body entry flag %d", hasEntry)
		}
		byHash[fp.Hash()] = append(byHash[fp.Hash()], cls)
		classes++
	}
	bc.mu.Lock()
	bc.byHash = byHash
	bc.nextID = uint32(nextID)
	bc.mu.Unlock()
	return n, classes, entries, skipped, nil
}

// decodeEntryWire decodes one entry blob; it must consume the blob
// exactly.
func decodeEntryWire(data []byte) (*bodyEntry, error) {
	e := &bodyEntry{}
	var n int
	var err error
	e.rep, n, err = decodeCacheString(data, "entry rep name")
	if err != nil {
		return nil, err
	}
	fp, m, err := bodyfp.DecodeFPWire(data[n:])
	if err != nil {
		return nil, err
	}
	e.fp = fp
	n += m
	e.scheme, m, err = constraints.DecodeSchemeWire(data[n:])
	if err != nil {
		return nil, err
	}
	n += m
	e.sk, m, err = sketch.DecodeSketchWire(data[n:])
	if err != nil {
		return nil, err
	}
	e.sk.Seal()
	n += m
	nCalls, m := binary.Uvarint(data[n:])
	if m <= 0 || uint64(len(data)-n-m) < nCalls {
		return nil, fmt.Errorf("solver: truncated body entry call flags")
	}
	n += m
	e.namedProc = make([]bool, nCalls)
	for i := range e.namedProc {
		switch data[n] {
		case 1:
			e.namedProc[i] = true
		case 0:
		default:
			return nil, fmt.Errorf("solver: invalid body entry call flag %d", data[n])
		}
		n++
	}
	nObs, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return nil, fmt.Errorf("solver: truncated body entry observation count")
	}
	n += m
	if nObs > uint64(len(data)-n) {
		return nil, fmt.Errorf("solver: body entry observation count %d exceeds blob size", nObs)
	}
	e.obs = make([]entryObs, nObs)
	for i := range e.obs {
		inst, m := binary.Uvarint(data[n:])
		if m <= 0 {
			return nil, fmt.Errorf("solver: truncated body entry observation")
		}
		n += m
		e.obs[i].inst = int(inst)
		e.obs[i].loc, m, err = decodeCacheString(data[n:], "observation location")
		if err != nil {
			return nil, err
		}
		n += m
		e.obs[i].sk, m, err = sketch.DecodeSketchWire(data[n:])
		if err != nil {
			return nil, err
		}
		e.obs[i].sk.Seal()
		n += m
	}
	if n >= len(data) {
		return nil, fmt.Errorf("solver: truncated body entry raw flag")
	}
	switch data[n] {
	case 1:
		n++
		e.raw, m, err = constraints.DecodeSetWire(data[n:])
		if err != nil {
			return nil, err
		}
		n += m
	case 0:
		n++
	default:
		return nil, fmt.Errorf("solver: invalid body entry raw flag %d", data[n])
	}
	if n != len(data) {
		return nil, fmt.Errorf("solver: %d trailing bytes in body entry blob", len(data)-n)
	}
	return e, nil
}
