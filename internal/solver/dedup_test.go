package solver

import (
	"sort"
	"strings"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
)

// dedupProg is a program with heavy body duplication: identical leaf
// procedures under different names, wrappers calling class-equal (but
// differently named) callees, register-renamed variants, and a
// recursive procedure that must be excluded.
const dedupProgSrc = `
proc leaf_a
    mov eax, [ebp+8]
    add eax, 1
    ret
endproc

proc leaf_b
    mov eax, [ebp+8]
    add eax, 1
    ret
endproc

proc leaf_c
    mov eax, [ebp+8]
    add eax, 1
    ret
endproc

proc leaf_other
    mov eax, [ebp+8]
    add eax, 2
    ret
endproc

proc regvar_a
    mov ebx, [ebp+8]
    mov eax, ebx
    ret
endproc

proc regvar_b
    mov esi, [ebp+8]
    mov eax, esi
    ret
endproc

proc wrap_a
    push 7
    call leaf_a
    add esp, 4
    ret
endproc

proc wrap_b
    push 7
    call leaf_b
    add esp, 4
    ret
endproc

proc wrap_other
    push 7
    call leaf_other
    add esp, 4
    ret
endproc

proc selfrec
    mov eax, [ebp+8]
    call selfrec
    ret
endproc

proc main
    push 1
    call wrap_a
    add esp, 4
    push 2
    call wrap_b
    add esp, 4
    push 3
    call regvar_a
    add esp, 4
    push 4
    call regvar_b
    add esp, 4
    call selfrec
    ret
endproc
`

// dumpAll renders everything observable about a result, including the
// per-procedure raw constraint sets (sorted rendering), so the golden
// comparison also covers the KeepIntermediates translation path.
func dumpAll(res *Result) string {
	var b strings.Builder
	b.WriteString(res.DumpSchemes())
	b.WriteString("\n===\n")
	b.WriteString(res.DumpSpecialized())
	b.WriteString("\n===\n")
	var names []string
	for n := range res.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if cs := res.Procs[n].Constraints; cs != nil {
			b.WriteString(n + ":\n" + cs.String() + "\n")
		}
	}
	return b.String()
}

// TestBodyDedupGoldenOnOff: the full observable output — schemes,
// specialized sketches, AND raw generated constraint sets — must be
// byte-identical with body dedup on and off, across cache settings and
// worker counts.
func TestBodyDedupGoldenOnOff(t *testing.T) {
	lat := lattice.Default()
	progs := map[string]*asm.Program{
		"handwritten": asm.MustParse(dedupProgSrc),
		"corpus":      parallelProg(t),
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			off := DefaultOptions()
			off.Workers = 1
			off.NoBodyDedup = true
			want := dumpAll(Infer(prog, lat, nil, off))

			cases := []struct {
				name string
				mod  func(*Options)
			}{
				{"on/workers=1", func(o *Options) { o.Workers = 1 }},
				{"on/workers=4", func(o *Options) { o.Workers = 4 }},
				{"on/nocaches", func(o *Options) {
					o.Workers = 2
					o.NoSchemeCache = true
					o.NoShapeCache = true
				}},
				{"off/nocaches", func(o *Options) {
					o.Workers = 2
					o.NoBodyDedup = true
					o.NoSchemeCache = true
					o.NoShapeCache = true
				}},
				{"on/nointermediates", func(o *Options) { o.Workers = 2; o.KeepIntermediates = false }},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					opts := DefaultOptions()
					tc.mod(&opts)
					res := Infer(prog, lat, nil, opts)
					got := dumpAll(res)
					wantHere := want
					if !opts.KeepIntermediates {
						// Constraints are absent; compare the visible part.
						wantHere = dumpAll(Infer(prog, lat, nil, Options{
							MaxSketchDepth: -1, Workers: 1, NoBodyDedup: true,
						}))
					}
					if got != wantHere {
						t.Errorf("output diverged from dedup-off baseline (len %d vs %d)",
							len(got), len(wantHere))
						for i := 0; i < len(got) && i < len(wantHere); i++ {
							if got[i] != wantHere[i] {
								lo := i - 120
								if lo < 0 {
									lo = 0
								}
								hi := i + 120
								if hi > len(got) {
									hi = len(got)
								}
								if hi > len(wantHere) {
									hi = len(wantHere)
								}
								t.Logf("first divergence at byte %d:\n got: …%s…\nwant: …%s…",
									i, got[lo:hi], wantHere[lo:hi])
								break
							}
						}
					}
					if !opts.NoBodyDedup && res.BodyDedupHits == 0 {
						t.Error("body dedup never fired on the duplicate-heavy program")
					}
					if opts.NoBodyDedup && (res.BodyDedupHits != 0 || res.BodyDedupMisses != 0) {
						t.Errorf("NoBodyDedup run reports dedup activity (%d/%d)",
							res.BodyDedupHits, res.BodyDedupMisses)
					}
				})
			}
		})
	}
}

// TestBodyDedupMonomorphic: the monomorphic-calls configuration links
// callee interface variables by bare name — the trickiest rename path
// (no callsite tags) — and must stay byte-identical too.
func TestBodyDedupMonomorphic(t *testing.T) {
	lat := lattice.Default()
	prog := asm.MustParse(dedupProgSrc)
	for _, workers := range []int{1, 4} {
		off := DefaultOptions()
		off.Workers = workers
		off.NoBodyDedup = true
		off.Absint.MonomorphicCalls = true
		want := dumpAll(Infer(prog, lat, nil, off))

		on := DefaultOptions()
		on.Workers = workers
		on.Absint.MonomorphicCalls = true
		res := Infer(prog, lat, nil, on)
		if got := dumpAll(res); got != want {
			t.Errorf("workers=%d: monomorphic output diverged with dedup on (len %d vs %d)",
				workers, len(got), len(want))
		}
		if res.BodyDedupHits == 0 {
			t.Error("body dedup never fired under monomorphic calls")
		}
	}
}

// TestBodyDedupStats sanity-checks the hit accounting on the
// handwritten program: leaf_b/leaf_c dedup against leaf_a, wrap_b
// against wrap_a (their callees are class-equal), regvar_b against
// regvar_a only when raw constraint sets need not be translated
// (register renaming is excluded under KeepIntermediates).
func TestBodyDedupStats(t *testing.T) {
	lat := lattice.Default()
	prog := asm.MustParse(dedupProgSrc)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.Workers = 1
	res := Infer(prog, lat, nil, opts)
	// leaf_b, leaf_c, wrap_b, regvar_b are members.
	if res.BodyDedupHits != 4 {
		t.Errorf("hits = %d, want 4 (leaf_b, leaf_c, wrap_b, regvar_b)", res.BodyDedupHits)
	}

	keep := DefaultOptions()
	keep.Workers = 1
	resK := Infer(prog, lat, nil, keep)
	// regvar_b drops out: its raw constraint set embeds renamed
	// registers.
	if resK.BodyDedupHits != 3 {
		t.Errorf("hits with KeepIntermediates = %d, want 3", resK.BodyDedupHits)
	}
}

// TestBodyDedupDeterministic: 10 mixed-worker runs with dedup on stay
// byte-identical (class/representative choice must not depend on
// scheduling).
func TestBodyDedupDeterministic(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	var want string
	for i := 0; i < 10; i++ {
		opts := DefaultOptions()
		opts.Workers = 1 + i%4
		got := dumpAll(Infer(prog, lat, nil, opts))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d (workers=%d) diverged from run 0", i, opts.Workers)
		}
	}
}

// TestBodyDedupCorpusEffect: the generated benchmark corpus (the perf
// target of the ROADMAP) must show substantial dedup coverage.
func TestBodyDedupCorpusEffect(t *testing.T) {
	b := corpus.Generate("dedup", 1234, 4000)
	prog := asm.MustParse(b.Source)
	opts := DefaultOptions()
	opts.KeepIntermediates = false
	res := Infer(prog, lattice.Default(), nil, opts)
	total := res.BodyDedupHits + res.BodyDedupMisses
	t.Logf("body dedup: %d hits / %d misses over %d procs", res.BodyDedupHits, res.BodyDedupMisses, len(res.Procs))
	if total == 0 {
		t.Fatal("no procedure was ever fingerprinted")
	}
	if res.BodyDedupHits == 0 {
		t.Error("corpus produced no body-dedup hits")
	}
}
