package solver

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
)

// TestSessionSaveLoadRoundTrip: a session saved and loaded into a fresh
// engine replays an unchanged program entirely (zero recomputed
// procedures) with output byte-identical to a cold run, and survives an
// edit the same way a live session does.
func TestSessionSaveLoadRoundTrip(t *testing.T) {
	lat := lattice.Default()
	b := corpus.Generate("session", 7, 800)
	prog := asm.MustParse(b.Source)
	opts := DefaultOptions()

	eng := NewEngine(0, 0)
	cold := eng.Infer(prog, lat, nil, opts)
	path := filepath.Join(t.TempDir(), "retypd.session")
	if err := eng.SaveSession(path); err != nil {
		t.Fatal(err)
	}

	eng2, procs, err := LoadSession(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if procs != len(prog.Procs) {
		t.Fatalf("loaded %d procedure snapshots, program has %d", procs, len(prog.Procs))
	}
	warm := eng2.Reanalyze(asm.MustParse(b.Source), lat, nil, opts)
	if warm.RecomputedProcs != 0 || warm.ReplayedProcs != uint64(len(prog.Procs)) {
		t.Errorf("unchanged program after session load: replayed=%d recomputed=%d (want %d/0)",
			warm.ReplayedProcs, warm.RecomputedProcs, len(prog.Procs))
	}
	if dumpAll(cold) != dumpAll(warm) {
		t.Error("session-replayed output differs from cold output")
	}

	// An edit against the loaded session: only the ancestor cone
	// recomputes, and output matches a from-scratch run of the edit.
	mutSrc := mutateProc(t, b.Source, prog.Procs[0].Name)
	mut := asm.MustParse(mutSrc)
	eng3, _, err := LoadSession(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	inc := eng3.Reanalyze(mut, lat, nil, opts)
	if inc.RecomputedProcs == 0 || inc.ReplayedProcs == 0 {
		t.Errorf("edit after session load: replayed=%d recomputed=%d (want both nonzero)",
			inc.ReplayedProcs, inc.RecomputedProcs)
	}
	if dumpAll(Infer(mut, lat, nil, opts)) != dumpAll(inc) {
		t.Error("session-incremental output differs from from-scratch output of the edit")
	}
}

// TestSessionWireRoundTripBytes: save → load → save must reproduce the
// session bytes exactly (the wire form is canonical).
func TestSessionWireRoundTripBytes(t *testing.T) {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	var first bytes.Buffer
	if err := eng.SaveSessionTo(&first); err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(0, 0)
	if _, err := eng2.LoadSessionData(first.Bytes()); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := eng2.SaveSessionTo(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("session round-trip changed the wire bytes (len %d vs %d)",
			first.Len(), second.Len())
	}
}

// TestSessionNoSession: saving before any run reports ErrNoSession.
func TestSessionNoSession(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEngine(0, 0).SaveSessionTo(&buf); err != ErrNoSession {
		t.Fatalf("save on a fresh engine: got %v, want ErrNoSession", err)
	}
}

// TestSessionLoadRejectsCorruption: a flipped byte fails the checksum.
func TestSessionLoadRejectsCorruption(t *testing.T) {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	var buf bytes.Buffer
	if err := eng.SaveSessionTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x40
	if _, err := NewEngine(0, 0).LoadSessionData(data); err == nil {
		t.Fatal("corrupted session file loaded cleanly")
	}
}

// TestSessionZeroWarmupSpeedup: load-session + Reanalyze of the
// unchanged program must beat a cold Infer by ≥ 5× — the zero-warm-up
// contract a service restart relies on. Measured in the service
// configuration: all cores, KeepIntermediates off (raw constraint sets
// are debug artifacts a server does not retain, and they dominate the
// session's decode cost when kept).
func TestSessionZeroWarmupSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	lat := lattice.Default()
	b := corpus.Generate("session", 7, 1500)
	opts := DefaultOptions()
	opts.KeepIntermediates = false

	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(b.Source), lat, nil, opts)
	var sess bytes.Buffer
	if err := eng.SaveSessionTo(&sess); err != nil {
		t.Fatal(err)
	}

	// Cold and warm are timed back to back inside each round so both see
	// the same heap and GC state, and the gate takes the best paired
	// ratio — robust against ambient load from the rest of the suite.
	const rounds = 6
	var speedup float64
	var cold, warm time.Duration
	var last *Result
	for i := 0; i < rounds; i++ {
		progC := asm.MustParse(b.Source)
		runtime.GC()
		t0 := time.Now()
		Infer(progC, lat, nil, opts)
		c := time.Since(t0)

		progW := asm.MustParse(b.Source)
		runtime.GC()
		t1 := time.Now()
		e2 := NewEngine(0, 0)
		if _, err := e2.LoadSessionData(sess.Bytes()); err != nil {
			t.Fatal(err)
		}
		last = e2.Reanalyze(progW, lat, nil, opts)
		w := time.Since(t1)
		if r := float64(c) / float64(w); r > speedup {
			speedup, cold, warm = r, c, w
		}
	}
	if last.RecomputedProcs != 0 {
		t.Fatalf("warm replay recomputed %d procedures", last.RecomputedProcs)
	}
	t.Logf("cold=%v session-warm=%v speedup=%.1f×", cold, warm, speedup)
	if speedup < 5 {
		t.Errorf("session zero-warm-up speedup %.1f× below the 5× bound (cold=%v warm=%v)",
			speedup, cold, warm)
	}
}
