// Package solver orchestrates whole-program type inference
// (Noonan et al., PLDI 2016, §4.2 and Appendix F):
//
//  1. InferProcTypes (F.1): traverse the call graph's strongly
//     connected components bottom-up; generate constraints for each
//     SCC with callee schemes instantiated at callsites; simplify the
//     SCC constraint set relative to each member procedure to obtain
//     its polymorphic type scheme.
//  2. InferTypes (F.2): solve each procedure's constraint set into
//     sketches (shape inference + lattice-bound decoration).
//  3. RefineParameters (F.3): specialize each procedure's formal
//     sketches with the join of the actual sketches observed at its
//     callsites, trading generality for types closer to the source
//     (Example 4.3 / G.1).
package solver

import (
	"fmt"
	"strings"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/sketch"
	"retypd/internal/summaries"
)

// Options configures the pipeline.
type Options struct {
	// Absint configures constraint generation; the zero value is the
	// paper-faithful configuration.
	Absint absint.Options
	// MaxSketchDepth truncates sketch recursion when ≥ 0 (used by the
	// TIE-style baseline, which lacks recursive types); -1 means
	// unbounded.
	MaxSketchDepth int
	// NoSpecialize disables the F.3 parameter-refinement pass.
	NoSpecialize bool
	// KeepIntermediates retains per-procedure constraint sets and
	// shapes in the result (tests and the CLI want them; the scaling
	// harness does not).
	KeepIntermediates bool
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{MaxSketchDepth: -1, KeepIntermediates: true}
}

// ProcResult collects everything inferred for one procedure.
type ProcResult struct {
	Name      string
	FormalIns []cfg.Loc
	HasOut    bool
	// Scheme is the simplified polymorphic type scheme (Def. 3.4).
	Scheme *constraints.Scheme
	// Sketch is the solved sketch of the procedure's type variable;
	// formal-in and out sketches hang off it under in_*/out_* edges.
	Sketch *sketch.Sketch
	// SpecializedIns maps formal location names to the F.3-refined
	// parameter sketches (nil when no callsite evidence exists).
	SpecializedIns map[string]*sketch.Sketch
	// Constraints is the generated (unsimplified) constraint set, kept
	// when Options.KeepIntermediates is set.
	Constraints *constraints.Set
	// Shapes is the quotient used for this procedure's sketches, kept
	// when Options.KeepIntermediates is set.
	Shapes *sketch.Shapes
}

// InSketch returns the sketch of the formal at location name
// (specialized if available, otherwise the subtree of Sketch).
func (pr *ProcResult) InSketch(loc string) (*sketch.Sketch, bool) {
	if sk, ok := pr.SpecializedIns[loc]; ok && sk != nil {
		return sk, true
	}
	if pr.Sketch == nil {
		return nil, false
	}
	return pr.Sketch.Descend(label.Word{label.In(loc)})
}

// OutSketch returns the sketch of the return value.
func (pr *ProcResult) OutSketch() (*sketch.Sketch, bool) {
	if pr.Sketch == nil {
		return nil, false
	}
	return pr.Sketch.Descend(label.Word{label.Out("eax")})
}

// Result is the whole-program inference result.
type Result struct {
	Prog  *asm.Program
	Lat   *lattice.Lattice
	Infos map[string]*cfg.ProcInfo
	Procs map[string]*ProcResult
	// SCCs is the bottom-up SCC order used.
	SCCs [][]string
}

// Infer runs the full pipeline.
func Infer(prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) *Result {
	if sums == nil {
		sums = summaries.Default()
	}
	infos := cfg.AnalyzeProgram(prog)
	cg := cfg.BuildCallGraph(prog)
	isConst := func(v constraints.Var) bool {
		_, ok := lat.Elem(string(v))
		return ok
	}

	res := &Result{
		Prog:  prog,
		Lat:   lat,
		Infos: infos,
		Procs: map[string]*ProcResult{},
		SCCs:  cg.SCCs,
	}

	// Phase 1 (F.1): bottom-up scheme inference.
	schemes := map[string]*constraints.Scheme{}
	genResults := map[string]*absint.Result{}
	for _, scc := range cg.SCCs {
		sccCs := constraints.NewSet()
		for _, p := range scc {
			gr := absint.Generate(infos[p], infos, schemes, sums, isConst, opts.Absint)
			genResults[p] = gr
			sccCs.InsertAll(gr.Constraints)
		}
		g := pgraph.Build(sccCs, lat)
		g.Saturate()
		for _, p := range scc {
			root := constraints.Var(p)
			simp := g.Simplify(func(v constraints.Var) bool { return v == root })
			schemes[p] = &constraints.Scheme{
				Root:        root,
				Constraints: simp.Constraints,
				Existential: simp.Existential,
			}
		}
	}

	// Phase 2 (F.2): sketches, processed top-down so that callsite
	// actuals are available when their callee is refined (F.3).
	type actualKey struct{ callee, loc string }
	actuals := map[actualKey]*sketch.Sketch{}
	joinActual := func(k actualKey, sk *sketch.Sketch) {
		if prev, ok := actuals[k]; ok {
			actuals[k] = prev.Join(sk)
		} else {
			actuals[k] = sk
		}
	}

	for i := len(cg.SCCs) - 1; i >= 0; i-- {
		for _, p := range cg.SCCs[i] {
			pi := infos[p]
			gr := genResults[p]
			shapes := sketch.InferShapes(gr.Constraints, lat)
			g := pgraph.Build(gr.Constraints, lat)
			dec := sketch.NewDecorator(g)

			sk := shapes.SketchFor(constraints.Var(p), opts.MaxSketchDepth)
			dec.Decorate(sk, constraints.Var(p))

			pr := &ProcResult{
				Name:           p,
				FormalIns:      pi.FormalIns,
				HasOut:         pi.HasOut,
				Scheme:         schemes[p],
				Sketch:         sk,
				SpecializedIns: map[string]*sketch.Sketch{},
			}
			if opts.KeepIntermediates {
				pr.Constraints = gr.Constraints
				pr.Shapes = shapes
			}
			res.Procs[p] = pr

			// Record actual sketches at this procedure's callsites for
			// the callees' later refinement.
			if !opts.NoSpecialize {
				for _, call := range gr.Calls {
					ci, ok := infos[call.Callee]
					if !ok {
						continue
					}
					rootSk := shapes.SketchFor(call.Root, opts.MaxSketchDepth)
					dec.Decorate(rootSk, call.Root)
					for _, l := range ci.FormalIns {
						if sub, ok := rootSk.Descend(label.Word{label.In(l.ParamName())}); ok {
							joinActual(actualKey{call.Callee, l.ParamName()}, sub)
						}
					}
				}
			}
		}
	}

	// Phase 3 (F.3): refine formals with observed actuals.
	if !opts.NoSpecialize {
		for name, pr := range res.Procs {
			for _, l := range pr.FormalIns {
				k := actualKey{name, l.ParamName()}
				joined, ok := actuals[k]
				if !ok {
					continue
				}
				if formal, ok := pr.Sketch.Descend(label.Word{label.In(l.ParamName())}); ok {
					pr.SpecializedIns[l.ParamName()] = formal.Meet(joined)
				} else {
					pr.SpecializedIns[l.ParamName()] = joined
				}
			}
		}
	}
	return res
}

// DumpSchemes renders all inferred schemes, sorted by name (CLI/test
// helper).
func (r *Result) DumpSchemes() string {
	var names []string
	for n := range r.Procs {
		names = append(names, n)
	}
	sortStrings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s:\n  %s\n", n, r.Procs[n].Scheme)
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
