// Package solver orchestrates whole-program type inference
// (Noonan et al., PLDI 2016, §4.2 and Appendix F) as a staged,
// concurrent scheduling pipeline:
//
//  1. InferProcTypes (F.1): traverse the call graph's strongly
//     connected components bottom-up; generate constraints for each
//     SCC with callee schemes instantiated at callsites; simplify the
//     SCC constraint set relative to each member procedure to obtain
//     its polymorphic type scheme. Scheduling is per-SCC readiness
//     (see schedule.go): each SCC counts its unfinished callee SCCs,
//     workers pull ready SCCs from a work-stealing pool (conc.RunPool)
//     and a completed SCC signals its callers — no level barrier, so a
//     straggler only blocks its true ancestors. Simplification — the
//     dominant cost on realistic corpora — is memoized through a
//     fingerprint-keyed LRU (pgraph.SimplifyCache), so duplicate leaf
//     procedures are simplified once.
//  2. InferTypes (F.2): solve each procedure's constraint set into
//     sketches (shape inference + lattice-bound decoration). A
//     procedure's F.2 becomes ready the moment its own F.1 scheme is
//     published, so sketch solving of finished subtrees overlaps
//     scheme inference still running above them; the callsite-actual
//     sketches it observes are funneled into an accumulator and joined
//     in a canonical order (callee, location, caller, callsite) so the
//     result does not depend on scheduling. Like F.1, this phase is
//     memoized: a fingerprint-keyed LRU (sketch.ShapeCache) serves
//     sealed, immutable decorated sketches to procedures whose
//     constraint sets are isomorphic to one already solved, skipping
//     Build+Saturate+shape inference entirely on a hit.
//  3. RefineParameters (F.3): specialize each procedure's formal
//     sketches with the join of the actual sketches observed at its
//     callsites, trading generality for types closer to the source
//     (Example 4.3 / G.1). Procedures are processed in sorted name
//     order, again fanned out per procedure.
//
// Every phase is deterministic: for a fixed program and options the
// pipeline produces byte-identical schemes and specialized sketches
// regardless of Options.Workers, of steal order, and of task timing —
// an invariant the schedule-perturbation suite drives adversarially
// (internal/schedtest).
//
// Two allocation-discipline layers keep the pipeline off the garbage
// collector's hot path (see docs/ARCHITECTURE.md): derived type
// variables are interned handles (internal/intern) so constraint sets,
// graph nodes and shape classes index by dense ids instead of rendered
// strings, and the per-SCC constraint graphs plus per-procedure shape
// builders are drawn from sync.Pools (pgraph.Graph.Release,
// sketch.Builder.Release) so the fan-out reuses their storage across
// procedures. Pooled scratch never escapes into results: sketches
// share no storage with the Builder that extracted them, and
// cache-served sketches are sealed (immutable) besides.
package solver

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"retypd/internal/absint"
	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/conc"
	"retypd/internal/constraints"
	"retypd/internal/label"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/sketch"
	"retypd/internal/summaries"
)

// Options configures the pipeline.
type Options struct {
	// Absint configures constraint generation; the zero value is the
	// paper-faithful configuration.
	Absint absint.Options
	// MaxSketchDepth truncates sketch recursion when ≥ 0 (used by the
	// TIE-style baseline, which lacks recursive types); -1 means
	// unbounded.
	MaxSketchDepth int
	// NoSpecialize disables the F.3 parameter-refinement pass.
	NoSpecialize bool
	// KeepIntermediates retains per-procedure constraint sets and
	// shapes in the result (tests and the CLI want them; the scaling
	// harness does not).
	KeepIntermediates bool
	// Workers bounds the concurrency of every pipeline phase: 1 runs
	// fully sequentially on the calling goroutine, values ≤ 0 use one
	// worker per available CPU. Output is identical for every value.
	Workers int
	// SchemeCache memoizes scheme simplification across procedures
	// with isomorphic constraint sets (and across Infer calls when the
	// caller shares one cache). Nil gives this Infer call a private
	// cache; set NoSchemeCache to disable memoization entirely.
	SchemeCache *pgraph.SimplifyCache
	// NoSchemeCache disables the simplification memo.
	NoSchemeCache bool
	// ShapeCache memoizes phase-2 sketch solving (shape quotient +
	// lattice decoration) across procedures with isomorphic constraint
	// sets, keyed by the same canonical fingerprints as SchemeCache.
	// On a hit F.2 skips Build+Saturate+NewBuilder+Decorate entirely
	// and serves a sealed, immutable sketch. Nil gives this Infer call
	// a private cache; set NoShapeCache to disable.
	ShapeCache *sketch.ShapeCache
	// NoShapeCache disables the shape memo.
	NoShapeCache bool
	// NoBodyDedup disables the earliest memo layer: whole-procedure
	// body deduplication ahead of abstract interpretation (see
	// internal/bodyfp and dedup.go). With it off, every procedure runs
	// constraint generation and the per-procedure cache lookups even
	// when its body is equivalent to one already processed. The layer
	// never changes output — only how often the front end runs — and is
	// automatically off when Absint.Covered is set (trace-restricted
	// generation distinguishes procedures by name).
	NoBodyDedup bool
	// MaxInstructions and MaxProcedures are admission guards: a program
	// exceeding either bound is rejected with a *LimitError before any
	// pipeline work — or goroutine — starts. 0 means unlimited. They
	// exist for multi-tenant callers that must bound the cost of one
	// analysis unit; they never change output for admitted programs.
	MaxInstructions int
	MaxProcedures   int
	// SchedHooks perturbs and observes the work-stealing executor's
	// scheduling (delays, steal-order bias, per-task fault injection via
	// BeforeTask). Test-only: the determinism suite sets it to prove
	// output invariance under adversarial schedules and the
	// fault-injection harness (internal/faultinject) rides it to kill or
	// stall chosen tasks; production callers leave it nil. Never part of
	// output, never compared across runs.
	SchedHooks *conc.SchedHooks
	// ctx is the run's cancellation context, set by InferContext (nil
	// means context.Background()). Unexported: cancellation enters
	// through the context-aware entry points, never as an ad-hoc knob.
	ctx context.Context
	// bodyCache is the engine-scoped body-class table (nil for one-shot
	// Infer calls, which get a run-private table). Unexported: the only
	// way to share body classes across runs is through an Engine, whose
	// persistence carries the table's invariants along.
	bodyCache *bodyCache
	// schedTrace observes readiness-scheduler events (see schedEvent).
	// Test-only, like schedHooks: the property tests record the event
	// stream to check exactly-once execution and dependency ordering.
	// Called concurrently from worker goroutines; implementations must
	// synchronize. Never part of output.
	schedTrace func(schedEvent)
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{MaxSketchDepth: -1, KeepIntermediates: true}
}

// ProcResult collects everything inferred for one procedure.
type ProcResult struct {
	Name      string
	FormalIns []cfg.Loc
	HasOut    bool
	// Scheme is the simplified polymorphic type scheme (Def. 3.4).
	Scheme *constraints.Scheme
	// Sketch is the solved sketch of the procedure's type variable;
	// formal-in and out sketches hang off it under in_*/out_* edges.
	Sketch *sketch.Sketch
	// SpecializedIns maps formal location names to the F.3-refined
	// parameter sketches (nil when no callsite evidence exists).
	SpecializedIns map[string]*sketch.Sketch
	// Constraints is the generated (unsimplified) constraint set, kept
	// when Options.KeepIntermediates is set.
	Constraints *constraints.Set
}

// InSketch returns the sketch of the formal at location name
// (specialized if available, otherwise the subtree of Sketch).
func (pr *ProcResult) InSketch(loc string) (*sketch.Sketch, bool) {
	if sk, ok := pr.SpecializedIns[loc]; ok && sk != nil {
		return sk, true
	}
	if pr.Sketch == nil {
		return nil, false
	}
	return pr.Sketch.Descend(label.Word{label.In(loc)})
}

// OutSketch returns the sketch of the return value.
func (pr *ProcResult) OutSketch() (*sketch.Sketch, bool) {
	if pr.Sketch == nil {
		return nil, false
	}
	return pr.Sketch.Descend(label.Word{label.Out("eax")})
}

// Result is the whole-program inference result.
type Result struct {
	Prog  *asm.Program
	Lat   *lattice.Lattice
	Infos map[string]*cfg.ProcInfo
	Procs map[string]*ProcResult
	// SCCs is the bottom-up SCC order used.
	SCCs [][]string
	// SchemeCacheHits and SchemeCacheMisses report the simplification
	// memo's effectiveness for this run (both zero when disabled).
	SchemeCacheHits, SchemeCacheMisses uint64
	// ShapeCacheHits and ShapeCacheMisses report the phase-2 shape
	// memo's effectiveness for this run (both zero when disabled).
	ShapeCacheHits, ShapeCacheMisses uint64
	// BodyDedupHits counts procedures served by whole-body
	// deduplication from a representative of the same run (they skipped
	// constraint generation entirely); BodyDedupCrossHits counts
	// procedures served from a stored body entry of the engine's
	// persistent class table — published by an earlier run, possibly of
	// a different program, possibly in a different process;
	// BodyDedupMisses counts fingerprinted procedures that ran the full
	// path (class representatives and excluded members). All zero when
	// the layer is disabled.
	BodyDedupHits, BodyDedupCrossHits, BodyDedupMisses uint64
	// ReplayedProcs and RecomputedProcs report incremental re-analysis
	// (Engine.Reanalyze): procedures replayed verbatim from the
	// previous session versus procedures that went through the full
	// pipeline because their body — or a transitive callee's — changed.
	// Both zero for non-incremental runs.
	ReplayedProcs, RecomputedProcs uint64
}

// Infer runs the full pipeline. It cannot be cancelled; a task panic —
// contained into an *AnalysisError by the scheduler — is re-raised.
// Cancellable, error-returning callers use InferContext.
func Infer(prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) *Result {
	res, err := InferContext(context.Background(), prog, lat, sums, opts)
	if err != nil {
		// Background is never cancelled, so err is an *AnalysisError or
		// a *LimitError; the legacy contract surfaces both as panics.
		panic(err)
	}
	return res
}

// InferContext runs the full pipeline under ctx. Cancellation is
// cooperative, observed at task boundaries: the pipeline stops handing
// out tasks, drains its pool, and returns ctx.Err() — an
// already-cancelled ctx returns before any worker is spawned. A task
// panic is contained by the scheduler and returned as a structured
// *AnalysisError; inputs exceeding Options.MaxInstructions /
// MaxProcedures are rejected with a *LimitError. In every error case
// nothing was published: shared caches hold only completed computes and
// the returned Result is nil.
func InferContext(ctx context.Context, prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options) (*Result, error) {
	opts.ctx = ctx
	res, _, err := infer(prog, lat, sums, opts, nil, nil, nil)
	return res, err
}

// admit applies the admission guards to prog. It runs before the
// pipeline allocates anything, so a rejected program costs no goroutine
// and touches no cache.
func admit(prog *asm.Program, opts Options) error {
	if opts.MaxProcedures > 0 && len(prog.Procs) > opts.MaxProcedures {
		return &LimitError{What: "procedures", Limit: opts.MaxProcedures, Actual: len(prog.Procs)}
	}
	if opts.MaxInstructions > 0 {
		if n := prog.NumInsts(); n > opts.MaxInstructions {
			return &LimitError{What: "instructions", Limit: opts.MaxInstructions, Actual: n}
		}
	}
	return nil
}

// infer is the pipeline entry shared by Infer and the engine. infos and
// cg may be pre-computed (Reanalyze rebases unchanged per-procedure
// analyses); inc, when non-nil, switches the run into incremental mode:
// procedures outside inc.dirty are replayed from their session
// snapshots instead of re-solved. The returned artifacts carry the
// per-procedure outputs the engine records into its next session.
//
// On error the partially-built Result is discarded (nil, nil, err):
// admission guards reject before any work, cancellation surfaces as
// ctx.Err(), and a contained task panic as *AnalysisError. Shared
// caches are safe in every case — they only ever store completed
// computes, and their single-flight entries release waiters on panic.
func infer(prog *asm.Program, lat *lattice.Lattice, sums summaries.Table, opts Options,
	infos map[string]*cfg.ProcInfo, cg *cfg.CallGraph, inc *incrementalPlan) (*Result, *runArtifacts, error) {
	ctx := opts.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if err := admit(prog, opts); err != nil {
		return nil, nil, err
	}
	if sums == nil {
		sums = summaries.Default()
	}
	if cg == nil {
		cg = cfg.BuildCallGraph(prog)
	}
	isConst := func(v constraints.Var) bool {
		_, ok := lat.Elem(string(v))
		return ok
	}

	res := &Result{
		Prog:  prog,
		Lat:   lat,
		Procs: map[string]*ProcResult{},
		SCCs:  cg.SCCs,
	}

	// NoSchemeCache/NoShapeCache win over a provided cache: callers
	// measuring the uncached baseline must actually get one.
	cache := opts.SchemeCache
	if opts.NoSchemeCache {
		cache = nil
	} else if cache == nil {
		cache = pgraph.NewSimplifyCache(0)
	}
	shapeCache := opts.ShapeCache
	if opts.NoShapeCache {
		shapeCache = nil
	} else if shapeCache == nil {
		shapeCache = sketch.NewShapeCache(0)
	}

	// The run context is cancelled when any task faults, so a contained
	// panic drains the pool promptly instead of letting unrelated
	// subtrees finish work whose results will be discarded.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	pl := &pipeline{
		lat:        lat,
		infos:      infos,
		sums:       sums,
		isConst:    isConst,
		opts:       opts,
		cache:      cache,
		shapeCache: shapeCache,
		workers:    conc.Limit(opts.Workers),
		inc:        inc,
		ctx:        runCtx,
		cancelRun:  cancelRun,
	}
	pl.initIndex(cg)
	if inc == nil && !opts.NoBodyDedup && opts.Absint.Covered == nil {
		// Body dedup is skipped in incremental mode: the dirty set is
		// small by construction, and dedup classification needs whole
		// levels. Output is identical either way (golden-tested).
		bodies := opts.bodyCache
		if bodies == nil {
			bodies = newBodyCache() // one-shot Infer: run-private table
		}
		pl.dedup = newDedupState(lat, opts, sums, isConst, bodies)
	}
	if inc != nil {
		// Clean procedures replay their previous schemes; publish them
		// before any task runs so dirty callers see every callee.
		for p, snap := range inc.replay {
			pl.schemes[pl.procIdx[p]] = snap.scheme
		}
	}

	var hits0, misses0, shapeHits0, shapeMisses0 uint64
	if cache != nil {
		hits0, misses0 = cache.Stats() // snapshot: report this run's delta
	}
	if shapeCache != nil {
		shapeHits0, shapeMisses0 = shapeCache.Stats()
	}

	// Phases 1+2 (F.1/F.2), overlapped on the readiness graph: the
	// dedup classification pre-pass pins class representatives
	// deterministically, then every SCC's scheme inference and every
	// procedure's sketch solving run as readiness-gated tasks on the
	// work-stealing pool. Each phase's error is resolved through
	// pl.finish: a recorded task fault (*AnalysisError) wins over the
	// cancellation it triggered.
	var plans []*memberPlan
	if pl.dedup != nil {
		var err error
		plans, err = pl.classifyBodies(cg)
		if err = pl.finish(err); err != nil {
			return nil, nil, err
		}
	} else {
		plans = make([]*memberPlan, len(cg.SCCs))
	}
	// The per-procedure CFG analyses run *after* classification (the
	// fingerprint needs only the raw instruction stream), so duplicate
	// bodies are served their analyses like they are served schemes:
	// each class's first in-program occurrence pays cfg.Analyze, later
	// identically-registered members rebase it (CloneForProgram).
	if infos == nil {
		infos = pl.buildInfos(prog)
	}
	pl.infos = infos
	res.Infos = infos
	if err := pl.finish(pl.buildSched(cg, plans).run()); err != nil {
		return nil, nil, err
	}
	// Phase 3 (F.3): the sequential actuals join and the per-procedure
	// refinement fan-out, both under the same containment.
	var actuals map[actualKey]*sketch.Sketch
	pl.runGuarded("F.3", -1, "", func() { actuals = pl.collectActuals(res) })
	if err := pl.finish(nil); err != nil {
		return nil, nil, err
	}
	if err := pl.finish(pl.refineParameters(res, actuals)); err != nil {
		return nil, nil, err
	}

	if cache != nil {
		h, m := cache.Stats()
		res.SchemeCacheHits, res.SchemeCacheMisses = h-hits0, m-misses0
	}
	if shapeCache != nil {
		h, m := shapeCache.Stats()
		res.ShapeCacheHits, res.ShapeCacheMisses = h-shapeHits0, m-shapeMisses0
	}
	if pl.dedup != nil {
		res.BodyDedupHits, res.BodyDedupMisses = pl.dedup.hits.Load(), pl.dedup.misses.Load()
		res.BodyDedupCrossHits = pl.dedup.crossHits.Load()
		// Publish only now, after every phase succeeded: entries must
		// never expose results of a faulted or cancelled run.
		pl.dedup.publish(pl, prog)
	}
	if inc != nil {
		for _, p := range pl.order {
			if inc.dirty[p] {
				res.RecomputedProcs++
			} else {
				res.ReplayedProcs++
			}
		}
	}
	return res, &runArtifacts{cg: cg, order: pl.order, prs: pl.prs, obs: pl.obs}, nil
}

// runArtifacts carries the per-procedure outputs of one pipeline run in
// canonical order, for the engine's session recording.
type runArtifacts struct {
	cg    *cfg.CallGraph
	order []string
	prs   []*ProcResult
	obs   [][]actualObs
}

// incrementalPlan tells a pipeline run which procedures changed since
// the engine's previous session. dirty covers every procedure of the
// new program; replay maps each clean procedure to its snapshot from
// the previous run. The plan's construction (Engine.Reanalyze)
// guarantees the replay soundness invariant: a clean procedure's
// transitive callees are all clean, so its previous scheme, sketch and
// callsite observations are byte-identical to what a from-scratch run
// would compute.
type incrementalPlan struct {
	dirty  map[string]bool
	replay map[string]*procSnap
}

// pipeline carries the shared read-mostly state of one Infer run.
type pipeline struct {
	lat        *lattice.Lattice
	infos      map[string]*cfg.ProcInfo
	sums       summaries.Table
	isConst    func(constraints.Var) bool
	opts       Options
	cache      *pgraph.SimplifyCache
	shapeCache *sketch.ShapeCache
	workers    int

	// ctx is the run context (the caller's ctx wrapped in a cancel);
	// cancelRun cancels it. The first task fault records itself in ferr
	// under failMu and then calls cancelRun — in that order, so by the
	// time any phase observes the cancellation the structured error is
	// already readable.
	ctx       context.Context
	cancelRun context.CancelFunc
	failMu    sync.Mutex
	ferr      *AnalysisError

	// order is the canonical procedure order (top-down SCC order,
	// members in SCC slice order); procIdx its inverse. Both are frozen
	// before scheduling and read-only afterwards; every per-procedure
	// slice below is indexed by procIdx.
	order   []string
	procIdx map[string]int

	// schemes, gens and fps are per-procedure slots written exactly
	// once, by the owning SCC's F.1 task, and read only by tasks the
	// readiness graph orders after that write (caller SCCs' F.1, the
	// procedure's own F.2, members translating a representative) — so
	// concurrent tasks touch disjoint elements and a shared map's
	// write/read races cannot arise. fps carries the constraint-set
	// fingerprint of each single-member SCC forward so Phase 2 need not
	// recompute it (a multi-member SCC's members have per-procedure
	// sets that differ from the SCC union, so those are fingerprinted
	// in Phase 2).
	schemes []*constraints.Scheme
	gens    []*absint.Result
	fps     []*pgraph.FP

	// memberOf marks procedures served by body-dedup translation: set
	// by the member's own F.1 task when the scheme surgery succeeds,
	// read by its F.2 task (ordered after F.1 by the readiness graph).
	memberOf []*memberPlan

	// dedup is the whole-body deduplication layer (nil when disabled).
	// Its class tables are written only in the sequential
	// classification pre-pass (classifyBodies); during scheduling the
	// tasks touch nothing but its atomic hit/miss counters.
	dedup *dedupState

	// inc is the incremental plan of a Reanalyze run (nil for full
	// runs): clean SCCs' F.1 tasks are no-ops (schemes pre-published),
	// clean procedures' F.2 tasks replay their snapshots. Both still
	// ride the readiness graph, signalling dependents like fresh work.
	inc *incrementalPlan

	// prs and obs are the phase-2 outputs, parallel to order, retained
	// for the engine's session recording.
	prs []*ProcResult
	obs [][]actualObs
}

// initIndex freezes the canonical procedure order and sizes every
// per-procedure slot slice.
func (pl *pipeline) initIndex(cg *cfg.CallGraph) {
	for i := len(cg.SCCs) - 1; i >= 0; i-- {
		pl.order = append(pl.order, cg.SCCs[i]...)
	}
	n := len(pl.order)
	pl.procIdx = make(map[string]int, n)
	for i, p := range pl.order {
		pl.procIdx[p] = i
	}
	pl.schemes = make([]*constraints.Scheme, n)
	pl.gens = make([]*absint.Result, n)
	pl.fps = make([]*pgraph.FP, n)
	pl.memberOf = make([]*memberPlan, n)
	pl.prs = make([]*ProcResult, n)
	pl.obs = make([][]actualObs, n)
}

// buildInfos runs the per-procedure CFG analyses for prog — the work
// cfg.AnalyzeProgram does — but serves body-dedup members their class
// anchor's analyses by rebasing (cfg.ProcInfo.CloneForProgram) when the
// member's register assignment is identical, then completes the
// interprocedural HasOut fixpoint over the mixed set. Each class's
// first in-program occurrence always pays the real cfg.Analyze (every
// procedure needs a ProcInfo regardless of how its schemes are
// served); the fan-out is deterministic per procedure, so worker count
// never reaches output.
func (pl *pipeline) buildInfos(prog *asm.Program) map[string]*cfg.ProcInfo {
	var cloneFrom map[string]string
	if pl.dedup != nil {
		cloneFrom = pl.dedup.cloneFrom
	}
	fresh := make([]*asm.Proc, 0, len(prog.Procs))
	for _, p := range prog.Procs {
		if _, ok := cloneFrom[p.Name]; !ok {
			fresh = append(fresh, p)
		}
	}
	analyzed := make([]*cfg.ProcInfo, len(fresh))
	conc.ForEach(pl.workers, len(fresh), func(i int) {
		analyzed[i] = cfg.Analyze(prog, fresh[i])
	})
	infos := make(map[string]*cfg.ProcInfo, len(prog.Procs))
	for i, p := range fresh {
		infos[p.Name] = analyzed[i]
	}
	for _, p := range prog.Procs {
		if a, ok := cloneFrom[p.Name]; ok {
			infos[p.Name] = infos[a].CloneForProgram(prog, p)
		}
	}
	cfg.FinishHasOut(infos)
	return infos
}

// fail records a task fault (first one wins) and cancels the run
// context so every pool drains at its next task boundary.
func (pl *pipeline) fail(phase string, scc int, proc string, value any, stack []byte) {
	pl.failMu.Lock()
	if pl.ferr == nil {
		pl.ferr = &AnalysisError{Phase: phase, SCC: scc, Proc: proc, Value: value, Stack: stack}
	}
	pl.failMu.Unlock()
	pl.cancelRun()
}

// failed returns the run's recorded fault, if any.
func (pl *pipeline) failed() *AnalysisError {
	pl.failMu.Lock()
	defer pl.failMu.Unlock()
	return pl.ferr
}

// finish resolves one phase's outcome into the run's authoritative
// error: a recorded task fault wins over the pool cancellation it
// triggered (phaseErr is then the run context's Canceled); otherwise
// the phase error — the caller's own cancellation or deadline — stands.
func (pl *pipeline) finish(phaseErr error) error {
	if e := pl.failed(); e != nil {
		return e
	}
	return phaseErr
}

// runGuarded is the pipeline's panic containment: every identified task
// body — F.0 classification items, F.1 scheme inference, F.2 sketch
// solving, F.3 refinement items — runs inside it. A panic (from the
// task or from an injected SchedHooks.BeforeTask hook, which runs in
// the same scope precisely so injected faults surface with the task's
// identity) is converted into the run's *AnalysisError and cancels the
// run; it never crosses a goroutine boundary raw. ok reports whether f
// completed, so schedulers signal dependents only for real results.
func (pl *pipeline) runGuarded(phase string, scc int, proc string, f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			pl.fail(phase, scc, proc, r, debug.Stack())
		}
	}()
	if h := pl.opts.SchedHooks; h != nil && h.BeforeTask != nil {
		name := proc
		if name == "" && scc >= 0 {
			name = fmt.Sprintf("scc=%d", scc)
		}
		h.BeforeTask(phase, name)
	}
	f()
	return true
}

// schemeOf resolves a procedure's published scheme (the absint
// SchemeLookup of this run): nil for unknown names and for procedures
// whose F.1 has not been signalled to the caller — which, under the
// readiness graph, is exactly the same-SCC case the monomorphic link
// is the correct treatment for.
func (pl *pipeline) schemeOf(name string) *constraints.Scheme {
	i, ok := pl.procIdx[name]
	if !ok {
		return nil
	}
	return pl.schemes[i]
}

// publishSCC stores one SCC's F.1 outputs into the per-procedure slots.
func (pl *pipeline) publishSCC(scc []string, out *sccResult) {
	for j, p := range scc {
		i := pl.procIdx[p]
		pl.gens[i] = out.gens[j]
		pl.schemes[i] = out.schemes[j]
		if out.fp != nil {
			pl.fps[i] = out.fp
		}
	}
}

// runMemberF1 serves a dedup member's F.1 by translating its source's
// scheme — the stored body entry's for cross-program serves, the
// in-program representative's published one otherwise; when the rename
// surgery cannot classify a variable it falls back to the full path
// (any leftover F.2 gate on a representative then only delays, never
// blocks).
func (pl *pipeline) runMemberF1(p string, plan *memberPlan) {
	i := pl.procIdx[p]
	var sc *constraints.Scheme
	ok := false
	if plan.entry != nil {
		sc, ok = plan.ren.TranslateScheme(plan.entry.scheme)
	} else if rep := pl.schemeOf(plan.rep); rep != nil {
		sc, ok = plan.ren.TranslateScheme(rep)
	}
	if !ok {
		pl.publishSCC([]string{p}, pl.inferSCC([]string{p}))
		pl.dedup.misses.Add(1)
		return
	}
	pl.schemes[i] = sc
	pl.memberOf[i] = plan
	if plan.entry != nil {
		pl.dedup.crossHits.Add(1)
	} else {
		pl.dedup.hits.Add(1)
	}
}

// sccResult is the output of scheme inference for one SCC.
type sccResult struct {
	gens    []*absint.Result      // parallel to the SCC's member slice
	schemes []*constraints.Scheme // likewise
	// fp is the SCC constraint set's fingerprint, carried forward to
	// Phase 2 for single-member SCCs (where the SCC set and the
	// member's generated set coincide).
	fp *pgraph.FP
}

// inferSCC generates constraints for every member of one SCC and
// simplifies the SCC set relative to each member (its type scheme).
func (pl *pipeline) inferSCC(scc []string) *sccResult {
	out := &sccResult{
		gens:    make([]*absint.Result, len(scc)),
		schemes: make([]*constraints.Scheme, len(scc)),
	}
	var sccCs *constraints.Set
	if len(scc) == 1 {
		// The SCC union of a single member IS its generated set (same
		// contents, same order); reuse it instead of re-hashing every
		// constraint into a copy. Generate returns a fresh set, and the
		// pipeline only ever reads it afterwards.
		gr := absint.Generate(pl.infos[scc[0]], pl.infos, pl.schemeOf, pl.sums, pl.isConst, pl.opts.Absint)
		out.gens[0] = gr
		sccCs = gr.Constraints
	} else {
		sccCs = constraints.NewSet()
		for j, p := range scc {
			gr := absint.Generate(pl.infos[p], pl.infos, pl.schemeOf, pl.sums, pl.isConst, pl.opts.Absint)
			out.gens[j] = gr
			sccCs.InsertAll(gr.Constraints)
		}
	}

	// The saturated graph is shared by every member's simplification
	// and built at most once per SCC — not at all when every member
	// hits the memo — and recycled through the pgraph pool afterwards.
	var g *pgraph.Graph
	build := func() *pgraph.Graph {
		if g == nil {
			g = pgraph.Build(sccCs, pl.lat)
			g.Saturate()
		}
		return g
	}
	var fp *pgraph.FP
	if pl.cache != nil || (pl.shapeCache != nil && len(scc) == 1) {
		fp = pgraph.Fingerprint(sccCs, pl.lat)
	}
	if len(scc) == 1 && pl.shapeCache != nil {
		// A single-member SCC's constraint set IS the member's generated
		// set (same contents, same insertion order), so its fingerprint —
		// including the rename map — is reusable by the Phase-2 shape
		// memo without recomputation.
		out.fp = fp
	}
	for j, p := range scc {
		root := constraints.Var(p)
		var simp *pgraph.SimplifyResult
		if pl.cache != nil {
			simp = pl.cache.Simplify(fp, root, build)
		} else {
			simp = build().Simplify(func(v constraints.Var) bool { return v == root })
		}
		out.schemes[j] = &constraints.Scheme{
			Root:        root,
			Constraints: simp.Constraints,
			Existential: simp.Existential,
		}
	}
	if g != nil {
		g.Release()
	}
	return out
}

// actualKey identifies one callee formal for F.3 joining.
type actualKey struct{ callee, loc string }

// actualObs is one observed callsite-actual sketch, tagged with its
// origin so the join order can be canonicalized.
type actualObs struct {
	key    actualKey
	caller string
	inst   int
	sk     *sketch.Sketch
}

// collectActuals gathers the scheduled F.2 results: publish every
// procedure's result and join the callsite actuals per callee formal
// in a canonical order.
func (pl *pipeline) collectActuals(res *Result) map[actualKey]*sketch.Sketch {
	for i, p := range pl.order {
		res.Procs[p] = pl.prs[i]
	}

	// Deterministic accumulation: flatten and sort all observations by
	// (callee, location, caller, callsite) before joining, so the join
	// order per callee/param key is stable no matter which worker got
	// there first.
	if pl.opts.NoSpecialize {
		return nil
	}
	var all []actualObs
	for _, o := range pl.obs {
		all = append(all, o...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.key.callee != b.key.callee {
			return a.key.callee < b.key.callee
		}
		if a.key.loc != b.key.loc {
			return a.key.loc < b.key.loc
		}
		if a.caller != b.caller {
			return a.caller < b.caller
		}
		return a.inst < b.inst
	})
	actuals := map[actualKey]*sketch.Sketch{}
	for _, o := range all {
		if prev, ok := actuals[o.key]; ok {
			actuals[o.key] = prev.Join(o.sk)
		} else {
			actuals[o.key] = o.sk
		}
	}
	return actuals
}

// solveProc solves one procedure's sketch and records the actual
// sketches at its callsites for the callees' later refinement.
//
// Shape solving is memoized through pl.shapeCache: each requested
// variable's decorated sketch is looked up under the procedure's
// canonical constraint-set fingerprint, so a procedure isomorphic to
// one already solved never builds its shape quotient or saturates its
// constraint graph at all — the builder machinery below is constructed
// lazily, on the first cache miss.
func (pl *pipeline) solveProc(p string) (*ProcResult, []actualObs) {
	pi := pl.infos[p]
	idx := pl.procIdx[p]
	gr := pl.gens[idx]

	fp := pl.fps[idx]
	if fp == nil && pl.shapeCache != nil {
		fp = pgraph.Fingerprint(gr.Constraints, pl.lat)
	}

	// The shape Builder, constraint graph and Decorator are mutable
	// per-procedure scratch, drawn from their pools on the first miss
	// and recycled afterwards; sketches handed out of solve share no
	// storage with them (cache-served sketches are additionally sealed).
	var (
		shapes *sketch.Builder
		g      *pgraph.Graph
		dec    *sketch.Decorator
	)
	build := func(v constraints.Var) *sketch.Sketch {
		if shapes == nil {
			shapes = sketch.NewBuilder(gr.Constraints, pl.lat)
			g = pgraph.Build(gr.Constraints, pl.lat)
			dec = sketch.NewDecorator(g)
		}
		sk := shapes.SketchFor(v, pl.opts.MaxSketchDepth)
		dec.Decorate(sk, v)
		return sk
	}
	solve := func(v constraints.Var) *sketch.Sketch {
		if pl.shapeCache != nil {
			return pl.shapeCache.SketchFor(fp, v, pl.opts.MaxSketchDepth, build)
		}
		return build(v)
	}
	defer func() {
		if dec != nil {
			dec.Release()
		}
		if g != nil {
			g.Release()
		}
		if shapes != nil {
			shapes.Release()
		}
	}()

	pr := &ProcResult{
		Name:           p,
		FormalIns:      pi.FormalIns,
		HasOut:         pi.HasOut,
		Scheme:         pl.schemes[idx],
		Sketch:         solve(constraints.Var(p)),
		SpecializedIns: map[string]*sketch.Sketch{},
	}
	if pl.opts.KeepIntermediates {
		pr.Constraints = gr.Constraints
	}

	var obs []actualObs
	if !pl.opts.NoSpecialize {
		for _, call := range gr.Calls {
			ci, ok := pl.infos[call.Callee]
			if !ok {
				continue
			}
			rootSk := solve(call.Root)
			for _, l := range ci.FormalIns {
				if sub, ok := rootSk.Descend(label.Word{label.In(l.ParamName())}); ok {
					obs = append(obs, actualObs{
						key:    actualKey{call.Callee, l.ParamName()},
						caller: p,
						inst:   call.Inst,
						sk:     sub,
					})
				}
			}
		}
	}
	return pr, obs
}

// refineParameters is Phase 3 (F.3): refine formals with the joined
// observed actuals, per procedure in sorted name order. Items run under
// the run's panic containment and the fan-out observes the run context,
// so a fault or a cancellation stops the phase at an item boundary.
func (pl *pipeline) refineParameters(res *Result, actuals map[actualKey]*sketch.Sketch) error {
	if pl.opts.NoSpecialize {
		return nil
	}
	names := make([]string, 0, len(res.Procs))
	for n := range res.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	return conc.ForEachCtx(pl.ctx, pl.workers, len(names), func(i int) {
		pl.runGuarded("F.3", -1, names[i], func() {
			pr := res.Procs[names[i]]
			for _, l := range pr.FormalIns {
				k := actualKey{names[i], l.ParamName()}
				joined, ok := actuals[k]
				if !ok {
					continue
				}
				if formal, ok := pr.Sketch.Descend(label.Word{label.In(l.ParamName())}); ok {
					pr.SpecializedIns[l.ParamName()] = formal.Meet(joined)
				} else {
					pr.SpecializedIns[l.ParamName()] = joined
				}
			}
		})
	})
}

// DumpSchemes renders all inferred schemes, sorted by name (CLI/test
// helper).
func (r *Result) DumpSchemes() string {
	var names []string
	for n := range r.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s:\n  %s\n", n, r.Procs[n].Scheme)
	}
	return b.String()
}

// DumpSpecialized renders every F.3-specialized parameter sketch,
// sorted by procedure and location (determinism tests and the CLI).
func (r *Result) DumpSpecialized() string {
	var names []string
	for n := range r.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		pr := r.Procs[n]
		var locs []string
		for loc := range pr.SpecializedIns {
			locs = append(locs, loc)
		}
		sort.Strings(locs)
		for _, loc := range locs {
			fmt.Fprintf(&b, "%s.%s:\n%s", n, loc, pr.SpecializedIns[loc])
		}
	}
	return b.String()
}
