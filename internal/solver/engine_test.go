package solver

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
)

// engineProg has a call chain (top → mid → leaf_a) next to independent
// procedures, so dirtiness propagation to ancestors is observable.
const engineProgSrc = `
proc leaf_a
    mov eax, [ebp+8]
    add eax, 1
    ret
endproc

proc leaf_b
    mov eax, [ebp+8]
    add eax, 2
    ret
endproc

proc mid
    push 7
    call leaf_a
    add esp, 4
    ret
endproc

proc top
    push 3
    call mid
    add esp, 4
    push eax
    call leaf_b
    add esp, 4
    ret
endproc

proc lonely
    mov ecx, [ebp+8]
    mov eax, [ecx]
    ret
endproc
`

// The golden comparisons below reuse dumpAll from dedup_test.go: it
// covers schemes, specialized sketches, and the raw kept constraint
// sets.

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mutateProc returns src with one instruction prepended to the named
// procedure's body — a genuine semantic change to exactly one body.
func mutateProc(t *testing.T, src, proc string) string {
	t.Helper()
	marker := "proc " + proc + "\n"
	if !strings.Contains(src, marker) {
		t.Fatalf("procedure %s not found in source", proc)
	}
	return strings.Replace(src, marker, marker+"    mov ecx, 12345\n", 1)
}

// TestReanalyzeGolden: after mutating one procedure, Reanalyze must be
// byte-identical to a from-scratch run of the mutated program, and must
// replay everything outside the mutated procedure's ancestor cone.
func TestReanalyzeGolden(t *testing.T) {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	orig := asm.MustParse(engineProgSrc)
	eng.Infer(orig, lat, nil, DefaultOptions())

	mutSrc := mutateProc(t, engineProgSrc, "leaf_a")
	mut := asm.MustParse(mutSrc)
	inc := eng.Reanalyze(mut, lat, nil, DefaultOptions())
	scratch := Infer(mut, lat, nil, DefaultOptions())

	if got, want := dumpAll(inc), dumpAll(scratch); got != want {
		t.Fatalf("incremental output differs from scratch:\n--- incremental ---\n%s\n--- scratch ---\n%s", got, want)
	}
	// leaf_a changed; mid and top are its ancestors. leaf_b and lonely
	// must be replayed.
	if inc.RecomputedProcs != 3 {
		t.Errorf("recomputed %d procs, want 3 (leaf_a, mid, top)", inc.RecomputedProcs)
	}
	if inc.ReplayedProcs != 2 {
		t.Errorf("replayed %d procs, want 2 (leaf_b, lonely)", inc.ReplayedProcs)
	}
}

// TestReanalyzeNoChange: re-analyzing an identical program replays
// every procedure and still matches scratch output.
func TestReanalyzeNoChange(t *testing.T) {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	orig := asm.MustParse(engineProgSrc)
	eng.Infer(orig, lat, nil, DefaultOptions())
	inc := eng.Reanalyze(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	scratch := Infer(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	if got, want := dumpAll(inc), dumpAll(scratch); got != want {
		t.Fatalf("no-change reanalysis output differs from scratch")
	}
	if inc.RecomputedProcs != 0 || inc.ReplayedProcs != 5 {
		t.Errorf("no-change run: recomputed=%d replayed=%d, want 0/5", inc.RecomputedProcs, inc.ReplayedProcs)
	}
}

// TestReanalyzeProcAddedRemoved: adding a procedure that an existing
// caller already referenced (previously external) must dirty the
// caller; removing one must dirty its former callers likewise.
func TestReanalyzeProcAddedRemoved(t *testing.T) {
	lat := lattice.Default()
	callsExtra := strings.Replace(engineProgSrc, "proc lonely\n", `proc caller_x
    push 1
    call extra
    add esp, 4
    ret
endproc

proc lonely
`, 1)

	// Removed: session over (callsExtra + extra), then extra vanishes.
	eng := NewEngine(0, 0)
	before := asm.MustParse(callsExtra + `
proc extra
    mov eax, [ebp+8]
    ret
endproc
`)
	eng.Infer(before, lat, nil, DefaultOptions())
	after := asm.MustParse(callsExtra)
	inc := eng.Reanalyze(after, lat, nil, DefaultOptions())
	scratch := Infer(asm.MustParse(callsExtra), lat, nil, DefaultOptions())
	if dumpAll(inc) != dumpAll(scratch) {
		t.Fatal("removal reanalysis differs from scratch")
	}
	if inc.RecomputedProcs == 0 {
		t.Error("caller of removed procedure was not recomputed")
	}

	// Added: session without extra, then it appears.
	eng2 := NewEngine(0, 0)
	eng2.Infer(asm.MustParse(callsExtra), lat, nil, DefaultOptions())
	inc2 := eng2.Reanalyze(asm.MustParse(callsExtra+withHelperTail()), lat, nil, DefaultOptions())
	scratch2 := Infer(asm.MustParse(callsExtra+withHelperTail()), lat, nil, DefaultOptions())
	if dumpAll(inc2) != dumpAll(scratch2) {
		t.Fatal("addition reanalysis differs from scratch")
	}
}

func withHelperTail() string {
	return `
proc extra
    mov eax, [ebp+8]
    ret
endproc
`
}

// TestReanalyzeSCCMembershipChange: breaking a mutual recursion dirties
// the procedure whose own body did not change but whose SCC shrank.
func TestReanalyzeSCCMembershipChange(t *testing.T) {
	lat := lattice.Default()
	mutual := `
proc ping
    push 1
    call pong
    add esp, 4
    ret
endproc

proc pong
    push 2
    call ping
    add esp, 4
    ret
endproc
`
	// pong stops calling ping: {ping,pong} splits into {ping}, {pong}.
	split := strings.Replace(mutual, "    call ping\n", "    call abs\n", 1)
	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(mutual), lat, nil, DefaultOptions())
	inc := eng.Reanalyze(asm.MustParse(split), lat, nil, DefaultOptions())
	scratch := Infer(asm.MustParse(split), lat, nil, DefaultOptions())
	if dumpAll(inc) != dumpAll(scratch) {
		t.Fatal("SCC-split reanalysis differs from scratch")
	}
	if inc.RecomputedProcs != 2 {
		t.Errorf("recomputed %d procs, want 2 (both halves of the split SCC)", inc.RecomputedProcs)
	}
}

// TestReanalyzeRegisterRename: a scratch-register rename (ecx→edx) is
// body-fingerprint-equivalent, but the raw kept constraint set embeds
// the register name — under KeepIntermediates the procedure must be
// recomputed, not replayed, or the replayed raw set diverges from
// from-scratch output.
func TestReanalyzeRegisterRename(t *testing.T) {
	lat := lattice.Default()
	renamed := strings.Replace(engineProgSrc, "mov ecx, [ebp+8]", "mov edx, [ebp+8]", 1)
	renamed = strings.Replace(renamed, "mov eax, [ecx]", "mov eax, [edx]", 1)
	if renamed == engineProgSrc {
		t.Fatal("rename did not apply")
	}
	for _, keep := range []bool{true, false} {
		opts := DefaultOptions()
		opts.KeepIntermediates = keep
		eng := NewEngine(0, 0)
		eng.Infer(asm.MustParse(engineProgSrc), lat, nil, opts)
		inc := eng.Reanalyze(asm.MustParse(renamed), lat, nil, opts)
		scratch := Infer(asm.MustParse(renamed), lat, nil, opts)
		if dumpAll(inc) != dumpAll(scratch) {
			t.Fatalf("keep=%v: register-renamed reanalysis differs from scratch", keep)
		}
		if keep && inc.RecomputedProcs == 0 {
			t.Error("keep=true: register-renamed procedure was replayed, not recomputed")
		}
		if !keep && inc.ReplayedProcs != 5 {
			// Without raw sets the rename is invisible to every output;
			// the whole program replays.
			t.Errorf("keep=false: replayed %d procs, want 5", inc.ReplayedProcs)
		}
	}
}

// TestReanalyzeCorpusGolden: the acceptance golden — mutate one
// procedure of the 4000-instruction corpus; incremental output must be
// byte-identical to from-scratch, with the vast majority of procedures
// replayed.
func TestReanalyzeCorpusGolden(t *testing.T) {
	lat := lattice.Default()
	b := corpus.Generate("engine", 77, 4000)
	orig := asm.MustParse(b.Source)

	mutSrc := mutateProc(t, b.Source, orig.Procs[len(orig.Procs)/2].Name)
	mut := asm.MustParse(mutSrc)

	eng := NewEngine(0, 0)
	eng.Infer(orig, lat, nil, DefaultOptions())
	inc := eng.Reanalyze(mut, lat, nil, DefaultOptions())
	scratch := Infer(mut, lat, nil, DefaultOptions())

	if got, want := dumpAll(inc), dumpAll(scratch); got != want {
		t.Fatal("incremental corpus output differs from scratch output")
	}
	total := inc.ReplayedProcs + inc.RecomputedProcs
	if total != uint64(len(mut.Procs)) {
		t.Errorf("replayed+recomputed = %d, want %d", total, len(mut.Procs))
	}
	if inc.RecomputedProcs == 0 || inc.ReplayedProcs < total*9/10 {
		t.Errorf("expected ≥90%% replays after a 1-procedure mutation: replayed=%d recomputed=%d",
			inc.ReplayedProcs, inc.RecomputedProcs)
	}
}

// TestReanalyzeSpeedup: the acceptance perf bound — on the 4000-inst
// corpus, Reanalyze after a 1-procedure mutation must be ≥5× faster
// than a cold from-scratch Infer of the mutated program (measured
// best-of-5 on both sides; the dev-box number is ~10×, recorded in
// BENCH_5.json).
func TestReanalyzeSpeedup(t *testing.T) {
	lat := lattice.Default()
	b := corpus.Generate("engine", 77, 4000)
	orig := asm.MustParse(b.Source)

	// Mutate a top-level (uncalled) procedure — the realistic "edit one
	// function" case, whose ancestor cone is just itself.
	cg := cfg.BuildCallGraph(orig)
	called := map[string]bool{}
	for p, callees := range cg.Callees {
		for _, c := range callees {
			if c != p {
				called[c] = true
			}
		}
	}
	target := ""
	for _, p := range orig.Procs {
		if !called[p.Name] {
			target = p.Name
			break
		}
	}
	if target == "" {
		t.Fatal("corpus has no uncalled procedure")
	}
	mut := asm.MustParse(mutateProc(t, b.Source, target))

	opts := DefaultOptions()
	opts.Workers = 1

	const rounds = 5
	cold := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		runtime.GC()
		t0 := time.Now()
		Infer(mut, lat, nil, opts)
		if d := time.Since(t0); d < cold {
			cold = d
		}
	}

	eng := NewEngine(0, 0)
	var last *Result
	incOnly := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		eng.Infer(orig, lat, nil, opts) // re-prime the session (untimed)
		// Collect the prime's garbage outside the timed window: the
		// measurement is the incremental work, not the previous full
		// run's deferred GC debt.
		runtime.GC()
		t0 := time.Now()
		last = eng.Reanalyze(mut, lat, nil, opts)
		if d := time.Since(t0); d < incOnly {
			incOnly = d
		}
	}
	if last.RecomputedProcs == 0 || last.ReplayedProcs == 0 {
		t.Fatalf("unexpected incremental split: replayed=%d recomputed=%d", last.ReplayedProcs, last.RecomputedProcs)
	}
	speedup := float64(cold) / float64(incOnly)
	t.Logf("cold=%v incremental=%v speedup=%.1f×", cold, incOnly, speedup)
	if speedup < 5 {
		t.Errorf("incremental re-analysis speedup %.1f× below the 5× bound (cold=%v incremental=%v)",
			speedup, cold, incOnly)
	}
}

// TestEngineSaveLoadRoundTrip: a cache saved and loaded back (same
// process, full file round trip) serves scheme and shape hits on a
// fresh engine with byte-identical output.
func TestEngineSaveLoadRoundTrip(t *testing.T) {
	lat := lattice.Default()
	b := corpus.Generate("persist", 99, 2000)
	prog := asm.MustParse(b.Source)

	eng := NewEngine(0, 0)
	cold := eng.Infer(prog, lat, nil, DefaultOptions())
	path := filepath.Join(t.TempDir(), "retypd.cache")
	if err := eng.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	eng2, st, err := LoadCache(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.SchemeEntries == 0 || st.ShapeEntries == 0 {
		t.Fatalf("loaded cache is empty: %+v", st)
	}
	warm := eng2.Infer(asm.MustParse(b.Source), lat, nil, DefaultOptions())

	if dumpAll(cold) != dumpAll(warm) {
		t.Fatal("warm-cache output differs from cold output")
	}
	// The loaded body table carries published entries for every class,
	// so the warm run's duplicates — including each class's first
	// occurrence — serve from stored entries (cross-program hits), not
	// from an in-program representative.
	if warm.SchemeCacheHits == 0 || warm.ShapeCacheHits == 0 || warm.BodyDedupCrossHits == 0 {
		t.Errorf("warm run should hit every layer: scheme=%d shape=%d bodyCross=%d",
			warm.SchemeCacheHits, warm.ShapeCacheHits, warm.BodyDedupCrossHits)
	}
	// The loaded entries must actually serve: the warm run's misses can
	// only come from uncacheable results, so they must not exceed the
	// cold run's.
	if warm.SchemeCacheMisses > cold.SchemeCacheMisses {
		t.Errorf("warm scheme misses %d > cold %d", warm.SchemeCacheMisses, cold.SchemeCacheMisses)
	}
}

// TestEngineLoadRejectsCorruption: a flipped byte must fail the
// checksum, not decode garbage.
func TestEngineLoadRejectsCorruption(t *testing.T) {
	lat := lattice.Default()
	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(engineProgSrc), lat, nil, DefaultOptions())
	path := filepath.Join(t.TempDir(), "c.cache")
	if err := eng.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	data := readFile(t, path)
	if len(data) < 64 {
		t.Fatalf("implausibly small cache file: %d bytes", len(data))
	}
	data[len(data)/2] ^= 0x40
	e2 := NewEngine(0, 0)
	if _, err := e2.LoadCacheData(data); err == nil {
		t.Fatal("corrupted cache file loaded without error")
	}
}
