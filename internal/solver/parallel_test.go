package solver

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
)

func cfgBuild(prog *asm.Program) *cfg.CallGraph { return cfg.BuildCallGraph(prog) }

// parallelProg is a mid-sized generated program with enough independent
// procedures to exercise every pipeline stage.
func parallelProg(t testing.TB) *asm.Program {
	t.Helper()
	b := corpus.Generate("par", 99, 1500)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatalf("corpus does not parse: %v", err)
	}
	return prog
}

// dump renders everything the pipeline infers that tests compare.
func dump(res *Result) string {
	return res.DumpSchemes() + "\n===\n" + res.DumpSpecialized()
}

// TestParallelMatchesSequential: the concurrent pipeline must produce
// byte-identical schemes AND specialized parameter sketches for every
// worker count, with and without the simplification memo.
func TestParallelMatchesSequential(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()

	base := DefaultOptions()
	base.Workers = 1
	base.NoSchemeCache = true
	want := dump(Infer(prog, lat, nil, base))

	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"workers=1+cache", func(o *Options) { o.Workers = 1 }},
		{"workers=2", func(o *Options) { o.Workers = 2 }},
		{"workers=4", func(o *Options) { o.Workers = 4 }},
		{"workers=8+cache", func(o *Options) { o.Workers = 8 }},
		{"workers=4-cache", func(o *Options) { o.Workers = 4; o.NoSchemeCache = true }},
		{"workers=auto", func(o *Options) { o.Workers = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.mod(&opts)
			got := dump(Infer(prog, lat, nil, opts))
			if got != want {
				t.Errorf("output diverged from sequential/no-cache baseline (len %d vs %d)",
					len(got), len(want))
			}
		})
	}
}

// TestInferDeterministic runs the full pipeline 20× (mixed worker
// counts) and asserts byte-identical DumpSchemes and SpecializedIns
// output every time — the F.2/F.3 join-order bugfix.
func TestInferDeterministic(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	var want string
	for i := 0; i < 20; i++ {
		opts := DefaultOptions()
		opts.Workers = 1 + i%4
		got := dump(Infer(prog, lat, nil, opts))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d (workers=%d) diverged from run 0", i, opts.Workers)
		}
	}
}

// TestSchemeCacheShared: a caller-provided cache is consulted across
// Infer calls — the second run over the same program must be nearly
// all hits.
func TestSchemeCacheShared(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := pgraph.NewSimplifyCache(0)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.SchemeCache = cache

	r1 := Infer(prog, lat, nil, opts)
	h1, m1 := cache.Stats()
	r2 := Infer(prog, lat, nil, opts)
	h2, _ := cache.Stats()

	if h2 == h1 {
		t.Errorf("second run over the same program produced no cache hits (hits %d→%d, misses after run1 %d)", h1, h2, m1)
	}
	if r1.DumpSchemes() != r2.DumpSchemes() {
		t.Error("shared cache changed inferred schemes between runs")
	}
}

// TestNoSchemeCacheWinsOverProvidedCache: NoSchemeCache must disable
// memoization even when a shared cache was handed in — uncached
// baseline measurements depend on it.
func TestNoSchemeCacheWinsOverProvidedCache(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := pgraph.NewSimplifyCache(0)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.SchemeCache = cache
	opts.NoSchemeCache = true
	res := Infer(prog, lat, nil, opts)

	if h, m := cache.Stats(); h != 0 || m != 0 {
		t.Errorf("provided cache was consulted despite NoSchemeCache (hits=%d misses=%d)", h, m)
	}
	if res.SchemeCacheHits != 0 || res.SchemeCacheMisses != 0 {
		t.Errorf("result reports cache activity despite NoSchemeCache (%d/%d)",
			res.SchemeCacheHits, res.SchemeCacheMisses)
	}
}

// TestSCCLevelsPartition: every SCC appears in exactly one level, and
// no two same-level SCCs are connected by a call edge.
func TestSCCLevelsPartition(t *testing.T) {
	prog := parallelProg(t)
	cg := cfgBuild(prog)
	levels := sccLevels(cg)

	seen := map[int]int{} // scc index → level
	for lv, idxs := range levels {
		for _, i := range idxs {
			if prev, dup := seen[i]; dup {
				t.Fatalf("SCC %d in levels %d and %d", i, prev, lv)
			}
			seen[i] = lv
		}
	}
	if len(seen) != len(cg.SCCs) {
		t.Fatalf("levels cover %d SCCs, call graph has %d", len(seen), len(cg.SCCs))
	}

	sccOf := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			for _, callee := range cg.Callees[p] {
				j, ok := sccOf[callee]
				if !ok || j == i {
					continue
				}
				if seen[i] <= seen[j] {
					t.Errorf("call %s→%s crosses levels %d→%d (caller must be strictly higher)",
						p, callee, seen[i], seen[j])
				}
			}
		}
	}
}
