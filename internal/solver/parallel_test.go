package solver

import (
	"testing"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/pgraph"
	"retypd/internal/sketch"
)

func cfgBuild(prog *asm.Program) *cfg.CallGraph { return cfg.BuildCallGraph(prog) }

// parallelProg is a mid-sized generated program with enough independent
// procedures to exercise every pipeline stage.
func parallelProg(t testing.TB) *asm.Program {
	t.Helper()
	b := corpus.Generate("par", 99, 1500)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatalf("corpus does not parse: %v", err)
	}
	return prog
}

// dump renders everything the pipeline infers that tests compare.
func dump(res *Result) string {
	return res.DumpSchemes() + "\n===\n" + res.DumpSpecialized()
}

// TestParallelMatchesSequential: the concurrent pipeline must produce
// byte-identical schemes AND specialized parameter sketches for every
// worker count, with and without the simplification and shape memos —
// the golden diff of the cache-on vs cache-off contract.
func TestParallelMatchesSequential(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()

	base := DefaultOptions()
	base.Workers = 1
	base.NoSchemeCache = true
	base.NoShapeCache = true
	want := dump(Infer(prog, lat, nil, base))

	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"workers=1+cache", func(o *Options) { o.Workers = 1 }},
		{"workers=2", func(o *Options) { o.Workers = 2 }},
		{"workers=4", func(o *Options) { o.Workers = 4 }},
		{"workers=8+cache", func(o *Options) { o.Workers = 8 }},
		{"workers=4-cache", func(o *Options) { o.Workers = 4; o.NoSchemeCache = true; o.NoShapeCache = true }},
		{"workers=4-shapecache", func(o *Options) { o.Workers = 4; o.NoShapeCache = true }},
		{"workers=1-schemecache", func(o *Options) { o.Workers = 1; o.NoSchemeCache = true }},
		{"workers=auto", func(o *Options) { o.Workers = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.mod(&opts)
			got := dump(Infer(prog, lat, nil, opts))
			if got != want {
				t.Errorf("output diverged from sequential/no-cache baseline (len %d vs %d)",
					len(got), len(want))
			}
		})
	}
}

// TestInferDeterministic runs the full pipeline 20× (mixed worker
// counts) and asserts byte-identical DumpSchemes and SpecializedIns
// output every time — the F.2/F.3 join-order bugfix.
func TestInferDeterministic(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	var want string
	for i := 0; i < 20; i++ {
		opts := DefaultOptions()
		opts.Workers = 1 + i%4
		got := dump(Infer(prog, lat, nil, opts))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d (workers=%d) diverged from run 0", i, opts.Workers)
		}
	}
}

// TestSchemeCacheShared: a caller-provided cache is consulted across
// Infer calls — the second run over the same program must be nearly
// all hits.
func TestSchemeCacheShared(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := pgraph.NewSimplifyCache(0)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.SchemeCache = cache

	r1 := Infer(prog, lat, nil, opts)
	h1, m1 := cache.Stats()
	r2 := Infer(prog, lat, nil, opts)
	h2, _ := cache.Stats()

	if h2 == h1 {
		t.Errorf("second run over the same program produced no cache hits (hits %d→%d, misses after run1 %d)", h1, h2, m1)
	}
	if r1.DumpSchemes() != r2.DumpSchemes() {
		t.Error("shared cache changed inferred schemes between runs")
	}
}

// TestNoSchemeCacheWinsOverProvidedCache: NoSchemeCache must disable
// memoization even when a shared cache was handed in — uncached
// baseline measurements depend on it.
func TestNoSchemeCacheWinsOverProvidedCache(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := pgraph.NewSimplifyCache(0)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.SchemeCache = cache
	opts.NoSchemeCache = true
	res := Infer(prog, lat, nil, opts)

	if h, m := cache.Stats(); h != 0 || m != 0 {
		t.Errorf("provided cache was consulted despite NoSchemeCache (hits=%d misses=%d)", h, m)
	}
	if res.SchemeCacheHits != 0 || res.SchemeCacheMisses != 0 {
		t.Errorf("result reports cache activity despite NoSchemeCache (%d/%d)",
			res.SchemeCacheHits, res.SchemeCacheMisses)
	}
}

// TestShapeCacheGoldenOnOff: full-output golden diff — DumpSchemes and
// DumpSpecialized must be byte-identical with the shape memo on
// (shared, so the second run is nearly all hits) and fully off.
func TestShapeCacheGoldenOnOff(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()

	off := DefaultOptions()
	off.Workers = 2
	off.NoShapeCache = true
	want := dump(Infer(prog, lat, nil, off))

	cache := sketch.NewShapeCache(0)
	for run := 0; run < 2; run++ {
		on := DefaultOptions()
		on.Workers = 2
		on.ShapeCache = cache
		res := Infer(prog, lat, nil, on)
		if got := dump(res); got != want {
			t.Fatalf("run %d: shape cache changed output (len %d vs %d)", run, len(got), len(want))
		}
		if run == 1 && res.ShapeCacheHits == 0 {
			t.Error("second shared-cache run produced no shape-cache hits")
		}
	}
}

// TestShapeCacheDeterministic runs the pipeline 20× with one shared
// shape memo across mixed worker counts: every run is served an
// increasing mix of cached sketches and must stay byte-identical.
func TestShapeCacheDeterministic(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := sketch.NewShapeCache(0)
	var want string
	for i := 0; i < 20; i++ {
		opts := DefaultOptions()
		opts.Workers = 1 + i%4
		opts.ShapeCache = cache
		got := dump(Infer(prog, lat, nil, opts))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d (workers=%d) diverged from run 0", i, opts.Workers)
		}
	}
}

// TestShapeCacheShared: a caller-provided shape memo is consulted
// across Infer calls — the second run over the same program must be
// nearly all hits, skipping Build+Saturate+shape inference.
func TestShapeCacheShared(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := sketch.NewShapeCache(0)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.ShapeCache = cache

	r1 := Infer(prog, lat, nil, opts)
	r2 := Infer(prog, lat, nil, opts)
	if r1.ShapeCacheHits+r1.ShapeCacheMisses == 0 {
		t.Fatal("first run never consulted the shape cache")
	}
	if r2.ShapeCacheMisses != 0 {
		t.Errorf("second run over the same program missed %d times (hits %d)",
			r2.ShapeCacheMisses, r2.ShapeCacheHits)
	}
	if r1.DumpSpecialized() != r2.DumpSpecialized() {
		t.Error("shared shape cache changed specialized sketches between runs")
	}
}

// TestShapeCacheServedSketchImmutable: the guard contract end-to-end —
// a cache-served ProcResult.Sketch is sealed, decorating it panics,
// and F.3 specialization must have left every served sketch intact.
func TestShapeCacheServedSketchImmutable(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := sketch.NewShapeCache(0)

	opts := DefaultOptions()
	opts.ShapeCache = cache
	res := Infer(prog, lat, nil, opts)
	if res.ShapeCacheHits == 0 {
		t.Fatal("corpus produced no shape-cache hits; guard test needs served sketches")
	}

	var served *sketch.Sketch
	var servedProc string
	for name, pr := range res.Procs {
		if pr.Sketch != nil && pr.Sketch.Sealed() {
			served, servedProc = pr.Sketch, name
			break
		}
	}
	if served == nil {
		t.Fatal("no sealed sketch found in results despite cache hits")
	}

	g := pgraph.Build(res.Procs[servedProc].Constraints, lat)
	defer g.Release()
	dec := sketch.NewDecorator(g)
	defer dec.Release()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Decorate on a cache-served sketch did not panic")
			}
		}()
		dec.Decorate(served, "anything")
	}()
}

// TestNoShapeCacheWinsOverProvidedCache: NoShapeCache must disable
// memoization even when a shared cache was handed in.
func TestNoShapeCacheWinsOverProvidedCache(t *testing.T) {
	prog := parallelProg(t)
	lat := lattice.Default()
	cache := sketch.NewShapeCache(0)

	opts := DefaultOptions()
	opts.KeepIntermediates = false
	opts.ShapeCache = cache
	opts.NoShapeCache = true
	// Body dedup also seals the sketches it shares across class
	// members; turn it off so the sealed check below isolates the shape
	// cache.
	opts.NoBodyDedup = true
	res := Infer(prog, lat, nil, opts)

	if h, m := cache.Stats(); h != 0 || m != 0 {
		t.Errorf("provided cache was consulted despite NoShapeCache (hits=%d misses=%d)", h, m)
	}
	if res.ShapeCacheHits != 0 || res.ShapeCacheMisses != 0 {
		t.Errorf("result reports cache activity despite NoShapeCache (%d/%d)",
			res.ShapeCacheHits, res.ShapeCacheMisses)
	}
	if pr := res.Procs[res.SCCs[0][0]]; pr.Sketch != nil && pr.Sketch.Sealed() {
		t.Error("uncached run produced sealed sketches")
	}
}

// TestSCCLevelsPartition: every SCC appears in exactly one level, and
// no two same-level SCCs are connected by a call edge.
func TestSCCLevelsPartition(t *testing.T) {
	prog := parallelProg(t)
	cg := cfgBuild(prog)
	levels := sccLevels(cg)

	seen := map[int]int{} // scc index → level
	for lv, idxs := range levels {
		for _, i := range idxs {
			if prev, dup := seen[i]; dup {
				t.Fatalf("SCC %d in levels %d and %d", i, prev, lv)
			}
			seen[i] = lv
		}
	}
	if len(seen) != len(cg.SCCs) {
		t.Fatalf("levels cover %d SCCs, call graph has %d", len(seen), len(cg.SCCs))
	}

	sccOf := map[string]int{}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			sccOf[p] = i
		}
	}
	for i, scc := range cg.SCCs {
		for _, p := range scc {
			for _, callee := range cg.Callees[p] {
				j, ok := sccOf[callee]
				if !ok || j == i {
					continue
				}
				if seen[i] <= seen[j] {
					t.Errorf("call %s→%s crosses levels %d→%d (caller must be strictly higher)",
						p, callee, seen[i], seen[j])
				}
			}
		}
	}
}
