package solver

import (
	"os"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
)

// TestGenerateShardGoldenFixture regenerates the cache-compatibility
// fixture pair (testdata/cache_pr5_golden.{bin,dump}) that
// persist_golden_test.go pins the wire format against. The checked-in
// copy was last recorded at the v2 bump (body-class section);
// regenerate only on a deliberate cacheFormatVersion/FPVersion bump,
// and bump those versions rather than regenerating to paper over an
// accidental wire change.
func TestGenerateShardGoldenFixture(t *testing.T) {
	if os.Getenv("RETYPD_GEN_FIXTURE") == "" {
		t.Skip("set RETYPD_GEN_FIXTURE=1 to regenerate")
	}
	b := corpus.Generate("shardgolden", 11, 600)
	prog, err := asm.Parse(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 1
	eng := NewEngine(0, 0)
	res := eng.Infer(prog, lattice.Default(), nil, opts)
	f, err := os.Create("testdata/cache_pr5_golden.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveCacheTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	os.WriteFile("testdata/cache_pr5_golden.dump",
		[]byte(res.DumpSchemes()+"\n===\n"+res.DumpSpecialized()), 0o644)
}
