package solver

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"retypd/internal/bodyfp"
	"retypd/internal/conc"
	"retypd/internal/constraints"
	"retypd/internal/sketch"
)

// Session persistence: Engine.SaveSession writes the engine's recorded
// session — the per-procedure snapshots Reanalyze diffs against — to a
// versioned, checksummed file, and LoadSession reads one back into a
// fresh process. A process that loads both the cache file and the
// session file of a finished predecessor goes straight to Reanalyze
// with zero warm-up: every procedure the edit did not touch replays
// from the session without the pipeline running at all.
//
// File layout:
//
//	magic ++ uvarint(sessionFormatVersion)
//	++ lattice signature ++ byte(option bits) ++ varint(MaxSketchDepth)
//	++ summaries digest (sumsDigest)
//	++ uvarint(procedure count); per procedure, ascending name:
//	     uvarint(record length) ++ record, where record is
//	     name ++ fingerprint wire (bodyfp.FP.AppendWire)
//	     ++ scheme wire ++ byte(hasSketch) [++ uvarint(len) ++ sketch wire]
//	     ++ byte(hasRaw) [++ constraint-set wire]
//	     ++ uvarint(obs count) per obs
//	          (callee ++ loc ++ uvarint(inst) ++ uvarint(len) ++ sketch wire)
//	     ++ SCC membership key
//	++ sha256 of everything preceding (32 bytes)
//
// The per-procedure length prefix exists so a loader can find record
// boundaries without parsing record contents: LoadSessionData scans
// boundaries sequentially, then decodes the records on all cores. That
// matters because session load sits on the zero-warm-up critical path —
// a restarted service pays it before the first Reanalyze.
//
// What a loaded session does NOT carry: the per-procedure CFG analyses
// (cfg.ProcInfo holds program-relative state that is cheap to recompute
// and expensive to make portable) — the first Reanalyze after a load
// re-analyzes every procedure's CFG but replays everything else — and
// the summaries table itself (only its digest travels; compatibility is
// always a digest compare). Strings are uvarint-length-prefixed; the
// same version-bump rules as the cache file apply (persist.go), with
// sessionFormatVersion guarding this layout and the embedded wire
// encodings.

// sessMagic identifies a retypd session file.
const sessMagic = "retypd-sess\x00"

// sessionFormatVersion versions the session file layout and every
// embedded wire encoding.
const sessionFormatVersion = 1

// session option bits (byte after the lattice signature).
const (
	sessOptMonomorphicCalls = 1 << iota
	sessOptPolymorphicExternals
	sessOptNoConstantSuppression
	sessOptNoSpecialize
	sessOptKeepIntermediates
)

// ErrNoSession reports a SaveSession call on an engine that has not
// recorded a run (no Infer yet, recording disabled, or the last run was
// not sessionable).
var ErrNoSession = fmt.Errorf("solver: engine has no recorded session")

// SaveSessionTo writes the engine's current session to w.
func (e *Engine) SaveSessionTo(w io.Writer) error {
	e.mu.Lock()
	sess := e.sess
	e.mu.Unlock()
	if sess == nil {
		return ErrNoSession
	}
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, sessMagic...)
	buf = binary.AppendUvarint(buf, sessionFormatVersion)
	buf = appendCacheString(buf, sess.latSig)
	var bits byte
	if sess.opts.Absint.MonomorphicCalls {
		bits |= sessOptMonomorphicCalls
	}
	if sess.opts.Absint.PolymorphicExternals {
		bits |= sessOptPolymorphicExternals
	}
	if sess.opts.Absint.NoConstantSuppression {
		bits |= sessOptNoConstantSuppression
	}
	if sess.opts.NoSpecialize {
		bits |= sessOptNoSpecialize
	}
	if sess.opts.KeepIntermediates {
		bits |= sessOptKeepIntermediates
	}
	buf = append(buf, bits)
	buf = binary.AppendVarint(buf, int64(sess.opts.MaxSketchDepth))
	buf = appendCacheString(buf, sess.sumsDig)

	names := make([]string, 0, len(sess.procs))
	for p := range sess.procs {
		names = append(names, p)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	var rec []byte
	for _, p := range names {
		snap := sess.procs[p]
		rec = appendCacheString(rec[:0], p)
		rec = snap.fp.AppendWire(rec)
		rec = constraints.AppendSchemeWire(rec, snap.scheme)
		if snap.pr.Sketch != nil {
			rec = append(rec, 1)
			blob := snap.pr.Sketch.AppendWire(nil)
			rec = binary.AppendUvarint(rec, uint64(len(blob)))
			rec = append(rec, blob...)
		} else {
			rec = append(rec, 0)
		}
		if snap.pr.Constraints != nil {
			rec = append(rec, 1)
			rec = snap.pr.Constraints.AppendWire(rec)
		} else {
			rec = append(rec, 0)
		}
		rec = binary.AppendUvarint(rec, uint64(len(snap.obs)))
		for _, o := range snap.obs {
			rec = appendCacheString(rec, o.key.callee)
			rec = appendCacheString(rec, o.key.loc)
			rec = binary.AppendUvarint(rec, uint64(o.inst))
			blob := o.sk.AppendWire(nil)
			rec = binary.AppendUvarint(rec, uint64(len(blob)))
			rec = append(rec, blob...)
		}
		rec = appendCacheString(rec, sess.sccKey[p])
		buf = binary.AppendUvarint(buf, uint64(len(rec)))
		buf = append(buf, rec...)
	}
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	_, err := w.Write(buf)
	return err
}

// SaveSession writes the engine's current session to path (atomically,
// like SaveCache).
func (e *Engine) SaveSession(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".retypd-sess-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := e.SaveSessionTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSessionData decodes a session blob produced by SaveSessionTo and
// installs it as the engine's current session, replacing any recorded
// one. It verifies the checksum and version before decoding an entry;
// on any error the engine's session is unchanged. The session's lattice
// must already be built in this process (sketch blobs name it by
// signature). Returns the number of procedure snapshots loaded.
func (e *Engine) LoadSessionData(data []byte) (int, error) {
	if len(data) < len(sessMagic)+sha256.Size {
		return 0, fmt.Errorf("solver: session file too short")
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(tail) {
		return 0, fmt.Errorf("solver: session file checksum mismatch (truncated or corrupted)")
	}
	if string(body[:len(sessMagic)]) != sessMagic {
		return 0, fmt.Errorf("solver: not a retypd session file")
	}
	n := len(sessMagic)
	ver, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return 0, fmt.Errorf("solver: truncated session format version")
	}
	n += m
	if ver != sessionFormatVersion {
		return 0, fmt.Errorf("solver: session format version %d (this build reads %d)", ver, sessionFormatVersion)
	}
	latSig, m, err := decodeCacheString(body[n:], "lattice signature")
	if err != nil {
		return 0, err
	}
	n += m
	if n >= len(body) {
		return 0, fmt.Errorf("solver: truncated session option bits")
	}
	bits := body[n]
	n++
	depth, m := binary.Varint(body[n:])
	if m <= 0 {
		return 0, fmt.Errorf("solver: truncated session sketch depth")
	}
	n += m
	sumsDig, m, err := decodeCacheString(body[n:], "summaries digest")
	if err != nil {
		return 0, err
	}
	n += m

	sess := &session{
		latSig:  latSig,
		sumsDig: sumsDig,
		procs:   map[string]*procSnap{},
		sccKey:  map[string]string{},
	}
	sess.opts.Absint.MonomorphicCalls = bits&sessOptMonomorphicCalls != 0
	sess.opts.Absint.PolymorphicExternals = bits&sessOptPolymorphicExternals != 0
	sess.opts.Absint.NoConstantSuppression = bits&sessOptNoConstantSuppression != 0
	sess.opts.NoSpecialize = bits&sessOptNoSpecialize != 0
	sess.opts.KeepIntermediates = bits&sessOptKeepIntermediates != 0
	sess.opts.MaxSketchDepth = int(depth)

	count, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return 0, fmt.Errorf("solver: truncated session procedure count")
	}
	n += m
	if count > uint64(len(body)-n) {
		return 0, fmt.Errorf("solver: session procedure count %d exceeds file size", count)
	}

	// Pass 1: walk the length prefixes to find record boundaries.
	recs := make([][]byte, count)
	for i := range recs {
		ln, m := binary.Uvarint(body[n:])
		if m <= 0 || uint64(len(body)-n-m) < ln {
			return 0, fmt.Errorf("solver: truncated session procedure record")
		}
		n += m
		recs[i] = body[n : n+int(ln)]
		n += int(ln)
	}
	if n != len(body) {
		return 0, fmt.Errorf("solver: %d trailing bytes after session entries", len(body)-n)
	}

	// Pass 2: decode the records on all cores (the intern table and the
	// lattice registry are concurrency-safe). Errors keep the lowest
	// record index so a corrupt file reports deterministically.
	type sessRec struct {
		name   string
		snap   *procSnap
		sccKey string
		err    error
	}
	decoded := make([]sessRec, count)
	conc.ForEach(conc.Limit(0), len(recs), func(i int) {
		name, snap, sccKey, err := decodeSessionRecord(recs[i])
		decoded[i] = sessRec{name: name, snap: snap, sccKey: sccKey, err: err}
	})
	for i := range decoded {
		if err := decoded[i].err; err != nil {
			return 0, err
		}
		name := decoded[i].name
		if _, dup := sess.procs[name]; dup {
			return 0, fmt.Errorf("solver: duplicate procedure %q in session file", name)
		}
		sess.procs[name] = decoded[i].snap
		sess.sccKey[name] = decoded[i].sccKey
	}
	e.mu.Lock()
	e.sess = sess
	e.mu.Unlock()
	return len(sess.procs), nil
}

// decodeSessionRecord decodes one per-procedure session record (the
// bytes inside its length prefix) and must consume it exactly.
func decodeSessionRecord(rec []byte) (string, *procSnap, string, error) {
	n := 0
	fail := func(err error) (string, *procSnap, string, error) { return "", nil, "", err }
	decodeSketchBlob := func(what string) (*sketch.Sketch, error) {
		ln, m := binary.Uvarint(rec[n:])
		if m <= 0 || uint64(len(rec)-n-m) < ln {
			return nil, fmt.Errorf("solver: truncated %s in session file", what)
		}
		n += m
		sk, used, err := sketch.DecodeSketchWire(rec[n : n+int(ln)])
		if err != nil {
			return nil, err
		}
		if used != int(ln) {
			return nil, fmt.Errorf("solver: %d trailing bytes in session %s blob", int(ln)-used, what)
		}
		n += int(ln)
		return sk.Seal(), nil
	}
	name, m, err := decodeCacheString(rec[n:], "procedure name")
	if err != nil {
		return fail(err)
	}
	n += m
	fp, m, err := bodyfp.DecodeFPWire(rec[n:])
	if err != nil {
		return fail(err)
	}
	n += m
	scheme, m, err := constraints.DecodeSchemeWire(rec[n:])
	if err != nil {
		return fail(err)
	}
	n += m
	pr := &ProcResult{Name: name, Scheme: scheme, SpecializedIns: map[string]*sketch.Sketch{}}
	if n >= len(rec) {
		return fail(fmt.Errorf("solver: truncated session sketch flag"))
	}
	hasSk := rec[n]
	n++
	switch hasSk {
	case 1:
		if pr.Sketch, err = decodeSketchBlob("procedure sketch"); err != nil {
			return fail(err)
		}
	case 0:
	default:
		return fail(fmt.Errorf("solver: invalid session sketch flag %d", hasSk))
	}
	if n >= len(rec) {
		return fail(fmt.Errorf("solver: truncated session raw flag"))
	}
	hasRaw := rec[n]
	n++
	switch hasRaw {
	case 1:
		cs, m, err := constraints.DecodeSetWire(rec[n:])
		if err != nil {
			return fail(err)
		}
		pr.Constraints = cs
		n += m
	case 0:
	default:
		return fail(fmt.Errorf("solver: invalid session raw flag %d", hasRaw))
	}
	nObs, m := binary.Uvarint(rec[n:])
	if m <= 0 {
		return fail(fmt.Errorf("solver: truncated session observation count"))
	}
	n += m
	if nObs > uint64(len(rec)-n) {
		return fail(fmt.Errorf("solver: session observation count %d exceeds file size", nObs))
	}
	obs := make([]actualObs, nObs)
	for j := range obs {
		callee, m, err := decodeCacheString(rec[n:], "observation callee")
		if err != nil {
			return fail(err)
		}
		n += m
		loc, m, err := decodeCacheString(rec[n:], "observation location")
		if err != nil {
			return fail(err)
		}
		n += m
		inst, m := binary.Uvarint(rec[n:])
		if m <= 0 {
			return fail(fmt.Errorf("solver: truncated session observation"))
		}
		n += m
		sk, err := decodeSketchBlob("observation sketch")
		if err != nil {
			return fail(err)
		}
		obs[j] = actualObs{
			key:    actualKey{callee: callee, loc: loc},
			caller: name,
			inst:   int(inst),
			sk:     sk,
		}
	}
	sccKey, m, err := decodeCacheString(rec[n:], "SCC key")
	if err != nil {
		return fail(err)
	}
	n += m
	if n != len(rec) {
		return fail(fmt.Errorf("solver: %d trailing bytes in session procedure record", len(rec)-n))
	}
	return name, &procSnap{fp: fp, scheme: scheme, pr: pr, obs: obs}, sccKey, nil
}

// LoadSession reads a session file into an engine with fresh caches of
// the given capacities (≤ 0 selects defaults); compose with LoadCache
// data via the engine's LoadCacheData/LoadSessionData methods when both
// files are present.
func LoadSession(path string, schemeCap, shapeCap int) (*Engine, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	e := NewEngine(schemeCap, shapeCap)
	procs, err := e.LoadSessionData(data)
	if err != nil {
		return nil, 0, err
	}
	return e, procs, nil
}
