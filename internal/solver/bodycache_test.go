package solver

import (
	"strings"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/lattice"
)

// renameDedupProg rewrites dedupProgSrc with every procedure name
// prefixed — a distinct program whose bodies are all equivalent to the
// original's.
func renameDedupProg(prefix string) string {
	src := dedupProgSrc
	for _, name := range []string{
		"leaf_a", "leaf_b", "leaf_c", "leaf_other",
		"regvar_a", "regvar_b", "wrap_a", "wrap_b", "wrap_other",
		"selfrec", "main",
	} {
		src = strings.ReplaceAll(src, name, prefix+name)
	}
	return src
}

// TestEngineCrossProgramBodyServing: after analyzing one program, an
// engine serves a different program's equivalent bodies from the
// published entries — before the front end runs — with output
// byte-identical to a cold one-shot run of that program.
func TestEngineCrossProgramBodyServing(t *testing.T) {
	lat := lattice.Default()
	srcB := renameDedupProg("q_")
	for _, workers := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Workers = workers
		cold := Infer(asm.MustParse(srcB), lat, nil, opts)

		eng := NewEngine(0, 0)
		first := eng.Infer(asm.MustParse(dedupProgSrc), lat, nil, opts)
		if first.BodyDedupCrossHits != 0 {
			t.Fatalf("workers=%d: first run on a fresh engine reports %d cross-program hits",
				workers, first.BodyDedupCrossHits)
		}
		warm := eng.Infer(asm.MustParse(srcB), lat, nil, opts)
		if warm.BodyDedupCrossHits == 0 {
			t.Errorf("workers=%d: no cross-program body hits on an equivalent program", workers)
		}
		if dumpAll(cold) != dumpAll(warm) {
			t.Errorf("workers=%d: entry-served output differs from cold output", workers)
		}
	}
}

// TestEngineCrossProgramResolutionGuard: a stored entry whose
// CalleeNamed target was an external must not serve a consumer whose
// same-named target is a program procedure (and vice versa) — the two
// resolutions generate different constraints.
func TestEngineCrossProgramResolutionGuard(t *testing.T) {
	lat := lattice.Default()
	// In A, "helper" does not exist: the call resolves to an external.
	srcA := `
proc caller_a
    push 1
    call helper
    add esp, 4
    ret
endproc
`
	// In B, the identically-bodied caller's target IS a procedure —
	// self-recursive, so it stays outside class numbering and the call
	// site fingerprints as CalleeNamed in both programs, exactly like
	// A's external.
	srcB := `
proc helper
    mov eax, [ebp+8]
    call helper
    ret
endproc

proc caller_b
    push 1
    call helper
    add esp, 4
    ret
endproc
`
	opts := DefaultOptions()
	opts.Workers = 1
	cold := Infer(asm.MustParse(srcB), lat, nil, opts)

	eng := NewEngine(0, 0)
	eng.Infer(asm.MustParse(srcA), lat, nil, opts)
	warm := eng.Infer(asm.MustParse(srcB), lat, nil, opts)
	if warm.BodyDedupCrossHits != 0 {
		t.Errorf("resolution-flipped entry served %d members; the namedProc guard must refuse",
			warm.BodyDedupCrossHits)
	}
	if dumpAll(cold) != dumpAll(warm) {
		t.Error("resolution-flipped entry served: warm output differs from cold")
	}
}
