// Package absint is the constraint-generating abstract interpreter
// TYPE_A of the paper (Appendix A): it walks each procedure's
// instructions with a flow-sensitive value abstraction (constants,
// stack addresses, typed values with byte offsets — the t.+n
// translation tracking of §A.2) layered over reaching definitions, and
// emits subtype constraints:
//
//   - value copies emit Y ⊑ X upcasts (§3.1);
//   - loads and stores emit P.load.σN@k ⊑ X and Y ⊑ Q.store.σN@k;
//   - additions and subtractions of non-constants emit the 3-place
//     Add/Sub constraints of §A.6;
//   - procedure calls instantiate the callee's type scheme with a fresh
//     callsite tag (§A.4), which yields let-polymorphism for malloc-like
//     functions;
//   - the §2.1/§A.5.2 idioms (xor r,r, push of a zero, or r,-1,
//     pointer-alignment masks, flag-only computations) are special-cased
//     so that semi-syntactic constants never pollute type variables.
//
// Stack locals whose address is taken are grouped into frame regions
// with a region type variable (the "bare minimum points-to analysis
// that only tracks constant pointers to the local activation record" of
// §A.3).
package absint

import (
	"sort"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/intern"
	"retypd/internal/label"
	"retypd/internal/summaries"
)

// Options configures constraint generation; the zero value is the
// paper-faithful configuration with polymorphism and constant
// suppression enabled.
type Options struct {
	// MonomorphicCalls disables callsite tagging: callee interface
	// variables are shared by all callers (the unification and
	// TIE-style baselines' treatment of procedures).
	MonomorphicCalls bool
	// PolymorphicExternals keeps callsite tags on external summaries
	// even under MonomorphicCalls: baselines model known libc
	// signatures (and allocation sites) per callsite, as REWARDS,
	// TIE and SecondWrite all do.
	PolymorphicExternals bool
	// NoConstantSuppression disables the §2.1 semi-syntactic constant
	// handling; zero constants then generate copy constraints through a
	// shared pseudo-variable, modeling the false unification hazard.
	NoConstantSuppression bool
	// Covered, when non-nil, restricts generation to instructions for
	// which it returns true (the REWARDS-style dynamic-trace baseline).
	Covered func(proc string, idx int) bool
}

// CallSite records one call instruction's instantiation.
type CallSite struct {
	Caller string
	Inst   int
	Callee string
	// Root is the (possibly callsite-tagged) base variable the callee
	// interface was instantiated at.
	Root constraints.Var
	// Tail marks tail-call jumps.
	Tail bool
}

// Result is the generated constraint set for one procedure.
type Result struct {
	Proc        string
	Constraints *constraints.Set
	Calls       []CallSite
}

// value abstraction
type avKind uint8

const (
	avUnknown avKind = iota
	avConst
	avStackAddr
	avVar
	avDead // clobbered, typeless (e.g. ecx after a call)
)

type aval struct {
	kind avKind
	c    int32 // constant value, or stack offset for avStackAddr
	base constraints.Var
	off  int32 // byte offset from base (the t.+n of §A.2)
}

// resolved is the outcome of resolving a location's value at a use.
type resolved struct {
	kind avKind // avConst, avStackAddr, avVar (vals), or avDead/avUnknown
	c    int32
	vals []aval // avVar candidates (one per reaching definition)
}

type gen struct {
	pi      *cfg.ProcInfo
	infos   map[string]*cfg.ProcInfo
	schemes SchemeLookup
	sums    summaries.Table
	isConst func(constraints.Var) bool
	opts    Options

	cs    *constraints.Set
	calls []CallSite

	f constraints.Var // the procedure's own type variable

	defAval map[defKey]aval
	// regionBases are the (sorted, negative) frame offsets whose
	// address is taken; regionEnd[i] is the exclusive upper bound of
	// region i.
	regionBases []int32
	mergeVars   map[mergeKey]constraints.Var
	frmEmitted  map[cfg.Loc]constraints.Var
	regionVars  map[int32]constraints.Var
	freshN      int
	// nb composes every minted variable name (definition sites, merge
	// intermediates, region/formal variables, callsite tags) through
	// the symbol table instead of fmt — one of the ROADMAP-listed
	// allocation hot spots.
	nb intern.NameBuilder
}

// scheme resolves a callee's published type scheme (nil-safe).
func (g *gen) scheme(name string) *constraints.Scheme {
	if g.schemes == nil {
		return nil
	}
	return g.schemes(name)
}

// mergeKey identifies one use-site merge intermediate (instruction
// index plus operand role) without rendering a string key.
type mergeKey struct {
	idx int
	key string
}

type defKey struct {
	d   cfg.DefID
	loc cfg.Loc
}

// SchemeLookup resolves a callee name to its already-computed type
// scheme, or nil when none is available yet. It is a function, not a
// map, because the solver's readiness scheduler publishes schemes
// concurrently with other SCCs' generation: the solver backs it with a
// slice indexed by a frozen procedure index, where writing one callee's
// slot never races another's read (a shared map would).
type SchemeLookup func(name string) *constraints.Scheme

// Generate produces the constraint set for pi's procedure. infos gives
// the analyses of all program procedures (for callee formal lists),
// schemes the already-computed type schemes of callee SCCs — nil, or
// returning nil for a name, means no scheme, and the callee is linked
// monomorphically, which is the correct treatment inside a strongly
// connected component (§4.2) — and isConst identifies lattice
// constants (kept unrenamed by instantiation).
func Generate(pi *cfg.ProcInfo, infos map[string]*cfg.ProcInfo,
	schemes SchemeLookup, sums summaries.Table,
	isConst func(constraints.Var) bool, opts Options) *Result {

	g := &gen{
		pi:         pi,
		infos:      infos,
		schemes:    schemes,
		sums:       sums,
		isConst:    isConst,
		opts:       opts,
		cs:         constraints.NewSet(),
		f:          constraints.Var(pi.Proc.Name),
		defAval:    map[defKey]aval{},
		mergeVars:  map[mergeKey]constraints.Var{},
		frmEmitted: map[cfg.Loc]constraints.Var{},
		regionVars: map[int32]constraints.Var{},
	}
	g.findRegions()
	g.run()
	return &Result{Proc: pi.Proc.Name, Constraints: g.cs, Calls: g.calls}
}

// findRegions collects address-taken frame offsets.
func (g *gen) findRegions() {
	seen := map[int32]bool{}
	for i, in := range g.pi.Proc.Insts {
		if in.Op == asm.LEA {
			if off, ok := g.pi.SlotOf(i, in.Src); ok && off < 0 && !seen[off] {
				seen[off] = true
				g.regionBases = append(g.regionBases, off)
			}
		}
	}
	sort.Slice(g.regionBases, func(i, j int) bool { return g.regionBases[i] < g.regionBases[j] })
}

// regionOf maps a frame slot to its enclosing address-taken region
// base, if any.
func (g *gen) regionOf(slot int32) (int32, bool) {
	if slot >= 0 {
		return 0, false
	}
	base := int32(0)
	found := false
	for _, b := range g.regionBases {
		if b <= slot {
			base, found = b, true
		} else {
			break
		}
	}
	if !found {
		return 0, false
	}
	// The region extends to the next base above, or to the frame top.
	for _, b := range g.regionBases {
		if b > base {
			if slot >= b {
				return 0, false // cannot happen given scan order
			}
			break
		}
	}
	return base, true
}

func (g *gen) regionVar(base int32) constraints.Var {
	if v, ok := g.regionVars[base]; ok {
		return v
	}
	v := constraints.Var(g.nb.Begin(g.pi.Proc.Name).Str("!rgn").Int(int(-base)).String())
	g.regionVars[base] = v
	return v
}

// frmVar returns (emitting the F.in constraint once) the type variable
// of a formal's entry definition.
func (g *gen) frmVar(l cfg.Loc) constraints.Var {
	if v, ok := g.frmEmitted[l]; ok {
		return v
	}
	v := constraints.Var(g.nb.Begin(g.pi.Proc.Name).Str("!frm!").Str(l.ParamName()).String())
	g.frmEmitted[l] = v
	g.cs.AddSub(
		constraints.MakeDTV(g.f, label.In(l.ParamName())),
		constraints.BaseDTV(v),
	)
	return v
}

func (g *gen) defVar(idx int, l cfg.Loc) constraints.Var {
	nb := g.nb.Begin(g.pi.Proc.Name).Byte('!')
	if l.IsSlot {
		nb.Byte('s').Int(int(l.Slot))
	} else {
		nb.Str(l.Reg.String())
	}
	return constraints.Var(nb.Byte('@').Int(idx).String())
}

func (g *gen) fresh(hint string) constraints.Var {
	g.freshN++
	return constraints.Var(g.nb.Begin(g.pi.Proc.Name).Byte('!').Str(hint).Int(g.freshN).String())
}

// zeroPseudo is the shared variable that models what happens WITHOUT
// constant suppression: every zero constant flows through one variable,
// falsely unifying all its uses (the §2.1 hazard, used by ablations).
func (g *gen) zeroPseudo() constraints.Var {
	return constraints.Var(g.nb.Begin(g.pi.Proc.Name).Str("!zero").String())
}

// resolveDef maps one reaching definition to a value.
func (g *gen) resolveDef(d cfg.DefID, l cfg.Loc) aval {
	if d.IsEntry() {
		return aval{kind: avVar, base: g.frmVar(g.pi.EntryLoc(d))}
	}
	if v, ok := g.defAval[defKey{d, l}]; ok {
		return v
	}
	// Definition not yet processed (loop back edge) or typeless: give
	// it a stable variable so the type still flows.
	return aval{kind: avVar, base: g.defVar(int(d), l)}
}

// resolveLoc resolves the current value of a location from the
// instruction's pre-state.
func (g *gen) resolveLoc(l cfg.Loc, st *state) resolved {
	if !l.IsSlot {
		if int(l.Reg) < len(st.regs) {
			if a := st.regs[l.Reg]; a.kind != avUnknown {
				switch a.kind {
				case avConst:
					return resolved{kind: avConst, c: a.c}
				case avStackAddr:
					return resolved{kind: avStackAddr, c: a.c}
				case avDead:
					return resolved{kind: avDead}
				case avVar:
					return resolved{kind: avVar, vals: []aval{a}}
				}
			}
		}
	}
	defs := st.reach[l]
	var vals []aval
	allZero := len(defs) > 0
	for _, d := range defs {
		a := g.resolveDef(d, l)
		switch a.kind {
		case avConst:
			if a.c != 0 {
				allZero = false
			}
			// Constants contribute no type constraints (§2.1).
		case avStackAddr:
			allZero = false
			if base, ok := g.regionOf(a.c); ok {
				vals = append(vals, aval{kind: avVar, base: g.regionVar(base), off: a.c - base})
			} else {
				vals = append(vals, aval{kind: avVar, base: g.regionVar(a.c)})
			}
		case avVar:
			allZero = false
			vals = append(vals, a)
		case avDead:
			allZero = false
		}
	}
	if len(vals) == 0 {
		if allZero {
			return resolved{kind: avConst, c: 0}
		}
		return resolved{kind: avDead}
	}
	return resolved{kind: avVar, vals: vals}
}

// regionVarForAddr returns the region variable for a stack address
// value that is being used as a first-class pointer.
func (g *gen) regionVarForAddr(off int32) constraints.Var {
	if base, ok := g.regionOf(off); ok {
		// An interior pointer into an address-taken region: the region
		// variable is the base pointer; interior offsets are folded by
		// the caller through aval.off, so here we return the base.
		return g.regionVar(base)
	}
	// Address of a non-region slot (should not happen: taking the
	// address creates the region); be safe.
	return g.regionVar(off)
}

// state is the per-instruction abstract machine state.
type state struct {
	regs  [6]aval // eax..edi (esp/ebp handled by the stack analysis)
	reach map[cfg.Loc][]cfg.DefID
}

func trackable(r asm.Reg) bool { return r < 6 }

// run walks every block, replaying reaching definitions and the
// register value abstraction, and emits constraints.
func (g *gen) run() {
	// Always bind formal-ins so the interface is visible even if a
	// parameter is dead.
	for _, l := range g.pi.FormalIns {
		g.frmVar(l)
	}

	// Block-entry register constants/addresses: forward fixpoint on the
	// flat lattice {unknown, const c, stackaddr o}.
	blockIn := g.constFixpoint()

	for b := range g.pi.Blocks {
		st := &state{reach: map[cfg.Loc][]cfg.DefID{}}
		st.regs = blockIn[b]
		for l, ds := range g.pi.ReachEntry(b) {
			st.reach[l] = ds
		}
		for i := g.pi.Blocks[b].Start; i < g.pi.Blocks[b].End; i++ {
			g.step(i, st)
		}
	}
}

// constFixpoint computes block-entry constant/stack-address register
// values.
func (g *gen) constFixpoint() [][6]aval {
	nb := len(g.pi.Blocks)
	in := make([][6]aval, nb)
	have := make([]bool, nb)
	have[0] = true

	joinv := func(a, b aval) aval {
		if a == b {
			return a
		}
		return aval{}
	}
	work := []int{0}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		regs := in[b]
		for i := g.pi.Blocks[b].Start; i < g.pi.Blocks[b].End; i++ {
			regs = g.constTransfer(i, regs)
		}
		for _, s := range g.pi.Blocks[b].Succs {
			var next [6]aval
			if !have[s] {
				next = regs
			} else {
				changed := false
				for r := 0; r < 6; r++ {
					next[r] = joinv(in[s][r], regs[r])
					if next[r] != in[s][r] {
						changed = true
					}
				}
				if !changed {
					continue
				}
			}
			in[s] = next
			have[s] = true
			work = append(work, s)
		}
	}
	return in
}

// constTransfer updates the constant/stack-address register state for
// one instruction (values only; no constraints).
func (g *gen) constTransfer(idx int, regs [6]aval) [6]aval {
	in := g.pi.Proc.Insts[idx]
	set := func(r asm.Reg, a aval) {
		if trackable(r) {
			regs[r] = a
		}
	}
	clobber := func(r asm.Reg) { set(r, aval{}) }
	switch in.Op {
	case asm.MOV:
		if in.Dst.Kind == asm.OpReg && trackable(in.Dst.Reg) {
			switch in.Src.Kind {
			case asm.OpImm:
				set(in.Dst.Reg, aval{kind: avConst, c: in.Src.Imm})
			case asm.OpReg:
				if trackable(in.Src.Reg) {
					src := regs[in.Src.Reg]
					if src.kind == avConst || src.kind == avStackAddr {
						set(in.Dst.Reg, src)
					} else {
						clobber(in.Dst.Reg)
					}
				} else {
					clobber(in.Dst.Reg)
				}
			default:
				clobber(in.Dst.Reg)
			}
		}
	case asm.LEA:
		if in.Dst.Kind == asm.OpReg && trackable(in.Dst.Reg) {
			if off, ok := g.pi.SlotOf(idx, in.Src); ok {
				set(in.Dst.Reg, aval{kind: avStackAddr, c: off})
			} else {
				clobber(in.Dst.Reg)
			}
		}
	case asm.XOR:
		if in.Dst.Kind == asm.OpReg && in.Src.Kind == asm.OpReg && in.Dst.Reg == in.Src.Reg {
			set(in.Dst.Reg, aval{kind: avConst, c: 0})
		} else if in.Dst.Kind == asm.OpReg {
			clobber(in.Dst.Reg)
		}
	case asm.ADD, asm.SUB:
		if in.Dst.Kind == asm.OpReg && trackable(in.Dst.Reg) && in.Src.Kind == asm.OpImm {
			a := regs[in.Dst.Reg]
			d := in.Src.Imm
			if in.Op == asm.SUB {
				d = -d
			}
			if a.kind == avConst || a.kind == avStackAddr {
				a.c += d
				set(in.Dst.Reg, a)
			} else {
				clobber(in.Dst.Reg)
			}
		} else if in.Dst.Kind == asm.OpReg {
			clobber(in.Dst.Reg)
		}
	case asm.OR:
		if in.Dst.Kind == asm.OpReg && in.Src.Kind == asm.OpImm && in.Src.Imm == -1 {
			set(in.Dst.Reg, aval{kind: avConst, c: -1})
		} else if in.Dst.Kind == asm.OpReg {
			clobber(in.Dst.Reg)
		}
	case asm.POP, asm.MOVB, asm.MOVW, asm.IMUL, asm.AND, asm.SHL, asm.SHR:
		if in.Dst.Kind == asm.OpReg {
			clobber(in.Dst.Reg)
		}
	case asm.CALL:
		clobber(asm.EAX)
		clobber(asm.ECX)
		clobber(asm.EDX)
	}
	return regs
}
