package absint

import (
	"strconv"
	"strings"

	"retypd/internal/constraints"
)

// This file is the rename side of whole-procedure body deduplication
// (internal/bodyfp): when two procedures have equivalent bodies, the
// constraint vocabulary Generate mints for one translates into the
// other's by pure name surgery, because every variable this package
// creates is a deterministic function of the procedure name, the
// instruction stream, and the call targets:
//
//	<proc>                      the procedure's own type variable
//	<proc>!<reg>@<idx>          a register definition site (defVar)
//	<proc>!s<slot>@<idx>        a stack-slot definition site (defVar)
//	<proc>!frm!<param>          a formal's entry definition (frmVar)
//	<proc>!rgn<n>               an address-taken frame region
//	<proc>!u<idx>!<key>         a use-site merge intermediate
//	<proc>!zero                 the §2.1-ablation zero pseudo-variable
//	<base>@<proc>!<idx>         a callsite-tagged instantiation of a
//	                            callee-scheme variable (emitCall): base
//	                            is the callee's root (its name), one of
//	                            its existentials, or a summary variable
//	<callee>                    a bare callee interface variable
//	                            (monomorphic or same-SCC linking)
//
// A Renamer rewrites each form for a new procedure name, mapping callee
// names through the callsite correspondence the body fingerprint
// established. Anything it cannot positively classify makes the whole
// translation fail (Apply returns ok == false) rather than guess — the
// solver then falls back to running Generate for real.

// CallRename is one callsite's target correspondence: the procedure
// being translated from calls From at instruction Inst where the target
// procedure calls To.
type CallRename struct {
	Inst     int
	From, To string
}

// Renamer translates base variables minted for one procedure into the
// corresponding variables of a body-equivalent procedure.
type Renamer struct {
	from, to         string
	fromBang, toBang string
	calleeAt         map[int]CallRename
	calleeByName     map[string]string
	// isProc reports whether a name is a program procedure (optional).
	// Used to refuse, rather than keep, a program-procedure variable
	// that appears where only the callsite's own callee, a simplifier
	// existential, or an external/summary name belongs: such a variable
	// is a foreign leak whose member-side counterpart this renamer
	// cannot know (the same conservatism pgraph's canonicalize applies
	// before caching a scheme).
	isProc func(string) bool
	valid  bool
}

// NewRenamer builds a renamer from procedure from to procedure to,
// with the callsite correspondence calls. isProc (optional) identifies
// program-procedure names for the foreign-leak refusal described on
// Renamer. It returns a renamer with Valid() == false when the
// correspondence is inconsistent (one From name would have to map to
// two different To names — impossible for bodies grouped by bodyfp,
// which encodes the name-repetition pattern, but checked rather than
// assumed).
func NewRenamer(from, to string, calls []CallRename, isProc func(string) bool) *Renamer {
	r := &Renamer{
		from: from,
		to:   to,
		// The two prefixes below match and splice names the generator
		// already minted through NameBuilder; the grammar table at the
		// top of this file is the contract that keeps them in sync.
		fromBang:     from + "!", //retypd:name-ok match/splice prefix per the grammar table
		toBang:       to + "!",   //retypd:name-ok match/splice prefix per the grammar table
		calleeAt:     make(map[int]CallRename, len(calls)),
		calleeByName: make(map[string]string, len(calls)),
		isProc:       isProc,
		valid:        true,
	}
	for _, c := range calls {
		r.calleeAt[c.Inst] = c
		if prev, ok := r.calleeByName[c.From]; ok && prev != c.To {
			r.valid = false
		}
		r.calleeByName[c.From] = c.To
	}
	return r
}

// Valid reports whether the callsite correspondence was consistent.
func (r *Renamer) Valid() bool { return r.valid }

// Rename translates one base variable, reporting whether it could be
// positively classified. Lattice constants and foreign variables are
// returned unchanged with ok == true: they appear identically in the
// target procedure's vocabulary.
func (r *Renamer) Rename(v constraints.Var) (constraints.Var, bool) {
	s := string(v)
	if s == r.from {
		return constraints.Var(r.to), true
	}
	if strings.HasPrefix(s, r.fromBang) {
		// A procedure-local variable: swap the name prefix. (This case
		// must run before the tag case — defVar names contain '@' too.)
		return constraints.Var(r.to + s[len(r.from):]), true
	}
	if i := strings.IndexByte(s, '@'); i >= 0 {
		// A callsite-tagged variable <base>@<from>!<idx>.
		head, tail := s[:i], s[i+1:]
		if !strings.HasPrefix(tail, r.fromBang) {
			return v, false
		}
		idxStr := tail[len(r.fromBang):]
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return v, false
		}
		if c, ok := r.calleeAt[idx]; ok && head == c.From {
			head = c.To
		} else if r.isProc != nil && r.isProc(head) {
			// A program procedure other than this callsite's callee was
			// instantiated here: a variable leaked through the callee's
			// simplified scheme. Its member-side name is unknowable
			// from the callsite correspondence — refuse, don't guess.
			// (The current simplifier never emits such schemes — every
			// non-root internal variable becomes a τ existential — so
			// this is the same defense-in-depth as canonicalize's
			// foreign-variable check on the scheme cache.)
			return v, false
		}
		//retypd:name-ok rename surgery reassembles grammar-conformant pieces of an existing name
		return constraints.Var(head + "@" + r.toBang + idxStr), true
	}
	if to, ok := r.calleeByName[s]; ok {
		// A bare callee interface variable (monomorphic linking).
		return constraints.Var(to), true
	}
	if r.isProc != nil && r.isProc(s) {
		// A bare program-procedure variable the translated procedure
		// does not call: a foreign leak (see above) — refuse.
		return v, false
	}
	return v, true
}

// Apply translates a whole constraint set, reporting whether every
// base variable was positively classified. On ok == false the returned
// set must be discarded.
func (r *Renamer) Apply(cs *constraints.Set) (*constraints.Set, bool) {
	if !r.valid {
		return nil, false
	}
	ok := true
	out := cs.SubstituteBases(func(v constraints.Var) constraints.Var {
		nv, vok := r.Rename(v)
		if !vok {
			ok = false
		}
		return nv
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// TranslateScheme derives the body-equivalent procedure's type scheme
// from the representative's. The existential list is copied verbatim:
// simplification numbers its τ variables structurally, so isomorphic
// constraint sets synthesize identical existential names.
func (r *Renamer) TranslateScheme(sc *constraints.Scheme) (*constraints.Scheme, bool) {
	cs, ok := r.Apply(sc.Constraints)
	if !ok {
		return nil, false
	}
	root, ok := r.Rename(sc.Root)
	if !ok {
		return nil, false
	}
	return &constraints.Scheme{
		Root:        root,
		Constraints: cs,
		Existential: append([]constraints.Var(nil), sc.Existential...),
	}, true
}
