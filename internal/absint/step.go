package absint

import (
	"strconv"
	"strings"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/label"
)

func bare(v constraints.Var) constraints.DTV { return constraints.BaseDTV(v) }

// copyInto emits the upcast constraints of a value copy into dst
// (§A.1): one constraint per reaching candidate, with zero constants
// suppressed (§2.1) unless the ablation option routes them through the
// shared zero pseudo-variable.
func (g *gen) copyInto(rv resolved, dst constraints.DTV) {
	switch rv.kind {
	case avConst:
		if rv.c == 0 && g.opts.NoConstantSuppression {
			g.cs.AddSub(bare(g.zeroPseudo()), dst)
		}
	case avStackAddr:
		// A pointer into the local activation record: the region
		// variable is the pointer's type (§A.3).
		if base, ok := g.regionOf(rv.c); ok {
			if rv.c == base {
				g.cs.AddSub(bare(g.regionVar(base)), dst)
			}
			// Interior pointers are dropped (offset not expressible
			// on the bare variable; accesses still resolve via vals).
		}
	case avVar:
		for _, v := range rv.vals {
			// Offset-translated values (t.+n, §A.2): a 0 offset is the
			// value itself; a non-word-aligned offset can only be
			// integer arithmetic, so the translation preserves the
			// type. Word-aligned non-zero offsets may be interior
			// pointers (§2.4) and are dropped here — their field
			// accesses are still folded into σN@k at dereference.
			if v.off == 0 || v.off%4 != 0 {
				g.cs.AddSub(bare(v.base), dst)
			}
		}
	}
}

// mergeOne funnels a multi-candidate value into a single fresh variable
// (the unknown_loc intermediates of Figure 20), memoized per use site.
func (g *gen) mergeOne(idx int, key string, rv resolved) (constraints.Var, int32, bool) {
	if rv.kind != avVar || len(rv.vals) == 0 {
		return "", 0, false
	}
	if len(rv.vals) == 1 {
		return rv.vals[0].base, rv.vals[0].off, true
	}
	mk := mergeKey{idx: idx, key: key}
	u, ok := g.mergeVars[mk]
	if !ok {
		u = constraints.Var(g.nb.Begin(g.pi.Proc.Name).Str("!u").Int(idx).Byte('!').Str(key).String())
		g.mergeVars[mk] = u
	}
	for _, v := range rv.vals {
		if v.off == 0 {
			g.cs.AddSub(bare(v.base), bare(u))
		}
	}
	return u, 0, true
}

// loadFrom emits a pointer-load constraint base.load.σbits@off ⊑ d.
func (g *gen) loadFrom(base constraints.Var, off int32, bits int, d constraints.Var) {
	g.cs.AddSub(
		constraints.MakeDTV(base, label.Load(), label.Field(bits, int(off))),
		bare(d),
	)
}

// storeTo emits value ⊑ base.store.σbits@off for every candidate.
func (g *gen) storeTo(rv resolved, base constraints.Var, off int32, bits int) {
	g.copyInto(rv, constraints.MakeDTV(base, label.Store(), label.Field(bits, int(off))))
}

// resolveOperand resolves a register or immediate source operand.
func (g *gen) resolveOperand(o asm.Operand, st *state) resolved {
	switch o.Kind {
	case asm.OpImm:
		return resolved{kind: avConst, c: o.Imm}
	case asm.OpReg:
		if !trackable(o.Reg) {
			return resolved{kind: avDead}
		}
		return g.resolveLoc(cfg.RegLoc(o.Reg), st)
	default:
		return resolved{kind: avDead}
	}
}

// rvToAval summarizes a resolved value as the aval recorded for a new
// definition that copies it through variable d (already constrained).
func rvToAval(rv resolved, d constraints.Var) aval {
	switch rv.kind {
	case avConst:
		return aval{kind: avConst, c: rv.c}
	case avStackAddr:
		return aval{kind: avStackAddr, c: rv.c}
	case avVar:
		return aval{kind: avVar, base: d}
	default:
		return aval{kind: avDead}
	}
}

// step emits constraints for instruction i and advances the state.
func (g *gen) step(i int, st *state) {
	defer g.advance(i, st)
	if g.opts.Covered != nil && !g.opts.Covered(g.pi.Proc.Name, i) {
		return // uncovered by the dynamic trace: no constraints
	}
	in := g.pi.Proc.Insts[i]
	switch in.Op {
	case asm.MOV, asm.MOVB, asm.MOVW:
		g.stepMove(i, in, st)
	case asm.LEA:
		g.stepLea(i, in, st)
	case asm.PUSH:
		if sp := g.pi.ESPIn[i]; sp.Known {
			dst := sp.Delta - 4
			if in.Src.Kind == asm.OpMem {
				// push [mem]: load then store to the new slot.
				if slot, ok := g.pi.SlotOf(i, in.Src); ok {
					if base, inRegion := g.regionOf(slot); inRegion {
						d := g.defVar(i, cfg.SlotLoc(dst))
						g.loadFrom(g.regionVar(base), slot-base, 32, d)
						g.setDef(i, cfg.SlotLoc(dst), aval{kind: avVar, base: d})
					} else {
						g.storeSlotRV(i, dst, g.resolveLoc(cfg.SlotLoc(slot), st), 32)
					}
				}
			} else {
				g.storeSlotRV(i, dst, g.resolveOperand(in.Src, st), 32)
			}
		}
	case asm.POP:
		if sp := g.pi.ESPIn[i]; sp.Known && in.Dst.Kind == asm.OpReg && trackable(in.Dst.Reg) {
			g.loadSlot(i, sp.Delta, 32, cfg.RegLoc(in.Dst.Reg), st)
		}
	case asm.ADD, asm.SUB:
		g.stepAddSub(i, in, st)
	case asm.XOR, asm.AND, asm.OR, asm.IMUL, asm.SHL, asm.SHR:
		g.stepBitArith(i, in, st)
	case asm.CALL:
		g.emitCall(i, st, false)
	case asm.JMP:
		if _, isLabel := g.pi.Proc.Labels[in.Target]; !isLabel {
			g.emitCall(i, st, true)
		}
	case asm.RET:
		if g.pi.HasOut {
			rv := g.resolveLoc(cfg.RegLoc(asm.EAX), st)
			g.copyInto(rv, constraints.MakeDTV(g.f, label.Out("eax")))
		}
	}
}

// stepMove handles the three mov widths.
func (g *gen) stepMove(i int, in asm.Inst, st *state) {
	bits := in.Op.Bits()
	// Store forms.
	if in.Dst.Kind == asm.OpMem {
		rv := g.resolveOperand(in.Src, st)
		if slot, ok := g.pi.SlotOf(i, in.Dst); ok {
			g.storeSlotRV(i, slot, rv, bits)
			return
		}
		baseRv := g.resolveLoc(cfg.RegLoc(in.Dst.Reg), st)
		switch baseRv.kind {
		case avVar:
			if bv, boff, ok := g.mergeOne(i, "stbase", baseRv); ok {
				g.storeTo(rv, bv, boff+in.Dst.Imm, bits)
			}
		case avStackAddr:
			g.storeSlotRV(i, baseRv.c+in.Dst.Imm, rv, bits)
		}
		return
	}
	// Load and copy forms (dst is a register).
	if !trackable(in.Dst.Reg) {
		return
	}
	dloc := cfg.RegLoc(in.Dst.Reg)
	if in.Src.Kind == asm.OpMem {
		if slot, ok := g.pi.SlotOf(i, in.Src); ok {
			g.loadSlot(i, slot, bits, dloc, st)
			return
		}
		baseRv := g.resolveLoc(cfg.RegLoc(in.Src.Reg), st)
		switch baseRv.kind {
		case avVar:
			if bv, boff, ok := g.mergeOne(i, "ldbase", baseRv); ok {
				d := g.defVar(i, dloc)
				g.loadFrom(bv, boff+in.Src.Imm, bits, d)
				g.setDef(i, dloc, aval{kind: avVar, base: d})
				return
			}
			g.setDef(i, dloc, aval{kind: avDead})
		case avStackAddr:
			g.loadSlot(i, baseRv.c+in.Src.Imm, bits, dloc, st)
		default:
			g.setDef(i, dloc, aval{kind: avDead})
		}
		return
	}
	// Register/immediate copy.
	rv := g.resolveOperand(in.Src, st)
	if rv.kind == avVar && len(rv.vals) == 1 && rv.vals[0].off != 0 {
		// Pure alias preserving the byte offset (t.+n, §A.2).
		g.setDef(i, dloc, rv.vals[0])
		return
	}
	d := g.defVar(i, dloc)
	g.copyInto(rv, bare(d))
	g.setDef(i, dloc, rvToAval(rv, d))
}

// storeSlotRV writes a resolved value into a frame slot, routing
// through the region variable when the slot's address is taken.
func (g *gen) storeSlotRV(i int, slot int32, rv resolved, bits int) {
	if base, ok := g.regionOf(slot); ok {
		g.storeTo(rv, g.regionVar(base), slot-base, bits)
		g.setDef(i, cfg.SlotLoc(slot), aval{kind: avDead})
		return
	}
	if rv.kind == avVar && len(rv.vals) == 1 && rv.vals[0].off != 0 {
		g.setDef(i, cfg.SlotLoc(slot), rv.vals[0])
		return
	}
	d := g.defVar(i, cfg.SlotLoc(slot))
	g.copyInto(rv, bare(d))
	g.setDef(i, cfg.SlotLoc(slot), rvToAval(rv, d))
}

// loadSlot reads a frame slot into a destination location, routing
// through the region variable when the slot's address is taken.
func (g *gen) loadSlot(i int, slot int32, bits int, dloc cfg.Loc, st *state) {
	if base, ok := g.regionOf(slot); ok {
		d := g.defVar(i, dloc)
		g.loadFrom(g.regionVar(base), slot-base, bits, d)
		g.setDef(i, dloc, aval{kind: avVar, base: d})
		return
	}
	rv := g.resolveLoc(cfg.SlotLoc(slot), st)
	if rv.kind == avVar && len(rv.vals) == 1 && rv.vals[0].off != 0 {
		g.setDef(i, dloc, rv.vals[0])
		return
	}
	d := g.defVar(i, dloc)
	g.copyInto(rv, bare(d))
	g.setDef(i, dloc, rvToAval(rv, d))
}

// setDef records the aval of a definition made by instruction i.
func (g *gen) setDef(i int, l cfg.Loc, a aval) {
	g.defAval[defKey{cfg.DefID(i), l}] = a
}

// advance applies instruction i's kills/gens to the replayed state.
func (g *gen) advance(i int, st *state) {
	var lbuf [4]cfg.Loc
	for _, l := range g.pi.AppendDefsOf(lbuf[:0], i) {
		st.reach[l] = []cfg.DefID{cfg.DefID(i)}
		if !l.IsSlot && trackable(l.Reg) {
			if a, ok := g.defAval[defKey{cfg.DefID(i), l}]; ok {
				st.regs[l.Reg] = a
			} else {
				st.regs[l.Reg] = aval{kind: avDead}
			}
		}
	}
}

// stepLea handles lea dst, [base+disp].
func (g *gen) stepLea(i int, in asm.Inst, st *state) {
	if !trackable(in.Dst.Reg) {
		return
	}
	dloc := cfg.RegLoc(in.Dst.Reg)
	if off, ok := g.pi.SlotOf(i, in.Src); ok {
		g.setDef(i, dloc, aval{kind: avStackAddr, c: off})
		return
	}
	baseRv := g.resolveLoc(cfg.RegLoc(in.Src.Reg), st)
	if baseRv.kind == avVar && len(baseRv.vals) == 1 {
		v := baseRv.vals[0]
		g.setDef(i, dloc, aval{kind: avVar, base: v.base, off: v.off + in.Src.Imm})
		return
	}
	g.setDef(i, dloc, aval{kind: avDead})
}

// stepAddSub handles add/sub.
func (g *gen) stepAddSub(i int, in asm.Inst, st *state) {
	if in.Dst.Kind != asm.OpReg || !trackable(in.Dst.Reg) {
		return
	}
	dloc := cfg.RegLoc(in.Dst.Reg)
	x := g.resolveLoc(dloc, st)
	y := g.resolveOperand(in.Src, st)
	sign := int32(1)
	if in.Op == asm.SUB {
		sign = -1
	}

	// Constant displacement: the result is the same value translated by
	// a constant (§A.2's t.+n); no constraint is generated.
	if y.kind == avConst {
		switch x.kind {
		case avConst:
			g.setDef(i, dloc, aval{kind: avConst, c: x.c + sign*y.c})
		case avStackAddr:
			g.setDef(i, dloc, aval{kind: avStackAddr, c: x.c + sign*y.c})
		case avVar:
			if len(x.vals) == 1 {
				v := x.vals[0]
				g.setDef(i, dloc, aval{kind: avVar, base: v.base, off: v.off + sign*y.c})
				return
			}
			d := g.defVar(i, dloc)
			g.copyInto(x, bare(d))
			g.setDef(i, dloc, aval{kind: avVar, base: d, off: sign * y.c})
		default:
			g.setDef(i, dloc, aval{kind: avDead})
		}
		return
	}
	if in.Op == asm.ADD && x.kind == avConst && y.kind == avVar && len(y.vals) == 1 {
		v := y.vals[0]
		g.setDef(i, dloc, aval{kind: avVar, base: v.base, off: v.off + x.c})
		return
	}
	// General case: a 3-place additive constraint (§A.6, Figure 13).
	if x.kind == avVar && y.kind == avVar {
		xv, _, okx := g.mergeOne(i, "addx", x)
		yv, _, oky := g.mergeOne(i, "addy", y)
		if okx && oky {
			d := g.defVar(i, dloc)
			if in.Op == asm.ADD {
				g.cs.Insert(constraints.Add(bare(xv), bare(yv), bare(d)))
			} else {
				g.cs.Insert(constraints.Subtract(bare(xv), bare(yv), bare(d)))
			}
			g.setDef(i, dloc, aval{kind: avVar, base: d})
			return
		}
	}
	g.setDef(i, dloc, aval{kind: avDead})
}

// stepBitArith handles the bit-manipulation family with the §A.5.2
// special cases.
func (g *gen) stepBitArith(i int, in asm.Inst, st *state) {
	if in.Dst.Kind != asm.OpReg || !trackable(in.Dst.Reg) {
		return
	}
	dloc := cfg.RegLoc(in.Dst.Reg)

	// xor r, r and or r, -1: constant initializers, not integral ops.
	if in.Op == asm.XOR && in.Src.Kind == asm.OpReg && in.Src.Reg == in.Dst.Reg {
		g.setDef(i, dloc, aval{kind: avConst, c: 0})
		return
	}
	if in.Op == asm.OR && in.Src.Kind == asm.OpImm && in.Src.Imm == -1 {
		g.setDef(i, dloc, aval{kind: avConst, c: -1})
		return
	}
	// Pointer bit-stealing: and r, ~align / or r, lowbits act as y := x.
	if in.Src.Kind == asm.OpImm {
		if (in.Op == asm.AND && in.Src.Imm|3 == -1) ||
			(in.Op == asm.OR && in.Src.Imm >= 1 && in.Src.Imm <= 3) {
			x := g.resolveLoc(dloc, st)
			if x.kind == avVar && len(x.vals) == 1 {
				g.setDef(i, dloc, x.vals[0])
				return
			}
			d := g.defVar(i, dloc)
			g.copyInto(x, bare(d))
			g.setDef(i, dloc, rvToAval(x, d))
			return
		}
	}
	// General bit manipulation: integral operands and result (§A.5.2).
	intC := bare(constraints.Var("int"))
	x := g.resolveLoc(dloc, st)
	y := g.resolveOperand(in.Src, st)
	for _, rv := range []resolved{x, y} {
		if rv.kind == avVar {
			for _, v := range rv.vals {
				if v.off == 0 {
					g.cs.AddSub(bare(v.base), intC)
				}
			}
		}
	}
	d := g.defVar(i, dloc)
	g.cs.AddSub(intC, bare(d))
	g.cs.AddSub(bare(d), intC)
	g.setDef(i, dloc, aval{kind: avVar, base: d})
}

// emitCall handles call instructions and tail-call jumps (§A.4):
// locator-mediated actual/formal binding with callsite-tagged scheme
// instantiation.
func (g *gen) emitCall(i int, st *state, tail bool) {
	target := g.pi.Proc.Insts[i].Target
	_, isProgramProc := g.infos[target]
	tag := ""
	if !g.opts.MonomorphicCalls || (g.opts.PolymorphicExternals && !isProgramProc) {
		tag = g.nb.Begin("@").Str(g.pi.Proc.Name).Byte('!').Int(i).String()
	}

	var formalNames []string
	var hasOut bool
	var root constraints.Var
	keep := func(v constraints.Var) constraints.Var {
		if g.isConst(v) {
			return v
		}
		return constraints.Var(string(v) + tag)
	}

	if ci, ok := g.infos[target]; ok {
		for _, l := range ci.FormalIns {
			formalNames = append(formalNames, l.ParamName())
		}
		hasOut = ci.HasOut
		if sch := g.scheme(target); sch != nil && tag != "" {
			root = constraints.Var(string(sch.Root) + tag)
			g.cs.InsertAll(sch.Constraints.SubstituteBases(keep))
		} else {
			// Same-SCC (or monomorphic mode): link the callee's own
			// interface variable directly.
			root = constraints.Var(target)
		}
	} else if sum, ok := g.sums[target]; ok {
		formalNames = append(formalNames, sum.FormalIns...)
		hasOut = sum.HasOut
		root = constraints.Var(target + tag)
		g.cs.InsertAll(sum.Constraints.SubstituteBases(keep))
	} else {
		// Unknown external: assume it returns something, takes nothing
		// we can see.
		hasOut = true
		root = constraints.Var(target + tag)
	}

	// Actual-ins.
	argBase := int32(0)
	haveSP := false
	if sp := g.pi.ESPIn[i]; sp.Known {
		haveSP = true
		argBase = sp.Delta
		if tail {
			argBase += 4
		}
	}
	for _, fn := range formalNames {
		formalDTV := constraints.MakeDTV(root, label.In(fn))
		if strings.HasPrefix(fn, "stack") {
			if !haveSP {
				continue
			}
			k, err := strconv.Atoi(fn[len("stack"):])
			if err != nil {
				continue
			}
			slot := argBase + int32(k)
			if base, ok := g.regionOf(slot); ok {
				// Argument area overlapping a region: pass the region
				// content conservatively.
				g.cs.AddSub(constraints.MakeDTV(g.regionVar(base), label.Load(), label.Field(32, int(slot-base))), formalDTV)
				continue
			}
			rv := g.resolveLoc(cfg.SlotLoc(slot), st)
			g.copyInto(rv, formalDTV)
		} else if r, ok := asm.ParseReg(fn); ok {
			rv := g.resolveLoc(cfg.RegLoc(r), st)
			g.copyInto(rv, formalDTV)
		}
	}

	// Output binding.
	if tail {
		if hasOut && g.pi.HasOut {
			g.cs.AddSub(constraints.MakeDTV(root, label.Out("eax")), constraints.MakeDTV(g.f, label.Out("eax")))
		}
	} else {
		eloc := cfg.RegLoc(asm.EAX)
		if hasOut {
			d := g.defVar(i, eloc)
			g.cs.AddSub(constraints.MakeDTV(root, label.Out("eax")), bare(d))
			g.setDef(i, eloc, aval{kind: avVar, base: d})
		} else {
			g.setDef(i, eloc, aval{kind: avDead})
		}
		g.setDef(i, cfg.RegLoc(asm.ECX), aval{kind: avDead})
		g.setDef(i, cfg.RegLoc(asm.EDX), aval{kind: avDead})
	}

	g.calls = append(g.calls, CallSite{
		Caller: g.pi.Proc.Name, Inst: i, Callee: target, Root: root, Tail: tail,
	})
}
