package absint

import (
	"testing"

	"retypd/internal/constraints"
)

func TestRenamerForms(t *testing.T) {
	procs := map[string]bool{"rep": true, "mem": true, "leaf_a": true, "leaf_b": true, "other_leaf": true}
	ren := NewRenamer("rep", "mem", []CallRename{
		{Inst: 5, From: "leaf_a", To: "leaf_b"},
		{Inst: 9, From: "ext", To: "ext"},
	}, func(s string) bool { return procs[s] })
	if !ren.Valid() {
		t.Fatal("renamer invalid")
	}
	cases := []struct {
		in, want string
	}{
		{"rep", "mem"},                       // the procedure variable
		{"rep!eax@3", "mem!eax@3"},           // defVar (register)
		{"rep!s-8@12", "mem!s-8@12"},         // defVar (slot)
		{"rep!frm!stack0", "mem!frm!stack0"}, // formal entry
		{"rep!rgn8", "mem!rgn8"},             // region
		{"rep!u4!stbase", "mem!u4!stbase"},   // merge intermediate
		{"rep!zero", "mem!zero"},             // zero pseudo-variable
		{"leaf_a@rep!5", "leaf_b@mem!5"},     // tagged callee root, renamed target
		{"τ3@rep!5", "τ3@mem!5"},             // tagged callee existential
		{"ext@rep!9", "ext@mem!9"},           // tagged external root
		{"leaf_a", "leaf_b"},                 // bare callee (monomorphic linking)
		{"int", "int"},                       // lattice constant
		{"other_proc", "other_proc"},         // foreign non-procedure name
		{"repx", "repx"},                     // name sharing a prefix with rep
		{"τ4", "τ4"},                         // bare existential
	}
	for _, tc := range cases {
		got, ok := ren.Rename(constraints.Var(tc.in))
		if !ok || string(got) != tc.want {
			t.Errorf("Rename(%q) = %q,%v; want %q,true", tc.in, got, ok, tc.want)
		}
	}

	// Unclassifiable forms must fail, not guess. That includes program
	// procedures appearing where only the callsite's own callee could:
	// a variable leaked through a callee's simplified scheme, whose
	// member-side name the callsite correspondence cannot supply.
	for _, bad := range []string{
		"x@other!3",        // tag of a different procedure
		"x@rep!notanumber", // malformed tag index
		"other_leaf@rep!5", // leaked program proc instantiated at a foreign callsite
		"leaf_a@rep!7",     // the right callee but at a site that does not call it
		"other_leaf",       // bare leaked program proc the body never calls
	} {
		if _, ok := ren.Rename(constraints.Var(bad)); ok {
			t.Errorf("Rename(%q) succeeded; want failure", bad)
		}
	}
}

func TestRenamerInconsistentCalls(t *testing.T) {
	ren := NewRenamer("a", "b", []CallRename{
		{Inst: 1, From: "c", To: "d"},
		{Inst: 2, From: "c", To: "e"}, // same source, two targets
	}, nil)
	if ren.Valid() {
		t.Error("inconsistent callsite correspondence accepted")
	}
	if _, ok := ren.Apply(constraints.NewSet()); ok {
		t.Error("Apply succeeded on an invalid renamer")
	}
}

func TestRenamerApply(t *testing.T) {
	cs := constraints.MustParseSet(`
		rep.in_stack0 <= rep!frm!stack0
		leaf_a@rep!5.out_eax <= rep!eax@6
		Add(rep!eax@6, rep!ebx@2; rep!eax@7)
		int <= rep.out_eax
	`)
	ren := NewRenamer("rep", "mem", []CallRename{{Inst: 5, From: "leaf_a", To: "leaf_b"}},
		func(s string) bool { return s == "rep" || s == "mem" || s == "leaf_a" || s == "leaf_b" })
	out, ok := ren.Apply(cs)
	if !ok {
		t.Fatal("Apply failed")
	}
	want := constraints.MustParseSet(`
		mem.in_stack0 <= mem!frm!stack0
		leaf_b@mem!5.out_eax <= mem!eax@6
		Add(mem!eax@6, mem!ebx@2; mem!eax@7)
		int <= mem.out_eax
	`)
	if out.String() != want.String() {
		t.Errorf("Apply mismatch:\n%s\n--- want ---\n%s", out, want)
	}
	// Insertion order must be preserved (downstream fingerprints hash
	// it).
	for i, c := range out.Constraints() {
		if c != want.Constraints()[i] {
			t.Fatalf("constraint %d out of order: %s vs %s", i, c, want.Constraints()[i])
		}
	}
}
